// Golden-trace regression tests for the offense/scenario-engine refactor.
//
// The AttackStrategy layer (src/offense/) replaced sim::AttackerAgent's
// hard-wired AttackType branches, and the declarative scenario engine
// (src/scenario/) replaced the twin sim/fleet scenario drivers, under the
// same hard constraint the defense-policy redesign honored: the refactor is
// trace-preserving. These tests pin it down beyond ListenerCounters — the
// digest here folds every client and bot HostReport (all time-series bins,
// CPU samples and totals), so a single re-ordered RNG draw or a perturbed
// event anywhere in the attack path shows up.
//
// If a digest changes, you changed workload/offense semantics. Decide
// explicitly whether that is intended; if so re-record (the tests print the
// computed digests on failure in hex).
#include <gtest/gtest.h>

#include <cstdio>

#include "fleet/scenario.hpp"
#include "offense/spec.hpp"
#include "scenario/spec.hpp"
#include "sim/scenario.hpp"
#include "trace_digest.hpp"

namespace tcpz {
namespace {

using tracedigest::digest;
using tracedigest::fnv;
using tracedigest::kFnvBasis;

std::uint64_t sim_digest(const sim::ScenarioResult& r) {
  std::uint64_t h = kFnvBasis;
  h = fnv(h, digest(r.server.counters));
  for (const auto& c : r.clients) h = fnv(h, digest(c));
  for (const auto& b : r.bots) h = fnv(h, digest(b));
  return h;
}

std::uint64_t fleet_digest(const fleet::FleetResult& r) {
  std::uint64_t h = kFnvBasis;
  for (const auto& rep : r.replicas) h = fnv(h, digest(rep.counters));
  h = fnv(h, digest(r.cluster));
  for (const auto& c : r.clients) h = fnv(h, digest(c));
  for (const auto& b : r.bots) h = fnv(h, digest(b));
  return h;
}

/// The fixed-seed scaled §6 scenario under the default puzzles defense.
sim::ScenarioConfig scaled_scenario(sim::AttackType attack) {
  sim::ScenarioConfig cfg;
  cfg = cfg.scaled();
  cfg.attack = attack;
  return cfg;
}

/// The fixed 3-replica fleet scenario of policy_trace_test (rotation +
/// shared replay cache on a short timeline), under puzzles everywhere.
fleet::FleetScenarioConfig fleet_scenario(sim::AttackType attack) {
  fleet::FleetScenarioConfig f;
  f.base.duration = SimTime::seconds(40);
  f.base.attack_start = SimTime::seconds(10);
  f.base.attack_end = SimTime::seconds(30);
  f.base.n_clients = 6;
  f.base.client_rate = 10.0;
  f.base.response_bytes = 20'000;
  f.base.n_bots = 4;
  f.base.bot_rate = 200.0;
  f.base.protection_hold = SimTime::seconds(20);
  f.base.attack = attack;
  f.n_replicas = 3;
  f.rotation_interval = SimTime::seconds(10);
  f.rotation_overlap = SimTime::seconds(3);
  return f;
}

// Golden values originally recorded from the pre-refactor
// (AttackType-branching attacker + twin scenario engines) implementation at
// commit 0f3c11f. Re-recorded once when drops_listen_full split into
// drops_queue_overflow + drops_policy (the counter digest gained a field;
// run behavior verified unchanged), and again when the fluid_* counters
// were appended for the hybrid workload layer (always zero in these
// discrete scenarios — the TrafficModel client refactor was first verified
// byte-for-byte against the previous goldens, then the counter append
// re-shaped the digest input).
struct Golden {
  sim::AttackType attack;
  std::uint64_t sim_digest;
  std::uint64_t fleet_digest;
};

constexpr Golden kGolden[] = {
    {sim::AttackType::kSynFlood, 0x10e73aed8a2652cdull, 0x7d695e14d413e2fbull},
    {sim::AttackType::kConnFlood, 0x70843e373a6e87a9ull, 0x0f51eb7cc3b961d1ull},
    {sim::AttackType::kBogusSolutionFlood, 0x7e511f359bdb9d47ull,
     0x98e6f0ed5eac8cfeull},
};

class ScenarioTrace : public ::testing::TestWithParam<Golden> {};

TEST_P(ScenarioTrace, ScaledScenarioMatchesPreRefactorTrace) {
  const Golden& g = GetParam();
  const auto r = sim::run_scenario(scaled_scenario(g.attack));
  const std::uint64_t d = sim_digest(r);
  EXPECT_EQ(d, g.sim_digest) << "sim trace drifted for attack "
                             << sim::to_string(g.attack) << "; computed 0x"
                             << std::hex << d;
}

TEST_P(ScenarioTrace, FleetScenarioMatchesPreRefactorTrace) {
  const Golden& g = GetParam();
  const auto r = fleet::run_fleet_scenario(fleet_scenario(g.attack));
  const std::uint64_t d = fleet_digest(r);
  EXPECT_EQ(d, g.fleet_digest) << "fleet trace drifted for attack "
                               << sim::to_string(g.attack) << "; computed 0x"
                               << std::hex << d;
}

INSTANTIATE_TEST_SUITE_P(AllAttacks, ScenarioTrace,
                         ::testing::ValuesIn(kGolden), [](const auto& info) {
                           switch (info.param.attack) {
                             case sim::AttackType::kSynFlood: return "SynFlood";
                             case sim::AttackType::kConnFlood:
                               return "ConnFlood";
                             default: return "BogusSolutionFlood";
                           }
                         });

std::uint64_t native_digest(const scenario::Result& r) {
  std::uint64_t h = kFnvBasis;
  h = fnv(h, digest(r.server().counters));
  for (const auto& c : r.clients) h = fnv(h, digest(c));
  for (const auto& g : r.groups) {
    for (const auto& b : g.bots) h = fnv(h, digest(b));
  }
  return h;
}

// A hand-built scenario::Spec equivalent to the legacy scaled config must be
// indistinguishable from the run_scenario shim: same spec, same trace. This
// is the independent construction — it does not go through
// ScenarioConfig::to_spec — so it pins the shim mapping itself.
TEST(ScenarioTrace, HandBuiltSpecMatchesLegacyShim) {
  scenario::Spec s;
  s = s.scaled();
  s.seeding = scenario::SeedMode::kLegacySequential;
  s.servers.policies = {defense::PolicySpec::puzzles()};
  scenario::AttackSpec a;
  a.count = 10;
  a.rate = 500.0;
  a.strategy = offense::StrategySpec::conn_flood();
  s.attacks = {a};
  const scenario::Result r = scenario::run(s);
  EXPECT_EQ(native_digest(r), kGolden[1].sim_digest)
      << "hand-built spec diverged from the legacy shim";
  EXPECT_EQ(r.server().policy, "puzzles");
  EXPECT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0].name, "conn-flood");
}

std::uint64_t native_fleet_digest(const scenario::Result& r) {
  std::uint64_t h = kFnvBasis;
  for (const auto& rep : r.servers) h = fnv(h, digest(rep.counters));
  h = fnv(h, digest(r.cluster));
  for (const auto& c : r.clients) h = fnv(h, digest(c));
  for (const auto& g : r.groups) {
    for (const auto& b : g.bots) h = fnv(h, digest(b));
  }
  return h;
}

TEST(ScenarioTrace, HandBuiltFleetSpecMatchesLegacyShim) {
  scenario::Spec s;
  s.seeding = scenario::SeedMode::kLegacySequential;
  s.duration = SimTime::seconds(40);
  s.attack_start = SimTime::seconds(10);
  s.attack_end = SimTime::seconds(30);
  s.workload.n_clients = 6;
  s.workload.request_rate = 10.0;
  s.workload.response_bytes = 20'000;
  defense::PolicySpec puzzles = defense::PolicySpec::puzzles();
  puzzles.protection_hold = SimTime::seconds(20);
  s.servers.count = 3;
  s.servers.policies = {puzzles, puzzles, puzzles};
  s.fleet.enabled = true;
  s.fleet.rotation_interval = SimTime::seconds(10);
  s.fleet.rotation_overlap = SimTime::seconds(3);
  scenario::AttackSpec a;
  a.count = 4;
  a.rate = 200.0;
  a.strategy = offense::StrategySpec::conn_flood();
  s.attacks = {a};
  const scenario::Result r = scenario::run(s);
  EXPECT_EQ(native_fleet_digest(r), kGolden[1].fleet_digest)
      << "hand-built fleet spec diverged from the legacy shim";
}

// A legacy "no attack" baseline (n_bots = 0, bot_rate = 0) must keep
// running through the shim: the empty attack group's rate is irrelevant.
TEST(ScenarioTrace, NoAttackBaselineRunsThroughShim) {
  sim::ScenarioConfig cfg;
  cfg = cfg.scaled();
  cfg.duration = SimTime::seconds(30);
  cfg.attack_start = SimTime::seconds(10);
  cfg.attack_end = SimTime::seconds(20);
  cfg.n_clients = 3;
  cfg.client_rate = 5.0;
  cfg.response_bytes = 10'000;
  cfg.n_bots = 0;
  cfg.bot_rate = 0.0;
  const auto r = sim::run_scenario(cfg);
  EXPECT_TRUE(r.bots.empty());
  EXPECT_GT(r.server.counters.established_total, 0u);
}

// Per-bot RNG stream hygiene: under the native derived-stream seeding,
// every agent's stream is a pure function of (spec seed, stable agent id),
// so appending an attack group — here one that never emits a packet —
// leaves every other agent's metrics byte-identical.
TEST(ScenarioTrace, InsertingIdleBotLeavesOtherStreamsByteIdentical) {
  scenario::Spec s;
  s.duration = SimTime::seconds(40);
  s.attack_start = SimTime::seconds(10);
  s.attack_end = SimTime::seconds(30);
  s.workload.n_clients = 5;
  s.workload.request_rate = 10.0;
  s.workload.response_bytes = 20'000;
  s.servers.policies = {defense::PolicySpec::puzzles()};
  scenario::AttackSpec a;
  a.count = 3;
  a.rate = 200.0;
  a.strategy = offense::StrategySpec::conn_flood();
  s.attacks = {a};
  ASSERT_EQ(s.seeding, scenario::SeedMode::kDerivedStreams);
  const scenario::Result base = scenario::run(s);

  scenario::Spec s2 = s;
  scenario::AttackSpec idle;
  idle.name = "idle";
  idle.count = 1;
  idle.rate = 100.0;
  idle.strategy = offense::StrategySpec::syn_flood();
  idle.start = s.duration;  // empty attack window: never sends a packet
  idle.end = s.duration;
  s2.attacks.push_back(idle);
  const scenario::Result with_idle = scenario::run(s2);

  ASSERT_EQ(with_idle.groups.size(), 2u);
  EXPECT_EQ(with_idle.groups[1].total_attempts(), 0u);
  ASSERT_EQ(base.clients.size(), with_idle.clients.size());
  for (std::size_t i = 0; i < base.clients.size(); ++i) {
    EXPECT_EQ(digest(base.clients[i]), digest(with_idle.clients[i]))
        << "client " << i << " stream perturbed by an idle bot";
  }
  ASSERT_EQ(base.groups[0].bots.size(), with_idle.groups[0].bots.size());
  for (std::size_t i = 0; i < base.groups[0].bots.size(); ++i) {
    EXPECT_EQ(digest(base.groups[0].bots[i]),
              digest(with_idle.groups[0].bots[i]))
        << "bot " << i << " stream perturbed by an idle bot";
  }
  EXPECT_EQ(digest(base.server().counters), digest(with_idle.server().counters));
}

}  // namespace
}  // namespace tcpz
