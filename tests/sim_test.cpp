#include <gtest/gtest.h>

#include "sim/cpu.hpp"
#include "sim/devices.hpp"
#include "sim/scenario.hpp"

namespace tcpz::sim {
namespace {

// ---------------------------------------------------------------------------
// CpuModel
// ---------------------------------------------------------------------------

TEST(CpuModel, SolveDurationIsOpsOverRate) {
  CpuModel cpu({100'000.0, 4, 1});
  EXPECT_NEAR(cpu.solve_duration(50'000).to_seconds(), 0.5, 1e-9);
}

TEST(CpuModel, SerialLaneQueuesJobs) {
  CpuModel cpu({100'000.0, 4, 1});
  const SimTime t0 = SimTime::seconds(1);
  const SimTime e1 = cpu.submit_solve(t0, 100'000);  // 1 s
  const SimTime e2 = cpu.submit_solve(t0, 100'000);  // queued behind
  EXPECT_EQ(e1, SimTime::seconds(2));
  EXPECT_EQ(e2, SimTime::seconds(3));
  EXPECT_EQ(cpu.busy_lanes(SimTime::seconds(1)), 1);
  EXPECT_EQ(cpu.pending_jobs(SimTime::milliseconds(1500)), 2);
  EXPECT_EQ(cpu.pending_jobs(SimTime::milliseconds(2500)), 1);
}

TEST(CpuModel, ParallelLanesRunConcurrently) {
  CpuModel cpu({100'000.0, 4, 2});
  const SimTime t0 = SimTime::zero();
  const SimTime e1 = cpu.submit_solve(t0, 100'000);
  const SimTime e2 = cpu.submit_solve(t0, 100'000);
  EXPECT_EQ(e1, SimTime::seconds(1));
  EXPECT_EQ(e2, SimTime::seconds(1));
}

TEST(CpuModel, LanesClampToCores) {
  CpuModel cpu({1000.0, 2, 8});
  EXPECT_EQ(cpu.spec().solver_lanes, 2);
}

TEST(CpuModel, UtilizationReflectsSolving) {
  // One lane fully busy on a 4-core host = 25%.
  CpuModel cpu({100'000.0, 4, 1});
  (void)cpu.submit_solve(SimTime::zero(), 400'000);  // busy 0..4 s
  const double util =
      cpu.sample_utilization(SimTime::seconds(1), SimTime::seconds(1));
  EXPECT_NEAR(util, 0.25, 1e-9);
}

TEST(CpuModel, UtilizationIncludesChargedWork) {
  CpuModel cpu({1'000'000.0, 2, 1});
  cpu.charge_hash_ops(500'000);  // 0.5 core-seconds
  const double util =
      cpu.sample_utilization(SimTime::seconds(1), SimTime::seconds(1));
  EXPECT_NEAR(util, 0.25, 1e-9);  // 0.5 / (1 s * 2 cores)
  // Charge accumulator drains.
  EXPECT_NEAR(cpu.sample_utilization(SimTime::seconds(2), SimTime::seconds(1)),
              0.0, 1e-9);
}

TEST(CpuModel, UtilizationClampedToOne) {
  CpuModel cpu({1000.0, 1, 1});
  cpu.charge_seconds(50.0);
  EXPECT_DOUBLE_EQ(cpu.sample_utilization(SimTime::seconds(1), SimTime::seconds(1)),
                   1.0);
}

TEST(CpuModel, RejectsBadSpec) {
  EXPECT_THROW(CpuModel({0.0, 4, 1}), std::invalid_argument);
  EXPECT_THROW(CpuModel({100.0, 0, 1}), std::invalid_argument);
}

TEST(Devices, FleetAverageMatchesPaperWav) {
  double sum = 0;
  for (const auto& d : kClientCpus) sum += d.hash_rate;
  EXPECT_NEAR(sum / 3.0 * 0.4, 140'630.0, 1.0);
}

TEST(Devices, IotDevicesAreWeaker) {
  for (const auto& iot : kIotDevices) {
    EXPECT_LT(iot.hash_rate, kClientFleetHashRate / 4);
  }
}

// ---------------------------------------------------------------------------
// End-to-end scenarios (small timelines; assert dynamics, not absolutes)
// ---------------------------------------------------------------------------

ScenarioConfig tiny_scenario() {
  ScenarioConfig cfg;
  cfg.seed = 7;
  cfg.duration = SimTime::seconds(30);
  cfg.attack_start = SimTime::seconds(10);
  cfg.attack_end = SimTime::seconds(20);
  cfg.n_clients = 4;
  cfg.client_rate = 10.0;
  cfg.response_bytes = 20'000;
  cfg.n_bots = 4;
  cfg.bot_rate = 800.0;  // ~10x the accept drain, like the paper's 5000 vs 1100
  cfg.listen_backlog = 256;
  cfg.accept_backlog = 256;
  cfg.service_rate = 300.0;
  return cfg;
}

TEST(Scenario, NoAttackBaselineServesEveryone) {
  ScenarioConfig cfg = tiny_scenario();
  cfg.n_bots = 0;
  cfg.defense = tcp::DefenseMode::kNone;
  const ScenarioResult res = run_scenario(cfg);

  EXPECT_GT(res.client_success_ratio(), 0.98);
  EXPECT_EQ(res.server.counters.challenges_sent, 0u);
  // ~4 clients * 10 req/s * 20 KB * 8 = ~6.4 Mbps aggregate.
  const double mbps = res.client_rx_mbps(5, 10);
  EXPECT_GT(mbps, 4.0);
  EXPECT_LT(mbps, 9.0);
  // Connection times are sub-5ms without puzzles on this topology.
  EXPECT_LT(res.clients[0].conn_time_ms.quantile(0.9), 5.0);
}

TEST(Scenario, SynFloodKillsUndefendedServer) {
  ScenarioConfig cfg = tiny_scenario();
  cfg.attack = AttackType::kSynFlood;
  cfg.defense = tcp::DefenseMode::kNone;
  const ScenarioResult res = run_scenario(cfg);

  const double before = res.client_rx_mbps(5, 10);
  const double during = res.client_rx_mbps(13, 20);
  EXPECT_LT(during, before * 0.2) << "SYN flood should deny service";
  EXPECT_GT(res.server.counters.drops_listen_full(), 100u);
  // No defense installed, so every drop is a queue overflow.
  EXPECT_EQ(res.server.counters.drops_policy, 0u);
  // Listen queue saturated during the attack window.
  EXPECT_GE(res.server.listen_queue.max_in(SimTime::seconds(12),
                                           SimTime::seconds(20)),
            static_cast<double>(cfg.listen_backlog));
}

TEST(Scenario, SynCookiesSurviveSynFlood) {
  ScenarioConfig cfg = tiny_scenario();
  cfg.attack = AttackType::kSynFlood;
  cfg.defense = tcp::DefenseMode::kSynCookies;
  const ScenarioResult res = run_scenario(cfg);

  const double before = res.client_rx_mbps(5, 10);
  const double during = res.client_rx_mbps(13, 20);
  EXPECT_GT(during, before * 0.7) << "cookies should absorb a SYN flood";
  EXPECT_GT(res.server.counters.established_cookie, 0u);
}

TEST(Scenario, PuzzlesSurviveSynFlood) {
  ScenarioConfig cfg = tiny_scenario();
  cfg.attack = AttackType::kSynFlood;
  cfg.defense = tcp::DefenseMode::kPuzzles;
  cfg.difficulty = {1, 8};  // easy puzzles suffice for SYN floods (§6.2)
  const ScenarioResult res = run_scenario(cfg);

  const double before = res.client_rx_mbps(5, 10);
  const double during = res.client_rx_mbps(13, 20);
  EXPECT_GT(during, before * 0.6);
  EXPECT_GT(res.server.counters.challenges_sent, 0u);
  EXPECT_GT(res.server.counters.established_puzzle, 0u);
  // Spoofed sources never answer challenges: no bogus solutions verified.
  EXPECT_EQ(res.server.counters.solutions_invalid, 0u);
}

TEST(Scenario, ConnFloodDefeatsCookiesButNotPuzzles) {
  ScenarioConfig base = tiny_scenario();
  base.attack = AttackType::kConnFlood;

  ScenarioConfig cookies = base;
  cookies.defense = tcp::DefenseMode::kSynCookies;
  const ScenarioResult with_cookies = run_scenario(cookies);

  ScenarioConfig puzzles = base;
  puzzles.defense = tcp::DefenseMode::kPuzzles;
  puzzles.difficulty = {2, 17};
  const ScenarioResult with_puzzles = run_scenario(puzzles);

  const double cookie_during = with_cookies.client_rx_mbps(13, 20);
  const double puzzle_during = with_puzzles.client_rx_mbps(13, 20);
  const double puzzle_before = with_puzzles.client_rx_mbps(5, 10);

  // Cookies collapse; puzzles retain a sizeable fraction of nominal (the
  // clients are solve-limited to ~28% of demand at the Nash difficulty).
  EXPECT_LT(cookie_during, puzzle_during);
  EXPECT_GT(puzzle_during, puzzle_before * 0.15);

  // Accept queue: saturated under cookies, mostly drained under puzzles
  // (Fig. 10).
  const SimTime w0 = SimTime::seconds(14), w1 = SimTime::seconds(20);
  EXPECT_GE(with_cookies.server.accept_queue.max_in(w0, w1),
            static_cast<double>(base.accept_backlog));
  EXPECT_LT(with_puzzles.server.accept_queue.mean_in(w0, w1),
            static_cast<double>(base.accept_backlog) * 0.5);

  // Attackers' established-connection rate is rate-limited by solving
  // (Fig. 11).
  const double cookie_cps = with_cookies.server.attacker_cps(13, 20);
  const double puzzle_cps = with_puzzles.server.attacker_cps(13, 20);
  EXPECT_GT(cookie_cps, puzzle_cps * 5.0);
}

TEST(Scenario, PuzzleCpuCostLandsOnAttackers) {
  ScenarioConfig cfg = tiny_scenario();
  cfg.attack = AttackType::kConnFlood;
  cfg.defense = tcp::DefenseMode::kPuzzles;
  cfg.difficulty = {2, 17};
  const ScenarioResult res = run_scenario(cfg);

  const SimTime w0 = SimTime::seconds(12), w1 = SimTime::seconds(20);
  const double server_cpu = res.server.cpu.mean_in(w0, w1);
  const double client_cpu = res.mean_client_cpu(w0, w1);
  const double bot_cpu = res.mean_bot_cpu(w0, w1);
  // Fig. 9 ordering: server negligible < clients moderate < attackers high.
  EXPECT_LT(server_cpu, 0.05);
  EXPECT_GT(bot_cpu, client_cpu);
  EXPECT_GT(bot_cpu, 0.2);
}

TEST(Scenario, SolvingClientsKeepServiceUnderNonSolvingAttack) {
  // Fig. 15 (*A, SC): solving clients vs a non-solving flood.
  ScenarioConfig cfg = tiny_scenario();
  cfg.attack = AttackType::kConnFlood;
  cfg.bots_solve = false;
  cfg.defense = tcp::DefenseMode::kPuzzles;
  cfg.difficulty = {2, 17};
  const ScenarioResult res = run_scenario(cfg);

  // Clients are limited by their serial solver (~2.7 conn/s each of a
  // 10 req/s demand), so "keeping service" means a solid non-zero fraction.
  const double during = res.client_rx_mbps(13, 20);
  const double before = res.client_rx_mbps(5, 10);
  EXPECT_GT(during, before * 0.15);
  // Non-solving bots establish almost nothing once protection engages.
  EXPECT_LT(res.server.attacker_cps(14, 20), 30.0);
}

TEST(Scenario, BogusSolutionFloodIsRejectedCheaply) {
  ScenarioConfig cfg = tiny_scenario();
  cfg.attack = AttackType::kBogusSolutionFlood;
  cfg.defense = tcp::DefenseMode::kPuzzles;
  cfg.difficulty = {2, 17};
  const ScenarioResult res = run_scenario(cfg);

  EXPECT_GT(res.server.counters.solutions_invalid +
                res.server.counters.solutions_bad_ackno +
                res.server.counters.acks_ignored_accept_full,
            100u);
  EXPECT_EQ(res.server.counters.established_puzzle +
                res.server.counters.established_cookie,
            res.server.counters.solutions_valid);
  // §7: verification overhead stays negligible on the server.
  EXPECT_LT(res.server.cpu.mean_in(SimTime::seconds(12), SimTime::seconds(20)),
            0.05);
}

TEST(Scenario, DeterministicForSeed) {
  ScenarioConfig cfg = tiny_scenario();
  cfg.duration = SimTime::seconds(15);
  cfg.attack_start = SimTime::seconds(5);
  cfg.attack_end = SimTime::seconds(12);
  const ScenarioResult a = run_scenario(cfg);
  const ScenarioResult b = run_scenario(cfg);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.server.counters.established_total,
            b.server.counters.established_total);
  EXPECT_EQ(a.clients[0].total_completions, b.clients[0].total_completions);
}

TEST(Scenario, SeedChangesTrace) {
  ScenarioConfig cfg = tiny_scenario();
  cfg.duration = SimTime::seconds(15);
  cfg.attack_start = SimTime::seconds(5);
  cfg.attack_end = SimTime::seconds(12);
  const ScenarioResult a = run_scenario(cfg);
  cfg.seed = 8;
  const ScenarioResult b = run_scenario(cfg);
  EXPECT_NE(a.events_processed, b.events_processed);
}

}  // namespace
}  // namespace tcpz::sim
