// Property/fuzz tests for the shared wire codec (tcp/wire_format.hpp): the
// decode side faces attacker-supplied bytes on the wire backends, so the
// contract is (1) no read past the end on ANY input — random or
// adversarially truncated — and (2) every valid encode round-trips
// byte-identically. The sanitizer CI job runs this binary under ASan/UBSan,
// which turns "no crash" into "no out-of-bounds read, period".
#include <gtest/gtest.h>

#include "tcp/wire_format.hpp"
#include "util/rng.hpp"

namespace tcpz::tcp {
namespace {

Options random_valid_options(Rng& rng) {
  Options o;
  if (rng.uniform_u64(2) != 0) {
    o.mss = static_cast<std::uint16_t>(rng.uniform_u64(65'536));
  }
  if (rng.uniform_u64(2) != 0) {
    o.wscale = static_cast<std::uint8_t>(rng.uniform_u64(15));
  }
  o.sack_permitted = rng.uniform_u64(2) != 0;
  if (rng.uniform_u64(2) != 0) {
    o.ts = TimestampsOption{static_cast<std::uint32_t>(rng.next()),
                            static_cast<std::uint32_t>(rng.next())};
  }
  if (rng.uniform_u64(2) != 0) {
    ChallengeOption c;
    c.k = static_cast<std::uint8_t>(1 + rng.uniform_u64(4));
    c.m = static_cast<std::uint8_t>(rng.uniform_u64(32));
    c.sol_len = static_cast<std::uint8_t>(1 + rng.uniform_u64(8));
    // The decoder infers an embedded timestamp from the body length, so
    // both forms must round-trip regardless of the ts option.
    if (rng.uniform_u64(2) != 0) {
      c.embedded_ts = static_cast<std::uint32_t>(rng.next());
    }
    c.preimage.resize(c.sol_len);
    for (auto& b : c.preimage) b = static_cast<std::uint8_t>(rng.next());
    o.challenge = c;
  }
  if (rng.uniform_u64(2) != 0) {
    SolutionOption s;
    s.mss = static_cast<std::uint16_t>(rng.uniform_u64(65'536));
    s.wscale = static_cast<std::uint8_t>(rng.uniform_u64(15));
    // Contract: T rides in TSecr when timestamps are negotiated, embedded in
    // the block otherwise — exactly one of the two, or the decoder's strip
    // pass would shift the solution bytes.
    if (!o.ts) s.embedded_ts = static_cast<std::uint32_t>(rng.next());
    s.solutions.resize(1 + rng.uniform_u64(12));
    for (auto& b : s.solutions) b = static_cast<std::uint8_t>(rng.next());
    o.solution = s;
  }
  return o;
}

/// True when the combination fits the 40-byte option space (the generator
/// rolls challenge + solution independently, which can exceed it).
bool fits_wire(const Options& o) {
  try {
    (void)o.wire_size();
    return true;
  } catch (const std::length_error&) {
    return false;
  }
}

// ---------------------------------------------------------------------------
// Valid encodes round-trip byte-identically
// ---------------------------------------------------------------------------

TEST(WireFormatProperty, ValidOptionsRoundTripByteIdentically) {
  Rng rng(42);
  int tested = 0;
  for (int i = 0; i < 4000 && tested < 2000; ++i) {
    const Options o = random_valid_options(rng);
    if (!fits_wire(o)) continue;
    ++tested;
    const Bytes wire = encode_options(o);
    EXPECT_EQ(wire.size(), o.wire_size());
    Options decoded;
    ASSERT_EQ(decode_options(wire, decoded), DecodeResult::kOk);
    ASSERT_EQ(decoded, o);
    EXPECT_EQ(encode_options(decoded), wire);
  }
  EXPECT_GE(tested, 1000);
}

TEST(WireFormatProperty, ValidSegmentsRoundTripByteIdentically) {
  Rng rng(43);
  int tested = 0;
  for (int i = 0; i < 2000 && tested < 1000; ++i) {
    Segment s;
    s.saddr = static_cast<std::uint32_t>(rng.next());
    s.daddr = static_cast<std::uint32_t>(rng.next());
    s.sport = static_cast<std::uint16_t>(rng.next());
    s.dport = static_cast<std::uint16_t>(rng.next());
    s.seq = static_cast<std::uint32_t>(rng.next());
    s.ack = static_cast<std::uint32_t>(rng.next());
    s.flags = static_cast<std::uint8_t>(rng.uniform_u64(32));
    s.window = static_cast<std::uint16_t>(rng.next());
    s.payload_bytes = static_cast<std::uint32_t>(rng.uniform_u64(100'000));
    s.options = random_valid_options(rng);
    if (!fits_wire(s.options)) continue;
    ++tested;
    const Bytes wire = encode_segment(s);
    const auto decoded = decode_segment(wire);
    ASSERT_TRUE(decoded.segment.has_value())
        << to_string(*decoded.error);
    ASSERT_EQ(decoded.segment->options, s.options);
    EXPECT_EQ(encode_segment(*decoded.segment), wire);
  }
  EXPECT_GE(tested, 500);
}

// ---------------------------------------------------------------------------
// Random bytes: never crash, and any accepted parse is a fixpoint
// ---------------------------------------------------------------------------

TEST(WireFormatProperty, RandomOptionBytesNeverCrash) {
  Rng rng(44);
  for (int i = 0; i < 20'000; ++i) {
    Bytes wire(rng.uniform_u64(48));
    for (auto& b : wire) b = static_cast<std::uint8_t>(rng.next());
    Options out;
    const DecodeResult r = decode_options(wire, out);
    if (r != DecodeResult::kOk) continue;
    // An accepted parse must re-encode (canonical form is never larger than
    // the accepted input) and decode back to the same Options: the codec is
    // a fixpoint on everything it accepts.
    Bytes canon;
    ASSERT_NO_THROW(canon = encode_options(out));
    Options again;
    ASSERT_EQ(decode_options(canon, again), DecodeResult::kOk);
    EXPECT_EQ(again, out);
  }
}

TEST(WireFormatProperty, RandomSegmentBytesNeverCrash) {
  Rng rng(45);
  for (int i = 0; i < 20'000; ++i) {
    Bytes wire(rng.uniform_u64(96));
    for (auto& b : wire) b = static_cast<std::uint8_t>(rng.next());
    const auto result = decode_segment(wire);
    // Random bytes essentially never carry a valid checksum; either way the
    // call must return, not crash.
    if (result.segment.has_value()) {
      EXPECT_NO_THROW((void)encode_segment(*result.segment));
    }
  }
}

TEST(WireFormatProperty, AdversarialTruncationsNeverCrash) {
  Rng rng(46);
  for (int i = 0; i < 400; ++i) {
    const Options o = random_valid_options(rng);
    if (!fits_wire(o)) continue;
    const Bytes wire = encode_options(o);
    for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
      Options out;
      const DecodeResult r = decode_options(
          std::span<const std::uint8_t>(wire.data(), cut), out);
      if (r != DecodeResult::kOk) continue;
      // Truncation at an option boundary legitimately yields a prefix
      // parse; it must still be a fixpoint.
      Bytes canon;
      ASSERT_NO_THROW(canon = encode_options(out));
      Options again;
      ASSERT_EQ(decode_options(canon, again), DecodeResult::kOk);
      EXPECT_EQ(again, out);
    }
  }
}

// ---------------------------------------------------------------------------
// The specific adversarial shapes the decode hardening names
// ---------------------------------------------------------------------------

TEST(WireFormatAdversarial, LoneKindByteIsTruncated) {
  const Bytes wire = {kOptChallenge};
  Options out;
  EXPECT_EQ(decode_options(wire, out), DecodeResult::kTruncated);
}

TEST(WireFormatAdversarial, DeclaredLengthPastBufferRejected) {
  const Bytes wire = {kOptChallenge, 30, 1, 8, 4};  // claims 30, has 5
  Options out;
  EXPECT_EQ(decode_options(wire, out), DecodeResult::kBadLength);
}

TEST(WireFormatAdversarial, LengthBelowTwoRejected) {
  const Bytes wire = {kOptMss, 1, 0, 0};
  Options out;
  EXPECT_EQ(decode_options(wire, out), DecodeResult::kBadLength);
}

TEST(WireFormatAdversarial, ZeroSolLenChallengeRejected) {
  // k=1, m=8, sol_len=0: can never anchor the m-bit condition.
  const Bytes wire = {kOptChallenge, 5, 1, 8, 0};
  Options out;
  EXPECT_EQ(decode_options(wire, out), DecodeResult::kBadLength);
}

TEST(WireFormatAdversarial, OversizedSolLenChallengeRejected) {
  // sol_len=40 exceeds the engine bound (32); would overflow the inline
  // pre-image buffer if it were honoured.
  Bytes wire = {kOptChallenge, 2 + 3 + 33, 1, 8, 40};
  wire.resize(2 + 3 + 33, 0xaa);
  Options out;
  EXPECT_EQ(decode_options(wire, out), DecodeResult::kBadLength);
}

TEST(WireFormatAdversarial, EmptySolutionBlockRejected) {
  // Solution block with mss/wscale but zero solution bytes: without a ts
  // option the body cannot even hold the embedded T.
  const Bytes bare = {kOptSolution, 5, 0x05, 0xb4, 7};
  Options out;
  EXPECT_EQ(decode_options(bare, out), DecodeResult::kBadLength);

  // With a ts option (T in TSecr) the bytes parse — but an empty solution
  // vector can never verify (k >= 1, l >= 1), so it is still kBadLength.
  const Bytes with_ts = {kOptTimestamps, 10, 0, 0, 0, 1, 0,    0, 0, 2,
                         kOptSolution,   5,  5, 4, 7, 1, kOptNop};
  EXPECT_EQ(decode_options(with_ts, out), DecodeResult::kBadLength);
}

TEST(WireFormatAdversarial, SolutionWithOnlyEmbeddedTimestampRejected) {
  // Exactly 4 solution bytes and no ts option: the strip pass consumes all
  // of them as the embedded T, leaving zero solution bytes.
  const Bytes wire = {kOptSolution, 9, 0x05, 0xb4, 7, 1, 2, 3, 4, kOptNop,
                      kOptNop, kOptNop};
  Options out;
  EXPECT_EQ(decode_options(wire, out), DecodeResult::kBadLength);
}

TEST(WireFormatAdversarial, OverlongInputRejected) {
  const Bytes wire(kMaxOptionsBytes + 1, kOptNop);
  Options out;
  EXPECT_EQ(decode_options(wire, out), DecodeResult::kTooLong);
}

}  // namespace
}  // namespace tcpz::tcp
