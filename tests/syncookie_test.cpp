#include <gtest/gtest.h>

#include "crypto/secret.hpp"
#include "tcp/syncookie.hpp"

namespace tcpz::tcp {
namespace {

FlowKey flow() { return FlowKey{ipv4(10, 2, 0, 1), 40000, ipv4(10, 1, 0, 1), 80}; }

TEST(SynCookie, RoundTripRecoversMss) {
  SynCookieCodec codec(crypto::SecretKey::from_seed(1));
  const std::uint32_t cookie = codec.encode(flow(), 12345, 1460, 1000);
  const auto mss = codec.decode(flow(), 12345, cookie, 1000);
  ASSERT_TRUE(mss.has_value());
  EXPECT_EQ(*mss, 1460);
}

TEST(SynCookie, MssQuantisedToTable) {
  SynCookieCodec codec(crypto::SecretKey::from_seed(1));
  const std::uint32_t cookie = codec.encode(flow(), 1, 1350, 0);
  const auto mss = codec.decode(flow(), 1, cookie, 0);
  ASSERT_TRUE(mss.has_value());
  EXPECT_EQ(*mss, 1300);  // largest table value <= 1350
}

TEST(SynCookie, MssIndexPicksLargestNotExceeding) {
  EXPECT_EQ(SynCookieCodec::kMssTable[SynCookieCodec::mss_to_index(536)], 536);
  EXPECT_EQ(SynCookieCodec::kMssTable[SynCookieCodec::mss_to_index(9000)], 8960);
  EXPECT_EQ(SynCookieCodec::kMssTable[SynCookieCodec::mss_to_index(100)], 536);
}

TEST(SynCookie, WrongFlowRejected) {
  SynCookieCodec codec(crypto::SecretKey::from_seed(1));
  const std::uint32_t cookie = codec.encode(flow(), 7, 1460, 50);
  FlowKey other = flow();
  other.rport++;
  EXPECT_FALSE(codec.decode(other, 7, cookie, 50).has_value());
}

TEST(SynCookie, WrongIsnRejected) {
  SynCookieCodec codec(crypto::SecretKey::from_seed(1));
  const std::uint32_t cookie = codec.encode(flow(), 7, 1460, 50);
  EXPECT_FALSE(codec.decode(flow(), 8, cookie, 50).has_value());
}

TEST(SynCookie, TamperedCookieRejected) {
  SynCookieCodec codec(crypto::SecretKey::from_seed(1));
  const std::uint32_t cookie = codec.encode(flow(), 7, 1460, 50);
  EXPECT_FALSE(codec.decode(flow(), 7, cookie ^ 1, 50).has_value());
}

TEST(SynCookie, DifferentSecretRejected) {
  SynCookieCodec a(crypto::SecretKey::from_seed(1));
  SynCookieCodec b(crypto::SecretKey::from_seed(2));
  const std::uint32_t cookie = a.encode(flow(), 7, 1460, 50);
  EXPECT_FALSE(b.decode(flow(), 7, cookie, 50).has_value());
}

TEST(SynCookie, ValidAcrossOneCounterPeriod) {
  SynCookieCodec codec(crypto::SecretKey::from_seed(1));
  const std::uint32_t t0 = 640;  // counter = 10
  const std::uint32_t cookie = codec.encode(flow(), 7, 1460, t0);
  EXPECT_TRUE(codec.decode(flow(), 7, cookie, t0 + 63).has_value());
  EXPECT_TRUE(codec.decode(flow(), 7, cookie,
                           t0 + SynCookieCodec::kCounterPeriodSec + 10)
                  .has_value());
}

TEST(SynCookie, ExpiresAfterTwoCounterPeriods) {
  SynCookieCodec codec(crypto::SecretKey::from_seed(1));
  const std::uint32_t t0 = 640;
  const std::uint32_t cookie = codec.encode(flow(), 7, 1460, t0);
  EXPECT_FALSE(codec.decode(flow(), 7, cookie,
                            t0 + 3 * SynCookieCodec::kCounterPeriodSec)
                   .has_value());
}

TEST(SynCookie, DistinctFlowsGetDistinctCookies) {
  SynCookieCodec codec(crypto::SecretKey::from_seed(1));
  FlowKey f2 = flow();
  f2.raddr++;
  EXPECT_NE(codec.encode(flow(), 7, 1460, 50), codec.encode(f2, 7, 1460, 50));
}

}  // namespace
}  // namespace tcpz::tcp
