// Property-based suites: invariants checked across parameter grids and
// randomised inputs (TEST_P + seeded fuzzing). These complement the
// behavioural tests with "for all" statements:
//   * puzzle scheme: solve/verify round-trips for every (k, m, l) cell,
//     tamper-rejection for every byte position;
//   * options codec: decode(encode(x)) == x over random option sets, and
//     decode() is total (never crashes, never reads out of bounds) over
//     random byte soup;
//   * SYN cookies: round-trip over random flows, single-bit tamper rejection;
//   * game: equilibrium first-order conditions over random instances;
//   * listener: invariants under a randomised segment storm.
#include <gtest/gtest.h>

#include <tuple>

#include "crypto/secret.hpp"
#include "game/model.hpp"
#include "puzzle/engine.hpp"
#include "tcp/listener.hpp"
#include "tcp/options.hpp"
#include "tcp/wire_format.hpp"
#include "tcp/syncookie.hpp"
#include "util/rng.hpp"

namespace tcpz {
namespace {

// ---------------------------------------------------------------------------
// Puzzle scheme over the (k, m, sol_len) grid — both engines.
// ---------------------------------------------------------------------------

using PuzzleGridParam = std::tuple<int /*k*/, int /*m*/, int /*sol_len*/,
                                   bool /*real engine*/>;

class PuzzleGridTest : public ::testing::TestWithParam<PuzzleGridParam> {
 protected:
  std::unique_ptr<puzzle::PuzzleEngine> make_engine() const {
    const auto [k, m, l, real] = GetParam();
    (void)k;
    (void)m;
    puzzle::EngineConfig cfg;
    cfg.sol_len = static_cast<std::uint8_t>(l);
    cfg.expiry_ms = 10'000;
    const auto secret = crypto::SecretKey::from_seed(1234);
    if (real) {
      return std::make_unique<puzzle::Sha256PuzzleEngine>(secret, cfg);
    }
    return std::make_unique<puzzle::OraclePuzzleEngine>(secret, cfg);
  }
  puzzle::Difficulty diff() const {
    const auto [k, m, l, real] = GetParam();
    (void)l;
    (void)real;
    return {static_cast<std::uint8_t>(k), static_cast<std::uint8_t>(m)};
  }
};

TEST_P(PuzzleGridTest, RoundTripVerifies) {
  const auto engine = make_engine();
  const puzzle::FlowBinding flow{1, 2, 3, 4, 5};
  const auto ch = engine->make_challenge(flow, 777, diff());
  EXPECT_EQ(ch.preimage.size(), std::get<2>(GetParam()));
  Rng rng(99);
  std::uint64_t ops = 0;
  const auto sol = engine->solve(ch, flow, rng, ops);
  const auto out = engine->verify(flow, sol, diff(), 800);
  EXPECT_TRUE(out.ok) << to_string(out.error);
}

TEST_P(PuzzleGridTest, EveryByteTamperRejected) {
  const auto engine = make_engine();
  const puzzle::FlowBinding flow{9, 8, 7, 6, 5};
  const auto ch = engine->make_challenge(flow, 50, diff());
  Rng rng(7);
  std::uint64_t ops = 0;
  const auto sol = engine->solve(ch, flow, rng, ops);
  for (std::size_t v = 0; v < sol.values.size(); ++v) {
    for (std::size_t b = 0; b < sol.values[v].size(); ++b) {
      puzzle::Solution bad = sol;
      bad.values[v][b] ^= 0x01;
      // For the oracle engine any flip fails. For the real engine a flipped
      // low bit could accidentally still satisfy the m-bit prefix; accept a
      // pass only if genuine re-verification agrees.
      const auto out = engine->verify(flow, bad, diff(), 60);
      if (std::get<3>(GetParam())) {
        if (out.ok) {
          // verify() said ok: the flipped value must genuinely satisfy the
          // prefix condition (possible; probability 2^-m per flip).
          continue;
        }
        EXPECT_EQ(out.error, puzzle::VerifyError::kBadSolution);
      } else {
        EXPECT_FALSE(out.ok) << "oracle must reject any modification";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PuzzleGridTest,
    ::testing::Combine(::testing::Values(1, 2, 4),       // k
                       ::testing::Values(1, 4, 8, 11),   // m (brute-forceable)
                       ::testing::Values(4, 8, 16),      // sol_len
                       ::testing::Bool()),               // real engine?
    [](const ::testing::TestParamInfo<PuzzleGridParam>& info) {
      return std::string(std::get<3>(info.param) ? "Sha256" : "Oracle") +
             "_k" + std::to_string(std::get<0>(info.param)) + "_m" +
             std::to_string(std::get<1>(info.param)) + "_l" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Options codec: random round-trips and total decoding.
// ---------------------------------------------------------------------------

class OptionsFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

tcp::Options random_options(Rng& rng) {
  tcp::Options o;
  if (rng.bernoulli(0.7)) o.mss = static_cast<std::uint16_t>(rng.uniform_u64(65536));
  if (rng.bernoulli(0.5)) o.wscale = static_cast<std::uint8_t>(rng.uniform_u64(15));
  o.sack_permitted = rng.bernoulli(0.4);
  if (rng.bernoulli(0.6)) {
    o.ts = tcp::TimestampsOption{static_cast<std::uint32_t>(rng.next()),
                                 static_cast<std::uint32_t>(rng.next())};
  }
  // Either a challenge or a solution (they do not co-occur on the wire).
  if (rng.bernoulli(0.5)) {
    tcp::ChallengeOption c;
    c.k = static_cast<std::uint8_t>(1 + rng.uniform_u64(4));
    c.m = static_cast<std::uint8_t>(1 + rng.uniform_u64(20));
    c.sol_len = 4;
    if (!o.ts) c.embedded_ts = static_cast<std::uint32_t>(rng.next());
    c.preimage.resize(c.sol_len);
    for (auto& byte : c.preimage) byte = static_cast<std::uint8_t>(rng.next());
    o.challenge = std::move(c);
  } else if (rng.bernoulli(0.5)) {
    tcp::SolutionOption s;
    s.mss = static_cast<std::uint16_t>(rng.uniform_u64(65536));
    s.wscale = static_cast<std::uint8_t>(rng.uniform_u64(15));
    if (!o.ts) s.embedded_ts = static_cast<std::uint32_t>(rng.next());
    const std::size_t n = 4 * (1 + rng.uniform_u64(2));  // k in {1,2}, l=4
    s.solutions.resize(n);
    for (auto& byte : s.solutions) byte = static_cast<std::uint8_t>(rng.next());
    o.solution = std::move(s);
  }
  return o;
}

TEST_P(OptionsFuzzTest, RandomRoundTripsAreExact) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const tcp::Options o = random_options(rng);
    Bytes wire;
    try {
      wire = tcp::encode_options(o);
    } catch (const std::length_error&) {
      continue;  // oversize combination: correctly refused
    }
    ASSERT_EQ(wire.size() % 4, 0u);
    ASSERT_LE(wire.size(), tcp::kMaxOptionsBytes);
    tcp::Options back;
    ASSERT_EQ(tcp::decode_options(wire, back), tcp::DecodeResult::kOk);
    EXPECT_EQ(back, o);
  }
}

TEST_P(OptionsFuzzTest, DecoderIsTotalOnByteSoup) {
  Rng rng(GetParam() ^ 0xf00dull);
  for (int i = 0; i < 3000; ++i) {
    Bytes wire(rng.uniform_u64(41));
    for (auto& b : wire) b = static_cast<std::uint8_t>(rng.next());
    tcp::Options out;
    // Must terminate and never crash; result value is unconstrained.
    (void)tcp::decode_options(wire, out);
  }
}

TEST_P(OptionsFuzzTest, TruncationsNeverCrash) {
  Rng rng(GetParam() ^ 0xbeefull);
  for (int i = 0; i < 300; ++i) {
    const tcp::Options o = random_options(rng);
    Bytes wire;
    try {
      wire = tcp::encode_options(o);
    } catch (const std::length_error&) {
      continue;
    }
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      Bytes partial(wire.begin(), wire.begin() + static_cast<long>(cut));
      tcp::Options out;
      (void)tcp::decode_options(partial, out);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptionsFuzzTest,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull));

// ---------------------------------------------------------------------------
// SYN cookies over random flows.
// ---------------------------------------------------------------------------

class CookieFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CookieFuzzTest, RoundTripAndTamper) {
  Rng rng(GetParam());
  tcp::SynCookieCodec codec(crypto::SecretKey::from_seed(GetParam()));
  for (int i = 0; i < 300; ++i) {
    const tcp::FlowKey flow{static_cast<std::uint32_t>(rng.next()),
                            static_cast<std::uint16_t>(rng.next()),
                            static_cast<std::uint32_t>(rng.next()),
                            static_cast<std::uint16_t>(rng.next())};
    const auto isn = static_cast<std::uint32_t>(rng.next());
    const auto mss = static_cast<std::uint16_t>(536 + rng.uniform_u64(9000));
    const auto now = static_cast<std::uint32_t>(rng.uniform_u64(1u << 24));
    const std::uint32_t cookie = codec.encode(flow, isn, mss, now);

    const auto decoded = codec.decode(flow, isn, cookie, now);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_LE(*decoded, mss);  // quantised downward, never upward

    // Any single-bit flip in the MAC region must invalidate the cookie.
    const int bit = static_cast<int>(rng.uniform_u64(24));
    EXPECT_FALSE(codec.decode(flow, isn, cookie ^ (1u << bit), now).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CookieFuzzTest,
                         ::testing::Values(10ull, 20ull, 30ull));

// ---------------------------------------------------------------------------
// Game model over random instances.
// ---------------------------------------------------------------------------

class GameFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GameFuzzTest, EquilibriumSatisfiesKkt) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    game::GameConfig cfg;
    const std::size_t n = 2 + rng.uniform_u64(30);
    for (std::size_t i = 0; i < n; ++i) {
      cfg.valuations.push_back(rng.uniform(10.0, 10'000.0));
    }
    cfg.mu = rng.uniform(5.0, 2'000.0);
    const double r_hat = game::max_feasible_price(cfg);
    if (r_hat <= 0) continue;
    const double price = rng.uniform(0.01, 0.95) * r_hat;
    const auto eq = game::solve_equilibrium(cfg, price);
    if (!eq.exists) continue;

    ASSERT_LT(eq.total_rate, cfg.mu);
    const double slack = cfg.mu - eq.total_rate;
    const double lambda = price + 1.0 / (slack * slack);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_GE(eq.rates[i], 0.0);
      if (eq.rates[i] > 0) {
        // Active users: stationarity w_i/(1+x_i) = lambda.
        EXPECT_NEAR(cfg.valuations[i] / (1.0 + eq.rates[i]), lambda,
                    lambda * 1e-4);
      } else {
        // Dropped users: marginal utility at 0 must not exceed the price
        // signal (complementary slackness).
        EXPECT_LE(cfg.valuations[i], lambda * (1.0 + 1e-9));
      }
    }
  }
}

TEST_P(GameFuzzTest, ObjectiveConcaveAlongPrice) {
  Rng rng(GetParam() ^ 0x9999ull);
  for (int trial = 0; trial < 20; ++trial) {
    game::GameConfig cfg;
    const std::size_t n = 3 + rng.uniform_u64(20);
    const double w = rng.uniform(100.0, 50'000.0);
    cfg.valuations.assign(n, w);
    cfg.mu = rng.uniform(0.5, 3.0) * static_cast<double>(n);
    const double r_hat = game::max_feasible_price(cfg);
    if (r_hat <= 0) continue;
    const auto sol = game::optimal_price(cfg);
    // The optimum must dominate a dense grid over the feasible range.
    for (int g = 1; g <= 20; ++g) {
      const double price = r_hat * g / 21.0;
      EXPECT_GE(sol.objective * (1 + 1e-6) + 1e-9,
                game::provider_objective_approx(cfg, price))
          << "price " << price;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GameFuzzTest,
                         ::testing::Values(100ull, 200ull, 300ull));

// ---------------------------------------------------------------------------
// Listener under a randomised segment storm: must not crash; bounded queues;
// consistent counters.
// ---------------------------------------------------------------------------

class ListenerStormTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ListenerStormTest, InvariantsHoldUnderGarbage) {
  Rng rng(GetParam());
  for (const auto mode :
       {tcp::DefenseMode::kNone, tcp::DefenseMode::kSynCookies,
        tcp::DefenseMode::kPuzzles}) {
    tcp::ListenerConfig cfg;
    cfg.local_addr = tcp::ipv4(10, 1, 0, 1);
    cfg.local_port = 80;
    cfg.listen_backlog = 16;
    cfg.accept_backlog = 16;
    cfg.mode = mode;
    cfg.difficulty = {2, 8};
    const auto secret = crypto::SecretKey::from_seed(5);
    auto engine = std::make_shared<puzzle::OraclePuzzleEngine>(
        secret, puzzle::EngineConfig{4, 4000, 100});
    tcp::Listener listener(cfg, secret, GetParam(), engine);

    SimTime now = SimTime::zero();
    for (int i = 0; i < 5'000; ++i) {
      now += SimTime::microseconds(static_cast<std::int64_t>(rng.uniform_u64(2000)));
      tcp::Segment seg;
      seg.saddr = static_cast<std::uint32_t>(rng.uniform_u64(64));
      seg.daddr = cfg.local_addr;
      seg.sport = static_cast<std::uint16_t>(rng.uniform_u64(128));
      seg.dport = cfg.local_port;
      seg.seq = static_cast<std::uint32_t>(rng.next());
      seg.ack = static_cast<std::uint32_t>(rng.next());
      seg.flags = static_cast<std::uint8_t>(rng.uniform_u64(0x20));
      seg.payload_bytes = static_cast<std::uint32_t>(rng.uniform_u64(3) * 100);
      if (rng.bernoulli(0.3)) {
        seg.options.ts = tcp::TimestampsOption{
            static_cast<std::uint32_t>(now.nanos() / 1'000'000),
            static_cast<std::uint32_t>(rng.next())};
      }
      if (rng.bernoulli(0.1)) {
        tcp::SolutionOption sol;
        sol.mss = 1460;
        sol.wscale = 7;
        if (!seg.options.ts) {
          sol.embedded_ts = static_cast<std::uint32_t>(rng.next());
        }
        sol.solutions.resize(4 * (1 + rng.uniform_u64(3)));
        for (auto& b : sol.solutions) b = static_cast<std::uint8_t>(rng.next());
        seg.options.solution = std::move(sol);
      }
      (void)listener.on_segment(now, seg);
      if (i % 50 == 0) (void)listener.on_tick(now);
      if (i % 70 == 0) (void)listener.accept(now);

      ASSERT_LE(listener.listen_depth(), cfg.listen_backlog);
      ASSERT_LE(listener.accept_depth(), cfg.accept_backlog);
    }

    const auto& c = listener.counters();
    EXPECT_EQ(c.established_total,
              c.established_queue + c.established_cookie + c.established_puzzle);
    EXPECT_GE(c.synacks_sent,
              c.challenges_sent + c.cookies_sent);
    EXPECT_GE(c.solution_acks, c.solutions_valid + c.solutions_invalid +
                                   c.solutions_expired);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ListenerStormTest,
                         ::testing::Values(1ull, 7ull, 42ull, 1337ull));

}  // namespace
}  // namespace tcpz
