#include <gtest/gtest.h>

#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"

namespace tcpz::net {
namespace {

// ---------------------------------------------------------------------------
// Simulator core
// ---------------------------------------------------------------------------

TEST(Simulator, ProcessesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::seconds(3), [&] { order.push_back(3); });
  sim.schedule_at(SimTime::seconds(1), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::seconds(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, TiesBreakInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime::seconds(1), [&, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, RunUntilAdvancesClockAndStops) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(SimTime::seconds(1), [&] { ++fired; });
  sim.schedule_at(SimTime::seconds(5), [&] { ++fired; });
  sim.run_until(SimTime::seconds(2));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::seconds(2));
  sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(SimTime::seconds(1), recurse);
  };
  sim.schedule_at(SimTime::zero(), recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), SimTime::seconds(4));
}

TEST(Simulator, SchedulingIntoPastThrows) {
  Simulator sim;
  sim.schedule_at(SimTime::seconds(1), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(SimTime::zero(), [] {}), std::logic_error);
}

// ---------------------------------------------------------------------------
// Link: serialization, delay, queue cap
// ---------------------------------------------------------------------------

class SinkHost {
 public:
  SinkHost(Simulator& sim, std::uint32_t addr) : host_(sim, "sink", addr) {
    host_.set_handler([this](SimTime t, const tcp::Segment&) {
      arrivals_.push_back(t);
    });
  }
  Host& host() { return host_; }
  const std::vector<SimTime>& arrivals() const { return arrivals_; }

 private:
  Host host_;
  std::vector<SimTime> arrivals_;
};

tcp::Segment seg_of_size(std::uint32_t payload, std::uint32_t daddr) {
  tcp::Segment s;
  s.daddr = daddr;
  s.flags = tcp::kAck;
  s.payload_bytes = payload;
  return s;
}

TEST(Link, SerializationPlusPropagationDelay) {
  Simulator sim;
  SinkHost sink(sim, 42);
  // 1 Mbps, 10 ms delay: a 1040-byte frame (1000 payload + 40 headers)
  // serialises in 8.32 ms.
  Link link(sim, sink.host(), 1e6, SimTime::milliseconds(10), 1 << 20, "l");
  sim.schedule_at(SimTime::zero(), [&] { link.transmit(seg_of_size(1000, 42)); });
  sim.run();
  ASSERT_EQ(sink.arrivals().size(), 1u);
  EXPECT_NEAR(sink.arrivals()[0].to_seconds(), 0.01832, 1e-5);
}

TEST(Link, BackToBackPacketsQueueBehindEachOther) {
  Simulator sim;
  SinkHost sink(sim, 42);
  Link link(sim, sink.host(), 1e6, SimTime::zero(), 1 << 20, "l");
  sim.schedule_at(SimTime::zero(), [&] {
    link.transmit(seg_of_size(1000, 42));
    link.transmit(seg_of_size(1000, 42));
  });
  sim.run();
  ASSERT_EQ(sink.arrivals().size(), 2u);
  const double gap =
      (sink.arrivals()[1] - sink.arrivals()[0]).to_seconds();
  EXPECT_NEAR(gap, 1040 * 8.0 / 1e6, 1e-6);  // one serialization time apart
}

TEST(Link, DropsWhenQueueCapExceeded) {
  Simulator sim;
  SinkHost sink(sim, 42);
  // Each frame is 1040 B and the backlog includes the frame in flight, so a
  // 2.5 KB queue admits two frames; the third must be dropped.
  Link link(sim, sink.host(), 1e6, SimTime::zero(), 2500, "l");
  sim.schedule_at(SimTime::zero(), [&] {
    link.transmit(seg_of_size(1000, 42));
    link.transmit(seg_of_size(1000, 42));
    link.transmit(seg_of_size(1000, 42));
  });
  sim.run();
  EXPECT_EQ(sink.arrivals().size(), 2u);
  EXPECT_EQ(link.stats().drops, 1u);
  EXPECT_EQ(link.stats().tx_packets, 2u);
}

TEST(Link, StatsCountBytes) {
  Simulator sim;
  SinkHost sink(sim, 42);
  Link link(sim, sink.host(), 1e9, SimTime::zero(), 1 << 20, "l");
  sim.schedule_at(SimTime::zero(), [&] { link.transmit(seg_of_size(60, 42)); });
  sim.run();
  EXPECT_EQ(link.stats().tx_bytes, 100u);  // 60 payload + 40 headers
}

// ---------------------------------------------------------------------------
// Topology and routing
// ---------------------------------------------------------------------------

TEST(Topology, RoutesAcrossTriangleBackbone) {
  Simulator sim;
  Topology topo(sim);
  Router* r1 = topo.add_router("r1");
  Router* r2 = topo.add_router("r2");
  Router* r3 = topo.add_router("r3");
  const LinkSpec spec{1e9, SimTime::microseconds(100), 1 << 20};
  topo.connect(r1, r2, spec);
  topo.connect(r2, r3, spec);
  topo.connect(r1, r3, spec);

  Host* a = topo.add_host("a", 100);
  Host* b = topo.add_host("b", 200);
  topo.connect(a, r2, spec);
  topo.connect(b, r3, spec);
  topo.compute_routes();

  int received = 0;
  b->set_handler([&](SimTime, const tcp::Segment& s) {
    EXPECT_EQ(s.daddr, 200u);
    ++received;
  });
  sim.schedule_at(SimTime::zero(), [&] { a->send(seg_of_size(10, 200)); });
  sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(a->tx_packets(), 1u);
  EXPECT_EQ(b->rx_packets(), 1u);
}

TEST(Topology, ShortestPathPreferred) {
  // a - r1 - r2 - b  and a longer a - r1 - r3 - r2 path: BFS must pick the
  // two-hop route, observable through the arrival time.
  Simulator sim;
  Topology topo(sim);
  Router* r1 = topo.add_router("r1");
  Router* r2 = topo.add_router("r2");
  Router* r3 = topo.add_router("r3");
  const LinkSpec fast{1e9, SimTime::milliseconds(1), 1 << 20};
  topo.connect(r1, r2, fast);
  topo.connect(r1, r3, fast);
  topo.connect(r3, r2, fast);
  Host* a = topo.add_host("a", 1);
  Host* b = topo.add_host("b", 2);
  topo.connect(a, r1, fast);
  topo.connect(b, r2, fast);
  topo.compute_routes();

  SimTime arrival;
  b->set_handler([&](SimTime t, const tcp::Segment&) { arrival = t; });
  sim.schedule_at(SimTime::zero(), [&] { a->send(seg_of_size(0, 2)); });
  sim.run();
  // 3 hops * 1 ms (+ negligible serialization at 1 Gbps).
  EXPECT_LT(arrival.to_seconds(), 0.0035);
  EXPECT_GT(arrival.to_seconds(), 0.0029);
}

TEST(Topology, UnroutableSpoofedBackscatterDropped) {
  // Reply to a spoofed source address must die at the router, not crash.
  Simulator sim;
  Topology topo(sim);
  Router* r1 = topo.add_router("r1");
  Host* a = topo.add_host("a", 1);
  topo.connect(a, r1, {1e9, SimTime::microseconds(10), 1 << 20});
  topo.compute_routes();
  sim.schedule_at(SimTime::zero(), [&] { a->send(seg_of_size(0, 0xdeadbeef)); });
  sim.run();
  EXPECT_EQ(r1->unroutable_drops(), 1u);
}

TEST(Topology, HostIgnoresForeignPackets) {
  Simulator sim;
  Topology topo(sim);
  Host* a = topo.add_host("a", 1);
  int received = 0;
  a->set_handler([&](SimTime, const tcp::Segment&) { ++received; });
  a->deliver(seg_of_size(0, 99));  // not addressed to us
  EXPECT_EQ(received, 0);
  EXPECT_EQ(a->rx_packets(), 0u);
}

}  // namespace
}  // namespace tcpz::net
