// Tests for the pluggable workload layer (src/workload/): the TrafficModel
// decision tables, the ModelSpec value-type arithmetic, and the hybrid
// fluid/discrete population.
//
// The fluid half is validated at three levels:
//  1. Conservation: every unit of offered mass is eventually completed,
//     failed, refused, or still in a pool (exact flow-balance bookkeeping,
//     driven through a real tcp::Listener so the admission split is the
//     production one).
//  2. Plumbing: a hybrid scenario::Spec wires cohort + fluid through the
//     engine, folds both into the client aggregates, and records the fluid
//     counters and trace events.
//  3. Fidelity: at an overlapping scale (15 modeled users), a hybrid run's
//     goodput must track the full-discrete run within a tight tolerance in
//     both the pre-attack and under-attack windows of the Fig. 7/8 fixture —
//     this is the gate that licenses the million-user extrapolation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "crypto/secret.hpp"
#include "defense/spec.hpp"
#include "obs/trace.hpp"
#include "offense/spec.hpp"
#include "puzzle/engine.hpp"
#include "scenario/spec.hpp"
#include "tcp/listener.hpp"
#include "util/rng.hpp"
#include "workload/fluid.hpp"
#include "workload/models.hpp"
#include "workload/profiles.hpp"
#include "workload/spec.hpp"

namespace tcpz {
namespace {

using workload::ClientView;
using workload::FluidConfig;
using workload::FluidPopulation;
using workload::ModelSpec;
using workload::OpenLoopPoisson;

// ---------------------------------------------------------------------------
// exp_interarrival: the one shared Exp(rate) draw helper
// ---------------------------------------------------------------------------

// The client models and the server's M/M/1 service loop all sample open-loop
// waits through util/rng.hpp's exp_interarrival. This pins the draw pipeline
// byte-identically: the literal golden sequence below was recorded from
// Rng(42) at the §6 client rate, and the helper must also equal the inline
// SimTime::from_seconds(rng.exponential(rate)) form it replaced — if either
// comparison breaks, every golden scenario trace in the repo drifts.
TEST(ExpInterarrival, DrawSequencePinnedByteIdentical) {
  constexpr std::int64_t kGoldenNanos[] = {4379467ll,   23819620ll,
                                           56978498ll,  129309073ll,
                                           240204930ll, 73427192ll};
  Rng rng(42);
  Rng twin(42);
  for (const std::int64_t golden : kGoldenNanos) {
    const SimTime d = exp_interarrival(rng, workload::profiles::kRequestRate);
    EXPECT_EQ(d.nanos(), golden);
    EXPECT_EQ(d, SimTime::from_seconds(
                     twin.exponential(workload::profiles::kRequestRate)));
  }
}

// ---------------------------------------------------------------------------
// OpenLoopPoisson decision table
// ---------------------------------------------------------------------------

TEST(OpenLoopPoissonModel, DecisionTable) {
  OpenLoopPoisson model(20.0, 200, 100'000, /*max_pending=*/4);
  EXPECT_STREQ(model.name(), "open-loop-poisson");

  // next_arrival is exactly one exp_interarrival draw per call, in order.
  Rng rng(7);
  Rng twin(7);
  ClientView v;
  v.rng = &rng;
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(model.next_arrival(v), exp_interarrival(twin, 20.0));
  }

  // Fixed request shape, independent of state.
  v.inflight = 17;
  const workload::RequestShape shape = model.request_shape(v);
  EXPECT_EQ(shape.request_bytes, 200u);
  EXPECT_EQ(shape.response_bytes, 100'000u);

  // Challenge backpressure: accept strictly below max_pending, refuse at it.
  const puzzle::Challenge c{};
  v.pending_solves = 0;
  EXPECT_TRUE(model.accept_challenge(v, c));
  v.pending_solves = 3;
  EXPECT_TRUE(model.accept_challenge(v, c));
  v.pending_solves = 4;
  EXPECT_FALSE(model.accept_challenge(v, c));
}

// ---------------------------------------------------------------------------
// ModelSpec value arithmetic
// ---------------------------------------------------------------------------

TEST(ModelSpecTest, LegacyShimIsOpenLoopWithSameDemand) {
  const ModelSpec m = ModelSpec::from_legacy(10.0, 300, 5'000, 2);
  ModelSpec want = ModelSpec::open_loop();
  want.request_rate = 10.0;
  want.request_bytes = 300;
  want.response_bytes = 5'000;
  want.max_pending_solves = 2;
  EXPECT_EQ(m, want);
  EXPECT_STREQ(m.kind_name(), "open-loop-poisson");
  EXPECT_EQ(m.cohort_size(), 0u);
  EXPECT_EQ(m.fluid_users(), 0u);
  EXPECT_STREQ(m.build()->name(), "open-loop-poisson");
}

TEST(ModelSpecTest, HybridPopulationSplit) {
  // A million users at a 1e-5 sampling ratio: ten discrete agents carry the
  // exact statistics, the rest is fluid mass.
  const ModelSpec big = ModelSpec::hybrid(1'000'000, 1e-5);
  EXPECT_STREQ(big.kind_name(), "hybrid-fluid");
  EXPECT_EQ(big.cohort_size(), 10u);
  EXPECT_EQ(big.fluid_users(), 999'990u);

  EXPECT_EQ(ModelSpec::hybrid(10, 0.3).cohort_size(), 3u);
  EXPECT_EQ(ModelSpec::hybrid(10, 0.3).fluid_users(), 7u);
  // Clamps: ratio 0 is pure fluid, ratio >= 1 is pure discrete.
  EXPECT_EQ(ModelSpec::hybrid(10, 0.0).cohort_size(), 0u);
  EXPECT_EQ(ModelSpec::hybrid(10, 0.0).fluid_users(), 10u);
  EXPECT_EQ(ModelSpec::hybrid(10, 1.0).cohort_size(), 10u);
  EXPECT_EQ(ModelSpec::hybrid(10, 1.0).fluid_users(), 0u);
  EXPECT_EQ(ModelSpec::hybrid(10, 5.0).cohort_size(), 10u);
}

// ---------------------------------------------------------------------------
// FluidPopulation conservation, against a real Listener
// ---------------------------------------------------------------------------

constexpr std::uint32_t kAddr = tcp::ipv4(10, 1, 0, 1);

/// A real Listener under the given policy, same construction the scenario
/// engine performs (oracle puzzle engine, seeded secret).
struct FluidHarness {
  explicit FluidHarness(defense::PolicySpec spec,
                        std::size_t listen_backlog = 4096,
                        std::size_t accept_backlog = 1024) {
    tcp::ListenerConfig cfg;
    cfg.local_addr = kAddr;
    cfg.local_port = 80;
    cfg.listen_backlog = listen_backlog;
    cfg.accept_backlog = accept_backlog;
    cfg.difficulty = {2, 17};
    cfg.policy = spec.factory();
    engine = std::make_shared<puzzle::OraclePuzzleEngine>(
        secret, puzzle::EngineConfig{4, 4000, 100});
    listener = std::make_unique<tcp::Listener>(cfg, secret, 1, engine);
  }

  /// Steps `pop` for `seconds` of simulated time at a 100 ms tick.
  void run(FluidPopulation& pop, double seconds) {
    const SimTime dt = SimTime::milliseconds(100);
    for (SimTime t = dt; t.to_seconds() <= seconds; t += dt) {
      pop.step(t, dt, *listener);
    }
  }

  crypto::SecretKey secret = crypto::SecretKey::from_seed(7);
  std::shared_ptr<puzzle::OraclePuzzleEngine> engine;
  std::unique_ptr<tcp::Listener> listener;
};

FluidConfig benign_config(double users) {
  FluidConfig fc;
  fc.users = users;
  fc.request_rate = 20.0;
  fc.service_rate = 1100.0;
  return fc;
}

// Underloaded, no defense pressure: every offered unit flows straight
// through enqueue -> establish -> service -> completion. Conservation must
// be exact (up to float error) and nothing may fail or be refused.
TEST(FluidPopulationTest, BenignFlowConservesMassAndCompletes) {
  FluidHarness h(defense::PolicySpec::none());
  FluidPopulation pop(benign_config(50), {2, 17});
  h.run(pop, 30.0);

  const double created = pop.created();
  EXPECT_NEAR(created, 50 * 20.0 * 30.0, 1e-6);
  EXPECT_LT(pop.conservation_error(), 1e-6 * created);
  EXPECT_EQ(pop.failed(), 0.0);
  EXPECT_EQ(pop.refused(), 0.0);
  // All but the in-service tail completed (demand 1000/s < mu 1100/s).
  EXPECT_GT(pop.completed(), created - 0.2 * 1000.0 - 1.0);

  const tcp::ListenerCounters& c = h.listener->counters();
  EXPECT_NEAR(static_cast<double>(c.fluid_syns_offered), created, 2.0);
  EXPECT_NEAR(static_cast<double>(c.fluid_enqueued), created, 2.0);
  EXPECT_EQ(c.fluid_challenged, 0u);
  EXPECT_EQ(c.fluid_dropped, 0u);
  EXPECT_EQ(c.fluid_deceived, 0u);
  EXPECT_NEAR(static_cast<double>(c.fluid_established),
              pop.completed() + pop.service_backlog(), 2.0);
  // Report integer totals track the same ledger through the floor-carries.
  EXPECT_NEAR(static_cast<double>(pop.report().total_attempts), created, 2.0);
  EXPECT_NEAR(static_cast<double>(pop.report().total_completions),
              pop.completed(), 2.0);
}

// Always-challenge puzzles: the population is solve-limited at the Fig. 3a
// price. Completion throughput must converge to N * hash_rate / l(p) and the
// per-user bounded solve queue must shed the excess as refusals.
TEST(FluidPopulationTest, ChallengedFlowIsSolveLimited) {
  defense::PolicySpec spec = defense::PolicySpec::puzzles();
  spec.always_challenge = true;
  FluidHarness h(spec);
  FluidPopulation pop(benign_config(50), {2, 17});
  h.run(pop, 30.0);

  EXPECT_LT(pop.conservation_error(), 1e-6 * pop.created());
  const tcp::ListenerCounters& c = h.listener->counters();
  EXPECT_GT(c.fluid_challenged, 0u);
  EXPECT_GT(c.fluid_solution_acks, 0u);
  EXPECT_EQ(c.fluid_enqueued, 0u);

  // l(2,17) = 131072 hashes -> 2.68 solves/s/user -> 134/s for 50 users,
  // far below the 1000/s offered: the bounded queue overflows into refusals.
  const double solve_rate =
      50.0 * workload::profiles::kClientHashRate /
      puzzle::Difficulty{2, 17}.expected_solve_hashes();
  EXPECT_GT(pop.refused(), 0.0);
  EXPECT_NEAR(pop.completed(), solve_rate * 30.0, 0.15 * solve_rate * 30.0);
  // The solve backlog saturates at users * max_pending (less the one tick's
  // worth of drain that happens between refills).
  EXPECT_LE(pop.solve_backlog(), 50.0 * 4 + 1e-9);
  EXPECT_GT(pop.solve_backlog(), 50.0 * 4 - 2.0 * solve_rate * 0.1);
}

// Unpatched kernels (solve_puzzles = false) refuse every challenge.
TEST(FluidPopulationTest, UnpatchedPopulationRefusesChallenges) {
  defense::PolicySpec spec = defense::PolicySpec::puzzles();
  spec.always_challenge = true;
  FluidHarness h(spec);
  FluidConfig fc = benign_config(50);
  fc.solve_puzzles = false;
  FluidPopulation pop(fc, {2, 17});
  h.run(pop, 10.0);

  EXPECT_LT(pop.conservation_error(), 1e-6 * pop.created());
  EXPECT_EQ(pop.completed(), 0.0);
  EXPECT_NEAR(pop.refused(), pop.created(), 1e-6 * pop.created());
}

// A starved listen queue: dropped SYN mass cycles through the retry pool and
// eventually gives up, as a discrete client's SYN-retx budget does.
TEST(FluidPopulationTest, DroppedSynMassRetriesThenFails) {
  FluidHarness h(defense::PolicySpec::none(), /*listen_backlog=*/8,
                 /*accept_backlog=*/8);
  FluidConfig fc = benign_config(200);  // 4000/s offered vs 8 listen slots
  fc.service_rate = 50.0;
  FluidPopulation pop(fc, {2, 17});
  h.run(pop, 20.0);

  EXPECT_LT(pop.conservation_error(), 1e-6 * pop.created());
  const tcp::ListenerCounters& c = h.listener->counters();
  EXPECT_GT(c.fluid_dropped, 0u);
  EXPECT_GT(pop.failed(), 0.0);
  EXPECT_GT(pop.syn_retry_backlog(), 0.0);
  // Published occupancy: the overflowing service backlog holds accept depth.
  EXPECT_GT(h.listener->fluid_accept_occupancy(), 0.0);
}

// ---------------------------------------------------------------------------
// Hybrid scenarios through the engine
// ---------------------------------------------------------------------------

/// A benign 30 s hybrid spec: `users` modeled users at the given cohort
/// ratio, no attack.
scenario::Spec benign_hybrid(std::uint64_t users, double ratio) {
  scenario::Spec s;
  s.duration = SimTime::seconds(30);
  s.attack_start = s.duration;
  s.attack_end = s.duration;
  s.workload.model = ModelSpec::hybrid(users, ratio);
  return s;
}

std::uint64_t combined_completions(const scenario::Result& r) {
  std::uint64_t total = 0;
  for (const auto& c : r.clients) total += c.total_completions;
  for (const auto& f : r.fluid) total += f.total_completions;
  return total;
}

// Sweeping the cohort ratio from pure-fluid to pure-discrete must not move
// the population's delivered throughput: the fluid aggregate and the
// discrete agents model the same per-user demand.
TEST(HybridScenarioTest, CohortRatioSweepDeliversSameThroughput) {
  const std::uint64_t kUsers = 10;
  const double kExpected = 10 * 20.0 * 30.0;  // users * lambda * duration
  std::vector<double> totals;
  for (const double ratio : {0.0, 0.3, 1.0}) {
    const ModelSpec model = ModelSpec::hybrid(kUsers, ratio);
    const scenario::Result r = scenario::run(benign_hybrid(kUsers, ratio));
    EXPECT_EQ(r.clients.size(), model.cohort_size()) << "ratio " << ratio;
    EXPECT_EQ(r.fluid_users, model.fluid_users()) << "ratio " << ratio;
    EXPECT_EQ(r.fluid.size(), model.fluid_users() > 0 ? 1u : 0u);
    const double total = static_cast<double>(combined_completions(r));
    EXPECT_NEAR(total, kExpected, 0.08 * kExpected) << "ratio " << ratio;
    totals.push_back(total);
  }
  const auto [lo, hi] = std::minmax_element(totals.begin(), totals.end());
  EXPECT_LE(*hi - *lo, 0.10 * *hi);
}

// The fluid mass flows through the real listener: its admissions land in the
// fluid_* counters and (when tracing) the kFluid event category.
TEST(HybridScenarioTest, FluidAdmissionsAreObservable) {
  scenario::Spec s = benign_hybrid(20, 0.0);
  s.duration = SimTime::seconds(10);
  s.attack_start = s.attack_end = s.duration;
  s.obs.trace = true;
  s.obs.ring_capacity = 1u << 14;
  const scenario::Result r = scenario::run(s);

  EXPECT_GT(r.server().counters.fluid_syns_offered, 0u);
  EXPECT_GT(r.server().counters.fluid_established, 0u);
  ASSERT_NE(r.trace, nullptr);
  std::uint64_t offers = 0, establishes = 0;
  r.trace->for_each([&](const obs::TraceEvent& e) {
    if (e.code == static_cast<std::uint8_t>(obs::Code::kFluidOffer)) ++offers;
    if (e.code == static_cast<std::uint8_t>(obs::Code::kFluidEstablish)) {
      ++establishes;
    }
    if (e.cat == static_cast<std::uint8_t>(obs::Cat::kFluid)) {
      EXPECT_EQ(obs::cat_of(static_cast<obs::Code>(e.code)), obs::Cat::kFluid);
    }
  });
  EXPECT_GT(offers, 0u);
  EXPECT_GT(establishes, 0u);
}

// ---------------------------------------------------------------------------
// Fluid-vs-discrete fidelity: the Fig. 7/8 fixture at overlapping scale
// ---------------------------------------------------------------------------

/// The scaled §6 shape on a 60 s timeline: 15 modeled users, a conn-flood
/// botnet in [20 s, 45 s), one policy. `hybrid` swaps the 15 discrete agents
/// for a 3-agent cohort + 12-user fluid aggregate.
scenario::Spec fidelity_spec(const defense::PolicySpec& policy, bool hybrid) {
  scenario::Spec s;
  s.duration = SimTime::seconds(60);
  s.attack_start = SimTime::seconds(20);
  s.attack_end = SimTime::seconds(45);
  s.servers.policies = {policy};
  if (hybrid) s.workload.model = ModelSpec::hybrid(15, 0.2);
  scenario::AttackSpec a;
  a.strategy = offense::StrategySpec::conn_flood();
  s.attacks = {a};
  return s;
}

// The gate on the whole hybrid construction: at a scale where both models
// are affordable, the hybrid run must reproduce the full-discrete goodput —
// pre-attack and under attack, for each defense posture of Figs. 7/8 —
// within 5% of the discrete value (with an absolute floor of 5% of the
// nominal pre-attack goodput, so collapsed-goodput windows compare
// absolutely rather than as ratios of near-zero numbers).
TEST(HybridScenarioTest, FluidMatchesDiscreteGoodputWithinTolerance) {
  struct Variant {
    const char* name;
    defense::PolicySpec policy;
  };
  const Variant kVariants[] = {
      {"puzzles", defense::PolicySpec::puzzles()},
      {"syncookies", defense::PolicySpec::syn_cookies()},
      {"none", defense::PolicySpec::none()},
  };
  for (const Variant& v : kVariants) {
    const scenario::Result d = scenario::run(fidelity_spec(v.policy, false));
    const scenario::Result h = scenario::run(fidelity_spec(v.policy, true));
    // Second-bins well inside each window (edges excluded for ramp effects).
    const double pre_d = d.client_rx_mbps(5, 18);
    const double pre_h = h.client_rx_mbps(5, 18);
    const double atk_d = d.client_rx_mbps(25, 44);
    const double atk_h = h.client_rx_mbps(25, 44);
    const double floor = 0.05 * pre_d;
    EXPECT_LE(std::abs(pre_h - pre_d), std::max(0.05 * pre_d, floor))
        << v.name << ": pre-attack goodput discrete=" << pre_d
        << " hybrid=" << pre_h;
    EXPECT_LE(std::abs(atk_h - atk_d), std::max(0.05 * atk_d, floor))
        << v.name << ": under-attack goodput discrete=" << atk_d
        << " hybrid=" << atk_h;
  }
}

}  // namespace
}  // namespace tcpz
