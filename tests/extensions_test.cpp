// Tests for the extension modules: CSV report export, per-user pricing
// analysis, and the memory-bound PoW plumbing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "game/heterogeneous.hpp"
#include "sim/report_io.hpp"
#include "sim/scenario.hpp"

namespace tcpz {
namespace {

// ---------------------------------------------------------------------------
// CSV export
// ---------------------------------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::size_t count_lines(const std::string& s) {
  std::size_t n = 0;
  for (char c : s) n += (c == '\n');
  return n;
}

TEST(ReportIo, WritesAllCsvFamilies) {
  sim::ScenarioConfig cfg;
  cfg.seed = 3;
  cfg.duration = SimTime::seconds(12);
  cfg.attack_start = SimTime::seconds(4);
  cfg.attack_end = SimTime::seconds(9);
  cfg.n_clients = 2;
  cfg.client_rate = 5.0;
  cfg.response_bytes = 5'000;
  cfg.n_bots = 2;
  cfg.bot_rate = 200.0;
  cfg.listen_backlog = 64;
  cfg.accept_backlog = 64;
  cfg.service_rate = 100.0;
  cfg.attack = sim::AttackType::kConnFlood;
  cfg.defense = tcp::DefenseMode::kPuzzles;
  cfg.difficulty = {2, 14};
  const auto res = sim::run_scenario(cfg);

  const std::string prefix = ::testing::TempDir() + "tcpz_report";
  EXPECT_EQ(sim::write_csv(res, cfg, prefix), 5u);

  const std::string throughput = slurp(prefix + "_throughput.csv");
  EXPECT_NE(throughput.find("t_s,server_tx_mbps,client0_rx_mbps,client1_rx_mbps"),
            std::string::npos);
  EXPECT_EQ(count_lines(throughput), 1 + cfg.duration_bins());

  const std::string queues = slurp(prefix + "_queues.csv");
  EXPECT_NE(queues.find("listen,accept"), std::string::npos);
  EXPECT_EQ(count_lines(queues), 1 + cfg.duration_bins());

  const std::string summary = slurp(prefix + "_summary.csv");
  EXPECT_NE(summary.find("established_total,"), std::string::npos);
  EXPECT_NE(summary.find("challenges_sent,"), std::string::npos);

  // Connection-time file has one value per completed handshake.
  const std::string times = slurp(prefix + "_conn_times.csv");
  std::size_t samples = 0;
  for (const auto& c : res.clients) samples += c.conn_time_ms.count();
  EXPECT_EQ(count_lines(times), 1 + samples);
}

TEST(ReportIo, ThrowsOnUnwritablePath) {
  sim::ScenarioConfig cfg;
  cfg.duration = SimTime::seconds(1);
  cfg.attack_start = cfg.duration;
  cfg.attack_end = cfg.duration;
  cfg.n_clients = 1;
  cfg.n_bots = 0;
  const auto res = sim::run_scenario(cfg);
  EXPECT_THROW((void)sim::write_csv(res, cfg, "/nonexistent-dir/x"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Per-user pricing (price of statelessness)
// ---------------------------------------------------------------------------

TEST(Heterogeneous, HomogeneousUsersGainNothing) {
  game::GameConfig cfg;
  cfg.valuations.assign(50, 1000.0);
  cfg.mu = 60.0;
  // Identical users: per-user pricing cannot beat the uniform price by more
  // than the numerical tolerance.
  EXPECT_NEAR(game::price_of_statelessness(cfg), 1.0, 0.05);
}

TEST(Heterogeneous, UniformPricingIsNearOptimalEvenForSkewedMixes) {
  // The headline finding: under the paper's log-utility demand, per-user
  // pricing beats the uniform price by only a few percent even for a 33x
  // valuation skew — the stateless uniform-difficulty design costs almost
  // nothing in the leader's own objective.
  for (const double mu : {20.0, 40.0, 80.0}) {
    game::GameConfig cfg;
    for (int i = 0; i < 60; ++i) {
      cfg.valuations.push_back(i % 3 == 0 ? 10'000.0 : 300.0);
    }
    cfg.mu = mu;
    const double ratio = game::price_of_statelessness(cfg);
    EXPECT_GE(ratio, 1.0 - 1e-6) << mu;
    EXPECT_LT(ratio, 1.10) << mu;
  }
}

TEST(Heterogeneous, PricesTrackValuations) {
  game::GameConfig cfg;
  cfg.valuations = {100.0, 1'000.0, 10'000.0};
  cfg.mu = 10.0;
  const auto d = game::discriminatory_prices(cfg);
  ASSERT_EQ(d.prices.size(), 3u);
  EXPECT_LT(d.prices[0], d.prices[1]);
  EXPECT_LT(d.prices[1], d.prices[2]);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(d.rates[i], 0.0);
    EXPECT_LE(d.prices[i], cfg.valuations[i]);
  }
}

TEST(Heterogeneous, EmptyGameIsNeutral) {
  game::GameConfig cfg;
  cfg.mu = 10.0;
  EXPECT_DOUBLE_EQ(game::discriminatory_prices(cfg).objective, 0.0);
  EXPECT_DOUBLE_EQ(game::price_of_statelessness(cfg), 1.0);
}

// ---------------------------------------------------------------------------
// Memory-bound PoW plumbing end to end
// ---------------------------------------------------------------------------

TEST(MemoryBoundPow, SolveTimeUsesMemRate) {
  sim::CpuModel cpu({100'000.0, 4, 1, 50e6});
  // 1e6 work units: 10 s at the hash rate, 20 ms at the mem rate.
  const SimTime hash_done = cpu.submit_solve(SimTime::zero(), 1'000'000);
  EXPECT_NEAR(hash_done.to_seconds(), 10.0, 1e-9);
  sim::CpuModel cpu2({100'000.0, 4, 1, 50e6});
  const SimTime mem_done =
      cpu2.submit_solve_at_rate(SimTime::zero(), 1'000'000, 50e6);
  EXPECT_NEAR(mem_done.to_seconds(), 0.02, 1e-9);
}

TEST(MemoryBoundPow, ScenarioNarrowsDeviceGap) {
  // A weak-client population completes more under memory-bound PoW at a
  // comparable strong-device work target.
  auto base = [] {
    sim::ScenarioConfig cfg;
    cfg.seed = 5;
    cfg.duration = SimTime::seconds(20);
    cfg.attack_start = SimTime::seconds(5);
    cfg.attack_end = SimTime::seconds(15);
    cfg.n_clients = 3;
    cfg.client_rate = 5.0;
    cfg.response_bytes = 5'000;
    cfg.n_bots = 3;
    cfg.bot_rate = 400.0;
    cfg.listen_backlog = 128;
    cfg.accept_backlog = 128;
    cfg.service_rate = 150.0;
    cfg.attack = sim::AttackType::kConnFlood;
    cfg.defense = tcp::DefenseMode::kPuzzles;
    cfg.client_cpu = {50'000.0, 1, 1, 40e6};  // IoT-class client
    return cfg;
  }();

  sim::ScenarioConfig hash_cfg = base;
  hash_cfg.pow = sim::PowKind::kCpuBound;
  hash_cfg.difficulty = {2, 17};  // 2.6 s/solve on the weak client
  const auto hash_res = sim::run_scenario(hash_cfg);

  sim::ScenarioConfig mem_cfg = base;
  mem_cfg.pow = sim::PowKind::kMemoryBound;
  mem_cfg.difficulty = {2, 25};  // ~0.8 s/solve on the weak client's memory
  const auto mem_res = sim::run_scenario(mem_cfg);

  std::uint64_t hash_ok = 0, mem_ok = 0;
  for (const auto& c : hash_res.clients) hash_ok += c.total_completions;
  for (const auto& c : mem_res.clients) mem_ok += c.total_completions;
  EXPECT_GT(mem_ok, hash_ok);
}

}  // namespace
}  // namespace tcpz
