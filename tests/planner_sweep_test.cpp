// Parameterised sweeps over the difficulty planner and an end-to-end replay
// attack through the simulated network (the §7 replay discussion).
#include <gtest/gtest.h>

#include "game/planner.hpp"
#include "net/topology.hpp"
#include "puzzle/engine.hpp"
#include "tcp/connector.hpp"
#include "tcp/listener.hpp"

namespace tcpz {
namespace {

// ---------------------------------------------------------------------------
// Planner sweep: for any plausible hash target the chosen (k, m) must price
// within a factor two (power-of-two grid), satisfy the guessing bound where
// attainable, and keep verification cheap.
// ---------------------------------------------------------------------------

class PlannerSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(PlannerSweepTest, FactorisationIsSound) {
  const double target = GetParam();
  const game::PlannerOptions opts;
  const puzzle::Difficulty d = game::choose_difficulty(target, opts);

  ASSERT_GE(d.k, 1);
  ASSERT_GE(d.m, 1);
  EXPECT_LE(d.k, opts.k_max);
  EXPECT_LE(d.m, opts.m_max);

  const double ratio = d.expected_solve_hashes() / target;
  EXPECT_GT(ratio, 0.33) << d.to_string();
  EXPECT_LT(ratio, 3.0) << d.to_string();

  // Verification stays cheap: at most 1 + k_max/2 hashes.
  EXPECT_LE(d.expected_verify_hashes(), 1.0 + opts.k_max / 2.0);

  // The guessing bound holds whenever some feasible (k, m) can reach it at
  // this price point (k_max * m_for_k_max bits).
  if (target >= 1024.0) {
    EXPECT_GE(d.guess_bits(), opts.min_guess_bits) << d.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, PlannerSweepTest,
                         ::testing::Values(2e3, 1e4, 66'967.0, 140'630.0, 5e5,
                                           2e6, 5e7),
                         [](const auto& info) {
                           // Built with += : `"t" + std::to_string(...)`
                           // trips GCC 12's -Wrestrict false positive
                           // (PR105651) under -O2 -Werror.
                           std::string name = "t";
                           name += std::to_string(static_cast<long>(info.param));
                           return name;
                         });

class BudgetSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(BudgetSweepTest, WavScalesLinearlyWithBudget) {
  const double budget_ms = GetParam();
  const double rate = 351'575.0;
  EXPECT_DOUBLE_EQ(game::estimate_wav(rate, budget_ms),
                   rate * budget_ms / 1000.0);
  // Harder budgets must never produce easier puzzles.
  const auto d_small = game::choose_difficulty(
      game::nash_hash_target(game::estimate_wav(rate, budget_ms), 1.1));
  const auto d_big = game::choose_difficulty(
      game::nash_hash_target(game::estimate_wav(rate, budget_ms * 4), 1.1));
  EXPECT_GE(d_big.expected_solve_hashes(), d_small.expected_solve_hashes());
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetSweepTest,
                         ::testing::Values(100.0, 400.0, 1000.0, 4000.0));

// ---------------------------------------------------------------------------
// Replay attack end to end over the simulated network: an eavesdropper
// captures a legitimate solution ACK and floods copies of it.
// ---------------------------------------------------------------------------

TEST(ReplayAttack, CapturedSolutionAckOccupiesOneSlotAndExpires) {
  net::Simulator sim;
  net::Topology topo(sim);
  net::Router* r = topo.add_router("r");
  net::Host* server_host = topo.add_host("server", tcp::ipv4(10, 1, 0, 1));
  net::Host* client_host = topo.add_host("client", tcp::ipv4(10, 2, 0, 1));
  net::Host* spy_host = topo.add_host("spy", tcp::ipv4(10, 3, 0, 1));
  const net::LinkSpec spec{100e6, SimTime::microseconds(100), 1 << 20};
  topo.connect(server_host, r, spec);
  topo.connect(client_host, r, spec);
  topo.connect(spy_host, r, spec);
  topo.compute_routes();

  const auto secret = crypto::SecretKey::from_seed(31);
  puzzle::EngineConfig ecfg;
  ecfg.sol_len = 4;
  ecfg.expiry_ms = 2000;
  auto engine = std::make_shared<puzzle::OraclePuzzleEngine>(secret, ecfg);

  tcp::ListenerConfig lcfg;
  lcfg.local_addr = server_host->addr();
  lcfg.local_port = 80;
  lcfg.mode = tcp::DefenseMode::kPuzzles;
  lcfg.always_challenge = true;
  lcfg.difficulty = {2, 12};
  auto listener = std::make_unique<tcp::Listener>(lcfg, secret, 1, engine);

  tcp::Segment captured_ack{};  // what the eavesdropper records
  bool have_capture = false;

  server_host->set_handler([&](SimTime now, const tcp::Segment& seg) {
    if (seg.options.solution && !have_capture) {
      captured_ack = seg;
      have_capture = true;
    }
    for (const auto& out : listener->on_segment(now, seg)) server_host->send(out);
  });

  tcp::ConnectorConfig ccfg;
  ccfg.local_addr = client_host->addr();
  ccfg.local_port = 40'000;
  ccfg.remote_addr = server_host->addr();
  ccfg.remote_port = 80;
  auto connector = std::make_unique<tcp::Connector>(ccfg, 2);

  client_host->set_handler([&](SimTime now, const tcp::Segment& seg) {
    auto out = connector->on_segment(now, seg);
    if (out.solve) {
      Rng rng(3);
      std::uint64_t ops = 0;
      const auto sol =
          engine->solve(*out.solve, connector->flow_binding(), rng, ops);
      out = connector->on_solved(now, sol);
    }
    for (const auto& seg2 : out.segments) client_host->send(seg2);
  });

  sim.schedule_at(SimTime::milliseconds(1), [&] {
    auto out = connector->start(sim.now());
    for (const auto& seg : out.segments) client_host->send(seg);
  });
  sim.run_until(SimTime::milliseconds(100));
  ASSERT_TRUE(have_capture);
  ASSERT_EQ(listener->counters().solutions_valid, 1u);
  ASSERT_EQ(listener->accept_depth(), 1u);

  // The eavesdropper floods 50 copies of the captured ACK (spoofing the
  // client's source, as a replay must).
  sim.schedule_at(SimTime::milliseconds(150), [&] {
    for (int i = 0; i < 50; ++i) spy_host->send(captured_ack);
  });
  sim.run_until(SimTime::milliseconds(400));

  // §7: "a replayed solution can only be used to occupy one slot at a time".
  EXPECT_EQ(listener->counters().solutions_valid, 1u);
  EXPECT_EQ(listener->counters().solutions_duplicate, 50u);
  EXPECT_EQ(listener->accept_depth(), 1u);

  // After the original is accepted+closed AND the challenge has expired,
  // replays are rejected statelessly by freshness, still at zero hash cost.
  const auto conn = listener->accept(SimTime::milliseconds(400));
  ASSERT_TRUE(conn.has_value());
  listener->close(conn->flow);
  sim.schedule_at(SimTime::seconds(5), [&] {  // well past expiry_ms = 2000
    for (int i = 0; i < 20; ++i) spy_host->send(captured_ack);
  });
  sim.run_until(SimTime::seconds(6));
  EXPECT_EQ(listener->counters().solutions_valid, 1u);
  EXPECT_EQ(listener->counters().solutions_expired, 20u);
  EXPECT_EQ(listener->established_count(), 0u);
}

}  // namespace
}  // namespace tcpz
