// Allocation guard for the zero-allocation packet path.
//
// The claim under test: a Segment — including one carrying a challenge or a
// solution option — is trivially copyable, so copying it (into a
// link-delivery closure, through the simulator, out of decode) performs
// ZERO heap allocations; and the inline option buffers reject oversized
// payloads at construction, not at wire-encode time.
//
// Every operator new in this test binary is counted; scopes assert on the
// counter delta. gtest's own bookkeeping allocates between tests, which is
// why the assertions bracket exactly the statements under test.
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/simulator.hpp"
#include "obs/trace.hpp"
#include "puzzle/types.hpp"
#include "tcp/options.hpp"
#include "tcp/segment.hpp"
#include "tcp/wire_format.hpp"

#include "util/alloc_counter.hpp"

namespace tcpz {
namespace {

tcp::Segment challenge_segment() {
  tcp::Segment s;
  s.saddr = tcp::ipv4(10, 1, 0, 1);
  s.daddr = tcp::ipv4(10, 2, 0, 1);
  s.sport = 80;
  s.dport = 40000;
  s.seq = 7;
  s.ack = 12346;
  s.flags = tcp::kSyn | tcp::kAck;
  s.options.mss = 1460;
  s.options.wscale = 7;
  tcp::ChallengeOption c;
  c.k = 2;
  c.m = 17;
  c.sol_len = 8;
  c.embedded_ts = 1000;
  c.preimage = {1, 2, 3, 4, 5, 6, 7, 8};
  s.options.challenge = c;
  return s;
}

tcp::Segment solution_segment() {
  tcp::Segment s;
  s.saddr = tcp::ipv4(10, 1, 0, 1);
  s.daddr = tcp::ipv4(10, 2, 0, 1);  // same destination host as the challenge
  s.sport = 40000;
  s.dport = 80;
  s.seq = 12346;
  s.ack = 8;
  s.flags = tcp::kAck;
  tcp::SolutionOption sol;
  sol.mss = 1460;
  sol.wscale = 7;
  sol.embedded_ts = 1000;
  sol.solutions = InlineBytes<tcp::kMaxSolutionBytes>(16, 0xcd);
  s.options.solution = sol;
  return s;
}

/// Round-trips a segment through the real wire codec (the encode/decode
/// itself builds heap wire images — that is allowed and expected; only the
/// segment COPY path must be allocation-free) and returns the decoded form.
tcp::Segment wire_round_trip(const tcp::Segment& s) {
  const Bytes wire = tcp::encode_segment(s);
  const tcp::WireDecodeResult r = tcp::decode_segment(wire);
  EXPECT_TRUE(r.segment.has_value());
  EXPECT_FALSE(r.error.has_value());
  return *r.segment;
}

TEST(AllocGuard, SegmentCopiesAreZeroAlloc) {
  const tcp::Segment chal = wire_round_trip(challenge_segment());
  const tcp::Segment sol = wire_round_trip(solution_segment());
  EXPECT_EQ(chal.options, challenge_segment().options);
  EXPECT_EQ(sol.options, solution_segment().options);

  static_assert(std::is_trivially_copyable_v<tcp::Segment>);
  std::uint64_t wire_bytes = 0;  // no gtest macros inside the counted scope
  const std::uint64_t before = tcpz_alloc_count();
  for (int i = 0; i < 1000; ++i) {
    tcp::Segment a = chal;  // NOLINT(performance-unnecessary-copy)
    tcp::Segment b = sol;   // NOLINT(performance-unnecessary-copy)
    a.seq = static_cast<std::uint32_t>(i);
    b.ack = a.seq;
    // wire_size() is the per-transmit bandwidth charge; it must be
    // arithmetic, not encode-and-measure.
    wire_bytes += a.wire_size() + b.wire_size();
  }
  const std::uint64_t after = tcpz_alloc_count();
  EXPECT_EQ(after, before) << "segment copy path allocated";
  EXPECT_GT(wire_bytes, 0u);
}

TEST(AllocGuard, LinkDeliveryIsZeroAlloc) {
  net::Simulator sim;
  net::Host dst(sim, "dst", tcp::ipv4(10, 2, 0, 1));
  std::uint64_t delivered = 0;
  dst.set_handler([&delivered](SimTime, const tcp::Segment&) { ++delivered; });
  net::Link link(sim, dst, 1e9, SimTime::microseconds(500), 1 << 20, "l");

  const tcp::Segment chal = challenge_segment();
  const tcp::Segment sol = solution_segment();

  // Warm-up: first use grows the event pool and the staging vectors; those
  // are one-time costs, not per-packet ones.
  link.transmit(chal);
  link.transmit(sol);
  sim.run();
  ASSERT_EQ(delivered, 2u);

  const std::uint64_t before = tcpz_alloc_count();
  for (int i = 0; i < 100; ++i) {
    link.transmit(chal);  // copies the segment into the delivery closure
    link.transmit(sol);
    sim.run();
  }
  const std::uint64_t after = tcpz_alloc_count();
  EXPECT_EQ(after, before) << "link delivery path allocated";
  EXPECT_EQ(delivered, 202u);
}

TEST(AllocGuard, LinkDeliveryIsZeroAllocWithNoRecorderInstalled) {
  // The default state: no flight recorder. Every TCPZ_TRACE site must be a
  // not-taken branch, so the packet path allocates nothing — this is the
  // same guarantee as LinkDeliveryIsZeroAlloc, restated with the tracing
  // layer compiled in and explicitly uninstalled.
  ASSERT_EQ(obs::recorder(), nullptr);
  net::Simulator sim;
  net::Host dst(sim, "dst", tcp::ipv4(10, 2, 0, 1));
  dst.set_handler([](SimTime, const tcp::Segment&) {});
  net::Link link(sim, dst, 1e9, SimTime::microseconds(500), 1 << 20, "l");
  const tcp::Segment chal = challenge_segment();
  link.transmit(chal);
  sim.run();

  const std::uint64_t before = tcpz_alloc_count();
  for (int i = 0; i < 100; ++i) {
    link.transmit(chal);
    sim.run();
  }
  EXPECT_EQ(tcpz_alloc_count(), before) << "untraced packet path allocated";
}

TEST(AllocGuard, LinkDeliveryIsZeroAllocWithTracingEnabled) {
  // With a recorder installed, record() is a bounds-masked store into the
  // preallocated ring — the packet path must STILL be allocation-free. The
  // ring allocation itself happens at Recorder construction, outside the
  // counted scope.
  obs::Recorder rec(1u << 10);
  obs::ScopedRecorder scoped(&rec);

  net::Simulator sim;
  net::Host dst(sim, "dst", tcp::ipv4(10, 2, 0, 1));
  dst.set_handler([](SimTime, const tcp::Segment&) {});
  net::Link link(sim, dst, 1e9, SimTime::microseconds(500), 1 << 20, "l");
  const tcp::Segment chal = challenge_segment();
  link.transmit(chal);
  sim.run();
  ASSERT_GT(rec.total_recorded(), 0u) << "tracepoints not reaching the ring";

  const std::uint64_t before = tcpz_alloc_count();
  for (int i = 0; i < 1000; ++i) {  // enough to wrap the 1024-event ring
    link.transmit(chal);
    sim.run();
  }
  EXPECT_EQ(tcpz_alloc_count(), before) << "traced packet path allocated";
  EXPECT_GT(rec.overwritten(), 0u) << "ring wrap itself must be alloc-free";
}

// ---------------------------------------------------------------------------
// Capacity is enforced where the value is built, not when it hits the wire.
// ---------------------------------------------------------------------------

TEST(AllocGuard, InlineBuffersRejectOversizeAtConstruction) {
  // A pre-image beyond the engine bound (32 bytes) cannot be represented.
  tcp::ChallengeOption c;
  EXPECT_THROW(c.preimage = Bytes(33, 1), std::length_error);
  EXPECT_THROW((InlineBytes<tcp::kMaxPreimageBytes>(33, 1)),
               std::length_error);

  // k*l beyond the 40-byte option space cannot be represented either —
  // the throw happens at assignment, long before encode_options().
  tcp::SolutionOption s;
  EXPECT_THROW(s.solutions = Bytes(41, 1), std::length_error);
  s.solutions = Bytes(40, 1);  // exactly the bound is representable...
  s.mss = 1460;
  tcp::Options o;
  o.solution = s;
  // ...but the codec still enforces the exact wire fit on top.
  EXPECT_THROW((void)o.wire_size(), std::length_error);

  // Incremental growth hits the same wall.
  InlineBytes<tcp::kMaxSolutionBytes> buf(40, 0);
  EXPECT_THROW(buf.push_back(1), std::length_error);
  EXPECT_THROW(buf.insert(buf.end(), buf.begin(), buf.begin() + 1),
               std::length_error);

  // And the puzzle-side value vector is bounded by the same k*l <= 40.
  puzzle::Solution psol;
  for (int i = 0; i < 40; ++i) psol.values.push_back(puzzle::SolutionValue(1, 0));
  EXPECT_THROW(psol.values.push_back(puzzle::SolutionValue(1, 0)),
               std::length_error);
}

TEST(AllocGuard, DecodeRejectsOversizedDeclaredPreimage) {
  // A wire image declaring sol_len > 32 is rejected as kBadLength instead of
  // throwing out of the decoder.
  Bytes wire;
  wire.push_back(tcp::kOptChallenge);
  wire.push_back(38);  // len: 2 + 3 + 33
  wire.push_back(1);   // k
  wire.push_back(10);  // m
  wire.push_back(33);  // sol_len beyond the inline bound
  wire.insert(wire.end(), 33, 0x5a);
  tcp::Options out;
  EXPECT_EQ(tcp::decode_options(wire, out), tcp::DecodeResult::kBadLength);
}

}  // namespace
}  // namespace tcpz
