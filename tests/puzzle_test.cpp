#include <gtest/gtest.h>

#include <memory>

#include "crypto/secret.hpp"
#include "puzzle/engine.hpp"
#include "util/stats.hpp"

namespace tcpz::puzzle {
namespace {

FlowBinding test_flow() {
  return FlowBinding{0x0a020001, 0x0a010001, 40000, 80, 0xdeadbeef};
}

// ---------------------------------------------------------------------------
// Difficulty arithmetic (the quantities the game model prices)
// ---------------------------------------------------------------------------

TEST(Difficulty, ExpectedSolveHashesIsKTimes2ToMMinus1) {
  EXPECT_DOUBLE_EQ((Difficulty{1, 1}).expected_solve_hashes(), 1.0);
  EXPECT_DOUBLE_EQ((Difficulty{1, 8}).expected_solve_hashes(), 128.0);
  EXPECT_DOUBLE_EQ((Difficulty{2, 17}).expected_solve_hashes(), 131072.0);
  EXPECT_DOUBLE_EQ((Difficulty{4, 16}).expected_solve_hashes(), 131072.0);
}

TEST(Difficulty, VerifyAndGenerateCosts) {
  EXPECT_DOUBLE_EQ((Difficulty{2, 17}).expected_verify_hashes(), 2.0);
  EXPECT_DOUBLE_EQ((Difficulty{4, 10}).expected_verify_hashes(), 3.0);
  EXPECT_DOUBLE_EQ(Difficulty::generate_hashes(), 1.0);
}

TEST(Difficulty, GuessProbability) {
  EXPECT_DOUBLE_EQ((Difficulty{2, 17}).guess_probability(), std::exp2(-34));
  EXPECT_EQ((Difficulty{2, 17}).guess_bits(), 34u);
  EXPECT_EQ((Difficulty{1, 8}).guess_bits(), 8u);
}

// ---------------------------------------------------------------------------
// Parameterised over both engine implementations: every protocol property
// must hold identically for the real scheme and the simulation oracle.
// ---------------------------------------------------------------------------

enum class EngineKind { kSha256, kOracle };

class EngineTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  EngineTest() {
    EngineConfig cfg;
    cfg.sol_len = 8;
    cfg.expiry_ms = 2000;
    const auto secret = crypto::SecretKey::from_seed(99);
    if (GetParam() == EngineKind::kSha256) {
      engine_ = std::make_unique<Sha256PuzzleEngine>(secret, cfg);
    } else {
      engine_ = std::make_unique<OraclePuzzleEngine>(secret, cfg);
    }
  }

  // Small difficulty so the real brute force stays fast in tests.
  Difficulty diff_{2, 8};
  std::unique_ptr<PuzzleEngine> engine_;
  Rng rng_{4242};
};

TEST_P(EngineTest, SolveVerifyRoundTrip) {
  const auto flow = test_flow();
  const Challenge ch = engine_->make_challenge(flow, 1000, diff_);
  EXPECT_EQ(ch.preimage.size(), 8u);
  EXPECT_EQ(ch.timestamp, 1000u);

  std::uint64_t ops = 0;
  const Solution sol = engine_->solve(ch, flow, rng_, ops);
  EXPECT_EQ(sol.values.size(), 2u);
  EXPECT_GE(ops, 2u);  // at least one hash per solution

  const VerifyOutcome out = engine_->verify(flow, sol, diff_, 1500);
  EXPECT_TRUE(out.ok) << to_string(out.error);
  EXPECT_GE(out.hash_ops, 3u);  // 1 pre-image + k checks
}

TEST_P(EngineTest, ChallengeIsDeterministicPerFlowAndTime) {
  const auto flow = test_flow();
  EXPECT_EQ(engine_->make_challenge(flow, 1000, diff_),
            engine_->make_challenge(flow, 1000, diff_));
}

TEST_P(EngineTest, ChallengeVariesWithTimestampAndFlow) {
  const auto flow = test_flow();
  auto flow2 = flow;
  flow2.sport++;
  EXPECT_NE(engine_->make_challenge(flow, 1000, diff_).preimage,
            engine_->make_challenge(flow, 1001, diff_).preimage);
  EXPECT_NE(engine_->make_challenge(flow, 1000, diff_).preimage,
            engine_->make_challenge(flow2, 1000, diff_).preimage);
}

TEST_P(EngineTest, ChallengeBindsIsn) {
  auto flow = test_flow();
  auto flow2 = flow;
  flow2.isn++;
  EXPECT_NE(engine_->make_challenge(flow, 1000, diff_).preimage,
            engine_->make_challenge(flow2, 1000, diff_).preimage);
}

TEST_P(EngineTest, WrongFlowFailsVerification) {
  const auto flow = test_flow();
  const Challenge ch = engine_->make_challenge(flow, 1000, diff_);
  std::uint64_t ops = 0;
  const Solution sol = engine_->solve(ch, flow, rng_, ops);

  auto other = flow;
  other.saddr ^= 1;  // attacker replaying from a different address
  const VerifyOutcome out = engine_->verify(other, sol, diff_, 1500);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error, VerifyError::kBadSolution);
}

TEST_P(EngineTest, TamperedSolutionFails) {
  const auto flow = test_flow();
  const Challenge ch = engine_->make_challenge(flow, 1000, diff_);
  std::uint64_t ops = 0;
  Solution sol = engine_->solve(ch, flow, rng_, ops);
  sol.values[1][0] ^= 0x80;
  EXPECT_FALSE(engine_->verify(flow, sol, diff_, 1500).ok);
}

TEST_P(EngineTest, TamperedTimestampFails) {
  // §5: "tampering with the timestamp will cause the solution verification
  // to fail" — the timestamp is folded into the pre-image.
  const auto flow = test_flow();
  const Challenge ch = engine_->make_challenge(flow, 1000, diff_);
  std::uint64_t ops = 0;
  Solution sol = engine_->solve(ch, flow, rng_, ops);
  sol.timestamp = 1400;  // still fresh, but not what the server hashed
  const VerifyOutcome out = engine_->verify(flow, sol, diff_, 1500);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error, VerifyError::kBadSolution);
}

TEST_P(EngineTest, ExpiredSolutionRejected) {
  const auto flow = test_flow();
  const Challenge ch = engine_->make_challenge(flow, 1000, diff_);
  std::uint64_t ops = 0;
  const Solution sol = engine_->solve(ch, flow, rng_, ops);
  // expiry_ms = 2000: at t=3001 the challenge is stale.
  const VerifyOutcome out = engine_->verify(flow, sol, diff_, 3001);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error, VerifyError::kExpired);
  // Freshness is checked before any hashing: replay floods cost ~0.
  EXPECT_EQ(out.hash_ops, 0u);
}

TEST_P(EngineTest, FutureTimestampRejected) {
  const auto flow = test_flow();
  const Challenge ch = engine_->make_challenge(flow, 5000, diff_);
  std::uint64_t ops = 0;
  const Solution sol = engine_->solve(ch, flow, rng_, ops);
  const VerifyOutcome out = engine_->verify(flow, sol, diff_, 1000);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error, VerifyError::kFutureTimestamp);
}

TEST_P(EngineTest, WrongSolutionCountRejected) {
  const auto flow = test_flow();
  const Challenge ch = engine_->make_challenge(flow, 1000, diff_);
  std::uint64_t ops = 0;
  Solution sol = engine_->solve(ch, flow, rng_, ops);
  sol.values.pop_back();
  const VerifyOutcome out = engine_->verify(flow, sol, diff_, 1500);
  EXPECT_EQ(out.error, VerifyError::kWrongCount);
}

TEST_P(EngineTest, GarbageSolutionRejectedButCostsWork) {
  // §7 solution floods: bogus solutions must fail but the server does spend
  // bounded verification work (this is what the game model prices as d(p)).
  const auto flow = test_flow();
  Solution garbage;
  garbage.timestamp = 1000;
  garbage.values = {Bytes(8, 0xaa), Bytes(8, 0xbb)};
  const VerifyOutcome out = engine_->verify(flow, garbage, diff_, 1200);
  EXPECT_FALSE(out.ok);
  EXPECT_GE(out.hash_ops, 2u);
  EXPECT_LE(out.hash_ops, 1u + diff_.k);
}

TEST_P(EngineTest, RejectsInvalidDifficulty) {
  const auto flow = test_flow();
  EXPECT_THROW((void)engine_->make_challenge(flow, 0, Difficulty{0, 8}),
               std::invalid_argument);
  EXPECT_THROW((void)engine_->make_challenge(flow, 0, Difficulty{1, 0}),
               std::invalid_argument);
  // m must fit inside the sol_len-byte prefix.
  EXPECT_THROW((void)engine_->make_challenge(flow, 0, Difficulty{1, 64}),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, EngineTest,
                         ::testing::Values(EngineKind::kSha256,
                                           EngineKind::kOracle),
                         [](const auto& info) {
                           return info.param == EngineKind::kSha256 ? "Sha256"
                                                                    : "Oracle";
                         });

// ---------------------------------------------------------------------------
// Real-engine specifics
// ---------------------------------------------------------------------------

TEST(Sha256Engine, SolveCostIsGeometricInM) {
  // The true unbounded random search is geometric with mean 2^m = 64 (the
  // paper's ℓ(p) books it as 2^(m-1); see DESIGN.md on this factor of two).
  const auto secret = crypto::SecretKey::from_seed(7);
  Sha256PuzzleEngine engine(secret, {});
  Rng rng(1);
  const Difficulty diff{1, 6};
  RunningStats ops_stats;
  auto flow = test_flow();
  for (int i = 0; i < 400; ++i) {
    flow.isn = static_cast<std::uint32_t>(i);  // fresh puzzle each time
    const Challenge ch = engine.make_challenge(flow, 1000, diff);
    std::uint64_t ops = 0;
    (void)engine.solve(ch, flow, rng, ops);
    ops_stats.add(static_cast<double>(ops));
  }
  EXPECT_NEAR(ops_stats.mean(), 64.0, 12.0);
}

TEST(Sha256Engine, SolutionsSatisfyPrefixCondition) {
  const auto secret = crypto::SecretKey::from_seed(8);
  Sha256PuzzleEngine engine(secret, {});
  Rng rng(2);
  const auto flow = test_flow();
  const Challenge ch = engine.make_challenge(flow, 50, Difficulty{3, 10});
  std::uint64_t ops = 0;
  const Solution sol = engine.solve(ch, flow, rng, ops);
  for (unsigned i = 1; i <= 3; ++i) {
    EXPECT_TRUE(Sha256PuzzleEngine::candidate_matches(
        ch, static_cast<std::uint8_t>(i), sol.values[i - 1]))
        << "solution index " << i;
  }
}

TEST(Sha256Engine, SolutionIndexMatters) {
  // s_1 must not verify as s_2: the index is hashed into the check.
  const auto secret = crypto::SecretKey::from_seed(9);
  Sha256PuzzleEngine engine(secret, {});
  Rng rng(3);
  const auto flow = test_flow();
  const Challenge ch = engine.make_challenge(flow, 50, Difficulty{2, 10});
  std::uint64_t ops = 0;
  Solution sol = engine.solve(ch, flow, rng, ops);
  std::swap(sol.values[0], sol.values[1]);
  // Swapped solutions almost surely fail (probability 2^-20 of accidental
  // validity for both).
  EXPECT_FALSE(engine.verify(flow, sol, Difficulty{2, 10}, 100).ok);
}

TEST(Sha256Engine, DifferentSecretsRejectSolutions) {
  const EngineConfig cfg;
  Sha256PuzzleEngine a(crypto::SecretKey::from_seed(1), cfg);
  Sha256PuzzleEngine b(crypto::SecretKey::from_seed(2), cfg);
  Rng rng(4);
  const auto flow = test_flow();
  const Challenge ch = a.make_challenge(flow, 10, Difficulty{1, 8});
  std::uint64_t ops = 0;
  const Solution sol = a.solve(ch, flow, rng, ops);
  EXPECT_TRUE(a.verify(flow, sol, Difficulty{1, 8}, 20).ok);
  EXPECT_FALSE(b.verify(flow, sol, Difficulty{1, 8}, 20).ok);
}

// ---------------------------------------------------------------------------
// Oracle-engine specifics
// ---------------------------------------------------------------------------

TEST(OracleEngine, SampledCostMatchesExpectation) {
  const auto secret = crypto::SecretKey::from_seed(10);
  OraclePuzzleEngine engine(secret, {});
  Rng rng(5);
  const auto flow = test_flow();
  const Difficulty diff{2, 10};  // expected 2 * 512 = 1024
  const Challenge ch = engine.make_challenge(flow, 10, diff);
  RunningStats stats;
  for (int i = 0; i < 3000; ++i) {
    std::uint64_t ops = 0;
    (void)engine.solve(ch, flow, rng, ops);
    stats.add(static_cast<double>(ops));
  }
  // Paper model: mean k * 2^(m-1) = 1024, max k * 2^m.
  EXPECT_NEAR(stats.mean(), 1024.0, 40.0);
  EXPECT_LE(stats.max(), 2.0 * 1024.0 + 2);
  // The spread of the per-solve cost is what widens the Fig. 6 CDFs.
  EXPECT_GT(stats.stddev(), 200.0);
}

TEST(OracleEngine, HighDifficultySolveIsInstantInHostTime) {
  // The whole point of the oracle: a (2,17) solve must not take 2^17 host
  // hashes. This test would effectively hang if it did not hold.
  const auto secret = crypto::SecretKey::from_seed(11);
  EngineConfig cfg;
  cfg.expiry_ms = 1u << 30;
  OraclePuzzleEngine engine(secret, cfg);
  Rng rng(6);
  const auto flow = test_flow();
  const Difficulty nash{2, 17};
  const Challenge ch = engine.make_challenge(flow, 10, nash);
  std::uint64_t ops = 0;
  const Solution sol = engine.solve(ch, flow, rng, ops);
  EXPECT_TRUE(engine.verify(flow, sol, nash, 20).ok);
  // Sampled cost is in the right regime for the Nash difficulty.
  EXPECT_GT(ops, 1000u);
}

TEST(SampleSolveHashes, MeanAndSpread) {
  Rng rng(12);
  RunningStats stats;
  const Difficulty diff{4, 8};  // paper model: mean 4 * 2^7 = 512, max 4 * 256
  for (int i = 0; i < 20'000; ++i) {
    stats.add(static_cast<double>(sample_solve_hashes(diff, rng)));
  }
  EXPECT_NEAR(stats.mean(), 512.0 + 2.0, 10.0);  // +k/2 from the 1+U form
  EXPECT_GE(stats.min(), 4.0);   // at least one hash per solution
  EXPECT_LE(stats.max(), 1024.0 + 4.0);
}

}  // namespace
}  // namespace tcpz::puzzle
