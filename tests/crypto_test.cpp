#include <gtest/gtest.h>

#include <string>

#include "crypto/hmac.hpp"
#include "crypto/secret.hpp"
#include "crypto/sha256.hpp"
#include "fleet/secret_directory.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace tcpz::crypto {
namespace {

std::string digest_hex(const Sha256Digest& d) {
  return to_hex(std::span<const std::uint8_t>(d.data(), d.size()));
}

// ---------------------------------------------------------------------------
// SHA-256 against FIPS 180-4 / NIST CAVP vectors
// ---------------------------------------------------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      digest_hex(Sha256::hash(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 bytes: padding spills into a second block.
  EXPECT_EQ(digest_hex(Sha256::hash(std::string(64, 'x'))),
            Sha256::hash(std::string(64, 'x')).size() == 32
                ? digest_hex(Sha256::hash(std::string(64, 'x')))
                : "");
  // 55/56/57 bytes straddle the length-field boundary.
  for (std::size_t n : {55u, 56u, 57u, 63u, 64u, 65u}) {
    const std::string msg(n, 'q');
    Sha256 once;
    once.update(msg);
    Sha256 split;
    split.update(msg.substr(0, n / 2));
    split.update(msg.substr(n / 2));
    EXPECT_EQ(digest_hex(once.finalize()), digest_hex(split.finalize()))
        << "length " << n;
  }
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  Sha256 h;
  for (char c : msg) h.update(std::string_view(&c, 1));
  EXPECT_EQ(digest_hex(h.finalize()), digest_hex(Sha256::hash(msg)));
}

TEST(Sha256, ResetReusesObject) {
  Sha256 h;
  h.update("garbage");
  (void)h.finalize();
  h.reset();
  h.update("abc");
  EXPECT_EQ(digest_hex(h.finalize()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// ---------------------------------------------------------------------------
// prefix bits
// ---------------------------------------------------------------------------

TEST(PrefixBits, ExtractsAndMasks) {
  Sha256Digest d{};
  d[0] = 0b10110101;
  d[1] = 0b11110000;
  EXPECT_EQ(prefix_bits(d, 8), (Bytes{0b10110101}));
  EXPECT_EQ(prefix_bits(d, 4), (Bytes{0b10110000}));
  EXPECT_EQ(prefix_bits(d, 12), (Bytes{0b10110101, 0b11110000}));
  EXPECT_EQ(prefix_bits(d, 9), (Bytes{0b10110101, 0b10000000}));
}

TEST(PrefixBits, EqualityRespectsBitCount) {
  Sha256Digest a{}, b{};
  a[0] = 0b10110101;
  b[0] = 0b10110100;  // differ in bit 8
  EXPECT_TRUE(prefix_bits_equal(a, b, 7));
  EXPECT_FALSE(prefix_bits_equal(a, b, 8));
  b[0] = 0b00110101;  // differ in bit 1
  EXPECT_FALSE(prefix_bits_equal(a, b, 1));
  EXPECT_TRUE(prefix_bits_equal(a, b, 0));
}

TEST(PrefixBits, MultiBytePrefix) {
  Sha256Digest a{}, b{};
  for (int i = 0; i < 4; ++i) a[i] = b[i] = 0xab;
  b[3] = 0xaa;  // differ in bit 32
  EXPECT_TRUE(prefix_bits_equal(a, b, 31));
  EXPECT_FALSE(prefix_bits_equal(a, b, 32));
}

// ---------------------------------------------------------------------------
// HMAC-SHA256 against RFC 4231 vectors
// ---------------------------------------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const auto mac = hmac_sha256(key, "Hi There");
  EXPECT_EQ(digest_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const std::string key = "Jefe";
  const auto mac = hmac_sha256(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(key.data()), key.size()),
      "what do ya want for nothing?");
  EXPECT_EQ(digest_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes msg(50, 0xdd);
  EXPECT_EQ(digest_hex(hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case4) {
  Bytes key(25);
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i + 1);  // 0x01..0x19
  }
  const Bytes msg(50, 0xcd);
  EXPECT_EQ(digest_hex(hmac_sha256(key, msg)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);  // key longer than block: hashed first
  const auto mac = hmac_sha256(
      key, "Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(digest_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, Rfc4231Case7LongKeyLongData) {
  const Bytes key(131, 0xaa);
  const auto mac = hmac_sha256(
      key,
      "This is a test using a larger than block-size key and a larger than "
      "block-size data. The key needs to be hashed before being used by the "
      "HMAC algorithm.");
  EXPECT_EQ(digest_hex(mac),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(Hmac, KeySensitivity) {
  const Bytes k1(32, 0x01), k2(32, 0x02);
  EXPECT_NE(digest_hex(hmac_sha256(k1, "msg")), digest_hex(hmac_sha256(k2, "msg")));
}

// ---------------------------------------------------------------------------
// HmacKey: the cached-midstate form must be bit-identical to the one-shot
// reference for every key/message shape the stack can produce.
// ---------------------------------------------------------------------------

TEST(HmacKey, MatchesRfc4231Vectors) {
  const Bytes key1(20, 0x0b);
  EXPECT_EQ(digest_hex(HmacKey(key1).mac("Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  const Bytes key6(131, 0xaa);  // > 64 bytes: hashed into the pad block
  EXPECT_EQ(digest_hex(HmacKey(key6).mac(
                "Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacKey, EquivalentToOneShotForRandomKeyAndMessageLengths) {
  Rng rng(20260726);
  for (int iter = 0; iter < 500; ++iter) {
    // Key lengths sweep across the block boundary (empty, < 64, == 64,
    // > 64 => pre-hashed); messages across the padding boundaries.
    const std::size_t key_len = rng.uniform_u64(150);
    const std::size_t msg_len = rng.uniform_u64(300);
    Bytes key(key_len);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
    Bytes msg(msg_len);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
    const HmacKey cached((std::span<const std::uint8_t>(key)));
    ASSERT_EQ(digest_hex(cached.mac(msg)), digest_hex(hmac_sha256(key, msg)))
        << "key_len=" << key_len << " msg_len=" << msg_len;
  }
}

TEST(HmacKey, BoundaryMessageLengths) {
  const Bytes key(32, 0x42);
  const HmacKey cached((std::span<const std::uint8_t>(key)));
  // 55/56/57 straddle the inner hash's length-field boundary (the inner
  // message is 64 + n bytes), 63/64/65 the block boundary.
  for (std::size_t n : {0u, 1u, 55u, 56u, 57u, 63u, 64u, 65u, 127u, 128u}) {
    const Bytes msg(n, 0x7e);
    ASSERT_EQ(digest_hex(cached.mac(msg)), digest_hex(hmac_sha256(key, msg)))
        << "msg_len=" << n;
  }
}

TEST(HmacKey, SecretKeyCarriesItsMidstates) {
  const SecretKey k = SecretKey::from_seed(99);
  const Bytes msg = {1, 2, 3, 4, 5};
  EXPECT_EQ(digest_hex(k.hmac().mac(msg)),
            digest_hex(hmac_sha256(k.bytes(), msg)));
  // The midstates follow the key: equal keys agree, different keys do not.
  EXPECT_EQ(k.hmac(), SecretKey::from_seed(99).hmac());
  EXPECT_NE(digest_hex(SecretKey::from_seed(100).hmac().mac(msg)),
            digest_hex(k.hmac().mac(msg)));
}

TEST(HmacKey, ConsistentAcrossSecretDirectoryRotations) {
  // Every rotation mints a fresh SecretKey; its cached midstates must track
  // the new secret exactly (stale midstates would break cross-replica
  // verification silently).
  fleet::SecretDirectoryConfig cfg;
  cfg.seed = 7;
  fleet::SecretDirectory dir(cfg);
  const Bytes msg = {0xde, 0xad, 0xbe, 0xef};
  std::string prev_mac;
  for (int epoch = 0; epoch < 4; ++epoch) {
    const SecretKey& secret = dir.current_secret();
    const std::string via_midstate = digest_hex(secret.hmac().mac(msg));
    EXPECT_EQ(via_midstate, digest_hex(hmac_sha256(secret.bytes(), msg)))
        << "epoch " << epoch;
    EXPECT_NE(via_midstate, prev_mac) << "epoch " << epoch;
    prev_mac = via_midstate;
    dir.rotate();
  }
}

// ---------------------------------------------------------------------------
// SecretKey
// ---------------------------------------------------------------------------

TEST(SecretKey, SeededKeysDeterministic) {
  EXPECT_EQ(SecretKey::from_seed(42), SecretKey::from_seed(42));
  EXPECT_NE(SecretKey::from_seed(42), SecretKey::from_seed(43));
}

TEST(SecretKey, RandomKeysDiffer) {
  const SecretKey a = SecretKey::random();
  const SecretKey b = SecretKey::random();
  EXPECT_NE(a, b);
}

TEST(SecretKey, SeedsAreWellMixed) {
  // Consecutive seeds must not produce correlated key bytes.
  const SecretKey ka = SecretKey::from_seed(1);
  const SecretKey kb = SecretKey::from_seed(2);
  const auto a = ka.bytes();
  const auto b = kb.bytes();
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) same += (a[i] == b[i]);
  EXPECT_LE(same, 4);
}

}  // namespace
}  // namespace tcpz::crypto
