// Long-horizon regression tests for the 32-bit millisecond wire clock.
//
// The wire carries 32-bit millisecond timestamps (TCP timestamps option and
// the embedded challenge timestamp), which wrap every ~49.7 days. The seed
// implementation compared them by magnitude (`echoed + expiry < now`), so a
// scenario running past the wrap rejected every fresh solution as coming
// from the future and wedged replay-cache expiry. Freshness is now decided
// by serial-number arithmetic; these tests pin the wrap window down.
#include <gtest/gtest.h>

#include <memory>

#include "crypto/secret.hpp"
#include "fleet/replay_cache.hpp"
#include "puzzle/engine.hpp"
#include "tcp/connector.hpp"
#include "tcp/listener.hpp"
#include "util/rng.hpp"

namespace tcpz {
namespace {

constexpr std::uint32_t kServerAddr = tcp::ipv4(10, 1, 0, 1);
constexpr std::uint16_t kServerPort = 80;
constexpr std::uint32_t kClientAddr = tcp::ipv4(10, 2, 0, 1);

/// ~49.71 simulated days: the instant the 32-bit millisecond clock wraps.
constexpr std::int64_t kWrapMs = 1ll << 32;

SimTime at_ms(std::int64_t ms) { return SimTime::milliseconds(ms); }

// ---------------------------------------------------------------------------
// Engine-level freshness across the wrap.
// ---------------------------------------------------------------------------

TEST(TimeWrap, SolutionStaysFreshAcrossMillisecondWrap) {
  const auto secret = crypto::SecretKey::from_seed(5);
  const puzzle::EngineConfig ecfg{4, 4'000, 100};
  puzzle::OraclePuzzleEngine engine(secret, ecfg);
  const puzzle::FlowBinding flow{kClientAddr, kServerAddr, 40'000, kServerPort,
                                 7};

  // Challenge minted 200 ms before the wrap, verified 300 ms after: age is
  // 500 ms — far inside the 4 s expiry — but the raw u32 values are 2^32
  // apart. The seed comparison called this a future timestamp.
  const auto minted = static_cast<std::uint32_t>(kWrapMs - 200);
  const auto verify_now = static_cast<std::uint32_t>(kWrapMs + 300);
  const puzzle::Challenge ch = engine.make_challenge(flow, minted, {2, 8});
  Rng rng(3);
  std::uint64_t ops = 0;
  const puzzle::Solution sol = engine.solve(ch, flow, rng, ops);
  const auto outcome = engine.verify(flow, sol, {2, 8}, verify_now);
  EXPECT_TRUE(outcome.ok) << "fresh solution rejected across the ms wrap";
}

TEST(TimeWrap, ExpiryAndFutureSlackStillEnforcedNearTheWrap) {
  const auto secret = crypto::SecretKey::from_seed(5);
  const puzzle::EngineConfig ecfg{4, 4'000, 100};
  puzzle::OraclePuzzleEngine engine(secret, ecfg);
  const puzzle::FlowBinding flow{kClientAddr, kServerAddr, 40'001, kServerPort,
                                 9};
  Rng rng(4);
  std::uint64_t ops = 0;

  // Stale: minted 5 s before the wrap, verified just after it.
  {
    const auto minted = static_cast<std::uint32_t>(kWrapMs - 5'000);
    const puzzle::Challenge ch = engine.make_challenge(flow, minted, {1, 8});
    const puzzle::Solution sol = engine.solve(ch, flow, rng, ops);
    const auto out =
        engine.verify(flow, sol, {1, 8}, static_cast<std::uint32_t>(kWrapMs + 1));
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.error, puzzle::VerifyError::kExpired);
  }
  // From the future: minted just after the wrap, verified just before it.
  {
    const auto minted = static_cast<std::uint32_t>(kWrapMs + 500);
    const puzzle::Challenge ch = engine.make_challenge(flow, minted, {1, 8});
    const puzzle::Solution sol = engine.solve(ch, flow, rng, ops);
    const auto out = engine.verify(flow, sol, {1, 8},
                                   static_cast<std::uint32_t>(kWrapMs - 200));
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.error, puzzle::VerifyError::kFutureTimestamp);
  }
}

// ---------------------------------------------------------------------------
// Listener-level: a handshake that straddles the wrap must establish.
// ---------------------------------------------------------------------------

TEST(TimeWrap, ListenerEstablishesPuzzleHandshakeAcrossWrap) {
  tcp::ListenerConfig cfg;
  cfg.local_addr = kServerAddr;
  cfg.local_port = kServerPort;
  cfg.mode = tcp::DefenseMode::kPuzzles;
  cfg.always_challenge = true;
  cfg.difficulty = {2, 8};
  const auto secret = crypto::SecretKey::from_seed(21);
  auto engine = std::make_shared<puzzle::OraclePuzzleEngine>(
      secret, puzzle::EngineConfig{4, 4'000, 100});
  tcp::Listener listener(cfg, secret, 3, engine);

  tcp::ConnectorConfig ccfg;
  ccfg.local_addr = kClientAddr;
  ccfg.local_port = 50'000;
  ccfg.remote_addr = kServerAddr;
  ccfg.remote_port = kServerPort;
  tcp::Connector conn(ccfg, 11);

  // SYN 100 ms before the wrap; the solved ACK arrives 150 ms after it.
  const SimTime t_syn = at_ms(kWrapMs - 100);
  const SimTime t_ack = at_ms(kWrapMs + 150);

  auto out = conn.start(t_syn);
  ASSERT_EQ(out.segments.size(), 1u);
  const auto synacks = listener.on_segment(t_syn, out.segments[0]);
  ASSERT_EQ(synacks.size(), 1u);
  ASSERT_TRUE(synacks[0].options.challenge.has_value());

  out = conn.on_segment(t_ack, synacks[0]);
  ASSERT_TRUE(out.solve.has_value());
  Rng rng(1);
  std::uint64_t ops = 0;
  const auto sol = engine->solve(*out.solve, conn.flow_binding(), rng, ops);
  out = conn.on_solved(t_ack, sol);
  ASSERT_FALSE(out.segments.empty());
  for (const auto& seg : out.segments) (void)listener.on_segment(t_ack, seg);

  EXPECT_EQ(listener.counters().solutions_valid, 1u);
  EXPECT_EQ(listener.counters().solutions_expired, 0u);
  EXPECT_EQ(listener.counters().established_puzzle, 1u);
}

// ---------------------------------------------------------------------------
// Replay cache expiry across the wrap.
// ---------------------------------------------------------------------------

TEST(TimeWrap, ReplayCacheExpiresAndStaysBoundedAcrossWrap) {
  fleet::ReplayCache cache(/*ttl_ms=*/5'000);
  tcp::FlowKey flow{};
  flow.laddr = kServerAddr;
  flow.lport = kServerPort;
  flow.raddr = kClientAddr;

  // Entries inserted before the wrap...
  for (std::uint16_t p = 1; p <= 100; ++p) {
    flow.rport = p;
    EXPECT_FALSE(cache.check_and_insert(
        flow, p, static_cast<std::uint32_t>(kWrapMs - 2'000)));
  }
  EXPECT_EQ(cache.size(), 100u);
  // ...are still replays right after it (age 2.5 s < ttl)...
  flow.rport = 1;
  EXPECT_TRUE(cache.check_and_insert(
      flow, 1, static_cast<std::uint32_t>(kWrapMs + 500)));
  // ...and are gone once their ttl truly passes, instead of being retained
  // for another 49.7 days as the magnitude comparison did.
  flow.rport = 101;
  (void)cache.check_and_insert(flow, 101,
                               static_cast<std::uint32_t>(kWrapMs + 6'000));
  EXPECT_EQ(cache.size(), 1u);
  flow.rport = 2;
  EXPECT_FALSE(cache.check_and_insert(
      flow, 2, static_cast<std::uint32_t>(kWrapMs + 6'100)));
}

}  // namespace
}  // namespace tcpz
