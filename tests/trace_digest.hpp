// Shared FNV-1a digest helpers for the golden-trace regression tests
// (policy_trace_test, scenario_trace_test). A digest folds every field of a
// result struct in declaration order, so "digest unchanged" means the run is
// byte-for-byte identical as far as the struct can see.
#pragma once

#include <bit>
#include <cstdint>

#include "sim/metrics.hpp"
#include "tcp/counters.hpp"

namespace tcpz::tracedigest {

inline std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

inline std::uint64_t fnv_d(std::uint64_t h, double v) {
  return fnv(h, std::bit_cast<std::uint64_t>(v));
}

inline constexpr std::uint64_t kFnvBasis = 1469598103934665603ull;

/// FNV-1a over every ListenerCounters field, in declaration order.
inline std::uint64_t digest(const tcp::ListenerCounters& c) {
  std::uint64_t h = kFnvBasis;
  h = fnv(h, c.syns_received);
  h = fnv(h, c.synacks_sent);
  h = fnv(h, c.plain_synacks);
  h = fnv(h, c.challenges_sent);
  h = fnv(h, c.cookies_sent);
  h = fnv(h, c.synack_retx);
  h = fnv(h, c.drops_listen_full);
  h = fnv(h, c.acks_received);
  h = fnv(h, c.solution_acks);
  h = fnv(h, c.solutions_valid);
  h = fnv(h, c.solutions_invalid);
  h = fnv(h, c.solutions_expired);
  h = fnv(h, c.solutions_bad_ackno);
  h = fnv(h, c.solutions_duplicate);
  h = fnv(h, c.acks_ignored_accept_full);
  h = fnv(h, c.cookies_valid);
  h = fnv(h, c.cookies_invalid);
  h = fnv(h, c.cookie_drops_accept_full);
  h = fnv(h, c.acks_pending_accept);
  h = fnv(h, c.established_total);
  h = fnv(h, c.established_queue);
  h = fnv(h, c.established_cookie);
  h = fnv(h, c.established_puzzle);
  h = fnv(h, c.half_open_expired);
  h = fnv(h, c.rsts_sent);
  h = fnv(h, c.data_segments);
  h = fnv(h, c.data_unknown_flow);
  h = fnv(h, c.secret_rotations);
  h = fnv(h, c.solutions_valid_prev_epoch);
  h = fnv(h, c.solutions_replay_filtered);
  h = fnv(h, c.crypto_hash_ops);
  return h;
}

inline std::uint64_t fold_series(std::uint64_t h, const TimeSeries& s) {
  h = fnv(h, s.bins());
  for (std::size_t i = 0; i < s.bins(); ++i) h = fnv_d(h, s.total(i));
  return h;
}

inline std::uint64_t fold_gauge(std::uint64_t h, const GaugeSeries& g) {
  h = fnv(h, g.points().size());
  for (const auto& p : g.points()) {
    h = fnv(h, static_cast<std::uint64_t>(p.t.nanos()));
    h = fnv_d(h, p.value);
  }
  return h;
}

/// Every counter, every time-series bin, every CPU sample and the
/// connection-time sample set of one client/bot report.
inline std::uint64_t digest(const sim::HostReport& r) {
  std::uint64_t h = kFnvBasis;
  h = fold_series(h, r.rx_bytes);
  h = fold_series(h, r.tx_bytes);
  h = fold_series(h, r.attempts);
  h = fold_series(h, r.established);
  h = fold_series(h, r.completions);
  h = fold_series(h, r.failures);
  h = fold_series(h, r.refusals);
  h = fnv(h, r.conn_time_ms.count());
  for (const double s : r.conn_time_ms.sorted()) h = fnv_d(h, s);
  h = fold_gauge(h, r.cpu);
  h = fnv(h, r.total_attempts);
  h = fnv(h, r.total_established);
  h = fnv(h, r.total_completions);
  h = fnv(h, r.total_failures);
  h = fnv(h, r.total_rsts);
  h = fnv(h, r.challenges_seen);
  h = fnv(h, r.solves_refused);
  return h;
}

}  // namespace tcpz::tracedigest
