// Shared FNV-1a digest helpers for the golden-trace regression tests
// (policy_trace_test, scenario_trace_test). A digest folds every field of a
// result struct in declaration order, so "digest unchanged" means the run is
// byte-for-byte identical as far as the struct can see.
//
// Field lists are expanded from the X-macro tables that declare the structs
// (TCPZ_LISTENER_COUNTER_FIELDS, TCPZ_HOST_REPORT_*_FIELDS), so a newly
// added field is folded automatically — it can no longer be forgotten here.
// The flip side: adding a field now ALWAYS perturbs the goldens (by design;
// a counter that never affects a digest is a counter nobody is testing).
#pragma once

#include <bit>
#include <cstdint>

#include "sim/metrics.hpp"
#include "tcp/counters.hpp"

namespace tcpz::tracedigest {

inline std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

inline std::uint64_t fnv_d(std::uint64_t h, double v) {
  return fnv(h, std::bit_cast<std::uint64_t>(v));
}

inline constexpr std::uint64_t kFnvBasis = 1469598103934665603ull;

/// FNV-1a over every ListenerCounters field, in table (declaration) order.
inline std::uint64_t digest(const tcp::ListenerCounters& c) {
  std::uint64_t h = kFnvBasis;
#define TCPZ_X(name, help) h = fnv(h, c.name);
  TCPZ_LISTENER_COUNTER_FIELDS(TCPZ_X)
#undef TCPZ_X
  return h;
}

inline std::uint64_t fold_series(std::uint64_t h, const TimeSeries& s) {
  h = fnv(h, s.bins());
  for (std::size_t i = 0; i < s.bins(); ++i) h = fnv_d(h, s.total(i));
  return h;
}

inline std::uint64_t fold_gauge(std::uint64_t h, const GaugeSeries& g) {
  h = fnv(h, g.points().size());
  for (const auto& p : g.points()) {
    h = fnv(h, static_cast<std::uint64_t>(p.t.nanos()));
    h = fnv_d(h, p.value);
  }
  return h;
}

/// Every counter, every time-series bin, every CPU sample and the
/// connection-time sample set of one client/bot report.
inline std::uint64_t digest(const sim::HostReport& r) {
  std::uint64_t h = kFnvBasis;
#define TCPZ_X(name, help) h = fold_series(h, r.name);
  TCPZ_HOST_REPORT_SERIES_FIELDS(TCPZ_X)
#undef TCPZ_X
  h = fnv(h, r.conn_time_ms.count());
  for (const double s : r.conn_time_ms.sorted()) h = fnv_d(h, s);
  h = fold_gauge(h, r.cpu);
#define TCPZ_X(name, help) h = fnv(h, r.name);
  TCPZ_HOST_REPORT_TOTAL_FIELDS(TCPZ_X)
#undef TCPZ_X
  return h;
}

}  // namespace tcpz::tracedigest
