// Full-stack integration: the REAL SHA-256 puzzle scheme carried over the
// simulated network through actual Listener/Connector wire exchanges,
// with the solution bytes encoded and decoded through the TCP options codec.
// This is the closest analogue to running the kernel patch end to end.
#include <gtest/gtest.h>

#include <memory>

#include "core/tcppuzzles.hpp"
#include "net/topology.hpp"
#include "tcp/wire_format.hpp"

namespace tcpz {
namespace {

constexpr std::uint32_t kServerAddr = tcp::ipv4(10, 1, 0, 1);
constexpr std::uint32_t kClientAddr = tcp::ipv4(10, 2, 0, 1);

/// Minimal host agents wiring Listener/Connector to the simulated network,
/// with real brute-force solving (small m keeps it fast).
class RealStackFixture : public ::testing::Test {
 protected:
  RealStackFixture() : topo_(sim_) {
    net::Router* r = topo_.add_router("r");
    server_host_ = topo_.add_host("server", kServerAddr);
    client_host_ = topo_.add_host("client", kClientAddr);
    const net::LinkSpec spec{100e6, SimTime::microseconds(200), 1 << 20};
    topo_.connect(server_host_, r, spec);
    topo_.connect(client_host_, r, spec);
    topo_.compute_routes();

    const auto secret = crypto::SecretKey::from_seed(5);
    puzzle::EngineConfig ecfg;
    ecfg.sol_len = 4;
    engine_ = std::make_shared<puzzle::Sha256PuzzleEngine>(secret, ecfg);

    tcp::ListenerConfig lcfg;
    lcfg.local_addr = kServerAddr;
    lcfg.local_port = 80;
    lcfg.mode = tcp::DefenseMode::kPuzzles;
    lcfg.always_challenge = true;  // force the full puzzle path
    lcfg.difficulty = {2, 10};     // ~1k hashes: real solve stays instant
    listener_ = std::make_unique<tcp::Listener>(lcfg, secret, 1, engine_);

    server_host_->set_handler([this](SimTime now, const tcp::Segment& seg) {
      // Wire-codec round trip: what the kernel would do to the raw packet.
      tcp::Segment reencoded = seg;
      const Bytes wire = tcp::encode_options(seg.options);
      EXPECT_EQ(tcp::decode_options(wire, reencoded.options),
                tcp::DecodeResult::kOk);
      for (const auto& out : listener_->on_segment(now, reencoded)) {
        server_host_->send(out);
      }
    });
  }

  void run_client(bool solve) {
    tcp::ConnectorConfig ccfg;
    ccfg.local_addr = kClientAddr;
    ccfg.local_port = 40'000;
    ccfg.remote_addr = kServerAddr;
    ccfg.remote_port = 80;
    ccfg.solve_puzzles = solve;
    connector_ = std::make_unique<tcp::Connector>(ccfg, 2);

    client_host_->set_handler([this](SimTime now, const tcp::Segment& seg) {
      auto out = connector_->on_segment(now, seg);
      if (out.solve) {
        std::uint64_t ops = 0;
        Rng rng(3);
        const auto sol =
            engine_->solve(*out.solve, connector_->flow_binding(), rng, ops);
        solve_hash_ops_ = ops;
        out = connector_->on_solved(now, sol);
      }
      for (const auto& seg2 : out.segments) client_host_->send(seg2);
      if (out.established) established_ = true;
    });

    sim_.schedule_at(SimTime::milliseconds(1), [this] {
      auto out = connector_->start(sim_.now());
      for (const auto& seg : out.segments) client_host_->send(seg);
    });
    sim_.run_until(SimTime::seconds(2));
  }

  net::Simulator sim_;
  net::Topology topo_;
  net::Host* server_host_ = nullptr;
  net::Host* client_host_ = nullptr;
  std::shared_ptr<puzzle::Sha256PuzzleEngine> engine_;
  std::unique_ptr<tcp::Listener> listener_;
  std::unique_ptr<tcp::Connector> connector_;
  bool established_ = false;
  std::uint64_t solve_hash_ops_ = 0;
};

TEST_F(RealStackFixture, RealPuzzleHandshakeOverTheWire) {
  run_client(/*solve=*/true);
  EXPECT_TRUE(established_);
  EXPECT_GT(solve_hash_ops_, 0u);
  EXPECT_EQ(listener_->counters().challenges_sent, 1u);
  EXPECT_EQ(listener_->counters().solutions_valid, 1u);
  EXPECT_EQ(listener_->counters().established_puzzle, 1u);

  const auto conn = listener_->accept(sim_.now());
  ASSERT_TRUE(conn.has_value());
  EXPECT_EQ(conn->path, tcp::EstablishPath::kPuzzle);
  EXPECT_EQ(conn->peer_mss, 1460);
  EXPECT_EQ(conn->peer_wscale, 7);
}

TEST_F(RealStackFixture, LegacyClientDoesNotEstablish) {
  run_client(/*solve=*/false);
  // The legacy client ACKs blindly and believes it connected...
  EXPECT_TRUE(established_);
  // ...but the server holds no state for it.
  EXPECT_EQ(listener_->counters().solutions_valid, 0u);
  EXPECT_EQ(listener_->established_count(), 0u);
}

TEST(ProtectedServerFacade, PlansAndBuildsListener) {
  ProtectedServerSettings settings;
  settings.local_addr = kServerAddr;
  settings.local_port = 443;
  settings.plan.client_hash_rates = {380'000.0, 330'000.0, 344'725.0};
  for (double c : {100.0, 500.0, 1000.0}) {
    settings.plan.stress_test.push_back({c, 1.1 * c});
  }
  settings.plan.form = game::NashForm::kPaperExample;
  settings.engine.sol_len = 4;

  const auto server = make_protected_server(
      settings, crypto::SecretKey::from_seed(9), 1);
  EXPECT_EQ(server.plan.difficulty.k, 2);
  EXPECT_EQ(server.plan.difficulty.m, 17);
  ASSERT_NE(server.listener, nullptr);
  EXPECT_EQ(server.listener->config().mode, tcp::DefenseMode::kPuzzles);
  EXPECT_EQ(server.listener->config().difficulty, server.plan.difficulty);

  const Version v = library_version();
  EXPECT_GE(v.major, 1);
}

}  // namespace
}  // namespace tcpz
