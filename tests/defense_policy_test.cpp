// Tests for the pluggable defense layer (src/defense/): policy decision
// tables driven by synthetic QueueViews, the DefenseMode/PolicySpec mapping,
// and the new composable policies (hybrid, adaptive decorator, custom
// factories) wired through a real Listener.
#include <gtest/gtest.h>

#include <memory>

#include "crypto/secret.hpp"
#include "defense/policies.hpp"
#include "defense/spec.hpp"
#include "puzzle/engine.hpp"
#include "sim/scenario.hpp"
#include "tcp/listener.hpp"

namespace tcpz {
namespace {

using defense::AckDecision;
using defense::PolicySpec;
using defense::QueueView;
using defense::SynAction;

constexpr std::uint32_t kServerAddr = tcp::ipv4(10, 1, 0, 1);
constexpr std::uint16_t kServerPort = 80;
constexpr std::uint32_t kClientAddr = tcp::ipv4(10, 2, 0, 1);

QueueView view(std::size_t listen_depth, std::size_t listen_cap,
               std::size_t accept_depth, std::size_t accept_cap,
               bool has_engine = true) {
  QueueView q;
  q.listen_depth = listen_depth;
  q.listen_capacity = listen_cap;
  q.listen_full = listen_depth >= listen_cap;
  q.accept_depth = accept_depth;
  q.accept_capacity = accept_cap;
  q.accept_full = accept_depth >= accept_cap;
  q.has_engine = has_engine;
  return q;
}

tcp::Segment make_syn(std::uint32_t saddr, std::uint16_t sport,
                      std::uint32_t isn, SimTime now = SimTime::zero()) {
  tcp::Segment s;
  s.saddr = saddr;
  s.daddr = kServerAddr;
  s.sport = sport;
  s.dport = kServerPort;
  s.seq = isn;
  s.flags = tcp::kSyn;
  s.options.mss = 1460;
  s.options.wscale = 7;
  s.options.ts = tcp::TimestampsOption{
      static_cast<std::uint32_t>(now.nanos() / 1'000'000), 0};
  return s;
}

tcp::Segment make_ack_for(const tcp::Segment& synack, SimTime now) {
  tcp::Segment s;
  s.saddr = synack.daddr;
  s.daddr = synack.saddr;
  s.sport = synack.dport;
  s.dport = synack.sport;
  s.seq = synack.ack;
  s.ack = synack.seq + 1;
  s.flags = tcp::kAck;
  if (synack.options.ts) {
    s.options.ts = tcp::TimestampsOption{
        static_cast<std::uint32_t>(now.nanos() / 1'000'000),
        synack.options.ts->tsval};
  }
  return s;
}

// ---------------------------------------------------------------------------
// Decision tables (no listener)
// ---------------------------------------------------------------------------

TEST(NonePolicy, DropsOnlyWhenListenFull) {
  defense::NonePolicy p;
  EXPECT_EQ(p.on_syn(SimTime::zero(), view(0, 4, 0, 4)).action,
            SynAction::kEnqueue);
  EXPECT_EQ(p.on_syn(SimTime::zero(), view(4, 4, 0, 4)).action,
            SynAction::kDrop);
  const AckDecision a = p.on_ack(SimTime::zero(), view(4, 4, 4, 4));
  EXPECT_FALSE(a.check_solution);
  EXPECT_FALSE(a.check_cookie);
  EXPECT_FALSE(p.protection_active(view(4, 4, 4, 4)));
  EXPECT_FALSE(p.requires_engine());
}

TEST(SynCookiePolicy, CookiesUnderPressureOnly) {
  defense::SynCookiePolicy p;
  EXPECT_EQ(p.on_syn(SimTime::zero(), view(3, 4, 0, 4)).action,
            SynAction::kEnqueue);
  EXPECT_EQ(p.on_syn(SimTime::zero(), view(4, 4, 0, 4)).action,
            SynAction::kCookie);
  // Cookies keep validating after the queue drains.
  EXPECT_TRUE(p.on_ack(SimTime::zero(), view(0, 4, 0, 4)).check_cookie);
  EXPECT_FALSE(p.on_ack(SimTime::zero(), view(0, 4, 0, 4)).check_solution);
  EXPECT_TRUE(p.protection_active(view(4, 4, 0, 4)));
  EXPECT_FALSE(p.protection_active(view(3, 4, 0, 4)));
}

TEST(PuzzlePolicy, LatchEngagesAtWatermarkAndHolds) {
  defense::PuzzlePolicyConfig cfg;
  cfg.hold = SimTime::seconds(5);
  cfg.engage_water = 0.5;
  defense::PuzzlePolicy p(cfg);

  const SimTime t0 = SimTime::seconds(1);
  p.observe(t0, view(3, 8, 0, 8));
  EXPECT_FALSE(p.latched()) << "3 < 8*0.5";
  p.observe(t0, view(4, 8, 0, 8));
  EXPECT_TRUE(p.latched()) << "4 >= 8*0.5";
  EXPECT_EQ(p.on_syn(t0, view(4, 8, 0, 8)).action, SynAction::kChallenge);

  // Queue drains; the hold keeps protection in effect, then releases.
  p.observe(t0 + SimTime::seconds(2), view(0, 8, 0, 8));
  EXPECT_TRUE(p.latched()) << "hold not yet elapsed";
  EXPECT_EQ(p.on_syn(t0, view(0, 8, 0, 8)).action, SynAction::kChallenge);
  p.observe(t0 + SimTime::seconds(6), view(0, 8, 0, 8));
  EXPECT_FALSE(p.latched()) << "hold elapsed";
  EXPECT_EQ(p.on_syn(t0, view(0, 8, 0, 8)).action, SynAction::kEnqueue);
}

TEST(PuzzlePolicy, CookieFallbackWithoutEngine) {
  defense::PuzzlePolicyConfig cfg;
  cfg.cookie_fallback = true;
  defense::PuzzlePolicy p(cfg);
  EXPECT_FALSE(p.requires_engine());
  // Engine present: challenge wins when full.
  EXPECT_EQ(p.on_syn(SimTime::zero(), view(4, 4, 0, 4, true)).action,
            SynAction::kChallenge);
  // No engine: degrade to cookies when full, enqueue otherwise.
  EXPECT_EQ(p.on_syn(SimTime::zero(), view(4, 4, 0, 4, false)).action,
            SynAction::kCookie);
  EXPECT_EQ(p.on_syn(SimTime::zero(), view(0, 4, 0, 4, false)).action,
            SynAction::kEnqueue);
  EXPECT_TRUE(p.on_ack(SimTime::zero(), view(0, 4, 0, 4, false)).check_cookie);
  EXPECT_FALSE(p.on_ack(SimTime::zero(), view(0, 4, 0, 4, true)).check_cookie);
}

TEST(PuzzlePolicy, WithoutFallbackRequiresEngineAndDropsWhenMissing) {
  defense::PuzzlePolicy p(defense::PuzzlePolicyConfig{});
  EXPECT_TRUE(p.requires_engine());
  // Defensive table: with the engine somehow gone, a full queue drops.
  EXPECT_EQ(p.on_syn(SimTime::zero(), view(4, 4, 0, 4, false)).action,
            SynAction::kDrop);
}

TEST(HybridPolicy, ChallengesOnAcceptPressureCookiesOnListenPressure) {
  defense::HybridPolicyConfig cfg;
  cfg.hold = SimTime::seconds(5);
  defense::HybridPolicy p(cfg);
  EXPECT_TRUE(p.requires_engine());

  // Listen-queue pressure alone (SYN flood): stateless cookies.
  EXPECT_EQ(p.on_syn(SimTime::zero(), view(4, 4, 0, 4)).action,
            SynAction::kCookie);
  // Accept-queue pressure (connection flood): puzzles take precedence.
  p.observe(SimTime::seconds(1), view(4, 4, 4, 4));
  EXPECT_EQ(p.on_syn(SimTime::seconds(1), view(4, 4, 4, 4)).action,
            SynAction::kChallenge);
  // Latch holds after the accept queue drains...
  p.observe(SimTime::seconds(2), view(0, 4, 0, 4));
  EXPECT_EQ(p.on_syn(SimTime::seconds(2), view(0, 4, 0, 4)).action,
            SynAction::kChallenge);
  // ...and releases after the hold, cookies again only under listen pressure.
  p.observe(SimTime::seconds(7), view(0, 4, 0, 4));
  EXPECT_EQ(p.on_syn(SimTime::seconds(7), view(0, 4, 0, 4)).action,
            SynAction::kEnqueue);

  // Both credentials stay redeemable.
  EXPECT_TRUE(p.on_ack(SimTime::zero(), view(0, 4, 0, 4)).check_solution);
  EXPECT_TRUE(p.on_ack(SimTime::zero(), view(0, 4, 0, 4)).check_cookie);
}

// ---------------------------------------------------------------------------
// Spec mapping and construction
// ---------------------------------------------------------------------------

TEST(PolicySpec, FromModeMapsToCanonicalPolicies) {
  EXPECT_STREQ(PolicySpec::from_mode(tcp::DefenseMode::kNone).build()->name(),
               "none");
  EXPECT_STREQ(
      PolicySpec::from_mode(tcp::DefenseMode::kSynCookies).build()->name(),
      "syncookies");
  EXPECT_STREQ(
      PolicySpec::from_mode(tcp::DefenseMode::kPuzzles).build()->name(),
      "puzzles");
  EXPECT_STREQ(PolicySpec::hybrid().build()->name(), "hybrid");
}

TEST(PolicySpec, AdaptiveWrapsPuzzleMintingKindsOnly) {
  const auto adaptive = PolicySpec::puzzles().with_adaptive(AdaptiveConfig{});
  EXPECT_STREQ(adaptive.build()->name(), "adaptive+puzzles");
  EXPECT_STREQ(
      PolicySpec::hybrid().with_adaptive(AdaptiveConfig{}).build()->name(),
      "adaptive+hybrid");
  // kNone/kSynCookies mint no puzzles; the decorator would be dead weight.
  EXPECT_STREQ(PolicySpec::none().with_adaptive(AdaptiveConfig{}).build()->name(),
               "none");
  EXPECT_STREQ(
      PolicySpec::syn_cookies().with_adaptive(AdaptiveConfig{}).build()->name(),
      "syncookies");
}

TEST(PolicySpec, WantsEngine) {
  EXPECT_FALSE(PolicySpec::none().wants_engine());
  EXPECT_FALSE(PolicySpec::syn_cookies().wants_engine());
  EXPECT_TRUE(PolicySpec::puzzles().wants_engine());
  EXPECT_TRUE(PolicySpec::hybrid().wants_engine());
}

// ---------------------------------------------------------------------------
// Policies wired through a real Listener
// ---------------------------------------------------------------------------

class PolicyListenerTest : public ::testing::Test {
 protected:
  void rebuild(PolicySpec spec, std::size_t listen_backlog = 4,
               std::size_t accept_backlog = 4, bool with_engine = true) {
    tcp::ListenerConfig cfg;
    cfg.local_addr = kServerAddr;
    cfg.local_port = kServerPort;
    cfg.listen_backlog = listen_backlog;
    cfg.accept_backlog = accept_backlog;
    cfg.difficulty = {1, 8};
    cfg.policy = spec.factory();
    secret_ = crypto::SecretKey::from_seed(7);
    engine_ = std::make_shared<puzzle::OraclePuzzleEngine>(
        secret_, puzzle::EngineConfig{4, 4000, 100});
    listener_ = std::make_unique<tcp::Listener>(cfg, secret_, 1,
                                                with_engine ? engine_ : nullptr);
  }

  /// SYN -> SYN-ACK -> final ACK through raw segments; returns the SYN-ACK.
  tcp::Segment handshake(std::uint16_t sport, SimTime t) {
    const auto synacks =
        listener_->on_segment(t, make_syn(kClientAddr, sport, 100, t));
    EXPECT_EQ(synacks.size(), 1u);
    (void)listener_->on_segment(t, make_ack_for(synacks[0], t));
    return synacks[0];
  }

  crypto::SecretKey secret_{crypto::SecretKey::from_seed(7)};
  std::shared_ptr<puzzle::OraclePuzzleEngine> engine_;
  std::unique_ptr<tcp::Listener> listener_;
};

TEST_F(PolicyListenerTest, HybridRequiresEngineAtConstruction) {
  EXPECT_THROW(rebuild(PolicySpec::hybrid(), 4, 4, /*with_engine=*/false),
               std::invalid_argument);
}

TEST_F(PolicyListenerTest, HybridAnswersListenPressureWithCookies) {
  rebuild(PolicySpec::hybrid(), /*listen_backlog=*/2);
  const SimTime t = SimTime::seconds(1);
  // Half-open flood: fill the listen queue without completing handshakes.
  for (int i = 0; i < 2; ++i) {
    (void)listener_->on_segment(t, make_syn(kClientAddr + 1 + i, 1000, 5, t));
  }
  ASSERT_EQ(listener_->listen_depth(), 2u);

  // The next SYN draws a cookie, not a challenge and not a drop — and the
  // cookie handshake completes statelessly.
  const auto out = listener_->on_segment(t, make_syn(kClientAddr, 40000, 9, t));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].options.challenge.has_value());
  EXPECT_EQ(listener_->counters().cookies_sent, 1u);
  (void)listener_->on_segment(t, make_ack_for(out[0], t));
  EXPECT_EQ(listener_->counters().established_cookie, 1u);
  EXPECT_EQ(listener_->listen_depth(), 2u) << "cookie path must stay stateless";
}

TEST_F(PolicyListenerTest, HybridAnswersAcceptPressureWithChallenges) {
  rebuild(PolicySpec::hybrid(), /*listen_backlog=*/8, /*accept_backlog=*/2);
  const SimTime t = SimTime::seconds(1);
  // Fill the accept queue with completed handshakes (a connection flood).
  (void)handshake(41000, t);
  (void)handshake(41001, t);
  ASSERT_EQ(listener_->accept_depth(), 2u);
  (void)listener_->on_tick(t + SimTime::milliseconds(1));
  EXPECT_TRUE(listener_->protection_active());

  const auto out = listener_->on_segment(t + SimTime::milliseconds(2),
                                         make_syn(kClientAddr, 42000, 9, t));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].options.challenge.has_value())
      << "accept pressure must price the handshake, not hand out cookies";
  EXPECT_EQ(listener_->counters().challenges_sent, 1u);
}

TEST_F(PolicyListenerTest, AdaptivePolicyRetunesDifficultyThroughOnTick) {
  AdaptiveConfig actl;
  actl.base = {1, 8};
  actl.m_min = 1;
  actl.m_max = 10;
  actl.high_demand = 1.0;
  actl.low_demand = 0.1;
  actl.patience = 1;
  PolicySpec spec = PolicySpec::puzzles().with_adaptive(actl);
  spec.always_challenge = true;
  rebuild(spec);
  EXPECT_STREQ(listener_->policy_name(), "adaptive+puzzles");

  // Prime the controller, then sustain challenge demand for one period.
  (void)listener_->on_tick(SimTime::zero());
  for (int i = 0; i < 20; ++i) {
    const auto out = listener_->on_segment(
        SimTime::milliseconds(10 * i),
        make_syn(kClientAddr + i, 40000, 5, SimTime::milliseconds(10 * i)));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].options.challenge->m, 8);
  }
  (void)listener_->on_tick(SimTime::milliseconds(1100));
  EXPECT_EQ(listener_->config().difficulty.m, 9)
      << "sustained demand above high_demand must step m up";

  // The next challenge is minted at the hardened difficulty.
  const auto out = listener_->on_segment(
      SimTime::milliseconds(1200),
      make_syn(kClientAddr + 100, 40000, 5, SimTime::milliseconds(1200)));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].options.challenge->m, 9);
}

TEST_F(PolicyListenerTest, CustomPolicyViaFactory) {
  // A user-supplied policy outside the built-in set: unconditional drop.
  class BlackholePolicy final : public defense::DefensePolicy {
   public:
    const char* name() const override { return "blackhole"; }
    defense::SynDecision on_syn(SimTime, const QueueView&) override {
      return {SynAction::kDrop};
    }
    AckDecision on_ack(SimTime, const QueueView&) const override { return {}; }
    bool protection_active(const QueueView&) const override { return true; }
  };

  tcp::ListenerConfig cfg;
  cfg.local_addr = kServerAddr;
  cfg.local_port = kServerPort;
  cfg.policy = [] { return std::make_unique<BlackholePolicy>(); };
  tcp::Listener listener(cfg, crypto::SecretKey::from_seed(3), 1, nullptr);

  EXPECT_STREQ(listener.policy_name(), "blackhole");
  EXPECT_TRUE(listener.protection_active());
  const SimTime t = SimTime::seconds(1);
  EXPECT_TRUE(listener.on_segment(t, make_syn(kClientAddr, 40000, 1, t)).empty());
  EXPECT_EQ(listener.counters().drops_policy, 1u);
  EXPECT_EQ(listener.counters().drops_queue_overflow, 0u);
  EXPECT_EQ(listener.listen_depth(), 0u);
}

TEST_F(PolicyListenerTest, SetPolicySwitchesAtRuntimeAndValidatesEngine) {
  rebuild(PolicySpec::none(), 4, 4, /*with_engine=*/false);
  EXPECT_STREQ(listener_->policy_name(), "none");

  // Switching to an engine-requiring policy without an engine fails and
  // leaves the current policy in place.
  EXPECT_THROW(listener_->set_policy(PolicySpec::hybrid().build()),
               std::invalid_argument);
  EXPECT_STREQ(listener_->policy_name(), "none");

  listener_->set_policy(PolicySpec::syn_cookies().build());
  EXPECT_STREQ(listener_->policy_name(), "syncookies");

  listener_->set_engine(engine_);
  listener_->set_policy(PolicySpec::hybrid().build());
  EXPECT_STREQ(listener_->policy_name(), "hybrid");
}

// The legacy-knob mapping is maintained in exactly one place
// (PolicySpec::from_legacy); both scenario layers go through it.
TEST(PolicySpecFromLegacy, MapsEveryKnobOnce) {
  AdaptiveConfig actl;
  actl.base = {2, 15};
  const PolicySpec s = PolicySpec::from_legacy(
      tcp::DefenseMode::kPuzzles, /*always_challenge=*/true,
      SimTime::seconds(12), /*engage_water=*/0.75, actl);
  EXPECT_EQ(s.kind, PolicySpec::Kind::kPuzzles);
  EXPECT_TRUE(s.always_challenge);
  EXPECT_EQ(s.protection_hold, SimTime::seconds(12));
  EXPECT_DOUBLE_EQ(s.protection_engage_water, 0.75);
  ASSERT_TRUE(s.adaptive.has_value());
  EXPECT_EQ(s.adaptive->base, (puzzle::Difficulty{2, 15}));

  // The kind comes from from_mode — the enum names a canonical spec.
  EXPECT_EQ(PolicySpec::from_legacy(tcp::DefenseMode::kNone, false,
                                    SimTime::seconds(60), 1.0, std::nullopt)
                .kind,
            PolicySpec::Kind::kNone);
  EXPECT_EQ(PolicySpec::from_legacy(tcp::DefenseMode::kSynCookies, false,
                                    SimTime::seconds(60), 1.0, std::nullopt)
                .kind,
            PolicySpec::Kind::kSynCookies);
}

// sim::ScenarioConfig::policy_spec is nothing but from_legacy over the
// config's shim fields (and the explicit spec short-circuits it).
TEST(PolicySpecFromLegacy, ScenarioConfigShimGoesThroughIt) {
  sim::ScenarioConfig cfg;
  cfg.defense = tcp::DefenseMode::kPuzzles;
  cfg.always_challenge = true;
  cfg.protection_hold = SimTime::seconds(33);
  cfg.protection_engage_water = 0.5;
  EXPECT_EQ(cfg.policy_spec(),
            PolicySpec::from_legacy(tcp::DefenseMode::kPuzzles, true,
                                    SimTime::seconds(33), 0.5, std::nullopt));

  cfg.policy = PolicySpec::hybrid();
  EXPECT_EQ(cfg.policy_spec(), PolicySpec::hybrid());
}

}  // namespace
}  // namespace tcpz
