// Sharded-engine (src/par/) correctness pins.
//
//  * shards == 1 is byte-identical to the single-thread scenario::run —
//    including against the pre-refactor golden digest the scenario trace
//    tests pin, so the Engine refactor + par driver reproduce history
//    exactly.
//  * A fixed (seed, shards) pair is deterministic across repeats, for both
//    result digests and the merged flight-recorder trace, at N in {2,4,8}.
//  * Sharded runs are statistically equivalent to the single-thread run
//    (derived RNG streams are shard-count-independent; only cross-shard
//    queueing is approximated).
//  * Cross-shard delivery ordering: draining mailboxes in fixed source
//    order and scheduling into the simulator reproduces a reference
//    model's (time, drain-order) total order.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <vector>

#include "defense/spec.hpp"
#include "net/simulator.hpp"
#include "offense/spec.hpp"
#include "par/engine.hpp"
#include "par/mailbox.hpp"
#include "scenario/spec.hpp"
#include "trace_digest.hpp"

namespace tcpz {
namespace {

using tracedigest::digest;
using tracedigest::fnv;
using tracedigest::kFnvBasis;

/// Folds every server (counters), the cluster sum, every client and every
/// bot report — any re-ordered RNG draw or perturbed event shows up.
std::uint64_t full_digest(const scenario::Result& r) {
  std::uint64_t h = kFnvBasis;
  for (const auto& s : r.servers) h = fnv(h, digest(s.counters));
  h = fnv(h, digest(r.cluster));
  for (const auto& c : r.clients) h = fnv(h, digest(c));
  for (const auto& g : r.groups) {
    for (const auto& b : g.bots) h = fnv(h, digest(b));
  }
  return h;
}

/// A two-server, multi-group scenario with derived seeding — agents land on
/// every shard for all tested shard counts. WAN-scale link delay keeps the
/// round count (duration / lookahead) test-sized.
scenario::Spec par_fixture() {
  scenario::Spec s;
  s.duration = SimTime::seconds(20);
  s.attack_start = SimTime::seconds(5);
  s.attack_end = SimTime::seconds(15);
  s.net.link_delay = SimTime::milliseconds(5);
  s.workload.n_clients = 8;
  s.workload.request_rate = 10.0;
  s.workload.response_bytes = 20'000;
  s.servers.count = 2;
  s.servers.policies = {defense::PolicySpec::puzzles()};
  scenario::AttackSpec a;
  a.count = 6;
  a.rate = 200.0;
  a.strategy = offense::StrategySpec::conn_flood();
  s.attacks = {a};
  return s;
}

TEST(ParallelSim, SingleShardByteIdenticalToScenarioRun) {
  const scenario::Spec s = par_fixture();
  const scenario::Result single = scenario::run(s);
  const scenario::Result par1 = par::run(s, {.shards = 1});
  EXPECT_EQ(full_digest(single), full_digest(par1));
  EXPECT_EQ(single.events_processed, par1.events_processed);
}

// The same golden the scenario trace tests pin for the legacy conn-flood
// fixture: par::run at one shard reproduces pre-refactor history
// byte-for-byte, not merely "whatever scenario::run currently does".
TEST(ParallelSim, SingleShardReproducesGoldenTrace) {
  scenario::Spec s;
  s = s.scaled();
  s.seeding = scenario::SeedMode::kLegacySequential;
  s.servers.policies = {defense::PolicySpec::puzzles()};
  scenario::AttackSpec a;
  a.count = 10;
  a.rate = 500.0;
  a.strategy = offense::StrategySpec::conn_flood();
  s.attacks = {a};
  const scenario::Result r = par::run(s, {.shards = 1});
  std::uint64_t h = kFnvBasis;
  h = fnv(h, digest(r.server().counters));
  for (const auto& c : r.clients) h = fnv(h, digest(c));
  for (const auto& g : r.groups) {
    for (const auto& b : g.bots) h = fnv(h, digest(b));
  }
  EXPECT_EQ(h, 0x70843e373a6e87a9ull)
      << "par 1-shard trace drifted from the golden; computed 0x" << std::hex
      << h;
}

class ParallelSimShards : public ::testing::TestWithParam<int> {};

TEST_P(ParallelSimShards, FixedSeedAndShardsIsDeterministic) {
  const int n = GetParam();
  scenario::Spec s = par_fixture();
  s.obs.trace = true;  // pin the merged trace stream too
  const scenario::Result a = par::run(s, {.shards = n});
  const scenario::Result b = par::run(s, {.shards = n});
  EXPECT_EQ(full_digest(a), full_digest(b))
      << "result digest diverged across repeats at " << n << " shards";
  ASSERT_TRUE(a.trace && b.trace);
  EXPECT_EQ(a.trace->digest(), b.trace->digest())
      << "merged trace diverged across repeats at " << n << " shards";
  EXPECT_EQ(a.events_processed, b.events_processed);
}

INSTANTIATE_TEST_SUITE_P(N, ParallelSimShards, ::testing::Values(2, 4, 8));

TEST(ParallelSim, ShardedFleetIsDeterministic) {
  scenario::Spec s = par_fixture();
  s.fleet.enabled = true;
  s.fleet.rotation_interval = SimTime::seconds(10);
  s.fleet.rotation_overlap = SimTime::seconds(3);
  s.servers.count = 3;
  const scenario::Result a = par::run(s, {.shards = 4});
  const scenario::Result b = par::run(s, {.shards = 4});
  EXPECT_EQ(full_digest(a), full_digest(b));
  EXPECT_GT(a.cluster.established_total, 0u);
  EXPECT_EQ(a.secret_rotations, b.secret_rotations);
  EXPECT_GT(a.secret_rotations, 0u);
}

// Derived RNG streams are shard-count-independent, and the paper-facing
// aggregates must agree between the sharded and single-thread runs up to
// the cross-shard queueing approximation.
TEST(ParallelSim, ShardedStatisticallyMatchesSingleThread) {
  const scenario::Spec s = par_fixture();
  const scenario::Result single = par::run(s, {.shards = 1});
  for (const int n : {2, 4}) {
    const scenario::Result sharded = par::run(s, {.shards = n});

    // Bot emission is driven by per-bot RNG alone — attempts match almost
    // exactly (only feedback-dependent strategies could drift).
    const auto att1 = static_cast<double>(single.groups[0].total_attempts());
    const auto att2 = static_cast<double>(sharded.groups[0].total_attempts());
    EXPECT_NEAR(att2 / att1, 1.0, 0.05) << n << " shards";

    const double pct1 = single.client_success_pct(0, s.duration_bins());
    const double pct2 = sharded.client_success_pct(0, s.duration_bins());
    EXPECT_NEAR(pct1, pct2, 10.0) << n << " shards";

    const auto est1 = static_cast<double>(single.cluster.established_total);
    const auto est2 = static_cast<double>(sharded.cluster.established_total);
    EXPECT_NEAR(est2 / est1, 1.0, 0.15) << n << " shards";
  }
}

TEST(ParallelSim, RejectsLegacySeedingAndBadLookahead) {
  scenario::Spec s = par_fixture();
  s.seeding = scenario::SeedMode::kLegacySequential;
  EXPECT_THROW((void)par::run(s, {.shards = 2}), std::invalid_argument);
  // Legacy seeding is fine single-threaded.
  EXPECT_NO_THROW((void)par::run(s, {.shards = 1}));

  scenario::Spec d = par_fixture();
  // An override above the topology's minimum link delay breaks causality.
  EXPECT_THROW(
      ((void)par::run(d, {.shards = 2, .lookahead = d.net.link_delay * 2})),
      std::invalid_argument);
  d.net.link_delay = SimTime::zero();
  EXPECT_THROW((void)par::run(d, {.shards = 2}), std::invalid_argument);
}

// Reference-model pin for cross-shard delivery: mailbox drain (fixed source
// order, FIFO within a box) followed by simulator scheduling must fire
// messages in exactly the order a reference sort by (time, source, FIFO)
// predicts — the property that makes barrier injection deterministic.
TEST(ParallelSim, MailboxDrainMatchesReferenceOrder) {
  constexpr int kShards = 3;  // me = shard 0; sources 1 and 2
  struct Ref {
    SimTime at;
    int src;
    int fifo;
    int id;
  };
  std::vector<Ref> pushed;
  par::Mailbox boxes[kShards];
  int id = 0;
  // Interleaved times, including exact ties across sources.
  const std::int64_t times_us[] = {700, 100, 400, 100, 900, 400, 400, 250};
  for (int src = 1; src < kShards; ++src) {
    for (int f = 0; f < 4; ++f) {
      const SimTime at =
          SimTime::microseconds(times_us[(src - 1) * 4 + f] + 1000);
      tcp::Segment seg{};
      seg.saddr = static_cast<std::uint32_t>(id);
      boxes[src].msgs.push_back({at, seg});
      pushed.push_back({at, src, f, id});
      ++id;
    }
  }

  net::Simulator sim;
  std::vector<int> fired;
  for (int src = 1; src < kShards; ++src) {
    for (const par::ShardMsg& m : boxes[src].msgs) {
      const int mid = static_cast<int>(m.seg.saddr);
      sim.schedule_at(m.at, [&fired, mid] { fired.push_back(mid); });
    }
    boxes[src].msgs.clear();
  }
  sim.run();

  // Reference: time-major, then source, then FIFO position (= stable sort
  // by time over the drain order).
  std::stable_sort(pushed.begin(), pushed.end(),
                   [](const Ref& a, const Ref& b) { return a.at < b.at; });
  std::vector<int> expect;
  for (const Ref& r : pushed) expect.push_back(r.id);
  EXPECT_EQ(fired, expect);
}

// The sense-reversing barrier separates phases: writes made before an
// arrival are visible after the matching release on every other thread.
TEST(ParallelSim, SpinBarrierSeparatesPhases) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  par::SpinBarrier barrier(kThreads);
  std::vector<std::uint64_t> cells(kThreads, 0);
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      bool sense = false;
      for (int r = 0; r < kRounds; ++r) {
        cells[t] += 1;  // write phase: each thread owns its own cell
        barrier.arrive_and_wait(sense);
        // read phase: every thread must observe every cell at r + 1
        for (int o = 0; o < kThreads; ++o) {
          if (cells[o] != static_cast<std::uint64_t>(r) + 1) ++failures[t];
        }
        barrier.arrive_and_wait(sense);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;
}

}  // namespace
}  // namespace tcpz
