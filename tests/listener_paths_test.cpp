// Coverage for the less-travelled listener/connector paths: operation
// without the TCP timestamps option (embedded challenge timestamps), the
// cookie-fallback configuration of §5, close semantics, and counter
// consistency across mixed traffic.
#include <gtest/gtest.h>

#include <memory>

#include "crypto/secret.hpp"
#include "puzzle/engine.hpp"
#include "tcp/connector.hpp"
#include "tcp/listener.hpp"

namespace tcpz::tcp {
namespace {

constexpr std::uint32_t kServerAddr = ipv4(10, 1, 0, 1);
constexpr std::uint16_t kServerPort = 80;
constexpr std::uint32_t kClientAddr = ipv4(10, 2, 0, 1);

struct Pair {
  std::unique_ptr<Listener> listener;
  std::shared_ptr<puzzle::OraclePuzzleEngine> engine;
};

Pair make_pair(ListenerConfig cfg,
               puzzle::EngineConfig ecfg = {4, 4000, 100}) {
  cfg.local_addr = kServerAddr;
  cfg.local_port = kServerPort;
  const auto secret = crypto::SecretKey::from_seed(21);
  Pair p;
  p.engine = std::make_shared<puzzle::OraclePuzzleEngine>(secret, ecfg);
  p.listener = std::make_unique<Listener>(cfg, secret, 3, p.engine);
  return p;
}

/// Drives a full handshake with a configurable connector; returns the
/// connector for further assertions.
Connector drive(Pair& p, ConnectorConfig ccfg, SimTime now,
                bool* established_out = nullptr) {
  ccfg.local_addr = ccfg.local_addr ? ccfg.local_addr : kClientAddr;
  ccfg.remote_addr = kServerAddr;
  ccfg.remote_port = kServerPort;
  Connector conn(ccfg, ccfg.local_port);
  auto out = conn.start(now);
  for (int hop = 0; hop < 6 && !out.segments.empty(); ++hop) {
    std::vector<Segment> to_client;
    for (const auto& seg : out.segments) {
      const auto resp = p.listener->on_segment(now, seg);
      to_client.insert(to_client.end(), resp.begin(), resp.end());
    }
    out.segments.clear();
    for (const auto& seg : to_client) {
      out = conn.on_segment(now, seg);
      if (out.solve) {
        Rng rng(1);
        std::uint64_t ops = 0;
        const auto sol = p.engine->solve(*out.solve, conn.flow_binding(), rng, ops);
        out = conn.on_solved(now, sol);
      }
      if (established_out && out.established) *established_out = true;
    }
  }
  for (const auto& seg : out.segments) (void)p.listener->on_segment(now, seg);
  return conn;
}

// ---------------------------------------------------------------------------
// No TCP timestamps: the challenge timestamp travels embedded (Fig. 4/5's
// optional T field).
// ---------------------------------------------------------------------------

TEST(TimestamplessMode, ChallengeCarriesEmbeddedTimestamp) {
  ListenerConfig cfg;
  cfg.mode = DefenseMode::kPuzzles;
  cfg.always_challenge = true;
  cfg.difficulty = {2, 10};
  cfg.use_timestamps = false;
  auto p = make_pair(cfg);

  ConnectorConfig ccfg;
  ccfg.local_port = 50'000;
  ccfg.use_timestamps = false;
  const SimTime t = SimTime::seconds(3);
  bool established = false;
  (void)drive(p, ccfg, t, &established);

  EXPECT_TRUE(established);
  EXPECT_EQ(p.listener->counters().solutions_valid, 1u);
  EXPECT_EQ(p.listener->counters().established_puzzle, 1u);
}

TEST(TimestamplessMode, ServerHonorsClientWithoutTimestamps) {
  // Server has timestamps enabled but the client did not negotiate them:
  // the challenge must fall back to the embedded form.
  ListenerConfig cfg;
  cfg.mode = DefenseMode::kPuzzles;
  cfg.always_challenge = true;
  cfg.difficulty = {1, 8};
  cfg.use_timestamps = true;  // server side on
  auto p = make_pair(cfg);

  Segment syn;
  syn.saddr = kClientAddr;
  syn.daddr = kServerAddr;
  syn.sport = 50'001;
  syn.dport = kServerPort;
  syn.seq = 42;
  syn.flags = kSyn;
  syn.options.mss = 1460;  // no ts option
  const auto out = p.listener->on_segment(SimTime::seconds(1), syn);
  ASSERT_EQ(out.size(), 1u);
  ASSERT_TRUE(out[0].options.challenge.has_value());
  EXPECT_TRUE(out[0].options.challenge->embedded_ts.has_value());
  EXPECT_FALSE(out[0].options.ts.has_value());
}

TEST(TimestamplessMode, ExpiryStillEnforced) {
  ListenerConfig cfg;
  cfg.mode = DefenseMode::kPuzzles;
  cfg.always_challenge = true;
  cfg.difficulty = {1, 8};
  cfg.use_timestamps = false;
  auto p = make_pair(cfg, {4, 1000, 100});  // 1 s expiry

  ConnectorConfig ccfg;
  ccfg.local_port = 50'002;
  ccfg.use_timestamps = false;
  Connector conn(ccfg, 1);
  ccfg.local_addr = kClientAddr;

  // Manually run the exchange with a delay between challenge and solution.
  Connector c2({kClientAddr, 50'002, kServerAddr, kServerPort}, 7);
  auto out = c2.start(SimTime::seconds(1));
  const auto synacks =
      p.listener->on_segment(SimTime::seconds(1), out.segments[0]);
  ASSERT_EQ(synacks.size(), 1u);
  out = c2.on_segment(SimTime::seconds(1), synacks[0]);
  ASSERT_TRUE(out.solve.has_value());
  Rng rng(2);
  std::uint64_t ops = 0;
  const auto sol = p.engine->solve(*out.solve, c2.flow_binding(), rng, ops);
  out = c2.on_solved(SimTime::seconds(1), sol);
  // Deliver the solution 5 s later: past the 1 s expiry.
  (void)p.listener->on_segment(SimTime::seconds(6), out.segments[0]);
  EXPECT_EQ(p.listener->counters().solutions_expired, 1u);
  EXPECT_EQ(p.listener->established_count(), 0u);
}

// ---------------------------------------------------------------------------
// Cookie fallback (§5: "we do however support SYN cookies as a backup").
// ---------------------------------------------------------------------------

TEST(CookieFallback, PuzzlesModeWithoutEngineFallsBackToCookies) {
  ListenerConfig cfg;
  cfg.local_addr = kServerAddr;
  cfg.local_port = kServerPort;
  cfg.mode = DefenseMode::kPuzzles;
  cfg.cookie_fallback = true;
  cfg.listen_backlog = 2;
  const auto secret = crypto::SecretKey::from_seed(22);
  Listener listener(cfg, secret, 1, nullptr);  // no engine installed

  const SimTime t = SimTime::seconds(1);
  // Fill the tiny listen queue.
  for (int i = 0; i < 2; ++i) {
    Segment syn;
    syn.saddr = kClientAddr + 1 + i;
    syn.daddr = kServerAddr;
    syn.sport = 1000;
    syn.dport = kServerPort;
    syn.seq = 5;
    syn.flags = kSyn;
    (void)listener.on_segment(t, syn);
  }
  // Next SYN gets a cookie, not a challenge and not a drop.
  Segment syn;
  syn.saddr = kClientAddr;
  syn.daddr = kServerAddr;
  syn.sport = 51'000;
  syn.dport = kServerPort;
  syn.seq = 1000;
  syn.flags = kSyn;
  syn.options.mss = 1460;
  const auto out = listener.on_segment(t, syn);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].options.challenge.has_value());
  EXPECT_EQ(listener.counters().cookies_sent, 1u);

  // Completing the cookie handshake works.
  Segment ack;
  ack.saddr = syn.saddr;
  ack.daddr = syn.daddr;
  ack.sport = syn.sport;
  ack.dport = syn.dport;
  ack.seq = syn.seq + 1;
  ack.ack = out[0].seq + 1;
  ack.flags = kAck;
  (void)listener.on_segment(t, ack);
  EXPECT_EQ(listener.counters().established_cookie, 1u);
}

// ---------------------------------------------------------------------------
// Close semantics and duplicate handling.
// ---------------------------------------------------------------------------

TEST(CloseSemantics, ClosedFlowCanReconnect) {
  ListenerConfig cfg;
  auto p = make_pair(cfg);
  const SimTime t = SimTime::seconds(1);

  ConnectorConfig ccfg;
  ccfg.local_port = 52'000;
  bool established = false;
  (void)drive(p, ccfg, t, &established);
  ASSERT_TRUE(established);
  const FlowKey flow{kClientAddr, 52'000, kServerAddr, kServerPort};
  ASSERT_TRUE(p.listener->is_established(flow));

  (void)p.listener->accept(t);
  p.listener->close(flow);
  EXPECT_FALSE(p.listener->is_established(flow));

  // Same 4-tuple connects again (new ISN).
  established = false;
  (void)drive(p, ccfg, t + SimTime::seconds(1), &established);
  EXPECT_TRUE(established);
  EXPECT_EQ(p.listener->counters().established_total, 2u);
}

TEST(CloseSemantics, DataAfterCloseDrawsRst) {
  ListenerConfig cfg;
  auto p = make_pair(cfg);
  const SimTime t = SimTime::seconds(1);
  ConnectorConfig ccfg;
  ccfg.local_port = 52'001;
  (void)drive(p, ccfg, t);
  const FlowKey flow{kClientAddr, 52'001, kServerAddr, kServerPort};
  (void)p.listener->accept(t);
  p.listener->close(flow);

  Segment data;
  data.saddr = kClientAddr;
  data.daddr = kServerAddr;
  data.sport = 52'001;
  data.dport = kServerPort;
  data.flags = kAck | kPsh;
  data.payload_bytes = 64;
  const auto out = p.listener->on_segment(t + SimTime::seconds(1), data);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].is_rst());
}

TEST(CloseSemantics, SynForEstablishedFlowIgnored) {
  ListenerConfig cfg;
  auto p = make_pair(cfg);
  const SimTime t = SimTime::seconds(1);
  ConnectorConfig ccfg;
  ccfg.local_port = 52'002;
  (void)drive(p, ccfg, t);
  ASSERT_EQ(p.listener->established_count(), 1u);

  Segment syn;
  syn.saddr = kClientAddr;
  syn.daddr = kServerAddr;
  syn.sport = 52'002;
  syn.dport = kServerPort;
  syn.seq = 999;
  syn.flags = kSyn;
  EXPECT_TRUE(p.listener->on_segment(t, syn).empty());
  EXPECT_EQ(p.listener->established_count(), 1u);
}

TEST(CloseSemantics, RstTearsDownEstablished) {
  ListenerConfig cfg;
  auto p = make_pair(cfg);
  const SimTime t = SimTime::seconds(1);
  ConnectorConfig ccfg;
  ccfg.local_port = 52'003;
  (void)drive(p, ccfg, t);
  ASSERT_EQ(p.listener->established_count(), 1u);

  Segment rst;
  rst.saddr = kClientAddr;
  rst.daddr = kServerAddr;
  rst.sport = 52'003;
  rst.dport = kServerPort;
  rst.flags = kRst;
  (void)p.listener->on_segment(t, rst);
  EXPECT_EQ(p.listener->established_count(), 0u);
}

TEST(CloseSemantics, AcceptOnEmptyQueueReturnsNothing) {
  ListenerConfig cfg;
  auto p = make_pair(cfg);
  EXPECT_FALSE(p.listener->accept(SimTime::seconds(1)).has_value());
}

// ---------------------------------------------------------------------------
// Connector duplicate SYN-ACK handling (the parked-entry recovery path).
// ---------------------------------------------------------------------------

TEST(ConnectorDuplicates, ReAcksDuplicateSynAck) {
  ConnectorConfig ccfg;
  ccfg.local_addr = kClientAddr;
  ccfg.local_port = 53'000;
  ccfg.remote_addr = kServerAddr;
  ccfg.remote_port = kServerPort;
  Connector conn(ccfg, 1);
  (void)conn.start(SimTime::seconds(1));

  Segment synack;
  synack.saddr = kServerAddr;
  synack.daddr = kClientAddr;
  synack.sport = kServerPort;
  synack.dport = 53'000;
  synack.seq = 777;
  synack.ack = conn.iss() + 1;
  synack.flags = kSyn | kAck;
  synack.options.mss = 1460;

  auto out = conn.on_segment(SimTime::seconds(1), synack);
  EXPECT_TRUE(out.established);
  ASSERT_EQ(out.segments.size(), 1u);
  const Segment first_ack = out.segments[0];

  // Server retransmits the SYN-ACK (our ACK was dropped at a full accept
  // queue): the connector must re-ACK with identical numbers, not re-solve
  // and not re-signal establishment.
  out = conn.on_segment(SimTime::seconds(2), synack);
  EXPECT_FALSE(out.established);
  ASSERT_EQ(out.segments.size(), 1u);
  EXPECT_EQ(out.segments[0].seq, first_ack.seq);
  EXPECT_EQ(out.segments[0].ack, first_ack.ack);
}

}  // namespace
}  // namespace tcpz::tcp
