#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"
#include "util/timeseries.hpp"

namespace tcpz {
namespace {

// ---------------------------------------------------------------------------
// SimTime
// ---------------------------------------------------------------------------

TEST(SimTime, UnitConstructorsAgree) {
  EXPECT_EQ(SimTime::seconds(1).nanos(), 1'000'000'000);
  EXPECT_EQ(SimTime::milliseconds(1500).nanos(), 1'500'000'000);
  EXPECT_EQ(SimTime::microseconds(2).nanos(), 2'000);
  EXPECT_EQ(SimTime::nanoseconds(7).nanos(), 7);
}

TEST(SimTime, FromSecondsRoundsToNearest) {
  EXPECT_EQ(SimTime::from_seconds(1.5).nanos(), 1'500'000'000);
  EXPECT_EQ(SimTime::from_seconds(1e-9).nanos(), 1);
  EXPECT_EQ(SimTime::from_seconds(0.4e-9).nanos(), 0);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::seconds(2);
  const SimTime b = SimTime::milliseconds(500);
  EXPECT_EQ((a + b).to_seconds(), 2.5);
  EXPECT_EQ((a - b).to_seconds(), 1.5);
  EXPECT_EQ((b * 4).to_seconds(), 2.0);
  EXPECT_LT(b, a);
  EXPECT_EQ(a, SimTime::seconds(2));
}

TEST(SimTime, ToStringPicksUnit) {
  EXPECT_EQ(SimTime::seconds(2).to_string(), "2.000s");
  EXPECT_EQ(SimTime::milliseconds(3).to_string(), "3.000ms");
  EXPECT_EQ(SimTime::microseconds(5).to_string(), "5.000us");
  EXPECT_EQ(SimTime::nanoseconds(9).to_string(), "9ns");
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LE(equal, 1);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformU64Unbiased) {
  Rng rng(9);
  std::array<int, 5> counts{};
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) counts[rng.uniform_u64(5)]++;
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 5, kDraws / 5 * 0.1);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(rng.exponential(20.0));
  EXPECT_NEAR(stats.mean(), 1.0 / 20.0, 0.002);
}

TEST(Rng, GeometricMeanIsInverseP) {
  // The solve-cost distribution: mean must be 1/p = 2^m.
  Rng rng(13);
  const double p = 1.0 / 256.0;
  RunningStats stats;
  for (int i = 0; i < 200'000; ++i) {
    stats.add(static_cast<double>(rng.geometric(p)));
  }
  EXPECT_NEAR(stats.mean(), 256.0, 256.0 * 0.02);
}

TEST(Rng, GeometricSupportStartsAtOne) {
  Rng rng(15);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.geometric(0.99), 1u);
  EXPECT_EQ(rng.geometric(1.0), 1u);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent.next() == child.next());
  EXPECT_LE(equal, 1);
}

// ---------------------------------------------------------------------------
// RunningStats / SampleSet / Boxplot / Histogram
// ---------------------------------------------------------------------------

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(1);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.count(), all.count());
}

TEST(SampleSet, QuantilesAndCdf) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.median(), 50.5);
  EXPECT_NEAR(s.quantile(0.25), 25.75, 1e-9);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  const auto cdf = s.cdf_at({0.0, 50.0, 100.0, 200.0});
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(cdf[1], 0.5);
  EXPECT_DOUBLE_EQ(cdf[2], 1.0);
  EXPECT_DOUBLE_EQ(cdf[3], 1.0);
}

TEST(SampleSet, InterleavedAddAndQuery) {
  SampleSet s;
  s.add(3);
  EXPECT_EQ(s.median(), 3.0);
  s.add(1);
  s.add(2);
  EXPECT_EQ(s.median(), 2.0);  // sort cache invalidated correctly
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 3.0);
}

TEST(BoxplotStats, FiveNumberSummary) {
  SampleSet s;
  for (int i = 1; i <= 9; ++i) s.add(i);
  const auto b = BoxplotStats::from(s);
  EXPECT_EQ(b.min, 1.0);
  EXPECT_EQ(b.median, 5.0);
  EXPECT_EQ(b.max, 9.0);
  EXPECT_EQ(b.q1, 3.0);
  EXPECT_EQ(b.q3, 7.0);
  EXPECT_EQ(b.count, 9u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(15.0);
  h.add(5.5);
  EXPECT_EQ(h.count(0), 1.0);
  EXPECT_EQ(h.count(9), 1.0);
  EXPECT_EQ(h.count(5), 1.0);
  EXPECT_EQ(h.total(), 3.0);
}

TEST(Histogram, RejectsDegenerateConfig) {
  EXPECT_THROW(Histogram(0.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// TimeSeries / GaugeSeries
// ---------------------------------------------------------------------------

TEST(TimeSeries, BinsByTime) {
  TimeSeries ts(SimTime::seconds(1));
  ts.add(SimTime::milliseconds(100), 10.0);
  ts.add(SimTime::milliseconds(900), 5.0);
  ts.add(SimTime::milliseconds(1000), 1.0);
  EXPECT_EQ(ts.total(0), 15.0);
  EXPECT_EQ(ts.total(1), 1.0);
  EXPECT_EQ(ts.rate_at(0), 15.0);
}

TEST(TimeSeries, SubSecondBinsScaleRates) {
  TimeSeries ts(SimTime::milliseconds(250));
  ts.add(SimTime::milliseconds(100), 2.0);
  EXPECT_DOUBLE_EQ(ts.rate_at(0), 8.0);  // 2 per quarter second = 8/s
}

TEST(TimeSeries, MeanRateCountsMissingBinsAsZero) {
  TimeSeries ts(SimTime::seconds(1));
  ts.add(SimTime::seconds(0), 10.0);
  EXPECT_DOUBLE_EQ(ts.mean_rate(0, 10), 1.0);
}

TEST(TimeSeries, NegativeTimeIgnored) {
  TimeSeries ts(SimTime::seconds(1));
  ts.add(SimTime::nanoseconds(-5), 1.0);
  EXPECT_EQ(ts.bins(), 0u);
}

TEST(GaugeSeries, WindowQueries) {
  GaugeSeries g;
  g.record(SimTime::seconds(1), 10.0);
  g.record(SimTime::seconds(2), 20.0);
  g.record(SimTime::seconds(3), 30.0);
  EXPECT_EQ(g.max_in(SimTime::seconds(1), SimTime::seconds(2)), 20.0);
  EXPECT_EQ(g.mean_in(SimTime::seconds(1), SimTime::seconds(3)), 20.0);
  EXPECT_EQ(g.mean_in(SimTime::seconds(10), SimTime::seconds(20)), 0.0);
}

// ---------------------------------------------------------------------------
// bytes
// ---------------------------------------------------------------------------

TEST(Bytes, BigEndianRoundTrip) {
  Bytes b;
  put_u16be(b, 0x1234);
  put_u32be(b, 0xdeadbeef);
  put_u64be(b, 0x0123456789abcdefull);
  std::uint16_t v16;
  std::uint32_t v32;
  std::uint64_t v64;
  ASSERT_TRUE(get_u16be(b, 0, v16));
  ASSERT_TRUE(get_u32be(b, 2, v32));
  ASSERT_TRUE(get_u64be(b, 6, v64));
  EXPECT_EQ(v16, 0x1234);
  EXPECT_EQ(v32, 0xdeadbeefu);
  EXPECT_EQ(v64, 0x0123456789abcdefull);
}

TEST(Bytes, TruncatedReadsFail) {
  Bytes b = {0x01, 0x02};
  std::uint32_t v32 = 99;
  EXPECT_FALSE(get_u32be(b, 0, v32));
  EXPECT_EQ(v32, 99u);  // untouched on failure
  std::uint16_t v16;
  EXPECT_FALSE(get_u16be(b, 1, v16));
}

TEST(Bytes, HexRoundTrip) {
  const Bytes b = {0x00, 0x7f, 0xff, 0xa5};
  EXPECT_EQ(to_hex(b), "007fffa5");
  EXPECT_EQ(from_hex("007fffa5"), b);
  EXPECT_EQ(from_hex("007FFFA5"), b);
}

TEST(Bytes, FromHexRejectsGarbage) {
  EXPECT_TRUE(from_hex("abc").empty());   // odd length
  EXPECT_TRUE(from_hex("zz").empty());    // non-hex
}

TEST(Bytes, ConstantTimeEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
}

TEST(Rng, DeriveSeedIsAPureFunctionOfRootAndStreamId) {
  // Same (root, id) -> same seed, regardless of any other derivation that
  // happened before: this is what lets the scenario engine add or remove
  // agents without perturbing anyone else's stream.
  const std::uint64_t a = Rng::derive_seed(42, 7);
  (void)Rng::derive_seed(42, 1);
  (void)Rng::derive_seed(99, 7);
  EXPECT_EQ(Rng::derive_seed(42, 7), a);
}

TEST(Rng, DerivedStreamsAreDecorrelated) {
  // Adjacent stream ids (and adjacent roots) must give streams that do not
  // collide on their prefixes.
  Rng a = Rng::derive(42, 1);
  Rng b = Rng::derive(42, 2);
  Rng c = Rng::derive(43, 1);
  int equal_ab = 0, equal_ac = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t x = a.next();
    if (x == b.next()) ++equal_ab;
    if (x == c.next()) ++equal_ac;
  }
  EXPECT_EQ(equal_ab, 0);
  EXPECT_EQ(equal_ac, 0);
  // And a derived stream reproduces itself.
  Rng d1 = Rng::derive(42, 1);
  Rng d2 = Rng::derive(42, 1);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(d1.next(), d2.next());
}

}  // namespace
}  // namespace tcpz
