// Event-core coverage: exact (timestamp, sequence) ordering against a
// reference model across every staging tier (near heap, all wheel levels,
// far-future overflow heap), timer cancellation semantics, and hot-path
// closure sizing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "net/event_core.hpp"
#include "net/simulator.hpp"
#include "tcp/segment.hpp"
#include "util/rng.hpp"

namespace tcpz::net {
namespace {

using Fired = std::vector<std::pair<std::int64_t, int>>;

// ---------------------------------------------------------------------------
// Determinism: the wheel+heap core must fire in the exact order of the seed
// priority queue — ascending timestamp, scheduling order breaking ties.
// ---------------------------------------------------------------------------

TEST(EventCoreOrder, RandomWorkloadMatchesReferenceOrder) {
  // Deltas span every tier: sub-tick (near heap), all four wheel levels
  // (2^16..2^48 ns), and beyond the wheel horizon (far heap).
  constexpr std::int64_t kSpans[] = {
      1'000,           50'000,         3'000'000,       800'000'000,
      120'000'000'000, 2'000'000'000'000, 400'000'000'000'000};
  Rng rng(2024);
  Simulator sim;
  Fired fired;
  std::vector<std::pair<std::int64_t, int>> expected;
  constexpr int kEvents = 5'000;
  for (int i = 0; i < kEvents; ++i) {
    const std::int64_t span =
        kSpans[rng.uniform_u64(sizeof(kSpans) / sizeof(kSpans[0]))];
    const auto at =
        SimTime::nanoseconds(static_cast<std::int64_t>(rng.uniform_u64(
            static_cast<std::uint64_t>(span))));
    expected.emplace_back(at.nanos(), i);
    sim.schedule_at(at, [&fired, at, i] { fired.emplace_back(at.nanos(), i); });
  }
  // Stable sort = ascending time, scheduling order within equal timestamps.
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  sim.run();
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(sim.events_processed(), static_cast<std::uint64_t>(kEvents));
}

TEST(EventCoreOrder, EqualTimestampsFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  // Same nanosecond, scheduled from different staging distances: the first
  // two land in the wheel and cascade, the third is scheduled once the
  // cursor has already swept the tick (straight into the near heap).
  const SimTime t = SimTime::milliseconds(500);
  sim.schedule_at(t, [&] { order.push_back(0); });
  sim.schedule_at(t, [&] {
    order.push_back(1);
    sim.schedule_at(t, [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventCoreOrder, CascadeChainsThroughEveryLevel) {
  // One event per wheel level plus near and far tiers, scheduled in reverse
  // time order so every one must cascade past the others.
  Simulator sim;
  std::vector<int> order;
  const std::int64_t at_ns[] = {
      500'000'000'000'000,  // far heap (~5.8 days)
      900'000'000'000,      // level 3
      5'000'000'000,        // level 2
      40'000'000,           // level 1
      200'000,              // level 0
      10,                   // sub-tick
  };
  for (int i = 0; i < 6; ++i) {
    sim.schedule_at(SimTime::nanoseconds(at_ns[i]),
                    [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{5, 4, 3, 2, 1, 0}));
  EXPECT_EQ(sim.now(), SimTime::nanoseconds(at_ns[0]));
}

TEST(EventCoreOrder, FarHeapOverflowInterleavesExactlyWithWheel) {
  // Wheel horizon is 2^48 ns. Schedule pairs straddling it with equal
  // timestamps to prove the overflow tier costs no ordering.
  Simulator sim;
  const SimTime beyond = SimTime::nanoseconds((1ll << 48) + 12'345);
  std::vector<int> order;
  sim.schedule_at(beyond, [&] { order.push_back(0); });       // far heap
  sim.schedule_at(SimTime::nanoseconds(70'000), [&] {         // one tick in
    order.push_back(1);
    // From here `beyond` is within wheel range: the same timestamp via the
    // wheel path must fire after the far-heap twin (later seq).
    sim.schedule_at(beyond, [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 0, 2}));
}

TEST(EventCoreOrder, RunUntilBoundaryIsInclusive) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(SimTime::seconds(2), [&] { ++fired; });
  sim.schedule_at(SimTime::seconds(2) + SimTime::nanoseconds(1), [&] { ++fired; });
  sim.run_until(SimTime::seconds(2));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::seconds(2));
  sim.run_until(SimTime::seconds(3));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), SimTime::seconds(3));
}

// ---------------------------------------------------------------------------
// Reuse after a draining run: the cursor must re-anchor so the simulator
// keeps the wheel's O(1) scheduling/cancel tier instead of silently
// degrading everything to the ordered heaps (the ROADMAP open item).
// ---------------------------------------------------------------------------

TEST(EventCoreReuse, ReanchorAfterDrainedRunRestoresWheelTier) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(SimTime::milliseconds(5), [&] { ++fired; });
  sim.run();  // drains; pre-fix the cursor parked at the far future here
  ASSERT_EQ(fired, 1);

  // An in-horizon timer scheduled on the reused simulator must park in the
  // wheel: cancelling it takes the O(1) unlink path, observable through the
  // wheel-cancellation counter.
  const std::uint64_t wheel_before = sim.events_cancelled_wheel();
  TimerHandle h = sim.schedule_in(SimTime::milliseconds(10), [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_EQ(sim.events_cancelled_wheel(), wheel_before + 1);

  // Firing still works and ordering is still exact after the re-anchor.
  std::vector<int> order;
  sim.schedule_in(SimTime::milliseconds(2), [&] { order.push_back(2); });
  sim.schedule_in(SimTime::milliseconds(1), [&] { order.push_back(1); });
  sim.schedule_in(SimTime::milliseconds(3), [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));

  // A draining run_until() re-anchors too (the cursor walked to the bound).
  sim.run_until(sim.now() + SimTime::seconds(5));
  const std::uint64_t wheel_before2 = sim.events_cancelled_wheel();
  TimerHandle h2 = sim.schedule_in(SimTime::milliseconds(3), [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(h2));
  EXPECT_EQ(sim.events_cancelled_wheel(), wheel_before2 + 1);
}

TEST(EventCoreReuse, ReanchorIsANoopWhileEventsArePending) {
  Simulator sim;
  int fired = 0;
  // run_until() with work left behind must NOT move the cursor backwards or
  // drop anything: the far-future event still fires at its exact time.
  sim.schedule_at(SimTime::seconds(10), [&] { ++fired; });
  sim.run_until(SimTime::seconds(1));
  EXPECT_EQ(fired, 0);
  sim.schedule_in(SimTime::milliseconds(1), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), SimTime::seconds(10));
}

// ---------------------------------------------------------------------------
// Cancellation.
// ---------------------------------------------------------------------------

TEST(EventCoreCancel, CancelledTimerNeverFires) {
  Simulator sim;
  int fired = 0;
  // One handle per staging tier.
  TimerHandle near_h = sim.schedule_at(SimTime::nanoseconds(5), [&] { ++fired; });
  TimerHandle wheel_h = sim.schedule_at(SimTime::milliseconds(80), [&] { ++fired; });
  TimerHandle far_h = sim.schedule_at(
      SimTime::nanoseconds((1ll << 48) + 99), [&] { ++fired; });
  EXPECT_EQ(sim.pending(), 3u);
  EXPECT_TRUE(sim.cancel(near_h));
  EXPECT_TRUE(sim.cancel(wheel_h));
  EXPECT_TRUE(sim.cancel(far_h));
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.events_cancelled(), 3u);
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(EventCoreCancel, DoubleCancelAndSpentHandlesAreNoops) {
  Simulator sim;
  int fired = 0;
  TimerHandle h = sim.schedule_in(SimTime::milliseconds(1), [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));  // already cancelled
  TimerHandle spent = sim.schedule_in(SimTime::milliseconds(1), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.cancel(spent));  // already fired
  EXPECT_FALSE(sim.cancel(TimerHandle{}));  // default handle
}

TEST(EventCoreCancel, StaleHandleToRecycledRecordIsSafe) {
  Simulator sim;
  int fired = 0;
  TimerHandle h = sim.schedule_at(SimTime::nanoseconds(1), [&] { ++fired; });
  sim.run();  // fires; the record returns to the pool
  // Recycle the record into many fresh events; the stale handle must not
  // cancel any of them (generation mismatch).
  for (int i = 0; i < 64; ++i) {
    sim.schedule_in(SimTime::nanoseconds(1), [&] { ++fired; });
  }
  EXPECT_FALSE(sim.cancel(h));
  sim.run();
  EXPECT_EQ(fired, 65);
}

TEST(EventCoreCancel, CancelFromWithinARunningEvent) {
  Simulator sim;
  int fired = 0;
  TimerHandle victim =
      sim.schedule_at(SimTime::milliseconds(2), [&] { ++fired; });
  sim.schedule_at(SimTime::milliseconds(1), [&] {
    EXPECT_TRUE(sim.cancel(victim));
  });
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.events_processed(), 1u);
}

TEST(EventCoreCancel, RandomCancellationStress) {
  Rng rng(7);
  Simulator sim;
  int fired = 0;
  std::vector<TimerHandle> handles;
  constexpr int kEvents = 20'000;
  for (int i = 0; i < kEvents; ++i) {
    const auto at = SimTime::nanoseconds(
        static_cast<std::int64_t>(rng.uniform_u64(3'000'000'000ull)));
    handles.push_back(sim.schedule_at(at, [&] { ++fired; }));
  }
  int cancelled = 0;
  for (std::size_t i = 0; i < handles.size(); i += 2) {
    if (sim.cancel(handles[i])) ++cancelled;
  }
  EXPECT_EQ(cancelled, kEvents / 2);
  sim.run();
  EXPECT_EQ(fired, kEvents - cancelled);
  EXPECT_EQ(sim.pending(), 0u);
}

// ---------------------------------------------------------------------------
// Scheduling during execution and misc invariants.
// ---------------------------------------------------------------------------

TEST(EventCoreExec, EventsScheduledAtNowFireInTheSameRun) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_at(sim.now(), recurse);
  };
  sim.schedule_at(SimTime::seconds(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), SimTime::seconds(1));
}

TEST(EventCoreExec, PoolRecyclingKeepsHighChurnBounded) {
  // Far more events than one pool chunk, scheduled in rolling waves so live
  // count stays small: the pool must recycle rather than grow per event.
  Simulator sim;
  std::uint64_t fired = 0;
  std::function<void()> wave = [&] {
    ++fired;
    if (fired < 200'000) {
      sim.schedule_in(SimTime::microseconds(10), wave);
    }
  };
  for (int i = 0; i < 8; ++i) sim.schedule_in(SimTime::microseconds(i), wave);
  sim.run();
  EXPECT_EQ(fired, 200'007u);  // 8 seeds, the last seven stop past the cap
}

TEST(EventCoreExec, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.schedule_at(SimTime::seconds(1), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(SimTime::zero(), [] {}), std::logic_error);
}

// The hot path must not allocate: the link layer's segment-delivery closure
// (Link* + tcp::Segment) and the agents' solve-completion closures have to
// fit the inline action buffer.
TEST(EventCoreSizing, HotPathClosuresFitInline) {
  EXPECT_LE(sizeof(void*) + sizeof(tcp::Segment), detail::kInlineActionBytes);
  EXPECT_GE(detail::kInlineActionBytes, 160u);
}

}  // namespace
}  // namespace tcpz::net
