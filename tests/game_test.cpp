#include <gtest/gtest.h>

#include <cmath>

#include "game/model.hpp"
#include "game/planner.hpp"

namespace tcpz::game {
namespace {

GameConfig uniform_game(std::size_t n, double w, double mu) {
  GameConfig cfg;
  cfg.valuations.assign(n, w);
  cfg.mu = mu;
  return cfg;
}

// ---------------------------------------------------------------------------
// Followers' equilibrium (Eq. 8/9)
// ---------------------------------------------------------------------------

TEST(Equilibrium, SymmetricUsersGetSymmetricRates) {
  const auto cfg = uniform_game(10, 1000.0, 500.0);
  const Equilibrium eq = solve_equilibrium(cfg, 10.0);
  ASSERT_TRUE(eq.exists);
  for (double x : eq.rates) EXPECT_NEAR(x, eq.rates[0], 1e-9);
  EXPECT_GT(eq.total_rate, 0.0);
  EXPECT_LT(eq.total_rate, cfg.mu);
}

TEST(Equilibrium, FirstOrderConditionHolds) {
  // At an interior equilibrium: w_i/(1+x_i) = price + 1/(mu - xbar)^2.
  const auto cfg = uniform_game(5, 2000.0, 300.0);
  const double price = 25.0;
  const Equilibrium eq = solve_equilibrium(cfg, price);
  ASSERT_TRUE(eq.exists);
  const double slack = cfg.mu - eq.total_rate;
  for (double x : eq.rates) {
    EXPECT_NEAR(2000.0 / (1.0 + x), price + 1.0 / (slack * slack), 1e-4);
  }
}

TEST(Equilibrium, IsANashEquilibrium) {
  // No unilateral deviation improves any user's utility.
  GameConfig cfg;
  cfg.valuations = {500.0, 1500.0, 3000.0};
  cfg.mu = 100.0;
  const double price = 30.0;
  const Equilibrium eq = solve_equilibrium(cfg, price);
  ASSERT_TRUE(eq.exists);
  for (std::size_t i = 0; i < cfg.valuations.size(); ++i) {
    const double x_minus_i = eq.total_rate - eq.rates[i];
    const double u_star = client_utility(cfg.valuations[i], eq.rates[i],
                                         eq.total_rate, price, cfg.mu);
    for (double dev : {-0.5, -0.1, -0.01, 0.01, 0.1, 0.5, 2.0}) {
      const double xi = eq.rates[i] + dev;
      if (xi < 0 || x_minus_i + xi >= cfg.mu) continue;
      const double u_dev = client_utility(cfg.valuations[i], xi,
                                          x_minus_i + xi, price, cfg.mu);
      EXPECT_LE(u_dev, u_star + 1e-6)
          << "user " << i << " improves by deviating " << dev;
    }
  }
}

TEST(Equilibrium, HigherPriceLowersRates) {
  const auto cfg = uniform_game(10, 1000.0, 500.0);
  double prev = 1e18;
  for (double price : {1.0, 5.0, 20.0, 50.0, 90.0}) {
    const Equilibrium eq = solve_equilibrium(cfg, price);
    ASSERT_TRUE(eq.exists) << price;
    EXPECT_LT(eq.total_rate, prev);
    prev = eq.total_rate;
  }
}

TEST(Equilibrium, HigherValuationUsersRequestMore) {
  GameConfig cfg;
  cfg.valuations = {100.0, 1000.0, 5000.0};
  cfg.mu = 200.0;
  const Equilibrium eq = solve_equilibrium(cfg, 10.0);
  ASSERT_TRUE(eq.exists);
  EXPECT_LT(eq.rates[0], eq.rates[1]);
  EXPECT_LT(eq.rates[1], eq.rates[2]);
}

TEST(Equilibrium, LowValuationUsersDropOut) {
  // §7: a user with w below the price behaves as w = 0 and leaves the game.
  GameConfig cfg;
  cfg.valuations = {5.0, 5000.0, 5000.0};
  cfg.mu = 100.0;
  const Equilibrium eq = solve_equilibrium(cfg, 50.0);
  ASSERT_TRUE(eq.exists);
  EXPECT_DOUBLE_EQ(eq.rates[0], 0.0);
  EXPECT_GT(eq.rates[1], 0.0);
}

TEST(Equilibrium, InfeasiblePriceYieldsNoParticipation) {
  const auto cfg = uniform_game(4, 100.0, 50.0);
  const double r_hat = max_feasible_price(cfg);
  const Equilibrium eq = solve_equilibrium(cfg, r_hat * 1.5);
  EXPECT_FALSE(eq.exists);
  EXPECT_DOUBLE_EQ(eq.total_rate, 0.0);
}

TEST(Equilibrium, TotalRateStaysBelowServiceCapacity) {
  // x̄ < µ must hold — the M/M/1 delay diverges otherwise.
  const auto cfg = uniform_game(50, 1e6, 10.0);  // huge valuations, tiny µ
  const Equilibrium eq = solve_equilibrium(cfg, 1.0);
  ASSERT_TRUE(eq.exists);
  EXPECT_LT(eq.total_rate, cfg.mu);
}

TEST(Equilibrium, EmptyGame) {
  GameConfig cfg;
  cfg.mu = 100.0;
  const Equilibrium eq = solve_equilibrium(cfg, 1.0);
  EXPECT_FALSE(eq.exists);
}

TEST(MaxFeasiblePrice, MatchesEq10) {
  const auto cfg = uniform_game(10, 1000.0, 100.0);
  EXPECT_NEAR(max_feasible_price(cfg), 1000.0 - 1.0 / (100.0 * 100.0), 1e-9);
}

// ---------------------------------------------------------------------------
// Leader's problem (Eqs. 12-14) and Theorem 1
// ---------------------------------------------------------------------------

TEST(OptimalPrice, InteriorAndFeasible) {
  const auto cfg = uniform_game(20, 5000.0, 1000.0);
  const PriceSolution sol = optimal_price(cfg);
  EXPECT_GT(sol.price, 0.0);
  EXPECT_LT(sol.price, max_feasible_price(cfg));
  EXPECT_GT(sol.total_rate, 0.0);
  EXPECT_GT(sol.objective, 0.0);
}

TEST(OptimalPrice, BeatsNearbyPrices) {
  const auto cfg = uniform_game(20, 5000.0, 1000.0);
  const PriceSolution sol = optimal_price(cfg);
  for (double factor : {0.5, 0.8, 1.25, 2.0}) {
    EXPECT_GE(sol.objective + 1e-6,
              provider_objective_approx(cfg, sol.price * factor))
        << factor;
  }
}

TEST(OptimalPrice, ApproachesTheorem1AsNGrows) {
  // Theorem 1: as N -> inf with mu = alpha*N, the optimal price tends to
  // w_av / (alpha + 1).
  const double w_av = 140'630.0;
  const double alpha = 1.1;
  const double limit = asymptotic_nash_price(w_av, alpha);
  double prev_err = 1e18;
  for (std::size_t n : {50u, 200u, 1000u}) {
    const auto cfg = uniform_game(n, w_av, alpha * static_cast<double>(n));
    const PriceSolution sol = optimal_price(cfg);
    const double err = std::abs(sol.price - limit) / limit;
    EXPECT_LT(err, prev_err * 1.05) << n;  // converging (allow tiny noise)
    prev_err = err;
  }
  EXPECT_LT(prev_err, 0.05);  // within 5% at N=1000
}

TEST(AsymptoticNash, PaperExampleValue) {
  // w_av = 140630, alpha = 1.1 => l* = 140630 / 2.1 ~ 66966.7 (Eq. 18).
  EXPECT_NEAR(asymptotic_nash_price(140'630.0, 1.1), 66'966.67, 0.5);
}

TEST(AsymptoticNash, BetterProvisioningMeansEasierPuzzles) {
  // §4.2: alpha > 1 => clients commit fewer hashes than w_av.
  const double w_av = 100'000.0;
  EXPECT_LT(asymptotic_nash_price(w_av, 2.0), asymptotic_nash_price(w_av, 0.5));
  EXPECT_LT(asymptotic_nash_price(w_av, 1.5), w_av);
}

TEST(ProviderObjective, NetsOutGenerationAndVerification) {
  const auto cfg = uniform_game(10, 10'000.0, 500.0);
  // Exact objective is approx objective minus (2 + k/2) * x̄.
  const unsigned k = 2, m = 10;
  const double price = k * std::exp2(m - 1);
  const Equilibrium eq = solve_equilibrium(cfg, price);
  ASSERT_TRUE(eq.exists);
  EXPECT_NEAR(provider_objective(cfg, k, m),
              provider_objective_approx(cfg, price) - (2.0 + k / 2.0) * eq.total_rate,
              1e-6);
}

// ---------------------------------------------------------------------------
// Planner (§4.3 / §4.4)
// ---------------------------------------------------------------------------

TEST(Planner, WavFromHashRate) {
  EXPECT_DOUBLE_EQ(estimate_wav(351'575.0, 400.0), 140'630.0);
  EXPECT_DOUBLE_EQ(estimate_wav(0.0), 0.0);
  EXPECT_THROW((void)estimate_wav(-1.0), std::invalid_argument);
}

TEST(Planner, FleetAverage) {
  EXPECT_NEAR(estimate_wav_fleet({380'000.0, 330'000.0, 344'725.0}),
              140'630.0, 1.0);
}

TEST(Planner, AlphaFromStressTailConverges) {
  std::vector<StressPoint> pts;
  for (double c : {10.0, 100.0, 500.0, 900.0, 1000.0}) {
    pts.push_back({c, 1.1 * c});  // perfectly linear: alpha = 1.1
  }
  EXPECT_NEAR(estimate_alpha(pts), 1.1, 1e-9);
}

TEST(Planner, AlphaUsesHighLoadTail) {
  // Low-load points (underutilised server) must not pollute the estimate.
  std::vector<StressPoint> pts = {
      {1.0, 900.0},    // mu/c = 900 at trivial load
      {800.0, 1100.0}, {900.0, 1100.0}, {1000.0, 1100.0},
  };
  EXPECT_NEAR(estimate_alpha(pts, 3), 1100.0 * (1 / 800.0 + 1 / 900.0 + 1 / 1000.0) / 3,
              1e-9);
}

TEST(Planner, ChoosesPaperDifficultyForPaperProfile) {
  // §4.4: w_av = 140630, alpha = 1.1 -> (k=2, m=17) with the paper-example
  // target form.
  const double target = nash_hash_target(140'630.0, 1.1, NashForm::kPaperExample);
  const puzzle::Difficulty d = choose_difficulty(target);
  EXPECT_EQ(d.k, 2);
  EXPECT_EQ(d.m, 17);
}

TEST(Planner, AppendixFormGivesEasierPuzzle) {
  const double target = nash_hash_target(140'630.0, 1.1, NashForm::kAppendix);
  const puzzle::Difficulty d = choose_difficulty(target);
  // l* ~ 66967 -> (2, 16): half the work of the paper-example form.
  EXPECT_EQ(d.k, 2);
  EXPECT_EQ(d.m, 16);
}

TEST(Planner, DifficultyHitsGuessingBound) {
  for (double target : {1000.0, 50'000.0, 1e6}) {
    const puzzle::Difficulty d = choose_difficulty(target);
    EXPECT_GE(d.guess_bits(), 30u) << target;
    // And the price is within a factor 2 of the target (power-of-two grid).
    const double ratio = d.expected_solve_hashes() / target;
    EXPECT_GT(ratio, 0.4) << target;
    EXPECT_LT(ratio, 2.1) << target;
  }
}

TEST(Planner, TinyTargetsFallBack) {
  // No (k <= k_max, m) reaches 30 guess bits near target 4; planner returns
  // the closest fit rather than a grossly over-hard puzzle.
  const puzzle::Difficulty d = choose_difficulty(4.0);
  EXPECT_LE(d.expected_solve_hashes(), 16.0);
}

TEST(Planner, EndToEndPlan) {
  PlanInput input;
  input.client_hash_rates = {380'000.0, 330'000.0, 344'725.0};
  for (double c : {100.0, 500.0, 1000.0}) {
    input.stress_test.push_back({c, 1.1 * c});
  }
  input.form = NashForm::kPaperExample;
  const Plan plan = plan_difficulty(input);
  EXPECT_NEAR(plan.w_av, 140'630.0, 1.0);
  EXPECT_NEAR(plan.alpha, 1.1, 1e-6);
  EXPECT_EQ(plan.difficulty.k, 2);
  EXPECT_EQ(plan.difficulty.m, 17);
}

}  // namespace
}  // namespace tcpz::game
