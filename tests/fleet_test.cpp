// Fleet subsystem tests: load-balancer dispatch policies and failover,
// cross-replica stateless verification, secret rotation with the overlap
// window, the cluster replay cache, and end-to-end fleet scenarios
// (balanced service, partial adoption leakage, rotation under load).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "crypto/secret.hpp"
#include "fleet/load_balancer.hpp"
#include "fleet/replay_cache.hpp"
#include "fleet/scenario.hpp"
#include "fleet/secret_directory.hpp"
#include "net/topology.hpp"
#include "puzzle/engine.hpp"
#include "tcp/connector.hpp"
#include "tcp/listener.hpp"

namespace tcpz::fleet {
namespace {

constexpr std::uint32_t kVip = tcp::ipv4(10, 1, 0, 1);
constexpr std::uint16_t kPort = 80;
constexpr std::uint32_t kClientAddr = tcp::ipv4(10, 2, 0, 1);

// ---------------------------------------------------------------------------
// LoadBalancer dispatch (driven through a real mini-topology)
// ---------------------------------------------------------------------------

struct MiniFleet {
  net::Simulator sim;
  net::Topology topo{sim};
  LoadBalancer* lb = nullptr;
  std::vector<net::Host*> replicas;
  net::Host* client = nullptr;
  std::vector<int> delivered;  ///< segments seen per replica

  explicit MiniFleet(BalancePolicy policy, int n_replicas = 3) {
    LoadBalancerConfig cfg;
    cfg.vip = kVip;
    cfg.policy = policy;
    lb = static_cast<LoadBalancer*>(
        topo.add_node(std::make_unique<LoadBalancer>(sim, "lb", cfg)));
    topo.advertise(lb, kVip);
    delivered.assign(static_cast<std::size_t>(n_replicas), 0);
    for (int i = 0; i < n_replicas; ++i) {
      net::Host* h = topo.add_host("replica" + std::to_string(i), kVip,
                                   /*advertise=*/false);
      auto [fwd, rev] = topo.connect(lb, h, {});
      (void)rev;
      lb->add_backend(fwd);
      h->set_handler([this, i](SimTime, const tcp::Segment&) {
        ++delivered[static_cast<std::size_t>(i)];
      });
      replicas.push_back(h);
    }
    client = topo.add_host("client", kClientAddr);
    topo.connect(client, lb, {});
    topo.compute_routes();
  }

  void send_syn(std::uint16_t sport) {
    tcp::Segment s;
    s.saddr = kClientAddr;
    s.daddr = kVip;
    s.sport = sport;
    s.dport = kPort;
    s.seq = 1;
    s.flags = tcp::kSyn;
    client->send(s);
    sim.run();
  }
};

TEST(LoadBalancer, RoundRobinCyclesNewFlows) {
  MiniFleet f(BalancePolicy::kRoundRobin);
  for (std::uint16_t p = 1000; p < 1006; ++p) f.send_syn(p);
  EXPECT_EQ(f.delivered[0], 2);
  EXPECT_EQ(f.delivered[1], 2);
  EXPECT_EQ(f.delivered[2], 2);
}

TEST(LoadBalancer, RoundRobinKeepsFlowAffinity) {
  MiniFleet f(BalancePolicy::kRoundRobin);
  for (int rep = 0; rep < 4; ++rep) f.send_syn(1000);  // same flow 4x
  EXPECT_EQ(f.delivered[0], 4);
  EXPECT_EQ(f.delivered[1], 0);
}

TEST(LoadBalancer, HashIsDeterministicPerFlow) {
  MiniFleet f(BalancePolicy::kFiveTupleHash);
  for (int rep = 0; rep < 5; ++rep) f.send_syn(4242);
  int nonzero = 0;
  for (const int d : f.delivered) {
    if (d > 0) {
      ++nonzero;
      EXPECT_EQ(d, 5);  // all five copies on one replica
    }
  }
  EXPECT_EQ(nonzero, 1);
}

TEST(LoadBalancer, HashSpreadsDistinctFlows) {
  MiniFleet f(BalancePolicy::kFiveTupleHash);
  for (std::uint16_t p = 1000; p < 1064; ++p) f.send_syn(p);
  int nonzero = 0;
  for (const int d : f.delivered) nonzero += d > 0 ? 1 : 0;
  EXPECT_GE(nonzero, 2);  // 64 flows across 3 replicas: all busy w.h.p.
}

TEST(LoadBalancer, LeastConnectionsBalancesWithinOne) {
  MiniFleet f(BalancePolicy::kLeastConnections);
  for (std::uint16_t p = 1000; p < 1007; ++p) f.send_syn(p);
  int lo = f.delivered[0], hi = f.delivered[0];
  for (const int d : f.delivered) {
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_LE(hi - lo, 1);
}

TEST(LoadBalancer, FailoverEvictsAndReassigns) {
  MiniFleet f(BalancePolicy::kRoundRobin, 2);
  f.send_syn(1000);  // round-robin: lands on replica 0
  ASSERT_EQ(f.delivered[0], 1);
  f.lb->set_backend_up(0, false);
  EXPECT_EQ(f.lb->failover_evictions(), 1u);  // tracked flow evicted
  f.send_syn(1000);                      // retransmission re-dispatches
  EXPECT_EQ(f.delivered[0], 1);
  EXPECT_EQ(f.delivered[1], 1);
  f.lb->set_backend_up(0, true);
  f.send_syn(2000);  // new flow can use replica 0 again
  EXPECT_EQ(f.delivered[0] + f.delivered[1], 3);
}

TEST(LoadBalancer, AllBackendsDownDrops) {
  MiniFleet f(BalancePolicy::kFiveTupleHash, 2);
  f.lb->set_backend_up(0, false);
  f.lb->set_backend_up(1, false);
  f.send_syn(1000);
  EXPECT_EQ(f.lb->no_backend_drops(), 1u);
  EXPECT_EQ(f.delivered[0] + f.delivered[1], 0);
}

// ---------------------------------------------------------------------------
// Cross-replica stateless verification (the property that makes the fleet
// work at all): a solution minted for replica A's challenge verifies on B.
// ---------------------------------------------------------------------------

struct ReplicaPair {
  crypto::SecretKey secret = crypto::SecretKey::from_seed(7);
  std::shared_ptr<puzzle::OraclePuzzleEngine> engine =
      std::make_shared<puzzle::OraclePuzzleEngine>(
          secret, puzzle::EngineConfig{4, 4000, 100});
  std::unique_ptr<tcp::Listener> a, b;

  ReplicaPair() {
    tcp::ListenerConfig cfg;
    cfg.local_addr = kVip;
    cfg.local_port = kPort;
    cfg.mode = tcp::DefenseMode::kPuzzles;
    cfg.always_challenge = true;
    a = std::make_unique<tcp::Listener>(cfg, secret, 1, engine);
    b = std::make_unique<tcp::Listener>(cfg, secret, 2, engine);
  }

  /// SYN -> A's challenge -> solve -> the solution ACK (not yet delivered).
  tcp::Segment minted_solution_ack(std::uint16_t sport, SimTime now,
                                   tcp::Connector& conn) {
    auto out = conn.start(now);
    auto synacks = a->on_segment(now, out.segments.at(0));
    out = conn.on_segment(now, synacks.at(0));
    EXPECT_TRUE(out.solve.has_value()) << "no challenge for sport " << sport;
    std::uint64_t ops = 0;
    Rng rng(sport);
    const auto sol = engine->solve(*out.solve, conn.flow_binding(), rng, ops);
    out = conn.on_solved(now, sol);
    return out.segments.at(0);
  }

  static tcp::Connector make_connector(std::uint16_t sport) {
    tcp::ConnectorConfig ccfg;
    ccfg.local_addr = kClientAddr;
    ccfg.local_port = sport;
    ccfg.remote_addr = kVip;
    ccfg.remote_port = kPort;
    return tcp::Connector(ccfg, sport);
  }
};

TEST(CrossReplica, SolutionMintedOnAVerifiesOnB) {
  ReplicaPair fleet;
  const SimTime now = SimTime::seconds(1);
  auto conn = ReplicaPair::make_connector(2000);
  const tcp::Segment ack = fleet.minted_solution_ack(2000, now, conn);

  // Failover: the ACK lands on replica B, which never saw the challenge.
  (void)fleet.b->on_segment(now, ack);
  EXPECT_EQ(fleet.b->counters().solutions_valid, 1u);
  EXPECT_EQ(fleet.b->counters().established_puzzle, 1u);
  EXPECT_EQ(fleet.a->counters().established_puzzle, 0u);
}

TEST(CrossReplica, ReplayAcrossReplicasRejectedWithSharedCache) {
  ReplicaPair fleet;
  ReplayCache cache(5000);
  const auto filter = [&cache](const tcp::FlowKey& flow, std::uint32_t ts,
                               std::uint32_t now_ms) {
    return cache.check_and_insert(flow, ts, now_ms);
  };
  fleet.a->set_replay_filter(filter);
  fleet.b->set_replay_filter(filter);

  const SimTime now = SimTime::seconds(1);
  auto conn = ReplicaPair::make_connector(2001);
  const tcp::Segment ack = fleet.minted_solution_ack(2001, now, conn);

  (void)fleet.a->on_segment(now, ack);  // legitimate admission on A
  EXPECT_EQ(fleet.a->counters().established_puzzle, 1u);

  (void)fleet.b->on_segment(now, ack);  // replayed verbatim at B
  EXPECT_EQ(fleet.b->counters().established_puzzle, 0u);
  EXPECT_EQ(fleet.b->counters().solutions_duplicate, 1u);
  EXPECT_EQ(fleet.b->counters().solutions_replay_filtered, 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(CrossReplica, WithoutSharedCacheReplayLandsOnB) {
  // Documents the gap the cache closes: pure statelessness admits the
  // replayed solution on a second replica.
  ReplicaPair fleet;
  const SimTime now = SimTime::seconds(1);
  auto conn = ReplicaPair::make_connector(2002);
  const tcp::Segment ack = fleet.minted_solution_ack(2002, now, conn);
  (void)fleet.a->on_segment(now, ack);
  (void)fleet.b->on_segment(now, ack);
  EXPECT_EQ(fleet.a->counters().established_puzzle, 1u);
  EXPECT_EQ(fleet.b->counters().established_puzzle, 1u);
}

// ---------------------------------------------------------------------------
// Secret rotation: overlap window, expiry, determinism
// ---------------------------------------------------------------------------

struct RotatingFleet {
  SecretDirectory directory;
  std::unique_ptr<tcp::Listener> a, b;

  RotatingFleet()
      : directory([] {
          SecretDirectoryConfig cfg;
          cfg.seed = 7;
          cfg.engine = puzzle::EngineConfig{4, 60'000, 100};  // long expiry:
          // the tests below isolate *rotation* rejection from *puzzle* expiry.
          return cfg;
        }()) {
    tcp::ListenerConfig cfg;
    cfg.local_addr = kVip;
    cfg.local_port = kPort;
    cfg.mode = tcp::DefenseMode::kPuzzles;
    cfg.always_challenge = true;
    a = std::make_unique<tcp::Listener>(cfg, directory.current_secret(), 1,
                                        directory.current_engine());
    b = std::make_unique<tcp::Listener>(cfg, directory.current_secret(), 2,
                                        directory.current_engine());
    directory.subscribe(a.get());
    directory.subscribe(b.get());
  }

  tcp::Segment minted_solution_ack(std::uint16_t sport, SimTime now,
                                   tcp::Connector& conn) {
    auto out = conn.start(now);
    auto synacks = a->on_segment(now, out.segments.at(0));
    out = conn.on_segment(now, synacks.at(0));
    EXPECT_TRUE(out.solve.has_value());
    std::uint64_t ops = 0;
    Rng rng(sport);
    const auto sol = directory.current_engine()->solve(
        *out.solve, conn.flow_binding(), rng, ops);
    out = conn.on_solved(now, sol);
    return out.segments.at(0);
  }
};

TEST(SecretRotation, OverlapWindowAcceptsPreviousEpochOnEveryReplica) {
  RotatingFleet fleet;
  const SimTime t0 = SimTime::seconds(1);
  auto conn_a = ReplicaPair::make_connector(3000);
  auto conn_b = ReplicaPair::make_connector(3001);
  const tcp::Segment ack_a = fleet.minted_solution_ack(3000, t0, conn_a);
  const tcp::Segment ack_b = fleet.minted_solution_ack(3001, t0, conn_b);

  fleet.directory.rotate();
  EXPECT_EQ(fleet.a->secret_epoch(), 1u);
  EXPECT_EQ(fleet.a->counters().secret_rotations, 1u);

  // Solutions minted under epoch 0 verify on both replicas in the overlap.
  const SimTime t1 = SimTime::seconds(2);
  (void)fleet.a->on_segment(t1, ack_a);
  (void)fleet.b->on_segment(t1, ack_b);
  EXPECT_EQ(fleet.a->counters().established_puzzle, 1u);
  EXPECT_EQ(fleet.a->counters().solutions_valid_prev_epoch, 1u);
  EXPECT_EQ(fleet.b->counters().established_puzzle, 1u);
  EXPECT_EQ(fleet.b->counters().solutions_valid_prev_epoch, 1u);
}

TEST(SecretRotation, PreviousEpochRejectedAfterOverlapExpiry) {
  RotatingFleet fleet;
  const SimTime t0 = SimTime::seconds(1);
  auto conn = ReplicaPair::make_connector(3002);
  const tcp::Segment ack = fleet.minted_solution_ack(3002, t0, conn);

  fleet.directory.rotate();
  fleet.directory.expire_overlap();
  EXPECT_FALSE(fleet.a->has_previous_secret());

  (void)fleet.a->on_segment(SimTime::seconds(2), ack);
  EXPECT_EQ(fleet.a->counters().established_puzzle, 0u);
  // Without the previous secret the ACK no longer matches any stateless ISS.
  EXPECT_EQ(fleet.a->counters().solutions_bad_ackno, 1u);
}

TEST(SecretRotation, CurrentEpochMintsAndVerifiesAfterRotation) {
  RotatingFleet fleet;
  fleet.directory.rotate();
  fleet.directory.expire_overlap();

  const SimTime now = SimTime::seconds(3);
  auto conn = ReplicaPair::make_connector(3003);
  const tcp::Segment ack = fleet.minted_solution_ack(3003, now, conn);
  (void)fleet.b->on_segment(now, ack);  // cross-replica, post-rotation
  EXPECT_EQ(fleet.b->counters().established_puzzle, 1u);
  EXPECT_EQ(fleet.b->counters().solutions_valid_prev_epoch, 0u);
}

TEST(SecretRotation, ReplayStaysRejectedAcrossRotation) {
  RotatingFleet fleet;
  ReplayCache cache(120'000);
  const auto filter = [&cache](const tcp::FlowKey& flow, std::uint32_t ts,
                               std::uint32_t now_ms) {
    return cache.check_and_insert(flow, ts, now_ms);
  };
  fleet.a->set_replay_filter(filter);
  fleet.b->set_replay_filter(filter);

  const SimTime t0 = SimTime::seconds(1);
  auto conn = ReplicaPair::make_connector(3004);
  const tcp::Segment ack = fleet.minted_solution_ack(3004, t0, conn);
  (void)fleet.a->on_segment(t0, ack);
  ASSERT_EQ(fleet.a->counters().established_puzzle, 1u);

  fleet.directory.rotate();  // replay arrives after the fleet rotated
  (void)fleet.b->on_segment(SimTime::seconds(2), ack);
  EXPECT_EQ(fleet.b->counters().established_puzzle, 0u);
  EXPECT_EQ(fleet.b->counters().solutions_replay_filtered, 1u);
}

TEST(SecretDirectory, DeterministicAndDistinctEpochs) {
  SecretDirectoryConfig cfg;
  cfg.seed = 42;
  SecretDirectory d1(cfg), d2(cfg);
  EXPECT_TRUE(d1.current_secret() == d2.current_secret());
  const crypto::SecretKey epoch0 = d1.current_secret();
  d1.rotate();
  d2.rotate();
  EXPECT_TRUE(d1.current_secret() == d2.current_secret());
  EXPECT_FALSE(d1.current_secret() == epoch0);
}

TEST(ReplayCache, ExpiresEntriesWithTheChallengeWindow) {
  ReplayCache cache(4000);
  const tcp::FlowKey flow{kClientAddr, 4000, kVip, kPort};
  EXPECT_FALSE(cache.check_and_insert(flow, 1000, 1000));
  EXPECT_TRUE(cache.check_and_insert(flow, 1000, 2000));  // replay inside ttl
  EXPECT_EQ(cache.size(), 1u);
  // Past the ttl the entry is gone (the challenge can no longer verify, so
  // forgetting it is safe) and memory stays bounded.
  EXPECT_FALSE(cache.check_and_insert(flow, 1000, 6000));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(ReplayCache, HardCapShedsOldestFirst) {
  // TTL far in the future: only the capacity bound can evict.
  ReplayCache cache(/*ttl_ms=*/1'000'000, /*max_entries=*/4);
  tcp::FlowKey flow{kClientAddr, 0, kVip, kPort};
  for (std::uint16_t p = 1; p <= 6; ++p) {
    flow.rport = p;
    EXPECT_FALSE(cache.check_and_insert(flow, p, 1000u + p));
    EXPECT_LE(cache.size(), 4u);
  }
  EXPECT_EQ(cache.evictions(), 2u);
  // The two oldest are gone (re-insert instead of hit)...
  flow.rport = 1;
  EXPECT_FALSE(cache.check_and_insert(flow, 1, 2000));
  // ...while the newest survivors are still replays.
  flow.rport = 6;
  EXPECT_TRUE(cache.check_and_insert(flow, 6, 2000));
}

TEST(ReplayCache, PropertyBoundedAndConsistentUnderSkewedWrappingClocks) {
  // Replicas feed the shared cache with skewed clocks (+-500 ms here), so
  // now_ms is non-monotone, and the run crosses the 32-bit millisecond wrap.
  // Properties: (1) the FIFO and the map never desynchronize, (2) memory
  // stays bounded by admission-rate x (ttl + skew), (3) a solution admitted
  // recently enough that no replica can have expired it is ALWAYS detected
  // as a replay — the security property the fleet pays memory for.
  constexpr std::uint32_t kTtlMs = 3'000;
  constexpr std::uint32_t kSkewMs = 500;
  ReplayCache cache(kTtlMs);
  Rng rng(99);
  // True time starts 60 s before the wrap and advances ~10 ms per step.
  std::uint64_t true_ms = (1ull << 32) - 60'000;
  std::vector<std::pair<tcp::FlowKey, std::uint32_t>> recent;  // ring buffer
  std::size_t max_size = 0;

  for (int step = 0; step < 20'000; ++step) {
    true_ms += rng.uniform_u64(20);
    const auto now = static_cast<std::uint32_t>(
        true_ms + rng.uniform_u64(2 * kSkewMs) - kSkewMs);
    tcp::FlowKey flow{kClientAddr + static_cast<std::uint32_t>(
                                        rng.uniform_u64(1u << 16)),
                      static_cast<std::uint16_t>(1024 + rng.uniform_u64(60'000)),
                      kVip, kPort};
    const auto ts = static_cast<std::uint32_t>(true_ms);
    if (!cache.check_and_insert(flow, ts, now)) {
      recent.emplace_back(flow, ts);
    }
    // Immediate duplicate must always hit.
    ASSERT_TRUE(cache.check_and_insert(flow, ts, now)) << "step " << step;

    if (step % 64 == 0 && recent.size() > 100) {
      // A key admitted ~100 insertions (~1-2 s of true time) ago is younger
      // than ttl - skew from every replica's perspective: must still hit.
      const auto& [f, t] = recent[recent.size() - 100];
      ASSERT_TRUE(cache.check_and_insert(f, t, now)) << "step " << step;
      recent.erase(recent.begin(), recent.end() - 100);
    }
    ASSERT_EQ(cache.order_size(), cache.size()) << "FIFO/map desync, step "
                                                << step;
    max_size = std::max(max_size, cache.size());
  }
  // ~1 admission / 10 ms over a (ttl + 2*skew) = 4 s window ≈ 400 live
  // entries; 3x margin for arrival bursts.
  EXPECT_LE(max_size, 1200u);
  EXPECT_GT(max_size, 100u);  // the flood actually filled the cache
  EXPECT_EQ(cache.evictions(), 0u);  // TTL, not the cap, did the bounding
}

// ---------------------------------------------------------------------------
// Least-connections flow table under a spoofed-SYN flood: handshakes never
// complete, no FIN/RST ever ends a tracked flow — only the idle sweep keeps
// flows_ bounded.
// ---------------------------------------------------------------------------

TEST(LoadBalancer, IdleSweepBoundsFlowTableUnderSpoofedSynFlood) {
  net::Simulator sim;
  net::Topology topo(sim);
  LoadBalancerConfig cfg;
  cfg.vip = kVip;
  cfg.policy = BalancePolicy::kLeastConnections;
  cfg.flow_idle_timeout = SimTime::seconds(2);
  cfg.sweep_interval = SimTime::seconds(1);
  auto* lb = static_cast<LoadBalancer*>(
      topo.add_node(std::make_unique<LoadBalancer>(sim, "lb", cfg)));
  topo.advertise(lb, kVip);
  for (int i = 0; i < 2; ++i) {
    net::Host* h = topo.add_host("replica" + std::to_string(i), kVip,
                                 /*advertise=*/false);
    auto [fwd, rev] = topo.connect(lb, h, {});
    (void)rev;
    lb->add_backend(fwd);
    h->set_handler([](SimTime, const tcp::Segment&) {});  // sink
  }
  net::Host* zombie = topo.add_host("zombie", tcp::ipv4(100, 64, 0, 1));
  topo.connect(zombie, lb, {});
  topo.compute_routes();

  const SimTime duration = SimTime::seconds(60);
  lb->start(duration);

  // 200 spoofed SYNs/s for 50 s, every one from a fresh source: 10'000
  // distinct "flows" that never complete a handshake.
  constexpr int kRate = 200, kFloodSeconds = 50;
  for (int i = 0; i < kRate * kFloodSeconds; ++i) {
    sim.schedule_at(SimTime::milliseconds(1000ll * i / kRate), [zombie, i] {
      tcp::Segment syn;
      syn.saddr = tcp::ipv4(100, 64, 0, 2) + static_cast<std::uint32_t>(i);
      syn.sport = static_cast<std::uint16_t>(1024 + (i % 60'000));
      syn.daddr = kVip;
      syn.dport = kPort;
      syn.seq = static_cast<std::uint32_t>(i);
      syn.flags = tcp::kSyn;
      zombie->send(syn);
    });
  }
  std::size_t max_table = 0;
  std::function<void()> sampler = [&] {
    max_table = std::max(max_table, lb->flow_table_size());
    if (sim.now() < duration) sim.schedule_in(SimTime::milliseconds(100), sampler);
  };
  sim.schedule_at(SimTime::zero(), sampler);
  sim.run_until(duration);

  // Steady-state bound: rate x (idle_timeout + sweep_interval) = 600 flows,
  // nowhere near the 10'000 the flood injected.
  EXPECT_LE(max_table, 650u);
  EXPECT_GE(max_table, 400u);  // the flood genuinely pressured the table
  // Once the flood stops, the sweep drains everything and the per-backend
  // connection counters return to zero (no leaked `active` accounting).
  EXPECT_EQ(lb->flow_table_size(), 0u);
  EXPECT_EQ(lb->tracked_connections(0), 0);
  EXPECT_EQ(lb->tracked_connections(1), 0);
}

// ---------------------------------------------------------------------------
// End-to-end fleet scenarios (small timelines to stay fast)
// ---------------------------------------------------------------------------

FleetScenarioConfig small_fleet(std::uint64_t seed) {
  FleetScenarioConfig f;
  f.base.seed = seed;
  f.base.duration = SimTime::seconds(40);
  f.base.attack_start = SimTime::seconds(10);
  f.base.attack_end = SimTime::seconds(30);
  f.base.n_clients = 6;
  f.base.client_rate = 10.0;
  f.base.response_bytes = 20'000;
  f.base.n_bots = 0;
  f.base.protection_hold = SimTime::seconds(20);
  f.n_replicas = 3;
  return f;
}

TEST(FleetScenario, BalancedFleetServesClients) {
  FleetScenarioConfig f = small_fleet(11);
  f.policy = BalancePolicy::kRoundRobin;
  const FleetResult r = run_fleet_scenario(f);

  EXPECT_GT(r.client_success_ratio(), 0.95);
  for (const auto& replica : r.replicas) {
    EXPECT_GT(replica.counters.established_total, 0u)
        << "idle replica in a balanced fleet";
  }
  EXPECT_EQ(r.cluster.established_total,
            r.replicas[0].counters.established_total +
                r.replicas[1].counters.established_total +
                r.replicas[2].counters.established_total);
  EXPECT_EQ(r.lb.no_backend_drops, 0u);
}

TEST(FleetScenario, FailoverKeepsClusterServing) {
  FleetScenarioConfig f = small_fleet(12);
  f.policy = BalancePolicy::kRoundRobin;
  f.events = {{SimTime::seconds(12), 0, false}, {SimTime::seconds(25), 0, true}};
  const FleetResult r = run_fleet_scenario(f);

  // Flows parked on the dead replica are disrupted, everything else keeps
  // working; the cluster serves throughout.
  EXPECT_GT(r.lb.failover_evictions, 0u);
  EXPECT_GT(r.client_success_ratio(), 0.7);
  EXPECT_GT(r.replicas[1].counters.established_total, 0u);
  EXPECT_GT(r.replicas[2].counters.established_total, 0u);
}

TEST(FleetScenario, PartialAdoptionLeaksThroughUnprotectedReplica) {
  FleetScenarioConfig f = small_fleet(13);
  f.base.duration = SimTime::seconds(45);
  f.base.attack_end = SimTime::seconds(35);
  f.base.n_bots = 4;
  f.base.bot_rate = 200.0;
  f.base.bots_solve = false;  // classic flood tool
  f.base.attack = sim::AttackType::kConnFlood;
  f.n_replicas = 4;
  f.policy = BalancePolicy::kFiveTupleHash;
  f.replica_modes = {tcp::DefenseMode::kNone, tcp::DefenseMode::kPuzzles,
                     tcp::DefenseMode::kPuzzles, tcp::DefenseMode::kPuzzles};
  const FleetResult r = run_fleet_scenario(f);

  // Late attack window: by then the puzzle replicas' protection has latched
  // and their pre-protection parked entries (the Fig. 8 "opportunistic
  // openings") have drained, so remaining leakage flows through the legacy
  // replica.
  const std::size_t lo = 25, hi = 34;
  const double unprotected = r.replica_attacker_cps(0, lo, hi);
  EXPECT_GT(unprotected, 1.0) << "flood should leak through the legacy replica";
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_GT(unprotected, 3.0 * r.replica_attacker_cps(i, lo, hi))
        << "puzzle replica " << i << " leaked like the legacy one";
  }
}

TEST(FleetScenario, MixedPolicyFleetContainsLeakageToLegacyReplica) {
  // Heterogeneous per-replica policies through the new spec API: one legacy
  // (unprotected) replica, one adaptive-puzzles, one hybrid, one plain
  // puzzles — all in one run. The partial-adoption invariant must hold
  // through the policy layer exactly as it did with per-replica modes: the
  // flood leaks through the legacy replica and every protected replica
  // (whatever its policy flavour) contains it.
  FleetScenarioConfig f = small_fleet(13);
  f.base.duration = SimTime::seconds(45);
  f.base.attack_end = SimTime::seconds(35);
  f.base.n_bots = 4;
  f.base.bot_rate = 200.0;
  f.base.bots_solve = false;  // classic flood tool
  f.base.attack = sim::AttackType::kConnFlood;
  f.n_replicas = 4;
  f.policy = BalancePolicy::kFiveTupleHash;
  AdaptiveConfig actl;
  actl.base = f.base.difficulty;
  f.replica_policies = {defense::PolicySpec::none(),
                        defense::PolicySpec::puzzles().with_adaptive(actl),
                        defense::PolicySpec::hybrid(),
                        defense::PolicySpec::puzzles()};
  const FleetResult r = run_fleet_scenario(f);

  // Reports name each replica's policy instead of a bare enum value.
  ASSERT_EQ(r.replicas.size(), 4u);
  EXPECT_EQ(r.replicas[0].policy, "none");
  EXPECT_EQ(r.replicas[1].policy, "adaptive+puzzles");
  EXPECT_EQ(r.replicas[2].policy, "hybrid");
  EXPECT_EQ(r.replicas[3].policy, "puzzles");

  // Late attack window (see PartialAdoptionLeaksThroughUnprotectedReplica):
  // protected replicas have latched, remaining leakage flows through the
  // legacy one.
  const std::size_t lo = 25, hi = 34;
  const double unprotected = r.replica_attacker_cps(0, lo, hi);
  EXPECT_GT(unprotected, 1.0) << "flood should leak through the legacy replica";
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_GT(unprotected, 3.0 * r.replica_attacker_cps(i, lo, hi))
        << "protected replica " << i << " (" << r.replicas[i].policy
        << ") leaked like the legacy one";
  }
  // The protected replicas minted challenges; the legacy one never did.
  EXPECT_EQ(r.replicas[0].counters.challenges_sent, 0u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_GT(r.replicas[i].counters.challenges_sent, 0u);
  }
}

TEST(FleetScenario, RotationUnderLoadKeepsClientsConnected) {
  FleetScenarioConfig f = small_fleet(14);
  f.base.always_challenge = true;  // exercise the puzzle path continuously
  // Every request solves, so keep the per-client solver (one lane) below
  // saturation: ~0.19 s per solve at m=16 against 4 requests/s.
  f.base.client_rate = 4.0;
  f.base.client_max_pending_solves = 8;  // absorb solve-queue bursts
  f.base.difficulty = puzzle::Difficulty{2, 16};
  f.rotation_interval = SimTime::seconds(10);
  f.rotation_overlap = SimTime::seconds(3);
  const FleetResult r = run_fleet_scenario(f);

  EXPECT_GE(r.secret_rotations, 3u);
  EXPECT_EQ(r.cluster.secret_rotations, 3u * r.secret_rotations);
  EXPECT_GT(r.client_success_ratio(), 0.95);
  EXPECT_GT(r.cluster.established_puzzle, 0u);
  // Solves in flight across a rotation land in the overlap window.
  EXPECT_GT(r.cluster.solutions_valid_prev_epoch, 0u);
}

}  // namespace
}  // namespace tcpz::fleet
