// The observability layer's own contract tests: flight-recorder ring
// mechanics (wrap, overflow accounting, category masking), trace
// determinism (same seed => same trace digest; tracing on/off => identical
// scenario results), the per-flow lifecycle reconstructor, the Chrome
// trace_event exporter's shape, and the metrics registry (X-macro field
// registration, fleet-style merge semantics).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "offense/spec.hpp"
#include "scenario/spec.hpp"
#include "trace_digest.hpp"

namespace tcpz {
namespace {

// ---------------------------------------------------------------------------
// Recorder ring mechanics
// ---------------------------------------------------------------------------

TEST(ObsRecorder, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(obs::Recorder(1).capacity(), 64u);
  EXPECT_EQ(obs::Recorder(64).capacity(), 64u);
  EXPECT_EQ(obs::Recorder(65).capacity(), 128u);
  EXPECT_EQ(obs::Recorder(100).capacity(), 128u);
  EXPECT_EQ(obs::Recorder(1u << 16).capacity(), 1u << 16);
}

TEST(ObsRecorder, WrapKeepsNewestAndAccountsOverwritten) {
  obs::Recorder rec(64);
  const std::uint64_t n = 200;
  for (std::uint64_t i = 0; i < n; ++i) {
    rec.record(SimTime::nanoseconds(static_cast<std::int64_t>(i)),
               obs::Code::kFire, /*track=*/0, /*a0=*/i);
  }
  EXPECT_EQ(rec.total_recorded(), n);
  EXPECT_EQ(rec.size(), 64u);
  EXPECT_EQ(rec.overwritten(), n - 64);
  EXPECT_EQ(rec.suppressed(), 0u);

  // for_each walks oldest -> newest: exactly the last 64 events, in order.
  std::uint64_t expect = n - 64;
  rec.for_each([&](const obs::TraceEvent& ev) {
    EXPECT_EQ(ev.a0, expect);
    EXPECT_EQ(ev.t, static_cast<std::int64_t>(expect));
    ++expect;
  });
  EXPECT_EQ(expect, n);
  EXPECT_EQ(rec.snapshot().size(), 64u);
  EXPECT_EQ(rec.snapshot().front().a0, n - 64);
  EXPECT_EQ(rec.snapshot().back().a0, n - 1);

  rec.clear();
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_EQ(rec.size(), 0u);
}

TEST(ObsRecorder, CategoryMaskSuppressesAndCounts) {
  obs::Recorder rec(64, obs::cat_bit(obs::Cat::kListener));
  EXPECT_TRUE(rec.wants(obs::Cat::kListener));
  EXPECT_FALSE(rec.wants(obs::Cat::kEvent));

  rec.record(SimTime::zero(), obs::Code::kSynEnqueue, 1);   // listener: kept
  rec.record(SimTime::zero(), obs::Code::kFire, 0);         // event: masked
  rec.record(SimTime::zero(), obs::Code::kLinkTx, 0);       // link: masked
  rec.record(SimTime::zero(), obs::Code::kEstablished, 1);  // listener: kept

  EXPECT_EQ(rec.total_recorded(), 2u);
  EXPECT_EQ(rec.suppressed(), 2u);
  rec.for_each([](const obs::TraceEvent& ev) {
    EXPECT_EQ(static_cast<obs::Cat>(ev.cat), obs::Cat::kListener);
  });
}

TEST(ObsRecorder, EveryCodeMapsIntoItsCategoryBlock) {
  // The range-based cat_of must agree with the enum's block layout for the
  // block boundary codes (a misplaced new code would silently land in the
  // neighbouring category and dodge its mask).
  using obs::Cat;
  using obs::Code;
  EXPECT_EQ(obs::cat_of(Code::kSynEnqueue), Cat::kListener);
  EXPECT_EQ(obs::cat_of(Code::kDataUnknownFlow), Cat::kListener);
  EXPECT_EQ(obs::cat_of(Code::kLatchEngage), Cat::kDefense);
  EXPECT_EQ(obs::cat_of(Code::kDifficultyRetune), Cat::kDefense);
  EXPECT_EQ(obs::cat_of(Code::kSlotSpoofedSyn), Cat::kOffense);
  EXPECT_EQ(obs::cat_of(Code::kOutcomeSolveRefused), Cat::kOffense);
  EXPECT_EQ(obs::cat_of(Code::kSchedNear), Cat::kEvent);
  EXPECT_EQ(obs::cat_of(Code::kFire), Cat::kEvent);
  EXPECT_EQ(obs::cat_of(Code::kLinkTx), Cat::kLink);
  EXPECT_EQ(obs::cat_of(Code::kLinkDrop), Cat::kLink);
  EXPECT_EQ(obs::cat_of(Code::kSecretRotate), Cat::kSecret);
  EXPECT_EQ(obs::cat_of(Code::kSecretOverlapEnd), Cat::kSecret);
  EXPECT_EQ(obs::cat_of(Code::kLbPick), Cat::kLb);
  EXPECT_EQ(obs::cat_of(Code::kLbEvict), Cat::kLb);
  EXPECT_EQ(obs::cat_of(Code::kFluidOffer), Cat::kFluid);
  EXPECT_EQ(obs::cat_of(Code::kFluidDeceive), Cat::kFluid);
}

// ---------------------------------------------------------------------------
// Trace determinism on a real (short) scenario
// ---------------------------------------------------------------------------

scenario::Spec small_spec(std::uint64_t seed) {
  scenario::Spec s;
  s.seed = seed;
  s.duration = SimTime::seconds(20);
  s.attack_start = SimTime::seconds(5);
  s.attack_end = SimTime::seconds(15);
  s.workload.n_clients = 3;
  s.workload.request_rate = 10.0;
  s.workload.response_bytes = 20'000;
  scenario::AttackSpec atk;
  atk.count = 2;
  atk.rate = 200.0;
  atk.strategy = offense::StrategySpec::conn_flood();
  s.attacks = {atk};
  return s;
}

TEST(ObsTraceDeterminism, SameSeedSameTraceDigest) {
  scenario::Spec spec = small_spec(7);
  spec.obs.trace = true;
  spec.obs.ring_capacity = 1u << 15;

  const scenario::Result a = scenario::run(spec);
  const scenario::Result b = scenario::run(spec);
  ASSERT_NE(a.trace, nullptr);
  ASSERT_NE(b.trace, nullptr);
  EXPECT_GT(a.trace->total_recorded(), 1000u);
  EXPECT_EQ(a.trace->total_recorded(), b.trace->total_recorded());
  EXPECT_EQ(a.trace->digest(), b.trace->digest());

  scenario::Spec other = spec;
  other.seed = 8;
  const scenario::Result c = scenario::run(other);
  EXPECT_NE(a.trace->digest(), c.trace->digest());
}

TEST(ObsTraceDeterminism, TracingDoesNotPerturbTheRun) {
  // The recorder observes; it must never participate. The full counter
  // digest of a traced run equals the untraced run's bit-for-bit.
  const scenario::Result plain = scenario::run(small_spec(7));
  scenario::Spec traced_spec = small_spec(7);
  traced_spec.obs.trace = true;
  const scenario::Result traced = scenario::run(traced_spec);

  EXPECT_EQ(tracedigest::digest(plain.cluster),
            tracedigest::digest(traced.cluster));
  EXPECT_EQ(plain.events_processed, traced.events_processed);
  ASSERT_EQ(plain.clients.size(), traced.clients.size());
  for (std::size_t i = 0; i < plain.clients.size(); ++i) {
    EXPECT_EQ(tracedigest::digest(plain.clients[i]),
              tracedigest::digest(traced.clients[i]));
  }
}

// ---------------------------------------------------------------------------
// Per-flow lifecycle reconstruction
// ---------------------------------------------------------------------------

TEST(ObsFlows, HandBuiltLifecyclesReconstruct) {
  obs::Recorder rec(256);
  const std::uint32_t server = tcp::ipv4(10, 1, 0, 1);
  const std::uint32_t c1 = tcp::ipv4(10, 2, 0, 1);
  const std::uint32_t c2 = tcp::ipv4(10, 3, 0, 1);
  const tcp::FlowKey f1{c1, 4000, server, 80};
  const tcp::FlowKey f2{c2, 5000, server, 80};

  // Flow 1: challenged, solved, established.
  rec.record(SimTime::milliseconds(1), obs::Code::kSynChallenge, 1, f1,
             (2u << 8) | 17u);
  rec.record(SimTime::milliseconds(9), obs::Code::kSolutionValid, 1, f1);
  rec.record(SimTime::milliseconds(9), obs::Code::kEstablished, 1, f1);
  // Flow 2: dropped on listen-queue overflow. Interleaved, and its second
  // event arrives with the reverse (server-first) orientation — the
  // reconstructor must still chain it into the same flow.
  rec.record(SimTime::milliseconds(2), obs::Code::kSynDropOverflow, 1, f2);
  tcp::Segment synack;
  synack.saddr = server;
  synack.sport = 80;
  synack.daddr = c2;
  synack.dport = 5000;
  rec.record(SimTime::milliseconds(3), obs::Code::kBogusAck, 9, synack);
  // Non-flow-scoped noise must not create a flow.
  rec.record(SimTime::milliseconds(4), obs::Code::kLatchEngage, 1, 10, 2);

  const auto flows = obs::reconstruct_flows(rec);
  ASSERT_EQ(flows.size(), 2u);

  const obs::FlowLifecycle& a = flows[0];
  EXPECT_EQ(a.client_addr, c1);
  EXPECT_EQ(a.client_port, 4000);
  EXPECT_EQ(a.server_addr, server);
  EXPECT_TRUE(a.challenged());
  EXPECT_TRUE(a.established());
  EXPECT_EQ(a.outcome(), "established");
  ASSERT_EQ(a.events.size(), 3u);
  EXPECT_EQ(static_cast<obs::Code>(a.events[0].code),
            obs::Code::kSynChallenge);

  const obs::FlowLifecycle& b = flows[1];
  EXPECT_EQ(b.client_addr, c2);  // listener event oriented the tuple
  EXPECT_EQ(b.events.size(), 2u);
  EXPECT_FALSE(b.established());
  EXPECT_EQ(b.outcome(), "dropped:syn_drop_overflow");
}

TEST(ObsFlows, ScenarioFlowsTellCoherentStories) {
  scenario::Spec spec = small_spec(7);
  spec.obs.trace = true;
  spec.obs.ring_capacity = 1u << 15;
  // Keep the high-volume tiers out so decision events survive the window.
  spec.obs.categories =
      obs::kAllCategories &
      ~(obs::cat_bit(obs::Cat::kEvent) | obs::cat_bit(obs::Cat::kLink));
  const scenario::Result res = scenario::run(spec);
  ASSERT_NE(res.trace, nullptr);

  const auto flows = obs::reconstruct_flows(*res.trace);
  ASSERT_GT(flows.size(), 10u);
  std::size_t established = 0;
  for (const auto& f : flows) {
    EXPECT_FALSE(f.events.empty());
    if (f.established()) ++established;
    // Events within a flow are time-ordered (the ring is globally ordered).
    for (std::size_t i = 1; i < f.events.size(); ++i) {
      EXPECT_LE(f.events[i - 1].t, f.events[i].t);
    }
  }
  EXPECT_GT(established, 0u);
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

TEST(ObsExport, ChromeTraceHasTracksAndEvents) {
  obs::Recorder rec(64);
  rec.record(SimTime::milliseconds(5), obs::Code::kSynEnqueue, 1,
             tcp::FlowKey{tcp::ipv4(10, 2, 0, 1), 4000, tcp::ipv4(10, 1, 0, 1),
                          80},
             3);
  rec.record(SimTime::milliseconds(6), obs::Code::kFire, 0, 42);

  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  obs::write_chrome_trace(rec, {{0, "infra"}, {1, "server0"}}, f);
  std::fseek(f, 0, SEEK_END);
  std::string out(static_cast<std::size_t>(std::ftell(f)), '\0');
  std::rewind(f);
  ASSERT_EQ(std::fread(out.data(), 1, out.size(), f), out.size());
  std::fclose(f);

  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(out.find("\"server0\""), std::string::npos);
  EXPECT_NE(out.find("\"syn_enqueue\""), std::string::npos);
  EXPECT_NE(out.find("\"src\": \"10.2.0.1:4000\""), std::string::npos);
  EXPECT_NE(out.find("\"ts\": 5000.000"), std::string::npos);  // µs
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(ObsRegistry, FieldTableRegistersEveryCounter) {
  tcp::ListenerCounters c;
  c.syns_received = 100;
  c.drops_queue_overflow = 7;
  c.drops_policy = 3;

  obs::Registry reg;
  obs::register_metrics(reg, c, "server=0");
  // One metric per field in TCPZ_LISTENER_COUNTER_FIELDS, no more, no less.
  std::size_t n_fields = 0;
#define TCPZ_X(name, help) ++n_fields;
  TCPZ_LISTENER_COUNTER_FIELDS(TCPZ_X)
#undef TCPZ_X
  EXPECT_EQ(reg.size(), n_fields);
  EXPECT_EQ(reg.value("listener.syns_received{server=0}"), 100.0);
  EXPECT_EQ(reg.value("listener.drops_queue_overflow{server=0}"), 7.0);
  EXPECT_EQ(reg.value("listener.drops_policy{server=0}"), 3.0);
  EXPECT_EQ(reg.value("listener.no_such_metric{server=0}", -1.0), -1.0);
}

TEST(ObsRegistry, MergeAggregatesLikeAFleet) {
  obs::Registry a;
  a.counter("listener.syns_received", "role=server", 100);
  a.gauge("server.listen_queue", "role=server", 5);
  a.histogram("host.conn_time_ms", "", {10, 1.0, 9.0, 50.0});

  obs::Registry b;
  b.counter("listener.syns_received", "role=server", 40);
  b.gauge("server.listen_queue", "role=server", 2);
  b.histogram("host.conn_time_ms", "", {5, 0.5, 20.0, 40.0});
  b.counter("only.in.b", "", 1);

  a.merge(b);
  // Counters sum; gauges take the incoming (scrape) value; histogram stats
  // combine; unmatched metrics append.
  EXPECT_EQ(a.value("listener.syns_received{role=server}"), 140.0);
  EXPECT_EQ(a.value("server.listen_queue{role=server}"), 2.0);
  const obs::Metric* h = a.find("host.conn_time_ms");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->hist.count, 15u);
  EXPECT_EQ(h->hist.min, 0.5);
  EXPECT_EQ(h->hist.max, 20.0);
  EXPECT_DOUBLE_EQ(h->hist.sum, 90.0);
  EXPECT_EQ(a.value("only.in.b"), 1.0);

  // Same name under a different label set stays a distinct metric.
  a.counter("listener.syns_received", "role=other", 1);
  EXPECT_EQ(a.value("listener.syns_received{role=server}"), 140.0);
  EXPECT_EQ(a.value("listener.syns_received{role=other}"), 1.0);
}

TEST(ObsRegistry, JsonIsFlatAndOrdered) {
  obs::Registry reg;
  reg.counter("alpha", "", 3);
  reg.gauge("beta", "x=1", 2.5);
  reg.histogram("gamma", "", {2, 1.0, 3.0, 4.0});
  const std::string json = reg.to_json();
  // Registration order is preserved and histograms expand to stat objects.
  const auto a = json.find("\"alpha\": 3");
  const auto b = json.find("\"beta{x=1}\": 2.5");
  const auto g = json.find("\"gamma\": {\"count\": 2");
  EXPECT_NE(a, std::string::npos);
  EXPECT_NE(b, std::string::npos);
  EXPECT_NE(g, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_LT(b, g);
}

}  // namespace
}  // namespace tcpz
