// State-machine tests for Listener and Connector, driven directly (no
// simulated network): normal handshakes, SYN cookies, the puzzle path, queue
// overflow behaviour, deception/RST, replay, expiry, and legacy clients.
#include <gtest/gtest.h>

#include <memory>

#include "crypto/secret.hpp"
#include "puzzle/engine.hpp"
#include "tcp/connector.hpp"
#include "tcp/listener.hpp"

namespace tcpz::tcp {
namespace {

constexpr std::uint32_t kServerAddr = ipv4(10, 1, 0, 1);
constexpr std::uint16_t kServerPort = 80;
constexpr std::uint32_t kClientAddr = ipv4(10, 2, 0, 1);

Segment make_syn(std::uint32_t saddr, std::uint16_t sport, std::uint32_t isn,
                 SimTime now = SimTime::zero()) {
  Segment s;
  s.saddr = saddr;
  s.daddr = kServerAddr;
  s.sport = sport;
  s.dport = kServerPort;
  s.seq = isn;
  s.flags = kSyn;
  s.options.mss = 1460;
  s.options.wscale = 7;
  s.options.ts =
      TimestampsOption{static_cast<std::uint32_t>(now.nanos() / 1'000'000), 0};
  return s;
}

Segment make_ack_for(const Segment& synack, SimTime now) {
  Segment s;
  s.saddr = synack.daddr;
  s.daddr = synack.saddr;
  s.sport = synack.dport;
  s.dport = synack.sport;
  s.seq = synack.ack;
  s.ack = synack.seq + 1;
  s.flags = kAck;
  if (synack.options.ts) {
    s.options.ts = TimestampsOption{
        static_cast<std::uint32_t>(now.nanos() / 1'000'000),
        synack.options.ts->tsval};
  }
  return s;
}

class ListenerTest : public ::testing::Test {
 protected:
  ListenerTest() { rebuild({}); }

  void rebuild(ListenerConfig cfg) {
    cfg.local_addr = kServerAddr;
    cfg.local_port = kServerPort;
    if (cfg.listen_backlog == 1024) cfg.listen_backlog = 4;
    if (cfg.accept_backlog == 1024) cfg.accept_backlog = 4;
    // Most tests exercise the strict "challenge iff full" behaviour; the
    // hysteresis has its own tests below.
    cfg.protection_engage_water = 1.0;
    secret_ = crypto::SecretKey::from_seed(7);
    engine_ = std::make_shared<puzzle::OraclePuzzleEngine>(
        secret_, puzzle::EngineConfig{4, 4000, 100});
    listener_ = std::make_unique<Listener>(cfg, secret_, 1, engine_);
  }

  /// Runs a full client handshake against the listener; returns true if the
  /// connection landed in the accept queue. Solves challenges via `engine_`.
  bool run_handshake(std::uint16_t sport, SimTime now, bool solve = true,
                     std::uint32_t client_addr = kClientAddr) {
    ConnectorConfig ccfg;
    ccfg.local_addr = client_addr;
    ccfg.local_port = sport;
    ccfg.remote_addr = kServerAddr;
    ccfg.remote_port = kServerPort;
    ccfg.solve_puzzles = solve;
    Connector conn(ccfg, sport);
    auto out = conn.start(now);
    for (int hops = 0; hops < 8; ++hops) {
      std::vector<Segment> to_server = std::move(out.segments);
      out.segments.clear();
      std::vector<Segment> to_client;
      for (const auto& seg : to_server) {
        auto resp = listener_->on_segment(now, seg);
        to_client.insert(to_client.end(), resp.begin(), resp.end());
      }
      if (to_client.empty()) break;
      for (const auto& seg : to_client) {
        out = conn.on_segment(now, seg);
        if (out.solve) {
          std::uint64_t ops = 0;
          Rng rng(sport);
          const auto sol =
              engine_->solve(*out.solve, conn.flow_binding(), rng, ops);
          out = conn.on_solved(now, sol);
        }
      }
    }
    for (const auto& seg : out.segments) {
      (void)listener_->on_segment(now, seg);
    }
    const FlowKey flow{client_addr, sport, kServerAddr, kServerPort};
    return listener_->is_established(flow);
  }

  crypto::SecretKey secret_{crypto::SecretKey::from_seed(7)};
  std::shared_ptr<puzzle::OraclePuzzleEngine> engine_;
  std::unique_ptr<Listener> listener_;
};

// ---------------------------------------------------------------------------
// Normal path
// ---------------------------------------------------------------------------

TEST_F(ListenerTest, PlainThreeWayHandshake) {
  const SimTime t = SimTime::seconds(1);
  EXPECT_TRUE(run_handshake(40000, t));
  EXPECT_EQ(listener_->counters().established_queue, 1u);
  EXPECT_EQ(listener_->counters().plain_synacks, 1u);
  EXPECT_EQ(listener_->accept_depth(), 1u);
  EXPECT_EQ(listener_->listen_depth(), 0u);

  const auto conn = listener_->accept(t);
  ASSERT_TRUE(conn.has_value());
  EXPECT_EQ(conn->path, EstablishPath::kQueue);
  EXPECT_EQ(conn->peer_mss, 1460);
  EXPECT_EQ(listener_->accept_depth(), 0u);
}

TEST_F(ListenerTest, SynRetransmitGetsSameSynAck) {
  const SimTime t = SimTime::seconds(1);
  const Segment syn = make_syn(kClientAddr, 40000, 111, t);
  const auto first = listener_->on_segment(t, syn);
  const auto second = listener_->on_segment(t + SimTime::seconds(1), syn);
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(first[0].seq, second[0].seq);  // same ISS, no duplicate state
  EXPECT_EQ(listener_->listen_depth(), 1u);
  EXPECT_EQ(listener_->counters().synack_retx, 1u);
}

TEST_F(ListenerTest, StrayAckIgnored) {
  const SimTime t = SimTime::seconds(1);
  Segment ack;
  ack.saddr = kClientAddr;
  ack.daddr = kServerAddr;
  ack.sport = 40000;
  ack.dport = kServerPort;
  ack.seq = 1;
  ack.ack = 12345;
  ack.flags = kAck;
  EXPECT_TRUE(listener_->on_segment(t, ack).empty());
  EXPECT_EQ(listener_->established_count(), 0u);
}

TEST_F(ListenerTest, WrongAckNumberDoesNotEstablish) {
  const SimTime t = SimTime::seconds(1);
  const Segment syn = make_syn(kClientAddr, 40000, 111, t);
  const auto synacks = listener_->on_segment(t, syn);
  ASSERT_EQ(synacks.size(), 1u);
  Segment ack = make_ack_for(synacks[0], t);
  ack.ack += 5;  // acknowledges something we never sent
  (void)listener_->on_segment(t, ack);
  EXPECT_EQ(listener_->established_count(), 0u);
  EXPECT_EQ(listener_->listen_depth(), 1u);
}

TEST_F(ListenerTest, RstClearsHalfOpenState) {
  const SimTime t = SimTime::seconds(1);
  const Segment syn = make_syn(kClientAddr, 40000, 111, t);
  (void)listener_->on_segment(t, syn);
  EXPECT_EQ(listener_->listen_depth(), 1u);
  Segment rst;
  rst.saddr = kClientAddr;
  rst.daddr = kServerAddr;
  rst.sport = 40000;
  rst.dport = kServerPort;
  rst.flags = kRst;
  (void)listener_->on_segment(t, rst);
  EXPECT_EQ(listener_->listen_depth(), 0u);
}

TEST_F(ListenerTest, WrongDestinationIgnored) {
  Segment syn = make_syn(kClientAddr, 40000, 1);
  syn.dport = 8080;
  EXPECT_TRUE(listener_->on_segment(SimTime::zero(), syn).empty());
  EXPECT_EQ(listener_->counters().syns_received, 0u);
}

// ---------------------------------------------------------------------------
// Listen-queue overflow: the three defence modes
// ---------------------------------------------------------------------------

TEST_F(ListenerTest, NoDefenseDropsSynsWhenFull) {
  ListenerConfig cfg;
  cfg.mode = DefenseMode::kNone;
  rebuild(cfg);
  const SimTime t = SimTime::seconds(1);
  for (int i = 0; i < 4; ++i) {
    (void)listener_->on_segment(
        t, make_syn(kClientAddr + 1 + i, 1000, 5, t));  // fill (no ACKs)
  }
  EXPECT_EQ(listener_->listen_depth(), 4u);
  const auto out = listener_->on_segment(t, make_syn(kClientAddr, 40000, 5, t));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(listener_->counters().drops_queue_overflow, 1u);
  EXPECT_EQ(listener_->counters().drops_policy, 0u);
  EXPECT_FALSE(run_handshake(40001, t));  // denial of service
}

TEST_F(ListenerTest, SynCookiesStatelessWhenFull) {
  ListenerConfig cfg;
  cfg.mode = DefenseMode::kSynCookies;
  rebuild(cfg);
  const SimTime t = SimTime::seconds(1);
  for (int i = 0; i < 4; ++i) {
    (void)listener_->on_segment(t, make_syn(kClientAddr + 1 + i, 1000, 5, t));
  }
  EXPECT_TRUE(listener_->protection_active());
  // A further client still connects, statelessly, via the cookie.
  EXPECT_TRUE(run_handshake(40002, t));
  EXPECT_EQ(listener_->counters().cookies_sent, 1u);
  EXPECT_EQ(listener_->counters().established_cookie, 1u);
  EXPECT_EQ(listener_->listen_depth(), 4u);  // no new half-open state
  const auto conn = listener_->accept(t);
  ASSERT_TRUE(conn.has_value());
  EXPECT_EQ(conn->path, EstablishPath::kCookie);
  // Cookies can only encode the quantised MSS and lose wscale entirely (§5).
  EXPECT_EQ(conn->peer_wscale, 0);
}

TEST_F(ListenerTest, PuzzleChallengeWhenListenQueueFull) {
  ListenerConfig cfg;
  cfg.mode = DefenseMode::kPuzzles;
  cfg.difficulty = {2, 12};
  rebuild(cfg);
  const SimTime t = SimTime::seconds(1);
  for (int i = 0; i < 4; ++i) {
    (void)listener_->on_segment(t, make_syn(kClientAddr + 1 + i, 1000, 5, t));
  }
  EXPECT_TRUE(listener_->protection_active());
  EXPECT_TRUE(run_handshake(40003, t));
  EXPECT_EQ(listener_->counters().challenges_sent, 1u);
  EXPECT_EQ(listener_->counters().solutions_valid, 1u);
  EXPECT_EQ(listener_->counters().established_puzzle, 1u);
  EXPECT_EQ(listener_->listen_depth(), 4u);  // stateless: no slot consumed
  const auto conn = listener_->accept(t);
  ASSERT_TRUE(conn.has_value());
  EXPECT_EQ(conn->path, EstablishPath::kPuzzle);
  // The solution block restored the true MSS and wscale (unlike cookies).
  EXPECT_EQ(conn->peer_mss, 1460);
  EXPECT_EQ(conn->peer_wscale, 7);
}

TEST_F(ListenerTest, OpportunisticNoChallengeWhenQueueHasRoom) {
  ListenerConfig cfg;
  cfg.mode = DefenseMode::kPuzzles;
  rebuild(cfg);
  const SimTime t = SimTime::seconds(1);
  EXPECT_FALSE(listener_->protection_active());
  EXPECT_TRUE(run_handshake(40004, t));
  EXPECT_EQ(listener_->counters().challenges_sent, 0u);
  EXPECT_EQ(listener_->counters().plain_synacks, 1u);
}

TEST_F(ListenerTest, AlwaysChallengeOverridesQueueState) {
  ListenerConfig cfg;
  cfg.mode = DefenseMode::kPuzzles;
  cfg.always_challenge = true;
  cfg.difficulty = {1, 8};
  rebuild(cfg);
  EXPECT_TRUE(run_handshake(40005, SimTime::seconds(1)));
  EXPECT_EQ(listener_->counters().challenges_sent, 1u);
  EXPECT_EQ(listener_->counters().plain_synacks, 0u);
}

// ---------------------------------------------------------------------------
// Accept-queue overflow (connection floods)
// ---------------------------------------------------------------------------

TEST_F(ListenerTest, ConnectionFloodFillsListenQueueAndEngagesPuzzles) {
  // A connection flood engages protection indirectly: the full accept queue
  // parks final ACKs in SYN_RECV until the listen queue saturates, and
  // challenges then flow even though the overflowing queue is the accept
  // queue (§5).
  ListenerConfig cfg;
  cfg.mode = DefenseMode::kPuzzles;
  cfg.difficulty = {1, 8};
  rebuild(cfg);
  const SimTime t = SimTime::seconds(1);
  // Fill the accept queue with 4 established connections.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(run_handshake(static_cast<std::uint16_t>(41000 + i), t));
  }
  EXPECT_EQ(listener_->accept_depth(), 4u);
  EXPECT_FALSE(listener_->protection_active());  // listen queue still open

  // Flood continues: handshakes now park in the listen queue (ACK dropped,
  // accept full) until it too is saturated.
  for (int i = 0; i < 4; ++i) {
    const Segment syn =
        make_syn(kClientAddr, static_cast<std::uint16_t>(42000 + i), 5, t);
    const auto synacks = listener_->on_segment(t, syn);
    ASSERT_EQ(synacks.size(), 1u);
    EXPECT_FALSE(synacks[0].options.challenge.has_value());
    (void)listener_->on_segment(t, make_ack_for(synacks[0], t));
  }
  EXPECT_EQ(listener_->listen_depth(), 4u);
  EXPECT_EQ(listener_->counters().acks_pending_accept, 4u);
  (void)listener_->on_tick(t + SimTime::milliseconds(1));
  EXPECT_TRUE(listener_->protection_active());

  // The next SYN is challenged even though the accept queue is the one
  // overflowing.
  const auto out = listener_->on_segment(t + SimTime::milliseconds(2),
                                         make_syn(kClientAddr, 43000, 9, t));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].options.challenge.has_value());
}

TEST_F(ListenerTest, SolutionAckIgnoredWhenAcceptQueueFull) {
  // The deception mechanism: the ACK is dropped silently; the client's later
  // data segment draws a RST.
  ListenerConfig cfg;
  cfg.mode = DefenseMode::kPuzzles;
  cfg.difficulty = {1, 8};
  rebuild(cfg);
  const SimTime t = SimTime::seconds(1);
  // Saturate the accept queue, then the listen queue (parked handshakes),
  // which engages protection.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(run_handshake(static_cast<std::uint16_t>(41000 + i), t));
  }
  for (int i = 0; i < 4; ++i) {
    const Segment syn =
        make_syn(kClientAddr, static_cast<std::uint16_t>(42000 + i), 5, t);
    const auto synacks = listener_->on_segment(t, syn);
    ASSERT_EQ(synacks.size(), 1u);
    (void)listener_->on_segment(t, make_ack_for(synacks[0], t));
  }
  (void)listener_->on_tick(t + SimTime::milliseconds(1));
  ASSERT_TRUE(listener_->protection_active());

  // Handshake for a further client: its solution ACK must be ignored.
  EXPECT_FALSE(run_handshake(43001, t));
  EXPECT_EQ(listener_->counters().acks_ignored_accept_full, 1u);
  EXPECT_EQ(listener_->counters().solutions_valid, 0u);

  // Its data segment now draws a RST.
  Segment data;
  data.saddr = kClientAddr;
  data.daddr = kServerAddr;
  data.sport = 43001;
  data.dport = kServerPort;
  data.flags = kAck | kPsh;
  data.payload_bytes = 100;
  const auto out = listener_->on_segment(t, data);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].is_rst());
  EXPECT_EQ(listener_->counters().rsts_sent, 1u);
}

TEST_F(ListenerTest, HandshakeAckParkedUntilPeerRetransmits) {
  // Normal path with a full accept queue: the ACK is dropped (Linux
  // semantics), the entry stays in SYN_RECV, and only a later transmission
  // from the peer completes it — a silent peer (flood tool) never connects.
  ListenerConfig cfg;
  cfg.mode = DefenseMode::kNone;
  cfg.accept_backlog = 1;
  rebuild(cfg);
  const SimTime t = SimTime::seconds(1);
  ASSERT_TRUE(run_handshake(41000, t));
  EXPECT_EQ(listener_->accept_depth(), 1u);

  // Second handshake: ACK arrives but the queue is full.
  const Segment syn = make_syn(kClientAddr, 41001, 77, t);
  const auto synacks = listener_->on_segment(t, syn);
  ASSERT_EQ(synacks.size(), 1u);
  const Segment ack = make_ack_for(synacks[0], t);
  (void)listener_->on_segment(t, ack);
  EXPECT_EQ(listener_->counters().acks_pending_accept, 1u);
  EXPECT_EQ(listener_->established_count(), 1u);
  EXPECT_EQ(listener_->listen_depth(), 1u);  // still SYN_RECV

  // Application drains but the tick must NOT promote a silent peer.
  ASSERT_TRUE(listener_->accept(t).has_value());
  (void)listener_->on_tick(t + SimTime::milliseconds(100));
  EXPECT_EQ(listener_->established_count(), 1u);

  // The peer's retransmitted ACK (or first data segment) completes it.
  (void)listener_->on_segment(t + SimTime::milliseconds(200), ack);
  EXPECT_EQ(listener_->established_count(), 2u);
  EXPECT_EQ(listener_->accept_depth(), 1u);
  EXPECT_EQ(listener_->listen_depth(), 0u);
}

TEST_F(ListenerTest, DataSegmentCompletesParkedEntry) {
  ListenerConfig cfg;
  cfg.mode = DefenseMode::kNone;
  cfg.accept_backlog = 1;
  rebuild(cfg);
  const SimTime t = SimTime::seconds(1);
  ASSERT_TRUE(run_handshake(41000, t));

  const Segment syn = make_syn(kClientAddr, 41002, 88, t);
  const auto synacks = listener_->on_segment(t, syn);
  ASSERT_EQ(synacks.size(), 1u);
  (void)listener_->on_segment(t, make_ack_for(synacks[0], t));  // parked

  int delivered = 0;
  listener_->set_data_handler(
      [&](SimTime, const FlowKey&, const Segment&) { ++delivered; });
  ASSERT_TRUE(listener_->accept(t).has_value());  // free a slot

  Segment data = make_ack_for(synacks[0], t);
  data.flags = kAck | kPsh;
  data.payload_bytes = 120;
  (void)listener_->on_segment(t + SimTime::milliseconds(50), data);
  EXPECT_EQ(listener_->established_count(), 2u);
  EXPECT_EQ(delivered, 1);  // the piggybacked request was not lost
}

// ---------------------------------------------------------------------------
// Solution validation corner cases
// ---------------------------------------------------------------------------

class PuzzleAckTest : public ListenerTest {
 protected:
  PuzzleAckTest() {
    ListenerConfig cfg;
    cfg.mode = DefenseMode::kPuzzles;
    cfg.difficulty = {2, 12};
    cfg.always_challenge = true;
    rebuild(cfg);
  }

  /// Performs SYN -> SYN-ACK(challenge) and returns a valid solution ACK.
  Segment valid_solution_ack(std::uint16_t sport, SimTime now) {
    ConnectorConfig ccfg;
    ccfg.local_addr = kClientAddr;
    ccfg.local_port = sport;
    ccfg.remote_addr = kServerAddr;
    ccfg.remote_port = kServerPort;
    Connector conn(ccfg, sport);
    auto out = conn.start(now);
    const auto synacks = listener_->on_segment(now, out.segments[0]);
    EXPECT_EQ(synacks.size(), 1u);
    out = conn.on_segment(now, synacks[0]);
    EXPECT_TRUE(out.solve.has_value());
    std::uint64_t ops = 0;
    Rng rng(sport);
    const auto sol = engine_->solve(*out.solve, conn.flow_binding(), rng, ops);
    out = conn.on_solved(now, sol);
    EXPECT_EQ(out.segments.size(), 1u);
    return out.segments[0];
  }
};

TEST_F(PuzzleAckTest, ValidSolutionEstablishes) {
  const SimTime t = SimTime::seconds(2);
  const Segment ack = valid_solution_ack(43000, t);
  (void)listener_->on_segment(t, ack);
  EXPECT_EQ(listener_->counters().solutions_valid, 1u);
  EXPECT_EQ(listener_->established_count(), 1u);
}

TEST_F(PuzzleAckTest, ReplayOccupiesOnlyOneSlot) {
  // §7 replay attacks: the same captured solution ACK re-sent does not take
  // another accept-queue slot while the first is admitted.
  const SimTime t = SimTime::seconds(2);
  const Segment ack = valid_solution_ack(43001, t);
  (void)listener_->on_segment(t, ack);
  (void)listener_->on_segment(t, ack);
  (void)listener_->on_segment(t + SimTime::milliseconds(5), ack);
  EXPECT_EQ(listener_->counters().solutions_valid, 1u);
  EXPECT_EQ(listener_->counters().solutions_duplicate, 2u);
  EXPECT_EQ(listener_->accept_depth(), 1u);
}

TEST_F(PuzzleAckTest, ExpiredSolutionRejected) {
  const SimTime t = SimTime::seconds(2);
  const Segment ack = valid_solution_ack(43002, t);
  // Engine expiry is 4000 ms: replaying 10 s later must fail statelessly.
  const SimTime late = t + SimTime::seconds(10);
  Segment replay = ack;
  if (replay.options.ts) {
    replay.options.ts->tsval += 10'000;  // client clock advanced; TSecr kept
  }
  (void)listener_->on_segment(late, replay);
  EXPECT_EQ(listener_->counters().solutions_expired, 1u);
  EXPECT_EQ(listener_->established_count(), 0u);
}

TEST_F(PuzzleAckTest, CorruptedSolutionRejected) {
  const SimTime t = SimTime::seconds(2);
  Segment ack = valid_solution_ack(43003, t);
  ack.options.solution->solutions[0] ^= 0xff;
  (void)listener_->on_segment(t, ack);
  EXPECT_EQ(listener_->counters().solutions_invalid, 1u);
  EXPECT_EQ(listener_->established_count(), 0u);
}

TEST_F(PuzzleAckTest, TamperedTimestampRejected) {
  const SimTime t = SimTime::seconds(2);
  Segment ack = valid_solution_ack(43004, t);
  ASSERT_TRUE(ack.options.ts.has_value());
  ack.options.ts->tsecr += 1;  // attacker "refreshes" the challenge
  (void)listener_->on_segment(t, ack);
  // The derived ISS no longer matches -> rejected before verification.
  EXPECT_EQ(listener_->counters().solutions_bad_ackno, 1u);
  EXPECT_EQ(listener_->established_count(), 0u);
}

TEST_F(PuzzleAckTest, WrongSolutionCountRejected) {
  const SimTime t = SimTime::seconds(2);
  Segment ack = valid_solution_ack(43005, t);
  ack.options.solution->solutions.resize(4);  // one l=4 solution instead of 2
  (void)listener_->on_segment(t, ack);
  EXPECT_EQ(listener_->counters().solutions_invalid, 1u);
}

TEST_F(PuzzleAckTest, LegacyPlainAckSilentlyIgnored) {
  // A non-solving client's plain ACK (no solution block, no half-open entry)
  // is dropped without a RST (§6.5: it learns only via its data segment).
  const SimTime t = SimTime::seconds(2);
  ConnectorConfig ccfg;
  ccfg.local_addr = kClientAddr;
  ccfg.local_port = 43006;
  ccfg.remote_addr = kServerAddr;
  ccfg.remote_port = kServerPort;
  ccfg.solve_puzzles = false;  // unpatched stack
  Connector conn(ccfg, 1);
  auto out = conn.start(t);
  const auto synacks = listener_->on_segment(t, out.segments[0]);
  ASSERT_EQ(synacks.size(), 1u);
  out = conn.on_segment(t, synacks[0]);
  EXPECT_TRUE(out.established);  // it *believes* it connected
  EXPECT_TRUE(conn.was_challenged());
  const auto resp = listener_->on_segment(t, out.segments[0]);
  EXPECT_TRUE(resp.empty());
  EXPECT_EQ(listener_->established_count(), 0u);
}

// ---------------------------------------------------------------------------
// Protection controller hysteresis
// ---------------------------------------------------------------------------

TEST_F(ListenerTest, ProtectionEngagesAtHighWater) {
  ListenerConfig cfg;
  cfg.mode = DefenseMode::kPuzzles;
  cfg.listen_backlog = 8;
  cfg.accept_backlog = 8;
  rebuild(cfg);
  // rebuild() pins water to 1.0; rebuild again with the default 0.5.
  ListenerConfig cfg2 = listener_->config();
  cfg2.protection_engage_water = 0.5;
  listener_ = std::make_unique<Listener>(cfg2, secret_, 1, engine_);

  const SimTime t = SimTime::seconds(1);
  for (int i = 0; i < 3; ++i) {
    (void)listener_->on_segment(t, make_syn(kClientAddr + 1 + i, 1000, 5, t));
  }
  EXPECT_FALSE(listener_->protection_active());  // 3 < 8*0.5
  (void)listener_->on_segment(t, make_syn(kClientAddr + 9, 1000, 5, t));
  // The 4th entry reaches the high-water mark; the latch updates on the
  // next event.
  (void)listener_->on_tick(t + SimTime::milliseconds(1));
  EXPECT_TRUE(listener_->protection_active());  // 4 >= 8*0.5
}

TEST_F(ListenerTest, ProtectionHoldOutlastsQueueDrain) {
  ListenerConfig cfg;
  cfg.mode = DefenseMode::kPuzzles;
  cfg.listen_backlog = 2;
  cfg.protection_hold = SimTime::seconds(5);
  rebuild(cfg);

  const SimTime t0 = SimTime::seconds(1);
  (void)listener_->on_segment(t0, make_syn(kClientAddr + 1, 1000, 5, t0));
  (void)listener_->on_segment(t0, make_syn(kClientAddr + 2, 1000, 5, t0));
  EXPECT_TRUE(listener_->protection_active());

  // Drain the queue via RSTs; protection must stay latched for the hold.
  for (int i = 0; i < 2; ++i) {
    Segment rst;
    rst.saddr = kClientAddr + 1 + i;
    rst.daddr = kServerAddr;
    rst.sport = 1000;
    rst.dport = kServerPort;
    rst.flags = kRst;
    (void)listener_->on_segment(t0, rst);
  }
  EXPECT_EQ(listener_->listen_depth(), 0u);
  (void)listener_->on_tick(t0 + SimTime::seconds(2));
  EXPECT_TRUE(listener_->protection_active()) << "hold not yet elapsed";
  (void)listener_->on_tick(t0 + SimTime::seconds(6));
  EXPECT_FALSE(listener_->protection_active()) << "hold elapsed, queues empty";
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

TEST_F(ListenerTest, SynAckRetransmitThenExpiry) {
  ListenerConfig cfg;
  cfg.mode = DefenseMode::kNone;
  cfg.synack_timeout = SimTime::seconds(1);
  cfg.max_synack_retries = 2;
  rebuild(cfg);
  const SimTime t0 = SimTime::seconds(1);
  (void)listener_->on_segment(t0, make_syn(kClientAddr, 40000, 1, t0));
  EXPECT_EQ(listener_->listen_depth(), 1u);

  std::size_t retx = 0;
  SimTime t = t0;
  for (int i = 0; i < 200 && listener_->listen_depth() > 0; ++i) {
    t += SimTime::milliseconds(100);
    retx += listener_->on_tick(t).size();
  }
  EXPECT_EQ(retx, 2u);  // max_synack_retries
  EXPECT_EQ(listener_->listen_depth(), 0u);
  EXPECT_EQ(listener_->counters().half_open_expired, 1u);
  EXPECT_LE(t - t0, SimTime::seconds(8));
}

// ---------------------------------------------------------------------------
// Runtime tuning (the sysctl interface)
// ---------------------------------------------------------------------------

TEST_F(ListenerTest, DifficultyTunableAtRuntime) {
  ListenerConfig cfg;
  cfg.mode = DefenseMode::kPuzzles;
  cfg.always_challenge = true;
  cfg.difficulty = {1, 8};
  rebuild(cfg);
  const SimTime t = SimTime::seconds(1);
  auto out = listener_->on_segment(t, make_syn(kClientAddr, 40000, 1, t));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].options.challenge->m, 8);

  listener_->set_difficulty({3, 15});
  out = listener_->on_segment(t, make_syn(kClientAddr, 40001, 1, t));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].options.challenge->k, 3);
  EXPECT_EQ(out[0].options.challenge->m, 15);

  EXPECT_THROW(listener_->set_difficulty({0, 8}), std::invalid_argument);
}

TEST_F(ListenerTest, ModeSwitchable) {
  listener_->set_mode(DefenseMode::kSynCookies);
  EXPECT_EQ(listener_->config().mode, DefenseMode::kSynCookies);
  listener_->set_mode(DefenseMode::kPuzzles);  // engine present: allowed
  EXPECT_EQ(listener_->config().mode, DefenseMode::kPuzzles);
}

TEST(ListenerConstruction, PuzzlesModeRequiresEngine) {
  ListenerConfig cfg;
  cfg.mode = DefenseMode::kPuzzles;
  EXPECT_THROW(Listener(cfg, crypto::SecretKey::from_seed(1), 1, nullptr),
               std::invalid_argument);
  cfg.cookie_fallback = true;  // §5: cookies as the backup option
  EXPECT_NO_THROW(Listener(cfg, crypto::SecretKey::from_seed(1), 1, nullptr));
}

// ---------------------------------------------------------------------------
// Connector-side specifics
// ---------------------------------------------------------------------------

TEST(Connector, RefusesPuzzleAboveValuation) {
  ConnectorConfig cfg;
  cfg.local_addr = kClientAddr;
  cfg.local_port = 5000;
  cfg.remote_addr = kServerAddr;
  cfg.remote_port = kServerPort;
  cfg.max_price_hashes = 1000.0;  // w_i
  Connector conn(cfg, 1);
  auto out = conn.start(SimTime::zero());

  Segment synack;
  synack.saddr = kServerAddr;
  synack.daddr = kClientAddr;
  synack.sport = kServerPort;
  synack.dport = 5000;
  synack.seq = 99;
  synack.ack = conn.iss() + 1;
  synack.flags = kSyn | kAck;
  ChallengeOption copt;
  copt.k = 2;
  copt.m = 17;  // expected 131072 hashes >> 1000
  copt.sol_len = 4;
  copt.embedded_ts = 5;
  copt.preimage = Bytes(4, 1);
  synack.options.challenge = copt;

  out = conn.on_segment(SimTime::zero(), synack);
  EXPECT_TRUE(out.failed);
  EXPECT_EQ(out.reason, ConnectFail::kRefusedDifficulty);
  EXPECT_EQ(conn.state(), ConnectorState::kFailed);
}

TEST(Connector, MalformedChallengeFails) {
  ConnectorConfig cfg;
  cfg.local_addr = kClientAddr;
  cfg.local_port = 5001;
  cfg.remote_addr = kServerAddr;
  cfg.remote_port = kServerPort;
  cfg.use_timestamps = false;
  Connector conn(cfg, 1);
  (void)conn.start(SimTime::zero());

  Segment synack;
  synack.saddr = kServerAddr;
  synack.daddr = kClientAddr;
  synack.sport = kServerPort;
  synack.dport = 5001;
  synack.ack = conn.iss() + 1;
  synack.flags = kSyn | kAck;
  ChallengeOption copt;
  copt.k = 0;  // invalid
  copt.m = 8;
  copt.sol_len = 4;
  copt.embedded_ts = 1;
  copt.preimage = Bytes(4, 1);
  synack.options.challenge = copt;
  const auto out = conn.on_segment(SimTime::zero(), synack);
  EXPECT_TRUE(out.failed);
  EXPECT_EQ(out.reason, ConnectFail::kBadChallenge);
}

TEST(Connector, SynRetransmissionThenTimeout) {
  ConnectorConfig cfg;
  cfg.local_addr = kClientAddr;
  cfg.local_port = 5002;
  cfg.remote_addr = kServerAddr;
  cfg.remote_port = kServerPort;
  cfg.syn_timeout = SimTime::seconds(1);
  cfg.max_syn_retries = 2;
  Connector conn(cfg, 1);
  (void)conn.start(SimTime::zero());

  std::size_t retx = 0;
  bool failed = false;
  for (SimTime t = SimTime::zero(); t < SimTime::seconds(20);
       t += SimTime::milliseconds(100)) {
    const auto out = conn.on_tick(t);
    retx += out.segments.size();
    if (out.failed) {
      failed = true;
      EXPECT_EQ(out.reason, ConnectFail::kTimeout);
      break;
    }
  }
  EXPECT_EQ(retx, 2u);
  EXPECT_TRUE(failed);
}

TEST(Connector, IgnoresSynAckForWrongAttempt) {
  ConnectorConfig cfg;
  cfg.local_addr = kClientAddr;
  cfg.local_port = 5003;
  cfg.remote_addr = kServerAddr;
  cfg.remote_port = kServerPort;
  Connector conn(cfg, 1);
  (void)conn.start(SimTime::zero());
  Segment synack;
  synack.saddr = kServerAddr;
  synack.daddr = kClientAddr;
  synack.sport = kServerPort;
  synack.dport = 5003;
  synack.ack = conn.iss() + 42;  // not our ISN
  synack.flags = kSyn | kAck;
  const auto out = conn.on_segment(SimTime::zero(), synack);
  EXPECT_TRUE(out.segments.empty());
  EXPECT_EQ(conn.state(), ConnectorState::kSynSent);
}

TEST(Connector, DataSegmentRequiresEstablished) {
  ConnectorConfig cfg;
  cfg.local_addr = kClientAddr;
  cfg.local_port = 5004;
  cfg.remote_addr = kServerAddr;
  cfg.remote_port = kServerPort;
  Connector conn(cfg, 1);
  EXPECT_THROW((void)conn.make_data_segment(SimTime::zero(), 10),
               std::logic_error);
}

}  // namespace
}  // namespace tcpz::tcp
