#include <gtest/gtest.h>

#include "tcp/options.hpp"
#include "tcp/wire_format.hpp"
#include "tcp/segment.hpp"

namespace tcpz::tcp {
namespace {

Options roundtrip(const Options& in) {
  Options out;
  const Bytes wire = encode_options(in);
  EXPECT_EQ(decode_options(wire, out), DecodeResult::kOk);
  return out;
}

TEST(OptionsCodec, EmptyIsEmpty) {
  const Options o;
  EXPECT_EQ(o.wire_size(), 0u);
  EXPECT_EQ(roundtrip(o), o);
}

TEST(OptionsCodec, StandardSynOptions) {
  Options o;
  o.mss = 1460;
  o.wscale = 7;
  o.sack_permitted = true;
  o.ts = TimestampsOption{12345, 0};
  const Options back = roundtrip(o);
  EXPECT_EQ(back, o);
  EXPECT_EQ(o.wire_size() % 4, 0u);
}

TEST(OptionsCodec, PaddingAlignsTo32Bits) {
  Options o;
  o.wscale = 7;  // 3 bytes -> padded to 4
  EXPECT_EQ(o.wire_size(), 4u);
  EXPECT_EQ(roundtrip(o), o);
}

TEST(OptionsCodec, ChallengeBlockWithTimestampsOption) {
  // T rides in TSval; the challenge block carries no embedded copy (Fig. 4).
  Options o;
  o.mss = 1460;
  o.wscale = 7;
  o.ts = TimestampsOption{777, 555};
  ChallengeOption c;
  c.k = 2;
  c.m = 17;
  c.sol_len = 4;
  c.preimage = {0xde, 0xad, 0xbe, 0xef};
  o.challenge = c;
  const Options back = roundtrip(o);
  EXPECT_EQ(back, o);
  ASSERT_TRUE(back.challenge.has_value());
  EXPECT_FALSE(back.challenge->embedded_ts.has_value());
}

TEST(OptionsCodec, ChallengeBlockWithEmbeddedTimestamp) {
  Options o;
  ChallengeOption c;
  c.k = 1;
  c.m = 8;
  c.sol_len = 8;
  c.embedded_ts = 98765;
  c.preimage = Bytes(8, 0x5a);
  o.challenge = c;
  const Options back = roundtrip(o);
  ASSERT_TRUE(back.challenge.has_value());
  EXPECT_EQ(back.challenge->embedded_ts, 98765u);
  EXPECT_EQ(back.challenge->preimage, c.preimage);
}

TEST(OptionsCodec, SolutionBlockWithTimestampsOption) {
  Options o;
  o.ts = TimestampsOption{100, 99};
  SolutionOption s;
  s.mss = 1460;
  s.wscale = 7;
  s.solutions = Bytes(8, 0xab);  // k=2, l=4
  o.solution = s;
  const Options back = roundtrip(o);
  ASSERT_TRUE(back.solution.has_value());
  EXPECT_EQ(back.solution->mss, 1460);
  EXPECT_EQ(back.solution->wscale, 7);
  EXPECT_EQ(back.solution->solutions, s.solutions);
  EXPECT_FALSE(back.solution->embedded_ts.has_value());
}

TEST(OptionsCodec, SolutionBlockEmbedsTimestampWithoutTsOption) {
  Options o;
  SolutionOption s;
  s.mss = 1400;
  s.wscale = 5;
  s.embedded_ts = 424242;
  s.solutions = Bytes(8, 0xcd);
  o.solution = s;
  const Options back = roundtrip(o);
  ASSERT_TRUE(back.solution.has_value());
  EXPECT_EQ(back.solution->embedded_ts, 424242u);
  EXPECT_EQ(back.solution->solutions, s.solutions);
  EXPECT_EQ(back.solution->mss, 1400);
}

TEST(OptionsCodec, PaperFig4LayoutIsCompact) {
  // The paper reports low packet-size overhead: a (k,m,l=4) challenge costs
  // 12 bytes incl. padding on top of the standard options.
  Options o;
  ChallengeOption c;
  c.k = 2;
  c.m = 17;
  c.sol_len = 4;
  c.preimage = Bytes(4, 1);
  o.challenge = c;
  EXPECT_EQ(o.wire_size(), 12u);  // 2 hdr + 3 (k,m,l) + 4 preimage + 3 pad
}

TEST(OptionsCodec, NashSolutionFitsWithTimestamps) {
  // k=2, l=4 solution + full timestamp option must fit in 40 bytes.
  Options o;
  o.ts = TimestampsOption{1, 2};
  SolutionOption s;
  s.mss = 1460;
  s.wscale = 7;
  s.solutions = Bytes(8, 0);
  o.solution = s;
  EXPECT_LE(o.wire_size(), kMaxOptionsBytes);
}

TEST(OptionsCodec, MaxKSolutionFitsBarely) {
  // k=4, l=4, embedded timestamp, no other options: 1+1+2+1+4+16 = 25 -> 28.
  Options o;
  SolutionOption s;
  s.mss = 1460;
  s.wscale = 7;
  s.embedded_ts = 5;
  s.solutions = Bytes(16, 0);
  o.solution = s;
  EXPECT_LE(o.wire_size(), kMaxOptionsBytes);
}

TEST(OptionsCodec, OversizeThrows) {
  Options o;
  o.mss = 1460;
  o.wscale = 7;
  o.ts = TimestampsOption{1, 2};
  ChallengeOption c;
  c.k = 4;
  c.m = 20;
  c.sol_len = 32;  // 32-byte pre-image cannot fit
  c.preimage = Bytes(32, 1);
  o.challenge = c;
  EXPECT_THROW((void)encode_options(o), std::length_error);
}

TEST(OptionsCodec, UnknownOptionsAreSkipped) {
  // A legacy stack must parse around blocks it does not know. Build a wire
  // image with an unknown kind 200 option between MSS and wscale.
  Bytes wire;
  wire.push_back(kOptMss);
  wire.push_back(4);
  put_u16be(wire, 1460);
  wire.push_back(200);  // unknown kind
  wire.push_back(6);
  wire.insert(wire.end(), {1, 2, 3, 4});
  wire.push_back(kOptWscale);
  wire.push_back(3);
  wire.push_back(9);
  wire.push_back(kOptNop);
  Options out;
  ASSERT_EQ(decode_options(wire, out), DecodeResult::kOk);
  EXPECT_EQ(out.mss, 1460);
  EXPECT_EQ(out.wscale, 9);
}

TEST(OptionsCodec, LegacyStackSkipsChallengeBlock) {
  // Decoding a challenge-bearing SYN-ACK and re-reading only standard fields
  // is what an unpatched kernel does; both must coexist.
  Options o;
  o.mss = 1400;
  ChallengeOption c;
  c.k = 1;
  c.m = 12;
  c.sol_len = 4;
  c.preimage = Bytes(4, 7);
  o.challenge = c;
  const Bytes wire = encode_options(o);
  Options decoded;
  ASSERT_EQ(decode_options(wire, decoded), DecodeResult::kOk);
  EXPECT_EQ(decoded.mss, 1400);
  EXPECT_TRUE(decoded.challenge.has_value());
}

TEST(OptionsCodec, TruncationDetected) {
  Options o;
  o.ts = TimestampsOption{1, 2};
  Bytes wire = encode_options(o);
  // The explicit bound keeps GCC's -Wstringop-overflow (which cannot see
  // that the encoded timestamps option is >= 10 bytes) from flagging a
  // possible size_t underflow under the sanitizer builds.
  ASSERT_GE(wire.size(), 6u);
  wire.resize(wire.size() - 6);
  Options out;
  EXPECT_NE(decode_options(wire, out), DecodeResult::kOk);
}

TEST(OptionsCodec, BadLengthDetected) {
  Bytes wire = {kOptMss, 1};  // length < 2 is illegal
  Options out;
  EXPECT_EQ(decode_options(wire, out), DecodeResult::kBadLength);
  wire = {kOptMss, 10, 0, 0};  // runs past the end
  EXPECT_EQ(decode_options(wire, out), DecodeResult::kBadLength);
}

TEST(OptionsCodec, ChallengeLengthConsistencyEnforced) {
  // body must be exactly 3+l or 3+4+l.
  Bytes wire = {kOptChallenge, 9, 2, 17, 4, 1, 2};  // says l=4, carries 2
  Options out;
  EXPECT_EQ(decode_options(wire, out), DecodeResult::kBadLength);
}

TEST(OptionsCodec, SolutionWithoutTsTooShortRejected) {
  // No timestamps option and fewer than 4 bytes after MSS/wscale: there is
  // no room for the embedded timestamp.
  Bytes wire = {kOptSolution, 7, 5, 0xb4, 7, 1, 2};
  Options out;
  EXPECT_EQ(decode_options(wire, out), DecodeResult::kBadLength);
}

TEST(OptionsCodec, EndOptionStopsParsing) {
  Bytes wire = {kOptEnd, kOptMss, 4, 5, 0xb4};
  Options out;
  ASSERT_EQ(decode_options(wire, out), DecodeResult::kOk);
  EXPECT_FALSE(out.mss.has_value());
}

TEST(OptionsCodec, RejectsOver40Bytes) {
  const Bytes wire(44, kOptNop);
  Options out;
  EXPECT_EQ(decode_options(wire, out), DecodeResult::kTooLong);
}

// ---------------------------------------------------------------------------
// Segment helpers
// ---------------------------------------------------------------------------

TEST(Segment, FlagPredicates) {
  Segment s;
  s.flags = kSyn;
  EXPECT_TRUE(s.is_syn());
  EXPECT_FALSE(s.is_syn_ack());
  s.flags = kSyn | kAck;
  EXPECT_TRUE(s.is_syn_ack());
  EXPECT_FALSE(s.is_syn());
  EXPECT_FALSE(s.is_ack());
  s.flags = kAck;
  EXPECT_TRUE(s.is_ack());
  s.flags = kRst | kAck;
  EXPECT_TRUE(s.is_rst());
}

TEST(Segment, WireSizeCountsHeadersOptionsPayload) {
  Segment s;
  EXPECT_EQ(s.wire_size(), 40u);
  s.payload_bytes = 100;
  EXPECT_EQ(s.wire_size(), 140u);
  s.options.mss = 1460;
  EXPECT_EQ(s.wire_size(), 144u);
}

TEST(Segment, FlowKeyFromIncoming) {
  Segment s;
  s.saddr = 1;
  s.sport = 2;
  s.daddr = 3;
  s.dport = 4;
  const FlowKey k = FlowKey::from_incoming(s);
  EXPECT_EQ(k.raddr, 1u);
  EXPECT_EQ(k.rport, 2);
  EXPECT_EQ(k.laddr, 3u);
  EXPECT_EQ(k.lport, 4);
}

TEST(Segment, Ipv4Helpers) {
  EXPECT_EQ(ipv4(10, 1, 0, 1), 0x0a010001u);
  EXPECT_EQ(ip_to_string(ipv4(192, 168, 1, 42)), "192.168.1.42");
}

TEST(Segment, SummaryMentionsPuzzleBlocks) {
  Segment s;
  s.flags = kSyn | kAck;
  ChallengeOption c;
  c.k = 1;
  c.m = 8;
  c.sol_len = 4;
  c.preimage = Bytes(4, 0);
  s.options.challenge = c;
  EXPECT_NE(s.summary().find("<challenge>"), std::string::npos);
}

}  // namespace
}  // namespace tcpz::tcp
