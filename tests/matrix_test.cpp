// Defence x attack matrix: every combination must run to completion without
// tripping any invariant, and the qualitative outcome table of §6 must hold
// — which defences survive which attack.
#include <gtest/gtest.h>

#include <tuple>

#include "sim/scenario.hpp"

namespace tcpz::sim {
namespace {

using MatrixParam = std::tuple<tcp::DefenseMode, AttackType, bool /*bots solve*/>;

class DefenseAttackMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(DefenseAttackMatrix, RunsCleanAndMatchesOutcomeTable) {
  const auto [defense, attack, bots_solve] = GetParam();

  ScenarioConfig cfg;
  cfg.seed = 13;
  cfg.duration = SimTime::seconds(24);
  cfg.attack_start = SimTime::seconds(8);
  cfg.attack_end = SimTime::seconds(18);
  cfg.n_clients = 3;
  cfg.client_rate = 8.0;
  cfg.response_bytes = 10'000;
  cfg.n_bots = 3;
  cfg.bot_rate = 500.0;
  cfg.listen_backlog = 128;
  cfg.accept_backlog = 128;
  cfg.service_rate = 200.0;
  cfg.defense = defense;
  cfg.attack = attack;
  cfg.bots_solve = bots_solve;
  cfg.difficulty = {2, 16};

  const ScenarioResult res = run_scenario(cfg);

  // Universal invariants.
  const auto& c = res.server.counters;
  EXPECT_EQ(c.established_total,
            c.established_queue + c.established_cookie + c.established_puzzle);
  EXPECT_LE(res.server.listen_queue.max_in(SimTime::zero(), cfg.duration),
            static_cast<double>(cfg.listen_backlog));
  EXPECT_LE(res.server.accept_queue.max_in(SimTime::zero(), cfg.duration),
            static_cast<double>(cfg.accept_backlog));
  EXPECT_GT(res.events_processed, 1000u);

  const double before = res.client_rx_mbps(3, 7);
  const double during = res.client_rx_mbps(11, 17);
  ASSERT_GT(before, 0.5) << "pre-attack service must exist";

  // §6's outcome table.
  const bool survives =
      (attack == AttackType::kSynFlood &&
       defense != tcp::DefenseMode::kNone) ||
      (attack == AttackType::kConnFlood &&
       defense == tcp::DefenseMode::kPuzzles) ||
      (attack == AttackType::kBogusSolutionFlood);  // never fills the queues
  if (survives) {
    EXPECT_GT(during, before * 0.10)
        << tcp::to_string(defense) << " should survive " << to_string(attack);
  } else {
    EXPECT_LT(during, before * 0.35)
        << tcp::to_string(defense) << " should collapse under "
        << to_string(attack);
  }

  // Mode-specific sanity.
  if (defense == tcp::DefenseMode::kNone) {
    EXPECT_EQ(c.challenges_sent, 0u);
    EXPECT_EQ(c.cookies_sent, 0u);
  }
  if (defense == tcp::DefenseMode::kSynCookies) {
    EXPECT_EQ(c.challenges_sent, 0u);
  }
  if (defense == tcp::DefenseMode::kPuzzles &&
      attack != AttackType::kSynFlood && !bots_solve) {
    // Non-solving flood bots never produce a valid solution; every valid
    // one comes from the 3 legitimate clients.
    EXPECT_EQ(c.solutions_valid, c.established_puzzle);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DefenseAttackMatrix,
    ::testing::Combine(::testing::Values(tcp::DefenseMode::kNone,
                                         tcp::DefenseMode::kSynCookies,
                                         tcp::DefenseMode::kPuzzles),
                       ::testing::Values(AttackType::kSynFlood,
                                         AttackType::kConnFlood,
                                         AttackType::kBogusSolutionFlood),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      std::string name = tcp::to_string(std::get<0>(info.param));
      name += "_";
      name += to_string(std::get<1>(info.param));
      name += std::get<2>(info.param) ? "_SA" : "_NA";
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace tcpz::sim
