// Tests for the offense::AttackStrategy layer and the scenario-engine
// features it rides on: pulsed duty cycles against the opportunistic latch
// hysteresis, the game-aware adaptive attacker's best-response planning,
// mixed heterogeneous botnets, and the fleet-aware multi-target spread.
#include <gtest/gtest.h>

#include <algorithm>

#include "game/model.hpp"
#include "offense/spec.hpp"
#include "offense/strategies.hpp"
#include "scenario/spec.hpp"
#include "sim/devices.hpp"

namespace tcpz {
namespace {

// ---------------------------------------------------------------------------
// Strategy units
// ---------------------------------------------------------------------------

offense::BotView view_at(SimTime now, Rng* rng = nullptr) {
  offense::BotView v;
  v.now = now;
  v.attack_start = SimTime::seconds(10);
  v.attack_end = SimTime::seconds(70);
  v.rng = rng;
  return v;
}

TEST(PulsedStrategy, DutyCycleGatesSlots) {
  // period 20 s, duty 0.25: on for 5 s from each period boundary (anchored
  // at attack_start).
  offense::PulsedStrategy strat({SimTime::seconds(20), 0.25, false, true});
  auto action_at = [&](double t) {
    return strat.on_slot(view_at(SimTime::from_seconds(t))).action;
  };
  EXPECT_EQ(action_at(10.0), offense::SlotAction::kConnect);   // phase 0
  EXPECT_EQ(action_at(14.9), offense::SlotAction::kConnect);   // phase 4.9
  EXPECT_EQ(action_at(15.1), offense::SlotAction::kIdle);      // phase 5.1
  EXPECT_EQ(action_at(29.9), offense::SlotAction::kIdle);      // phase 19.9
  EXPECT_EQ(action_at(30.1), offense::SlotAction::kConnect);   // next period
  EXPECT_EQ(action_at(34.0), offense::SlotAction::kConnect);
  EXPECT_EQ(action_at(40.0), offense::SlotAction::kIdle);
}

TEST(PulsedStrategy, DegenerateDutyCycles) {
  offense::PulsedStrategy always({SimTime::seconds(20), 1.0, false, true});
  EXPECT_EQ(always.on_slot(view_at(SimTime::seconds(42))).action,
            offense::SlotAction::kConnect);
  offense::PulsedStrategy never({SimTime::seconds(20), 0.0, false, true});
  EXPECT_EQ(never.on_slot(view_at(SimTime::seconds(42))).action,
            offense::SlotAction::kIdle);
  offense::PulsedStrategy spoofed({SimTime::seconds(20), 0.25, true, true});
  EXPECT_EQ(spoofed.on_slot(view_at(SimTime::seconds(10))).action,
            offense::SlotAction::kSpoofedSyn);
}

TEST(GameAdaptiveStrategy, ReplansToBestResponseOnObservedDifficulty) {
  offense::GameAdaptiveConfig cfg;
  cfg.valuation = 3e5;
  cfg.mu = 1100.0;
  cfg.assumed = {1, 8};  // cheap assumed price until a challenge arrives
  cfg.slot_rate = 500.0;
  offense::GameAdaptiveStrategy strat(cfg);
  EXPECT_EQ(strat.replans(), 0u);
  EXPECT_GT(strat.planned_solve_rate(), 0.0);

  // Observe the §4.4 Nash difficulty: the plan must drop to the single-user
  // equilibrium rate of the paper's own game at price ℓ = k·2^(m-1).
  puzzle::Challenge nash;
  nash.diff = {2, 17};
  const auto act = strat.on_challenge(view_at(SimTime::seconds(20)), nash);
  EXPECT_EQ(act, offense::ChallengeAction::kSolve);
  EXPECT_EQ(strat.replans(), 1u);
  EXPECT_EQ(strat.observed_price(), nash.diff.expected_solve_hashes());

  game::GameConfig g;
  g.valuations = {cfg.valuation};
  g.mu = cfg.mu;
  const game::Equilibrium eq =
      game::solve_equilibrium(g, nash.diff.expected_solve_hashes());
  ASSERT_TRUE(eq.exists);
  EXPECT_DOUBLE_EQ(strat.planned_solve_rate(), eq.total_rate);
  // Sanity: near the first-order best response x* ≈ w/ℓ − 1 (the congestion
  // term is negligible at µ = 1100).
  const double first_order =
      cfg.valuation / nash.diff.expected_solve_hashes() - 1.0;
  EXPECT_NEAR(strat.planned_solve_rate(), first_order,
              0.2 * first_order + 0.05);

  // Same difficulty again: no re-plan.
  EXPECT_EQ(strat.on_challenge(view_at(SimTime::seconds(21)), nash),
            offense::ChallengeAction::kSolve);
  EXPECT_EQ(strat.replans(), 1u);
}

TEST(GameAdaptiveStrategy, AbandonsWhenPriceExceedsValuationButKeepsProbing) {
  offense::GameAdaptiveConfig cfg;
  cfg.valuation = 5e4;
  cfg.slot_rate = 500.0;
  offense::GameAdaptiveStrategy strat(cfg);
  puzzle::Challenge hard;
  hard.diff = {2, 20};  // ℓ = 2^20 ≈ 1.05 M hashes > w
  EXPECT_EQ(strat.on_challenge(view_at(SimTime::seconds(20)), hard),
            offense::ChallengeAction::kAbandon);
  EXPECT_EQ(strat.planned_solve_rate(), 0.0);
  // Priced out, almost every slot is a spray — but a trickle of patched
  // probe connects survives, so the state is not absorbing.
  Rng rng(7);
  int probes = 0;
  for (int i = 0; i < 1000; ++i) {
    if (strat.on_slot(view_at(SimTime::seconds(21), &rng)).action ==
        offense::SlotAction::kConnect) {
      ++probes;
    }
  }
  EXPECT_GT(probes, 0);
  EXPECT_LT(probes, 100);  // ~2% of slots
  // A probe observes the defense easing off (e.g. the §7 adaptive loop
  // stepping m back down) and the plan recovers to solving.
  puzzle::Challenge eased;
  eased.diff = {2, 14};  // ℓ = 2^15 hashes < w
  EXPECT_EQ(strat.on_challenge(view_at(SimTime::seconds(30)), eased),
            offense::ChallengeAction::kSolve);
  EXPECT_GT(strat.planned_solve_rate(), 0.0);
}

TEST(GameAdaptiveStrategy, InfersFreeRideFromUnchallengedEstablishments) {
  offense::GameAdaptiveConfig cfg;
  cfg.valuation = 3e5;
  cfg.slot_rate = 300.0;
  offense::GameAdaptiveStrategy strat(cfg);
  ASSERT_GT(strat.observed_price(), 0.0);

  // Eight unchallenged establishments: the server must be posting no price;
  // the best response becomes "take every slot".
  for (int i = 0; i < 8; ++i) {
    strat.on_outcome(view_at(SimTime::seconds(12)),
                     offense::Outcome::kEstablished);
  }
  EXPECT_EQ(strat.observed_price(), 0.0);
  EXPECT_DOUBLE_EQ(strat.planned_solve_rate(), 300.0);
  Rng rng(3);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(strat.on_slot(view_at(SimTime::seconds(13), &rng)).action,
              offense::SlotAction::kConnect);
  }

  // The first challenge re-posts a price and forces a re-plan.
  puzzle::Challenge nash;
  nash.diff = {2, 17};
  EXPECT_EQ(strat.on_challenge(view_at(SimTime::seconds(14)), nash),
            offense::ChallengeAction::kSolve);
  EXPECT_EQ(strat.observed_price(), nash.diff.expected_solve_hashes());
  EXPECT_LT(strat.planned_solve_rate(), 3.0);
}

TEST(MultiTargetStrategy, RoundRobinsAcrossTargets) {
  offense::MultiTargetStrategy strat({true, false});
  offense::BotView v = view_at(SimTime::seconds(12));
  v.n_targets = 3;
  EXPECT_EQ(strat.on_slot(v).target, 0u);
  EXPECT_EQ(strat.on_slot(v).target, 1u);
  EXPECT_EQ(strat.on_slot(v).target, 2u);
  EXPECT_EQ(strat.on_slot(v).target, 0u);
}

// ---------------------------------------------------------------------------
// End to end through the scenario engine
// ---------------------------------------------------------------------------

scenario::Spec small_base() {
  scenario::Spec s;
  s.duration = SimTime::seconds(80);
  s.attack_start = SimTime::seconds(10);
  s.attack_end = SimTime::seconds(70);
  s.workload.n_clients = 6;
  s.workload.request_rate = 10.0;
  s.workload.response_bytes = 20'000;
  return s;
}

/// Pulsed attack, bursts [10,15) [30,35) [50,55). With a protection hold
/// shorter than the off phase the latch disengages between bursts (plain
/// SYN-ACKs return); with a hold longer than the off phase the pulse rides
/// the hysteresis and clients stay challenged throughout.
scenario::Spec pulsed_spec(SimTime hold) {
  scenario::Spec s = small_base();
  defense::PolicySpec pol = defense::PolicySpec::puzzles();
  pol.protection_hold = hold;
  s.servers.policies = {pol};
  scenario::AttackSpec a;
  a.count = 5;
  a.rate = 500.0;
  a.strategy = offense::StrategySpec::pulsed(SimTime::seconds(20), 0.25,
                                             /*spoofed=*/false,
                                             /*patched=*/false);
  s.attacks = {a};
  return s;
}

TEST(PulsedScenario, AttemptsOnlyInOnWindows) {
  const scenario::Result r = scenario::run(pulsed_spec(SimTime::seconds(5)));
  ASSERT_EQ(r.groups.size(), 1u);
  const auto& g = r.groups[0];
  EXPECT_EQ(g.name, "pulsed");
  // On-windows emit; off-windows are silent (bin edges excluded).
  EXPECT_GT(g.measured_rate(11, 14), 1000.0);
  EXPECT_GT(g.measured_rate(31, 34), 1000.0);
  EXPECT_EQ(g.measured_rate(16, 29), 0.0);
  EXPECT_EQ(g.measured_rate(36, 49), 0.0);
  EXPECT_EQ(g.measured_rate(56, 69), 0.0);
}

TEST(PulsedScenario, ShortHoldDisengagesBetweenBursts) {
  const scenario::Result r = scenario::run(pulsed_spec(SimTime::seconds(5)));
  const auto& srv = r.server();
  // Each burst latches protection (challenges minted)...
  EXPECT_GT(srv.counters.challenges_sent, 0u);
  EXPECT_GT(srv.challenge_synacks.mean_rate(11, 15), 0.0);
  // ...and the 15 s off phase outlives the 5 s hold: clients see plain
  // SYN-ACKs again well before the next burst.
  EXPECT_GT(srv.plain_synacks.mean_rate(24, 29), 0.0);
  EXPECT_EQ(srv.challenge_synacks.mean_rate(24, 29), 0.0);
}

TEST(PulsedScenario, LongHoldRidesThroughOffPhase) {
  const scenario::Result r = scenario::run(pulsed_spec(SimTime::seconds(25)));
  const auto& srv = r.server();
  // hold(25) > off(15): protection never disengages between bursts, so the
  // same off-phase window that went plain under the short hold stays
  // challenged — every fresh client SYN keeps paying the puzzle price.
  // (plain_synacks is not asserted zero here: the queue entries parked by
  // the burst ramp retransmit plain SYN-ACKs regardless of the latch.)
  EXPECT_GT(srv.challenge_synacks.mean_rate(24, 29), 5.0);
}

TEST(GameAdaptiveScenario, EstablishmentTracksPlannedBestResponse) {
  scenario::Spec s = small_base();
  // always_challenge: every attempt sees the posted price, so the attacker
  // observes the difficulty from its first patched attempt on.
  defense::PolicySpec pol = defense::PolicySpec::puzzles();
  pol.always_challenge = true;
  s.servers.policies = {pol};
  scenario::AttackSpec a;
  a.count = 3;
  a.rate = 300.0;
  a.strategy = offense::StrategySpec::game_adaptive(/*valuation=*/3e5);
  s.attacks = {a};
  const scenario::Result r = scenario::run(s);

  game::GameConfig g;
  g.valuations = {3e5};
  g.mu = 1100.0;
  const double x_star =
      game::solve_equilibrium(g, puzzle::Difficulty{2, 17}
                                     .expected_solve_hashes())
          .total_rate;
  ASSERT_GT(x_star, 0.5);
  // Per-bot establishment over the attack window converges near x*(ℓ): the
  // strategy only pays for the slots its best response says to.
  const double window =
      (s.attack_end - s.attack_start).to_seconds();
  for (const auto& bot : r.groups[0].bots) {
    const double rate = static_cast<double>(bot.total_established) / window;
    EXPECT_GT(rate, 0.5 * x_star);
    EXPECT_LT(rate, 1.6 * x_star);
  }
  // The spray half of the split really happened: spoofed SYNs from unowned
  // sources never become connections, so attempts far exceed handshakes.
  EXPECT_GT(r.groups[0].total_attempts(),
            4 * r.groups[0].total_established());
}

TEST(MixedBotnetScenario, PerStrategyCountersSumToAggregate) {
  scenario::Spec s = small_base();
  s.servers.policies = {defense::PolicySpec::puzzles()};
  scenario::AttackSpec xeon;
  xeon.name = "xeon-conn";
  xeon.count = 3;
  xeon.rate = 300.0;
  xeon.strategy = offense::StrategySpec::conn_flood();
  scenario::AttackSpec iot;
  iot.name = "iot-syn";
  iot.count = 2;
  iot.rate = 200.0;
  iot.strategy = offense::StrategySpec::syn_flood();
  iot.cpu = {sim::kIotDevices[0].hash_rate, sim::kIotDevices[0].cores, 1};
  scenario::AttackSpec bogus;
  bogus.name = "bogus";
  bogus.count = 2;
  bogus.rate = 100.0;
  bogus.strategy = offense::StrategySpec::bogus_solution_flood();
  s.attacks = {xeon, iot, bogus};

  const scenario::Result r = scenario::run(s);
  ASSERT_EQ(r.groups.size(), 3u);
  EXPECT_EQ(r.groups[0].bots.size(), 3u);
  EXPECT_EQ(r.groups[1].bots.size(), 2u);
  EXPECT_EQ(r.groups[2].bots.size(), 2u);

  // Group profiles: the SYN flood never completes a handshake; the bogus
  // flood forced verification work (invalid solutions at the server).
  EXPECT_GT(r.groups[0].total_attempts(), 0u);
  EXPECT_EQ(r.groups[1].total_established(), 0u);
  EXPECT_GT(r.groups[1].total_attempts(), 0u);
  EXPECT_GT(r.server().counters.solutions_invalid, 0u);

  // Aggregate helpers are exactly the per-group sums.
  const std::size_t lo = s.attack_start_bin() + 1, hi = s.attack_end_bin();
  double group_rate = 0;
  std::uint64_t attempts = 0, established = 0;
  for (const auto& g : r.groups) {
    group_rate += g.measured_rate(lo, hi);
    attempts += g.total_attempts();
    established += g.total_established();
  }
  EXPECT_DOUBLE_EQ(r.bot_measured_rate(lo, hi), group_rate);
  std::uint64_t flat_attempts = 0, flat_established = 0;
  for (const auto& g : r.groups) {
    for (const auto& b : g.bots) {
      flat_attempts += b.total_attempts;
      flat_established += b.total_established;
    }
  }
  EXPECT_EQ(attempts, flat_attempts);
  EXPECT_EQ(established, flat_established);
  EXPECT_GT(attempts, 0u);
}

TEST(MultiTargetScenario, SpreadsAcrossAddressableServers) {
  scenario::Spec s = small_base();
  s.servers.count = 3;
  s.servers.policies = {defense::PolicySpec::puzzles()};  // everywhere
  scenario::AttackSpec a;
  a.count = 4;
  a.rate = 300.0;
  a.strategy = offense::StrategySpec::multi_target();
  s.attacks = {a};
  const scenario::Result r = scenario::run(s);

  ASSERT_EQ(r.servers.size(), 3u);
  std::uint64_t lo = ~0ull, hi = 0;
  for (const auto& srv : r.servers) {
    lo = std::min(lo, srv.counters.syns_received);
    hi = std::max(hi, srv.counters.syns_received);
  }
  EXPECT_GT(lo, 0u);  // every replica got its share of the flood
  // Round-robin spread: server 0 additionally carries the whole client
  // workload, so compare the attacker-only replicas for evenness.
  EXPECT_GT(r.servers[1].counters.syns_received, 0u);
  EXPECT_GT(r.servers[2].counters.syns_received, 0u);
  const double s1 =
      static_cast<double>(r.servers[1].counters.syns_received);
  const double s2 =
      static_cast<double>(r.servers[2].counters.syns_received);
  EXPECT_LT(std::max(s1, s2) / std::min(s1, s2), 1.25);
  // Cluster counters really aggregate all three listeners.
  EXPECT_EQ(r.cluster.syns_received,
            r.servers[0].counters.syns_received +
                r.servers[1].counters.syns_received +
                r.servers[2].counters.syns_received);
}

}  // namespace
}  // namespace tcpz
