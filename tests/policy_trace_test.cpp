// Golden-trace regression tests for the defense-policy layer.
//
// The policy redesign (src/defense/) replaced the listener's hard-wired
// DefenseMode branches with pluggable policies, under a hard constraint: the
// refactor must be trace-preserving. These tests pin that property down so
// future policy work can't silently drift the reproduction: the fixed-seed
// scaled scenario and a fixed 3-replica fleet scenario are run under each
// legacy mode, the full ListenerCounters struct is digested (FNV-1a over
// every field, in declaration order), and the digest is compared against
// values recorded from the pre-refactor implementation.
//
// If one of these digests changes, either (a) you changed handshake/defense
// semantics — decide explicitly whether that is intended, and if so,
// re-record with the harness below, or (b) you added a ListenerCounters
// field — extend digest() and re-record. Re-recording is a one-liner: print
// digest(counters) from a scratch main, or temporarily EXPECT the digest
// against 0 and copy the failure output.
#include <gtest/gtest.h>

#include "fleet/scenario.hpp"
#include "sim/scenario.hpp"
#include "trace_digest.hpp"

namespace tcpz {
namespace {

using tracedigest::digest;
using tracedigest::fnv;

/// The fixed-seed scaled §6 scenario (seed 42, 120 s, attack 30–80 s).
sim::ScenarioConfig scaled_scenario(tcp::DefenseMode mode) {
  sim::ScenarioConfig cfg;
  cfg = cfg.scaled();
  cfg.defense = mode;
  return cfg;
}

/// A fixed 3-replica fleet scenario exercising rotation, the shared replay
/// cache and a bot mix on a short timeline.
fleet::FleetScenarioConfig fleet_scenario(tcp::DefenseMode mode) {
  fleet::FleetScenarioConfig f;
  f.base.duration = SimTime::seconds(40);
  f.base.attack_start = SimTime::seconds(10);
  f.base.attack_end = SimTime::seconds(30);
  f.base.n_clients = 6;
  f.base.client_rate = 10.0;
  f.base.response_bytes = 20'000;
  f.base.n_bots = 4;
  f.base.bot_rate = 200.0;
  f.base.protection_hold = SimTime::seconds(20);
  f.base.defense = mode;
  f.n_replicas = 3;
  f.rotation_interval = SimTime::seconds(10);
  f.rotation_overlap = SimTime::seconds(3);
  return f;
}

std::uint64_t fleet_replica_digest(const fleet::FleetResult& r) {
  std::uint64_t h = tracedigest::kFnvBasis;
  for (const auto& rep : r.replicas) h = fnv(h, digest(rep.counters));
  return h;
}

// Golden values originally recorded from the pre-refactor
// (DefenseMode-branching) listener at commit e763b18 and reproduced
// byte-for-byte by the policy layer. Re-recorded once when
// drops_listen_full split into drops_queue_overflow + drops_policy (the
// digest input gained a field; every run's *behavior* was verified
// unchanged — the split only renames which bucket each drop lands in), and
// again when the fluid_* counters were appended for the hybrid workload
// layer (eight always-zero fields in these discrete scenarios; the client
// refactor and fluid-aware admission gates were first verified
// byte-for-byte against the previous goldens before the field append).
struct Golden {
  tcp::DefenseMode mode;
  const char* policy_name;
  std::uint64_t sim_digest;
  std::uint64_t fleet_replicas_digest;
  std::uint64_t fleet_cluster_digest;
};

constexpr Golden kGolden[] = {
    {tcp::DefenseMode::kNone, "none", 0x7db6906c4e6938f3ull,
     0xbf8d0af9d8657abeull, 0x7b186a312b421c1bull},
    {tcp::DefenseMode::kSynCookies, "syncookies", 0xa54d6711bab473bfull,
     0x4c0f7d6412492c3bull, 0x8a4fa4f0f6414c17ull},
    {tcp::DefenseMode::kPuzzles, "puzzles", 0xe3fbbfc77c7e7084ull,
     0x23892d9587ae90b0ull, 0x11a00188119118a7ull},
};

class PolicyTrace : public ::testing::TestWithParam<Golden> {};

TEST_P(PolicyTrace, ScaledScenarioMatchesPreRefactorCounters) {
  const Golden& g = GetParam();
  const auto r = sim::run_scenario(scaled_scenario(g.mode));
  const std::uint64_t d = digest(r.server.counters);
  EXPECT_EQ(d, g.sim_digest) << "counter trace drifted for mode "
                             << tcp::to_string(g.mode) << "; computed 0x"
                             << std::hex << d;
  EXPECT_EQ(r.server.policy, g.policy_name);
}

TEST_P(PolicyTrace, FleetScenarioMatchesPreRefactorCounters) {
  const Golden& g = GetParam();
  const auto r = fleet::run_fleet_scenario(fleet_scenario(g.mode));
  const std::uint64_t dr = fleet_replica_digest(r);
  const std::uint64_t dc = digest(r.cluster);
  EXPECT_EQ(dr, g.fleet_replicas_digest)
      << "per-replica counter trace drifted for mode " << tcp::to_string(g.mode)
      << "; computed 0x" << std::hex << dr;
  EXPECT_EQ(dc, g.fleet_cluster_digest)
      << "cluster counter trace drifted for mode " << tcp::to_string(g.mode)
      << "; computed 0x" << std::hex << dc;
  for (const auto& rep : r.replicas) EXPECT_EQ(rep.policy, g.policy_name);
}

INSTANTIATE_TEST_SUITE_P(AllModes, PolicyTrace, ::testing::ValuesIn(kGolden),
                         [](const auto& info) {
                           return std::string(tcp::to_string(info.param.mode));
                         });

// The explicit PolicySpec path must be indistinguishable from the legacy
// DefenseMode shim: same spec, same trace.
TEST(PolicyTrace, ExplicitSpecMatchesLegacyShim) {
  sim::ScenarioConfig cfg = scaled_scenario(tcp::DefenseMode::kPuzzles);
  defense::PolicySpec spec = defense::PolicySpec::puzzles();
  spec.protection_hold = cfg.protection_hold;
  cfg.policy = spec;
  const auto r = sim::run_scenario(cfg);
  EXPECT_EQ(digest(r.server.counters), kGolden[2].sim_digest);
}

}  // namespace
}  // namespace tcpz
