// Tests for the full-segment wire codec (TCP header + checksum) and the UDP
// loopback transport, culminating in a real challenged handshake between
// two threads over actual sockets with real SHA-256 puzzle solving.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "crypto/secret.hpp"
#include "defense/spec.hpp"
#include "offense/spec.hpp"
#include "puzzle/engine.hpp"
#include "scenario/spec.hpp"
#include "shim/udp_transport.hpp"
#include "tcp/connector.hpp"
#include "tcp/listener.hpp"
#include "tcp/wire_format.hpp"
#include "util/rng.hpp"
#include "wire/host.hpp"
#include "wire/storm.hpp"

namespace tcpz::tcp {
namespace {

Segment sample_segment() {
  Segment s;
  s.saddr = ipv4(10, 2, 0, 1);
  s.daddr = ipv4(10, 1, 0, 1);
  s.sport = 40'000;
  s.dport = 80;
  s.seq = 0x12345678;
  s.ack = 0x9abcdef0;
  s.flags = kSyn | kAck;
  s.window = 29'200;
  s.payload_bytes = 777;
  s.options.mss = 1460;
  s.options.wscale = 7;
  s.options.ts = TimestampsOption{111, 222};
  return s;
}

// ---------------------------------------------------------------------------
// Internet checksum
// ---------------------------------------------------------------------------

TEST(InternetChecksum, Rfc1071Example) {
  // The classic example: 00 01 f2 03 f4 f5 f6 f7 -> checksum 0x220d.
  const Bytes data = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(InternetChecksum, OddLengthHandled) {
  const Bytes data = {0x01, 0x02, 0x03};
  // 0x0102 + 0x0300 = 0x0402 -> ~ = 0xfbfd.
  EXPECT_EQ(internet_checksum(data), 0xfbfd);
}

TEST(InternetChecksum, ZeroForComplementedData) {
  Bytes data = {0x12, 0x34, 0x56, 0x78};
  const std::uint16_t csum = internet_checksum(data);
  data.push_back(static_cast<std::uint8_t>(csum >> 8));
  data.push_back(static_cast<std::uint8_t>(csum));
  EXPECT_EQ(internet_checksum(data), 0);
}

// ---------------------------------------------------------------------------
// Segment codec
// ---------------------------------------------------------------------------

TEST(WireCodec, RoundTripPreservesEverything) {
  const Segment s = sample_segment();
  const Bytes wire = encode_segment(s);
  const auto result = decode_segment(wire);
  ASSERT_TRUE(result.segment.has_value()) << to_string(*result.error);
  const Segment& d = *result.segment;
  EXPECT_EQ(d.saddr, s.saddr);
  EXPECT_EQ(d.daddr, s.daddr);
  EXPECT_EQ(d.sport, s.sport);
  EXPECT_EQ(d.dport, s.dport);
  EXPECT_EQ(d.seq, s.seq);
  EXPECT_EQ(d.ack, s.ack);
  EXPECT_EQ(d.flags, s.flags);
  EXPECT_EQ(d.window, s.window);
  EXPECT_EQ(d.payload_bytes, s.payload_bytes);
  EXPECT_EQ(d.options, s.options);
}

TEST(WireCodec, RoundTripWithPuzzleBlocks) {
  Segment s = sample_segment();
  ChallengeOption c;
  c.k = 2;
  c.m = 17;
  c.sol_len = 4;
  c.preimage = {1, 2, 3, 4};
  s.options.challenge = c;
  const auto result = decode_segment(encode_segment(s));
  ASSERT_TRUE(result.segment.has_value());
  EXPECT_EQ(result.segment->options, s.options);
}

TEST(WireCodec, HeaderLengthEncodesOptions) {
  Segment s = sample_segment();  // 12 bytes of options
  const Bytes wire = encode_segment(s);
  const std::uint8_t data_off = wire[kWirePreambleSize + 12] >> 4;
  EXPECT_EQ(data_off * 4u, kTcpHeaderSize + s.options.wire_size());
}

TEST(WireCodec, AnyBitFlipIsDetected) {
  const Segment s = sample_segment();
  const Bytes wire = encode_segment(s);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    Bytes bad = wire;
    const std::size_t byte = rng.uniform_u64(bad.size());
    bad[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform_u64(8));
    const auto result = decode_segment(bad);
    if (result.segment.has_value()) {
      // A flip in the preamble's payload length is outside the TCP checksum;
      // everything else must be caught.
      EXPECT_TRUE(byte >= 8 && byte < 12)
          << "undetected flip at byte " << byte;
    }
  }
}

TEST(WireCodec, TruncationRejected) {
  const Bytes wire = encode_segment(sample_segment());
  for (std::size_t cut = 0; cut < kWirePreambleSize + kTcpHeaderSize; ++cut) {
    const auto result = decode_segment(
        std::span<const std::uint8_t>(wire.data(), cut));
    EXPECT_FALSE(result.segment.has_value());
    EXPECT_EQ(result.error, WireDecodeError::kTruncated);
  }
}

TEST(WireCodec, BadDataOffsetRejected) {
  Bytes wire = encode_segment(sample_segment());
  wire[kWirePreambleSize + 12] = 0xf0;  // claims 60-byte header
  EXPECT_EQ(decode_segment(wire).error, WireDecodeError::kBadDataOffset);
  wire[kWirePreambleSize + 12] = 0x10;  // claims 4-byte header (< minimum)
  EXPECT_EQ(decode_segment(wire).error, WireDecodeError::kBadDataOffset);
}

TEST(WireCodec, ChecksumCoversAddresses) {
  // The pseudo-header binds the addresses: rewriting saddr must invalidate.
  Bytes wire = encode_segment(sample_segment());
  wire[0] ^= 0x01;
  EXPECT_EQ(decode_segment(wire).error, WireDecodeError::kBadChecksum);
}

}  // namespace
}  // namespace tcpz::tcp

namespace tcpz::shim {
namespace {

using namespace tcpz::tcp;

TEST(UdpTransport, BindsEphemeralPort) {
  UdpTransport t(0);
  EXPECT_GT(t.bound_port(), 0);
}

TEST(UdpTransport, SendRecvRoundTrip) {
  UdpTransport a(0), b(0);
  constexpr std::uint32_t kAddrB = ipv4(10, 9, 9, 9);
  a.add_route(kAddrB, b.bound_port());

  Segment s;
  s.saddr = ipv4(10, 8, 8, 8);
  s.daddr = kAddrB;
  s.sport = 1;
  s.dport = 2;
  s.flags = kSyn;
  s.options.mss = 1400;
  ASSERT_TRUE(a.send(s));

  const auto got = b.recv(2000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->daddr, kAddrB);
  EXPECT_EQ(got->options.mss, 1400);
  EXPECT_EQ(a.stats().tx_datagrams, 1u);
  EXPECT_EQ(b.stats().rx_datagrams, 1u);
}

TEST(UdpTransport, UnroutableCounted) {
  UdpTransport a(0);
  Segment s;
  s.daddr = 12345;
  EXPECT_FALSE(a.send(s));
  EXPECT_EQ(a.stats().unroutable, 1u);
}

TEST(UdpTransport, RecvTimesOut) {
  UdpTransport a(0);
  EXPECT_FALSE(a.recv(10).has_value());
}

// ---------------------------------------------------------------------------
// The headline shim test: a real challenged handshake between two threads
// over loopback UDP, with genuine SHA-256 brute-force solving.
// ---------------------------------------------------------------------------

TEST(UdpTransport, RealPuzzleHandshakeOverLoopback) {
  constexpr std::uint32_t kServerAddr = ipv4(10, 1, 0, 1);
  constexpr std::uint32_t kClientAddr = ipv4(10, 2, 0, 1);

  const auto secret = crypto::SecretKey::from_seed(77);
  puzzle::EngineConfig ecfg;
  ecfg.sol_len = 4;
  ecfg.expiry_ms = 60'000;
  auto engine = std::make_shared<puzzle::Sha256PuzzleEngine>(secret, ecfg);

  UdpTransport server_net(0), client_net(0);
  server_net.add_route(kClientAddr, client_net.bound_port());
  client_net.add_route(kServerAddr, server_net.bound_port());

  std::atomic<bool> server_ok{false};

  std::thread server_thread([&] {
    tcp::ListenerConfig lcfg;
    lcfg.local_addr = kServerAddr;
    lcfg.local_port = 80;
    lcfg.mode = tcp::DefenseMode::kPuzzles;
    lcfg.always_challenge = true;
    lcfg.difficulty = {2, 10};
    tcp::Listener listener(lcfg, secret, 1, engine);

    const auto started = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - started <
           std::chrono::seconds(10)) {
      const auto seg = server_net.recv(50);
      const auto now = SimTime::from_seconds(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count());
      if (seg) {
        for (const auto& out : listener.on_segment(now, *seg)) {
          (void)server_net.send(out);
        }
      }
      if (listener.accept(now)) {
        server_ok = true;
        return;
      }
    }
  });

  tcp::ConnectorConfig ccfg;
  ccfg.local_addr = kClientAddr;
  ccfg.local_port = 40'000;
  ccfg.remote_addr = kServerAddr;
  ccfg.remote_port = 80;
  tcp::Connector connector(ccfg, 9);

  bool client_established = false;
  const auto started = std::chrono::steady_clock::now();
  auto out = connector.start(SimTime::zero());
  for (const auto& seg : out.segments) (void)client_net.send(seg);

  while (!client_established &&
         std::chrono::steady_clock::now() - started <
             std::chrono::seconds(10)) {
    const auto seg = client_net.recv(50);
    if (!seg) continue;
    const auto now = SimTime::from_seconds(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count());
    out = connector.on_segment(now, *seg);
    if (out.solve) {
      Rng rng(5);
      std::uint64_t ops = 0;
      const auto sol =
          engine->solve(*out.solve, connector.flow_binding(), rng, ops);
      EXPECT_GT(ops, 0u);
      out = connector.on_solved(now, sol);
    }
    for (const auto& seg2 : out.segments) (void)client_net.send(seg2);
    client_established = out.established;
  }

  server_thread.join();
  EXPECT_TRUE(client_established);
  EXPECT_TRUE(server_ok.load());
}

}  // namespace
}  // namespace tcpz::shim

// ---------------------------------------------------------------------------
// wire::Host + wire::StormClient: the defense layer on actual sockets.
// ---------------------------------------------------------------------------

namespace tcpz::wire {
namespace {

using tcp::ipv4;

constexpr std::uint32_t kServerAddr = ipv4(10, 1, 0, 1);
constexpr std::uint32_t kClientAddr = ipv4(10, 2, 0, 1);

defense::PolicySpec always_puzzles() {
  defense::PolicySpec p = defense::PolicySpec::puzzles();
  p.always_challenge = true;
  return p;
}

std::shared_ptr<puzzle::Sha256PuzzleEngine> test_engine(std::uint64_t seed) {
  puzzle::EngineConfig ecfg;
  ecfg.sol_len = 4;
  ecfg.expiry_ms = 60'000;
  return std::make_shared<puzzle::Sha256PuzzleEngine>(
      crypto::SecretKey::from_seed(seed), ecfg);
}

HostConfig puzzle_host_config() {
  HostConfig hc;
  hc.listener.local_addr = kServerAddr;
  hc.listener.local_port = 80;
  hc.listener.policy = always_puzzles().factory();
  hc.listener.difficulty = {1, 8};  // ~128 hashes/solve: trivial for tests
  hc.listener.listen_backlog = 256;
  hc.listener.accept_backlog = 256;
  return hc;
}

StormConfig storm_config_against(const Host& host) {
  StormConfig sc;
  sc.local_addr = kClientAddr;
  sc.server_addr = kServerAddr;
  sc.server_port = 80;
  sc.server_udp_port = host.bound_port();
  return sc;
}

TEST(WireHost, PatchedStormEstablishesThroughPuzzlePolicy) {
  const auto secret = crypto::SecretKey::from_seed(11);
  Host host(puzzle_host_config(), secret, 1, test_engine(11));
  host.start();

  StormConfig sc = storm_config_against(host);
  sc.conn_rate = 200.0;
  sc.duration = SimTime::milliseconds(500);
  sc.engine = test_engine(999);  // any secret: solving needs only the bytes
  sc.seed = 3;
  StormClient storm(sc, host.clock());
  const StormStats stats = storm.run();

  host.stop();
  host.join();

  EXPECT_GT(stats.attempts, 50u);
  EXPECT_GT(stats.established, 0u);
  EXPECT_EQ(stats.established, stats.solves);
  EXPECT_GT(stats.hash_ops, stats.solves);  // real brute force happened
  EXPECT_GT(stats.connect_ms.count, 0u);

  const tcp::ListenerCounters& c = host.counters();
  EXPECT_EQ(c.challenges_sent, c.syns_received);  // always_challenge
  EXPECT_EQ(c.established_total, c.established_puzzle);
  EXPECT_EQ(c.established_queue, 0u);
  EXPECT_EQ(c.cookies_sent, 0u);
  EXPECT_EQ(c.established_puzzle, stats.established);
  EXPECT_EQ(host.stats().decode_errors, 0u);
  EXPECT_EQ(host.stats().accepted, c.established_total);
}

TEST(WireHost, SpoofedSynFloodChallengedStatelessly) {
  const auto secret = crypto::SecretKey::from_seed(21);
  Host host(puzzle_host_config(), secret, 1, test_engine(21));
  host.start();

  StormConfig sc = storm_config_against(host);
  sc.conn_rate = 400.0;
  sc.duration = SimTime::milliseconds(400);
  sc.strategy = offense::StrategySpec::syn_flood();
  sc.seed = 5;
  StormClient storm(sc, host.clock());
  const StormStats stats = storm.run();

  host.stop();
  host.join();

  EXPECT_GT(stats.spoofed_syns, 50u);
  EXPECT_EQ(stats.established, 0u);

  const tcp::ListenerCounters& c = host.counters();
  // Every spoofed SYN drew a stateless challenge; none ever completed, and
  // no listen-queue state was allocated for any of them.
  EXPECT_EQ(c.syns_received, stats.spoofed_syns);
  EXPECT_EQ(c.challenges_sent, c.syns_received);
  EXPECT_EQ(c.established_total, 0u);
  EXPECT_EQ(host.listener().listen_depth(), 0u);
}

TEST(WireHost, BogusSolutionFloodBurnsVerificationOnly) {
  const auto secret = crypto::SecretKey::from_seed(31);
  Host host(puzzle_host_config(), secret, 1, test_engine(31));
  host.start();

  StormConfig sc = storm_config_against(host);
  sc.conn_rate = 200.0;
  sc.duration = SimTime::milliseconds(400);
  sc.strategy = offense::StrategySpec::bogus_solution_flood();
  sc.seed = 7;
  StormClient storm(sc, host.clock());
  const StormStats stats = storm.run();

  host.stop();
  host.join();

  EXPECT_GT(stats.bogus_acks, 10u);
  const tcp::ListenerCounters& c = host.counters();
  // Garbage solutions force verification work and are all rejected; the
  // 2^-(k*m) guess probability makes an accidental pass effectively
  // impossible at (1, 8) only for single bytes — (k=1, m=8) means 1/256 per
  // guess, so allow the rare lucky one but require the flood to fail.
  EXPECT_GT(c.solutions_invalid, 0u);
  EXPECT_GE(c.solution_acks, c.solutions_invalid);
  EXPECT_LT(c.established_total, stats.bogus_acks / 16);
}

// The headline cross-validation: the same policy code over real sockets and
// in the simulator produces the same ListenerCounters *ratios*. Wall-clock
// scheduling makes absolute wire counts nondeterministic; the decision
// ratios are what the backends must agree on.

TEST(WireHost, CrossValidationCleanPuzzlePath) {
  // Wire run: patched storm against PuzzlePolicy(always_challenge).
  const auto secret = crypto::SecretKey::from_seed(41);
  Host host(puzzle_host_config(), secret, 1, test_engine(41));
  host.start();

  StormConfig sc = storm_config_against(host);
  sc.conn_rate = 300.0;
  sc.duration = SimTime::milliseconds(1500);
  sc.max_inflight = 128;
  sc.engine = test_engine(999);
  sc.seed = 9;
  StormClient storm(sc, host.clock());
  const StormStats stats = storm.run();
  host.stop();
  host.join();
  const tcp::ListenerCounters& wire = host.counters();
  ASSERT_GT(wire.syns_received, 100u);
  EXPECT_EQ(stats.established, wire.established_total);

  // Equivalent sim run: solving clients against the same policy spec.
  scenario::Spec spec;
  spec.seed = 7;
  spec.duration = SimTime::seconds(20);
  spec.attack_start = SimTime::seconds(5);
  spec.attack_end = SimTime::seconds(15);
  spec.workload.n_clients = 8;
  spec.workload.solve_puzzles = true;
  spec.servers.policies = {always_puzzles()};
  spec.servers.difficulty = {1, 8};
  spec.servers.sol_len = 4;
  const auto res = scenario::run(spec);
  const tcp::ListenerCounters& sim = res.cluster;
  ASSERT_GT(sim.syns_received, 100u);

  const auto ratio = [](std::uint64_t a, std::uint64_t b) {
    return b ? static_cast<double>(a) / static_cast<double>(b) : 0.0;
  };
  // Challenge rate: always_challenge answers every SYN with a puzzle.
  const double wire_challenge = ratio(wire.challenges_sent, wire.syns_received);
  const double sim_challenge = ratio(sim.challenges_sent, sim.syns_received);
  EXPECT_NEAR(wire_challenge, sim_challenge, 0.05);
  // Solve-accept rate: patched clients solve, solutions verify, accept has
  // room — nearly every challenge becomes a puzzle-path establishment.
  const double wire_accept = ratio(wire.established_puzzle, wire.challenges_sent);
  const double sim_accept = ratio(sim.established_puzzle, sim.challenges_sent);
  EXPECT_GT(wire_accept, 0.8);
  EXPECT_GT(sim_accept, 0.8);
  EXPECT_NEAR(wire_accept, sim_accept, 0.1);
  // No other admission path fires on either backend.
  EXPECT_EQ(wire.established_queue + wire.established_cookie, 0u);
  EXPECT_EQ(sim.established_queue + sim.established_cookie, 0u);
}

TEST(WireHost, CrossValidationDeceptionDrops) {
  // Wire run: tiny accept queue, application never accepts — valid
  // solutions hit a full queue and are silently ignored (§5 deception).
  const auto secret = crypto::SecretKey::from_seed(51);
  HostConfig hc = puzzle_host_config();
  hc.listener.accept_backlog = 8;
  hc.listener.listen_backlog = 64;
  hc.accept_rate = 0;  // never accept
  Host host(hc, secret, 1, test_engine(51));
  host.start();

  StormConfig sc = storm_config_against(host);
  sc.conn_rate = 300.0;
  sc.duration = SimTime::milliseconds(1500);
  sc.max_inflight = 128;
  sc.engine = test_engine(999);
  sc.seed = 13;
  StormClient storm(sc, host.clock());
  const StormStats stats = storm.run();
  host.stop();
  host.join();
  const tcp::ListenerCounters& wire = host.counters();
  ASSERT_GT(wire.solution_acks, 50u);
  // The deceived clients believe they connected: the storm saw far more
  // establishments than the server admitted.
  EXPECT_GT(stats.established, wire.established_total * 4);

  // Equivalent sim run: patched conn-flood bots against a starved accept
  // queue (one worker, ~10 s service time).
  scenario::Spec spec;
  spec.seed = 17;
  spec.duration = SimTime::seconds(20);
  spec.attack_start = SimTime::seconds(2);
  spec.attack_end = SimTime::seconds(18);
  spec.workload.n_clients = 2;
  spec.workload.solve_puzzles = true;
  spec.servers.policies = {always_puzzles()};
  spec.servers.difficulty = {1, 8};
  spec.servers.sol_len = 4;
  spec.servers.accept_backlog = 8;
  spec.servers.listen_backlog = 64;
  spec.servers.service_rate = 0.1;
  spec.servers.n_workers = 1;
  scenario::AttackSpec atk;
  atk.count = 4;
  atk.rate = 100.0;
  atk.strategy = offense::StrategySpec::conn_flood(/*patched=*/true);
  spec.attacks = {atk};
  const auto res = scenario::run(spec);
  const tcp::ListenerCounters& sim = res.cluster;
  ASSERT_GT(sim.solution_acks, 50u);

  const auto deception = [](const tcp::ListenerCounters& c) {
    return static_cast<double>(c.acks_ignored_accept_full) /
           static_cast<double>(c.solution_acks);
  };
  const double wire_deception = deception(wire);
  const double sim_deception = deception(sim);
  // Both backends: once the 8-slot queue fills, essentially every solution
  // ACK is ignored unverified.
  EXPECT_GT(wire_deception, 0.7);
  EXPECT_GT(sim_deception, 0.7);
  EXPECT_NEAR(wire_deception, sim_deception, 0.15);
}

}  // namespace
}  // namespace tcpz::wire
