// Tests for the full-segment wire codec (TCP header + checksum) and the UDP
// loopback transport, culminating in a real challenged handshake between
// two threads over actual sockets with real SHA-256 puzzle solving.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "crypto/secret.hpp"
#include "puzzle/engine.hpp"
#include "shim/udp_transport.hpp"
#include "tcp/connector.hpp"
#include "tcp/listener.hpp"
#include "tcp/wire.hpp"
#include "util/rng.hpp"

namespace tcpz::tcp {
namespace {

Segment sample_segment() {
  Segment s;
  s.saddr = ipv4(10, 2, 0, 1);
  s.daddr = ipv4(10, 1, 0, 1);
  s.sport = 40'000;
  s.dport = 80;
  s.seq = 0x12345678;
  s.ack = 0x9abcdef0;
  s.flags = kSyn | kAck;
  s.window = 29'200;
  s.payload_bytes = 777;
  s.options.mss = 1460;
  s.options.wscale = 7;
  s.options.ts = TimestampsOption{111, 222};
  return s;
}

// ---------------------------------------------------------------------------
// Internet checksum
// ---------------------------------------------------------------------------

TEST(InternetChecksum, Rfc1071Example) {
  // The classic example: 00 01 f2 03 f4 f5 f6 f7 -> checksum 0x220d.
  const Bytes data = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(InternetChecksum, OddLengthHandled) {
  const Bytes data = {0x01, 0x02, 0x03};
  // 0x0102 + 0x0300 = 0x0402 -> ~ = 0xfbfd.
  EXPECT_EQ(internet_checksum(data), 0xfbfd);
}

TEST(InternetChecksum, ZeroForComplementedData) {
  Bytes data = {0x12, 0x34, 0x56, 0x78};
  const std::uint16_t csum = internet_checksum(data);
  data.push_back(static_cast<std::uint8_t>(csum >> 8));
  data.push_back(static_cast<std::uint8_t>(csum));
  EXPECT_EQ(internet_checksum(data), 0);
}

// ---------------------------------------------------------------------------
// Segment codec
// ---------------------------------------------------------------------------

TEST(WireCodec, RoundTripPreservesEverything) {
  const Segment s = sample_segment();
  const Bytes wire = encode_segment(s);
  const auto result = decode_segment(wire);
  ASSERT_TRUE(result.segment.has_value()) << to_string(*result.error);
  const Segment& d = *result.segment;
  EXPECT_EQ(d.saddr, s.saddr);
  EXPECT_EQ(d.daddr, s.daddr);
  EXPECT_EQ(d.sport, s.sport);
  EXPECT_EQ(d.dport, s.dport);
  EXPECT_EQ(d.seq, s.seq);
  EXPECT_EQ(d.ack, s.ack);
  EXPECT_EQ(d.flags, s.flags);
  EXPECT_EQ(d.window, s.window);
  EXPECT_EQ(d.payload_bytes, s.payload_bytes);
  EXPECT_EQ(d.options, s.options);
}

TEST(WireCodec, RoundTripWithPuzzleBlocks) {
  Segment s = sample_segment();
  ChallengeOption c;
  c.k = 2;
  c.m = 17;
  c.sol_len = 4;
  c.preimage = {1, 2, 3, 4};
  s.options.challenge = c;
  const auto result = decode_segment(encode_segment(s));
  ASSERT_TRUE(result.segment.has_value());
  EXPECT_EQ(result.segment->options, s.options);
}

TEST(WireCodec, HeaderLengthEncodesOptions) {
  Segment s = sample_segment();  // 12 bytes of options
  const Bytes wire = encode_segment(s);
  const std::uint8_t data_off = wire[kWirePreambleSize + 12] >> 4;
  EXPECT_EQ(data_off * 4u, kTcpHeaderSize + s.options.wire_size());
}

TEST(WireCodec, AnyBitFlipIsDetected) {
  const Segment s = sample_segment();
  const Bytes wire = encode_segment(s);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    Bytes bad = wire;
    const std::size_t byte = rng.uniform_u64(bad.size());
    bad[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform_u64(8));
    const auto result = decode_segment(bad);
    if (result.segment.has_value()) {
      // A flip in the preamble's payload length is outside the TCP checksum;
      // everything else must be caught.
      EXPECT_TRUE(byte >= 8 && byte < 12)
          << "undetected flip at byte " << byte;
    }
  }
}

TEST(WireCodec, TruncationRejected) {
  const Bytes wire = encode_segment(sample_segment());
  for (std::size_t cut = 0; cut < kWirePreambleSize + kTcpHeaderSize; ++cut) {
    const auto result = decode_segment(
        std::span<const std::uint8_t>(wire.data(), cut));
    EXPECT_FALSE(result.segment.has_value());
    EXPECT_EQ(result.error, WireDecodeError::kTruncated);
  }
}

TEST(WireCodec, BadDataOffsetRejected) {
  Bytes wire = encode_segment(sample_segment());
  wire[kWirePreambleSize + 12] = 0xf0;  // claims 60-byte header
  EXPECT_EQ(decode_segment(wire).error, WireDecodeError::kBadDataOffset);
  wire[kWirePreambleSize + 12] = 0x10;  // claims 4-byte header (< minimum)
  EXPECT_EQ(decode_segment(wire).error, WireDecodeError::kBadDataOffset);
}

TEST(WireCodec, ChecksumCoversAddresses) {
  // The pseudo-header binds the addresses: rewriting saddr must invalidate.
  Bytes wire = encode_segment(sample_segment());
  wire[0] ^= 0x01;
  EXPECT_EQ(decode_segment(wire).error, WireDecodeError::kBadChecksum);
}

}  // namespace
}  // namespace tcpz::tcp

namespace tcpz::shim {
namespace {

using namespace tcpz::tcp;

TEST(UdpTransport, BindsEphemeralPort) {
  UdpTransport t(0);
  EXPECT_GT(t.bound_port(), 0);
}

TEST(UdpTransport, SendRecvRoundTrip) {
  UdpTransport a(0), b(0);
  constexpr std::uint32_t kAddrB = ipv4(10, 9, 9, 9);
  a.add_route(kAddrB, b.bound_port());

  Segment s;
  s.saddr = ipv4(10, 8, 8, 8);
  s.daddr = kAddrB;
  s.sport = 1;
  s.dport = 2;
  s.flags = kSyn;
  s.options.mss = 1400;
  ASSERT_TRUE(a.send(s));

  const auto got = b.recv(2000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->daddr, kAddrB);
  EXPECT_EQ(got->options.mss, 1400);
  EXPECT_EQ(a.stats().tx_datagrams, 1u);
  EXPECT_EQ(b.stats().rx_datagrams, 1u);
}

TEST(UdpTransport, UnroutableCounted) {
  UdpTransport a(0);
  Segment s;
  s.daddr = 12345;
  EXPECT_FALSE(a.send(s));
  EXPECT_EQ(a.stats().unroutable, 1u);
}

TEST(UdpTransport, RecvTimesOut) {
  UdpTransport a(0);
  EXPECT_FALSE(a.recv(10).has_value());
}

// ---------------------------------------------------------------------------
// The headline shim test: a real challenged handshake between two threads
// over loopback UDP, with genuine SHA-256 brute-force solving.
// ---------------------------------------------------------------------------

TEST(UdpTransport, RealPuzzleHandshakeOverLoopback) {
  constexpr std::uint32_t kServerAddr = ipv4(10, 1, 0, 1);
  constexpr std::uint32_t kClientAddr = ipv4(10, 2, 0, 1);

  const auto secret = crypto::SecretKey::from_seed(77);
  puzzle::EngineConfig ecfg;
  ecfg.sol_len = 4;
  ecfg.expiry_ms = 60'000;
  auto engine = std::make_shared<puzzle::Sha256PuzzleEngine>(secret, ecfg);

  UdpTransport server_net(0), client_net(0);
  server_net.add_route(kClientAddr, client_net.bound_port());
  client_net.add_route(kServerAddr, server_net.bound_port());

  std::atomic<bool> server_ok{false};

  std::thread server_thread([&] {
    tcp::ListenerConfig lcfg;
    lcfg.local_addr = kServerAddr;
    lcfg.local_port = 80;
    lcfg.mode = tcp::DefenseMode::kPuzzles;
    lcfg.always_challenge = true;
    lcfg.difficulty = {2, 10};
    tcp::Listener listener(lcfg, secret, 1, engine);

    const auto started = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - started <
           std::chrono::seconds(10)) {
      const auto seg = server_net.recv(50);
      const auto now = SimTime::from_seconds(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count());
      if (seg) {
        for (const auto& out : listener.on_segment(now, *seg)) {
          (void)server_net.send(out);
        }
      }
      if (listener.accept(now)) {
        server_ok = true;
        return;
      }
    }
  });

  tcp::ConnectorConfig ccfg;
  ccfg.local_addr = kClientAddr;
  ccfg.local_port = 40'000;
  ccfg.remote_addr = kServerAddr;
  ccfg.remote_port = 80;
  tcp::Connector connector(ccfg, 9);

  bool client_established = false;
  const auto started = std::chrono::steady_clock::now();
  auto out = connector.start(SimTime::zero());
  for (const auto& seg : out.segments) (void)client_net.send(seg);

  while (!client_established &&
         std::chrono::steady_clock::now() - started <
             std::chrono::seconds(10)) {
    const auto seg = client_net.recv(50);
    if (!seg) continue;
    const auto now = SimTime::from_seconds(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count());
    out = connector.on_segment(now, *seg);
    if (out.solve) {
      Rng rng(5);
      std::uint64_t ops = 0;
      const auto sol =
          engine->solve(*out.solve, connector.flow_binding(), rng, ops);
      EXPECT_GT(ops, 0u);
      out = connector.on_solved(now, sol);
    }
    for (const auto& seg2 : out.segments) (void)client_net.send(seg2);
    client_established = out.established;
  }

  server_thread.join();
  EXPECT_TRUE(client_established);
  EXPECT_TRUE(server_ok.load());
}

}  // namespace
}  // namespace tcpz::shim
