// Tests for the §7 closed-loop difficulty controller, both in isolation
// (driving counters by hand) and end to end in the simulator.
#include <gtest/gtest.h>

#include "core/adaptive.hpp"
#include "sim/scenario.hpp"

namespace tcpz {
namespace {

tcp::ListenerCounters counters_at(std::uint64_t challenges,
                                  std::uint64_t valid) {
  tcp::ListenerCounters c;
  c.challenges_sent = challenges;
  c.solutions_valid = valid;
  return c;
}

TEST(AdaptiveController, StartsAtBase) {
  AdaptiveDifficultyController ctl({puzzle::Difficulty{2, 17}});
  EXPECT_EQ(ctl.current(), (puzzle::Difficulty{2, 17}));
}

TEST(AdaptiveController, RejectsBadConfig) {
  AdaptiveConfig cfg;
  cfg.base = {2, 17};
  cfg.m_min = 18;  // base below floor
  EXPECT_THROW(AdaptiveDifficultyController{cfg}, std::invalid_argument);
  cfg = {};
  cfg.patience = 0;
  EXPECT_THROW(AdaptiveDifficultyController{cfg}, std::invalid_argument);
  cfg = {};
  cfg.high_demand = 10.0;
  cfg.low_demand = 20.0;  // inverted band
  EXPECT_THROW(AdaptiveDifficultyController{cfg}, std::invalid_argument);
}

TEST(AdaptiveController, StepsUpUnderSustainedDemand) {
  AdaptiveConfig cfg;
  cfg.base = {2, 17};
  cfg.m_max = 20;
  cfg.high_demand = 1000.0;
  cfg.patience = 2;
  AdaptiveDifficultyController ctl(cfg);

  std::uint64_t challenges = 0;
  SimTime t = SimTime::zero();
  (void)ctl.update(t, counters_at(challenges, 0));  // prime
  // 4 periods at 5000 challenges/s: two full patience windows -> m 17 -> 19.
  for (int i = 0; i < 4; ++i) {
    t += SimTime::seconds(1);
    challenges += 5000;
    (void)ctl.update(t, counters_at(challenges, 0));
  }
  EXPECT_EQ(ctl.current().m, 19);
  EXPECT_EQ(ctl.steps_up(), 2u);
  EXPECT_NEAR(ctl.last_demand(), 5000.0, 1.0);
}

TEST(AdaptiveController, SaturatesAtMMax) {
  AdaptiveConfig cfg;
  cfg.base = {2, 17};
  cfg.m_max = 18;
  cfg.patience = 1;
  AdaptiveDifficultyController ctl(cfg);
  std::uint64_t challenges = 0;
  SimTime t = SimTime::zero();
  (void)ctl.update(t, counters_at(0, 0));
  for (int i = 0; i < 10; ++i) {
    t += SimTime::seconds(1);
    challenges += 10'000;
    (void)ctl.update(t, counters_at(challenges, 0));
  }
  EXPECT_EQ(ctl.current().m, 18);  // never beyond m_max
}

TEST(AdaptiveController, RelaxesBackToBaseWhenQuiet) {
  AdaptiveConfig cfg;
  cfg.base = {2, 17};
  cfg.m_max = 20;
  cfg.patience = 1;
  AdaptiveDifficultyController ctl(cfg);
  std::uint64_t challenges = 0;
  SimTime t = SimTime::zero();
  (void)ctl.update(t, counters_at(0, 0));
  // Attack: push to 20.
  for (int i = 0; i < 3; ++i) {
    t += SimTime::seconds(1);
    challenges += 10'000;
    (void)ctl.update(t, counters_at(challenges, 0));
  }
  ASSERT_EQ(ctl.current().m, 20);
  // Quiet: relax one step per patience window, stopping at base.
  for (int i = 0; i < 10; ++i) {
    t += SimTime::seconds(1);
    challenges += 5;  // below low_demand
    (void)ctl.update(t, counters_at(challenges, 0));
  }
  EXPECT_EQ(ctl.current().m, 17);  // back to base, never below
  EXPECT_EQ(ctl.steps_down(), 3u);
}

TEST(AdaptiveController, DeadBandHolds) {
  AdaptiveConfig cfg;
  cfg.base = {2, 17};
  cfg.high_demand = 2000.0;
  cfg.low_demand = 200.0;
  cfg.patience = 1;
  AdaptiveDifficultyController ctl(cfg);
  std::uint64_t challenges = 0;
  SimTime t = SimTime::zero();
  (void)ctl.update(t, counters_at(0, 0));
  for (int i = 0; i < 5; ++i) {
    t += SimTime::seconds(1);
    challenges += 1000;  // inside the dead band
    (void)ctl.update(t, counters_at(challenges, 0));
  }
  EXPECT_EQ(ctl.current().m, 17);
  EXPECT_EQ(ctl.steps_up(), 0u);
  EXPECT_EQ(ctl.steps_down(), 0u);
}

TEST(AdaptiveController, SubPeriodCallsIgnored) {
  AdaptiveConfig cfg;
  cfg.patience = 1;
  AdaptiveDifficultyController ctl(cfg);
  (void)ctl.update(SimTime::zero(), counters_at(0, 0));
  // 10 calls within one period must not consume the counter deltas.
  for (int i = 1; i <= 10; ++i) {
    (void)ctl.update(SimTime::milliseconds(i * 50),
                     counters_at(static_cast<std::uint64_t>(i) * 1000, 0));
  }
  EXPECT_EQ(ctl.current().m, cfg.base.m);
  (void)ctl.update(SimTime::milliseconds(1100), counters_at(11'000, 0));
  EXPECT_NEAR(ctl.last_demand(), 10'000.0, 100.0);
}

TEST(AdaptiveController, ReportsYield) {
  AdaptiveConfig cfg;
  AdaptiveDifficultyController ctl(cfg);
  (void)ctl.update(SimTime::zero(), counters_at(0, 0));
  (void)ctl.update(SimTime::seconds(1), counters_at(1000, 400));
  EXPECT_NEAR(ctl.last_yield(), 0.4, 1e-9);
}

// ---------------------------------------------------------------------------
// End to end: the controller hardens during a flood and relaxes afterwards.
// ---------------------------------------------------------------------------

TEST(AdaptiveController, EndToEndHardensAndRelaxes) {
  sim::ScenarioConfig cfg;
  cfg.seed = 11;
  cfg.duration = SimTime::seconds(60);
  cfg.attack_start = SimTime::seconds(10);
  cfg.attack_end = SimTime::seconds(30);
  cfg.n_clients = 4;
  cfg.client_rate = 10.0;
  cfg.response_bytes = 20'000;
  cfg.n_bots = 4;
  cfg.bot_rate = 800.0;
  cfg.listen_backlog = 256;
  cfg.accept_backlog = 256;
  cfg.service_rate = 300.0;
  cfg.attack = sim::AttackType::kConnFlood;
  cfg.defense = tcp::DefenseMode::kPuzzles;
  cfg.difficulty = {2, 15};
  cfg.protection_hold = SimTime::seconds(10);  // let demand fall post-attack

  AdaptiveConfig actl;
  actl.base = {2, 15};
  actl.m_max = 20;
  actl.high_demand = 1000.0;
  actl.low_demand = 100.0;
  actl.patience = 2;
  cfg.adaptive = actl;

  const auto res = sim::run_scenario(cfg);

  const double m_before =
      res.server.difficulty_m.mean_in(SimTime::seconds(1), SimTime::seconds(9));
  const double m_during = res.server.difficulty_m.max_in(
      SimTime::seconds(15), SimTime::seconds(30));
  const double m_end = res.server.difficulty_m.mean_in(SimTime::seconds(55),
                                                       SimTime::seconds(60));
  EXPECT_DOUBLE_EQ(m_before, 15.0) << "no hardening without an attack";
  EXPECT_GT(m_during, 15.0) << "controller must harden under the flood";
  EXPECT_LT(m_end, m_during) << "controller must relax after the flood";
}

}  // namespace
}  // namespace tcpz
