// Figure 8 / Experiment 2, second scenario: throughput during a distributed
// connection flood for none / cookies / challenges (2,17), plus the
// challenge-vs-plain SYN-ACK sparkline.
//
// Paper shape: both no-defence and SYN cookies collapse to zero (cookies do
// not protect the accept queue); Nash puzzles hold ~40% of nominal, with
// periodic spikes from the opportunistic controller's openings.
#include "bench_common.hpp"

using namespace tcpz;

int main(int argc, char** argv) {
  const auto args = benchutil::parse(argc, argv);
  const scenario::Spec base = benchutil::paper_spec(args);

  benchutil::header(
      "Figure 8: throughput during a connection flood",
      "cookies fail like no-defence; Nash puzzles retain a large fraction of "
      "nominal throughput with opportunistic no-challenge openings");

  struct Case {
    const char* name;
    defense::PolicySpec spec;
  } cases[] = {
      {"nodefense", defense::PolicySpec::none()},
      {"cookies", defense::PolicySpec::syn_cookies()},
      {"challenges-m17", defense::PolicySpec::puzzles()},
  };

  scenario::Result results[3];
  double pre[3], during[3];
  for (int i = 0; i < 3; ++i) {
    scenario::Spec spec = base;
    spec.servers.policies = {cases[i].spec};
    scenario::AttackSpec atk;
    // Raw nping flood: a legacy stack that plain-ACKs challenges.
    atk.strategy = offense::StrategySpec::conn_flood(/*patched=*/false);
    spec.attacks = {atk};
    results[i] = benchutil::run_scenario(spec, args, cases[i].name);
    benchutil::label((std::string("policy_") + cases[i].name).c_str(),
                     results[i].server().policy);
    pre[i] = results[i].client_rx_mbps(benchutil::pre_lo(spec),
                                       benchutil::pre_hi(spec));
    during[i] = results[i].client_rx_mbps(benchutil::atk_lo(spec),
                                          benchutil::atk_hi(spec));
  }

  const std::size_t bins = base.duration_bins();
  std::printf("server throughput (Mbps), 10-second bins:\n%-8s", "t(s)");
  for (const auto& c : cases) std::printf(" %16s", c.name);
  std::printf("   challenge/plain SYN-ACKs (puzzles case)\n");
  for (std::size_t t = 0; t + 10 <= bins; t += 10) {
    std::printf("%-8zu", t);
    for (auto& result : results) {
      std::printf(" %16.1f", result.server().tx_mbps(t, t + 10));
    }
    const double chal =
        results[2].server().challenge_synacks.mean_rate(t, t + 10);
    const double plain = results[2].server().plain_synacks.mean_rate(t, t + 10);
    std::printf("   %7.0f/%-7.0f\n", chal, plain);
  }
  std::printf("(attack window: %zu-%zu s)\n", base.attack_start_bin(),
              base.attack_end_bin());

  std::printf("\naggregate client goodput (Mbps):\n");
  std::printf("%-18s %12s %12s %10s\n", "defense", "pre-attack", "attack",
              "ratio");
  for (int i = 0; i < 3; ++i) {
    std::printf("%-18s %12.2f %12.2f %9.0f%%\n", cases[i].name, pre[i],
                during[i], 100.0 * during[i] / std::max(pre[i], 1e-9));
  }

  benchutil::check("no defence collapses below 15% of nominal",
                   during[0] < pre[0] * 0.15);
  benchutil::check("SYN cookies also collapse below 15% of nominal "
                   "(connection floods bypass them)",
                   during[1] < pre[1] * 0.15);
  // Clients are limited by their serial in-kernel solver: 2.7 conn/s out of
  // a 20 req/s demand is ~13%. The paper reports ~40%, which requires the
  // opening bursts its Fig. 8 spikes show; see EXPERIMENTS.md.
  benchutil::check("Nash puzzles retain >= 10% of nominal",
                   during[2] > pre[2] * 0.10);
  benchutil::check("puzzles beat cookies by more than 2x during the flood",
                   during[2] > during[1] * 2.0);

  const auto& srv = results[2].server();
  benchutil::check("challenges dominate SYN-ACKs during the attack",
                   srv.challenge_synacks.mean_rate(benchutil::atk_lo(base),
                                                   benchutil::atk_hi(base)) >
                       srv.plain_synacks.mean_rate(benchutil::atk_lo(base),
                                                   benchutil::atk_hi(base)));
  benchutil::check("opportunistic plain SYN-ACKs exist during the attack "
                   "(dark ticks)",
                   srv.plain_synacks.mean_rate(base.attack_start_bin(),
                                               base.attack_end_bin()) > 0.0);

  return benchutil::finish();
}
