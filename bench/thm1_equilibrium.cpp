// Theorem 1 / Equation 6 and the §4.4 example: the Stackelberg equilibrium
// puzzle difficulty. Reproduces the finite-N leader optimum converging to
// the asymptotic Nash price and the (k*, m*) = (2, 17) example.
#include "bench_common.hpp"
#include "game/model.hpp"
#include "game/planner.hpp"

using namespace tcpz;

int main(int argc, char** argv) {
  (void)benchutil::parse(argc, argv);

  benchutil::header(
      "Theorem 1 / Eq. 6: Nash equilibrium puzzle difficulty",
      "k* 2^(m*-1) = w_av/(alpha+1) asymptotically; example (w_av=140630, "
      "alpha=1.1) => (k=2, m=17)");

  const double w_av = 140'630.0;
  const double alpha = 1.1;
  const double limit = game::asymptotic_nash_price(w_av, alpha);
  std::printf("asymptotic Nash price w_av/(alpha+1) = %.1f hashes/request\n\n",
              limit);

  std::printf("finite-N leader optimum (uniform valuations w_av, mu = alpha*N):\n");
  std::printf("%-10s %16s %16s %14s\n", "N", "optimal price", "total rate",
              "price/limit");
  double last_ratio = 0;
  for (const std::size_t n : {10u, 50u, 200u, 1000u, 5000u}) {
    game::GameConfig cfg;
    cfg.valuations.assign(n, w_av);
    cfg.mu = alpha * static_cast<double>(n);
    const auto sol = game::optimal_price(cfg);
    last_ratio = sol.price / limit;
    std::printf("%-10zu %16.1f %16.3f %14.4f\n", n, sol.price, sol.total_rate,
                last_ratio);
  }
  benchutil::check("finite-N optimal price converges to the asymptotic form",
                   std::abs(last_ratio - 1.0) < 0.03);

  std::printf("\nfeasibility bound (Eq. 10) and dropped users:\n");
  {
    game::GameConfig cfg;
    cfg.valuations.assign(100, w_av);
    cfg.mu = 110.0;
    const double r_hat = game::max_feasible_price(cfg);
    std::printf("r_hat = %.1f; equilibrium exists below, vanishes above:\n",
                r_hat);
    for (const double f : {0.5, 0.9, 1.1}) {
      const auto eq = game::solve_equilibrium(cfg, f * r_hat);
      std::printf("  price = %.2f r_hat -> total rate %.3f (exists=%d)\n", f,
                  eq.total_rate, eq.exists ? 1 : 0);
    }
    benchutil::check("equilibrium vanishes above r_hat",
                     !game::solve_equilibrium(cfg, 1.1 * r_hat).exists);
  }

  std::printf("\nprovisioning tradeoff (§4.2): better-provisioned servers ask "
              "for easier puzzles\n");
  std::printf("%-10s %16s %10s\n", "alpha", "price (hashes)", "(k, m)");
  double prev_price = 1e18;
  bool monotone = true;
  for (const double a : {0.25, 0.5, 1.1, 2.0, 4.0}) {
    const double price = game::asymptotic_nash_price(w_av, a);
    const auto d = game::choose_difficulty(price);
    std::printf("%-10.2f %16.1f %10s\n", a, price, d.to_string().c_str());
    monotone = monotone && price < prev_price;
    prev_price = price;
  }
  benchutil::check("price strictly decreases with provisioning alpha", monotone);

  std::printf("\n§4.4 example, both readings of Theorem 1 (see EXPERIMENTS.md):\n");
  const auto appendix = game::choose_difficulty(
      game::nash_hash_target(w_av, alpha, game::NashForm::kAppendix));
  const auto example = game::choose_difficulty(
      game::nash_hash_target(w_av, alpha, game::NashForm::kPaperExample));
  std::printf("  appendix form  w_av/(alpha+1): %s\n", appendix.to_string().c_str());
  std::printf("  paper example  ~w_av:          %s  (the (2,17) the paper deploys)\n",
              example.to_string().c_str());
  benchutil::check("paper-example form yields (2, 17)",
                   example.k == 2 && example.m == 17);
  benchutil::check("appendix form yields the half-price (2, 16)",
                   appendix.k == 2 && appendix.m == 16);

  const puzzle::Difficulty nash{2, 17};
  std::printf("\nNash puzzle properties: expected solve %.0f hashes, verify "
              "%.1f hashes, guess probability 2^-%u\n",
              nash.expected_solve_hashes(), nash.expected_verify_hashes(),
              nash.guess_bits());
  benchutil::check("client/server cost asymmetry exceeds 10^4",
                   nash.expected_solve_hashes() / nash.expected_verify_hashes() >
                       1e4);

  return benchutil::finish();
}
