// Figure 15 / Experiment 5: partial adoption. Percentage of established
// client connections when the attacker and/or the clients do not run the
// puzzle-enabled stack, under a connection flood:
//   (NA, NC): neither solves    -> clients denied (near 0%)
//   (SA, NC): attacker solves, clients do not -> erratic, sometimes 0%
//   (*A, SC): clients solve     -> almost always served, either attacker
//
// Legacy (non-solving) endpoints ignore the challenge TCP option, ACK
// blindly and only learn from the RST on their first data segment.
#include "bench_common.hpp"

using namespace tcpz;

namespace {

struct Case {
  const char* name;
  bool bots_solve;
  bool clients_solve;
};

double established_pct(const sim::ScenarioResult& res,
                       const sim::ScenarioConfig& cfg) {
  // Percentage of attack-window wire attempts that completed a request. The
  // paper's clients are closed-loop, so attempts the local solver refused
  // before any packet was sent do not enter the denominator.
  double attempts = 0, completions = 0, refused = 0;
  for (const auto& c : res.clients) {
    for (std::size_t t = benchutil::atk_lo(cfg); t < benchutil::atk_hi(cfg);
         ++t) {
      attempts += c.attempts.total(t);
      completions += c.completions.total(t);
      refused += c.refusals.total(t);
    }
  }
  const double wire = attempts - refused;
  return wire > 0 ? 100.0 * completions / wire : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::parse(argc, argv);
  auto base = benchutil::paper_scenario(args);
  base.attack = sim::AttackType::kConnFlood;
  base.defense = tcp::DefenseMode::kPuzzles;
  base.difficulty = {2, 17};

  benchutil::header(
      "Figure 15: adoption scenarios (percentage of established connections)",
      "solving clients are served under either attacker; non-solving clients "
      "get erratic service vs a solving attacker and none vs a flooding one");

  const Case cases[] = {
      {"(NA,NC) non-solving attacker, non-solving clients", false, false},
      {"(SA,NC) solving attacker, non-solving clients", true, false},
      {"(NA,SC) non-solving attacker, solving clients", false, true},
      {"(SA,SC) solving attacker, solving clients", true, true},
  };

  double pct[4];
  for (int i = 0; i < 4; ++i) {
    sim::ScenarioConfig cfg = base;
    cfg.seed = args.seed + static_cast<std::uint64_t>(i);
    cfg.bots_solve = cases[i].bots_solve;
    cfg.clients_solve = cases[i].clients_solve;
    const auto res = sim::run_scenario(cfg);
    pct[i] = established_pct(res, cfg);
    std::printf("%-55s %6.1f%%\n", cases[i].name, pct[i]);
  }
  const double sc_min = std::min(pct[2], pct[3]);

  benchutil::check("(NA,NC): non-solving clients vs flood get < 25%",
                   pct[0] < 25.0);
  // Our controller holds protection longer than the paper's, so the openings
  // that gave the paper's (SA,NC) its erratic bursts are rarer here; the
  // ordering (no worse than (NA,NC), far worse than solving clients) is the
  // claim that must survive.
  benchutil::check("(SA,NC): no worse than (NA,NC), still degraded (< 85%)",
                   pct[1] >= pct[0] && pct[1] < 85.0);
  benchutil::check("(*A,SC): solving clients get >= 60% against either "
                   "attacker type",
                   sc_min >= 60.0);
  benchutil::check("solving clients always beat non-solving clients",
                   sc_min > std::max(pct[0], pct[1]));

  return benchutil::finish();
}
