// Figure 15 / Experiment 5: partial adoption. Percentage of established
// client connections when the attacker and/or the clients do not run the
// puzzle-enabled stack, under a connection flood:
//   (NA, NC): neither solves    -> clients denied (near 0%)
//   (SA, NC): attacker solves, clients do not -> erratic, sometimes 0%
//   (*A, SC): clients solve     -> almost always served, either attacker
//
// Legacy (non-solving) endpoints ignore the challenge TCP option, ACK
// blindly and only learn from the RST on their first data segment.
#include "bench_common.hpp"

using namespace tcpz;

namespace {

struct Case {
  const char* name;
  bool bots_solve;
  bool clients_solve;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::parse(argc, argv);
  scenario::Spec base = benchutil::paper_spec(args);
  base.servers.policies = {defense::PolicySpec::puzzles()};

  benchutil::header(
      "Figure 15: adoption scenarios (percentage of established connections)",
      "solving clients are served under either attacker; non-solving clients "
      "get erratic service vs a solving attacker and none vs a flooding one");

  const Case cases[] = {
      {"(NA,NC) non-solving attacker, non-solving clients", false, false},
      {"(SA,NC) solving attacker, non-solving clients", true, false},
      {"(NA,SC) non-solving attacker, solving clients", false, true},
      {"(SA,SC) solving attacker, solving clients", true, true},
  };

  double pct[4];
  for (int i = 0; i < 4; ++i) {
    scenario::Spec spec = base;
    spec.seed = args.seed + static_cast<std::uint64_t>(i);
    spec.workload.solve_puzzles = cases[i].clients_solve;
    scenario::AttackSpec atk;
    atk.strategy = offense::StrategySpec::conn_flood(cases[i].bots_solve);
    spec.attacks = {atk};
    const auto res =
        benchutil::run_scenario(spec, args, "case" + std::to_string(i));
    // Percentage of attack-window wire attempts that completed a request;
    // solver-refused attempts never reach the wire and are excluded, as in
    // the paper's closed-loop measurement.
    pct[i] = res.client_wire_success_pct(benchutil::atk_lo(spec),
                                         benchutil::atk_hi(spec));
    std::printf("%-55s %6.1f%%\n", cases[i].name, pct[i]);
  }
  const double sc_min = std::min(pct[2], pct[3]);

  benchutil::check("(NA,NC): non-solving clients vs flood get < 25%",
                   pct[0] < 25.0);
  // Our controller holds protection longer than the paper's, so the openings
  // that gave the paper's (SA,NC) its erratic bursts are rarer here; the
  // ordering (no worse than (NA,NC), far worse than solving clients) is the
  // claim that must survive.
  benchutil::check("(SA,NC): no worse than (NA,NC), still degraded (< 85%)",
                   pct[1] >= pct[0] && pct[1] < 85.0);
  benchutil::check("(*A,SC): solving clients get >= 60% against either "
                   "attacker type",
                   sc_min >= 60.0);
  benchutil::check("solving clients always beat non-solving clients",
                   sc_min > std::max(pct[0], pct[1]));

  return benchutil::finish();
}
