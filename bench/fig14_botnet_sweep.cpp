// Figure 14 / Experiment 4, second scenario: the botnet size swept 2..14
// machines with the cumulative attempted rate fixed at 5000 pps
// (per-node rate = 5000 / size), against Nash-difficulty puzzles.
//
// Paper shape: the completed-connection rate grows roughly linearly with the
// number of machines (each bot contributes one solver), but only reaches
// ~25 cps at 14 machines — two orders of magnitude below the measured
// attack rate. The attacker must grow the botnet ~200x to regain its
// unprotected effectiveness.
#include "bench_common.hpp"

using namespace tcpz;

int main(int argc, char** argv) {
  const auto args = benchutil::parse(argc, argv);
  scenario::Spec base = benchutil::paper_spec(args);
  if (!args.full) {
    base.duration = SimTime::seconds(90);
    base.attack_start = SimTime::seconds(20);
    base.attack_end = SimTime::seconds(70);
  }
  base.servers.policies = {defense::PolicySpec::puzzles()};

  benchutil::header(
      "Figure 14: effect of the botnet size (total 5000 pps)",
      "completed connections grow ~linearly with the number of machines but "
      "stay ~100x below the measured attack rate");

  const double total_rate = 5000.0;
  std::printf("%-10s %16s %18s %18s %14s\n", "bots", "rate/node",
              "measured (pps)", "completed (cps)", "meas/compl");
  std::vector<int> sizes = {2, 4, 6, 8, 10, 12, 14};
  std::vector<double> completed, measured;
  for (const int n : sizes) {
    scenario::Spec spec = base;
    spec.seed = args.seed + static_cast<std::uint64_t>(n);
    scenario::AttackSpec atk;
    atk.count = n;
    atk.rate = total_rate / n;
    atk.strategy = offense::StrategySpec::conn_flood();
    spec.attacks = {atk};
    const auto res =
        benchutil::run_scenario(spec, args, "bots" + std::to_string(n));
    const std::size_t a = benchutil::atk_lo(spec), b = benchutil::atk_hi(spec);
    const double meas = res.bot_measured_rate(a, b);
    const double comp = res.server().attacker_cps(a, b);
    measured.push_back(meas);
    completed.push_back(comp);
    std::printf("%-10d %16.0f %18.1f %18.2f %14.0f\n", n, total_rate / n, meas,
                comp, meas / std::max(comp, 1e-9));
  }

  benchutil::check("completed rate grows with botnet size",
                   completed.back() > completed.front() * 2.0);
  benchutil::check(
      "growth is roughly linear in the number of machines (0.4x-2.5x of "
      "proportional)",
      [&] {
        const double per_bot_small = completed.front() / sizes.front();
        const double per_bot_big = completed.back() / sizes.back();
        const double ratio = per_bot_big / std::max(per_bot_small, 1e-9);
        return ratio > 0.4 && ratio < 2.5;
      }());
  benchutil::check("completed rate stays ~2 orders below the measured rate",
                   [&] {
                     for (std::size_t i = 0; i < completed.size(); ++i) {
                       if (measured[i] < 25.0 * std::max(completed[i], 0.5)) {
                         return false;
                       }
                     }
                     return true;
                   }());

  // The §1/§6.4 claim: reaching an effective 5000 cps at the observed per-bot
  // contribution takes hundreds of machines.
  const double per_bot = completed.back() / sizes.back();
  const double needed = 5000.0 / std::max(per_bot, 1e-9);
  std::printf("\nper-bot contribution: %.2f cps => a 5000 cps effective "
              "attack needs ~%.0f machines\n",
              per_bot, needed);
  benchutil::check("an effective 5000 cps attack needs hundreds of machines",
                   needed > 300.0);

  return benchutil::finish();
}
