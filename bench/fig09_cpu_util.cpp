// Figure 9 / Experiment 2: CPU utilisation of client, server and attacker
// machines during a connection flood with Nash-difficulty puzzles.
//
// Paper shape: server stays below 5% (generation + verification are cheap);
// clients rise but stay under ~20%; attackers spike far above the clients.
#include "bench_common.hpp"

using namespace tcpz;

int main(int argc, char** argv) {
  const auto args = benchutil::parse(argc, argv);
  sim::ScenarioConfig cfg = benchutil::paper_scenario(args);
  cfg.attack = sim::AttackType::kConnFlood;
  cfg.bots_solve = false;  // raw nping flood bypasses the bot kernel solver
  cfg.defense = tcp::DefenseMode::kPuzzles;
  cfg.difficulty = {2, 17};

  benchutil::header(
      "Figure 9: CPU utilisation during a connection flood (Nash puzzles)",
      "server < 5%; clients < 20% (avg ~10%); attackers spike far higher");

  const auto res = sim::run_scenario(cfg);

  const std::size_t bins = cfg.duration_bins();
  std::printf("%-8s %10s %10s %10s\n", "t(s)", "client%", "server%",
              "attacker%");
  for (std::size_t t = 0; t + 10 <= bins; t += 10) {
    const SimTime a = SimTime::seconds(static_cast<std::int64_t>(t));
    const SimTime b = a + SimTime::seconds(10);
    std::printf("%-8zu %10.1f %10.1f %10.1f\n", t,
                100.0 * res.mean_client_cpu(a, b),
                100.0 * res.server.cpu.mean_in(a, b),
                100.0 * res.mean_bot_cpu(a, b));
  }
  std::printf("(attack window: %zu-%zu s)\n", cfg.attack_start_bin(),
              cfg.attack_end_bin());

  const SimTime w0 = SimTime::seconds(
      static_cast<std::int64_t>(benchutil::atk_lo(cfg)));
  const SimTime w1 = SimTime::seconds(
      static_cast<std::int64_t>(benchutil::atk_hi(cfg)));
  const double server_cpu = res.server.cpu.mean_in(w0, w1);
  const double client_cpu = res.mean_client_cpu(w0, w1);
  const double bot_cpu = res.mean_bot_cpu(w0, w1);
  double bot_peak = 0;
  for (const auto& b : res.bots) bot_peak = std::max(bot_peak, b.cpu.max_in(w0, w1));

  std::printf("\nattack-window means: client %.1f%%, server %.2f%%, attacker "
              "%.1f%% (peak %.1f%%)\n",
              100 * client_cpu, 100 * server_cpu, 100 * bot_cpu,
              100 * bot_peak);

  benchutil::check("server CPU stays below 5% (puzzle overhead negligible)",
                   server_cpu < 0.05);
  benchutil::check("client CPU stays below 30% during the attack",
                   client_cpu < 0.30);
  benchutil::check("attacker CPU well above client CPU",
                   bot_cpu > client_cpu * 1.5);
  benchutil::check("attacker CPU spikes above 35%", bot_peak > 0.35);

  const SimTime pre0 = SimTime::seconds(
      static_cast<std::int64_t>(benchutil::pre_lo(cfg)));
  const SimTime pre1 = SimTime::seconds(
      static_cast<std::int64_t>(benchutil::pre_hi(cfg)));
  benchutil::check("client CPU rises during the attack (it is solving)",
                   client_cpu > res.mean_client_cpu(pre0, pre1) + 0.02);

  return benchutil::finish();
}
