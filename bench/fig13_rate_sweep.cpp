// Figure 13 / Experiment 4, first scenario: 5 bots, per-node attack rate
// swept 100..1000 pps, against Nash-difficulty puzzles.
//
// Paper shape: the measured (emitted) attack rate grows with the configured
// rate but saturates well below the attempted rate; the completed-connection
// rate stays essentially flat (~11 cps) regardless of the per-node rate —
// raising the rate buys the attacker nothing.
#include "bench_common.hpp"

using namespace tcpz;

int main(int argc, char** argv) {
  const auto args = benchutil::parse(argc, argv);
  scenario::Spec base = benchutil::paper_spec(args);
  if (!args.full) {
    base.duration = SimTime::seconds(90);
    base.attack_start = SimTime::seconds(20);
    base.attack_end = SimTime::seconds(70);
  }
  base.servers.policies = {defense::PolicySpec::puzzles()};
  const int n_bots = 5;

  benchutil::header(
      "Figure 13: effect of the per-node attack rate (5 bots)",
      "measured attack rate saturates below the attempted rate; completed "
      "connections stay flat (~11 cps) as the rate grows");

  std::printf("%-18s %16s %18s %18s\n", "rate/node (pps)", "attempted",
              "measured (pps)", "completed (cps)");
  std::vector<double> completed, measured;
  for (const double rate : {100.0, 200.0, 400.0, 600.0, 800.0, 1000.0}) {
    scenario::Spec spec = base;
    spec.seed = args.seed + static_cast<std::uint64_t>(rate);
    scenario::AttackSpec atk;
    atk.count = n_bots;
    atk.rate = rate;
    atk.strategy = offense::StrategySpec::conn_flood();
    spec.attacks = {atk};
    const auto res = benchutil::run_scenario(
        spec, args, "rate" + std::to_string(static_cast<int>(rate)));
    const std::size_t a = benchutil::atk_lo(spec), b = benchutil::atk_hi(spec);
    const double meas = res.bot_measured_rate(a, b);
    const double comp = res.server().attacker_cps(a, b);
    measured.push_back(meas);
    completed.push_back(comp);
    std::printf("%-18.0f %16.0f %18.1f %18.2f\n", rate, rate * n_bots, meas,
                comp);
  }

  benchutil::check("measured attack rate grows with the per-node rate",
                   measured.back() > measured.front());
  benchutil::check("measured rate saturates below 60% of attempted at the "
                   "highest setting",
                   measured.back() < 0.6 * 1000.0 * n_bots);
  benchutil::check("completion rate is flat: max/min <= 3 across the sweep",
                   [&] {
                     double lo = 1e18, hi = 0;
                     for (double c : completed) {
                       lo = std::min(lo, c);
                       hi = std::max(hi, c);
                     }
                     return hi <= 3.0 * std::max(lo, 0.5);
                   }());
  benchutil::check("completion rate stays below 30 cps at every setting",
                   [&] {
                     for (double c : completed) {
                       if (c >= 30.0) return false;
                     }
                     return true;
                   }());

  return benchutil::finish();
}
