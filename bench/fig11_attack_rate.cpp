// Figure 11 / Experiment 2: effective attack rate (established connections
// per second across the whole botnet) during a connection flood —
// challenges vs cookies.
//
// Paper shape: cookies leave the attack rate untouched (avg 225 cps);
// challenges throttle it to a few cps — a reduction of more than an order
// of magnitude (paper: factor 37).
#include "bench_common.hpp"

using namespace tcpz;

namespace {

/// The §6 botnet (10 Xeon-class bots at 500 pps) under the given policy.
tcpz::scenario::AttackSpec botnet(bool bots_solve) {
  tcpz::scenario::AttackSpec atk;
  atk.strategy = offense::StrategySpec::conn_flood(bots_solve);
  return atk;
}

tcpz::scenario::Spec flood_spec(const tcpz::scenario::Spec& base,
                                defense::PolicySpec policy,
                                const tcpz::scenario::AttackSpec& atk) {
  tcpz::scenario::Spec s = base;
  s.servers.policies = {policy};
  s.attacks = {atk};
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::parse(argc, argv);
  const scenario::Spec base = benchutil::paper_spec(args);

  benchutil::header(
      "Figure 11: effective attacker established-connection rate",
      "cookies: hundreds of cps; challenges: a few cps (factor ~37 less)");

  // Raw nping floods (bots_solve = false) bypass the bot kernel solver.
  const auto with_chal = benchutil::run_scenario(
      flood_spec(base, defense::PolicySpec::puzzles(), botnet(false)), args,
      "challenges");
  const auto with_cook = benchutil::run_scenario(
      flood_spec(base, defense::PolicySpec::syn_cookies(), botnet(false)),
      args, "cookies");

  std::printf("attacker established connections per second, 10 s bins:\n");
  std::printf("%-8s %18s %18s\n", "t(s)", "with challenges", "with cookies");
  for (std::size_t t = base.attack_start_bin(); t < base.attack_end_bin();
       t += 10) {
    std::printf("%-8zu %18.1f %18.1f\n", t,
                with_chal.server().attacker_cps(t, t + 10),
                with_cook.server().attacker_cps(t, t + 10));
  }

  const std::size_t a = benchutil::atk_lo(base), b = benchutil::atk_hi(base);
  const double chal_cps = with_chal.server().attacker_cps(a, b);
  const double cook_cps = with_cook.server().attacker_cps(a, b);
  std::printf("\nattack-window averages: challenges %.1f cps, cookies %.1f "
              "cps, reduction factor %.1f\n",
              chal_cps, cook_cps, cook_cps / std::max(chal_cps, 1e-9));

  benchutil::check("cookies leave the attackers above 100 cps",
                   cook_cps > 100.0);
  benchutil::check("challenges throttle attackers below 30 cps",
                   chal_cps < 30.0);
  benchutil::check("reduction factor exceeds 10x",
                   cook_cps > 10.0 * std::max(chal_cps, 1e-9));

  // For comparison, a botnet that DOES solve (Experiment 5's SA case) is
  // bounded by its serial solver throughput per bot. The bound is computed
  // from the same AttackSpec the run uses, so retuning the botnet retunes
  // the check.
  const scenario::AttackSpec solving_botnet = botnet(true);
  const auto with_solving = benchutil::run_scenario(
      flood_spec(base, defense::PolicySpec::puzzles(), solving_botnet), args,
      "solving");
  const double solving_cps = with_solving.server().attacker_cps(a, b);
  const int n_bots = solving_botnet.count;
  const double per_bot_bound =
      solving_botnet.cpu.hash_rate * solving_botnet.cpu.solver_lanes /
      puzzle::Difficulty{2, 17}.expected_solve_hashes();
  std::printf("\nsolving botnet (SA): %.1f cps total; per-bot %.2f vs solver "
              "bound %.2f cps\n",
              solving_cps, solving_cps / n_bots, per_bot_bound);
  benchutil::check("a solving botnet is bounded by its solver throughput "
                   "(within 2x, openings included)",
                   solving_cps / n_bots < per_bot_bound * 2.0);
  benchutil::check("even a solving botnet stays 5x below the cookie rate",
                   cook_cps > 5.0 * solving_cps);

  return benchutil::finish();
}
