// Figure 3: performance profiles used to set the model parameters.
//   (a) client profile: hashes performed over time per CPU; w_av = average
//       hashes a client performs in 400 ms (paper: 140630).
//   (b) server profile: service rate µ and service parameter α = µ/c as the
//       number of concurrent requests grows (paper: µ ~ 1100 req/s, α -> 1.1).
//
// (a) uses the modeled device hash rates (reconstructed so the fleet average
// matches the paper's w_av exactly) plus a live measurement of THIS host's
// real SHA-256 rate for context. (b) measures µ through the simulator: a
// saturating workload against the M/M/1 application server.
#include <chrono>

#include "bench_common.hpp"
#include "crypto/sha256.hpp"
#include "game/planner.hpp"
#include "sim/devices.hpp"
#include "workload/profiles.hpp"

using namespace tcpz;

// The Fig. 3 constants this bench validates live in workload/profiles.hpp —
// the same single source the ClientAgent defaults and the fluid population
// price against.
namespace profiles = workload::profiles;

namespace {

double measure_host_hash_rate() {
  crypto::Sha256Digest d{};
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t n = 0;
  while (std::chrono::steady_clock::now() - start <
         std::chrono::milliseconds(200)) {
    for (int i = 0; i < 1000; ++i) {
      d = crypto::Sha256::hash(std::span<const std::uint8_t>(d.data(), d.size()));
    }
    n += 1000;
  }
  const double sec = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  return static_cast<double>(n) / sec;
}

/// Fig. 3b stress test: c saturating clients against the application server;
/// returns the sustained response rate.
double measure_service_rate(const benchutil::Args& args, int concurrency) {
  sim::ScenarioConfig cfg;
  cfg.seed = args.seed;
  cfg.duration = SimTime::seconds(args.full ? 60 : 20);
  cfg.attack_start = cfg.duration;  // no attack
  cfg.attack_end = cfg.duration;
  cfg.n_bots = 0;
  cfg.n_clients = concurrency;
  cfg.client_rate = 3.0 * cfg.service_rate / std::max(1, concurrency);
  cfg.request_bytes = 100;
  cfg.response_bytes = 1000;  // keep links out of the way
  cfg.defense = tcp::DefenseMode::kNone;
  cfg.listen_backlog = 16384;
  cfg.accept_backlog = 16384;
  const auto res = sim::run_scenario(cfg);
  const std::size_t end = cfg.duration_bins();
  return res.server.responses.mean_rate(end / 4, end - 1);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::parse(argc, argv);

  benchutil::header(
      "Figure 3(a): client performance profiles (w_av)",
      "three Xeon client CPUs average w_av = 140630 hashes in 400 ms");

  std::printf("%-8s %-45s %14s %18s\n", "cpu", "description", "hashes/s",
              "hashes in 400ms");
  std::vector<double> rates;
  for (const auto& dev : sim::kClientCpus) {
    rates.push_back(dev.hash_rate);
    std::printf("%-8s %-45s %14.0f %18.0f\n", dev.name.data(),
                dev.description.data(), dev.hash_rate,
                dev.hash_rate * profiles::kWavWindowSec);
  }
  const double w_av = game::estimate_wav_fleet(rates);
  std::printf("%-8s %-45s %14s %18.0f  <- w_av\n", "fleet", "average", "",
              w_av);

  const double host_rate = measure_host_hash_rate();
  std::printf("%-8s %-45s %14.0f %18.0f  (real measurement, context only)\n",
              "host", "this machine, single thread, our SHA-256", host_rate,
              host_rate * profiles::kWavWindowSec);

  benchutil::check("fleet w_av matches the paper's 140630 within 1%",
                   std::abs(w_av - profiles::kClientWav) / profiles::kClientWav <
                       0.01);
  benchutil::check("every modeled client solves >= 100k hashes in 400 ms",
                   [&] {
                     for (double r : rates) {
                       if (r * profiles::kWavWindowSec < 100'000) return false;
                     }
                     return true;
                   }());

  benchutil::header(
      "Figure 3(b): server profile (mu, alpha) via stress test",
      "service rate stays ~constant (~1100 req/s) under load; alpha -> 1.1");

  std::printf("%-22s %14s %14s\n", "concurrent requests", "service rate",
              "alpha = mu/c");
  std::vector<game::StressPoint> points;
  double mu_high = 0;
  for (const int c : {1, 2, 5, 10, 25, 50, 100, 250, 500, 1000}) {
    const double mu = measure_service_rate(args, c);
    const double alpha = mu / c;
    points.push_back({static_cast<double>(c), mu});
    std::printf("%-22d %14.1f %14.3f\n", c, mu, alpha);
    mu_high = mu;
  }
  const double alpha = game::estimate_alpha(points, 3);
  std::printf("\nestimated alpha (high-load tail): %.3f\n", alpha);
  std::printf("estimated mu at saturation:      %.1f req/s\n", mu_high);

  benchutil::check("service rate saturates near the configured mu=1100 (+-15%)",
                   std::abs(mu_high - profiles::kServiceRateMu) /
                           profiles::kServiceRateMu <
                       0.15);
  benchutil::check("alpha decreases with concurrency and ends near mu/c",
                   points.front().service_rate / points.front().concurrent_requests >
                       alpha);

  const double target = game::nash_hash_target(w_av, 1.1,
                                               game::NashForm::kPaperExample);
  const auto diff = game::choose_difficulty(target);
  std::printf("\nresulting Nash difficulty (paper-example form): %s\n",
              diff.to_string().c_str());
  benchutil::check("planner reproduces the paper's (k=2, m=17)",
                   diff.k == 2 && diff.m == 17);

  return benchutil::finish();
}
