// Microbenchmarks (google-benchmark) of the cryptographic primitives and
// wire codecs: the real costs behind g(p), d(p) and ℓ(p) and behind the §7
// solution-flood arithmetic.
#include <benchmark/benchmark.h>

#include "crypto/hmac.hpp"
#include "crypto/secret.hpp"
#include "crypto/sha256.hpp"
#include "puzzle/engine.hpp"
#include "tcp/options.hpp"
#include "tcp/wire_format.hpp"
#include "tcp/syncookie.hpp"

using namespace tcpz;

namespace {

const crypto::SecretKey kSecret = crypto::SecretKey::from_seed(1);
const puzzle::FlowBinding kFlow{0x0a020001, 0x0a010001, 40000, 80, 12345};

void BM_Sha256_64B(benchmark::State& state) {
  std::array<std::uint8_t, 64> buf{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(buf));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Sha256_64B);

void BM_Sha256_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> buf(1024, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_HmacSha256(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(kSecret.bytes(), "message"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HmacSha256);

/// The per-packet MAC as the stack actually issues it: ipad/opad midstates
/// cached once per secret, ~2 compressions per call instead of 4+.
void BM_HmacSha256Midstate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(kSecret.hmac().mac("message"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HmacSha256Midstate);

/// g(p): one challenge generation — the per-SYN cost under attack.
void BM_ChallengeGenerate(benchmark::State& state) {
  puzzle::Sha256PuzzleEngine engine(kSecret, {});
  std::uint32_t ts = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.make_challenge(kFlow, ts++, puzzle::Difficulty{2, 17}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ChallengeGenerate);

/// ℓ(p): real brute-force solving, m swept (time ~2^m).
void BM_Solve(benchmark::State& state) {
  puzzle::Sha256PuzzleEngine engine(kSecret, {});
  const puzzle::Difficulty diff{1, static_cast<std::uint8_t>(state.range(0))};
  Rng rng(7);
  std::uint32_t ts = 0;
  std::uint64_t total_ops = 0;
  for (auto _ : state) {
    const auto ch = engine.make_challenge(kFlow, ts++, diff);
    std::uint64_t ops = 0;
    benchmark::DoNotOptimize(engine.solve(ch, kFlow, rng, ops));
    total_ops += ops;
  }
  state.counters["hash_ops/solve"] = benchmark::Counter(
      static_cast<double>(total_ops) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_Solve)->Arg(4)->Arg(8)->Arg(10)->Arg(12)->Arg(14);

/// d(p): verification of a valid solution (1 + k hashes).
void BM_VerifyValid(benchmark::State& state) {
  puzzle::EngineConfig cfg;
  cfg.expiry_ms = 1u << 30;
  puzzle::Sha256PuzzleEngine engine(kSecret, cfg);
  const puzzle::Difficulty diff{2, 10};
  const auto ch = engine.make_challenge(kFlow, 1, diff);
  Rng rng(7);
  std::uint64_t ops = 0;
  const auto sol = engine.solve(ch, kFlow, rng, ops);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.verify(kFlow, sol, diff, 5));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_VerifyValid);

/// The §7 case: rejecting a garbage solution (early exit).
void BM_VerifyBogus(benchmark::State& state) {
  puzzle::EngineConfig cfg;
  cfg.expiry_ms = 1u << 30;
  puzzle::Sha256PuzzleEngine engine(kSecret, cfg);
  const puzzle::Difficulty diff{2, 10};
  puzzle::Solution bogus;
  bogus.timestamp = 1;
  bogus.values = {Bytes(8, 0xaa), Bytes(8, 0xbb)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.verify(kFlow, bogus, diff, 5));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_VerifyBogus);

/// Replay rejection: expired timestamps cost zero hashes.
void BM_VerifyExpired(benchmark::State& state) {
  puzzle::Sha256PuzzleEngine engine(kSecret, {});
  puzzle::Solution stale;
  stale.timestamp = 1;
  stale.values = {Bytes(8, 0xaa)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.verify(kFlow, stale, puzzle::Difficulty{1, 10}, 1u << 24));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_VerifyExpired);

void BM_SynCookieEncode(benchmark::State& state) {
  tcp::SynCookieCodec codec(kSecret);
  const tcp::FlowKey flow{0x0a020001, 40000, 0x0a010001, 80};
  std::uint32_t isn = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(flow, isn++, 1460, 1000));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SynCookieEncode);

void BM_SynCookieDecode(benchmark::State& state) {
  tcp::SynCookieCodec codec(kSecret);
  const tcp::FlowKey flow{0x0a020001, 40000, 0x0a010001, 80};
  const std::uint32_t cookie = codec.encode(flow, 9, 1460, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(flow, 9, cookie, 1000));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SynCookieDecode);

void BM_OptionsEncodeChallenge(benchmark::State& state) {
  tcp::Options opts;
  opts.mss = 1460;
  opts.wscale = 7;
  opts.ts = tcp::TimestampsOption{1, 2};
  tcp::ChallengeOption c;
  c.k = 2;
  c.m = 17;
  c.sol_len = 4;
  c.preimage = Bytes(4, 0x5a);
  opts.challenge = c;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tcp::encode_options(opts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OptionsEncodeChallenge);

void BM_OptionsDecodeSolution(benchmark::State& state) {
  tcp::Options opts;
  opts.ts = tcp::TimestampsOption{1, 2};
  tcp::SolutionOption s;
  s.mss = 1460;
  s.wscale = 7;
  s.solutions = Bytes(8, 0xcd);
  opts.solution = s;
  const Bytes wire = tcp::encode_options(opts);
  tcp::Options out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tcp::decode_options(wire, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OptionsDecodeSolution);

}  // namespace

BENCHMARK_MAIN();
