// Shared scaffolding for the figure/table reproduction benches.
//
// Every bench prints (1) the series/rows the paper's figure plots, as
// aligned columns, and (2) a set of PASS/FAIL shape checks against the
// paper's qualitative claims. Default runs use the scaled timeline
// (ScenarioConfig::scaled()); pass --full for paper-scale durations.
//
// finish() also writes results/BENCH_<artifact>.json (under the working
// directory, created on demand) — the shape checks plus any metric() values,
// machine-readable so CI can track the perf/fidelity trajectory across
// commits. Reports used to land loose in the build tree and were committed
// by accident; the curated copies now live in the repo-root results/.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "par/engine.hpp"
#include "scenario/spec.hpp"
#include "sim/scenario.hpp"

namespace benchutil {

struct Args {
  bool full = false;
  std::uint64_t seed = 42;
  /// --trace: run scenarios with the flight recorder installed and export
  /// Chrome trace_event JSON to results/TRACE_<artifact>[_<run>].json.
  bool trace = false;
  std::size_t trace_ring = 1u << 16;  ///< --trace-ring N (events)
  /// --shards N: run scenarios on the sharded engine (src/par/) with N
  /// worker shards. 1 (the default) is the plain single-thread path.
  int shards = 1;
};

/// Shard count of the current bench process, recorded in every BENCH JSON
/// label block (set by parse(), read by write_json_report()).
inline int g_shards = 1;  // NOLINT

inline Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) args.full = true;
    if (std::strcmp(argv[i], "--trace") == 0) args.trace = true;
    if (std::strcmp(argv[i], "--trace-ring") == 0 && i + 1 < argc) {
      args.trace_ring = std::strtoull(argv[++i], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      args.seed = std::strtoull(argv[++i], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      args.shards = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    }
  }
  g_shards = args.shards;
  return args;
}

inline std::string g_artifact;                               // NOLINT
inline std::vector<std::pair<std::string, bool>> g_checks;   // NOLINT
inline std::vector<std::pair<std::string, double>> g_metrics;  // NOLINT
inline std::vector<std::pair<std::string, std::string>> g_labels;  // NOLINT
inline int g_failures = 0;                                   // NOLINT

inline void header(const char* artifact, const char* claim) {
  g_artifact = artifact;
  std::printf("\n=== %s ===\n", artifact);
  std::printf("paper claim: %s\n\n", claim);
}

inline bool check(const char* what, bool ok) {
  std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", what);
  g_checks.emplace_back(what, ok);
  if (!ok) ++benchutil::g_failures;
  return ok;
}

/// Records a named scalar for the JSON report (and echoes it).
inline double metric(const char* name, double value) {
  std::printf("metric %-40s %.6g\n", name, value);
  g_metrics.emplace_back(name, value);
  return value;
}

/// Records a named string for the JSON report (and echoes it) — e.g. which
/// defense policy produced a series, so result files identify the policy
/// instead of a bare enum value.
inline void label(const char* name, const std::string& value) {
  std::printf("label  %-40s %s\n", name, value.c_str());
  g_labels.emplace_back(name, value);
}

inline tcpz::obs::Registry g_registry;  // NOLINT

inline std::string sanitize(const std::string& s) {
  std::string out;
  for (const char c : s) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return out;
}

/// Folds one scenario result into the bench's metrics registry: per-server
/// metrics labelled server=<i>, hosts aggregated by role (merge semantics —
/// counters and histograms sum across hosts sharing a label). `run` prefixes
/// the labels so multi-run benches (e.g. one run per policy) stay separable.
inline void register_result(const tcpz::scenario::Result& res,
                            const std::string& run = {}) {
  namespace obs = tcpz::obs;
  const std::string prefix = run.empty() ? "" : "run=" + run + ",";
  for (std::size_t i = 0; i < res.servers.size(); ++i) {
    obs::register_metrics(g_registry, res.servers[i],
                          prefix + "server=" + std::to_string(i));
  }
  for (const auto& c : res.clients) {
    obs::register_metrics(g_registry, c, prefix + "role=client");
  }
  for (const auto& f : res.fluid) {
    // Aggregate fluid-population reports (hybrid workloads): series and
    // totals are scaled in whole users, under their own role label so
    // fleet-wide legit metrics are role=client + role=fluid.
    obs::register_metrics(g_registry, f, prefix + "role=fluid");
  }
  for (const auto& g : res.groups) {
    for (const auto& b : g.bots) {
      obs::register_metrics(g_registry, b, prefix + "role=bot,group=" + g.name);
    }
  }
  if (res.trace) {
    const std::string l = run.empty() ? "" : "run=" + run;
    g_registry.counter("trace.events_recorded", l,
                       static_cast<double>(res.trace->total_recorded()),
                       "events accepted by the flight recorder");
    g_registry.counter("trace.events_overwritten", l,
                       static_cast<double>(res.trace->overwritten()),
                       "oldest events lost to ring wrap");
    g_registry.counter("trace.events_suppressed", l,
                       static_cast<double>(res.trace->suppressed()),
                       "events refused by the category mask");
  }
}

/// Runs a Spec with the bench's observability settings applied and folds
/// the result into the metrics registry. Under --trace the run gets a
/// flight recorder and exports results/TRACE_<artifact>[_<run>].json.
inline tcpz::scenario::Result run_scenario(tcpz::scenario::Spec spec,
                                           const Args& args,
                                           const std::string& run = {}) {
  if (args.trace) {
    spec.obs.trace = true;
    spec.obs.ring_capacity = args.trace_ring;
    std::error_code ec;
    std::filesystem::create_directories("results", ec);
    std::string stem = "results/TRACE_" + sanitize(g_artifact);
    if (!run.empty()) stem += "_" + sanitize(run);
    spec.obs.chrome_trace_path = stem + ".json";
    spec.obs.flows_path = stem + ".flows.txt";
  }
  tcpz::scenario::Result res =
      args.shards > 1 ? tcpz::par::run(spec, {.shards = args.shards})
                      : tcpz::scenario::run(spec);
  register_result(res, run);
  return res;
}

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// results/BENCH_<artifact>.json: {"artifact", "failures", "checks",
/// "metrics", "labels", "metrics_registry"}.
inline void write_json_report() {
  if (g_artifact.empty()) return;
  const std::string fname = "results/BENCH_" + sanitize(g_artifact) + ".json";
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  if (ec) return;
  std::FILE* f = std::fopen(fname.c_str(), "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"artifact\": \"%s\",\n  \"failures\": %d,\n",
               json_escape(g_artifact).c_str(), g_failures);
  std::fprintf(f, "  \"checks\": {");
  for (std::size_t i = 0; i < g_checks.size(); ++i) {
    std::fprintf(f, "%s\n    \"%s\": %s", i ? "," : "",
                 json_escape(g_checks[i].first).c_str(),
                 g_checks[i].second ? "true" : "false");
  }
  std::fprintf(f, "\n  },\n  \"metrics\": {");
  for (std::size_t i = 0; i < g_metrics.size(); ++i) {
    std::fprintf(f, "%s\n    \"%s\": %.9g", i ? "," : "",
                 json_escape(g_metrics[i].first).c_str(), g_metrics[i].second);
  }
  // Every report identifies its engine configuration: "shards" is always
  // the first label, so result files from sharded and single-thread runs of
  // the same bench are distinguishable.
  std::fprintf(f, "\n  },\n  \"labels\": {\n    \"shards\": \"%d\"", g_shards);
  for (std::size_t i = 0; i < g_labels.size(); ++i) {
    std::fprintf(f, ",\n    \"%s\": \"%s\"",
                 json_escape(g_labels[i].first).c_str(),
                 json_escape(g_labels[i].second).c_str());
  }
  // The uniform metrics block (see obs/registry.hpp): every scenario the
  // bench ran through run_scenario(), one flat name{labels} -> value map.
  std::fprintf(f, "\n  },\n  \"metrics_registry\": ");
  g_registry.write_json(f, 2);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
}

inline int finish() {
  write_json_report();
  if (g_failures == 0) {
    std::printf("\nall shape checks passed\n");
  } else {
    std::printf("\n%d shape check(s) FAILED\n", g_failures);
  }
  return g_failures == 0 ? 0 : 1;
}

/// The paper's §6 experiment configuration at either scale (legacy shim
/// form, for benches that still drive sim::ScenarioConfig).
inline tcpz::sim::ScenarioConfig paper_scenario(const Args& args) {
  tcpz::sim::ScenarioConfig cfg;
  cfg.seed = args.seed;
  if (!args.full) cfg = cfg.scaled();
  return cfg;
}

/// The paper's §6 experiment as a declarative scenario::Spec at either
/// scale. No attack groups yet — benches push their own.
inline tcpz::scenario::Spec paper_spec(const Args& args) {
  tcpz::scenario::Spec s;
  s.seed = args.seed;
  if (!args.full) s = s.scaled();
  return s;
}

/// Seconds bins of the pre-attack window (with margin for warm-up/edges);
/// works for both sim::ScenarioConfig and scenario::Spec.
template <typename C>
std::size_t pre_lo(const C& c) {
  return c.attack_start_bin() / 2;
}
template <typename C>
std::size_t pre_hi(const C& c) {
  return c.attack_start_bin() - 2;
}
/// Bins of the steady part of the attack window.
template <typename C>
std::size_t atk_lo(const C& c) {
  return c.attack_start_bin() + (c.attack_end_bin() - c.attack_start_bin()) / 4;
}
template <typename C>
std::size_t atk_hi(const C& c) {
  return c.attack_end_bin() - 1;
}

}  // namespace benchutil
