// Shared scaffolding for the figure/table reproduction benches.
//
// Every bench prints (1) the series/rows the paper's figure plots, as
// aligned columns, and (2) a set of PASS/FAIL shape checks against the
// paper's qualitative claims. Default runs use the scaled timeline
// (ScenarioConfig::scaled()); pass --full for paper-scale durations.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "sim/scenario.hpp"

namespace benchutil {

struct Args {
  bool full = false;
  std::uint64_t seed = 42;
};

inline Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) args.full = true;
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      args.seed = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  return args;
}

inline void header(const char* artifact, const char* claim) {
  std::printf("\n=== %s ===\n", artifact);
  std::printf("paper claim: %s\n\n", claim);
}

inline int g_failures = 0;

inline bool check(const char* what, bool ok) {
  std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++benchutil::g_failures;
  return ok;
}

inline int finish() {
  if (g_failures == 0) {
    std::printf("\nall shape checks passed\n");
  } else {
    std::printf("\n%d shape check(s) FAILED\n", g_failures);
  }
  return g_failures == 0 ? 0 : 1;
}

/// The paper's §6 experiment configuration at either scale.
inline tcpz::sim::ScenarioConfig paper_scenario(const Args& args) {
  tcpz::sim::ScenarioConfig cfg;
  cfg.seed = args.seed;
  if (!args.full) cfg = cfg.scaled();
  return cfg;
}

/// Seconds bins of the pre-attack window (with margin for warm-up/edges).
inline std::size_t pre_lo(const tcpz::sim::ScenarioConfig& c) {
  return c.attack_start_bin() / 2;
}
inline std::size_t pre_hi(const tcpz::sim::ScenarioConfig& c) {
  return c.attack_start_bin() - 2;
}
/// Bins of the steady part of the attack window.
inline std::size_t atk_lo(const tcpz::sim::ScenarioConfig& c) {
  return c.attack_start_bin() + (c.attack_end_bin() - c.attack_start_bin()) / 4;
}
inline std::size_t atk_hi(const tcpz::sim::ScenarioConfig& c) {
  return c.attack_end_bin() - 1;
}

}  // namespace benchutil
