// Figure 10 / Experiment 2: listen and accept queue occupancy during a
// connection flood — challenges vs cookies.
//
// Paper shape: with only cookies both queues saturate (zero client
// throughput); with challenges the accept queue is almost always empty and
// the listen queue is mostly saturated with openings.
#include "bench_common.hpp"

using namespace tcpz;

int main(int argc, char** argv) {
  const auto args = benchutil::parse(argc, argv);
  const auto base = benchutil::paper_scenario(args);

  benchutil::header(
      "Figure 10: listen/accept queue size during a connection flood",
      "cookies: both queues saturated; challenges: accept queue ~empty, "
      "listen queue mostly saturated with openings");

  sim::ScenarioConfig chal = base;
  chal.attack = sim::AttackType::kConnFlood;
  chal.bots_solve = false;  // raw nping flood bypasses the bot kernel solver
  chal.defense = tcp::DefenseMode::kPuzzles;
  chal.difficulty = {2, 17};
  const auto with_chal = sim::run_scenario(chal);

  sim::ScenarioConfig cook = base;
  cook.attack = sim::AttackType::kConnFlood;
  cook.bots_solve = false;
  cook.defense = tcp::DefenseMode::kSynCookies;
  const auto with_cook = sim::run_scenario(cook);

  const std::size_t bins = base.duration_bins();
  std::printf("%-8s | %12s %12s | %12s %12s\n", "t(s)", "chal:listen",
              "chal:accept", "cook:listen", "cook:accept");
  for (std::size_t t = 0; t + 10 <= bins; t += 10) {
    const SimTime a = SimTime::seconds(static_cast<std::int64_t>(t));
    const SimTime b = a + SimTime::seconds(10);
    std::printf("%-8zu | %12.0f %12.0f | %12.0f %12.0f\n", t,
                with_chal.server.listen_queue.mean_in(a, b),
                with_chal.server.accept_queue.mean_in(a, b),
                with_cook.server.listen_queue.mean_in(a, b),
                with_cook.server.accept_queue.mean_in(a, b));
  }
  std::printf("(attack window: %zu-%zu s; backlog %zu/%zu)\n",
              base.attack_start_bin(), base.attack_end_bin(),
              base.listen_backlog, base.accept_backlog);

  const SimTime w0 = SimTime::seconds(
      static_cast<std::int64_t>(benchutil::atk_lo(base)));
  const SimTime w1 = SimTime::seconds(
      static_cast<std::int64_t>(benchutil::atk_hi(base)));
  const double cap_l = static_cast<double>(base.listen_backlog);
  const double cap_a = static_cast<double>(base.accept_backlog);

  benchutil::check(
      "cookies: accept queue saturated during the attack",
      with_cook.server.accept_queue.mean_in(w0, w1) > cap_a * 0.85);
  benchutil::check(
      "challenges: accept queue almost always empty",
      with_chal.server.accept_queue.mean_in(w0, w1) < cap_a * 0.1);
  benchutil::check(
      "challenges: accept queue emptier than with cookies by 5x+",
      with_chal.server.accept_queue.mean_in(w0, w1) * 5 <
          with_cook.server.accept_queue.mean_in(w0, w1));
  benchutil::check(
      "challenges: listen queue holds attack state (above 25% of cap)",
      with_chal.server.listen_queue.mean_in(w0, w1) > cap_l * 0.25);
  benchutil::check(
      "challenges: listen queue shows openings (not pinned at cap)",
      with_chal.server.listen_queue.mean_in(w0, w1) < cap_l);

  return benchutil::finish();
}
