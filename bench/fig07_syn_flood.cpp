// Figure 7 / Experiment 2, first scenario: throughput at a client and the
// server during a distributed SYN flood, for four defences:
// none / SYN cookies / challenges (1,8) / challenges (2,17).
//
// Paper shape: no defence collapses to zero and needs ~30 s to recover;
// cookies and easy puzzles hold throughput; Nash puzzles hold it at a
// reduced level (clients pay solve time).
//
// Built on the declarative scenario engine: each case is a scenario::Spec
// with a syn-flood attack group and the case's defense policy.
#include "bench_common.hpp"

using namespace tcpz;

namespace {

struct Case {
  const char* name;
  defense::PolicySpec spec;
  puzzle::Difficulty diff;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::parse(argc, argv);
  const scenario::Spec base = benchutil::paper_spec(args);

  benchutil::header(
      "Figure 7: throughput during a SYN flood",
      "no defence -> zero throughput (+30 s recovery); cookies and puzzles "
      "sustain service; Nash-difficulty puzzles sustain at a reduced rate");

  const Case cases[] = {
      {"nodefense", defense::PolicySpec::none(), {2, 17}},
      {"cookies", defense::PolicySpec::syn_cookies(), {2, 17}},
      {"challenges-m8", defense::PolicySpec::puzzles(), {1, 8}},
      {"challenges-m17", defense::PolicySpec::puzzles(), {2, 17}},
  };

  double pre[4], during[4], post_early[4];
  scenario::Result results[4];
  for (int i = 0; i < 4; ++i) {
    scenario::Spec spec = base;
    spec.servers.policies = {cases[i].spec};
    spec.servers.difficulty = cases[i].diff;
    scenario::AttackSpec atk;
    atk.strategy = offense::StrategySpec::syn_flood();
    spec.attacks = {atk};
    results[i] = benchutil::run_scenario(spec, args, cases[i].name);
    benchutil::label((std::string("policy_") + cases[i].name).c_str(),
                     results[i].server().policy);
    pre[i] = results[i].client_rx_mbps(benchutil::pre_lo(spec),
                                       benchutil::pre_hi(spec));
    during[i] = results[i].client_rx_mbps(benchutil::atk_lo(spec),
                                          benchutil::atk_hi(spec));
    // 10 s window right after the attack ends (recovery lag check).
    post_early[i] = results[i].client_rx_mbps(spec.attack_end_bin() + 2,
                                              spec.attack_end_bin() + 12);
  }

  const std::size_t bins = base.duration_bins();
  std::printf("server throughput (Mbps), 10-second bins:\n%-8s", "t(s)");
  for (const auto& c : cases) std::printf(" %16s", c.name);
  std::printf("\n");
  for (std::size_t t = 0; t + 10 <= bins; t += 10) {
    std::printf("%-8zu", t);
    for (int i = 0; i < 4; ++i) {
      std::printf(" %16.1f", results[i].server().tx_mbps(t, t + 10));
    }
    std::printf("\n");
  }
  std::printf("\n(attack window: %zu-%zu s)\n", base.attack_start_bin(),
              base.attack_end_bin());

  std::printf("\naggregate client goodput (Mbps):\n");
  std::printf("%-18s %12s %12s %14s\n", "defense", "pre-attack", "attack",
              "post(0-10s)");
  for (int i = 0; i < 4; ++i) {
    std::printf("%-18s %12.2f %12.2f %14.2f\n", cases[i].name, pre[i],
                during[i], post_early[i]);
  }

  benchutil::check("no defence: throughput collapses below 15% of nominal",
                   during[0] < pre[0] * 0.15);
  benchutil::check("no defence: still degraded right after the attack "
                   "(~30 s recovery)",
                   post_early[0] < pre[0] * 0.7);
  benchutil::check("SYN cookies sustain >= 70% of nominal during the flood",
                   during[1] > pre[1] * 0.7);
  benchutil::check("easy puzzles (1,8) sustain >= 70% of nominal",
                   during[2] > pre[2] * 0.7);
  // Clients under (2,17) are limited by their serial in-kernel solver to
  // ~2.7 conn/s of a 20 req/s demand (see EXPERIMENTS.md).
  benchutil::check("Nash puzzles (2,17) sustain service at a reduced rate",
                   during[3] > pre[3] * 0.10 && during[3] < pre[3] * 0.9);
  benchutil::check("Nash puzzles cost more throughput than easy puzzles "
                   "against a SYN flood",
                   during[3] < during[2]);
  benchutil::check("spoofed flood never produces a valid solution",
                   results[3].server().counters.solutions_valid ==
                       results[3].server().counters.established_puzzle);

  return benchutil::finish();
}
