// Real-wire connection-storm capacity: the defense policies on actual
// sockets. A wire::Host (epoll + UDP loopback framing, unmodified
// defense::DefensePolicy, real HMAC cookies and SHA-256 puzzle
// verification) absorbs a patched wire::StormClient from a second thread.
// Unlike every other bench, nothing here is simulated time: the conn/s
// figures are wall-clock handshakes per second through the userspace stack,
// one run per policy (none / puzzles / hybrid), so the capacity cost of the
// defense layer itself is measured rather than modelled.
//
// --smoke shortens the storm for CI; --trace installs the flight recorder
// for the puzzle run and exports Chrome trace JSON (the host thread is the
// recorder's only writer, so a wire run traces exactly like a sim run).
#include <cstring>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "crypto/secret.hpp"
#include "defense/spec.hpp"
#include "obs/export.hpp"
#include "puzzle/engine.hpp"
#include "wire/host.hpp"
#include "wire/storm.hpp"

namespace {

struct RunResult {
  tcpz::wire::StormStats storm;
  tcpz::tcp::ListenerCounters counters;
  tcpz::wire::HostStats host;
};

struct Params {
  double conn_rate = 5000.0;
  tcpz::SimTime duration = tcpz::SimTime::seconds(3);
  bool trace = false;
  std::size_t trace_ring = 1u << 16;
};

RunResult run_storm(const std::string& name, tcpz::defense::PolicySpec policy,
                    const Params& p) {
  using namespace tcpz;
  const auto secret = crypto::SecretKey::from_seed(7);
  puzzle::EngineConfig ecfg;
  ecfg.sol_len = 4;
  ecfg.expiry_ms = 60'000;
  auto engine = std::make_shared<puzzle::Sha256PuzzleEngine>(secret, ecfg);

  wire::HostConfig hc;
  hc.listener.local_addr = tcp::ipv4(10, 1, 0, 1);
  hc.listener.local_port = 80;
  hc.listener.policy = policy.factory();
  hc.listener.difficulty = {1, 8};  // real brute force, bench-sized
  hc.listener.listen_backlog = 4096;
  hc.listener.accept_backlog = 4096;
  wire::Host host(hc, secret, 1, engine);

  std::unique_ptr<obs::Recorder> rec;
  if (p.trace) rec = std::make_unique<obs::Recorder>(p.trace_ring);
  // Install before start(): the host thread is the recorder's only writer.
  obs::ScopedRecorder scoped(rec.get());
  host.start();

  wire::StormConfig sc;
  sc.server_udp_port = host.bound_port();
  sc.conn_rate = p.conn_rate;
  sc.duration = p.duration;
  sc.max_inflight = 512;
  sc.engine = engine;
  sc.seed = 9;
  wire::StormClient storm(sc, host.clock());
  RunResult r;
  r.storm = storm.run();

  host.stop();
  host.join();
  r.counters = host.counters();
  r.host = host.stats();

  const std::string labels = "run=" + name;
  host.publish_metrics(benchutil::g_registry, labels);
  wire::register_metrics(benchutil::g_registry, r.storm, labels);
  if (rec) {
    const std::string path = "results/TRACE_" + benchutil::sanitize(
        benchutil::g_artifact) + "_" + name + ".json";
    obs::write_chrome_trace(*rec, {{0, "wire-host"}}, path);
    std::printf("trace  %-40s %s (%llu events)\n", "chrome_trace", path.c_str(),
                static_cast<unsigned long long>(rec->total_recorded()));
  }

  std::printf(
      "%-8s attempts=%llu est=%llu (%.0f/s) solves=%llu hash_ops=%llu "
      "challenges=%llu cookies=%llu rx=%llu tx=%llu\n",
      name.c_str(), static_cast<unsigned long long>(r.storm.attempts),
      static_cast<unsigned long long>(r.storm.established),
      r.storm.established_per_s(),
      static_cast<unsigned long long>(r.storm.solves),
      static_cast<unsigned long long>(r.storm.hash_ops),
      static_cast<unsigned long long>(r.counters.challenges_sent),
      static_cast<unsigned long long>(r.counters.cookies_sent),
      static_cast<unsigned long long>(r.host.rx_datagrams),
      static_cast<unsigned long long>(r.host.tx_datagrams));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tcpz;
  const benchutil::Args args = benchutil::parse(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  benchutil::header(
      "wire: conn storm",
      "the defense layer costs little admission capacity on a real wire: "
      "puzzle and hybrid policies sustain the storm's connection rate while "
      "challenging every client (SS5-6 on sockets instead of the simulator)");

  Params p;
  p.trace = args.trace;
  p.trace_ring = args.trace_ring;
  if (smoke) {
    p.conn_rate = 800.0;
    p.duration = SimTime::milliseconds(500);
  }

  auto always_puzzles = defense::PolicySpec::puzzles();
  always_puzzles.always_challenge = true;
  const RunResult none = run_storm("none", defense::PolicySpec::none(), p);
  const RunResult puzzles = run_storm("puzzles", always_puzzles, p);
  const RunResult hybrid = run_storm("hybrid", defense::PolicySpec::hybrid(), p);

  benchutil::metric("conn_per_s_none", none.storm.established_per_s());
  benchutil::metric("conn_per_s_puzzles", puzzles.storm.established_per_s());
  benchutil::metric("conn_per_s_hybrid", hybrid.storm.established_per_s());
  benchutil::metric("established_none",
                    static_cast<double>(none.storm.established));
  benchutil::metric("established_puzzles",
                    static_cast<double>(puzzles.storm.established));
  benchutil::metric("established_hybrid",
                    static_cast<double>(hybrid.storm.established));
  benchutil::metric("hash_ops_puzzles",
                    static_cast<double>(puzzles.storm.hash_ops));
  benchutil::metric("connect_ms_mean_puzzles",
                    puzzles.storm.connect_ms.count > 0
                        ? puzzles.storm.connect_ms.sum /
                              static_cast<double>(puzzles.storm.connect_ms.count)
                        : 0.0);
  benchutil::label("difficulty", "k=1,m=8");

  benchutil::check("baseline admits connections on the wire",
                   none.storm.established > 0);
  benchutil::check("puzzle policy challenges every SYN",
                   puzzles.counters.challenges_sent ==
                       puzzles.counters.syns_received);
  benchutil::check("puzzle admissions all paid real hash work",
                   puzzles.storm.established > 0 &&
                       puzzles.storm.hash_ops > puzzles.storm.established);
  benchutil::check("hybrid admits connections on the wire",
                   hybrid.storm.established > 0);
  benchutil::check(
      "defended capacity within 4x of baseline",
      puzzles.storm.established_per_s() >
          none.storm.established_per_s() / 4.0);
  benchutil::check("no codec rejects on any run",
                   none.host.decode_errors + puzzles.host.decode_errors +
                           hybrid.host.decode_errors ==
                       0);

  return benchutil::finish();
}
