// §7 "Solution floods": an attacker barrages the server with bogus puzzle
// solutions to burn verification CPU.
//
// Paper claims: (1) generation/verification overhead is negligible (server
// CPU < 5% throughout); (2) the server hashes ~10.8 M/s, so saturating it
// with d(p) = 1 + k/2 work per bogus ACK needs millions of packets per
// second — the attack is priced out.
#include "bench_common.hpp"

using namespace tcpz;

int main(int argc, char** argv) {
  const auto args = benchutil::parse(argc, argv);
  scenario::Spec spec = benchutil::paper_spec(args);
  spec.servers.policies = {defense::PolicySpec::puzzles()};
  scenario::AttackSpec atk;
  atk.strategy = offense::StrategySpec::bogus_solution_flood();
  spec.attacks = {atk};

  benchutil::header(
      "§7: solution floods (bogus-solution barrage)",
      "bogus solutions are rejected; server CPU stays < 5%; saturating a "
      "10.8 Mhash/s verifier takes millions of pps");

  const auto res = benchutil::run_scenario(spec, args);
  const auto& c = res.server().counters;
  const SimTime w0 = SimTime::seconds(
      static_cast<std::int64_t>(benchutil::atk_lo(spec)));
  const SimTime w1 = SimTime::seconds(
      static_cast<std::int64_t>(benchutil::atk_hi(spec)));

  const std::uint64_t rejected = c.solutions_invalid + c.solutions_bad_ackno +
                                 c.solutions_expired +
                                 c.acks_ignored_accept_full;
  std::printf("bogus ACKs received:   %lu\n",
              static_cast<unsigned long>(c.solution_acks));
  std::printf("rejected:              %lu (invalid %lu, bad-ack %lu, expired "
              "%lu, ignored-full %lu)\n",
              static_cast<unsigned long>(rejected),
              static_cast<unsigned long>(c.solutions_invalid),
              static_cast<unsigned long>(c.solutions_bad_ackno),
              static_cast<unsigned long>(c.solutions_expired),
              static_cast<unsigned long>(c.acks_ignored_accept_full));
  std::printf("admitted from bogus:   %lu\n",
              static_cast<unsigned long>(
                  c.established_puzzle > c.solutions_valid
                      ? c.established_puzzle - c.solutions_valid
                      : 0));
  std::printf("server crypto ops:     %lu hashes total\n",
              static_cast<unsigned long>(c.crypto_hash_ops));
  std::printf("server CPU (attack):   %.2f%%\n",
              100.0 * res.server().cpu.mean_in(w0, w1));

  benchutil::check("every bogus solution is rejected",
                   c.established_puzzle == c.solutions_valid);
  benchutil::check("server CPU stays below 5% under the solution flood",
                   res.server().cpu.mean_in(w0, w1) < 0.05);

  // The §7 arithmetic, from this configuration's numbers.
  const double verify_cost = spec.servers.difficulty.expected_verify_hashes();
  const double server_rate = spec.servers.cpu.hash_rate;
  const double pps_to_saturate = server_rate / verify_cost;
  std::printf("\nanalytic: verify costs %.1f hashes; a %.1f Mhash/s server "
              "needs %.2f Mpps of bogus solutions to saturate\n",
              verify_cost, server_rate / 1e6, pps_to_saturate / 1e6);
  benchutil::check("saturating verification needs millions of pps",
                   pps_to_saturate > 2e6);

  // Clients keep being served while the flood runs.
  const double during = res.client_rx_mbps(benchutil::atk_lo(spec),
                                           benchutil::atk_hi(spec));
  const double before = res.client_rx_mbps(benchutil::pre_lo(spec),
                                           benchutil::pre_hi(spec));
  std::printf("client goodput: %.2f Mbps before, %.2f Mbps during\n", before,
              during);
  // Clients must solve (protection is engaged by the flood) and are limited
  // by their serial solver to ~13% of open-loop demand.
  benchutil::check("clients retain >= 10% of nominal during the flood",
                   during > before * 0.10);

  return benchutil::finish();
}
