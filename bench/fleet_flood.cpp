// Fleet scenario bench: the §6 connection-flood workload against a
// load-balanced fleet of puzzle-protected replicas sharing one rotating
// secret, driven through the declarative scenario engine (src/scenario).
//
// Three scenarios:
//  A. fully protected fleet (4 replicas, 5-tuple hash): clients keep being
//     served through the flood because any replica verifies any challenge —
//     the paper's statelessness property at cluster scale;
//  B. partial adoption (one legacy replica, hash balancing): the flood pours
//     through the unprotected replica while the protected ones hold, the
//     fleet-level version of the Fig. 15 study;
//  C. mid-attack replica failure + secret rotation (round-robin): flows are
//     re-dispatched onto surviving replicas and solutions minted before the
//     rotation are honored during the overlap window.
#include "bench_common.hpp"

using namespace tcpz;

namespace {

scenario::Spec fleet_base(const benchutil::Args& args) {
  scenario::Spec s = benchutil::paper_spec(args);
  scenario::AttackSpec atk;
  // Raw nping flood, as in the Fig. 8 scenario (legacy stack, plain ACKs).
  atk.strategy = offense::StrategySpec::conn_flood(/*patched=*/false);
  s.attacks = {atk};
  s.servers.count = 4;
  s.servers.policies = {defense::PolicySpec::puzzles()};
  s.fleet.enabled = true;
  // Scale-out: each replica is a full §6 server; the fleet quadruples
  // capacity instead of sharding one server.
  s.fleet.divide_capacity = false;
  return s;
}

void print_replicas(const char* tag, const scenario::Result& r,
                    std::size_t lo, std::size_t hi) {
  std::printf("\n%s — per-replica picture (attack window %zu-%zu s):\n", tag,
              lo, hi);
  std::printf("%-9s %10s %12s %12s %12s %12s\n", "replica", "estab",
              "est-puzzle", "challenges", "atk-cps", "lb-pkts");
  for (std::size_t i = 0; i < r.servers.size(); ++i) {
    const auto& c = r.servers[i].counters;
    std::printf("%-9zu %10llu %12llu %12llu %12.2f %12llu\n", i,
                static_cast<unsigned long long>(c.established_total),
                static_cast<unsigned long long>(c.established_puzzle),
                static_cast<unsigned long long>(c.challenges_sent),
                r.server_attacker_cps(i, lo, hi),
                static_cast<unsigned long long>(
                    r.lb.backends[i].dispatched_packets));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::parse(argc, argv);

  benchutil::header(
      "Fleet: load-balanced connection flood (src/fleet)",
      "a fleet sharing the puzzle secret serves solving clients through the "
      "flood from any replica; one legacy replica is the hole the flood "
      "pours through; failover and secret rotation are client-transparent");

  const scenario::Spec base = fleet_base(args);
  const std::size_t lo = benchutil::atk_lo(base);
  const std::size_t hi = benchutil::atk_hi(base);

  // -- A: fully protected fleet ---------------------------------------------
  scenario::Spec cfg_a = base;
  cfg_a.fleet.balance = fleet::BalancePolicy::kFiveTupleHash;
  const scenario::Result a = benchutil::run_scenario(cfg_a, args, "A");
  print_replicas("A: all replicas protected", a, lo, hi);
  benchutil::label("protected_fleet_policy", a.servers[0].policy);
  benchutil::label("attack_strategy", a.groups[0].name);

  const double a_success = benchutil::metric(
      "protected_fleet_client_success_pct", a.client_wire_success_pct(lo, hi));
  const double a_leak =
      benchutil::metric("protected_fleet_attacker_cps", a.attacker_cps(lo, hi));
  benchutil::metric("protected_fleet_events",
                    static_cast<double>(a.events_processed));
  benchutil::metric("protected_fleet_wall_seconds", a.wall_seconds);

  // -- B: partial adoption --------------------------------------------------
  scenario::Spec cfg_b = base;
  cfg_b.fleet.balance = fleet::BalancePolicy::kFiveTupleHash;
  cfg_b.servers.policies = {
      defense::PolicySpec::none(), defense::PolicySpec::puzzles(),
      defense::PolicySpec::puzzles(), defense::PolicySpec::puzzles()};
  const scenario::Result b = benchutil::run_scenario(cfg_b, args, "B");
  print_replicas("B: replica 0 unprotected", b, lo, hi);
  for (std::size_t i = 0; i < b.servers.size(); ++i) {
    benchutil::label(("partial_replica" + std::to_string(i) + "_policy").c_str(),
                     b.servers[i].policy);
  }

  // The legacy replica admits the flood until its listen queue has silted up
  // with dead parked entries (the Fig. 10/11 dynamics), so the leakage
  // concentrates in the first half of the attack; the steady window of the
  // shape checks (atk_lo..atk_hi) covers it. The protected replicas have
  // latched by then and their leakage over the same window is ~0.
  const double b_leak_unprotected = benchutil::metric(
      "partial_unprotected_replica_atk_cps", b.server_attacker_cps(0, lo, hi));
  double b_leak_protected_max = 0;
  for (std::size_t i = 1; i < 4; ++i) {
    b_leak_protected_max =
        std::max(b_leak_protected_max, b.server_attacker_cps(i, lo, hi));
  }
  benchutil::metric("partial_protected_replica_atk_cps_max",
                    b_leak_protected_max);
  const double b_success = benchutil::metric(
      "partial_fleet_client_success_pct", b.client_wire_success_pct(lo, hi));

  // -- C: failover + secret rotation mid-attack -----------------------------
  scenario::Spec cfg_c = base;
  cfg_c.fleet.balance = fleet::BalancePolicy::kRoundRobin;
  cfg_c.fleet.rotation_interval = SimTime::seconds(25);
  cfg_c.fleet.rotation_overlap = SimTime::seconds(8);
  const SimTime mid = SimTime::nanoseconds(
      (cfg_c.attack_start.nanos() + cfg_c.attack_end.nanos()) / 2);
  cfg_c.events = {{mid, 1, false},
                  {mid + SimTime::seconds(15), 1, true}};
  const scenario::Result c = benchutil::run_scenario(cfg_c, args, "C");
  print_replicas("C: failover + rotation", c, lo, hi);

  const double c_success = benchutil::metric(
      "failover_fleet_client_success_pct", c.client_wire_success_pct(lo, hi));
  benchutil::metric("failover_evicted_flows",
                    static_cast<double>(c.lb.failover_evictions));
  benchutil::metric("secret_rotations",
                    static_cast<double>(c.secret_rotations));
  benchutil::metric("solutions_valid_prev_epoch",
                    static_cast<double>(c.cluster.solutions_valid_prev_epoch));
  benchutil::metric("replay_cache_hits",
                    static_cast<double>(c.replay_cache_hits));

  // -- shape checks ---------------------------------------------------------
  benchutil::check("A: >= 95% of client wire attempts served through the "
                   "flood with puzzles on all replicas",
                   a_success >= 95.0);
  benchutil::check("A: every replica established puzzle connections "
                   "(cross-replica stateless verification)",
                   [&] {
                     for (const auto& rep : a.servers) {
                       if (rep.counters.established_puzzle == 0) return false;
                     }
                     return true;
                   }());
  benchutil::check("A: non-solving flood barely leaks (< 2 atk conn/s "
                   "cluster-wide)",
                   a_leak < 2.0);
  benchutil::check("B: measurable flood leakage through the unprotected "
                   "replica (> 1 atk conn/s over the attack window)",
                   b_leak_unprotected > 1.0);
  benchutil::check("B: unprotected replica leaks > 3x any protected one",
                   b_leak_unprotected > 3.0 * std::max(b_leak_protected_max,
                                                       0.333));
  benchutil::check("B: partial adoption costs client success vs the "
                   "protected fleet",
                   b_success <= a_success);
  benchutil::check("C: failover disrupts tracked flows (> 0 evictions; "
                   "live clients re-dispatch on retransmission)",
                   c.lb.failover_evictions > 0);
  benchutil::check("C: the secret rotated mid-run and overlap-window "
                   "solutions were honored",
                   c.secret_rotations >= 2 &&
                       c.cluster.solutions_valid_prev_epoch > 0);
  benchutil::check("C: clients ride through failover + rotation "
                   "(>= 80% wire success)",
                   c_success >= 80.0);

  return benchutil::finish();
}
