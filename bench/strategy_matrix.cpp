// Attack-strategy × defense-policy matrix on the scaled timeline: every
// post-refactor attacker model (pulsed/shrew, game-adaptive, fleet-aware
// multi-target, mixed heterogeneous botnet) against {none, syncookies,
// puzzles, hybrid}. This is the smoke grid CI runs so a new strategy or a
// new policy cannot silently stop composing with the rest of the matrix —
// exactly the kind of scenario coverage the one declarative engine exists
// for.
//
// Shape checks are intentionally coarse (the figure benches own the precise
// claims): puzzles must blunt every attacker the theory says they blunt,
// the game-adaptive attacker must stay inside its best-response admission
// budget, and a multi-target spread must engage every replica's defense.
#include <cstring>

#include "bench_common.hpp"
#include "game/model.hpp"
#include "sim/devices.hpp"

using namespace tcpz;

namespace {

struct PolicyCase {
  const char* name;
  defense::PolicySpec spec;
};

struct Cell {
  double success_pct = 0;
  double attacker_cps = 0;
  scenario::Result result;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::parse(argc, argv);

  benchutil::header(
      "strategy matrix: new attacker models x defense policies",
      "every post-refactor strategy composes with every policy; puzzles and "
      "hybrid blunt each attacker the theory says they blunt");

  const PolicyCase policies[] = {
      {"none", defense::PolicySpec::none()},
      {"syncookies", defense::PolicySpec::syn_cookies()},
      {"puzzles", defense::PolicySpec::puzzles()},
      {"hybrid", defense::PolicySpec::hybrid()},
  };
  const char* strategies[] = {"pulsed", "game-adaptive", "multi-target",
                              "mixed"};

  const scenario::Spec base = benchutil::paper_spec(args);
  const std::size_t lo = benchutil::atk_lo(base);
  const std::size_t hi = benchutil::atk_hi(base);

  auto make_spec = [&](int strategy, const defense::PolicySpec& policy) {
    scenario::Spec s = base;
    s.servers.policies = {policy};
    switch (strategy) {
      case 0: {  // pulsed/shrew: ride the latch hysteresis
        scenario::AttackSpec a;
        a.count = 5;
        a.rate = 500.0;
        a.strategy = offense::StrategySpec::pulsed(
            SimTime::seconds(20), 0.25, /*spoofed=*/false, /*patched=*/false);
        s.attacks = {a};
        break;
      }
      case 1: {  // rational best-response solve-vs-spray split
        scenario::AttackSpec a;
        a.count = 5;
        a.rate = 300.0;
        a.strategy = offense::StrategySpec::game_adaptive(/*valuation=*/3e5);
        s.attacks = {a};
        break;
      }
      case 2: {  // fleet-aware spread over three addressable servers
        s.servers.count = 3;
        scenario::AttackSpec a;
        a.count = 5;
        a.rate = 300.0;
        a.strategy = offense::StrategySpec::multi_target();
        s.attacks = {a};
        break;
      }
      default: {  // mixed heterogeneous botnet: Xeon conn + IoT syn + bogus
        scenario::AttackSpec conn;
        conn.name = "xeon-conn";
        conn.count = 3;
        conn.rate = 300.0;
        conn.strategy = offense::StrategySpec::conn_flood();
        scenario::AttackSpec syn;
        syn.name = "iot-syn";
        syn.count = 2;
        syn.rate = 300.0;
        syn.strategy = offense::StrategySpec::syn_flood();
        syn.cpu = {sim::kIotDevices[0].hash_rate, sim::kIotDevices[0].cores,
                   1};
        scenario::AttackSpec bogus;
        bogus.name = "bogus";
        bogus.count = 2;
        bogus.rate = 200.0;
        bogus.strategy = offense::StrategySpec::bogus_solution_flood();
        s.attacks = {conn, syn, bogus};
        break;
      }
    }
    return s;
  };

  Cell grid[4][4];
  for (int si = 0; si < 4; ++si) {
    for (int pi = 0; pi < 4; ++pi) {
      Cell& cell = grid[si][pi];
      cell.result = benchutil::run_scenario(
          make_spec(si, policies[pi].spec), args,
          std::string(strategies[si]) + "+" + policies[pi].name);
      cell.success_pct = cell.result.client_wire_success_pct(lo, hi);
      cell.attacker_cps = cell.result.attacker_cps(lo, hi);
    }
  }

  std::printf("client wire success %% / attacker cps, attack window "
              "%zu-%zu s:\n",
              lo, hi);
  std::printf("%-14s", "");
  for (const auto& p : policies) std::printf(" %18s", p.name);
  std::printf("\n");
  for (int si = 0; si < 4; ++si) {
    std::printf("%-14s", strategies[si]);
    for (int pi = 0; pi < 4; ++pi) {
      std::printf("     %6.1f%%/%6.1f", grid[si][pi].success_pct,
                  grid[si][pi].attacker_cps);
    }
    std::printf("\n");
  }
  std::printf("\n");
  for (int si = 0; si < 4; ++si) {
    for (int pi = 0; pi < 4; ++pi) {
      const std::string key = std::string(strategies[si]) + "_" +
                              policies[pi].name;
      benchutil::metric((key + "_success_pct").c_str(),
                        grid[si][pi].success_pct);
      benchutil::metric((key + "_attacker_cps").c_str(),
                        grid[si][pi].attacker_cps);
    }
  }
  for (int si = 0; si < 4; ++si) {
    // The mixed row has several groups; join the names so the artifact
    // records every strategy that ran in the cell.
    std::string names;
    for (const auto& g : grid[si][2].result.groups) {
      if (!names.empty()) names += "+";
      names += g.name;
    }
    benchutil::label((std::string("strategy_") + strategies[si]).c_str(),
                     names);
  }
  benchutil::label("policy_puzzles", grid[0][2].result.server().policy);
  benchutil::label("policy_hybrid", grid[0][3].result.server().policy);

  // -- shape checks ---------------------------------------------------------
  for (int si = 0; si < 4; ++si) {
    benchutil::check((std::string(strategies[si]) +
                      ": puzzles keep solving clients served (>= 50%)")
                         .c_str(),
                     grid[si][2].success_pct >= 50.0);
    benchutil::check((std::string(strategies[si]) +
                      ": hybrid keeps solving clients served (>= 50%)")
                         .c_str(),
                     grid[si][3].success_pct >= 50.0);
  }

  // The rational attacker obeys its own best response: admission under
  // puzzles stays inside the single-user equilibrium budget x*(l) per bot.
  {
    game::GameConfig g;
    g.valuations = {3e5};
    g.mu = 1100.0;
    const double x_star =
        game::solve_equilibrium(g, puzzle::Difficulty{2, 17}
                                       .expected_solve_hashes())
            .total_rate;
    benchutil::metric("game_adaptive_best_response_rate", x_star);
    benchutil::check("game-adaptive vs puzzles: admission inside the "
                     "best-response budget (<= 2x per-bot x*)",
                     grid[1][2].attacker_cps <= 2.0 * 5 * x_star + 1.0);
    // Undefended, the rational attacker infers price 0, floods every slot
    // and denies service outright; puzzles price it back into its budget.
    benchutil::check("game-adaptive vs none: the unpriced attacker denies "
                     "service (< 25% success)",
                     grid[1][0].success_pct < 25.0);
    benchutil::check("game-adaptive vs syncookies: cookies leave the "
                     "attacker's connects unpriced (> 50 cps admitted)",
                     grid[1][1].attacker_cps > 50.0);
  }

  // A multi-target spread engages the defense on every replica.
  {
    const scenario::Result& r = grid[2][2].result;
    bool all_challenged = true;
    for (const auto& srv : r.servers) {
      all_challenged &= srv.counters.challenges_sent > 0;
    }
    benchutil::check("multi-target vs puzzles: every replica is hit and "
                     "every replica challenges",
                     all_challenged && r.servers.size() == 3);
  }

  // The mixed botnet exercises all three legacy behaviours in one run.
  {
    const scenario::Result& r = grid[3][2].result;
    benchutil::check("mixed vs puzzles: bogus solutions forced verification "
                     "work (invalid solutions > 0)",
                     r.server().counters.solutions_invalid > 0);
    benchutil::check("mixed vs puzzles: the SYN-flood group never completes "
                     "a handshake",
                     r.groups[1].total_established() == 0);
    benchutil::check("mixed: three groups reported with their own bots",
                     r.groups.size() == 3 && r.groups[0].bots.size() == 3 &&
                         r.groups[1].bots.size() == 2 &&
                         r.groups[2].bots.size() == 2);
  }

  // Pulsed attack really pulses: the group is silent between bursts.
  {
    const scenario::Result& r = grid[0][2].result;
    const std::size_t burst_end =
        base.attack_start_bin() + 5;  // duty 0.25 of a 20 s period
    benchutil::check("pulsed: off-phase emits nothing",
                     r.groups[0].measured_rate(burst_end + 2,
                                               burst_end + 13) == 0.0);
    benchutil::check("pulsed: on-phase floods",
                     r.groups[0].measured_rate(base.attack_start_bin() + 1,
                                               burst_end - 1) > 1000.0);
  }

  return benchutil::finish();
}
