// Event-core microbenchmark: the timer-wheel core against the seed
// std::priority_queue<std::function> implementation, on identical workloads.
//
// Two claims are checked:
//  * >= 3x event throughput on a packet-like workload (concurrent event
//    chains with mixed near/medium/far deltas and segment-sized closures —
//    the seed queue pays a heap allocation per schedule AND per pop, the
//    wheel core pays none);
//  * byte-identical firing order: both cores drain the same workload in the
//    same (timestamp, sequence) order, digest-compared event by event.
//
// Self-contained (no Google Benchmark) so it always builds, and cheap enough
// in --smoke mode for the CI bench-smoke step.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <queue>

#include "bench_common.hpp"
#include "net/simulator.hpp"
#include "util/rng.hpp"

namespace {

using tcpz::Rng;
using tcpz::SimTime;

// ---------------------------------------------------------------------------
// The seed event core, verbatim: one global priority queue of
// std::function<void()> actions (net/simulator.{hpp,cpp} before the wheel).
// ---------------------------------------------------------------------------
class SeedSimulator {
 public:
  using Action = std::function<void()>;

  [[nodiscard]] SimTime now() const { return now_; }

  void schedule_at(SimTime at, Action action) {
    queue_.push(Event{at, next_seq_++, std::move(action)});
  }
  void schedule_in(SimTime delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  void run() {
    while (!queue_.empty()) {
      // The seed core's hot-path copy: priority_queue::top is const, so the
      // std::function is copied out (another allocation) before pop.
      Event ev = queue_.top();
      queue_.pop();
      now_ = ev.at;
      ev.action();
    }
  }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
};

/// Stand-in for the closure payload the real hot path carries: the link
/// layer copies a tcp::Segment (152 bytes) into every delivery event.
struct SegmentSized {
  unsigned char bytes[152];
};

/// One multiply-xor round per value: cheap enough not to mask the event-core
/// cost, strong enough that any reordering of (time, chain) pairs diverges.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull;
  return (h ^ (h >> 29)) * 0xbf58476d1ce4e5b9ull;
}

/// Packet-like workload: kChains concurrent event chains; every firing
/// hashes its identity into the trace digest and schedules its successor
/// with a delta drawn from a mixed distribution (70% sub-100us "wire"
/// events, 25% millisecond "tick" events, 5% 100ms-class "timeout" events).
/// Identical across cores: chain RNG streams depend only on the seed. The
/// closure shape mirrors the real hot path — one context pointer plus a
/// segment-sized payload — so it fits the wheel core's inline buffer while
/// the seed queue's std::function must heap-allocate it.
template <typename Sim>
struct ChainWorkload {
  /// Concurrent chains = the pending-event set a fleet-scale scenario
  /// carries (100+ bots x 250 in-flight attempts, plus clients and ticks).
  static constexpr int kChains = 4096;

  Sim& sim;
  std::uint64_t n_events;
  std::vector<Rng> rngs;
  std::uint64_t fired = 0;
  std::uint64_t digest = 14695981039346656037ull;
  SegmentSized payload{};  ///< copied into every closure, like a Segment

  ChainWorkload(Sim& s, std::uint64_t seed, std::uint64_t n)
      : sim(s), n_events(n) {
    rngs.reserve(kChains);
    for (int c = 0; c < kChains; ++c) {
      rngs.emplace_back(seed ^ (0x9e37ull * static_cast<std::uint64_t>(c + 1)));
    }
    std::memset(payload.bytes, 0x5a, sizeof(payload.bytes));
  }

  void arm(int c) {
    Rng& rng = rngs[static_cast<std::size_t>(c)];
    const std::uint64_t roll = rng.uniform_u64(100);
    std::int64_t delta_ns;
    if (roll < 70) {
      // Wire events: serialization + the scenario's 500us link delay.
      delta_ns = 100'000 + static_cast<std::int64_t>(rng.uniform_u64(1'900'000));
    } else if (roll < 95) {
      // Tick-class events (agent ticks, solve completions).
      delta_ns =
          2'000'000 + static_cast<std::int64_t>(rng.uniform_u64(18'000'000));
    } else {
      // Timeout-class events (retransmits, sweeps).
      delta_ns = 100'000'000 +
                 static_cast<std::int64_t>(rng.uniform_u64(200'000'000));
    }
    ChainWorkload* self = this;
    sim.schedule_in(SimTime::nanoseconds(delta_ns),
                    [self, c, payload = payload] {
      self->digest = mix(self->digest,
                         static_cast<std::uint64_t>(self->sim.now().nanos()) ^
                             (static_cast<std::uint64_t>(c) << 48) ^
                             payload.bytes[0]);
      if (++self->fired < self->n_events) self->arm(c);
    });
  }

  /// Returns wall seconds for draining the full workload.
  double run() {
    for (int c = 0; c < kChains; ++c) arm(c);
    const auto start = std::chrono::steady_clock::now();
    sim.run();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  }
};

template <typename Sim>
double run_chain_workload(Sim& sim, std::uint64_t seed, std::uint64_t n_events,
                          std::uint64_t& digest_out) {
  ChainWorkload<Sim> workload(sim, seed, n_events);
  const double secs = workload.run();
  digest_out = workload.digest;
  return secs;
}

// ---------------------------------------------------------------------------
// Retransmit pattern: every data event also maintains a 500 ms timeout that
// is descheduled ~milliseconds later when the next "ACK" arrives — the
// canonical TCP-stack timer pattern (SYN-ACK retransmits, attempt timeouts,
// solve-completion guards). The wheel core cancels in O(1) and the record
// recycles immediately; the seed queue cannot cancel, so every abandoned
// timeout lives in the priority queue as an epoch-guarded tombstone until
// its deadline — tens of thousands of dead entries deep — exactly what the
// seed agents' token-guarded events did.
// ---------------------------------------------------------------------------
template <typename Sim>
struct RetxWorkload {
  static constexpr int kChains = 4096;
  static constexpr bool kCancellable =
      std::is_same_v<Sim, tcpz::net::Simulator>;
  static constexpr std::int64_t kTimeoutNs = 500'000'000;

  Sim& sim;
  std::uint64_t n_events;
  std::vector<Rng> rngs;
  std::vector<tcpz::net::TimerHandle> timeouts;  // wheel core
  std::vector<std::uint64_t> epochs;             // seed queue tombstone guard
  std::uint64_t fired = 0;
  std::uint64_t digest = 14695981039346656037ull;

  RetxWorkload(Sim& s, std::uint64_t seed, std::uint64_t n)
      : sim(s), n_events(n), timeouts(kChains), epochs(kChains, 0) {
    rngs.reserve(kChains);
    for (int c = 0; c < kChains; ++c) {
      rngs.emplace_back(seed ^ (0x51edull * static_cast<std::uint64_t>(c + 1)));
    }
  }

  void on_timeout(int c) {
    digest = mix(digest, static_cast<std::uint64_t>(sim.now().nanos()) ^
                             (static_cast<std::uint64_t>(c) << 40) ^ 0x70ull);
  }

  void arm(int c) {
    RetxWorkload* self = this;
    // The previous timeout is descheduled: O(1) cancel on the wheel core, a
    // live epoch-guarded tombstone on the seed queue.
    if constexpr (kCancellable) {
      (void)sim.cancel(timeouts[static_cast<std::size_t>(c)]);
      timeouts[static_cast<std::size_t>(c)] = sim.schedule_in(
          SimTime::nanoseconds(kTimeoutNs), [self, c] { self->on_timeout(c); });
    } else {
      const std::uint64_t e = ++epochs[static_cast<std::size_t>(c)];
      sim.schedule_in(SimTime::nanoseconds(kTimeoutNs), [self, c, e] {
        if (e == self->epochs[static_cast<std::size_t>(c)]) self->on_timeout(c);
      });
    }
    // Data deltas: the same wire/tick/timeout mix as the chain workload,
    // always shorter than kTimeoutNs so a live chain never times out.
    Rng& rng = rngs[static_cast<std::size_t>(c)];
    const std::uint64_t roll = rng.uniform_u64(100);
    std::int64_t delta_ns;
    if (roll < 70) {
      delta_ns = 100'000 + static_cast<std::int64_t>(rng.uniform_u64(1'900'000));
    } else if (roll < 95) {
      delta_ns =
          2'000'000 + static_cast<std::int64_t>(rng.uniform_u64(18'000'000));
    } else {
      delta_ns = 100'000'000 +
                 static_cast<std::int64_t>(rng.uniform_u64(200'000'000));
    }
    sim.schedule_in(SimTime::nanoseconds(delta_ns), [self, c] {
      self->digest =
          mix(self->digest, static_cast<std::uint64_t>(self->sim.now().nanos()) ^
                                (static_cast<std::uint64_t>(c) << 48));
      if (++self->fired < self->n_events) self->arm(c);
    });
  }

  double run() {
    for (int c = 0; c < kChains; ++c) arm(c);
    const auto start = std::chrono::steady_clock::now();
    sim.run();  // drains end-of-run timeouts identically on both cores
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  }
};

template <typename Sim>
double run_retx_workload(std::uint64_t seed, std::uint64_t n_events,
                         std::uint64_t& digest_out) {
  Sim sim;
  RetxWorkload<Sim> workload(sim, seed, n_events);
  const double secs = workload.run();
  digest_out = workload.digest;
  return secs;
}

/// Deschedule workload (wheel core only): every event gets a shadow timer
/// that is cancelled before it could fire — the retransmit/expiry pattern.
/// The seed queue cannot express this; it fires tombstones instead.
/// `wheel_fraction_out` reports how many cancels actually took the O(1)
/// wheel-unlink path this bench claims to measure: a fully-drained run()
/// used to park the cursor in the far future, silently degrading every
/// later batch to the lazy heap-skeleton cancel. The simulator now
/// re-anchors the cursor after a draining run, and this fraction pins it.
double run_cancel_workload(std::uint64_t n_events, double& wheel_fraction_out) {
  tcpz::net::Simulator sim;
  Rng rng(7);
  std::uint64_t fired = 0;
  const auto start = std::chrono::steady_clock::now();
  constexpr std::uint64_t kBatch = 4096;
  std::vector<tcpz::net::TimerHandle> handles;
  handles.reserve(kBatch);
  for (std::uint64_t done = 0; done < n_events; done += kBatch) {
    handles.clear();
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      handles.push_back(sim.schedule_in(
          SimTime::microseconds(
              100 + static_cast<std::int64_t>(rng.uniform_u64(100'000))),
          [&fired] { ++fired; }));
    }
    for (auto& h : handles) (void)sim.cancel(h);
    sim.run();  // nothing left to fire; re-anchors the wheel cursor
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (fired != 0) std::printf("BUG: %llu cancelled timers fired\n",
                              static_cast<unsigned long long>(fired));
  wheel_fraction_out = sim.events_cancelled() == 0
                           ? 0.0
                           : static_cast<double>(sim.events_cancelled_wheel()) /
                                 static_cast<double>(sim.events_cancelled());
  return secs;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Args args = benchutil::parse(argc, argv);
  const bool smoke = has_flag(argc, argv, "--smoke");
  const std::uint64_t n_events = smoke ? 100'000 : 2'000'000;

  benchutil::header(
      "micro: event core (timer wheel vs seed priority queue)",
      "pooled wheel+heap core beats the seed queue >= 2x on pure packet "
      "chains and >= 3x on the TCP retransmit/deschedule pattern, with an "
      "identical firing order on both");

  // Warm-up pass (page in the pool, stabilize the allocator), then measure.
  std::uint64_t digest_wheel = 0, digest_seed = 0;
  {
    tcpz::net::Simulator warm;
    std::uint64_t d;
    (void)run_chain_workload(warm, args.seed, n_events / 10, d);
  }
  tcpz::net::Simulator wheel;
  const double wheel_secs =
      run_chain_workload(wheel, args.seed, n_events, digest_wheel);
  SeedSimulator seedq;
  const double seed_secs =
      run_chain_workload(seedq, args.seed, n_events, digest_seed);
  const double chain_wheel_eps = static_cast<double>(n_events) / wheel_secs;
  const double chain_seed_eps = static_cast<double>(n_events) / seed_secs;
  const bool chain_digests_match = digest_wheel == digest_seed;

  std::uint64_t retx_digest_wheel = 0, retx_digest_seed = 0;
  const std::uint64_t n_retx = n_events / 2;  // each data event adds a timer
  const double retx_wheel_secs = run_retx_workload<tcpz::net::Simulator>(
      args.seed, n_retx, retx_digest_wheel);
  const double retx_seed_secs =
      run_retx_workload<SeedSimulator>(args.seed, n_retx, retx_digest_seed);
  const double retx_wheel_eps = static_cast<double>(n_retx) / retx_wheel_secs;
  const double retx_seed_eps = static_cast<double>(n_retx) / retx_seed_secs;

  benchutil::metric("chain_events", static_cast<double>(n_events));
  benchutil::metric("chain_wheel_events_per_sec", chain_wheel_eps);
  benchutil::metric("chain_seed_queue_events_per_sec", chain_seed_eps);
  benchutil::metric("chain_speedup", chain_wheel_eps / chain_seed_eps);
  benchutil::metric("retx_data_events", static_cast<double>(n_retx));
  benchutil::metric("retx_wheel_events_per_sec", retx_wheel_eps);
  benchutil::metric("retx_seed_queue_events_per_sec", retx_seed_eps);
  benchutil::metric("retx_speedup", retx_wheel_eps / retx_seed_eps);

  double cancel_wheel_fraction = 0.0;
  const double cancel_secs =
      run_cancel_workload(smoke ? 50'000 : 500'000, cancel_wheel_fraction);
  benchutil::metric("cancel_ops_per_sec",
                    static_cast<double>(smoke ? 50'000 : 500'000) * 2 /
                        cancel_secs);  // schedule + cancel per op
  benchutil::metric("cancel_wheel_unlink_fraction", cancel_wheel_fraction);

  benchutil::check("identical firing order on packet chains",
                   chain_digests_match);
  benchutil::check("cancel workload measures the O(1) wheel unlink",
                   cancel_wheel_fraction >= 0.99);
  benchutil::check("identical firing order on the retransmit pattern",
                   retx_digest_wheel == retx_digest_seed);
  benchutil::check("wheel >= 2x seed queue on pure packet chains",
                   chain_wheel_eps >= 2.0 * chain_seed_eps);
  benchutil::check(
      "wheel >= 3x seed queue on the retransmit/deschedule pattern",
      retx_wheel_eps >= 3.0 * retx_seed_eps);
  benchutil::check("throughput >= 1M events/sec",
                   chain_wheel_eps >= 1e6 && retx_wheel_eps >= 1e6);
  return benchutil::finish();
}
