// micro: sharded engine scaling — the perf artifact for src/par/.
//
// Three sections:
//  1. Scaling curve: a mega_botnet-class workload (multi-server, thousands
//     of bots, a large discrete-client population) run at 1/2/4/8 shards;
//     reports wall time, events/s and speedup per shard count. The >= 3x
//     speedup floor at 8 shards is enforced when the machine actually has
//     >= 8 hardware threads (CI Release runners); on smaller hosts the
//     curve is still measured and recorded, and the floor degrades to a
//     4-shard check or a labelled skip — a perf floor on a 1-core box is
//     noise, not signal.
//  2. Determinism: a fixed (seed, shards) pair must reproduce the same
//     result digest and event count across repeats.
//  3. False-sharing microbench: per-thread counters packed 8-to-a-line vs
//     alignas(64)-padded, measuring the cache-line ping-pong delta that
//     motivates the padding discipline in src/par/ (Mailbox, SpinBarrier,
//     ShardSlot). Needs >= 2 hardware threads to manifest.
//
// --smoke runs a seconds-scale subset (shards {1,2}, small population, no
// perf floors) — the TSan CI job drives it to race-check the full
// bench path without paying sanitizer-slowed full runs.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "defense/spec.hpp"
#include "offense/spec.hpp"
#include "par/engine.hpp"
#include "par/mailbox.hpp"
#include "scenario/spec.hpp"

namespace {

using namespace tcpz;  // NOLINT

/// A mega_botnet-class workload: several protected servers, two bot
/// horde groups (SYN flood + connection flood), and a discrete client
/// population large enough that every shard owns thousands of agents.
/// WAN-scale link delay (5 ms) gives the conservative lookahead room to
/// breathe: rounds are duration / 5 ms, so barrier overhead stays a small
/// fraction of each round's event work.
scenario::Spec mega_workload(std::uint64_t seed, bool full, bool smoke) {
  scenario::Spec s;
  s.seed = seed;
  s.net.link_delay = SimTime::milliseconds(5);
  const int dur_s = smoke ? 2 : (full ? 30 : 10);
  s.duration = SimTime::seconds(dur_s);
  s.attack_start = SimTime::seconds(dur_s) * 0.2;
  s.attack_end = SimTime::seconds(dur_s) * 0.8;
  s.workload.n_clients = smoke ? 200 : (full ? 100'000 : 8'000);
  s.workload.request_rate = full ? 0.2 : 1.0;
  s.workload.response_bytes = 20'000;
  s.servers.count = 4;
  s.servers.n_workers = 8192;
  s.servers.service_rate = 8800.0;
  s.servers.policies = {defense::PolicySpec::puzzles()};
  const int per_group = smoke ? 40 : 1000;
  scenario::AttackSpec syn;
  syn.name = "syn_horde";
  syn.count = per_group;
  syn.rate = 40.0;
  syn.strategy = offense::StrategySpec::syn_flood();
  scenario::AttackSpec conn;
  conn.name = "conn_horde";
  conn.count = per_group;
  conn.rate = 40.0;
  conn.strategy = offense::StrategySpec::conn_flood();
  s.attacks = {syn, conn};
  return s;
}

/// Scalar result digest for the determinism check (the parallel test suite
/// pins the full per-agent digests; here a drift in any aggregate is
/// enough to fail).
std::uint64_t result_digest(const scenario::Result& r) {
  std::uint64_t h = 14695981039346656037ull;
  const auto fold = [&h](std::uint64_t v) {
    h = (h ^ v) * 1099511628211ull;
  };
  fold(r.events_processed);
  fold(r.cluster.established_total);
  fold(r.cluster.syns_received);
  for (const auto& g : r.groups) fold(g.total_attempts());
  for (const auto& c : r.clients) fold(c.total_completions);
  return h;
}

// -- false-sharing microbench ------------------------------------------

struct PackedSlot {
  std::atomic<std::uint64_t> v{0};
};
struct alignas(64) PaddedSlot {
  std::atomic<std::uint64_t> v{0};
};

/// N threads, each hammering its own counter slot: with PackedSlot eight
/// counters share a cache line and every increment invalidates the line in
/// the other cores; with PaddedSlot each counter owns its line. Returns
/// aggregate millions of increments per second.
template <typename Slot>
double counter_mops(int n_threads, std::uint64_t iters) {
  std::vector<Slot> slots(static_cast<std::size_t>(n_threads));
  par::SpinBarrier barrier(n_threads + 1);  // workers + the timing thread
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n_threads));
  for (int t = 0; t < n_threads; ++t) {
    threads.emplace_back([&, t] {
      bool sense = false;
      barrier.arrive_and_wait(sense);
      auto& slot = slots[static_cast<std::size_t>(t)];
      for (std::uint64_t i = 0; i < iters; ++i) {
        slot.v.fetch_add(1, std::memory_order_relaxed);
      }
      barrier.arrive_and_wait(sense);
    });
  }
  bool sense = false;
  barrier.arrive_and_wait(sense);
  const auto t0 = std::chrono::steady_clock::now();
  barrier.arrive_and_wait(sense);
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (auto& th : threads) th.join();
  const double total =
      static_cast<double>(iters) * static_cast<double>(n_threads);
  return total / dt / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Args args = benchutil::parse(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  benchutil::header(
      "micro: parallel_sim (sharded engine scaling)",
      "conservative-lookahead sharding scales a mega_botnet-class "
      "scenario near-linearly with cores, deterministically per "
      "(seed, shards); padded per-shard state beats packed");

  const unsigned hw = std::thread::hardware_concurrency();
  benchutil::label("hw_threads", std::to_string(hw));
  benchutil::label("mode",
                   smoke ? "smoke" : (args.full ? "full" : "default"));

  // 1. Scaling curve.
  const scenario::Spec spec = mega_workload(args.seed, args.full, smoke);
  const std::vector<int> shard_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  double wall1 = 0.0;
  double established1 = 0.0;
  double speedup4 = 0.0;
  double speedup8 = 0.0;
  double established8 = 0.0;
  std::printf("%8s %12s %12s %10s %10s\n", "shards", "wall_s", "events",
              "Mev/s", "speedup");
  for (const int n : shard_counts) {
    const scenario::Result r = par::run(spec, {.shards = n});
    const auto events = static_cast<double>(r.events_processed);
    if (n == 1) {
      wall1 = r.wall_seconds;
      established1 = static_cast<double>(r.cluster.established_total);
    }
    const double speedup = wall1 / r.wall_seconds;
    if (n == 4) speedup4 = speedup;
    if (n == 8) {
      speedup8 = speedup;
      established8 = static_cast<double>(r.cluster.established_total);
    }
    std::printf("%8d %12.3f %12.0f %10.2f %10.2f\n", n, r.wall_seconds,
                events, events / r.wall_seconds / 1e6, speedup);
    const std::string tag = std::to_string(n) + "shard";
    benchutil::metric(("wall_" + tag + "_s").c_str(), r.wall_seconds);
    benchutil::metric(("events_" + tag).c_str(), events);
    benchutil::metric(("speedup_" + tag).c_str(), speedup);
  }
  if (!smoke) {
    // The sharded run approximates cross-shard queueing, so aggregates are
    // statistically — not bitwise — equal to single-thread.
    benchutil::check("8-shard aggregates within 15% of single-thread",
                     established8 > 0.85 * established1 &&
                         established8 < 1.15 * established1);
    // The speedup floor needs cores to stand on. Release CI runners have
    // them; a laptop or container that doesn't gets the measured curve in
    // its report plus an explicit skip label instead of a noise FAIL.
    if (hw >= 8) {
      benchutil::check("speedup at 8 shards >= 3x", speedup8 >= 3.0);
    } else if (hw >= 4) {
      benchutil::check("speedup at 4 shards >= 1.8x", speedup4 >= 1.8);
    } else {
      benchutil::label("speedup_floor",
                       "skipped: needs >= 4 hardware threads, have " +
                           std::to_string(hw));
    }
  }

  // 2. Determinism: fixed (seed, shards) repeats bit-for-bit.
  {
    const scenario::Spec small =
        mega_workload(args.seed, /*full=*/false, /*smoke=*/true);
    const int n = smoke ? 2 : 8;
    const scenario::Result a = par::run(small, {.shards = n});
    const scenario::Result b = par::run(small, {.shards = n});
    benchutil::check(
        "fixed (seed, shards) is deterministic across repeats",
        result_digest(a) == result_digest(b) &&
            a.events_processed == b.events_processed);
  }

  // 3. False sharing: packed vs padded per-thread counters.
  {
    const int fs_threads =
        static_cast<int>(hw >= 4 ? 4 : (hw >= 2 ? hw : 2));
    const std::uint64_t iters = smoke ? 2'000'000 : 40'000'000;
    const double packed = counter_mops<PackedSlot>(fs_threads, iters);
    const double padded = counter_mops<PaddedSlot>(fs_threads, iters);
    benchutil::metric("false_sharing_packed_mops", packed);
    benchutil::metric("false_sharing_padded_mops", padded);
    benchutil::metric("false_sharing_padded_over_packed", padded / packed);
    benchutil::label("false_sharing_threads", std::to_string(fs_threads));
    if (!smoke && hw >= 2) {
      // On one core there is no cross-core line ping-pong to measure.
      benchutil::check("padded counters beat packed (false-sharing delta)",
                       padded > packed);
    } else if (hw < 2) {
      benchutil::label("false_sharing_floor",
                       "skipped: needs >= 2 hardware threads, have " +
                           std::to_string(hw));
    }
  }

  return benchutil::finish();
}
