// Figure 12 / Experiment 3: boxplot of the per-client throughput during a
// connection flood across the difficulty grid k in {1..4} x m in
// {12,15,16,17,18,20}.
//
// Paper shape: for any k, m < ~12 fails to slow attackers (denial of
// service); the Nash setting (2,17) gives the most stable throughput
// (good mean, low variability); very hard settings depress throughput
// because clients pay too much per connection.
#include "bench_common.hpp"

using namespace tcpz;

namespace {

/// Per-second samples of aggregate client goodput during the attack window.
BoxplotStats throughput_box(const sim::ScenarioResult& res,
                            const sim::ScenarioConfig& cfg) {
  SampleSet samples;
  for (std::size_t t = benchutil::atk_lo(cfg); t < benchutil::atk_hi(cfg); ++t) {
    double mbps = 0;
    for (const auto& c : res.clients) mbps += c.rx_bytes.rate_at(t) * 8 / 1e6;
    samples.add(mbps);
  }
  return BoxplotStats::from(samples);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::parse(argc, argv);
  auto base = benchutil::paper_scenario(args);
  if (!args.full) {
    // 24 scenarios: shrink the timeline further to keep the default run fast.
    base.duration = SimTime::seconds(90);
    base.attack_start = SimTime::seconds(20);
    base.attack_end = SimTime::seconds(70);
  }
  base.attack = sim::AttackType::kConnFlood;
  base.defense = tcp::DefenseMode::kPuzzles;

  benchutil::header(
      "Figure 12: client throughput boxplots across (k, m) during a "
      "connection flood",
      "m below ~12 fails to stop the flood; the Nash (2,17) balances "
      "throughput and stability; harder settings overcharge clients");

  const std::uint8_t ks[] = {1, 2, 3, 4};
  const std::uint8_t ms[] = {12, 15, 16, 17, 18, 20};

  double mean_of[5][21] = {};
  double median_of[5][21] = {};
  double stddev_proxy[5][21] = {};  // IQR as the variability measure
  std::printf("%-10s %6s %8s %8s %8s %8s %8s %8s\n", "setting", "mean", "min",
              "q1", "median", "q3", "max", "IQR");
  for (const std::uint8_t k : ks) {
    for (const std::uint8_t m : ms) {
      sim::ScenarioConfig cfg = base;
      cfg.seed = args.seed + 1000u * k + m;
      cfg.difficulty = {k, m};
      const auto res = sim::run_scenario(cfg);
      const auto box = throughput_box(res, cfg);
      mean_of[k][m] = box.mean;
      median_of[k][m] = box.median;
      stddev_proxy[k][m] = box.q3 - box.q1;
      std::printf("(k=%u,m=%-2u) %6.2f %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n",
                  k, m, box.mean, box.min, box.q1, box.median, box.q3, box.max,
                  box.q3 - box.q1);
    }
    std::printf("\n");
  }

  // Reference: nominal no-attack throughput for the same workload.
  sim::ScenarioConfig calm = base;
  calm.n_bots = 0;
  const auto calm_res = sim::run_scenario(calm);
  const double nominal = calm_res.client_rx_mbps(benchutil::pre_lo(calm),
                                                 benchutil::pre_hi(calm));
  std::printf("nominal (no attack): %.2f Mbps aggregate\n\n", nominal);

  // §6.3's observations, checked as the paper states them:
  //  * "for any k, if m < 12 the ease of solving does not affect the
  //    attackers' rate, thus causing a denial of service" — at m=12 the
  //    throughput is "highly unstable, reaching zero at many times": the
  //    median collapses even when spiky openings inflate the mean.
  benchutil::check("m=12 throughput median collapses (< 20% of the m=17 "
                   "median) for every k",
                   [&] {
                     for (const std::uint8_t k : ks) {
                       if (median_of[k][12] >= median_of[k][17] * 0.2) {
                         return false;
                       }
                     }
                     return true;
                   }());
  //  * "when the difficulty is set to (k=2, m=16), the throughput achieves a
  //    slightly better average with comparable variability" than the Nash
  //    (2,17) — the paper's own concession, reproduced here.
  benchutil::check("(2,16) mean is at or above the Nash (2,17) mean",
                   mean_of[2][16] >= mean_of[2][17]);
  benchutil::check("Nash (2,17) keeps a stable median >= 10% of nominal",
                   median_of[2][17] > nominal * 0.10);
  benchutil::check("the hardest setting (4,20) is below (2,17): clients "
                   "overpay per connection",
                   mean_of[4][20] < mean_of[2][17]);
  benchutil::check("Nash (2,17) is far more stable than m=12 (IQR at least "
                   "5x smaller)",
                   stddev_proxy[2][17] * 5.0 < stddev_proxy[2][12]);
  benchutil::check("(2,17) variability (IQR) is not the worst of its row",
                   [&] {
                     double worst = 0;
                     for (const std::uint8_t m : ms) {
                       worst = std::max(worst, stddev_proxy[2][m]);
                     }
                     return stddev_proxy[2][17] < worst;
                   }());

  return benchutil::finish();
}
