// Table 1 / Experiment 6: IoT devices. Performance profiles of the four
// Raspberry Pi boards and the implied ceiling on their usefulness in a
// connection flood against a puzzle-protected server.
//
// Paper claim: the boards can still connect to a puzzle-protected server but
// are crippled as flood bots; recruiting IoT devices no longer yields an
// effective attack.
#include "bench_common.hpp"
#include "sim/devices.hpp"

using namespace tcpz;

int main(int argc, char** argv) {
  const auto args = benchutil::parse(argc, argv);
  auto base = benchutil::paper_scenario(args);
  if (!args.full) {
    base.duration = SimTime::seconds(90);
    base.attack_start = SimTime::seconds(20);
    base.attack_end = SimTime::seconds(70);
  }

  benchutil::header(
      "Table 1: performance profile of embedded (IoT) devices",
      "Raspberry Pis hash 50-75k/s (~20-30k hashes in 400 ms): enough to "
      "connect, far too slow to flood");

  const puzzle::Difficulty nash{2, 17};
  std::printf("%-6s %-50s %16s %20s %16s %18s\n", "dev", "description",
              "avg hash rate", "hashes in 400 ms", "solve time (s)",
              "max flood (cps)");
  double worst_cps = 0, best_solve = 1e18;
  for (const auto& dev : sim::kIotDevices) {
    const double solve_s = nash.expected_solve_hashes() / dev.hash_rate;
    const double cps = 1.0 / solve_s;  // one serial in-kernel solver
    worst_cps = std::max(worst_cps, cps);
    best_solve = std::min(best_solve, solve_s);
    std::printf("%-6s %-50s %16.0f %20.0f %16.2f %18.2f\n", dev.name.data(),
                dev.description.data(), dev.hash_rate, dev.hash_rate * 0.4,
                solve_s, cps);
  }

  benchutil::check("every device still completes a Nash puzzle in under 4 s "
                   "(can connect)",
                   best_solve < 4.0 && nash.expected_solve_hashes() /
                                               sim::kIotDevices[0].hash_rate <
                                           4.0);
  benchutil::check("no device can exceed 1 established connection/s when "
                   "challenged",
                   worst_cps < 1.0);

  // End-to-end: an all-IoT botnet at the paper's 5000 pps vs the Nash-puzzle
  // server, compared with the Xeon-class botnet.
  std::printf("\nend-to-end: 10-bot connection flood at 500 pps each\n");
  double iot_cps = 0, xeon_cps = 0;
  {
    sim::ScenarioConfig cfg = base;
    cfg.attack = sim::AttackType::kConnFlood;
    cfg.defense = tcp::DefenseMode::kPuzzles;
    cfg.difficulty = nash;
    cfg.bot_cpu = {sim::kIotDevices[0].hash_rate, 1, 1};  // weakest board
    const auto res = sim::run_scenario(cfg);
    iot_cps = res.server.attacker_cps(benchutil::atk_lo(cfg),
                                      benchutil::atk_hi(cfg));
  }
  {
    sim::ScenarioConfig cfg = base;
    cfg.attack = sim::AttackType::kConnFlood;
    cfg.defense = tcp::DefenseMode::kPuzzles;
    cfg.difficulty = nash;
    const auto res = sim::run_scenario(cfg);  // default Xeon-class bots
    xeon_cps = res.server.attacker_cps(benchutil::atk_lo(cfg),
                                       benchutil::atk_hi(cfg));
  }
  std::printf("IoT botnet effective rate:  %6.2f cps\n", iot_cps);
  std::printf("Xeon botnet effective rate: %6.2f cps\n", xeon_cps);
  benchutil::check("the IoT botnet is weaker than the Xeon botnet",
                   iot_cps < xeon_cps);
  benchutil::check("the IoT botnet is held below 10 cps", iot_cps < 10.0);

  return benchutil::finish();
}
