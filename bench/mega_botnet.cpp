// Mega-botnet scale scenario (Fig. 14 pushed an order of magnitude up):
// 120 solving bots flooding one puzzle-protected server, millions of
// simulated events through the timer-wheel core in one process. This is the
// scale gate for the ROADMAP's fleet-size sweeps: the seed priority queue
// paid two heap allocations per event and made runs of this size painful;
// the wheel core holds the whole flood with zero hot-path allocation.
//
// Checks are qualitative (the paper's Fig. 13/14 shape): the defense keeps
// legitimate clients connected through a 120-bot flood, and the per-bot
// completion rate stays pinned by solver throughput, not by flood rate.
#include <cstring>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tcpz;
  const benchutil::Args args = benchutil::parse(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  benchutil::header(
      "mega-botnet: 120 solving bots vs one protected server",
      "puzzles hold client success at scale; attacker rate is pinned by "
      "solver throughput (Figs. 13-14 at 12x the paper's botnet)");

  sim::ScenarioConfig cfg = benchutil::paper_scenario(args);
  cfg.n_bots = smoke ? 40 : 120;
  cfg.policy = defense::PolicySpec::puzzles();
  cfg.attack = sim::AttackType::kConnFlood;
  cfg.bots_solve = true;
  // Production-scale server (the ROADMAP's target class, 8x the paper's
  // testbed): at the Nash difficulty a 120-bot patched botnet still gets its
  // combined ~200 solved connections/s admitted — that is the theory's
  // guarantee, admission pinned to solver throughput — so the worker pool
  // must out-drain it (8192 workers / 5 s idle reap >> 200/s) for
  // legitimate clients to ride through.
  cfg.n_workers = 8192;
  cfg.service_rate = 8800.0;
  cfg.listen_backlog = 16'384;
  cfg.accept_backlog = 4096;
  if (smoke) {
    cfg.duration = SimTime::seconds(40);
    cfg.attack_start = SimTime::seconds(10);
    cfg.attack_end = SimTime::seconds(35);
  }

  const sim::ScenarioResult r = sim::run_scenario(cfg);

  const double events = static_cast<double>(r.events_processed);
  const double events_per_sec = events / r.wall_seconds;
  const std::size_t atk_lo = benchutil::atk_lo(cfg);
  const std::size_t atk_hi = benchutil::atk_hi(cfg);
  const std::size_t pre_lo = benchutil::pre_lo(cfg);
  const std::size_t pre_hi = benchutil::pre_hi(cfg);

  // Client success inside the protected steady state of the attack.
  double attempts = 0, completions = 0, refused = 0;
  for (const auto& c : r.clients) {
    for (std::size_t t = atk_lo; t < atk_hi; ++t) {
      attempts += c.attempts.total(t);
      completions += c.completions.total(t);
      refused += c.refusals.total(t);
    }
  }
  const double wire = attempts - refused;
  const double success_pct =
      wire > 0 ? std::min(100.0, 100.0 * completions / wire) : 0.0;

  // Aggregate attacker establishment rate during the same window.
  const double attacker_cps =
      r.server.established_attacker.mean_rate(atk_lo, atk_hi);
  const double bot_attempt_rate = r.bot_measured_rate(atk_lo, atk_hi);
  const double pre_success = [&] {
    double a = 0, comp = 0;
    for (const auto& c : r.clients) {
      for (std::size_t t = pre_lo; t < pre_hi; ++t) {
        a += c.attempts.total(t);
        comp += c.completions.total(t);
      }
    }
    return a > 0 ? 100.0 * comp / a : 0.0;
  }();

  std::printf("bots=%d duration=%s wall=%.1fs\n", cfg.n_bots,
              cfg.duration.to_string().c_str(), r.wall_seconds);
  benchutil::metric("bots", cfg.n_bots);
  benchutil::metric("events_processed", events);
  benchutil::metric("events_per_sec_wall", events_per_sec);
  benchutil::metric("client_success_attack_pct", success_pct);
  benchutil::metric("client_success_pre_pct", pre_success);
  benchutil::metric("attacker_established_per_sec", attacker_cps);
  benchutil::metric("bot_measured_attempt_rate", bot_attempt_rate);
  benchutil::metric("challenges_sent",
                    static_cast<double>(r.server.counters.challenges_sent));
  benchutil::metric("solutions_valid",
                    static_cast<double>(r.server.counters.solutions_valid));

  benchutil::check("scenario processed >= 1e6 events",
                   r.events_processed >= 1'000'000u);
  benchutil::check("flood was challenged (>= 100k challenges)",
                   r.server.counters.challenges_sent >= 100'000u);
  benchutil::check("clients keep connecting under the 120-bot flood (>= 85%)",
                   success_pct >= 85.0);
  // Fig. 13/14: the defense decouples attacker admission from flood size —
  // 120 bots' combined admission stays pinned far below their attempt rate.
  benchutil::check("attacker admission pinned by solver (<= 2% of attempts)",
                   attacker_cps <= 0.02 * bot_attempt_rate + 1.0);
  return benchutil::finish();
}
