// Mega-botnet scale scenario (Fig. 14 pushed an order of magnitude up):
// 120 solving bots flooding one puzzle-protected server, millions of
// simulated events through the timer-wheel core in one process. This is the
// scale gate for the ROADMAP's fleet-size sweeps: the seed priority queue
// paid two heap allocations per event and made runs of this size painful;
// the wheel core holds the whole flood with zero hot-path allocation.
//
// Checks are qualitative (the paper's Fig. 13/14 shape): the defense keeps
// legitimate clients connected through a 120-bot flood, and the per-bot
// completion rate stays pinned by solver throughput, not by flood rate.
#include <cstring>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tcpz;
  const benchutil::Args args = benchutil::parse(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  benchutil::header(
      "mega-botnet: 120 solving bots vs one protected server",
      "puzzles hold client success at scale; attacker rate is pinned by "
      "solver throughput (Figs. 13-14 at 12x the paper's botnet)");

  scenario::Spec spec = benchutil::paper_spec(args);
  spec.servers.policies = {defense::PolicySpec::puzzles()};
  scenario::AttackSpec atk;
  atk.count = smoke ? 40 : 120;
  atk.strategy = offense::StrategySpec::conn_flood(/*patched=*/true);
  spec.attacks = {atk};
  // Production-scale server (the ROADMAP's target class, 8x the paper's
  // testbed): at the Nash difficulty a 120-bot patched botnet still gets its
  // combined ~200 solved connections/s admitted — that is the theory's
  // guarantee, admission pinned to solver throughput — so the worker pool
  // must out-drain it (8192 workers / 5 s idle reap >> 200/s) for
  // legitimate clients to ride through.
  spec.servers.n_workers = 8192;
  spec.servers.service_rate = 8800.0;
  spec.servers.listen_backlog = 16'384;
  spec.servers.accept_backlog = 4096;
  if (smoke) {
    spec.duration = SimTime::seconds(40);
    spec.attack_start = SimTime::seconds(10);
    spec.attack_end = SimTime::seconds(35);
  }

  const scenario::Result r = benchutil::run_scenario(spec, args);

  const double events = static_cast<double>(r.events_processed);
  const double events_per_sec = events / r.wall_seconds;
  const std::size_t atk_lo = benchutil::atk_lo(spec);
  const std::size_t atk_hi = benchutil::atk_hi(spec);
  const std::size_t pre_lo = benchutil::pre_lo(spec);
  const std::size_t pre_hi = benchutil::pre_hi(spec);

  // Client success inside the protected steady state of the attack
  // (solver-refused attempts never reach the wire and are excluded).
  const double success_pct = r.client_wire_success_pct(atk_lo, atk_hi);
  // Aggregate attacker establishment rate during the same window.
  const double attacker_cps = r.server_attacker_cps(0, atk_lo, atk_hi);
  const double bot_attempt_rate = r.bot_measured_rate(atk_lo, atk_hi);
  const double pre_success = r.client_success_pct(pre_lo, pre_hi);

  std::printf("bots=%d duration=%s wall=%.1fs\n", atk.count,
              spec.duration.to_string().c_str(), r.wall_seconds);
  benchutil::metric("bots", atk.count);
  benchutil::metric("events_processed", events);
  benchutil::metric("events_per_sec_wall", events_per_sec);
  benchutil::metric("client_success_attack_pct", success_pct);
  benchutil::metric("client_success_pre_pct", pre_success);
  benchutil::metric("attacker_established_per_sec", attacker_cps);
  benchutil::metric("bot_measured_attempt_rate", bot_attempt_rate);
  benchutil::metric("challenges_sent",
                    static_cast<double>(r.server().counters.challenges_sent));
  benchutil::metric("solutions_valid",
                    static_cast<double>(r.server().counters.solutions_valid));
  benchutil::label("strategy", r.groups[0].name);
  benchutil::label("policy", r.server().policy);

  benchutil::check("scenario processed >= 1e6 events",
                   r.events_processed >= 1'000'000u);
  benchutil::check("flood was challenged (>= 100k challenges)",
                   r.server().counters.challenges_sent >= 100'000u);
  benchutil::check("clients keep connecting under the 120-bot flood (>= 85%)",
                   success_pct >= 85.0);
  // Fig. 13/14: the defense decouples attacker admission from flood size —
  // 120 bots' combined admission stays pinned far below their attempt rate.
  benchutil::check("attacker admission pinned by solver (<= 2% of attempts)",
                   attacker_cps <= 0.02 * bot_attempt_rate + 1.0);
  return benchutil::finish();
}
