// Figure 6 / Experiment 1: CDF of the client connection time as the puzzle
// parameters (k, m) vary. Paper shape: increasing m grows connection time
// exponentially; increasing k grows it by a constant factor; both knobs give
// the defender fine-grained control.
//
// Absolute values differ from the paper's microseconds (their Fig. 6 implies
// an in-kernel hash rate far above the 351 kh/s their own w_av profiling
// gives; we use the w_av-consistent rate throughout — see EXPERIMENTS.md).
#include "bench_common.hpp"

using namespace tcpz;

namespace {

sim::ScenarioResult run_config(const benchutil::Args& args, std::uint8_t k,
                               std::uint8_t m) {
  sim::ScenarioConfig cfg;
  cfg.seed = args.seed + k * 100 + m;
  cfg.n_bots = 0;
  cfg.n_clients = 1;
  // Keep the solver lightly loaded so the CDF measures per-connection time,
  // not M/G/1 queueing: utilisation ~0.25 at every difficulty, and enough
  // samples (>= 120) per configuration.
  const double solve_sec =
      puzzle::Difficulty{k, m}.expected_solve_hashes() / cfg.client_cpu.hash_rate;
  cfg.client_rate = std::min(2.0, 0.25 / std::max(solve_sec, 1e-3));
  const double samples = args.full ? 400.0 : 120.0;
  cfg.duration = SimTime::from_seconds(samples / cfg.client_rate);
  cfg.attack_start = cfg.duration;  // no attack
  cfg.attack_end = cfg.duration;
  cfg.response_bytes = 10'000;
  cfg.client_response_timeout = SimTime::seconds(120);
  cfg.client_max_pending_solves = 64;
  cfg.defense = tcp::DefenseMode::kPuzzles;
  cfg.always_challenge = true;  // Experiment 1 forces the puzzle path
  cfg.difficulty = {k, m};
  return sim::run_scenario(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::parse(argc, argv);

  benchutil::header(
      "Figure 6: CDF of connection time vs puzzle parameters",
      "connection time grows exponentially in m and linearly in k");

  const std::uint8_t ks[] = {1, 2, 3, 4};
  const std::uint8_t ms[] = {4, 10, 16, 20};

  double mean_ms[5][21] = {};
  for (const std::uint8_t k : ks) {
    std::printf("CDF for k=%u (connection time, ms)\n", k);
    std::printf("  %-6s %10s %10s %10s %10s %10s %12s\n", "m", "p10", "p25",
                "p50", "p75", "p90", "mean");
    for (const std::uint8_t m : ms) {
      const auto res = run_config(args, k, m);
      const auto& ct = res.clients[0].conn_time_ms;
      mean_ms[k][m] = ct.mean();
      std::printf("  %-6u %10.2f %10.2f %10.2f %10.2f %10.2f %12.2f\n", m,
                  ct.quantile(0.10), ct.quantile(0.25), ct.quantile(0.50),
                  ct.quantile(0.75), ct.quantile(0.90), ct.mean());
    }
    std::printf("\n");
  }

  // Shape checks against the paper's two observations. The connection time
  // is (handshake RTT + solve time); the scaling laws apply to the solve
  // component, so subtract the RTT floor measured by the easiest setting.
  const double base_ms = mean_ms[1][4];
  const auto solve_ms = [&](int k, int m) {
    return std::max(mean_ms[k][m] - base_ms, 1e-9);
  };

  // 1. Exponential in m: moving m 10 -> 16 multiplies solve time by 2^6.
  const double growth_m = solve_ms(1, 16) / solve_ms(1, 10);
  std::printf("solve(k=1,m=16)/solve(k=1,m=10) = %.1f (2^6 = 64)\n", growth_m);
  benchutil::check("m growth is exponential (ratio within [32, 128])",
                   growth_m > 32 && growth_m < 128);

  // 2. Linear in k: at m=16, k=4 costs ~4x the k=1 solve time.
  const double growth_k = solve_ms(4, 16) / solve_ms(1, 16);
  std::printf("solve(k=4,m=16)/solve(k=1,m=16) = %.2f (k ratio = 4)\n",
              growth_k);
  benchutil::check("k growth is a constant factor (ratio within [2.5, 6])",
                   growth_k > 2.5 && growth_k < 6.0);

  // 3. Monotonicity across the whole grid.
  bool monotone = true;
  for (const std::uint8_t k : ks) {
    for (std::size_t i = 1; i < std::size(ms); ++i) {
      if (mean_ms[k][ms[i]] <= mean_ms[k][ms[i - 1]]) monotone = false;
    }
  }
  benchutil::check("connection time increases with m for every k", monotone);

  // 4. Easy puzzles stay cheap: (1, 4) adds well under 10 ms.
  benchutil::check("(k=1, m=4) keeps connection time under 10 ms",
                   mean_ms[1][4] < 10.0);

  return benchutil::finish();
}
