// Million-user populations through the hybrid fluid/discrete workload.
//
// The discrete engine's cost grows with the number of client agents, which
// caps honest-population studies at a few dozen users. The hybrid workload
// (workload::ModelSpec::hybrid) aggregates the population into per-server
// fluid mass — per-tick cost independent of N — while a sampled cohort keeps
// exact per-connection statistics, so the same scenario shapes run at
// *service-provider* scale: a million mostly-idle subscribers (a couple of
// requests per user per hour, ~500 aggregate req/s against the Fig. 3b
// server) riding through the paper's §6 floods.
//
// Scenarios (fidelity at overlapping scale is gated separately by
// tests/workload_test.cpp's 15-user tolerance fixture):
//   benign      1M users, no attack — the throughput baseline.
//   puzzles     the same population + a conn-flood botnet, Nash puzzles:
//               goodput rides through (a million patched kernels dwarf the
//               solve price).
//   nodefense   same flood, no defense: goodput collapses.
//   fleet       the population split across a 3-replica balanced fleet.
//
// Reported per scenario: wall seconds, events processed, events per modeled
// user — the scaling headline — plus goodput and completion aggregates.
// --smoke shortens the timeline for CI; --full runs the paper's 600 s.
#include <cstring>

#include "bench_common.hpp"
#include "workload/spec.hpp"

using namespace tcpz;

namespace {

constexpr std::uint64_t kUsers = 1'000'000;
/// Mostly-idle subscribers: ~1.8 requests/user/hour -> 500 req/s aggregate,
/// just under the server's mu = 1100 with the attack's leakage on top.
constexpr double kPerUserRate = 5e-4;
/// One discrete agent per 100k users: 10 exact-statistics probes.
constexpr double kCohortRatio = 1e-5;

struct RunStats {
  double goodput_pre = 0;  ///< Mbps over the pre-attack window
  double goodput_atk = 0;  ///< Mbps over the attack window
  double wall = 0;
  double events = 0;
  std::uint64_t users = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Args args = benchutil::parse(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  benchutil::header(
      "million users: hybrid fluid population at provider scale",
      "1M modeled users cost ~zero events/user; puzzles hold their goodput "
      "through a conn flood while no-defense collapses (Figs. 7-8 shape)");

  scenario::Spec base;
  base.seed = args.seed;
  if (smoke) {
    base.duration = SimTime::seconds(30);
    base.attack_start = SimTime::seconds(10);
    base.attack_end = SimTime::seconds(25);
  } else if (args.full) {
    base.duration = SimTime::seconds(600);
    base.attack_start = SimTime::seconds(120);
    base.attack_end = SimTime::seconds(480);
  } else {
    base.duration = SimTime::seconds(120);
    base.attack_start = SimTime::seconds(30);
    base.attack_end = SimTime::seconds(80);
  }
  base.workload.model = workload::ModelSpec::hybrid(kUsers, kCohortRatio);
  base.workload.model->request_rate = kPerUserRate;
  base.workload.request_rate = kPerUserRate;  // keep the flat knobs coherent

  struct Case {
    const char* name;
    bool attacked;
    bool fleet;
    defense::PolicySpec policy;
  };
  const Case cases[] = {
      {"benign", false, false, defense::PolicySpec::puzzles()},
      {"puzzles", true, false, defense::PolicySpec::puzzles()},
      {"nodefense", true, false, defense::PolicySpec::none()},
      {"fleet", true, true, defense::PolicySpec::puzzles()},
  };

  std::printf("%-10s %12s %14s %14s %12s %14s\n", "case", "users",
              "goodput pre", "goodput atk", "wall s", "events/user");
  RunStats st[4];
  for (int i = 0; i < 4; ++i) {
    scenario::Spec spec = base;
    spec.servers.policies = {cases[i].policy};
    if (cases[i].fleet) {
      spec.servers.count = 3;
      spec.servers.policies = {cases[i].policy, cases[i].policy,
                               cases[i].policy};
      spec.fleet.enabled = true;
      // Scale-out fleet: each replica keeps the full ServerSpec capacity.
      spec.fleet.divide_capacity = false;
    }
    if (cases[i].attacked) {
      scenario::AttackSpec atk;
      atk.strategy = offense::StrategySpec::conn_flood();
      spec.attacks = {atk};
    } else {
      spec.attack_start = spec.attack_end = spec.duration;
    }
    const scenario::Result r = benchutil::run_scenario(spec, args,
                                                       cases[i].name);

    const std::uint64_t modeled =
        r.fluid_users + static_cast<std::uint64_t>(r.clients.size());
    // Windows well inside each phase (benign reuses the base windows so its
    // numbers align column-wise with the attacked cases).
    const std::size_t pre_lo = 2, pre_hi = base.attack_start_bin() - 2;
    const std::size_t atk_lo = base.attack_start_bin() + 3;
    const std::size_t atk_hi = base.attack_end_bin() - 1;
    st[i].goodput_pre = r.client_rx_mbps(pre_lo, pre_hi);
    st[i].goodput_atk = r.client_rx_mbps(atk_lo, atk_hi);
    st[i].wall = r.wall_seconds;
    st[i].events = static_cast<double>(r.events_processed);
    st[i].users = modeled;
    std::printf("%-10s %12llu %14.1f %14.1f %12.2f %14.4f\n", cases[i].name,
                static_cast<unsigned long long>(modeled), st[i].goodput_pre,
                st[i].goodput_atk, st[i].wall, st[i].events / modeled);

    const std::string p(cases[i].name);
    benchutil::metric((p + ".modeled_users").c_str(),
                      static_cast<double>(modeled));
    benchutil::metric((p + ".goodput_pre_mbps").c_str(), st[i].goodput_pre);
    benchutil::metric((p + ".goodput_attack_mbps").c_str(), st[i].goodput_atk);
    benchutil::metric((p + ".wall_seconds").c_str(), st[i].wall);
    benchutil::metric((p + ".events_per_user").c_str(),
                      st[i].events / static_cast<double>(modeled));
    benchutil::label((p + ".policy").c_str(), r.servers[0].policy);
  }

  benchutil::check("every scenario modeled >= 1,000,000 users", [&] {
    for (const RunStats& s : st) {
      if (s.users < 1'000'000) return false;
    }
    return true;
  }());
  // The scaling headline: the fluid aggregate decouples cost from N. Event
  // counts grow with the timeline (ticks, bots), never with the population —
  // a pure-discrete million would cost >= lambda * N ~ 500 events/s from
  // client arrivals alone; the hybrid stays orders of magnitude under that.
  benchutil::check("events per user per simulated second < 0.05 everywhere",
                   [&] {
                     const double sim_s = base.duration.to_seconds();
                     for (const RunStats& s : st) {
                       if (s.events / static_cast<double>(s.users) / sim_s >=
                           0.05) {
                         return false;
                       }
                     }
                     return true;
                   }());
  benchutil::check(
      "puzzles sustain >= 70% of benign goodput through the flood",
      st[1].goodput_atk >= 0.7 * st[0].goodput_atk);
  benchutil::check("no defense collapses under the same flood",
                   st[2].goodput_atk < 0.5 * st[0].goodput_atk);
  benchutil::check("fleet spreads the population across 3 replicas and holds",
                   st[3].goodput_atk >= 0.7 * st[0].goodput_atk);
  // Wall-time budget: generous here (debug/sanitizer builds); the Release CI
  // job enforces the real floor from the JSON report.
  benchutil::check("1M-user scenarios complete in bounded wall time",
                   st[0].wall + st[1].wall + st[2].wall + st[3].wall < 300.0);

  return benchutil::finish();
}
