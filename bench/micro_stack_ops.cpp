// Microbenchmarks of the non-crypto hot paths: listener SYN processing in
// each defence mode (the per-packet cost an attack packet imposes), the
// full-segment wire codec, and the discrete-event core. These bound the
// packet rates the userspace stack itself can absorb.
#include <benchmark/benchmark.h>

#include "crypto/secret.hpp"
#include "net/simulator.hpp"
#include "puzzle/engine.hpp"
#include "tcp/listener.hpp"
#include "tcp/wire_format.hpp"
#include "util/rng.hpp"

using namespace tcpz;

namespace {

tcp::Segment make_syn(std::uint32_t saddr, std::uint16_t sport) {
  tcp::Segment s;
  s.saddr = saddr;
  s.daddr = tcp::ipv4(10, 1, 0, 1);
  s.sport = sport;
  s.dport = 80;
  s.seq = saddr ^ sport;
  s.flags = tcp::kSyn;
  s.options.mss = 1460;
  s.options.ts = tcp::TimestampsOption{1, 0};
  return s;
}

/// SYN processing cost per defence mode, with the queues saturated so the
/// defence path (drop / cookie / challenge) is the one measured.
void BM_ListenerSynUnderAttack(benchmark::State& state) {
  const auto mode = static_cast<tcp::DefenseMode>(state.range(0));
  tcp::ListenerConfig cfg;
  cfg.local_addr = tcp::ipv4(10, 1, 0, 1);
  cfg.local_port = 80;
  cfg.listen_backlog = 64;
  cfg.accept_backlog = 64;
  cfg.mode = mode;
  cfg.difficulty = {2, 17};
  const auto secret = crypto::SecretKey::from_seed(1);
  auto engine = std::make_shared<puzzle::OraclePuzzleEngine>(
      secret, puzzle::EngineConfig{4, 4000, 100});
  tcp::Listener listener(cfg, secret, 1,
                         mode == tcp::DefenseMode::kPuzzles ? engine : nullptr);

  // Saturate the listen queue.
  SimTime now = SimTime::seconds(1);
  for (std::uint32_t i = 0; i < 64; ++i) {
    (void)listener.on_segment(now, make_syn(tcp::ipv4(10, 2, 0, 1) + i, 1000));
  }

  Rng rng(2);
  std::uint32_t n = 0;
  for (auto _ : state) {
    const auto out = listener.on_segment(
        now, make_syn(tcp::ipv4(100, 64, 0, 0) +
                          static_cast<std::uint32_t>(rng.uniform_u64(1 << 20)),
                      static_cast<std::uint16_t>(1024 + (n++ % 60'000))));
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ListenerSynUnderAttack)
    ->Arg(static_cast<int>(tcp::DefenseMode::kNone))
    ->Arg(static_cast<int>(tcp::DefenseMode::kSynCookies))
    ->Arg(static_cast<int>(tcp::DefenseMode::kPuzzles));

void BM_ListenerNormalHandshake(benchmark::State& state) {
  tcp::ListenerConfig cfg;
  cfg.local_addr = tcp::ipv4(10, 1, 0, 1);
  cfg.local_port = 80;
  cfg.listen_backlog = 1 << 16;
  cfg.accept_backlog = 1 << 16;
  const auto secret = crypto::SecretKey::from_seed(1);
  tcp::Listener listener(cfg, secret, 1, nullptr);

  const SimTime now = SimTime::seconds(1);
  std::uint32_t i = 0;
  for (auto _ : state) {
    const tcp::Segment syn =
        make_syn(tcp::ipv4(10, 2, 0, 0) + (i % 250), static_cast<std::uint16_t>(
                                                         1024 + (i / 250) % 60'000));
    ++i;
    const auto synacks = listener.on_segment(now, syn);
    if (!synacks.empty()) {
      tcp::Segment ack;
      ack.saddr = syn.saddr;
      ack.daddr = syn.daddr;
      ack.sport = syn.sport;
      ack.dport = syn.dport;
      ack.seq = syn.seq + 1;
      ack.ack = synacks[0].seq + 1;
      ack.flags = tcp::kAck;
      benchmark::DoNotOptimize(listener.on_segment(now, ack));
    }
    (void)listener.accept(now);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ListenerNormalHandshake);

void BM_WireEncodeDecode(benchmark::State& state) {
  tcp::Segment s = make_syn(tcp::ipv4(10, 2, 0, 1), 40'000);
  tcp::ChallengeOption c;
  c.k = 2;
  c.m = 17;
  c.sol_len = 4;
  c.preimage = {1, 2, 3, 4};
  s.options.challenge = c;
  for (auto _ : state) {
    const Bytes wire = tcp::encode_segment(s);
    benchmark::DoNotOptimize(tcp::decode_segment(wire));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WireEncodeDecode);

/// The link-delivery copy: one challenge-bearing segment copied by value
/// plus its wire-size charge, exactly what Link::transmit pays per packet.
/// With the inline option buffers this is a memcpy + arithmetic — zero heap.
void BM_SegmentCopyChallenge(benchmark::State& state) {
  tcp::Segment s = make_syn(tcp::ipv4(10, 2, 0, 1), 40'000);
  tcp::ChallengeOption c;
  c.k = 2;
  c.m = 17;
  c.sol_len = 8;
  c.embedded_ts = 1000;
  c.preimage = Bytes(8, 0x5a);
  s.options.challenge = c;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    tcp::Segment copy = s;  // NOLINT(performance-unnecessary-copy)
    benchmark::DoNotOptimize(copy);
    bytes += copy.wire_size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["wire_bytes/copy"] = benchmark::Counter(
      static_cast<double>(bytes) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_SegmentCopyChallenge);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    net::Simulator sim;
    constexpr int kEvents = 10'000;
    int fired = 0;
    for (int i = 0; i < kEvents; ++i) {
      sim.schedule_at(SimTime::microseconds(i), [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10'000);
}
BENCHMARK(BM_SimulatorEventThroughput);

}  // namespace

BENCHMARK_MAIN();
