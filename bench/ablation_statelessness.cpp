// Ablation: what the stateless uniform difficulty costs the leader.
//
// Eq. 3 allows per-user puzzles p_i; §4 fixes one difficulty for everyone to
// keep the server stateless. This bench evaluates the revenue-maximising
// discriminatory prices against the best uniform price at the same
// congestion operating point, across valuation mixes.
//
// Finding: under the paper's own log-utility demand, the gap stays within a
// few percent even for heavily skewed mixes — the uniform design is
// near-optimal in its own model, not just operationally convenient.
#include "bench_common.hpp"
#include "game/heterogeneous.hpp"

using namespace tcpz;

namespace {

game::GameConfig make_mix(const char* kind, std::size_t n, double mu_per_user) {
  game::GameConfig cfg;
  cfg.mu = mu_per_user * static_cast<double>(n);
  Rng rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    double w = 140'630.0;
    if (std::string_view(kind) == "uniform") {
      // identical users
    } else if (std::string_view(kind) == "bimodal-3x") {
      w *= (i % 2 == 0) ? 0.5 : 1.5;
    } else if (std::string_view(kind) == "bimodal-33x") {
      w *= (i % 3 == 0) ? 3.0 : 0.09;
    } else if (std::string_view(kind) == "lognormal") {
      w *= std::exp(rng.normal(0.0, 1.0));
    }
    cfg.valuations.push_back(w);
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  (void)benchutil::parse(argc, argv);

  benchutil::header(
      "Ablation: uniform vs per-user puzzle pricing",
      "the stateless uniform difficulty sacrifices only a few percent of the "
      "leader objective under the paper's utility model");

  std::printf("%-14s %10s %18s %18s %10s\n", "mix", "congest.", "uniform obj",
              "per-user obj", "ratio");
  double worst_ratio = 1.0;
  for (const char* kind :
       {"uniform", "bimodal-3x", "bimodal-33x", "lognormal"}) {
    for (const double alpha : {0.3, 1.1, 4.0}) {
      const auto cfg = make_mix(kind, 120, alpha);
      const double uni = game::uniform_objective(cfg);
      const auto disc = game::discriminatory_prices(cfg);
      const double ratio = uni > 0 ? disc.objective / uni : 1.0;
      worst_ratio = std::max(worst_ratio, ratio);
      std::printf("%-14s %10.1f %18.1f %18.1f %10.4f\n", kind, alpha, uni,
                  disc.objective, ratio);
    }
  }

  std::printf("\nworst-case discriminatory advantage: %.2f%%\n",
              (worst_ratio - 1.0) * 100.0);
  benchutil::check("uniform pricing never loses (ratio >= 1 - eps)",
                   worst_ratio >= 1.0 - 1e-6);
  benchutil::check("uniform pricing stays within 10% of per-user pricing "
                   "for every mix",
                   worst_ratio < 1.10);

  // Per-user prices track valuations (sanity of the discriminatory side).
  const auto cfg = make_mix("bimodal-33x", 30, 1.1);
  const auto disc = game::discriminatory_prices(cfg);
  bool ordered = true;
  for (std::size_t i = 0; i + 1 < cfg.valuations.size(); ++i) {
    for (std::size_t j = i + 1; j < cfg.valuations.size(); ++j) {
      if (cfg.valuations[i] < cfg.valuations[j] &&
          disc.prices[i] > disc.prices[j] + 1e-6) {
        ordered = false;
      }
    }
  }
  benchutil::check("per-user prices are monotone in valuations", ordered);

  return benchutil::finish();
}
