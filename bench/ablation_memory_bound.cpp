// Ablation: CPU-bound (the paper's SHA-256 scheme) vs memory-bound
// proof-of-work (§7's Abadi et al. suggestion).
//
// The fairness problem: compute throughput varies ~7x between the Xeon
// clients and the Raspberry Pi IoT devices, so a hash puzzle that is a mild
// nuisance for a desktop is a wall for a phone. Memory latency varies only
// ~2-4x. The ablation measures the solve-time spread and the end-to-end
// effect on a weak legitimate client population.
#include "bench_common.hpp"
#include "sim/devices.hpp"

using namespace tcpz;

int main(int argc, char** argv) {
  const auto args = benchutil::parse(argc, argv);

  benchutil::header(
      "Ablation: CPU-bound vs memory-bound proof-of-work (§7)",
      "memory-bound puzzles give far more uniform solve times across device "
      "classes, narrowing the Xeon/IoT gap");

  // Work targets chosen for comparable Xeon-class solve time (~0.37 s).
  const puzzle::Difficulty cpu_diff{2, 17};   // 131072 hashes
  const double cpu_ops = cpu_diff.expected_solve_hashes();
  const puzzle::Difficulty mem_diff{2, 25};   // ~33.5M accesses
  const double mem_ops = mem_diff.expected_solve_hashes();

  std::printf("per-device expected solve time (seconds):\n");
  std::printf("%-6s %14s %14s\n", "dev", "cpu-bound", "memory-bound");
  double cpu_min = 1e18, cpu_max = 0, mem_min = 1e18, mem_max = 0;
  const auto row = [&](const sim::DeviceProfile& d) {
    const double tc = cpu_ops / d.hash_rate;
    const double tm = mem_ops / d.mem_rate;
    cpu_min = std::min(cpu_min, tc);
    cpu_max = std::max(cpu_max, tc);
    mem_min = std::min(mem_min, tm);
    mem_max = std::max(mem_max, tm);
    std::printf("%-6s %14.3f %14.3f\n", d.name.data(), tc, tm);
  };
  for (const auto& d : sim::kClientCpus) row(d);
  for (const auto& d : sim::kIotDevices) row(d);

  const double cpu_spread = cpu_max / cpu_min;
  const double mem_spread = mem_max / mem_min;
  std::printf("\nsolve-time spread (slowest/fastest): cpu-bound %.1fx, "
              "memory-bound %.1fx\n",
              cpu_spread, mem_spread);
  benchutil::check("memory-bound spread is at least 1.5x narrower",
                   mem_spread * 1.5 < cpu_spread);

  // End to end: a legitimate population of IoT-class clients under a
  // Xeon-class botnet flood, with each scheme.
  const auto run = [&](sim::PowKind pow, puzzle::Difficulty diff) {
    sim::ScenarioConfig cfg = benchutil::paper_scenario(args);
    cfg.attack = sim::AttackType::kConnFlood;
    cfg.defense = tcp::DefenseMode::kPuzzles;
    cfg.pow = pow;
    cfg.difficulty = diff;
    cfg.sol_len = 4;
    // Weak clients (Pi 3-class), strong bots (Xeon-class).
    cfg.client_cpu = {sim::kIotDevices[3].hash_rate, 4, 1,
                      sim::kIotDevices[3].mem_rate};
    const auto res = sim::run_scenario(cfg);
    const std::size_t a = benchutil::atk_lo(cfg), b = benchutil::atk_hi(cfg);
    struct {
      double client_mbps, attacker_cps;
    } out{res.client_rx_mbps(a, b), res.server.attacker_cps(a, b)};
    return out;
  };

  // m=25 would overflow the 4-byte-prefix check (m < 8*sol_len = 32): fine.
  const auto cpu_run = run(sim::PowKind::kCpuBound, cpu_diff);
  const auto mem_run = run(sim::PowKind::kMemoryBound, mem_diff);
  std::printf("\nIoT-class clients vs Xeon-class bots during the flood:\n");
  std::printf("%-14s %16s %16s\n", "scheme", "client Mbps", "attacker cps");
  std::printf("%-14s %16.2f %16.2f\n", "cpu-bound", cpu_run.client_mbps,
              cpu_run.attacker_cps);
  std::printf("%-14s %16.2f %16.2f\n", "memory-bound", mem_run.client_mbps,
              mem_run.attacker_cps);

  benchutil::check("memory-bound puzzles serve weak clients better under "
                   "attack",
                   mem_run.client_mbps > cpu_run.client_mbps);
  benchutil::check("memory-bound puzzles still rate-limit the attacker "
                   "(< 40 cps)",
                   mem_run.attacker_cps < 40.0);

  return benchutil::finish();
}
