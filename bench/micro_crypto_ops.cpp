// Crypto hot-loop microbenchmark: the cached-midstate HMAC + zero-allocation
// packet path against the pre-PR implementations, embedded here verbatim as
// the reference ("seed") versions.
//
// Claims checked (the PR's acceptance bar):
//  * >= 1.5x on the HMAC-bound operations — solution verification (valid and
//    bogus), SYN-cookie encode, challenge generation — from (a) ipad/opad
//    midstates cached once per secret (~2 compressions per MAC instead of
//    4+ plus the key schedule), (b) stack-assembled MAC messages, (c) the
//    unrolled SHA-256 round function;
//  * bit-identical outputs: cached-midstate HMAC == one-shot HMAC, and the
//    new verify accepts exactly the solutions the reference verify accepts;
//  * zero heap allocations per Segment copy (the inline option buffers):
//    counted with a real operator-new hook around a copy loop.
//
// Self-contained (no Google Benchmark) so it always builds, and cheap enough
// in --smoke mode for the CI bench-smoke step.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>

#include "bench_common.hpp"
#include "crypto/hmac.hpp"
#include "crypto/secret.hpp"
#include "crypto/sha256.hpp"
#include "puzzle/engine.hpp"
#include "tcp/options.hpp"
#include "tcp/segment.hpp"
#include "tcp/syncookie.hpp"
#include "util/rng.hpp"

#include "util/alloc_counter.hpp"

namespace {

using namespace tcpz;

const crypto::SecretKey kSecret = crypto::SecretKey::from_seed(1);
const puzzle::FlowBinding kFlow{0x0a020001, 0x0a010001, 40000, 80, 12345};

double now_secs() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// Reference implementations: the pre-PR hot paths, verbatim. Each call pays
// the full HMAC key schedule, heap-allocated message/pre-image buffers, and
// (in verify) a from-scratch rebuild of the P||i prefix per candidate.
// ---------------------------------------------------------------------------
namespace ref {

/// The seed SHA-256: same FIPS 180-4 state machine as crypto::Sha256, with
/// the pre-PR round loop (register-shuffle per round, manual rotr). The
/// reference paths hash with this so the comparison captures the full
/// pre-PR cost, round function included.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset() {
    state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
              0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
    bit_count_ = 0;
    buffer_len_ = 0;
  }

  void update(std::span<const std::uint8_t> data) {
    bit_count_ += static_cast<std::uint64_t>(data.size()) * 8;
    std::size_t off = 0;
    if (buffer_len_ > 0) {
      const std::size_t take = std::min(data.size(), 64 - buffer_len_);
      std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
      buffer_len_ += take;
      off += take;
      if (buffer_len_ == 64) {
        process_block(buffer_.data());
        buffer_len_ = 0;
      }
    }
    while (off + 64 <= data.size()) {
      process_block(data.data() + off);
      off += 64;
    }
    if (off < data.size()) {
      std::memcpy(buffer_.data(), data.data() + off, data.size() - off);
      buffer_len_ = data.size() - off;
    }
  }

  [[nodiscard]] crypto::Sha256Digest finalize() {
    std::uint8_t pad[72] = {0x80};
    const std::size_t rem = buffer_len_;
    const std::size_t pad_len = (rem < 56) ? (56 - rem) : (120 - rem);
    std::uint8_t len_be[8];
    for (int i = 0; i < 8; ++i) {
      len_be[i] = static_cast<std::uint8_t>(bit_count_ >> (56 - 8 * i));
    }
    update(std::span<const std::uint8_t>(pad, pad_len));
    update(std::span<const std::uint8_t>(len_be, 8));
    crypto::Sha256Digest out;
    for (int i = 0; i < 8; ++i) {
      out[i * 4] = static_cast<std::uint8_t>(state_[i] >> 24);
      out[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
      out[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
      out[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
    }
    return out;
  }

 private:
  static constexpr std::uint32_t rotr(std::uint32_t x, int n) {
    return (x >> n) | (x << (32 - n));
  }

  void process_block(const std::uint8_t* block) {
    static constexpr std::array<std::uint32_t, 64> kK = {
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
        0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
        0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
        0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
        0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
        0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
        0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
        0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
        0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
        0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
        0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
        0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
             (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
             (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
             static_cast<std::uint32_t>(block[i * 4 + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
    std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t temp1 = h + s1 + ch + kK[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }
    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
    state_[4] += e;
    state_[5] += f;
    state_[6] += g;
    state_[7] += h;
  }

  std::array<std::uint32_t, 8> state_{};
  std::uint64_t bit_count_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
};

/// The seed one-shot HMAC (full key schedule per call) over ref::Sha256.
crypto::Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> message) {
  constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> key_block{};
  if (key.size() > kBlock) {
    Sha256 kh;
    kh.update(key);
    const auto d = kh.finalize();
    std::memcpy(key_block.data(), d.data(), d.size());
  } else {
    std::memcpy(key_block.data(), key.data(), key.size());
  }
  std::array<std::uint8_t, kBlock> ipad{};
  std::array<std::uint8_t, kBlock> opad{};
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }
  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const auto inner_digest = inner.finalize();
  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finalize();
}

constexpr std::string_view kPreimageLabel = "tcpz-puzzle-preimage-v1";

Bytes preimage_message(const puzzle::FlowBinding& flow,
                       std::uint32_t timestamp_ms) {
  Bytes msg;
  msg.reserve(kPreimageLabel.size() + 20);
  msg.insert(msg.end(), kPreimageLabel.begin(), kPreimageLabel.end());
  put_u32be(msg, timestamp_ms);
  put_u32be(msg, flow.isn);
  put_u32be(msg, flow.saddr);
  put_u32be(msg, flow.daddr);
  put_u16be(msg, flow.sport);
  put_u16be(msg, flow.dport);
  return msg;
}

Bytes derive_preimage(const crypto::SecretKey& secret,
                      const puzzle::FlowBinding& flow, std::uint32_t ts,
                      std::uint8_t sol_len) {
  const auto digest = ref::hmac_sha256(secret.bytes(), preimage_message(flow, ts));
  return Bytes(digest.begin(), digest.begin() + sol_len);
}

crypto::Sha256Digest solution_check_hash(const Bytes& preimage,
                                         std::uint8_t index,
                                         std::span<const std::uint8_t> cand) {
  ref::Sha256 h;
  h.update(preimage);
  const std::uint8_t idx[1] = {index};
  h.update(std::span<const std::uint8_t>(idx, 1));
  h.update(cand);
  return h.finalize();
}

bool prefix_matches(const Bytes& preimage, const crypto::Sha256Digest& digest,
                    unsigned m_bits) {
  crypto::Sha256Digest p{};
  const std::size_t n = std::min(preimage.size(), p.size());
  std::copy(preimage.begin(), preimage.begin() + static_cast<long>(n),
            p.begin());
  return crypto::prefix_bits_equal(p, digest, m_bits);
}

/// The pre-PR per-ACK verify path, as the listener drove it: split the
/// concatenated wire bytes into k heap-backed values (the old Solution held
/// std::vector<Bytes>), re-derive the pre-image with a one-shot HMAC, then
/// rebuild the P||i check hash from scratch per value. Freshness/shape
/// checks are elided on BOTH sides — the inputs are well-formed and fresh.
bool verify_ack(const crypto::SecretKey& secret,
                const puzzle::FlowBinding& flow,
                std::span<const std::uint8_t> wire_solutions, std::uint32_t ts,
                puzzle::Difficulty diff, std::uint8_t sol_len) {
  std::vector<Bytes> values;
  values.reserve(diff.k);
  for (unsigned i = 0; i < diff.k; ++i) {
    values.emplace_back(wire_solutions.begin() + static_cast<long>(i) * sol_len,
                        wire_solutions.begin() +
                            static_cast<long>(i + 1) * sol_len);
  }
  const Bytes preimage = derive_preimage(secret, flow, ts, sol_len);
  for (unsigned i = 1; i <= diff.k; ++i) {
    const auto& v = values[i - 1];
    if (!prefix_matches(
            preimage,
            solution_check_hash(preimage, static_cast<std::uint8_t>(i), v),
            diff.m)) {
      return false;
    }
  }
  return true;
}

/// The pre-PR SynCookieCodec::mac24.
std::uint32_t cookie_mac24(const crypto::SecretKey& secret,
                           const tcp::FlowKey& flow, std::uint32_t client_isn,
                           std::uint32_t t, unsigned mss_idx) {
  Bytes msg;
  msg.reserve(32);
  const char label[] = "tcpz-syncookie-v1";
  msg.insert(msg.end(), label, label + sizeof(label) - 1);
  put_u32be(msg, flow.raddr);
  put_u16be(msg, flow.rport);
  put_u32be(msg, flow.laddr);
  put_u16be(msg, flow.lport);
  put_u32be(msg, client_isn);
  put_u32be(msg, t);
  msg.push_back(static_cast<std::uint8_t>(mss_idx));
  const auto digest = ref::hmac_sha256(secret.bytes(), msg);
  return (static_cast<std::uint32_t>(digest[0]) << 16) |
         (static_cast<std::uint32_t>(digest[1]) << 8) |
         static_cast<std::uint32_t>(digest[2]);
}

}  // namespace ref

struct Rate {
  double ops_per_sec;
  std::uint64_t sink;  ///< fold of the outputs, defeats dead-code elimination
};

template <typename F>
Rate timed(std::uint64_t iters, F&& op) {
  // Best of three repetitions: the checks below gate CI, so one scheduler
  // hiccup in a single pass must not fail the build — the best pass is the
  // closest measurement of what the code can do.
  std::uint64_t sink = 0;
  double best_secs = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    const double start = now_secs();
    for (std::uint64_t i = 0; i < iters; ++i) sink += op(i);
    const double secs = now_secs() - start;
    if (secs < best_secs) best_secs = secs;
  }
  return {static_cast<double>(iters) / best_secs, sink};
}

/// Times a reference/optimized pair with the repetitions interleaved
/// (ref, new, ref, new, ...), best-of-3 each: clock-frequency drift or a
/// noisy neighbour hits both sides instead of whichever phase it landed on,
/// which is what makes the speedup checks stable enough to gate CI.
template <typename FRef, typename FNew>
std::pair<Rate, Rate> timed_pair(std::uint64_t iters, FRef&& ref_op,
                                 FNew&& new_op) {
  std::uint64_t ref_sink = 0, new_sink = 0;
  double ref_best = 1e30, new_best = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    double start = now_secs();
    for (std::uint64_t i = 0; i < iters; ++i) ref_sink += ref_op(i);
    ref_best = std::min(ref_best, now_secs() - start);
    start = now_secs();
    for (std::uint64_t i = 0; i < iters; ++i) new_sink += new_op(i);
    new_best = std::min(new_best, now_secs() - start);
  }
  return {{static_cast<double>(iters) / ref_best, ref_sink},
          {static_cast<double>(iters) / new_best, new_sink}};
}

tcp::Segment make_challenge_segment() {
  tcp::Segment s;
  s.saddr = 0x0a010001;
  s.daddr = 0x0a020001;
  s.sport = 80;
  s.dport = 40000;
  s.seq = 7;
  s.ack = 12346;
  s.flags = tcp::kSyn | tcp::kAck;
  s.options.mss = 1460;
  s.options.wscale = 7;
  tcp::ChallengeOption c;
  c.k = 2;
  c.m = 17;
  c.sol_len = 8;
  c.embedded_ts = 1000;
  c.preimage = InlineBytes<tcp::kMaxPreimageBytes>(8, 0x5a);
  s.options.challenge = c;
  return s;
}

tcp::Segment make_solution_segment() {
  tcp::Segment s = make_challenge_segment();
  s.options.challenge.reset();
  tcp::SolutionOption sol;
  sol.mss = 1460;
  sol.wscale = 7;
  sol.embedded_ts = 1000;
  sol.solutions = InlineBytes<tcp::kMaxSolutionBytes>(16, 0xcd);
  s.options.solution = sol;
  return s;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Args args = benchutil::parse(argc, argv);
  (void)args;
  const bool smoke = has_flag(argc, argv, "--smoke");
  const std::uint64_t n = smoke ? 50'000 : 200'000;

  benchutil::header(
      "micro: crypto ops (HMAC midstate cache + zero-alloc packet path)",
      "caching the ipad/opad SHA-256 midstates per secret and keeping all "
      "packet buffers inline makes the HMAC-bound verify/cookie/challenge "
      "operations >= 1.5x faster than the seed implementation, with "
      "bit-identical outputs and zero heap allocations per segment copy");

  const puzzle::Difficulty diff{2, 10};
  puzzle::EngineConfig ecfg;
  ecfg.expiry_ms = 1u << 30;
  const puzzle::Sha256PuzzleEngine engine(kSecret, ecfg);

  // --- correctness gates: the optimized paths must be bit-identical --------
  Rng rng(7);
  bool hmac_identical = true;
  for (int i = 0; i < 256; ++i) {
    Bytes key(static_cast<std::size_t>(rng.uniform_u64(129)), 0);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
    Bytes msg(static_cast<std::size_t>(rng.uniform_u64(200)), 0);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
    const crypto::HmacKey cached((std::span<const std::uint8_t>(key)));
    hmac_identical &= cached.mac(msg) == crypto::hmac_sha256(key, msg);
  }

  const auto challenge = engine.make_challenge(kFlow, 1000, diff);
  std::uint64_t solve_ops = 0;
  const auto solution = engine.solve(challenge, kFlow, rng, solve_ops);
  const std::uint8_t sol_len = engine.config().sol_len;

  // The solutions exactly as an ACK carries them: k*l concatenated bytes.
  Bytes wire_valid;
  for (const auto& v : solution.values) {
    wire_valid.insert(wire_valid.end(), v.begin(), v.end());
  }
  const Bytes wire_bogus(wire_valid.size(), 0xaa);

  /// The optimized per-ACK path, as Listener::handle_solution_ack drives it:
  /// split into the inline-value Solution (no heap), virtual verify.
  const auto new_verify_ack = [&](std::span<const std::uint8_t> wire) {
    puzzle::Solution s;
    s.timestamp = 1000;
    for (unsigned i = 0; i < diff.k; ++i) {
      s.values.emplace_back(wire.begin() + static_cast<long>(i) * sol_len,
                            wire.begin() + static_cast<long>(i + 1) * sol_len);
    }
    return engine.verify(kFlow, s, diff, 1005).ok;
  };

  const bool verify_agrees =
      new_verify_ack(wire_valid) &&
      ref::verify_ack(kSecret, kFlow, wire_valid, 1000, diff, sol_len) &&
      !new_verify_ack(wire_bogus) &&
      !ref::verify_ack(kSecret, kFlow, wire_bogus, 1000, diff, sol_len);

  // --- HMAC: one-shot (key schedule every call) vs cached midstates --------
  std::uint8_t msg43[43];
  std::memset(msg43, 0xab, sizeof msg43);
  const auto [hmac_ref, hmac_new] = timed_pair(
      n,
      [&](std::uint64_t i) {
        msg43[0] = static_cast<std::uint8_t>(i);
        return static_cast<std::uint64_t>(
            ref::hmac_sha256(kSecret.bytes(),
                             std::span<const std::uint8_t>(msg43, sizeof msg43))[0]);
      },
      [&](std::uint64_t i) {
        msg43[0] = static_cast<std::uint8_t>(i);
        return static_cast<std::uint64_t>(kSecret.hmac().mac(
            std::span<const std::uint8_t>(msg43, sizeof msg43))[0]);
      });

  // --- per-ACK verification, valid and bogus (the §7 solution-flood cost) --
  const auto [verify_valid_ref, verify_valid_new] = timed_pair(
      n,
      [&](std::uint64_t) {
        return static_cast<std::uint64_t>(
            ref::verify_ack(kSecret, kFlow, wire_valid, 1000, diff, sol_len));
      },
      [&](std::uint64_t) {
        return static_cast<std::uint64_t>(new_verify_ack(wire_valid));
      });

  const auto [verify_bogus_ref, verify_bogus_new] = timed_pair(
      n,
      [&](std::uint64_t) {
        return static_cast<std::uint64_t>(
            ref::verify_ack(kSecret, kFlow, wire_bogus, 1000, diff, sol_len));
      },
      [&](std::uint64_t) {
        return static_cast<std::uint64_t>(new_verify_ack(wire_bogus));
      });

  // --- SYN cookies (encode = the per-SYN cost under cookie defense) --------
  const tcp::FlowKey cflow{0x0a020001, 40000, 0x0a010001, 80};
  const tcp::SynCookieCodec codec(kSecret);
  const auto [cookie_ref, cookie_new] = timed_pair(
      n,
      [&](std::uint64_t i) {
        return static_cast<std::uint64_t>(ref::cookie_mac24(
            kSecret, cflow, static_cast<std::uint32_t>(i), 15, 3));
      },
      [&](std::uint64_t i) {
        return static_cast<std::uint64_t>(
            codec.encode(cflow, static_cast<std::uint32_t>(i), 1460, 1000));
      });

  // --- challenge generation (the per-SYN cost under puzzle defense) --------
  const auto [challenge_ref, challenge_new] = timed_pair(
      n,
      [&](std::uint64_t i) {
        return static_cast<std::uint64_t>(
            ref::derive_preimage(kSecret, kFlow, static_cast<std::uint32_t>(i),
                                 engine.config().sol_len)[0]);
      },
      [&](std::uint64_t i) {
        return static_cast<std::uint64_t>(
            engine.make_challenge(kFlow, static_cast<std::uint32_t>(i), diff)
                .preimage[0]);
      });

  // --- segment copy: the link-delivery closure path, allocation-counted ----
  const tcp::Segment chal_seg = make_challenge_segment();
  const tcp::Segment sol_seg = make_solution_segment();
  const std::uint64_t copies = n * 10;
  const std::uint64_t allocs_before = tcpz_alloc_count();
  const Rate seg_copy = timed(copies, [&](std::uint64_t i) {
    // Copy both hot shapes and charge their wire size, exactly as
    // Link::transmit does per packet.
    tcp::Segment a = chal_seg;    // NOLINT(performance-unnecessary-copy)
    tcp::Segment b = sol_seg;     // NOLINT(performance-unnecessary-copy)
    a.seq = static_cast<std::uint32_t>(i);
    return static_cast<std::uint64_t>(a.wire_size() + b.wire_size());
  });
  const std::uint64_t copy_allocs = tcpz_alloc_count() - allocs_before;

  benchutil::metric("ops", static_cast<double>(n));
  benchutil::metric("hmac_oneshot_ops_per_sec", hmac_ref.ops_per_sec);
  benchutil::metric("hmac_cached_ops_per_sec", hmac_new.ops_per_sec);
  benchutil::metric("hmac_speedup", hmac_new.ops_per_sec / hmac_ref.ops_per_sec);
  benchutil::metric("verify_valid_ref_ops_per_sec", verify_valid_ref.ops_per_sec);
  benchutil::metric("verify_valid_ops_per_sec", verify_valid_new.ops_per_sec);
  benchutil::metric("verify_valid_speedup",
                    verify_valid_new.ops_per_sec / verify_valid_ref.ops_per_sec);
  benchutil::metric("verify_bogus_ref_ops_per_sec", verify_bogus_ref.ops_per_sec);
  benchutil::metric("verify_bogus_ops_per_sec", verify_bogus_new.ops_per_sec);
  benchutil::metric("verify_bogus_speedup",
                    verify_bogus_new.ops_per_sec / verify_bogus_ref.ops_per_sec);
  benchutil::metric("cookie_ref_ops_per_sec", cookie_ref.ops_per_sec);
  benchutil::metric("cookie_ops_per_sec", cookie_new.ops_per_sec);
  benchutil::metric("cookie_speedup",
                    cookie_new.ops_per_sec / cookie_ref.ops_per_sec);
  benchutil::metric("challenge_ref_ops_per_sec", challenge_ref.ops_per_sec);
  benchutil::metric("challenge_ops_per_sec", challenge_new.ops_per_sec);
  benchutil::metric("challenge_speedup",
                    challenge_new.ops_per_sec / challenge_ref.ops_per_sec);
  benchutil::metric("segment_copy_pairs_per_sec", seg_copy.ops_per_sec);
  benchutil::metric("segment_copy_heap_allocs",
                    static_cast<double>(copy_allocs));

  benchutil::check("cached-midstate HMAC == one-shot HMAC (random key/msg)",
                   hmac_identical);
  benchutil::check("optimized verify agrees with the reference verify",
                   verify_agrees);
  benchutil::check("cached HMAC >= 1.5x one-shot",
                   hmac_new.ops_per_sec >= 1.5 * hmac_ref.ops_per_sec);
  benchutil::check(
      "valid-solution verify >= 1.5x the seed implementation",
      verify_valid_new.ops_per_sec >= 1.5 * verify_valid_ref.ops_per_sec);
  benchutil::check(
      "bogus-solution verify >= 1.5x the seed implementation",
      verify_bogus_new.ops_per_sec >= 1.5 * verify_bogus_ref.ops_per_sec);
  benchutil::check("SYN-cookie encode >= 1.5x the seed implementation",
                   cookie_new.ops_per_sec >= 1.5 * cookie_ref.ops_per_sec);
  benchutil::check(
      "challenge generation >= 1.5x the seed implementation",
      challenge_new.ops_per_sec >= 1.5 * challenge_ref.ops_per_sec);
  benchutil::check("zero heap allocations per segment copy", copy_allocs == 0);

  // Keep the sinks alive.
  if ((hmac_ref.sink ^ hmac_new.sink ^ verify_valid_ref.sink ^
       verify_valid_new.sink ^ verify_bogus_ref.sink ^ verify_bogus_new.sink ^
       cookie_ref.sink ^ cookie_new.sink ^ challenge_ref.sink ^
       challenge_new.sink ^ seg_copy.sink) == 0xdeadbeef) {
    std::printf("(sink)\n");
  }
  return benchutil::finish();
}
