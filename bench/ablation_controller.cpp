// Ablation: the protection-controller design choices DESIGN.md calls out.
//
//  (a) protection hold — how long "protection in effect" persists after the
//      last full-queue observation. Short holds flap: every lapse re-admits
//      an accept-backlog's worth of flood connections.
//  (b) engage water — the queue occupancy that counts as "full" for the
//      controller. Engaging early shrinks the ramp-up burst but prevents
//      the listen queue from capturing parked attack state.
//  (c) adaptive difficulty (§7 extension) vs the fixed Nash setting.
//
// Metrics per variant: attacker established cps and aggregate client Mbps
// over the attack window.
#include "bench_common.hpp"

using namespace tcpz;

namespace {

struct Outcome {
  double attacker_cps;
  double client_mbps;
};

Outcome run(sim::ScenarioConfig cfg) {
  const auto res = sim::run_scenario(cfg);
  const std::size_t a = benchutil::atk_lo(cfg), b = benchutil::atk_hi(cfg);
  return {res.server.attacker_cps(a, b), res.client_rx_mbps(a, b)};
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::parse(argc, argv);
  sim::ScenarioConfig base = benchutil::paper_scenario(args);
  base.attack = sim::AttackType::kConnFlood;
  base.policy = defense::PolicySpec::puzzles();
  base.difficulty = {2, 17};

  benchutil::header(
      "Ablation: protection controller design choices",
      "hold >= attack-refill period prevents flapping; engage water trades "
      "ramp burst vs captured attack state; adaptive difficulty tracks load");

  std::printf("(a) protection hold sweep (attack window %zu-%zu s):\n",
              base.attack_start_bin(), base.attack_end_bin());
  std::printf("%-12s %16s %16s\n", "hold (s)", "attacker cps", "client Mbps");
  double cps_short = 0, cps_long = 0;
  for (const int hold : {2, 5, 15, 60, 120}) {
    sim::ScenarioConfig cfg = base;
    cfg.policy->protection_hold = SimTime::seconds(hold);
    const Outcome o = run(cfg);
    if (hold == 2) cps_short = o.attacker_cps;
    if (hold == 120) cps_long = o.attacker_cps;
    std::printf("%-12d %16.1f %16.1f\n", hold, o.attacker_cps, o.client_mbps);
  }
  benchutil::check("short holds leak far more attacker connections (>= 3x)",
                   cps_short >= 3.0 * std::max(cps_long, 0.5));

  std::printf("\n(b) engage-water sweep:\n");
  std::printf("%-12s %16s %16s\n", "water", "attacker cps", "client Mbps");
  for (const double w : {0.25, 0.5, 1.0}) {
    sim::ScenarioConfig cfg = base;
    cfg.policy->protection_engage_water = w;
    const Outcome o = run(cfg);
    std::printf("%-12.2f %16.1f %16.1f\n", w, o.attacker_cps, o.client_mbps);
  }

  std::printf("\n(c) fixed Nash vs adaptive difficulty:\n");
  std::printf("%-12s %16s %16s %12s\n", "variant", "attacker cps",
              "client Mbps", "max m");
  const Outcome fixed = run(base);
  std::printf("%-12s %16.1f %16.1f %12d\n", "fixed", fixed.attacker_cps,
              fixed.client_mbps, base.difficulty.m);

  sim::ScenarioConfig ad = base;
  AdaptiveConfig actl;
  actl.base = {2, 15};  // start easier than Nash; let the loop harden it
  actl.m_max = 20;
  actl.high_demand = 1000.0;
  actl.low_demand = 100.0;
  actl.patience = 2;
  ad.difficulty = actl.base;
  ad.policy = defense::PolicySpec::puzzles().with_adaptive(actl);
  const auto ad_res = sim::run_scenario(ad);
  benchutil::label("adaptive_policy", ad_res.server.policy);
  benchutil::metric("adaptive_final_m", ad_res.server.final_difficulty_m);
  const std::size_t a = benchutil::atk_lo(ad), b = benchutil::atk_hi(ad);
  const double ad_cps = ad_res.server.attacker_cps(a, b);
  const double ad_mbps = ad_res.client_rx_mbps(a, b);
  const double m_max_seen = ad_res.server.difficulty_m.max_in(
      ad.attack_start, SimTime::seconds(static_cast<std::int64_t>(b)));
  std::printf("%-12s %16.1f %16.1f %12.0f\n", "adaptive", ad_cps, ad_mbps,
              m_max_seen);

  benchutil::check("adaptive loop hardens beyond its easy base during the "
                   "attack",
                   m_max_seen > actl.base.m);
  benchutil::check("adaptive keeps the attacker within 3x of the fixed Nash "
                   "setting",
                   ad_cps <= 3.0 * std::max(fixed.attacker_cps, 1.0) + 5.0);

  return benchutil::finish();
}
