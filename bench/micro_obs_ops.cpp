// Observability-layer microbenchmark: the cost of seeing everything.
//
// Three claims are checked (the obs/trace.hpp contract):
//  * a disabled tracepoint (no recorder installed) costs a load + predictable
//    branch — low single-digit nanoseconds, indistinguishable from free;
//  * an enabled record() is a masked store into the preallocated ring —
//    tens of nanoseconds at most, no allocation;
//  * end to end, full-firehose tracing (every category, ring large enough to
//    wrap thousands of times) adds <= 5% wall time to the mega-botnet smoke
//    scenario — the flight recorder never perturbs what it observes.
//
// Self-contained (no Google Benchmark) so it always builds; cheap enough in
// --smoke mode for the CI bench-smoke step. Floors are loosened under
// --smoke (short runs on noisy CI shares); the Release CI job runs the full
// floors.
#include <algorithm>
#include <chrono>
#include <cstring>

#include "bench_common.hpp"
#include "obs/trace.hpp"
#include "offense/spec.hpp"

namespace {

using tcpz::SimTime;

/// Compiler barrier: keeps the measured loop from folding away without
/// paying for a function call (what benchmark::DoNotOptimize does).
template <typename T>
inline void escape(T& v) {
  asm volatile("" : "+g"(v) : : "memory");
}

double wall_seconds(const std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// ns per TCPZ_TRACE with NO recorder installed: the price every packet in
/// every untraced run pays at every tracepoint.
double measure_disabled_ns(std::uint64_t iters) {
  if (tcpz::obs::recorder() != nullptr) tcpz::obs::install_recorder(nullptr);
  std::uint64_t acc = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    TCPZ_TRACE(SimTime::nanoseconds(static_cast<std::int64_t>(i)),
               tcpz::obs::Code::kFire, 0, i);
    acc += i;
    escape(acc);
  }
  const double secs = wall_seconds(start);
  escape(acc);
  return secs * 1e9 / static_cast<double>(iters);
}

/// The same loop without the tracepoint — the baseline the disabled cost is
/// measured against.
double measure_baseline_ns(std::uint64_t iters) {
  std::uint64_t acc = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    acc += i;
    escape(acc);
  }
  const double secs = wall_seconds(start);
  escape(acc);
  return secs * 1e9 / static_cast<double>(iters);
}

/// ns per record() with a recorder installed, through the macro and the
/// flow-key overload (the listener's hot-path shape), wrapping the ring.
double measure_record_ns(std::uint64_t iters) {
  tcpz::obs::Recorder rec(1u << 16);
  tcpz::obs::ScopedRecorder scoped(&rec);
  const tcpz::tcp::FlowKey flow{tcpz::tcp::ipv4(10, 2, 0, 1), 40'000,
                                tcpz::tcp::ipv4(10, 1, 0, 1), 80};
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    TCPZ_TRACE(SimTime::nanoseconds(static_cast<std::int64_t>(i)),
               tcpz::obs::Code::kSynEnqueue, 1, flow, i);
  }
  const double secs = wall_seconds(start);
  if (rec.total_recorded() != iters) std::printf("BUG: events lost\n");
  return secs * 1e9 / static_cast<double>(iters);
}

/// The mega-botnet smoke scenario (bench/mega_botnet.cpp, --smoke shape):
/// the heaviest standard workload, used here to price tracing end to end.
tcpz::scenario::Spec mega_smoke_spec(std::uint64_t seed) {
  namespace scenario = tcpz::scenario;
  scenario::Spec spec;
  spec.seed = seed;
  spec = spec.scaled();
  spec.duration = SimTime::seconds(40);
  spec.attack_start = SimTime::seconds(10);
  spec.attack_end = SimTime::seconds(35);
  spec.servers.policies = {tcpz::defense::PolicySpec::puzzles()};
  spec.servers.n_workers = 8192;
  spec.servers.service_rate = 8800.0;
  spec.servers.listen_backlog = 16'384;
  spec.servers.accept_backlog = 4096;
  scenario::AttackSpec atk;
  atk.count = 40;
  atk.strategy = tcpz::offense::StrategySpec::conn_flood(/*patched=*/true);
  spec.attacks = {atk};
  return spec;
}

/// Min-of-n wall seconds for the spec (min filters scheduler noise — the
/// question is the cost the recorder ADDS, not the machine's variance).
double scenario_wall_secs(const tcpz::scenario::Spec& spec, int reps) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    best = std::min(best, tcpz::scenario::run(spec).wall_seconds);
  }
  return best;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Args args = benchutil::parse(argc, argv);
  const bool smoke = has_flag(argc, argv, "--smoke");
  const std::uint64_t iters = smoke ? 2'000'000 : 20'000'000;
  const int reps = smoke ? 2 : 3;

  benchutil::header(
      "micro: flight-recorder ops (tracepoint / record / end-to-end)",
      "disabled tracepoints are branch-cheap, enabled records are a ring "
      "store, and full tracing adds <= 5% wall time to the mega-botnet "
      "smoke scenario");

  // Warm-up.
  (void)measure_record_ns(iters / 10);
  (void)measure_disabled_ns(iters / 10);

  const double baseline_ns = measure_baseline_ns(iters);
  const double disabled_ns = measure_disabled_ns(iters);
  const double record_ns = measure_record_ns(iters);
  const double disabled_delta = std::max(0.0, disabled_ns - baseline_ns);

  benchutil::metric("loop_baseline_ns", baseline_ns);
  benchutil::metric("trace_disabled_ns", disabled_ns);
  benchutil::metric("trace_disabled_delta_ns", disabled_delta);
  benchutil::metric("record_enabled_ns", record_ns);

  // End to end: untraced vs full-firehose traced (all categories on, ring
  // small enough that it wraps constantly — wrap is the steady state).
  const tcpz::scenario::Spec plain = mega_smoke_spec(args.seed);
  tcpz::scenario::Spec traced = plain;
  traced.obs.trace = true;
  traced.obs.ring_capacity = 1u << 16;
  const double plain_secs = scenario_wall_secs(plain, reps);
  const double traced_secs = scenario_wall_secs(traced, reps);
  const double overhead_pct = 100.0 * (traced_secs - plain_secs) / plain_secs;

  benchutil::metric("mega_smoke_untraced_secs", plain_secs);
  benchutil::metric("mega_smoke_traced_secs", traced_secs);
  benchutil::metric("mega_smoke_trace_overhead_pct", overhead_pct);

  // Floors. Smoke runs on noisy CI shares get looser bounds; Release CI
  // runs the full floors (the ISSUE's acceptance bar).
  const double max_disabled = smoke ? 10.0 : 5.0;   // ns over baseline
  const double max_record = smoke ? 250.0 : 100.0;  // ns per enabled record
  const double max_overhead = smoke ? 25.0 : 5.0;   // wall-time %
  benchutil::check("disabled tracepoint adds only branch-level cost",
                   disabled_delta <= max_disabled);
  benchutil::check("enabled record() is a cheap ring store",
                   record_ns <= max_record);
  benchutil::check("full tracing stays within the wall-time budget",
                   overhead_pct <= max_overhead);

  return benchutil::finish();
}
