// Core value types of the Juels–Brainard client-puzzle scheme as used by the
// paper (§4): a challenge is the first l bits of y = h(secret, T, packet
// data); a solution is k bitstrings s_i such that the first m bits of
// h(P || i || s_i) equal the first m bits of P.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

#include "util/bytes.hpp"
#include "util/inline_bytes.hpp"

namespace tcpz::puzzle {

/// l is bounded by the engine (sol_len in [1, 32]); the pre-image and each
/// solution value therefore fit a 32-byte inline buffer.
inline constexpr std::size_t kMaxSolLen = 32;
/// The k concatenated solution values must cross the wire inside the 40-byte
/// TCP option space, so k·l <= 40 and (with l >= 1) k <= 40. The engines
/// enforce k <= 40 at challenge creation (the representability bound of
/// this vector); a k·l product beyond 40 is legal for engine-only use (the
/// k=4, l=16 test grids) and throws std::length_error only if packed into a
/// SolutionOption — where the seed's wire encoder threw too.
inline constexpr std::size_t kMaxSolutionValues = 40;

/// One s_i: sol_len bytes, inline. Copying a Solution (or a Segment carrying
/// the wire form) never touches the heap.
using SolutionValue = InlineBytes<kMaxSolLen>;
/// The pre-image P: the first sol_len bytes of the keyed hash.
using Preimage = InlineBytes<kMaxSolLen>;

/// Puzzle difficulty (k, m): k solutions of m bits each.
/// Expected client work is k * 2^(m-1) hash operations (§4.1).
struct Difficulty {
  std::uint8_t k = 1;  ///< number of solutions requested
  std::uint8_t m = 16; ///< bits of difficulty per solution

  /// ℓ(p): expected hash operations to solve by brute force.
  [[nodiscard]] double expected_solve_hashes() const {
    return static_cast<double>(k) * std::exp2(static_cast<double>(m) - 1.0);
  }
  /// d(p): expected server hash operations to verify (1 pre-image + k/2).
  [[nodiscard]] double expected_verify_hashes() const {
    return 1.0 + static_cast<double>(k) / 2.0;
  }
  /// g(p): hash operations to generate a challenge.
  [[nodiscard]] static double generate_hashes() { return 1.0; }
  /// Probability that an adversary guesses a full solution blindly: 2^-(k*m).
  [[nodiscard]] double guess_probability() const {
    return std::exp2(-static_cast<double>(k) * static_cast<double>(m));
  }
  /// Guessing resistance in bits (k*m).
  [[nodiscard]] unsigned guess_bits() const {
    return static_cast<unsigned>(k) * static_cast<unsigned>(m);
  }

  bool operator==(const Difficulty&) const = default;
  [[nodiscard]] std::string to_string() const;
};

/// The TCP 4-tuple plus ISN that binds a puzzle to one connection attempt.
struct FlowBinding {
  std::uint32_t saddr = 0;
  std::uint32_t daddr = 0;
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint32_t isn = 0;  ///< client's initial sequence number

  bool operator==(const FlowBinding&) const = default;
};

/// A challenge as issued by the server. `preimage` is the first
/// `sol_len` bytes of the keyed hash; `timestamp` is the server clock value
/// (milliseconds) folded into the pre-image, echoed back by the client so the
/// server can re-derive the challenge statelessly and enforce expiry.
struct Challenge {
  Difficulty diff;
  std::uint8_t sol_len = 8;  ///< l: bytes per solution and pre-image
  std::uint32_t timestamp = 0;
  Preimage preimage;

  bool operator==(const Challenge&) const = default;
};

/// A solution as produced by the client: k values of sol_len bytes, plus the
/// echoed timestamp.
struct Solution {
  InlineVec<SolutionValue, kMaxSolutionValues> values;
  std::uint32_t timestamp = 0;

  bool operator==(const Solution&) const = default;
};

enum class VerifyError {
  kNone,
  kExpired,         ///< echoed timestamp too old (replay window exceeded)
  kFutureTimestamp, ///< echoed timestamp ahead of server clock
  kWrongCount,      ///< number of solutions != k
  kWrongLength,     ///< some solution is not sol_len bytes
  kBadSolution,     ///< an m-bit prefix check failed
};

[[nodiscard]] const char* to_string(VerifyError e);

/// Result of a verification, with the number of hash operations the server
/// spent (charged to the server CPU model by the simulator).
struct VerifyOutcome {
  bool ok = false;
  VerifyError error = VerifyError::kNone;
  std::uint64_t hash_ops = 0;
};

}  // namespace tcpz::puzzle
