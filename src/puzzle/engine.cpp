#include "puzzle/engine.hpp"

#include <stdexcept>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace tcpz::puzzle {
namespace {

// Domain-separation labels: the pre-image derivation and the oracle solution
// derivation must never collide with each other or with SYN-cookie MACs.
constexpr std::string_view kPreimageLabel = "tcpz-puzzle-preimage-v1";
constexpr std::string_view kOracleLabel = "tcpz-puzzle-oracle-v1";

Bytes preimage_message(const FlowBinding& flow, std::uint32_t timestamp_ms) {
  Bytes msg;
  msg.reserve(kPreimageLabel.size() + 20);
  msg.insert(msg.end(), kPreimageLabel.begin(), kPreimageLabel.end());
  put_u32be(msg, timestamp_ms);
  put_u32be(msg, flow.isn);
  put_u32be(msg, flow.saddr);
  put_u32be(msg, flow.daddr);
  put_u16be(msg, flow.sport);
  put_u16be(msg, flow.dport);
  return msg;
}

/// h(P || i || s): the solution-check hash of the scheme. `i` is the 1-based
/// solution index, encoded in one byte as in our wire format.
crypto::Sha256Digest solution_check_hash(const Bytes& preimage,
                                         std::uint8_t index,
                                         const Bytes& candidate) {
  crypto::Sha256 h;
  h.update(preimage);
  const std::uint8_t idx[1] = {index};
  h.update(std::span<const std::uint8_t>(idx, 1));
  h.update(candidate);
  return h.finalize();
}

/// The scheme compares the first m bits of h(P||i||s) with the first m bits
/// of P. P is `sol_len` bytes; m is guaranteed < 8*sol_len by construction.
bool prefix_matches(const Bytes& preimage, const crypto::Sha256Digest& digest,
                    unsigned m_bits) {
  crypto::Sha256Digest p{};
  const std::size_t n = std::min(preimage.size(), p.size());
  std::copy(preimage.begin(), preimage.begin() + static_cast<long>(n), p.begin());
  return crypto::prefix_bits_equal(p, digest, m_bits);
}

/// Timestamp freshness shared by both engines. The 32-bit millisecond wire
/// timestamp wraps every ~49.7 simulated days, so the comparison uses
/// serial-number arithmetic (RFC 1982 style): the signed difference decides
/// which side of "now" the echo sits on, and is exact as long as the true
/// skew is under ~24.8 days — astronomically beyond any puzzle expiry. The
/// naive `echoed + expiry < now` form misfired at the wrap: a fresh solution
/// echoed just before the wrap looked like it came from the far future.
VerifyError check_freshness(std::uint32_t echoed_ms, std::uint32_t now_ms,
                            const EngineConfig& cfg) {
  const std::int32_t age_ms = static_cast<std::int32_t>(now_ms - echoed_ms);
  if (age_ms < 0) {
    // Negate through int64: -INT32_MIN does not fit an int32.
    const auto ahead_ms =
        static_cast<std::uint32_t>(-static_cast<std::int64_t>(age_ms));
    if (ahead_ms > cfg.future_slack_ms) return VerifyError::kFutureTimestamp;
    return VerifyError::kNone;
  }
  if (static_cast<std::uint32_t>(age_ms) > cfg.expiry_ms) {
    return VerifyError::kExpired;
  }
  return VerifyError::kNone;
}

void validate_difficulty(Difficulty diff, const EngineConfig& cfg) {
  if (diff.k == 0) throw std::invalid_argument("puzzle: k must be >= 1");
  if (diff.m == 0) throw std::invalid_argument("puzzle: m must be >= 1");
  if (diff.m >= cfg.sol_len * 8u) {
    throw std::invalid_argument(
        "puzzle: m must be < 8*sol_len (the m-bit prefix lives in the "
        "sol_len-byte pre-image)");
  }
}

}  // namespace

std::uint64_t sample_solve_hashes(Difficulty diff, Rng& rng) {
  // The paper's cost model (§4.1): one solution takes "a maximum of 2^m and
  // an average of 2^(m-1)" hash operations, i.e. the solution is uniformly
  // located in a search space of 2^m candidates. (An unbounded random search
  // is geometric with mean 2^m — see the Sha256 engine tests; we follow the
  // paper's model so ℓ(p) = k·2^(m-1) prices the simulated work exactly.)
  const std::uint64_t space = 1ull << diff.m;
  std::uint64_t total = 0;
  for (unsigned i = 0; i < diff.k; ++i) total += 1 + rng.uniform_u64(space);
  return total;
}

// ---------------------------------------------------------------------------
// Sha256PuzzleEngine
// ---------------------------------------------------------------------------

Sha256PuzzleEngine::Sha256PuzzleEngine(crypto::SecretKey secret,
                                       EngineConfig cfg)
    : secret_(secret), cfg_(cfg) {
  if (cfg_.sol_len == 0 || cfg_.sol_len > 32) {
    throw std::invalid_argument("puzzle: sol_len must be in [1, 32]");
  }
}

Bytes Sha256PuzzleEngine::derive_preimage(const FlowBinding& flow,
                                          std::uint32_t timestamp_ms) const {
  const auto digest =
      crypto::hmac_sha256(secret_.bytes(), preimage_message(flow, timestamp_ms));
  return Bytes(digest.begin(), digest.begin() + cfg_.sol_len);
}

Challenge Sha256PuzzleEngine::make_challenge(const FlowBinding& flow,
                                             std::uint32_t timestamp_ms,
                                             Difficulty diff) const {
  validate_difficulty(diff, cfg_);
  Challenge c;
  c.diff = diff;
  c.sol_len = cfg_.sol_len;
  c.timestamp = timestamp_ms;
  c.preimage = derive_preimage(flow, timestamp_ms);
  return c;
}

bool Sha256PuzzleEngine::candidate_matches(const Challenge& challenge,
                                           std::uint8_t index,
                                           const Bytes& candidate) {
  return prefix_matches(challenge.preimage,
                        solution_check_hash(challenge.preimage, index, candidate),
                        challenge.diff.m);
}

Solution Sha256PuzzleEngine::solve(const Challenge& challenge,
                                   const FlowBinding& /*flow*/, Rng& rng,
                                   std::uint64_t& hash_ops_out) const {
  Solution sol;
  sol.timestamp = challenge.timestamp;
  sol.values.reserve(challenge.diff.k);
  hash_ops_out = 0;

  for (unsigned i = 1; i <= challenge.diff.k; ++i) {
    // Start the counter at a random point so repeated solves of equivalent
    // puzzles do not share a search prefix (and so the hash-op count is a
    // true geometric sample, as the analysis assumes).
    std::uint64_t counter = rng.next();
    Bytes candidate(challenge.sol_len, 0);
    for (;;) {
      // Candidate = counter in big-endian, repeated/truncated to sol_len.
      for (std::size_t b = 0; b < candidate.size(); ++b) {
        candidate[b] =
            static_cast<std::uint8_t>(counter >> (8 * ((candidate.size() - 1 - b) % 8)));
      }
      ++hash_ops_out;
      if (prefix_matches(
              challenge.preimage,
              solution_check_hash(challenge.preimage,
                                  static_cast<std::uint8_t>(i), candidate),
              challenge.diff.m)) {
        sol.values.push_back(candidate);
        break;
      }
      ++counter;
    }
  }
  return sol;
}

VerifyOutcome Sha256PuzzleEngine::verify(const FlowBinding& flow,
                                         const Solution& solution,
                                         Difficulty diff,
                                         std::uint32_t now_ms) const {
  VerifyOutcome out;
  if (const VerifyError fresh = check_freshness(solution.timestamp, now_ms, cfg_);
      fresh != VerifyError::kNone) {
    out.error = fresh;
    return out;
  }
  if (solution.values.size() != diff.k) {
    out.error = VerifyError::kWrongCount;
    return out;
  }
  for (const auto& v : solution.values) {
    if (v.size() != cfg_.sol_len) {
      out.error = VerifyError::kWrongLength;
      return out;
    }
  }

  // One hash to re-derive the pre-image (statelessness: nothing was stored).
  const Bytes preimage = derive_preimage(flow, solution.timestamp);
  out.hash_ops = 1;

  for (unsigned i = 1; i <= diff.k; ++i) {
    ++out.hash_ops;
    if (!prefix_matches(preimage,
                        solution_check_hash(preimage, static_cast<std::uint8_t>(i),
                                            solution.values[i - 1]),
                        diff.m)) {
      out.error = VerifyError::kBadSolution;
      return out;
    }
  }
  out.ok = true;
  return out;
}

// ---------------------------------------------------------------------------
// OraclePuzzleEngine
// ---------------------------------------------------------------------------

OraclePuzzleEngine::OraclePuzzleEngine(crypto::SecretKey secret,
                                       EngineConfig cfg)
    : secret_(secret), cfg_(cfg) {
  if (cfg_.sol_len == 0 || cfg_.sol_len > 32) {
    throw std::invalid_argument("puzzle: sol_len must be in [1, 32]");
  }
}

Bytes OraclePuzzleEngine::derive_preimage(const FlowBinding& flow,
                                          std::uint32_t timestamp_ms) const {
  const auto digest =
      crypto::hmac_sha256(secret_.bytes(), preimage_message(flow, timestamp_ms));
  return Bytes(digest.begin(), digest.begin() + cfg_.sol_len);
}

Bytes OraclePuzzleEngine::oracle_solution(const Bytes& preimage,
                                          std::uint8_t index) const {
  // Derived from the challenge pre-image alone, NOT the server secret:
  // solving must not require anything beyond the SYN-ACK bytes (a real
  // client brute-forces from the challenge), and in a fleet that rotates its
  // secret, old challenges must stay solvable by clients that know nothing
  // about epochs. Verification still binds solutions to the secret — and to
  // the minting epoch — because the verifier re-derives the pre-image from
  // its own secret and the echoed flow/timestamp.
  Bytes msg;
  msg.reserve(kOracleLabel.size() + preimage.size() + 1);
  msg.insert(msg.end(), kOracleLabel.begin(), kOracleLabel.end());
  msg.insert(msg.end(), preimage.begin(), preimage.end());
  msg.push_back(index);
  const auto digest = crypto::Sha256::hash(msg);
  return Bytes(digest.begin(), digest.begin() + cfg_.sol_len);
}

Challenge OraclePuzzleEngine::make_challenge(const FlowBinding& flow,
                                             std::uint32_t timestamp_ms,
                                             Difficulty diff) const {
  validate_difficulty(diff, cfg_);
  Challenge c;
  c.diff = diff;
  c.sol_len = cfg_.sol_len;
  c.timestamp = timestamp_ms;
  c.preimage = derive_preimage(flow, timestamp_ms);
  return c;
}

Solution OraclePuzzleEngine::solve(const Challenge& challenge,
                                   const FlowBinding& /*flow*/, Rng& rng,
                                   std::uint64_t& hash_ops_out) const {
  Solution sol;
  sol.timestamp = challenge.timestamp;
  sol.values.reserve(challenge.diff.k);
  for (unsigned i = 1; i <= challenge.diff.k; ++i) {
    sol.values.push_back(
        oracle_solution(challenge.preimage, static_cast<std::uint8_t>(i)));
  }
  hash_ops_out = sample_solve_hashes(challenge.diff, rng);
  return sol;
}

VerifyOutcome OraclePuzzleEngine::verify(const FlowBinding& flow,
                                         const Solution& solution,
                                         Difficulty diff,
                                         std::uint32_t now_ms) const {
  VerifyOutcome out;
  if (const VerifyError fresh = check_freshness(solution.timestamp, now_ms, cfg_);
      fresh != VerifyError::kNone) {
    out.error = fresh;
    return out;
  }
  if (solution.values.size() != diff.k) {
    out.error = VerifyError::kWrongCount;
    return out;
  }
  const Bytes preimage = derive_preimage(flow, solution.timestamp);
  // Cost model mirrors the paper's d(p) = 1 + k/2: one pre-image derivation
  // plus prefix checks. We charge the full-verify cost 1 + k on success and
  // the early-exit position on failure, same as the real engine.
  out.hash_ops = 1;
  for (unsigned i = 1; i <= diff.k; ++i) {
    ++out.hash_ops;
    const Bytes expected =
        oracle_solution(preimage, static_cast<std::uint8_t>(i));
    const Bytes& got = solution.values[i - 1];
    if (got.size() != preimage.size() ||
        !ct_equal(std::span<const std::uint8_t>(got),
                  std::span<const std::uint8_t>(expected))) {
      out.error = got.size() == preimage.size() ? VerifyError::kBadSolution
                                                : VerifyError::kWrongLength;
      return out;
    }
  }
  out.ok = true;
  return out;
}

}  // namespace tcpz::puzzle
