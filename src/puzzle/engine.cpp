#include "puzzle/engine.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace tcpz::puzzle {
namespace {

// Domain-separation labels: the pre-image derivation and the oracle solution
// derivation must never collide with each other or with SYN-cookie MACs.
constexpr std::string_view kPreimageLabel = "tcpz-puzzle-preimage-v1";
constexpr std::string_view kOracleLabel = "tcpz-puzzle-oracle-v1";

/// Assembles the pre-image HMAC input into a caller-provided stack buffer
/// (label + timestamp + flow identity, 43 bytes) — no heap on the per-packet
/// path. Returns the message length.
std::size_t preimage_message(const FlowBinding& flow, std::uint32_t timestamp_ms,
                             std::uint8_t* out) {
  std::memcpy(out, kPreimageLabel.data(), kPreimageLabel.size());
  std::uint8_t* p = out + kPreimageLabel.size();
  p = store_u32be(p, timestamp_ms);
  p = store_u32be(p, flow.isn);
  p = store_u32be(p, flow.saddr);
  p = store_u32be(p, flow.daddr);
  p = store_u16be(p, flow.sport);
  p = store_u16be(p, flow.dport);
  return static_cast<std::size_t>(p - out);
}

/// One cached-midstate HMAC (~2 compressions), truncated to sol_len bytes.
Preimage derive_preimage_with(const crypto::HmacKey& key,
                              const FlowBinding& flow,
                              std::uint32_t timestamp_ms,
                              std::uint8_t sol_len) {
  std::uint8_t msg[64];
  const std::size_t n = preimage_message(flow, timestamp_ms, msg);
  const auto digest = key.mac(std::span<const std::uint8_t>(msg, n));
  return Preimage(std::span<const std::uint8_t>(digest.data(), sol_len));
}

/// The m-bit prefix condition on h(P || i || s_i), with everything invariant
/// across candidates hoisted out of the search loop: the brute force
/// evaluates ~2^(m-1) candidates per solution, and each of them used to
/// re-absorb P and i from scratch and re-pad P into a digest-sized target.
/// Here the P ‖ i prefix is written into a contiguous stack message once per
/// index (and the padded target once per search); a candidate check is one
/// tail memcpy plus the hash itself. The whole message is at most
/// 2*kMaxSolLen+1 = 65 bytes, so midstate tricks buy nothing over hashing
/// the assembled buffer — the win is not rebuilding it ~2^(m-1) times.
class SolutionChecker {
 public:
  SolutionChecker(std::span<const std::uint8_t> preimage, unsigned m_bits)
      : len_(preimage.size()), m_bits_(m_bits) {
    std::memcpy(block_, preimage.data(), len_);
    const std::size_t n = std::min(preimage.size(), target_.size());
    std::copy(preimage.begin(), preimage.begin() + static_cast<long>(n),
              target_.begin());
    // |P ‖ i ‖ s| = 2*sol_len + 1 <= 65; with sol_len <= 27 the message plus
    // SHA-256 padding fits one 64-byte block, so the padding and the length
    // field are ALSO loop invariants — prebuild the whole padded block and
    // run the bare compression function per candidate.
    single_block_ = 2 * len_ + 1 <= 55;
    if (single_block_) {
      const std::size_t msg_len = 2 * len_ + 1;
      std::memset(block_ + msg_len, 0, sizeof(block_) - msg_len);
      block_[msg_len] = 0x80;
      const std::uint64_t bits = msg_len * 8;
      for (int i = 0; i < 8; ++i) {
        block_[56 + i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
      }
      // The m-bit comparison, precomputed at word level: the compression
      // output is compared as big-endian words, skipping the digest
      // serialization entirely on the per-candidate path.
      for (int i = 0; i < 8; ++i) {
        target_words_[static_cast<std::size_t>(i)] =
            (static_cast<std::uint32_t>(target_[i * 4]) << 24) |
            (static_cast<std::uint32_t>(target_[i * 4 + 1]) << 16) |
            (static_cast<std::uint32_t>(target_[i * 4 + 2]) << 8) |
            static_cast<std::uint32_t>(target_[i * 4 + 3]);
      }
    }
  }

  /// Fixes the 1-based solution index; invariant for a whole search.
  void set_index(std::uint8_t index) { block_[len_] = index; }

  /// One candidate check: splice s into the prebuilt P||i message, hash,
  /// compare m bits.
  [[nodiscard]] bool matches(std::span<const std::uint8_t> candidate) const {
    if (candidate.size() != len_) {
      // Off-length probe (candidate_matches is public): the prebuilt block
      // assumes |s| == sol_len and cannot hold an arbitrary candidate, so
      // hash P||i||s incrementally — same bytes the seed implementation
      // hashed, any length.
      crypto::Sha256 h;
      h.update(std::span<const std::uint8_t>(block_, len_ + 1));
      h.update(candidate);
      return crypto::prefix_bits_equal(target_, h.finalize(), m_bits_);
    }
    std::memcpy(block_ + len_ + 1, candidate.data(), candidate.size());
    if (single_block_) {
      crypto::Sha256::State s = crypto::Sha256::initial_state();
      crypto::Sha256::compress(s, block_);
      const unsigned full_words = m_bits_ / 32;
      for (unsigned i = 0; i < full_words; ++i) {
        if (s[i] != target_words_[i]) return false;
      }
      const unsigned rem = m_bits_ % 32;
      if (rem == 0) return true;
      const std::uint32_t mask = ~std::uint32_t{0} << (32 - rem);
      return ((s[full_words] ^ target_words_[full_words]) & mask) == 0;
    }
    const crypto::Sha256Digest d = crypto::Sha256::hash(
        std::span<const std::uint8_t>(block_, len_ + 1 + candidate.size()));
    return crypto::prefix_bits_equal(target_, d, m_bits_);
  }

 private:
  /// P ‖ i ‖ s (up to 65 bytes for sol_len = 32), padded in place to a full
  /// compression block when the message fits one (sol_len <= 27).
  mutable std::uint8_t block_[2 * kMaxSolLen + 1];
  std::size_t len_;  ///< |P| (== sol_len)
  bool single_block_ = false;
  crypto::Sha256Digest target_{};  ///< P zero-padded to digest width
  std::array<std::uint32_t, 8> target_words_{};  ///< target_, big-endian words
  unsigned m_bits_;
};

/// Timestamp freshness shared by both engines. The 32-bit millisecond wire
/// timestamp wraps every ~49.7 simulated days, so the comparison uses
/// serial-number arithmetic (RFC 1982 style): the signed difference decides
/// which side of "now" the echo sits on, and is exact as long as the true
/// skew is under ~24.8 days — astronomically beyond any puzzle expiry. The
/// naive `echoed + expiry < now` form misfired at the wrap: a fresh solution
/// echoed just before the wrap looked like it came from the far future.
VerifyError check_freshness(std::uint32_t echoed_ms, std::uint32_t now_ms,
                            const EngineConfig& cfg) {
  const std::int32_t age_ms = static_cast<std::int32_t>(now_ms - echoed_ms);
  if (age_ms < 0) {
    // Negate through int64: -INT32_MIN does not fit an int32.
    const auto ahead_ms =
        static_cast<std::uint32_t>(-static_cast<std::int64_t>(age_ms));
    if (ahead_ms > cfg.future_slack_ms) return VerifyError::kFutureTimestamp;
    return VerifyError::kNone;
  }
  if (static_cast<std::uint32_t>(age_ms) > cfg.expiry_ms) {
    return VerifyError::kExpired;
  }
  return VerifyError::kNone;
}

void validate_difficulty(Difficulty diff, const EngineConfig& cfg) {
  if (diff.k == 0) throw std::invalid_argument("puzzle: k must be >= 1");
  if (diff.k > kMaxSolutionValues) {
    // Representability bound of Solution::values. (k*sol_len may still
    // exceed the 40-byte TCP option space for engine-only use — e.g. the
    // k=4, l=16 test grids; such a solution throws std::length_error only
    // if it is ever packed into a SolutionOption, exactly where the seed
    // implementation's wire encoder threw.)
    throw std::invalid_argument("puzzle: k exceeds Solution value capacity");
  }
  if (diff.m == 0) throw std::invalid_argument("puzzle: m must be >= 1");
  if (diff.m >= cfg.sol_len * 8u) {
    throw std::invalid_argument(
        "puzzle: m must be < 8*sol_len (the m-bit prefix lives in the "
        "sol_len-byte pre-image)");
  }
}

}  // namespace

std::uint64_t sample_solve_hashes(Difficulty diff, Rng& rng) {
  // The paper's cost model (§4.1): one solution takes "a maximum of 2^m and
  // an average of 2^(m-1)" hash operations, i.e. the solution is uniformly
  // located in a search space of 2^m candidates. (An unbounded random search
  // is geometric with mean 2^m — see the Sha256 engine tests; we follow the
  // paper's model so ℓ(p) = k·2^(m-1) prices the simulated work exactly.)
  const std::uint64_t space = 1ull << diff.m;
  std::uint64_t total = 0;
  for (unsigned i = 0; i < diff.k; ++i) total += 1 + rng.uniform_u64(space);
  return total;
}

// ---------------------------------------------------------------------------
// Sha256PuzzleEngine
// ---------------------------------------------------------------------------

Sha256PuzzleEngine::Sha256PuzzleEngine(crypto::SecretKey secret,
                                       EngineConfig cfg)
    : secret_(secret), cfg_(cfg) {
  if (cfg_.sol_len == 0 || cfg_.sol_len > 32) {
    throw std::invalid_argument("puzzle: sol_len must be in [1, 32]");
  }
}

Preimage Sha256PuzzleEngine::derive_preimage(const FlowBinding& flow,
                                             std::uint32_t timestamp_ms) const {
  return derive_preimage_with(secret_.hmac(), flow, timestamp_ms, cfg_.sol_len);
}

Challenge Sha256PuzzleEngine::make_challenge(const FlowBinding& flow,
                                             std::uint32_t timestamp_ms,
                                             Difficulty diff) const {
  validate_difficulty(diff, cfg_);
  Challenge c;
  c.diff = diff;
  c.sol_len = cfg_.sol_len;
  c.timestamp = timestamp_ms;
  c.preimage = derive_preimage(flow, timestamp_ms);
  return c;
}

bool Sha256PuzzleEngine::candidate_matches(
    const Challenge& challenge, std::uint8_t index,
    std::span<const std::uint8_t> candidate) {
  SolutionChecker checker(challenge.preimage, challenge.diff.m);
  checker.set_index(index);
  return checker.matches(candidate);
}

Solution Sha256PuzzleEngine::solve(const Challenge& challenge,
                                   const FlowBinding& /*flow*/, Rng& rng,
                                   std::uint64_t& hash_ops_out) const {
  Solution sol;
  sol.timestamp = challenge.timestamp;
  sol.values.reserve(challenge.diff.k);
  hash_ops_out = 0;

  // The P (and per-index P||i) prefix is absorbed once; the ~2^(m-1)
  // candidates per solution only fork the midstate and hash themselves.
  SolutionChecker checker(challenge.preimage, challenge.diff.m);
  for (unsigned i = 1; i <= challenge.diff.k; ++i) {
    checker.set_index(static_cast<std::uint8_t>(i));
    // Start the counter at a random point so repeated solves of equivalent
    // puzzles do not share a search prefix (and so the hash-op count is a
    // true geometric sample, as the analysis assumes).
    std::uint64_t counter = rng.next();
    SolutionValue candidate(challenge.sol_len, 0);
    for (;;) {
      // Candidate = counter in big-endian, repeated/truncated to sol_len.
      for (std::size_t b = 0; b < candidate.size(); ++b) {
        candidate[b] =
            static_cast<std::uint8_t>(counter >> (8 * ((candidate.size() - 1 - b) % 8)));
      }
      ++hash_ops_out;
      if (checker.matches(candidate)) {
        sol.values.push_back(candidate);
        break;
      }
      ++counter;
    }
  }
  return sol;
}

VerifyOutcome Sha256PuzzleEngine::verify(const FlowBinding& flow,
                                         const Solution& solution,
                                         Difficulty diff,
                                         std::uint32_t now_ms) const {
  VerifyOutcome out;
  if (const VerifyError fresh = check_freshness(solution.timestamp, now_ms, cfg_);
      fresh != VerifyError::kNone) {
    out.error = fresh;
    return out;
  }
  if (solution.values.size() != diff.k) {
    out.error = VerifyError::kWrongCount;
    return out;
  }
  for (const auto& v : solution.values) {
    if (v.size() != cfg_.sol_len) {
      out.error = VerifyError::kWrongLength;
      return out;
    }
  }

  // One hash to re-derive the pre-image (statelessness: nothing was stored).
  const Preimage preimage = derive_preimage(flow, solution.timestamp);
  out.hash_ops = 1;

  SolutionChecker checker(preimage, diff.m);
  for (unsigned i = 1; i <= diff.k; ++i) {
    ++out.hash_ops;
    checker.set_index(static_cast<std::uint8_t>(i));
    if (!checker.matches(solution.values[i - 1])) {
      out.error = VerifyError::kBadSolution;
      return out;
    }
  }
  out.ok = true;
  return out;
}

// ---------------------------------------------------------------------------
// OraclePuzzleEngine
// ---------------------------------------------------------------------------

OraclePuzzleEngine::OraclePuzzleEngine(crypto::SecretKey secret,
                                       EngineConfig cfg)
    : secret_(secret), cfg_(cfg) {
  if (cfg_.sol_len == 0 || cfg_.sol_len > 32) {
    throw std::invalid_argument("puzzle: sol_len must be in [1, 32]");
  }
}

Preimage OraclePuzzleEngine::derive_preimage(const FlowBinding& flow,
                                             std::uint32_t timestamp_ms) const {
  return derive_preimage_with(secret_.hmac(), flow, timestamp_ms, cfg_.sol_len);
}

SolutionValue OraclePuzzleEngine::oracle_solution(
    std::span<const std::uint8_t> preimage, std::uint8_t index) const {
  // Derived from the challenge pre-image alone, NOT the server secret:
  // solving must not require anything beyond the SYN-ACK bytes (a real
  // client brute-forces from the challenge), and in a fleet that rotates its
  // secret, old challenges must stay solvable by clients that know nothing
  // about epochs. Verification still binds solutions to the secret — and to
  // the minting epoch — because the verifier re-derives the pre-image from
  // its own secret and the echoed flow/timestamp.
  std::uint8_t msg[64];  // label (21) + pre-image (<= 32) + index
  std::memcpy(msg, kOracleLabel.data(), kOracleLabel.size());
  std::memcpy(msg + kOracleLabel.size(), preimage.data(), preimage.size());
  std::size_t n = kOracleLabel.size() + preimage.size();
  msg[n++] = index;
  const auto digest =
      crypto::Sha256::hash(std::span<const std::uint8_t>(msg, n));
  return SolutionValue(std::span<const std::uint8_t>(digest.data(), cfg_.sol_len));
}

Challenge OraclePuzzleEngine::make_challenge(const FlowBinding& flow,
                                             std::uint32_t timestamp_ms,
                                             Difficulty diff) const {
  validate_difficulty(diff, cfg_);
  Challenge c;
  c.diff = diff;
  c.sol_len = cfg_.sol_len;
  c.timestamp = timestamp_ms;
  c.preimage = derive_preimage(flow, timestamp_ms);
  return c;
}

Solution OraclePuzzleEngine::solve(const Challenge& challenge,
                                   const FlowBinding& /*flow*/, Rng& rng,
                                   std::uint64_t& hash_ops_out) const {
  Solution sol;
  sol.timestamp = challenge.timestamp;
  sol.values.reserve(challenge.diff.k);
  for (unsigned i = 1; i <= challenge.diff.k; ++i) {
    sol.values.push_back(
        oracle_solution(challenge.preimage, static_cast<std::uint8_t>(i)));
  }
  hash_ops_out = sample_solve_hashes(challenge.diff, rng);
  return sol;
}

VerifyOutcome OraclePuzzleEngine::verify(const FlowBinding& flow,
                                         const Solution& solution,
                                         Difficulty diff,
                                         std::uint32_t now_ms) const {
  VerifyOutcome out;
  if (const VerifyError fresh = check_freshness(solution.timestamp, now_ms, cfg_);
      fresh != VerifyError::kNone) {
    out.error = fresh;
    return out;
  }
  if (solution.values.size() != diff.k) {
    out.error = VerifyError::kWrongCount;
    return out;
  }
  const Preimage preimage = derive_preimage(flow, solution.timestamp);
  // Cost model mirrors the paper's d(p) = 1 + k/2: one pre-image derivation
  // plus prefix checks. We charge the full-verify cost 1 + k on success and
  // the early-exit position on failure, same as the real engine.
  out.hash_ops = 1;
  for (unsigned i = 1; i <= diff.k; ++i) {
    ++out.hash_ops;
    const SolutionValue expected =
        oracle_solution(preimage, static_cast<std::uint8_t>(i));
    const SolutionValue& got = solution.values[i - 1];
    if (got.size() != preimage.size() || !ct_equal(got, expected)) {
      out.error = got.size() == preimage.size() ? VerifyError::kBadSolution
                                                : VerifyError::kWrongLength;
      return out;
    }
  }
  out.ok = true;
  return out;
}

}  // namespace tcpz::puzzle
