// PuzzleEngine: generation, solving and verification of client puzzles.
//
// Two implementations share one interface:
//
//  * Sha256PuzzleEngine — the real scheme. solve() brute-forces the m-bit
//    prefix search with actual SHA-256 calls, exactly as a client kernel
//    would. Used by unit tests, examples and the crypto microbenchmarks.
//
//  * OraclePuzzleEngine — the simulation substitute. Producing a real
//    17-bit-difficulty solution costs ~2^16 hashes of *host* CPU, which would
//    conflate simulated time with wall-clock time inside the discrete-event
//    simulator. The oracle engine instead derives "solutions" with the server
//    secret (so they verify byte-for-byte and bogus/replayed ones still
//    fail), and reports the *sampled* number of hash operations a brute-force
//    search would have performed (sum of k geometric(2^-m) draws). The
//    simulator charges that cost to the solving host's CPU model. Every
//    protocol-visible property — statelessness, expiry, flow binding, replay
//    resistance, verify cost — is preserved. See DESIGN.md "Substitutions".
#pragma once

#include <cstdint>
#include <memory>

#include "crypto/secret.hpp"
#include "puzzle/types.hpp"
#include "util/rng.hpp"

namespace tcpz::puzzle {

/// Parameters common to both engines.
struct EngineConfig {
  std::uint8_t sol_len = 8;          ///< l: bytes per solution / pre-image
  std::uint32_t expiry_ms = 4'000;   ///< challenge lifetime (sysctl-tunable)
  std::uint32_t future_slack_ms = 100;  ///< tolerated clock skew into future
};

class PuzzleEngine {
 public:
  virtual ~PuzzleEngine() = default;

  /// Server side: derive the challenge for this flow at this timestamp.
  /// Stateless — calling it twice with the same inputs yields the same
  /// challenge. Costs g(p) = 1 hash.
  [[nodiscard]] virtual Challenge make_challenge(const FlowBinding& flow,
                                                 std::uint32_t timestamp_ms,
                                                 Difficulty diff) const = 0;

  /// Client side: produce a solution. `hash_ops_out` receives the number of
  /// hash operations the search performed (real count for the SHA-256
  /// engine, sampled count for the oracle engine).
  [[nodiscard]] virtual Solution solve(const Challenge& challenge,
                                       const FlowBinding& flow, Rng& rng,
                                       std::uint64_t& hash_ops_out) const = 0;

  /// Server side: stateless verification. Re-derives the challenge from the
  /// flow and the echoed timestamp, enforces expiry, then checks the k
  /// m-bit prefix conditions. `now_ms` is the server clock.
  [[nodiscard]] virtual VerifyOutcome verify(const FlowBinding& flow,
                                             const Solution& solution,
                                             Difficulty diff,
                                             std::uint32_t now_ms) const = 0;

  [[nodiscard]] virtual const EngineConfig& config() const = 0;
};

/// The real scheme. Brute-force solving is exponential in m; tests and
/// examples keep m <= ~20.
class Sha256PuzzleEngine final : public PuzzleEngine {
 public:
  Sha256PuzzleEngine(crypto::SecretKey secret, EngineConfig cfg = {});

  [[nodiscard]] Challenge make_challenge(const FlowBinding& flow,
                                         std::uint32_t timestamp_ms,
                                         Difficulty diff) const override;
  [[nodiscard]] Solution solve(const Challenge& challenge,
                               const FlowBinding& flow, Rng& rng,
                               std::uint64_t& hash_ops_out) const override;
  [[nodiscard]] VerifyOutcome verify(const FlowBinding& flow,
                                     const Solution& solution, Difficulty diff,
                                     std::uint32_t now_ms) const override;
  [[nodiscard]] const EngineConfig& config() const override { return cfg_; }

  /// Exposed for the microbenchmarks: one solution-candidate check.
  [[nodiscard]] static bool candidate_matches(
      const Challenge& challenge, std::uint8_t index,
      std::span<const std::uint8_t> candidate);

 private:
  [[nodiscard]] Preimage derive_preimage(const FlowBinding& flow,
                                         std::uint32_t timestamp_ms) const;

  crypto::SecretKey secret_;
  EngineConfig cfg_;
};

/// The simulation oracle (see file comment). Shares the challenge pre-image
/// derivation with the real engine; only the solution search is replaced.
class OraclePuzzleEngine final : public PuzzleEngine {
 public:
  OraclePuzzleEngine(crypto::SecretKey secret, EngineConfig cfg = {});

  [[nodiscard]] Challenge make_challenge(const FlowBinding& flow,
                                         std::uint32_t timestamp_ms,
                                         Difficulty diff) const override;
  [[nodiscard]] Solution solve(const Challenge& challenge,
                               const FlowBinding& flow, Rng& rng,
                               std::uint64_t& hash_ops_out) const override;
  [[nodiscard]] VerifyOutcome verify(const FlowBinding& flow,
                                     const Solution& solution, Difficulty diff,
                                     std::uint32_t now_ms) const override;
  [[nodiscard]] const EngineConfig& config() const override { return cfg_; }

 private:
  [[nodiscard]] Preimage derive_preimage(const FlowBinding& flow,
                                         std::uint32_t timestamp_ms) const;
  [[nodiscard]] SolutionValue oracle_solution(
      std::span<const std::uint8_t> preimage, std::uint8_t index) const;

  crypto::SecretKey secret_;
  EngineConfig cfg_;
};

/// Samples the number of hash operations a brute-force search for a full
/// (k, m) solution performs: the sum of k independent geometric(2^-m)
/// variables. Shared by the oracle engine and the CPU model tests.
[[nodiscard]] std::uint64_t sample_solve_hashes(Difficulty diff, Rng& rng);

}  // namespace tcpz::puzzle
