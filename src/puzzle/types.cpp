#include "puzzle/types.hpp"

#include <cstdio>

namespace tcpz::puzzle {

std::string Difficulty::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "(k=%u, m=%u)", static_cast<unsigned>(k),
                static_cast<unsigned>(m));
  return buf;
}

const char* to_string(VerifyError e) {
  switch (e) {
    case VerifyError::kNone: return "none";
    case VerifyError::kExpired: return "expired";
    case VerifyError::kFutureTimestamp: return "future-timestamp";
    case VerifyError::kWrongCount: return "wrong-count";
    case VerifyError::kWrongLength: return "wrong-length";
    case VerifyError::kBadSolution: return "bad-solution";
  }
  return "unknown";
}

}  // namespace tcpz::puzzle
