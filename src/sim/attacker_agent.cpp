#include "sim/attacker_agent.hpp"

#include "obs/trace.hpp"

namespace tcpz::sim {

AttackerAgent::AttackerAgent(net::Simulator& sim, net::Host& host,
                             AttackerAgentConfig cfg, std::uint64_t seed)
    : sim_(sim), host_(host), cfg_(std::move(cfg)), cpu_(cfg_.cpu), rng_(seed) {
  if (!cfg_.strategy) {
    throw std::invalid_argument("attacker: a strategy factory is required");
  }
  if (cfg_.targets.empty()) {
    throw std::invalid_argument("attacker: at least one target is required");
  }
  strategy_ = cfg_.strategy();
}

offense::BotView AttackerAgent::view(SimTime now) {
  offense::BotView v;
  v.now = now;
  v.attack_start = cfg_.attack_start;
  v.attack_end = cfg_.attack_end;
  v.inflight = attempts_.size();
  v.max_inflight = cfg_.max_inflight;
  v.pending_solves = pending_solves_;
  v.attempt_timeout = cfg_.attempt_timeout;
  v.has_engine = static_cast<bool>(cfg_.engine);
  v.n_targets = cfg_.targets.size();
  v.cpu = &cpu_;
  v.rng = &rng_;
  return v;
}

void AttackerAgent::start(SimTime until) {
  until_ = until;
  host_.set_handler([this](SimTime now, const tcp::Segment& seg) {
    on_segment(now, seg);
  });
  sim_.schedule_at(cfg_.attack_start, [this] { flood_loop(); });
  sim_.schedule_at(cfg_.attack_start, [this] { tick_loop(); });
  sample_loop();
}

void AttackerAgent::send_all(const std::vector<tcp::Segment>& segs) {
  for (const tcp::Segment& seg : segs) {
    report_.tx_bytes.add(sim_.now(), seg.wire_size());
    cpu_.charge_seconds(cfg_.per_packet_cpu_sec);
    host_.send(seg);
  }
}

void AttackerAgent::flood_loop() {
  const SimTime now = sim_.now();
  if (now >= cfg_.attack_end || now >= until_) return;
  // Constant-rate emission (hping3/nping "--rate" behaviour); the strategy
  // decides what each slot carries.
  sim_.schedule_in(SimTime::from_seconds(1.0 / cfg_.rate), [this] {
    const SimTime now2 = sim_.now();
    if (now2 < cfg_.attack_end && now2 < until_) {
      const offense::SlotDecision d = strategy_->on_slot(view(now2));
      const std::size_t target = d.target < cfg_.targets.size() ? d.target : 0;
      switch (d.action) {
        case offense::SlotAction::kSpoofedSyn:
          TCPZ_TRACE(now2, obs::Code::kSlotSpoofedSyn, cfg_.trace_track,
                     target);
          send_spoofed_syn(now2, target);
          break;
        case offense::SlotAction::kConnect:
          TCPZ_TRACE(now2, obs::Code::kSlotConnect, cfg_.trace_track, target,
                     d.patched ? 1 : 0);
          launch_attempt(now2, d.patched, target);
          break;
        case offense::SlotAction::kIdle:
          TCPZ_TRACE(now2, obs::Code::kSlotIdle, cfg_.trace_track);
          break;
      }
    }
    flood_loop();
  });
}

void AttackerAgent::send_spoofed_syn(SimTime now, std::size_t target) {
  tcp::Segment syn;
  // Random routable-looking but unowned source (100.64/10 space).
  syn.saddr = tcp::ipv4(100, 64, 0, 0) |
              static_cast<std::uint32_t>(rng_.uniform_u64(1u << 22));
  syn.sport = static_cast<std::uint16_t>(1024 + rng_.uniform_u64(60000));
  syn.daddr = cfg_.targets[target].addr;
  syn.dport = cfg_.targets[target].port;
  syn.seq = static_cast<std::uint32_t>(rng_.next());
  syn.flags = tcp::kSyn;
  syn.options.mss = 1460;
  report_.attempts.add(now, 1.0);
  ++report_.total_attempts;
  send_all({syn});
}

void AttackerAgent::launch_attempt(SimTime now, bool patched,
                                   std::size_t target) {
  if (static_cast<int>(attempts_.size()) >= cfg_.max_inflight) return;
  std::uint16_t sport = 0;
  for (int tries = 0; tries < 64; ++tries) {
    std::uint16_t cand = next_sport_++;
    if (next_sport_ < 1024) next_sport_ = 1024;
    if (cand >= 1024 && !attempts_.contains(cand)) {
      sport = cand;
      break;
    }
  }
  if (sport == 0) return;

  tcp::ConnectorConfig ccfg;
  ccfg.local_addr = host_.addr();
  ccfg.local_port = sport;
  ccfg.remote_addr = cfg_.targets[target].addr;
  ccfg.remote_port = cfg_.targets[target].port;
  // A legacy-stack attempt (unpatched bot, or a bogus-solution flooder that
  // intercepts the challenge itself in on_segment) looks like an unpatched
  // kernel to the Connector.
  ccfg.solve_puzzles = patched;
  ccfg.max_syn_retries = 0;  // flood tools do not retransmit

  auto [it, inserted] = attempts_.emplace(
      sport, Attempt{tcp::Connector(ccfg, rng_.next()), now, {}});
  report_.attempts.add(now, 1.0);
  ++report_.total_attempts;
  apply(now, sport, it->second.connector.start(now));
}

tcp::Segment AttackerAgent::make_bogus_solution_ack(SimTime now,
                                                    const tcp::Segment& synack) {
  const tcp::ChallengeOption& ch = *synack.options.challenge;
  tcp::Segment ack;
  ack.saddr = synack.daddr;
  ack.daddr = synack.saddr;
  ack.sport = synack.dport;
  ack.dport = synack.sport;
  ack.seq = synack.ack;
  ack.ack = synack.seq + 1;
  ack.flags = tcp::kAck;
  const std::uint32_t now_ms =
      static_cast<std::uint32_t>(now.nanos() / 1'000'000);
  if (synack.options.ts) {
    ack.options.ts = tcp::TimestampsOption{now_ms, synack.options.ts->tsval};
  }
  tcp::SolutionOption sol;
  sol.mss = 1460;
  sol.wscale = 7;
  if (!synack.options.ts) {
    sol.embedded_ts = ch.embedded_ts.value_or(now_ms);
  }
  // Garbage of the right shape: the server must do verification work to
  // reject it.
  sol.solutions.resize(static_cast<std::size_t>(ch.k) * ch.sol_len);
  for (auto& b : sol.solutions) {
    b = static_cast<std::uint8_t>(rng_.next());
  }
  ack.options.solution = std::move(sol);
  return ack;
}

void AttackerAgent::apply(SimTime now, std::uint16_t sport,
                          tcp::ConnectorOutput out) {
  send_all(out.segments);

  const auto it = attempts_.find(sport);
  if (it == attempts_.end()) return;
  Attempt& attempt = it->second;

  if (out.solve) {
    ++report_.challenges_seen;
    // The in-kernel solver is serial; the flood tool abandons an attempt
    // (closing its socket and thereby aborting any queued solve) after
    // attempt_timeout. A solve is therefore only worth starting if the
    // strategy wants to pay AND a lane frees up before the tool gives up —
    // the latter is what pins the per-bot completion rate to its solver
    // throughput regardless of the flood rate (Figs. 13-14).
    const offense::ChallengeAction ca =
        strategy_->on_challenge(view(now), *out.solve);
    if (ca == offense::ChallengeAction::kAbandon || !cfg_.engine ||
        cpu_.earliest_lane_free() > now + cfg_.attempt_timeout) {
      ++report_.solves_refused;
      TCPZ_TRACE(now, obs::Code::kChallengeAbandon, cfg_.trace_track, sport,
                 ca == offense::ChallengeAction::kAbandon ? 0 : 1);
      TCPZ_TRACE(now, obs::Code::kOutcomeSolveRefused, cfg_.trace_track,
                 sport);
      strategy_->on_outcome(view(now), offense::Outcome::kSolveRefused);
      // The attempt keeps holding its in-flight slot until the tool times
      // it out (tick_loop), throttling the measured attack rate.
      return;
    }
    TCPZ_TRACE(now, obs::Code::kChallengeSolve, cfg_.trace_track, sport,
               (static_cast<std::uint64_t>(out.solve->diff.k) << 8) |
                   out.solve->diff.m);
    std::uint64_t hash_ops = 0;
    const puzzle::Solution solution = cfg_.engine->solve(
        *out.solve, attempt.connector.flow_binding(), rng_, hash_ops);
    const double rate =
        cfg_.solve_ops_rate > 0 ? cfg_.solve_ops_rate : cfg_.cpu.hash_rate;
    const SimTime done = cpu_.submit_solve_at_rate(now, hash_ops, rate);
    ++pending_solves_;
    // Cancellable completion: erase_attempt deschedules it, so the event
    // only ever fires for the attempt that scheduled it (a recycled sport
    // always carries a fresh timer).
    attempt.solve_timer = sim_.schedule_at(done, [this, sport, solution] {
      --pending_solves_;
      const auto it2 = attempts_.find(sport);
      if (it2 == attempts_.end()) return;
      const SimTime t = sim_.now();
      apply(t, sport, it2->second.connector.on_solved(t, solution));
    });
    return;
  }

  if (out.established) {
    // Connection floods hold the connection and send nothing further; the
    // in-flight slot is recycled immediately.
    report_.established.add(now, 1.0);
    ++report_.total_established;
    erase_attempt(it);
    TCPZ_TRACE(now, obs::Code::kOutcomeEstablished, cfg_.trace_track, sport);
    strategy_->on_outcome(view(now), offense::Outcome::kEstablished);
    return;
  }

  if (out.failed) {
    const bool reset = out.reason == tcp::ConnectFail::kReset;
    if (reset) ++report_.total_rsts;
    report_.failures.add(now, 1.0);
    ++report_.total_failures;
    erase_attempt(it);
    TCPZ_TRACE(now,
               reset ? obs::Code::kOutcomeReset : obs::Code::kOutcomeTimeout,
               cfg_.trace_track, sport);
    strategy_->on_outcome(view(now), reset ? offense::Outcome::kReset
                                           : offense::Outcome::kTimeout);
  }
}

void AttackerAgent::erase_attempt(AttemptMap::iterator it) {
  if (sim_.cancel(it->second.solve_timer)) --pending_solves_;
  attempts_.erase(it);
}

void AttackerAgent::on_segment(SimTime now, const tcp::Segment& seg) {
  report_.rx_bytes.add(now, seg.wire_size());
  cpu_.charge_seconds(cfg_.per_packet_cpu_sec);
  const offense::RxAction rx = strategy_->on_rx(view(now), seg);
  if (rx == offense::RxAction::kIgnore) return;  // backscatter is ignored

  const auto it = attempts_.find(seg.dport);
  if (it == attempts_.end()) return;

  if (rx == offense::RxAction::kBogusAck && seg.is_syn_ack() &&
      seg.options.challenge) {
    ++report_.challenges_seen;
    TCPZ_TRACE(now, obs::Code::kBogusAck, cfg_.trace_track, seg,
               (static_cast<std::uint64_t>(seg.options.challenge->k) << 8) |
                   seg.options.challenge->m);
    send_all({make_bogus_solution_ack(now, seg)});
    report_.established.add(now, 1.0);  // it *believes* it connected
    ++report_.total_established;
    erase_attempt(it);
    strategy_->on_outcome(view(now), offense::Outcome::kEstablished);
    return;
  }

  apply(now, seg.dport, it->second.connector.on_segment(now, seg));
}

void AttackerAgent::tick_loop() {
  const SimTime now = sim_.now();
  if (now >= until_) return;
  sim_.schedule_in(cfg_.tick_interval, [this] {
    const SimTime t = sim_.now();
    // Recycle in-flight slots whose attempt went nowhere. Attempts with an
    // admitted solve in progress get a grace period (the kernel finishes a
    // running search even when the tool has lost interest).
    std::vector<std::uint16_t> stale;
    for (const auto& [sport, attempt] : attempts_) {
      const bool solving =
          attempt.connector.state() == tcp::ConnectorState::kSolving &&
          static_cast<bool>(attempt.solve_timer);
      const SimTime limit =
          solving ? cfg_.attempt_timeout * 3 : cfg_.attempt_timeout;
      if (t - attempt.started > limit) stale.push_back(sport);
    }
    for (const std::uint16_t sport : stale) {
      report_.failures.add(t, 1.0);
      ++report_.total_failures;
      // Descheduling the admitted solve models the tool closing its socket:
      // the queued search is abandoned rather than firing as a tombstone.
      erase_attempt(attempts_.find(sport));
      TCPZ_TRACE(t, obs::Code::kOutcomeTimeout, cfg_.trace_track, sport);
      strategy_->on_outcome(view(t), offense::Outcome::kTimeout);
    }
    if (t < cfg_.attack_end) tick_loop();
  });
}

void AttackerAgent::sample_loop() {
  if (sim_.now() >= until_) return;
  sim_.schedule_in(cfg_.sample_interval, [this] {
    const SimTime now = sim_.now();
    report_.cpu.record(now, cpu_.sample_utilization(now, cfg_.sample_interval));
    sample_loop();
  });
}

}  // namespace tcpz::sim
