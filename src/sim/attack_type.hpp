// The legacy three-value attack enum of the paper's evaluation. Since the
// offense::AttackStrategy layer it is nothing more than a name for three
// canonical strategy specs (offense::StrategySpec::from_type) — the attacker
// agent itself never branches on it. Kept dependency-free so both sim/ and
// offense/ can include it.
#pragma once

#include <cstdint>

namespace tcpz::sim {

enum class AttackType : std::uint8_t {
  kSynFlood,
  kConnFlood,
  kBogusSolutionFlood,
};

[[nodiscard]] constexpr const char* to_string(AttackType t) {
  switch (t) {
    case AttackType::kSynFlood: return "syn-flood";
    case AttackType::kConnFlood: return "conn-flood";
    case AttackType::kBogusSolutionFlood: return "bogus-solution-flood";
  }
  return "unknown";
}

}  // namespace tcpz::sim
