#include "sim/server_agent.hpp"

namespace tcpz::sim {

ServerAgent::ServerAgent(net::Simulator& sim, net::Host& host,
                         ServerAgentConfig cfg, crypto::SecretKey secret,
                         std::uint64_t seed,
                         std::shared_ptr<const puzzle::PuzzleEngine> engine)
    : sim_(sim),
      host_(host),
      cfg_(std::move(cfg)),
      listener_(cfg_.listener, secret, seed, std::move(engine)),
      cpu_(cfg_.cpu),
      rng_(seed ^ 0x5e77e57ull) {
  listener_.set_data_handler(
      [this](SimTime now, const tcp::FlowKey& flow, const tcp::Segment& seg) {
        on_request(now, flow, seg);
      });
  listener_.set_establish_handler(
      [this](SimTime now, const tcp::AcceptedConnection& conn) {
        const bool attacker =
            cfg_.is_attacker && cfg_.is_attacker(conn.flow.raddr);
        (attacker ? report_.established_attacker : report_.established_client)
            .add(now, 1.0);
      });
}

void ServerAgent::start(SimTime until) {
  until_ = until;
  host_.set_handler([this](SimTime now, const tcp::Segment& seg) {
    on_segment(now, seg);
  });
  service_loop();
  tick_loop();
  sample_loop();
}

void ServerAgent::send_all(const std::vector<tcp::Segment>& segs) {
  for (const tcp::Segment& seg : segs) {
    report_.tx_bytes.add(sim_.now(), seg.wire_size());
    if (seg.options.challenge) {
      report_.challenge_synacks.add(sim_.now(), 1.0);
    } else if (seg.is_syn_ack()) {
      report_.plain_synacks.add(sim_.now(), 1.0);
    }
    host_.send(seg);
  }
}

void ServerAgent::on_segment(SimTime now, const tcp::Segment& seg) {
  report_.rx_bytes.add(now, seg.wire_size());
  cpu_.charge_seconds(cfg_.per_packet_cpu_sec);
  send_all(listener_.on_segment(now, seg));
  cpu_.charge_hash_ops(listener_.take_hash_ops());
}

void ServerAgent::on_request(SimTime now, const tcp::FlowKey& flow,
                             const tcp::Segment& seg) {
  if (const auto it = workers_.find(flow); it != workers_.end()) {
    if (!it->second.has_request) {
      it->second.has_request = true;
      ready_.push_back(flow);
    }
    return;
  }
  // Request arrived before a worker accepted the connection.
  early_requests_[flow] += seg.payload_bytes;
  (void)now;
}

void ServerAgent::respond_and_close(SimTime now, const tcp::FlowKey& flow) {
  tcp::Segment resp;
  resp.saddr = flow.laddr;
  resp.daddr = flow.raddr;
  resp.sport = flow.lport;
  resp.dport = flow.rport;
  resp.flags = tcp::kAck | tcp::kPsh;
  resp.payload_bytes = cfg_.response_bytes;
  report_.responses.add(now, 1.0);
  send_all({resp});

  workers_.erase(flow);
  early_requests_.erase(flow);
  listener_.close(flow);
}

void ServerAgent::drain_accept_queue(SimTime now) {
  while (static_cast<int>(workers_.size()) < cfg_.n_workers) {
    auto conn = listener_.accept(now);
    if (!conn) break;
    WorkerState state{*conn, now, false};
    if (early_requests_.contains(conn->flow)) {
      state.has_request = true;
      ready_.push_back(conn->flow);
    }
    workers_.emplace(conn->flow, state);
  }
}

void ServerAgent::service_loop() {
  if (sim_.now() >= until_) return;
  // One request completion per Exp(µ).
  const SimTime next = sim_.now() + exp_interarrival(rng_, cfg_.service_rate);
  sim_.schedule_at(std::min(next, until_), [this] {
    const SimTime now = sim_.now();
    while (!ready_.empty()) {
      const tcp::FlowKey flow = ready_.front();
      ready_.pop_front();
      const auto it = workers_.find(flow);
      if (it == workers_.end() || !it->second.has_request) continue;  // stale
      respond_and_close(now, flow);
      break;
    }
    drain_accept_queue(now);
    service_loop();
  });
}

void ServerAgent::tick_loop() {
  if (sim_.now() >= until_) return;
  sim_.schedule_in(cfg_.tick_interval, [this] {
    const SimTime now = sim_.now();
    // §7 closed-loop difficulty control now lives inside the defense layer:
    // the listener consults its policy's on_tick here.
    send_all(listener_.on_tick(now));
    cpu_.charge_hash_ops(listener_.take_hash_ops());

    // Reap workers pinned by request-less connections (flood bots).
    for (auto it = workers_.begin(); it != workers_.end();) {
      if (!it->second.has_request &&
          now - it->second.accepted_at > cfg_.app_idle_timeout) {
        listener_.close(it->first);
        early_requests_.erase(it->first);
        it = workers_.erase(it);
      } else {
        ++it;
      }
    }
    // Early requests whose connection evaporated (closed before accept).
    for (auto it = early_requests_.begin(); it != early_requests_.end();) {
      if (!listener_.is_established(it->first)) {
        it = early_requests_.erase(it);
      } else {
        ++it;
      }
    }
    drain_accept_queue(now);
    tick_loop();
  });
}

void ServerAgent::sample_loop() {
  if (sim_.now() >= until_) return;
  sim_.schedule_in(cfg_.sample_interval, [this] {
    const SimTime now = sim_.now();
    report_.listen_queue.record(now,
                                static_cast<double>(listener_.listen_depth()));
    report_.accept_queue.record(now,
                                static_cast<double>(listener_.accept_depth()));
    report_.cpu.record(now, cpu_.sample_utilization(now, cfg_.sample_interval));
    report_.difficulty_m.record(
        now, static_cast<double>(listener_.config().difficulty.m));
    sample_loop();
  });
}

}  // namespace tcpz::sim
