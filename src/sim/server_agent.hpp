// The victim server: a Listener wired to a Host, plus the application model.
//
// Application model (apache2-style, per the §6 workload): a bounded worker
// pool accepts connections; a worker serves its connection's request at
// exponential rate µ in aggregate (the M/M/1 abstraction of §4.1, measured
// as ~1100 req/s in Fig. 3b) and is then freed. A connection that never
// sends a request — a connection-flood bot — pins its worker until the idle
// timeout. Under a flood the effective accept-queue drain is therefore
// workers/idle_timeout, which is what actually collapses an unprotected
// server even though its nominal µ is high.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "net/node.hpp"
#include "net/simulator.hpp"
#include "sim/cpu.hpp"
#include "sim/metrics.hpp"
#include "tcp/listener.hpp"
#include "util/rng.hpp"
#include "workload/profiles.hpp"

namespace tcpz::sim {

struct ServerAgentConfig {
  tcp::ListenerConfig listener;
  /// µ: request completions/s (Fig. 3b).
  double service_rate = workload::profiles::kServiceRateMu;
  int n_workers = 1024;  ///< apache worker/thread pool size
  std::uint32_t response_bytes = workload::profiles::kResponseBytes;
  SimTime app_idle_timeout = SimTime::seconds(5);
  CpuSpec cpu = workload::profiles::server_cpu();  ///< §7: 10.8 Mhash/s
  /// CPU charged per received packet (syscall/softirq cost).
  double per_packet_cpu_sec = 2e-6;
  SimTime tick_interval = SimTime::milliseconds(100);
  SimTime sample_interval = SimTime::milliseconds(250);
  /// Classifier for the established-by-source-class metric.
  std::function<bool(std::uint32_t addr)> is_attacker;
};

class ServerAgent {
 public:
  ServerAgent(net::Simulator& sim, net::Host& host, ServerAgentConfig cfg,
              crypto::SecretKey secret, std::uint64_t seed,
              std::shared_ptr<const puzzle::PuzzleEngine> engine);

  /// Installs the host handler and schedules the periodic loops. `until`
  /// bounds the self-rescheduling loops so the simulation can end.
  void start(SimTime until);

  [[nodiscard]] ServerReport& report() { return report_; }
  [[nodiscard]] const ServerReport& report() const { return report_; }
  [[nodiscard]] tcp::Listener& listener() { return listener_; }
  [[nodiscard]] CpuModel& cpu() { return cpu_; }
  [[nodiscard]] int busy_workers() const {
    return static_cast<int>(workers_.size());
  }

 private:
  struct WorkerState {
    tcp::AcceptedConnection conn;
    SimTime accepted_at;
    bool has_request = false;
  };

  void on_segment(SimTime now, const tcp::Segment& seg);
  void on_request(SimTime now, const tcp::FlowKey& flow, const tcp::Segment& seg);
  void service_loop();
  void tick_loop();
  void sample_loop();
  void drain_accept_queue(SimTime now);
  void send_all(const std::vector<tcp::Segment>& segs);
  void respond_and_close(SimTime now, const tcp::FlowKey& flow);

  net::Simulator& sim_;
  net::Host& host_;
  ServerAgentConfig cfg_;
  tcp::Listener listener_;
  CpuModel cpu_;
  Rng rng_;
  ServerReport report_;
  SimTime until_;

  /// Connections holding a worker (accepted, not yet responded/reaped).
  std::unordered_map<tcp::FlowKey, WorkerState, tcp::FlowKeyHash> workers_;
  /// Workers whose request has arrived, FIFO for the service loop.
  std::deque<tcp::FlowKey> ready_;
  /// Requests that arrived before accept() got to the connection.
  std::unordered_map<tcp::FlowKey, std::uint32_t, tcp::FlowKeyHash> early_requests_;
};

}  // namespace tcpz::sim
