#include "sim/client_agent.hpp"

#include <stdexcept>

#include "workload/models.hpp"

namespace tcpz::sim {

ClientAgent::ClientAgent(net::Simulator& sim, net::Host& host,
                         ClientAgentConfig cfg, std::uint64_t seed)
    : sim_(sim),
      host_(host),
      cfg_(std::move(cfg)),
      model_(cfg_.model ? cfg_.model()
                        : std::make_unique<workload::OpenLoopPoisson>(
                              cfg_.request_rate, cfg_.request_bytes,
                              cfg_.response_bytes, cfg_.max_pending_solves)),
      cpu_(cfg_.cpu),
      rng_(seed) {}

workload::ClientView ClientAgent::view(SimTime now) {
  return {now, attempts_.size(), pending_solves_, &rng_};
}

void ClientAgent::start(SimTime until) {
  until_ = until;
  host_.set_handler([this](SimTime now, const tcp::Segment& seg) {
    on_segment(now, seg);
  });
  sim_.schedule_at(cfg_.start_at, [this] { request_loop(); });
  tick_loop();
  sample_loop();
}

void ClientAgent::send_all(const std::vector<tcp::Segment>& segs) {
  for (const tcp::Segment& seg : segs) {
    report_.tx_bytes.add(sim_.now(), seg.wire_size());
    host_.send(seg);
  }
}

void ClientAgent::request_loop() {
  if (sim_.now() >= until_) return;
  const SimTime next = sim_.now() + model_->next_arrival(view(sim_.now()));
  if (next >= until_) return;
  sim_.schedule_at(next, [this] {
    start_attempt(sim_.now());
    request_loop();
  });
}

void ClientAgent::start_attempt(SimTime now) {
  // Find a source port not used by a live attempt.
  std::uint16_t sport = 0;
  for (int tries = 0; tries < 64; ++tries) {
    std::uint16_t cand = next_sport_++;
    if (next_sport_ < 1024) next_sport_ = 1024;
    if (cand < 1024) continue;
    if (!attempts_.contains(cand)) {
      sport = cand;
      break;
    }
  }
  if (sport == 0) return;  // implausible: >64k live attempts

  const workload::RequestShape shape = model_->request_shape(view(now));

  tcp::ConnectorConfig ccfg;
  ccfg.local_addr = host_.addr();
  ccfg.local_port = sport;
  ccfg.remote_addr = cfg_.server_addr;
  ccfg.remote_port = cfg_.server_port;
  ccfg.solve_puzzles = cfg_.solve_puzzles;
  ccfg.max_price_hashes = cfg_.max_price_hashes;
  ccfg.syn_timeout = cfg_.syn_timeout;
  ccfg.max_syn_retries = cfg_.max_syn_retries;

  auto [it, inserted] = attempts_.emplace(
      sport, Attempt{tcp::Connector(ccfg, rng_.next()), now,
                     now + cfg_.response_timeout, false, 0, shape, 0});
  report_.attempts.add(now, 1.0);
  ++report_.total_attempts;
  apply(now, sport, it->second, it->second.connector.start(now));
}

void ClientAgent::apply(SimTime now, std::uint16_t sport, Attempt& attempt,
                        tcp::ConnectorOutput out) {
  send_all(out.segments);

  if (out.solve) {
    ++report_.challenges_seen;
    if (!model_->accept_challenge(view(now), *out.solve)) {
      ++report_.solves_refused;
      report_.refusals.add(now, 1.0);
      finish_attempt(now, sport, false);
      return;
    }
    if (!cfg_.engine) {
      throw std::logic_error("ClientAgent: challenged but no puzzle engine");
    }
    std::uint64_t hash_ops = 0;
    const puzzle::Solution solution = cfg_.engine->solve(
        *out.solve, attempt.connector.flow_binding(), rng_, hash_ops);
    const double rate =
        cfg_.solve_ops_rate > 0 ? cfg_.solve_ops_rate : cfg_.cpu.hash_rate;
    const SimTime done = cpu_.submit_solve_at_rate(now, hash_ops, rate);
    ++pending_solves_;
    const std::uint64_t token = next_solve_token_++;
    attempt.solve_token = token;
    sim_.schedule_at(done, [this, sport, token, solution] {
      --pending_solves_;
      const auto it = attempts_.find(sport);
      if (it == attempts_.end() || it->second.solve_token != token) return;
      const SimTime t = sim_.now();
      apply(t, sport, it->second, it->second.connector.on_solved(t, solution));
    });
    return;
  }

  if (out.established) {
    report_.established.add(now, 1.0);
    ++report_.total_established;
    report_.conn_time_ms.add((now - attempt.started).to_millis());
    if (!attempt.request_sent) {
      attempt.request_sent = true;
      send_all(
          {attempt.connector.make_data_segment(now, attempt.shape.request_bytes)});
    }
    return;
  }

  if (out.failed) {
    if (out.reason == tcp::ConnectFail::kReset) ++report_.total_rsts;
    finish_attempt(now, sport, false);
  }
}

void ClientAgent::finish_attempt(SimTime now, std::uint16_t sport,
                                 bool success) {
  if (success) {
    report_.completions.add(now, 1.0);
    ++report_.total_completions;
  } else {
    report_.failures.add(now, 1.0);
    ++report_.total_failures;
  }
  attempts_.erase(sport);
}

void ClientAgent::on_segment(SimTime now, const tcp::Segment& seg) {
  report_.rx_bytes.add(now, seg.wire_size());
  const auto it = attempts_.find(seg.dport);
  if (it == attempts_.end()) return;
  Attempt& attempt = it->second;

  // Response payload for an established attempt.
  if (attempt.connector.state() == tcp::ConnectorState::kEstablished &&
      seg.payload_bytes > 0 && !seg.is_rst()) {
    attempt.rx_payload += seg.payload_bytes;
    if (attempt.rx_payload >= attempt.shape.response_bytes) {
      finish_attempt(now, seg.dport, true);
    }
    return;
  }

  apply(now, seg.dport, attempt, attempt.connector.on_segment(now, seg));
}

void ClientAgent::tick_loop() {
  if (sim_.now() >= until_) return;
  sim_.schedule_in(cfg_.tick_interval, [this] {
    const SimTime now = sim_.now();
    // Collect expirations first: apply/finish mutate the map.
    std::vector<std::uint16_t> expired;
    std::vector<std::uint16_t> live;
    live.reserve(attempts_.size());
    for (auto& [sport, attempt] : attempts_) {
      (now > attempt.deadline ? expired : live).push_back(sport);
    }
    for (const std::uint16_t sport : live) {
      const auto it = attempts_.find(sport);
      if (it == attempts_.end()) continue;
      apply(now, sport, it->second, it->second.connector.on_tick(now));
    }
    for (const std::uint16_t sport : expired) {
      if (attempts_.contains(sport)) finish_attempt(now, sport, false);
    }
    tick_loop();
  });
}

void ClientAgent::sample_loop() {
  if (sim_.now() >= until_) return;
  sim_.schedule_in(cfg_.sample_interval, [this] {
    const SimTime now = sim_.now();
    report_.cpu.record(now, cpu_.sample_utilization(now, cfg_.sample_interval));
    sample_loop();
  });
}

}  // namespace tcpz::sim
