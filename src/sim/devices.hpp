// Performance profiles of the machines the paper measures: the three client
// Xeons of Fig. 3a (fleet average w_av = 140630 hashes per 400 ms) and the
// four Raspberry Pi boards of Table 1. Hash rates are SHA-256 ops/second;
// mem rates are random memory accesses/second for the §7 memory-bound
// proof-of-work alternative (note how much narrower their spread is — that
// uniformity is the argument for memory-bound puzzles).
#pragma once

#include <array>
#include <string_view>

namespace tcpz::sim {

struct DeviceProfile {
  std::string_view name;
  std::string_view description;
  double hash_rate;  ///< SHA-256 ops per second
  int cores;
  double mem_rate;   ///< random memory accesses per second
};

/// Fig. 3a client CPUs. Individual hash rates are reconstructed so the fleet
/// average matches the paper's w_av = 140630 hashes / 400 ms exactly.
inline constexpr std::array<DeviceProfile, 3> kClientCpus{{
    {"cpu1", "Intel Xeon E3-1260L quad-core @ 2.4 GHz", 380'000.0, 4, 140e6},
    {"cpu2", "Intel Xeon X3210 quad-core @ 2.13 GHz", 330'000.0, 4, 120e6},
    {"cpu3", "Intel Xeon @ 3 GHz", 344'725.0, 4, 130e6},
}};

/// Table 1 IoT devices, hash rates as printed in the paper.
inline constexpr std::array<DeviceProfile, 4> kIotDevices{{
    {"D1", "Raspberry Pi Model B rev 2.0, 700 MHz ARM11", 49'617.0, 1, 35e6},
    {"D2", "Raspberry Pi Zero, 1 GHz ARM11", 68'960.0, 1, 45e6},
    {"D3", "Raspberry Pi 2 Model B v1.1, quad 1.2 GHz Cortex-A53", 70'009.0, 4,
     55e6},
    {"D4", "Raspberry Pi 3 Model B v1.2, quad 1.2 GHz BCM2837", 74'201.0, 4,
     60e6},
}};

/// The server of §4.4/§7: dual hexa-core Xeon @ 2.2 GHz, 10.8 Mhash/s.
inline constexpr DeviceProfile kServerCpu{
    "server", "HP DL360 G8, dual Intel Xeon hexa-core @ 2.2 GHz",
    10'800'000.0, 12, 150e6};

/// Fleet-average client hash rate implied by the paper's w_av.
inline constexpr double kClientFleetHashRate = 351'575.0;  // 140630 / 0.4 s

}  // namespace tcpz::sim
