// Metric containers filled by the agents during a scenario run. Everything
// the paper's Figures 6-15 plot comes out of these.
#pragma once

#include <cstdint>
#include <string>

#include "tcp/listener.hpp"
#include "util/stats.hpp"
#include "util/timeseries.hpp"

namespace tcpz::sim {

/// Per-host (client or attacker) measurements.
struct HostReport {
  TimeSeries rx_bytes{SimTime::seconds(1)};
  TimeSeries tx_bytes{SimTime::seconds(1)};
  TimeSeries attempts{SimTime::seconds(1)};     ///< connection attempts started
  TimeSeries established{SimTime::seconds(1)};  ///< handshakes completed (our view)
  TimeSeries completions{SimTime::seconds(1)};  ///< full request/response cycles
  TimeSeries failures{SimTime::seconds(1)};
  /// Attempts abandoned before reaching the wire because the local solver
  /// was backlogged (connect() backpressure) — excluded from the paper's
  /// "% of connections established" denominator.
  TimeSeries refusals{SimTime::seconds(1)};
  SampleSet conn_time_ms;  ///< SYN sent -> established (includes solve time)
  GaugeSeries cpu;

  std::uint64_t total_attempts = 0;
  std::uint64_t total_established = 0;
  std::uint64_t total_completions = 0;
  std::uint64_t total_failures = 0;
  std::uint64_t total_rsts = 0;
  std::uint64_t challenges_seen = 0;
  std::uint64_t solves_refused = 0;  ///< backlogged solver or price refusal

  /// Mean goodput in Mbps over bins [from, to).
  [[nodiscard]] double rx_mbps(std::size_t from, std::size_t to) const {
    return rx_bytes.mean_rate(from, to) * 8.0 / 1e6;
  }
};

/// Server-side measurements.
struct ServerReport {
  TimeSeries rx_bytes{SimTime::seconds(1)};
  TimeSeries tx_bytes{SimTime::seconds(1)};
  GaugeSeries listen_queue;
  GaugeSeries accept_queue;
  GaugeSeries cpu;
  TimeSeries challenge_synacks{SimTime::seconds(1)};  ///< Fig. 8 sparkline
  TimeSeries plain_synacks{SimTime::seconds(1)};
  /// Established-connection events split by source class (the simulator
  /// knows which addresses belong to the botnet).
  TimeSeries established_client{SimTime::seconds(1)};
  TimeSeries established_attacker{SimTime::seconds(1)};
  TimeSeries responses{SimTime::seconds(1)};
  /// Difficulty bits m over time (constant unless the adaptive controller
  /// is enabled).
  GaugeSeries difficulty_m;

  tcp::ListenerCounters counters;  ///< final listener counters
  /// DefensePolicy::name() of the listener that produced this report, so
  /// result files identify the policy (e.g. "adaptive+puzzles") instead of
  /// a bare enum value.
  std::string policy;
  /// Difficulty bits m at the end of the run — the adaptive policy's final
  /// setting (equals the configured m when the difficulty never moved).
  double final_difficulty_m = 0;

  [[nodiscard]] double tx_mbps(std::size_t from, std::size_t to) const {
    return tx_bytes.mean_rate(from, to) * 8.0 / 1e6;
  }
  /// Mean attacker established-connection rate (Fig. 11) over [from, to).
  [[nodiscard]] double attacker_cps(std::size_t from, std::size_t to) const {
    return established_attacker.mean_rate(from, to);
  }
};

}  // namespace tcpz::sim
