// Metric containers filled by the agents during a scenario run. Everything
// the paper's Figures 6-15 plot comes out of these.
//
// Field lists are single-sourced as X-macro tables (like
// TCPZ_LISTENER_COUNTER_FIELDS in tcp/counters.hpp): the golden-trace digest
// (tests/trace_digest.hpp), CSV serialization (sim/report_io.cpp) and the
// metrics registry (obs/registry.cpp) all expand the same tables, so a new
// series or total can never silently go un-digested or un-serialized. Table
// order is load-bearing — the digests fold in table order; append, don't
// reorder.
#pragma once

#include <cstdint>
#include <string>

#include "tcp/listener.hpp"
#include "util/stats.hpp"
#include "util/timeseries.hpp"

namespace tcpz::sim {

/// Per-host TimeSeries fields. X(name, help).
#define TCPZ_HOST_REPORT_SERIES_FIELDS(X)                                   \
  X(rx_bytes, "bytes received per second")                                  \
  X(tx_bytes, "bytes sent per second")                                      \
  X(attempts, "connection attempts started per second")                     \
  X(established, "handshakes completed per second (our view)")              \
  X(completions, "full request/response cycles per second")                 \
  X(failures, "connection attempts failed per second")                      \
  X(refusals, "attempts abandoned pre-wire: backlogged solver or price refusal")

/// Per-host cumulative totals. X(name, help).
#define TCPZ_HOST_REPORT_TOTAL_FIELDS(X)                                    \
  X(total_attempts, "connection attempts started")                          \
  X(total_established, "handshakes completed")                              \
  X(total_completions, "full request/response cycles")                      \
  X(total_failures, "connection attempts failed")                           \
  X(total_rsts, "RSTs received")                                            \
  X(challenges_seen, "puzzle challenges received")                          \
  X(solves_refused, "solves refused: backlogged solver or price refusal")

/// Per-host (client or attacker) measurements.
struct HostReport {
#define TCPZ_X(name, help) TimeSeries name{SimTime::seconds(1)};
  TCPZ_HOST_REPORT_SERIES_FIELDS(TCPZ_X)
#undef TCPZ_X
  SampleSet conn_time_ms;  ///< SYN sent -> established (includes solve time)
  GaugeSeries cpu;

#define TCPZ_X(name, help) std::uint64_t name = 0;
  TCPZ_HOST_REPORT_TOTAL_FIELDS(TCPZ_X)
#undef TCPZ_X

  /// Mean goodput in Mbps over bins [from, to).
  [[nodiscard]] double rx_mbps(std::size_t from, std::size_t to) const {
    return rx_bytes.mean_rate(from, to) * 8.0 / 1e6;
  }
};

/// Server-side TimeSeries fields. X(name, help).
#define TCPZ_SERVER_REPORT_SERIES_FIELDS(X)                                 \
  X(rx_bytes, "bytes received per second")                                  \
  X(tx_bytes, "bytes sent per second")                                      \
  X(challenge_synacks, "challenge SYN-ACKs per second (Fig. 8 sparkline)")  \
  X(plain_synacks, "plain SYN-ACKs per second")                             \
  X(established_client, "legitimate-client establishments per second")      \
  X(established_attacker, "botnet establishments per second")               \
  X(responses, "responses served per second")

/// Server-side gauge fields. X(name, help).
#define TCPZ_SERVER_REPORT_GAUGE_FIELDS(X)                                  \
  X(listen_queue, "listen (SYN) queue depth")                               \
  X(accept_queue, "accept queue depth")                                     \
  X(cpu, "server CPU utilization")                                          \
  X(difficulty_m, "puzzle difficulty bits m over time")

/// Server-side measurements. The established_* split relies on the
/// simulator knowing which addresses belong to the botnet.
struct ServerReport {
#define TCPZ_X(name, help) TimeSeries name{SimTime::seconds(1)};
  TCPZ_SERVER_REPORT_SERIES_FIELDS(TCPZ_X)
#undef TCPZ_X
#define TCPZ_X(name, help) GaugeSeries name;
  TCPZ_SERVER_REPORT_GAUGE_FIELDS(TCPZ_X)
#undef TCPZ_X

  tcp::ListenerCounters counters;  ///< final listener counters
  /// DefensePolicy::name() of the listener that produced this report, so
  /// result files identify the policy (e.g. "adaptive+puzzles") instead of
  /// a bare enum value.
  std::string policy;
  /// Difficulty bits m at the end of the run — the adaptive policy's final
  /// setting (equals the configured m when the difficulty never moved).
  double final_difficulty_m = 0;

  [[nodiscard]] double tx_mbps(std::size_t from, std::size_t to) const {
    return tx_bytes.mean_rate(from, to) * 8.0 / 1e6;
  }
  /// Mean attacker established-connection rate (Fig. 11) over [from, to).
  [[nodiscard]] double attacker_cps(std::size_t from, std::size_t to) const {
    return established_attacker.mean_rate(from, to);
  }
};

}  // namespace tcpz::sim
