// Legacy single-server experiment scenarios: the Fig. 16 DETER topology,
// the §6 workload (15 clients at 20 req/s, 10 bots at 500 pps, attack window
// 120–480 s of a 600 s run), and the metric collection every figure needs.
//
// Since the unified scenario engine (src/scenario/), this header is a
// compatibility shim: run_scenario translates a ScenarioConfig into a
// scenario::Spec (via to_spec) and executes it there, reproducing the
// original engine's traces byte-for-byte (tests/scenario_trace_test.cpp).
// New code should build a scenario::Spec directly.
//
// `scaled()` shrinks the timeline (same rates, shorter windows) so the full
// bench suite runs in minutes; `--full` on the benches restores paper scale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <optional>

#include "core/adaptive.hpp"
#include "defense/spec.hpp"
#include "puzzle/types.hpp"
#include "scenario/spec.hpp"
#include "sim/attack_type.hpp"
#include "sim/attacker_agent.hpp"
#include "sim/client_agent.hpp"
#include "sim/metrics.hpp"
#include "sim/server_agent.hpp"
#include "tcp/listener.hpp"

namespace tcpz::sim {

/// Which resource the puzzle burns; see scenario::PowKind (kept under the
/// old name for the legacy configs and benches).
using PowKind = scenario::PowKind;

struct ScenarioConfig {
  std::uint64_t seed = 42;

  // Timeline.
  SimTime duration = SimTime::seconds(600);
  SimTime attack_start = SimTime::seconds(120);
  SimTime attack_end = SimTime::seconds(480);

  // Legitimate workload (§6 defaults; response size chosen to reproduce the
  // ~16 Mbps/client, ~240 Mbps/server nominal throughput of Figs. 7–8).
  int n_clients = 15;
  double client_rate = 20.0;
  std::uint32_t request_bytes = 200;
  std::uint32_t response_bytes = 100'000;
  bool clients_solve = true;
  CpuSpec client_cpu{351'575.0, 4, 1};
  int client_max_pending_solves = 4;
  SimTime client_response_timeout = SimTime::seconds(10);

  // Botnet.
  int n_bots = 10;
  double bot_rate = 500.0;
  AttackType attack = AttackType::kConnFlood;
  bool bots_solve = true;  ///< bots run the patched kernel too (§6)
  CpuSpec bot_cpu{351'575.0, 2, 1};
  int bot_max_pending_solves = 6;
  int bot_max_inflight = 250;

  // Server.
  /// First-class defense selection: when set, this spec drives the server's
  /// policy and the legacy shim knobs below (defense, always_challenge,
  /// protection_hold, protection_engage_water, adaptive) are ignored.
  std::optional<defense::PolicySpec> policy;
  /// Legacy shim (see policy_spec()).
  tcp::DefenseMode defense = tcp::DefenseMode::kPuzzles;
  puzzle::Difficulty difficulty{2, 17};  ///< the Nash difficulty of §4.4
  bool always_challenge = false;         ///< Experiment 1 (Fig. 6)
  /// Linux-style asymmetry: a large SYN backlog (tcp_max_syn_backlog) and a
  /// smaller accept backlog (somaxconn/ListenBacklog). The attacker leakage
  /// per opportunistic opening is one accept backlog, so this ratio sets the
  /// Fig. 11 rate-limit factor.
  std::size_t listen_backlog = 4096;
  std::size_t accept_backlog = 1024;
  double service_rate = 1100.0;  ///< µ from the Fig. 3b stress test
  /// Worker pool: connections that never send a request pin a worker until
  /// app_idle_timeout, so the accept drain under flood is workers/timeout.
  int n_workers = 1024;
  CpuSpec server_cpu{10'800'000.0, 12, 1};
  SimTime app_idle_timeout = SimTime::seconds(5);
  std::uint32_t puzzle_expiry_ms = 4000;
  std::uint8_t sol_len = 4;  ///< 32-bit solutions keep k<=4 within 40 B options
  /// Protection-controller knobs (ablations sweep these).
  SimTime protection_hold = SimTime::seconds(60);
  double protection_engage_water = 1.0;
  /// §7 extensions.
  std::optional<AdaptiveConfig> adaptive;  ///< closed-loop difficulty control
  PowKind pow = PowKind::kCpuBound;

  // Network (Fig. 16).
  double backbone_bps = 1e9;
  double server_link_bps = 1e9;
  double host_link_bps = 100e6;
  SimTime link_delay = SimTime::microseconds(500);

  // Cadences.
  SimTime tick_interval = SimTime::milliseconds(100);
  SimTime sample_interval = SimTime::milliseconds(250);

  /// Same rates and shapes on a short timeline: 150 s run, attack 30–110 s.
  [[nodiscard]] ScenarioConfig scaled() const;

  /// The defense spec this scenario runs: `policy` when set, otherwise the
  /// legacy shim fields mapped through defense::PolicySpec::from_legacy.
  [[nodiscard]] defense::PolicySpec policy_spec() const;

  /// The equivalent declarative spec (legacy-sequential seeding, one attack
  /// group, one server) — what run_scenario executes.
  [[nodiscard]] scenario::Spec to_spec() const;

  [[nodiscard]] std::size_t attack_start_bin() const {
    return static_cast<std::size_t>(attack_start.nanos() / 1'000'000'000);
  }
  [[nodiscard]] std::size_t attack_end_bin() const {
    return static_cast<std::size_t>(attack_end.nanos() / 1'000'000'000);
  }
  [[nodiscard]] std::size_t duration_bins() const {
    return static_cast<std::size_t>(duration.nanos() / 1'000'000'000);
  }
};

struct ScenarioResult {
  ServerReport server;
  std::vector<HostReport> clients;
  std::vector<HostReport> bots;
  std::uint64_t events_processed = 0;
  double wall_seconds = 0;

  // Aggregates over all clients.
  [[nodiscard]] double client_rx_mbps(std::size_t from, std::size_t to) const;
  [[nodiscard]] double mean_client_cpu(SimTime from, SimTime to) const;
  [[nodiscard]] double mean_bot_cpu(SimTime from, SimTime to) const;
  [[nodiscard]] double client_success_ratio() const;
  /// Attacker SYN/attempt rate actually emitted (Figs. 13a/14a).
  [[nodiscard]] double bot_measured_rate(std::size_t from, std::size_t to) const;
};

[[nodiscard]] ScenarioResult run_scenario(const ScenarioConfig& cfg);

}  // namespace tcpz::sim
