#include "sim/report_io.hpp"

#include <cstdio>
#include <memory>
#include <stdexcept>

namespace tcpz::sim {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

File open_or_throw(const std::string& path) {
  File f(std::fopen(path.c_str(), "w"));
  if (!f) throw std::runtime_error("write_csv: cannot create " + path);
  return f;
}

}  // namespace

std::size_t write_csv(const ScenarioResult& result, const ScenarioConfig& cfg,
                      const std::string& prefix) {
  std::size_t files = 0;
  const std::size_t bins = cfg.duration_bins();

  {
    File f = open_or_throw(prefix + "_throughput.csv");
    std::fprintf(f.get(), "t_s,server_tx_mbps");
    for (std::size_t i = 0; i < result.clients.size(); ++i) {
      std::fprintf(f.get(), ",client%zu_rx_mbps", i);
    }
    std::fprintf(f.get(), "\n");
    for (std::size_t t = 0; t < bins; ++t) {
      std::fprintf(f.get(), "%zu,%.4f", t, result.server.tx_mbps(t, t + 1));
      for (const auto& c : result.clients) {
        std::fprintf(f.get(), ",%.4f", c.rx_mbps(t, t + 1));
      }
      std::fprintf(f.get(), "\n");
    }
    ++files;
  }
  {
    File f = open_or_throw(prefix + "_queues.csv");
    std::fprintf(f.get(), "t_s,listen,accept,server_cpu,difficulty_m\n");
    for (std::size_t t = 0; t < bins; ++t) {
      const SimTime a = SimTime::seconds(static_cast<std::int64_t>(t));
      const SimTime b = a + SimTime::seconds(1);
      std::fprintf(f.get(), "%zu,%.1f,%.1f,%.4f,%.0f\n", t,
                   result.server.listen_queue.mean_in(a, b),
                   result.server.accept_queue.mean_in(a, b),
                   result.server.cpu.mean_in(a, b),
                   result.server.difficulty_m.mean_in(a, b));
    }
    ++files;
  }
  {
    File f = open_or_throw(prefix + "_attack.csv");
    std::fprintf(f.get(), "t_s,attacker_cps,client_cps,bot_measured_pps\n");
    for (std::size_t t = 0; t < bins; ++t) {
      std::fprintf(f.get(), "%zu,%.2f,%.2f,%.1f\n", t,
                   result.server.established_attacker.rate_at(t),
                   result.server.established_client.rate_at(t),
                   result.bot_measured_rate(t, t + 1));
    }
    ++files;
  }
  {
    File f = open_or_throw(prefix + "_conn_times.csv");
    std::fprintf(f.get(), "conn_time_ms\n");
    for (const auto& c : result.clients) {
      for (const double ms : c.conn_time_ms.sorted()) {
        std::fprintf(f.get(), "%.4f\n", ms);
      }
    }
    ++files;
  }
  {
    File f = open_or_throw(prefix + "_summary.csv");
    const auto& c = result.server.counters;
    std::fprintf(f.get(), "key,value\n");
    std::fprintf(f.get(), "policy,%s\n", result.server.policy.c_str());
    std::fprintf(f.get(), "final_difficulty_m,%.0f\n",
                 result.server.final_difficulty_m);
    // Every counter, expanded from the field table — the old hand-written
    // row list had drifted to 17 of 31 fields (drops_listen_full among the
    // silently missing); the table makes that class of bug impossible.
#define TCPZ_X(name, help)                      \
  std::fprintf(f.get(), "%s,%llu\n", #name,     \
               static_cast<unsigned long long>(c.name));
    TCPZ_LISTENER_COUNTER_FIELDS(TCPZ_X)
#undef TCPZ_X
    ++files;
  }
  return files;
}

}  // namespace tcpz::sim
