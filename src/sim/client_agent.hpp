// A legitimate client: an open-loop request generator (Poisson arrivals at
// rate r_c, as in §6's workload) where each request opens a fresh TCP
// connection, sends a gettext request and waits for the response. Solving is
// serial through the CPU model's solver lanes — the in-kernel search of the
// patch — and attempts beyond the solver backlog cap fail immediately
// (connect() backpressure).
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>

#include <memory>

#include "net/node.hpp"
#include "net/simulator.hpp"
#include "puzzle/engine.hpp"
#include "sim/cpu.hpp"
#include "sim/metrics.hpp"
#include "tcp/connector.hpp"
#include "util/rng.hpp"

namespace tcpz::sim {

struct ClientAgentConfig {
  std::uint32_t server_addr = 0;
  std::uint16_t server_port = 80;
  double request_rate = 20.0;  ///< requests per second (Poisson)
  std::uint32_t request_bytes = 200;
  std::uint32_t response_bytes = 100'000;
  bool solve_puzzles = true;  ///< patched kernel?
  double max_price_hashes = std::numeric_limits<double>::infinity();
  /// Shared puzzle engine (the oracle in simulations); required when the
  /// client is patched and the server may challenge it. Oracle solutions
  /// derive from the challenge bytes alone, so one engine instance solves
  /// challenges from any server secret epoch (see DESIGN.md, Substitutions).
  std::shared_ptr<const puzzle::PuzzleEngine> engine;
  CpuSpec cpu{351'575.0, 4, 1};
  /// Work-unit rate for solving (0 = cpu.hash_rate). Memory-bound puzzles
  /// pass cpu.mem_rate here.
  double solve_ops_rate = 0.0;
  int max_pending_solves = 4;
  SimTime response_timeout = SimTime::seconds(10);
  SimTime syn_timeout = SimTime::seconds(1);
  int max_syn_retries = 3;
  SimTime tick_interval = SimTime::milliseconds(100);
  SimTime sample_interval = SimTime::milliseconds(250);
  SimTime start_at = SimTime::zero();
};

class ClientAgent {
 public:
  ClientAgent(net::Simulator& sim, net::Host& host, ClientAgentConfig cfg,
              std::uint64_t seed);

  void start(SimTime until);

  [[nodiscard]] HostReport& report() { return report_; }
  [[nodiscard]] const HostReport& report() const { return report_; }
  [[nodiscard]] CpuModel& cpu() { return cpu_; }

 private:
  struct Attempt {
    tcp::Connector connector;
    SimTime started;
    SimTime deadline;
    bool request_sent = false;
    std::uint64_t rx_payload = 0;
    /// Guards stale solve completions. Unlike the attacker's solve timers,
    /// the client's completion events are NOT descheduled when an attempt
    /// dies: the in-kernel search keeps a solver lane busy until it finishes
    /// even when connect() has given up, and pending_solves_ (which gates
    /// max_pending_solves backpressure) must stay elevated until then. The
    /// completion event carries that accounting, so it is not a tombstone.
    std::uint64_t solve_token = 0;
  };

  void on_segment(SimTime now, const tcp::Segment& seg);
  void request_loop();
  void tick_loop();
  void sample_loop();
  void start_attempt(SimTime now);
  void apply(SimTime now, std::uint16_t sport, Attempt& attempt,
             tcp::ConnectorOutput out);
  void finish_attempt(SimTime now, std::uint16_t sport, bool success);
  void send_all(const std::vector<tcp::Segment>& segs);

  net::Simulator& sim_;
  net::Host& host_;
  ClientAgentConfig cfg_;
  CpuModel cpu_;
  Rng rng_;
  HostReport report_;
  SimTime until_;

  std::unordered_map<std::uint16_t, Attempt> attempts_;
  std::uint16_t next_sport_ = 1024;
  int pending_solves_ = 0;
  std::uint64_t next_solve_token_ = 1;
};

}  // namespace tcpz::sim
