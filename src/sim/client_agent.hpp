// A legitimate client: a request generator where each request opens a fresh
// TCP connection, sends a gettext request and waits for the response. The
// *demand* decisions — when the next attempt starts, how it is sized, and
// whether a puzzle challenge is worth solving — are delegated to a pluggable
// workload::TrafficModel (default: the paper's §6 open-loop Poisson model at
// rate r_c). Solving is serial through the CPU model's solver lanes — the
// in-kernel search of the patch — and attempts beyond the solver backlog cap
// fail immediately (connect() backpressure).
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>

#include <memory>

#include "net/node.hpp"
#include "net/simulator.hpp"
#include "puzzle/engine.hpp"
#include "sim/cpu.hpp"
#include "sim/metrics.hpp"
#include "tcp/connector.hpp"
#include "util/rng.hpp"
#include "workload/model.hpp"
#include "workload/profiles.hpp"

namespace tcpz::sim {

struct ClientAgentConfig {
  std::uint32_t server_addr = 0;
  std::uint16_t server_port = 80;
  double request_rate = workload::profiles::kRequestRate;  ///< req/s (Poisson)
  std::uint32_t request_bytes = workload::profiles::kRequestBytes;
  std::uint32_t response_bytes = workload::profiles::kResponseBytes;
  bool solve_puzzles = true;  ///< patched kernel?
  double max_price_hashes = std::numeric_limits<double>::infinity();
  /// Shared puzzle engine (the oracle in simulations); required when the
  /// client is patched and the server may challenge it. Oracle solutions
  /// derive from the challenge bytes alone, so one engine instance solves
  /// challenges from any server secret epoch (see DESIGN.md, Substitutions).
  std::shared_ptr<const puzzle::PuzzleEngine> engine;
  CpuSpec cpu = workload::profiles::client_cpu();
  /// Work-unit rate for solving (0 = cpu.hash_rate). Memory-bound puzzles
  /// pass cpu.mem_rate here.
  double solve_ops_rate = 0.0;
  int max_pending_solves = workload::profiles::kMaxPendingSolves;
  /// Workload model factory. When empty, the agent builds the legacy
  /// open-loop Poisson model from the flat knobs above (request_rate,
  /// request/response bytes, max_pending_solves) — byte-identical traces.
  workload::ModelFactory model;
  SimTime response_timeout = SimTime::seconds(10);
  SimTime syn_timeout = SimTime::seconds(1);
  int max_syn_retries = 3;
  SimTime tick_interval = SimTime::milliseconds(100);
  SimTime sample_interval = SimTime::milliseconds(250);
  SimTime start_at = SimTime::zero();
};

class ClientAgent {
 public:
  ClientAgent(net::Simulator& sim, net::Host& host, ClientAgentConfig cfg,
              std::uint64_t seed);

  void start(SimTime until);

  [[nodiscard]] HostReport& report() { return report_; }
  [[nodiscard]] const HostReport& report() const { return report_; }
  [[nodiscard]] CpuModel& cpu() { return cpu_; }

 private:
  struct Attempt {
    tcp::Connector connector;
    SimTime started;
    SimTime deadline;
    bool request_sent = false;
    std::uint64_t rx_payload = 0;
    /// Sizing decided by the TrafficModel when the attempt started.
    workload::RequestShape shape;
    /// Guards stale solve completions. Unlike the attacker's solve timers,
    /// the client's completion events are NOT descheduled when an attempt
    /// dies: the in-kernel search keeps a solver lane busy until it finishes
    /// even when connect() has given up, and pending_solves_ (which gates
    /// max_pending_solves backpressure) must stay elevated until then. The
    /// completion event carries that accounting, so it is not a tombstone.
    std::uint64_t solve_token = 0;
  };

  [[nodiscard]] workload::ClientView view(SimTime now);
  void on_segment(SimTime now, const tcp::Segment& seg);
  void request_loop();
  void tick_loop();
  void sample_loop();
  void start_attempt(SimTime now);
  void apply(SimTime now, std::uint16_t sport, Attempt& attempt,
             tcp::ConnectorOutput out);
  void finish_attempt(SimTime now, std::uint16_t sport, bool success);
  void send_all(const std::vector<tcp::Segment>& segs);

  net::Simulator& sim_;
  net::Host& host_;
  ClientAgentConfig cfg_;
  std::unique_ptr<workload::TrafficModel> model_;
  CpuModel cpu_;
  Rng rng_;
  HostReport report_;
  SimTime until_;

  std::unordered_map<std::uint16_t, Attempt> attempts_;
  std::uint16_t next_sport_ = 1024;
  int pending_solves_ = 0;
  std::uint64_t next_solve_token_ = 1;
};

}  // namespace tcpz::sim
