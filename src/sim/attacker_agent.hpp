// Botnet members. The agent owns the mechanics every attack shares — the
// constant-rate emission loop, the bounded in-flight attempt table, the
// serial in-kernel solver admission, timers, the CPU model and metric
// accounting — and consults a pluggable offense::AttackStrategy at each
// decision point (emission slot, received segment, challenge, verdict).
// The paper's three behaviours (SYN flood, connection flood, bogus-solution
// flood) and the extended attacker models (pulsed, game-adaptive,
// multi-target) all live in src/offense/; the agent itself never branches
// on what kind of attack it is running.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "net/node.hpp"
#include "net/simulator.hpp"
#include "offense/strategy.hpp"
#include "puzzle/engine.hpp"
#include "sim/cpu.hpp"
#include "sim/metrics.hpp"
#include "tcp/connector.hpp"
#include "util/rng.hpp"

namespace tcpz::sim {

/// One server a bot can aim at. Most scenarios have exactly one; the
/// multi-server topology hands every bot the full replica list so
/// fleet-aware strategies can spread their attempts.
struct AttackTarget {
  std::uint32_t addr = 0;
  std::uint16_t port = 80;
};

struct AttackerAgentConfig {
  /// Servers this bot can attack; strategies pick per-slot by index.
  std::vector<AttackTarget> targets;
  /// The behaviour behind the flood (required; see offense::StrategySpec).
  offense::StrategyFactory strategy;
  double rate = 500.0;  ///< packets (connection attempts) per second
  SimTime attack_start = SimTime::seconds(120);
  SimTime attack_end = SimTime::seconds(480);
  std::shared_ptr<const puzzle::PuzzleEngine> engine;
  /// Commodity zombie: equal-or-better hash rate than clients (§6), fewer
  /// spare cores.
  CpuSpec cpu{351'575.0, 2, 1};
  /// Work-unit rate for solving (0 = cpu.hash_rate); see ClientAgentConfig.
  double solve_ops_rate = 0.0;
  int max_pending_solves = 6;
  /// Finite tool concurrency: new attempts are skipped while this many are
  /// in flight (this is what caps the "measured attack rate" of Figs 13–14).
  int max_inflight = 250;
  SimTime attempt_timeout = SimTime::seconds(1);
  /// Userspace raw-packet crafting on commodity zombie hardware is far more
  /// expensive than kernel fast-path processing; at 500 pps this puts a bot
  /// around the 50-60% CPU the paper's Fig. 9 shows for attackers.
  double per_packet_cpu_sec = 0.7e-3;
  SimTime tick_interval = SimTime::milliseconds(100);
  SimTime sample_interval = SimTime::milliseconds(250);
  /// Flight-recorder track this bot's offense events report under (one
  /// track per agent in the Chrome-trace export; see src/obs/).
  std::uint16_t trace_track = 0;
};

class AttackerAgent {
 public:
  AttackerAgent(net::Simulator& sim, net::Host& host, AttackerAgentConfig cfg,
                std::uint64_t seed);

  void start(SimTime until);

  [[nodiscard]] HostReport& report() { return report_; }
  [[nodiscard]] const HostReport& report() const { return report_; }
  [[nodiscard]] CpuModel& cpu() { return cpu_; }
  [[nodiscard]] const offense::AttackStrategy& strategy() const {
    return *strategy_;
  }

 private:
  struct Attempt {
    tcp::Connector connector;
    SimTime started;
    /// Pending (or spent) solve-completion timer. Erasing an attempt cancels
    /// it, so a completion never fires for a dead or recycled source port.
    net::TimerHandle solve_timer;
  };

  using AttemptMap = std::unordered_map<std::uint16_t, Attempt>;

  [[nodiscard]] offense::BotView view(SimTime now);
  void on_segment(SimTime now, const tcp::Segment& seg);
  void flood_loop();
  void tick_loop();
  void sample_loop();
  void launch_attempt(SimTime now, bool patched, std::size_t target);
  void send_spoofed_syn(SimTime now, std::size_t target);
  void apply(SimTime now, std::uint16_t sport, tcp::ConnectorOutput out);
  void send_all(const std::vector<tcp::Segment>& segs);
  /// Erases an attempt, descheduling any in-flight solve completion.
  void erase_attempt(AttemptMap::iterator it);
  [[nodiscard]] tcp::Segment make_bogus_solution_ack(SimTime now,
                                                     const tcp::Segment& synack);

  net::Simulator& sim_;
  net::Host& host_;
  AttackerAgentConfig cfg_;
  CpuModel cpu_;
  Rng rng_;
  HostReport report_;
  SimTime until_;
  std::unique_ptr<offense::AttackStrategy> strategy_;

  AttemptMap attempts_;
  std::uint16_t next_sport_ = 1024;
  int pending_solves_ = 0;
};

}  // namespace tcpz::sim
