// Botnet members. Three attack behaviours from the paper's evaluation plus
// the solution-flood of §7:
//
//  * SYN flood (hping3-style): SYNs from spoofed random sources at a
//    constant rate; never completes a handshake.
//  * Connection flood (nping-style): real source address, completes the
//    three-way handshake. With a patched kernel the bot transparently solves
//    challenges (serially, through its CPU model); an unpatched bot answers
//    with a plain ACK and believes it connected. A bounded number of
//    in-flight attempts models the attack tool's finite concurrency.
//  * Bogus-solution flood: completes the exchange but answers challenges
//    with garbage bytes instantly, forcing the server to spend verification
//    work (§7 "solution floods").
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "net/node.hpp"
#include "net/simulator.hpp"
#include "puzzle/engine.hpp"
#include "sim/cpu.hpp"
#include "sim/metrics.hpp"
#include "tcp/connector.hpp"
#include "util/rng.hpp"

namespace tcpz::sim {

enum class AttackType : std::uint8_t {
  kSynFlood,
  kConnFlood,
  kBogusSolutionFlood,
};

[[nodiscard]] const char* to_string(AttackType t);

struct AttackerAgentConfig {
  std::uint32_t server_addr = 0;
  std::uint16_t server_port = 80;
  AttackType type = AttackType::kConnFlood;
  double rate = 500.0;  ///< packets (connection attempts) per second
  SimTime attack_start = SimTime::seconds(120);
  SimTime attack_end = SimTime::seconds(480);
  /// Patched kernel? Patched bots solve challenges; unpatched send plain ACKs.
  bool solve_puzzles = true;
  std::shared_ptr<const puzzle::PuzzleEngine> engine;
  /// Commodity zombie: equal-or-better hash rate than clients (§6), fewer
  /// spare cores.
  CpuSpec cpu{351'575.0, 2, 1};
  /// Work-unit rate for solving (0 = cpu.hash_rate); see ClientAgentConfig.
  double solve_ops_rate = 0.0;
  int max_pending_solves = 6;
  /// Finite tool concurrency: new attempts are skipped while this many are
  /// in flight (this is what caps the "measured attack rate" of Figs 13–14).
  int max_inflight = 250;
  SimTime attempt_timeout = SimTime::seconds(1);
  /// Userspace raw-packet crafting on commodity zombie hardware is far more
  /// expensive than kernel fast-path processing; at 500 pps this puts a bot
  /// around the 50-60% CPU the paper's Fig. 9 shows for attackers.
  double per_packet_cpu_sec = 0.7e-3;
  SimTime tick_interval = SimTime::milliseconds(100);
  SimTime sample_interval = SimTime::milliseconds(250);
};

class AttackerAgent {
 public:
  AttackerAgent(net::Simulator& sim, net::Host& host, AttackerAgentConfig cfg,
                std::uint64_t seed);

  void start(SimTime until);

  [[nodiscard]] HostReport& report() { return report_; }
  [[nodiscard]] const HostReport& report() const { return report_; }
  [[nodiscard]] CpuModel& cpu() { return cpu_; }

 private:
  struct Attempt {
    tcp::Connector connector;
    SimTime started;
    /// Pending (or spent) solve-completion timer. Erasing an attempt cancels
    /// it, so a completion never fires for a dead or recycled source port.
    net::TimerHandle solve_timer;
  };

  using AttemptMap = std::unordered_map<std::uint16_t, Attempt>;

  void on_segment(SimTime now, const tcp::Segment& seg);
  void flood_loop();
  void tick_loop();
  void sample_loop();
  void launch_attempt(SimTime now);
  void send_spoofed_syn(SimTime now);
  void apply(SimTime now, std::uint16_t sport, tcp::ConnectorOutput out);
  void send_all(const std::vector<tcp::Segment>& segs);
  /// Erases an attempt, descheduling any in-flight solve completion.
  void erase_attempt(AttemptMap::iterator it);
  [[nodiscard]] tcp::Segment make_bogus_solution_ack(SimTime now,
                                                     const tcp::Segment& synack);

  net::Simulator& sim_;
  net::Host& host_;
  AttackerAgentConfig cfg_;
  CpuModel cpu_;
  Rng rng_;
  HostReport report_;
  SimTime until_;

  AttemptMap attempts_;
  std::uint16_t next_sport_ = 1024;
  int pending_solves_ = 0;
};

}  // namespace tcpz::sim
