// CSV export of scenario results, so the figure data can be plotted with
// external tooling (gnuplot/matplotlib). One file per series family:
//   <prefix>_throughput.csv   t, server_tx_mbps, client_rx_mbps[i]...
//   <prefix>_queues.csv       t, listen, accept, cpu, difficulty_m
//   <prefix>_attack.csv       t, attacker_cps, client_cps, bot_measured_pps
//   <prefix>_conn_times.csv   sorted per-connection times (ms), one per line
//   <prefix>_summary.csv      listener counters as key,value rows
#pragma once

#include <string>

#include "sim/scenario.hpp"

namespace tcpz::sim {

/// Writes the CSV family; returns the number of files written. Throws
/// std::runtime_error if a file cannot be created.
std::size_t write_csv(const ScenarioResult& result, const ScenarioConfig& cfg,
                      const std::string& prefix);

}  // namespace tcpz::sim
