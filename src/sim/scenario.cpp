#include "sim/scenario.hpp"

#include <chrono>
#include <memory>

#include "crypto/secret.hpp"
#include "net/topology.hpp"

namespace tcpz::sim {
namespace {

constexpr std::uint32_t kServerAddr = tcp::ipv4(10, 1, 0, 1);
constexpr std::uint16_t kServerPort = 80;

std::uint32_t client_addr(int i) {
  return tcp::ipv4(10, 2, 0, 1) + static_cast<std::uint32_t>(i);
}
std::uint32_t bot_addr(int i) {
  return tcp::ipv4(10, 3, 0, 1) + static_cast<std::uint32_t>(i);
}

bool is_bot_addr(std::uint32_t addr) {
  return (addr & 0xffff0000u) == tcp::ipv4(10, 3, 0, 0);
}

}  // namespace

defense::PolicySpec ScenarioConfig::policy_spec() const {
  if (policy) return *policy;
  defense::PolicySpec s = defense::PolicySpec::from_mode(defense);
  s.always_challenge = always_challenge;
  s.protection_hold = protection_hold;
  s.protection_engage_water = protection_engage_water;
  s.adaptive = adaptive;
  return s;
}

ScenarioConfig ScenarioConfig::scaled() const {
  // Same rates, shorter timeline. The attack window is kept shorter than the
  // listener's protection hold so the window measures the protected steady
  // state, as the bulk of the paper's 6-minute window does; --full restores
  // paper scale (including the periodic opportunistic openings).
  ScenarioConfig c = *this;
  c.duration = SimTime::seconds(120);
  c.attack_start = SimTime::seconds(30);
  c.attack_end = SimTime::seconds(80);
  return c;
}

double ScenarioResult::client_rx_mbps(std::size_t from, std::size_t to) const {
  double sum = 0;
  for (const auto& c : clients) sum += c.rx_mbps(from, to);
  return sum;
}

double ScenarioResult::mean_client_cpu(SimTime from, SimTime to) const {
  double sum = 0;
  for (const auto& c : clients) sum += c.cpu.mean_in(from, to);
  return clients.empty() ? 0.0 : sum / static_cast<double>(clients.size());
}

double ScenarioResult::mean_bot_cpu(SimTime from, SimTime to) const {
  double sum = 0;
  for (const auto& b : bots) sum += b.cpu.mean_in(from, to);
  return bots.empty() ? 0.0 : sum / static_cast<double>(bots.size());
}

double ScenarioResult::client_success_ratio() const {
  std::uint64_t attempts = 0, completions = 0;
  for (const auto& c : clients) {
    attempts += c.total_attempts;
    completions += c.total_completions;
  }
  return attempts ? static_cast<double>(completions) /
                        static_cast<double>(attempts)
                  : 0.0;
}

double ScenarioResult::bot_measured_rate(std::size_t from,
                                         std::size_t to) const {
  double sum = 0;
  for (const auto& b : bots) sum += b.attempts.mean_rate(from, to);
  return sum;
}

ScenarioResult run_scenario(const ScenarioConfig& cfg) {
  const auto wall_start = std::chrono::steady_clock::now();

  net::Simulator sim;
  net::Topology topo(sim);
  Rng seeder(cfg.seed);

  // Fig. 16: three fully connected backbone routers; server behind r1.
  net::Router* r1 = topo.add_router("r1");
  net::Router* r2 = topo.add_router("r2");
  net::Router* r3 = topo.add_router("r3");
  const net::LinkSpec backbone{cfg.backbone_bps, cfg.link_delay, 4u << 20};
  topo.connect(r1, r2, backbone);
  topo.connect(r2, r3, backbone);
  topo.connect(r1, r3, backbone);

  net::Host* server_host = topo.add_host("server", kServerAddr);
  topo.connect(server_host, r1, {cfg.server_link_bps, cfg.link_delay, 4u << 20});

  std::vector<net::Host*> client_hosts;
  const net::LinkSpec host_link{cfg.host_link_bps, cfg.link_delay, 1u << 20};
  for (int i = 0; i < cfg.n_clients; ++i) {
    net::Host* h = topo.add_host("client" + std::to_string(i), client_addr(i));
    topo.connect(h, i % 2 == 0 ? r2 : r3, host_link);
    client_hosts.push_back(h);
  }
  std::vector<net::Host*> bot_hosts;
  for (int i = 0; i < cfg.n_bots; ++i) {
    net::Host* h = topo.add_host("bot" + std::to_string(i), bot_addr(i));
    topo.connect(h, i % 2 == 0 ? r3 : r2, host_link);
    bot_hosts.push_back(h);
  }
  topo.compute_routes();

  // One shared oracle engine: the server verifies with the same secret the
  // oracle derives "solutions" from (see DESIGN.md, Substitutions).
  const crypto::SecretKey secret = crypto::SecretKey::from_seed(cfg.seed);
  puzzle::EngineConfig ecfg;
  ecfg.sol_len = cfg.sol_len;
  ecfg.expiry_ms = cfg.puzzle_expiry_ms;
  auto engine = std::make_shared<puzzle::OraclePuzzleEngine>(secret, ecfg);

  // Server.
  const defense::PolicySpec spec = cfg.policy_spec();
  ServerAgentConfig scfg;
  scfg.listener.local_addr = kServerAddr;
  scfg.listener.local_port = kServerPort;
  scfg.listener.listen_backlog = cfg.listen_backlog;
  scfg.listener.accept_backlog = cfg.accept_backlog;
  scfg.listener.difficulty = cfg.difficulty;
  scfg.listener.policy = spec.factory();
  scfg.service_rate = cfg.service_rate;
  scfg.n_workers = cfg.n_workers;
  scfg.response_bytes = cfg.response_bytes;
  scfg.app_idle_timeout = cfg.app_idle_timeout;
  scfg.cpu = cfg.server_cpu;
  scfg.tick_interval = cfg.tick_interval;
  scfg.sample_interval = cfg.sample_interval;
  scfg.is_attacker = is_bot_addr;
  ServerAgent server(sim, *server_host, scfg, secret, seeder.next(),
                     spec.wants_engine() ? engine : nullptr);
  server.start(cfg.duration);

  // Clients.
  std::vector<std::unique_ptr<ClientAgent>> clients;
  for (int i = 0; i < cfg.n_clients; ++i) {
    ClientAgentConfig ccfg;
    ccfg.server_addr = kServerAddr;
    ccfg.server_port = kServerPort;
    ccfg.request_rate = cfg.client_rate;
    ccfg.request_bytes = cfg.request_bytes;
    ccfg.response_bytes = cfg.response_bytes;
    ccfg.solve_puzzles = cfg.clients_solve;
    ccfg.engine = engine;
    ccfg.cpu = cfg.client_cpu;
    if (cfg.pow == PowKind::kMemoryBound) {
      ccfg.solve_ops_rate = cfg.client_cpu.mem_rate;
    }
    ccfg.max_pending_solves = cfg.client_max_pending_solves;
    ccfg.response_timeout = cfg.client_response_timeout;
    ccfg.tick_interval = cfg.tick_interval;
    ccfg.sample_interval = cfg.sample_interval;
    clients.push_back(std::make_unique<ClientAgent>(sim, *client_hosts[i], ccfg,
                                                    seeder.next()));
    clients.back()->start(cfg.duration);
  }

  // Bots.
  std::vector<std::unique_ptr<AttackerAgent>> bots;
  for (int i = 0; i < cfg.n_bots; ++i) {
    AttackerAgentConfig acfg;
    acfg.server_addr = kServerAddr;
    acfg.server_port = kServerPort;
    acfg.type = cfg.attack;
    acfg.rate = cfg.bot_rate;
    acfg.attack_start = cfg.attack_start;
    acfg.attack_end = cfg.attack_end;
    acfg.solve_puzzles = cfg.bots_solve;
    acfg.engine = engine;
    acfg.cpu = cfg.bot_cpu;
    if (cfg.pow == PowKind::kMemoryBound) {
      acfg.solve_ops_rate = cfg.bot_cpu.mem_rate;
    }
    acfg.max_pending_solves = cfg.bot_max_pending_solves;
    acfg.max_inflight = cfg.bot_max_inflight;
    acfg.tick_interval = cfg.tick_interval;
    acfg.sample_interval = cfg.sample_interval;
    bots.push_back(std::make_unique<AttackerAgent>(sim, *bot_hosts[i], acfg,
                                                   seeder.next()));
    bots.back()->start(cfg.duration);
  }

  sim.run_until(cfg.duration);

  ScenarioResult result;
  result.server = std::move(server.report());
  result.server.counters = server.listener().counters();
  result.server.policy = server.listener().policy_name();
  result.server.final_difficulty_m = server.listener().config().difficulty.m;
  for (auto& c : clients) result.clients.push_back(std::move(c->report()));
  for (auto& b : bots) result.bots.push_back(std::move(b->report()));
  result.events_processed = sim.events_processed();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

}  // namespace tcpz::sim
