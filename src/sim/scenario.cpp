#include "sim/scenario.hpp"

#include <utility>

#include "offense/spec.hpp"
#include "scenario/spec.hpp"

namespace tcpz::sim {

defense::PolicySpec ScenarioConfig::policy_spec() const {
  if (policy) return *policy;
  return defense::PolicySpec::from_legacy(defense, always_challenge,
                                          protection_hold,
                                          protection_engage_water, adaptive);
}

ScenarioConfig ScenarioConfig::scaled() const {
  // Same rates, shorter timeline. The attack window is kept shorter than the
  // listener's protection hold so the window measures the protected steady
  // state, as the bulk of the paper's 6-minute window does; --full restores
  // paper scale (including the periodic opportunistic openings).
  ScenarioConfig c = *this;
  c.duration = SimTime::seconds(120);
  c.attack_start = SimTime::seconds(30);
  c.attack_end = SimTime::seconds(80);
  return c;
}

scenario::Spec ScenarioConfig::to_spec() const {
  scenario::Spec s;
  s.seed = seed;
  // Reproduce the pre-unification engine's agent seeding draw-for-draw.
  s.seeding = scenario::SeedMode::kLegacySequential;
  s.duration = duration;
  s.attack_start = attack_start;
  s.attack_end = attack_end;
  s.net = {backbone_bps, server_link_bps, host_link_bps, link_delay};
  s.workload = {n_clients,     client_rate,
                request_bytes, response_bytes,
                clients_solve, client_cpu,
                client_max_pending_solves, client_response_timeout,
                /*model=*/std::nullopt};
  s.servers.count = 1;
  s.servers.policies = {policy_spec()};
  s.servers.difficulty = difficulty;
  s.servers.listen_backlog = listen_backlog;
  s.servers.accept_backlog = accept_backlog;
  s.servers.service_rate = service_rate;
  s.servers.n_workers = n_workers;
  s.servers.cpu = server_cpu;
  s.servers.app_idle_timeout = app_idle_timeout;
  s.servers.puzzle_expiry_ms = puzzle_expiry_ms;
  s.servers.sol_len = sol_len;
  scenario::AttackSpec a;
  a.count = n_bots;
  a.rate = bot_rate;
  a.strategy = offense::StrategySpec::from_type(attack, bots_solve);
  a.cpu = bot_cpu;
  a.max_pending_solves = bot_max_pending_solves;
  a.max_inflight = bot_max_inflight;
  s.attacks = {std::move(a)};
  s.pow = pow;
  s.tick_interval = tick_interval;
  s.sample_interval = sample_interval;
  return s;
}

double ScenarioResult::client_rx_mbps(std::size_t from, std::size_t to) const {
  double sum = 0;
  for (const auto& c : clients) sum += c.rx_mbps(from, to);
  return sum;
}

double ScenarioResult::mean_client_cpu(SimTime from, SimTime to) const {
  double sum = 0;
  for (const auto& c : clients) sum += c.cpu.mean_in(from, to);
  return clients.empty() ? 0.0 : sum / static_cast<double>(clients.size());
}

double ScenarioResult::mean_bot_cpu(SimTime from, SimTime to) const {
  double sum = 0;
  for (const auto& b : bots) sum += b.cpu.mean_in(from, to);
  return bots.empty() ? 0.0 : sum / static_cast<double>(bots.size());
}

double ScenarioResult::client_success_ratio() const {
  std::uint64_t attempts = 0, completions = 0;
  for (const auto& c : clients) {
    attempts += c.total_attempts;
    completions += c.total_completions;
  }
  return attempts ? static_cast<double>(completions) /
                        static_cast<double>(attempts)
                  : 0.0;
}

double ScenarioResult::bot_measured_rate(std::size_t from,
                                         std::size_t to) const {
  double sum = 0;
  for (const auto& b : bots) sum += b.attempts.mean_rate(from, to);
  return sum;
}

ScenarioResult run_scenario(const ScenarioConfig& cfg) {
  scenario::Result r = scenario::run(cfg.to_spec());
  ScenarioResult out;
  out.server = std::move(r.servers[0]);
  out.clients = std::move(r.clients);
  for (auto& g : r.groups) {
    for (auto& b : g.bots) out.bots.push_back(std::move(b));
  }
  out.events_processed = r.events_processed;
  out.wall_seconds = r.wall_seconds;
  return out;
}

}  // namespace tcpz::sim
