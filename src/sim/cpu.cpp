#include "sim/cpu.hpp"

#include <stdexcept>

namespace tcpz::sim {

CpuModel::CpuModel(CpuSpec spec) : spec_(spec) {
  if (spec_.hash_rate <= 0 || spec_.cores <= 0 || spec_.solver_lanes <= 0) {
    throw std::invalid_argument("CpuModel: positive spec required");
  }
  spec_.solver_lanes = std::min(spec_.solver_lanes, spec_.cores);
  lane_free_.assign(static_cast<std::size_t>(spec_.solver_lanes),
                    SimTime::zero());
}

SimTime CpuModel::submit_solve_at_rate(SimTime now, std::uint64_t ops,
                                       double ops_per_second) {
  if (ops_per_second <= 0) {
    throw std::invalid_argument("CpuModel: non-positive work rate");
  }
  std::size_t lane = 0;
  for (std::size_t i = 1; i < lane_free_.size(); ++i) {
    if (lane_free_[i] < lane_free_[lane]) lane = i;
  }
  const SimTime start = std::max(now, lane_free_[lane]);
  const SimTime end =
      start + SimTime::from_seconds(static_cast<double>(ops) / ops_per_second);
  lane_free_[lane] = end;
  recent_jobs_.emplace_back(start, end);
  return end;
}

SimTime CpuModel::earliest_lane_free() const {
  SimTime best = lane_free_[0];
  for (const SimTime t : lane_free_) best = std::min(best, t);
  return best;
}

int CpuModel::busy_lanes(SimTime now) const {
  int busy = 0;
  for (const SimTime t : lane_free_) {
    if (t > now) ++busy;
  }
  return busy;
}

int CpuModel::pending_jobs(SimTime now) {
  // Count jobs that have not completed yet; prune long-finished ones so the
  // vector stays small.
  int pending = 0;
  std::erase_if(recent_jobs_, [&](const auto& job) {
    return job.second + SimTime::seconds(30) < now;
  });
  for (const auto& [start, end] : recent_jobs_) {
    if (end > now) ++pending;
  }
  return pending;
}

double CpuModel::sample_utilization(SimTime now, SimTime window) {
  const SimTime from = now - window;
  double busy_ns = charged_ns_;
  charged_ns_ = 0.0;

  std::erase_if(recent_jobs_, [&](const auto& job) { return job.second <= from; });
  for (const auto& [start, end] : recent_jobs_) {
    const SimTime s = std::max(start, from);
    const SimTime e = std::min(end, now);
    if (e > s) busy_ns += static_cast<double>((e - s).nanos());
  }

  const double total_ns =
      static_cast<double>(window.nanos()) * static_cast<double>(spec_.cores);
  if (total_ns <= 0) return 0.0;
  return std::clamp(busy_ns / total_ns, 0.0, 1.0);
}

}  // namespace tcpz::sim
