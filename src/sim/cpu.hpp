// Host CPU model. Solving a puzzle costs hash_ops / hash_rate seconds of one
// core; the kernel patch solves inline (serially), so a host has a small
// number of "solver lanes" (1 for a stock client; attack tools may run
// more). Verification and per-packet costs are charged as instantaneous
// busy time. The utilisation gauge (Fig. 9) combines both.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace tcpz::sim {

struct CpuSpec {
  double hash_rate = 351'575.0;  ///< SHA-256 ops/s per core (paper's w_av/0.4)
  int cores = 4;
  int solver_lanes = 1;  ///< concurrent in-kernel puzzle searches
  /// Random memory accesses/s per core, for memory-bound proof-of-work
  /// (§7's Abadi et al. alternative). Memory latencies vary far less across
  /// device classes than compute throughput does — that is the whole point.
  double mem_rate = 120e6;
};

class CpuModel {
 public:
  explicit CpuModel(CpuSpec spec);

  [[nodiscard]] const CpuSpec& spec() const { return spec_; }

  [[nodiscard]] SimTime solve_duration(std::uint64_t hash_ops) const {
    return SimTime::from_seconds(static_cast<double>(hash_ops) / spec_.hash_rate);
  }

  /// Schedules a solve job on the earliest-free lane; returns its completion
  /// time (>= now + duration when queued behind earlier jobs).
  [[nodiscard]] SimTime submit_solve(SimTime now, std::uint64_t hash_ops) {
    return submit_solve_at_rate(now, hash_ops, spec_.hash_rate);
  }

  /// Same, with an explicit work-unit rate (memory-bound puzzles charge
  /// against mem_rate instead of hash_rate).
  [[nodiscard]] SimTime submit_solve_at_rate(SimTime now, std::uint64_t ops,
                                             double ops_per_second);

  /// Number of lanes still busy at `now`.
  [[nodiscard]] int busy_lanes(SimTime now) const;

  /// Time at which the least-loaded solver lane becomes free (i.e. when the
  /// next submitted job would start).
  [[nodiscard]] SimTime earliest_lane_free() const;

  /// Total queued solve work not yet finished at `now`, in jobs — the agents
  /// cap this to model connect() backpressure.
  [[nodiscard]] int pending_jobs(SimTime now);

  /// Instantaneous work (verification, per-packet processing): accumulated
  /// and drained by the utilisation sampler.
  void charge_hash_ops(std::uint64_t ops) {
    charged_ns_ += static_cast<double>(ops) / spec_.hash_rate * 1e9;
  }
  void charge_seconds(double sec) { charged_ns_ += sec * 1e9; }

  /// Fraction of total CPU busy over the window ending at `now`: solver
  /// lanes occupied plus charged instantaneous work. Drains the charge
  /// accumulator; call on a fixed cadence.
  [[nodiscard]] double sample_utilization(SimTime now, SimTime window);

 private:
  CpuSpec spec_;
  std::vector<SimTime> lane_free_;
  /// (start, end) of jobs whose lane time overlaps the current window; the
  /// sampler prunes finished entries.
  std::vector<std::pair<SimTime, SimTime>> recent_jobs_;
  double charged_ns_ = 0.0;
};

}  // namespace tcpz::sim
