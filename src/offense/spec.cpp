#include "offense/spec.hpp"

namespace tcpz::offense {

const char* to_string(StrategySpec::Kind kind) {
  switch (kind) {
    case StrategySpec::Kind::kSynFlood: return "syn-flood";
    case StrategySpec::Kind::kConnFlood: return "conn-flood";
    case StrategySpec::Kind::kBogusSolutionFlood:
      return "bogus-solution-flood";
    case StrategySpec::Kind::kPulsed: return "pulsed";
    case StrategySpec::Kind::kGameAdaptive: return "game-adaptive";
    case StrategySpec::Kind::kMultiTarget: return "multi-target";
  }
  return "unknown";
}

StrategySpec StrategySpec::from_type(sim::AttackType type, bool solve_puzzles) {
  switch (type) {
    case sim::AttackType::kSynFlood: return syn_flood();
    case sim::AttackType::kConnFlood: return conn_flood(solve_puzzles);
    case sim::AttackType::kBogusSolutionFlood: return bogus_solution_flood();
  }
  return conn_flood(solve_puzzles);
}

std::unique_ptr<AttackStrategy> StrategySpec::build() const {
  switch (kind) {
    case Kind::kSynFlood: return std::make_unique<SynFloodStrategy>();
    case Kind::kConnFlood:
      return std::make_unique<ConnFloodStrategy>(patched);
    case Kind::kBogusSolutionFlood:
      return std::make_unique<BogusSolutionFloodStrategy>();
    case Kind::kPulsed:
      return std::make_unique<PulsedStrategy>(
          PulsedConfig{pulse_period, pulse_duty, pulse_spoofed, patched});
    case Kind::kGameAdaptive:
      return std::make_unique<GameAdaptiveStrategy>(
          GameAdaptiveConfig{valuation, mu, assumed, slot_rate});
    case Kind::kMultiTarget:
      return std::make_unique<MultiTargetStrategy>(
          MultiTargetConfig{patched, spread_spoofed});
  }
  return std::make_unique<ConnFloodStrategy>(patched);
}

}  // namespace tcpz::offense
