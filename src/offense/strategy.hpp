// Pluggable attack strategies for the botnet agent — the offense-side mirror
// of the defense::DefensePolicy layer.
//
// The paper's evaluation is a matrix of attacker behaviours × defenses: SYN
// floods, connection floods (patched and legacy kernels), bogus-solution
// floods (§7), rate/botnet sweeps (Figs. 13-14) and partial adoption
// (Fig. 15). sim::AttackerAgent used to hard-code the behaviours as a
// three-value AttackType enum branched through its packet path; this layer
// turns each behaviour into an AttackStrategy the agent consults at its
// decision points:
//
//   on_slot      — at every emission slot of the constant-rate flood loop:
//                  send a spoofed SYN, launch a real connection attempt
//                  (patched or legacy stack, against which target), or idle
//                  (pulsed/shrew duty cycles);
//   on_rx        — how to treat an incoming segment before the connector
//                  sees it: forward it, ignore it (SYN-flood backscatter),
//                  or answer a challenge SYN-ACK with a garbage solution
//                  (§7 solution floods);
//   on_challenge — what to do when the patched connector asks for a solve:
//                  run the in-kernel solver or abandon the attempt;
//   on_outcome   — notification of attempt verdicts (established / RST /
//                  timeout / solver refusal), the feedback channel adaptive
//                  strategies re-plan from.
//
// The agent keeps owning sockets, timers, the CPU model, metric accounting
// and the wire formatting — a strategy decides, never mutates. Strategies
// see the bot only through the read-only BotView snapshot; the one mutable
// handle is the bot's deterministic RNG stream, because strategy draws are
// part of the reproducible trace.
//
// Concrete strategies live in offense/strategies.hpp; declarative
// construction (and the AttackType compatibility mapping) in
// offense/spec.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "puzzle/types.hpp"
#include "sim/cpu.hpp"
#include "tcp/segment.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace tcpz::offense {

/// Read-only snapshot of the bot state a strategy may consult. Built fresh
/// by the agent at every decision point.
struct BotView {
  SimTime now;
  SimTime attack_start;
  SimTime attack_end;
  std::size_t inflight = 0;      ///< attempts currently holding a tool slot
  int max_inflight = 0;          ///< the tool's concurrency cap
  int pending_solves = 0;        ///< solver jobs queued or running
  SimTime attempt_timeout;       ///< when the tool abandons an attempt
  bool has_engine = false;       ///< a PuzzleEngine is wired (solving possible)
  std::size_t n_targets = 1;     ///< servers this bot can aim at
  const sim::CpuModel* cpu = nullptr;  ///< solver-lane occupancy, hash rate
  /// The bot's deterministic stream. Strategy draws are part of the trace:
  /// a strategy that consumes no randomness perturbs nothing.
  Rng* rng = nullptr;
};

/// What to do with one emission slot of the flood loop.
enum class SlotAction : std::uint8_t {
  kSpoofedSyn,  ///< one SYN from a random spoofed source (hping3-style)
  kConnect,     ///< launch a real connection attempt (nping-style)
  kIdle,        ///< let the slot pass (off phase of a pulsed attack)
};

struct SlotDecision {
  SlotAction action = SlotAction::kConnect;
  /// kConnect only: patched stack (solves challenges through the CPU model)
  /// or legacy stack (plain-ACKs them).
  bool patched = true;
  /// Which target to aim at (index into the agent's target list).
  std::size_t target = 0;
};

/// How to treat a received segment, decided before the connector sees it.
enum class RxAction : std::uint8_t {
  kForward,   ///< hand to the attempt's connector state machine
  kBogusAck,  ///< answer a challenge SYN-ACK with garbage solution bytes
  kIgnore,    ///< drop on the floor (spoofed-source backscatter)
};

/// What to do when the patched connector asks the host to run the solver.
enum class ChallengeAction : std::uint8_t {
  kSolve,    ///< solve, subject to the tool's serial-solver admission
  kAbandon,  ///< refuse; the attempt holds its slot until the tool times out
};

/// Attempt verdicts fed back to the strategy.
enum class Outcome : std::uint8_t {
  kEstablished,   ///< handshake completed (from the bot's view)
  kReset,         ///< RST received
  kTimeout,       ///< the tool recycled a stale attempt
  kSolveRefused,  ///< solver backlogged (or strategy abandoned the solve)
};

class AttackStrategy {
 public:
  virtual ~AttackStrategy() = default;

  /// Stable identifier, threaded into scenario reports and bench JSON.
  [[nodiscard]] virtual const char* name() const = 0;

  [[nodiscard]] virtual SlotDecision on_slot(const BotView& v) = 0;

  [[nodiscard]] virtual RxAction on_rx(const BotView& v,
                                       const tcp::Segment& seg) {
    (void)v;
    (void)seg;
    return RxAction::kForward;
  }

  [[nodiscard]] virtual ChallengeAction on_challenge(
      const BotView& v, const puzzle::Challenge& challenge) {
    (void)v;
    (void)challenge;
    return ChallengeAction::kSolve;
  }

  virtual void on_outcome(const BotView& v, Outcome outcome) {
    (void)v;
    (void)outcome;
  }
};

/// How configs carry a strategy: a factory, so every bot gets its own
/// (stateful) instance even when configs are copied around.
using StrategyFactory = std::function<std::unique_ptr<AttackStrategy>()>;

}  // namespace tcpz::offense
