// Concrete attack strategies.
//
// The legacy three (SYN flood, connection flood, bogus-solution flood) are
// trace-exact ports of the behaviours sim::AttackerAgent used to hard-code:
// they consume no randomness of their own and decide exactly where the old
// branches did, so fixed-seed scenarios reproduce byte-for-byte.
//
// The new ones open the attacker models the paper only gestures at:
//  * PulsedStrategy      — shrew-style on/off duty cycles aimed at the
//                          opportunistic latch hysteresis (burst while
//                          protection is down, go quiet until it disengages);
//  * GameAdaptiveStrategy— a rational attacker that observes the minted
//                          difficulty and re-plans its solve-vs-spray split
//                          from the §3-§4 game's best response;
//  * MultiTargetStrategy — fleet-aware: spreads attempts across every
//                          addressable replica instead of concentrating on
//                          one (the scenario engine's multi-server topology).
// Mixed heterogeneous botnets are not a strategy: the scenario engine takes
// a vector of attack groups, each with its own strategy and CpuSpec.
#pragma once

#include "offense/strategy.hpp"

namespace tcpz::offense {

/// Spoofed-source SYNs at the configured rate; all backscatter ignored.
class SynFloodStrategy final : public AttackStrategy {
 public:
  [[nodiscard]] const char* name() const override { return "syn-flood"; }
  [[nodiscard]] SlotDecision on_slot(const BotView&) override {
    return {SlotAction::kSpoofedSyn, false, 0};
  }
  [[nodiscard]] RxAction on_rx(const BotView&, const tcp::Segment&) override {
    return RxAction::kIgnore;
  }
};

/// Real three-way handshakes. Patched bots solve challenges (serially,
/// through the CPU model); legacy bots plain-ACK them and believe they
/// connected.
class ConnFloodStrategy final : public AttackStrategy {
 public:
  explicit ConnFloodStrategy(bool patched) : patched_(patched) {}
  [[nodiscard]] const char* name() const override {
    return patched_ ? "conn-flood" : "conn-flood-legacy";
  }
  [[nodiscard]] SlotDecision on_slot(const BotView&) override {
    return {SlotAction::kConnect, patched_, 0};
  }

 private:
  bool patched_;
};

/// Completes the exchange but answers challenges with garbage bytes
/// instantly, forcing the server to spend verification work (§7).
class BogusSolutionFloodStrategy final : public AttackStrategy {
 public:
  [[nodiscard]] const char* name() const override {
    return "bogus-solution-flood";
  }
  [[nodiscard]] SlotDecision on_slot(const BotView&) override {
    // Looks like a legacy stack to the connector; the agent intercepts the
    // challenge SYN-ACK itself (on_rx) and bogus-ACKs it.
    return {SlotAction::kConnect, false, 0};
  }
  [[nodiscard]] RxAction on_rx(const BotView&,
                               const tcp::Segment& seg) override {
    return seg.is_syn_ack() && seg.options.challenge ? RxAction::kBogusAck
                                                     : RxAction::kForward;
  }
};

struct PulsedConfig {
  SimTime period = SimTime::seconds(20);  ///< full on+off cycle length
  double duty = 0.25;                     ///< fraction of the period spent on
  bool spoofed = false;  ///< burst spoofed SYNs instead of connects
  bool patched = true;   ///< connects: patched or legacy stack
};

/// Shrew-style duty-cycled attack. The phase is anchored at attack_start, so
/// a burst hits, latches the opportunistic protection, and the off phase is
/// the bet that the hold timer expires (protection disengages) before the
/// next burst — the classic way to ride control-loop hysteresis.
class PulsedStrategy final : public AttackStrategy {
 public:
  explicit PulsedStrategy(PulsedConfig cfg) : cfg_(cfg) {}
  [[nodiscard]] const char* name() const override { return "pulsed"; }
  [[nodiscard]] SlotDecision on_slot(const BotView& v) override;

 private:
  PulsedConfig cfg_;
};

struct GameAdaptiveConfig {
  /// The attacker's per-connection valuation w_a, in expected hash
  /// operations it is willing to pay (the §3 follower's utility currency).
  double valuation = 1.5e5;
  /// Believed server service rate µ for the congestion term of Eq. (4).
  double mu = 1100.0;
  /// Price assumed until the first challenge is observed.
  puzzle::Difficulty assumed{2, 17};
  /// The bot's emission rate (slots per second); set by the scenario engine
  /// from the attack spec so the best-response rate converts to a per-slot
  /// solve probability.
  double slot_rate = 500.0;
};

/// A rational attacker playing the paper's own game: it treats the observed
/// puzzle difficulty as the posted price ℓ(p) and splits each slot between
/// *solving* (a patched connection attempt, paying the price) and *spraying*
/// (a free spoofed SYN) so that its solving rate tracks the best response
/// x*(ℓ) = argmax w log(1+x) − ℓx − 1/(µ−x) of Eq. (4), recomputed through
/// game::solve_equilibrium whenever the minted difficulty changes (e.g. when
/// the §7 adaptive defense retunes m). When the price exceeds the valuation
/// it abandons solving entirely but keeps a trickle of probe connects alive
/// so a later price decrease is observed and triggers a re-plan.
class GameAdaptiveStrategy final : public AttackStrategy {
 public:
  explicit GameAdaptiveStrategy(GameAdaptiveConfig cfg);
  [[nodiscard]] const char* name() const override { return "game-adaptive"; }
  [[nodiscard]] SlotDecision on_slot(const BotView& v) override;
  [[nodiscard]] ChallengeAction on_challenge(
      const BotView& v, const puzzle::Challenge& challenge) override;
  void on_outcome(const BotView& v, Outcome outcome) override;

  /// The best-response solving rate x*(ℓ) currently planned (attempts/s).
  [[nodiscard]] double planned_solve_rate() const { return solve_rate_; }
  /// The price ℓ(p) the plan responds to (expected hashes per connection;
  /// 0 once the attacker has inferred the server posts no price).
  [[nodiscard]] double observed_price() const { return price_; }
  [[nodiscard]] std::uint64_t replans() const { return replans_; }

 private:
  void replan(puzzle::Difficulty diff);

  /// Consecutive unchallenged establishments before the attacker concludes
  /// the server is undefended (price 0) and takes every slot.
  static constexpr int kFreeRideStreak = 8;
  /// When fully priced out, the fraction of slots spent on patched probe
  /// connects so a later difficulty decrease is still observed (the probes
  /// are abandoned at the challenge, so they cost no solver time).
  static constexpr double kProbeProbability = 0.02;

  GameAdaptiveConfig cfg_;
  puzzle::Difficulty observed_;
  double price_ = 0.0;
  double solve_rate_ = 0.0;
  double solve_prob_ = 0.0;
  int unchallenged_streak_ = 0;
  std::uint64_t replans_ = 0;
};

struct MultiTargetConfig {
  bool patched = true;   ///< connects: patched or legacy stack
  bool spoofed = false;  ///< spread spoofed SYNs instead of connects
};

/// Fleet-aware flood: round-robins attempts across every addressable
/// replica, so no single server sees the full rate (and per-server
/// protection latches see 1/n of the flood each).
class MultiTargetStrategy final : public AttackStrategy {
 public:
  explicit MultiTargetStrategy(MultiTargetConfig cfg) : cfg_(cfg) {}
  [[nodiscard]] const char* name() const override { return "multi-target"; }
  [[nodiscard]] SlotDecision on_slot(const BotView& v) override {
    const std::size_t target = next_++ % (v.n_targets ? v.n_targets : 1);
    return {cfg_.spoofed ? SlotAction::kSpoofedSyn : SlotAction::kConnect,
            cfg_.patched, target};
  }

 private:
  MultiTargetConfig cfg_;
  std::size_t next_ = 0;
};

}  // namespace tcpz::offense
