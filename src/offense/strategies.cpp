#include "offense/strategies.hpp"

#include <algorithm>

#include "game/model.hpp"

namespace tcpz::offense {

SlotDecision PulsedStrategy::on_slot(const BotView& v) {
  SlotDecision on{cfg_.spoofed ? SlotAction::kSpoofedSyn : SlotAction::kConnect,
                  cfg_.patched, 0};
  if (cfg_.period <= SimTime::zero() || cfg_.duty >= 1.0) return on;
  if (cfg_.duty <= 0.0) return {SlotAction::kIdle, cfg_.patched, 0};
  const std::int64_t period = cfg_.period.nanos();
  const std::int64_t phase = (v.now - v.attack_start).nanos() % period;
  const auto on_ns =
      static_cast<std::int64_t>(cfg_.duty * static_cast<double>(period));
  if (phase < on_ns) return on;
  return {SlotAction::kIdle, cfg_.patched, 0};
}

GameAdaptiveStrategy::GameAdaptiveStrategy(GameAdaptiveConfig cfg)
    : cfg_(cfg), observed_(cfg.assumed) {
  replan(observed_);
  replans_ = 0;  // the initial plan from the assumed price is not a re-plan
}

void GameAdaptiveStrategy::replan(puzzle::Difficulty diff) {
  observed_ = diff;
  price_ = diff.expected_solve_hashes();
  // The attacker is one follower of the §3 game; its best response to the
  // posted price is the single-user equilibrium rate.
  game::GameConfig g;
  g.valuations = {cfg_.valuation};
  g.mu = cfg_.mu;
  const game::Equilibrium eq = game::solve_equilibrium(g, price_);
  solve_rate_ = eq.exists ? eq.total_rate : 0.0;
  solve_prob_ = cfg_.slot_rate > 0.0
                    ? std::clamp(solve_rate_ / cfg_.slot_rate, 0.0, 1.0)
                    : 0.0;
  ++replans_;
}

SlotDecision GameAdaptiveStrategy::on_slot(const BotView& v) {
  if (v.rng != nullptr && v.rng->bernoulli(solve_prob_)) {
    return {SlotAction::kConnect, true, 0};
  }
  // Fully priced out: spraying alone would make the state absorbing — no
  // patched connect, no challenge, no chance to ever see the price drop
  // (e.g. the §7 adaptive loop easing off after the flood subsides). A
  // trickle of probe connects keeps observing the posted difficulty; while
  // the price stays unpayable, on_challenge abandons them for free.
  if (solve_rate_ <= 0.0 && v.rng != nullptr &&
      v.rng->bernoulli(kProbeProbability)) {
    return {SlotAction::kConnect, true, 0};
  }
  // Spray: the price is not worth paying for this slot; a spoofed SYN costs
  // nothing and still pressures the listen queue.
  return {SlotAction::kSpoofedSyn, false, 0};
}

ChallengeAction GameAdaptiveStrategy::on_challenge(
    const BotView&, const puzzle::Challenge& challenge) {
  // Any challenge means a price is posted: a free-ride inference (price 0)
  // is invalidated, and a difficulty change triggers a re-plan.
  const bool free_riding = price_ == 0.0;
  unchallenged_streak_ = 0;
  if (challenge.diff != observed_ || free_riding) replan(challenge.diff);
  // A price above the valuation makes solving a losing trade; abandon the
  // attempt instead of queueing a search the plan says not to pay for.
  return solve_rate_ > 0.0 ? ChallengeAction::kSolve
                           : ChallengeAction::kAbandon;
}

void GameAdaptiveStrategy::on_outcome(const BotView&, Outcome outcome) {
  if (outcome != Outcome::kEstablished) return;
  // Establishments that were never challenged accumulate evidence that the
  // server posts no price; past the threshold the best response is to take
  // every slot (a challenged establishment cannot build a streak — the
  // challenge reset it moments earlier).
  if (price_ == 0.0) return;
  if (++unchallenged_streak_ >= kFreeRideStreak) {
    price_ = 0.0;
    solve_rate_ = cfg_.slot_rate;
    solve_prob_ = 1.0;
    ++replans_;
  }
}

}  // namespace tcpz::offense
