// Declarative, value-type description of an attack strategy — what scenario
// specs, attack-group lists and result files carry around; the offense-side
// mirror of defense::PolicySpec. A spec is copyable and comparable where a
// live strategy (stateful, non-copyable) is not; build() turns it into a
// fresh AttackStrategy instance.
//
// The legacy sim::AttackType enum maps onto specs via from_type(): the
// three-value enum is now nothing more than a name for three canonical
// specs.
#pragma once

#include <memory>

#include "offense/strategies.hpp"
#include "sim/attack_type.hpp"

namespace tcpz::offense {

struct StrategySpec {
  enum class Kind : std::uint8_t {
    kSynFlood,            ///< spoofed SYNs, never completes a handshake
    kConnFlood,           ///< real handshakes (patched or legacy stack)
    kBogusSolutionFlood,  ///< garbage solutions, burns verification CPU (§7)
    kPulsed,              ///< shrew-style on/off duty cycle
    kGameAdaptive,        ///< best-response solve-vs-spray split (§3-§4 game)
    kMultiTarget,         ///< spreads attempts across every replica
  };

  Kind kind = Kind::kConnFlood;

  /// Patched kernel? Patched bots solve challenges; legacy bots plain-ACK
  /// them (kConnFlood, kPulsed, kMultiTarget).
  bool patched = true;

  // kPulsed knobs (semantics documented on PulsedConfig).
  SimTime pulse_period = SimTime::seconds(20);
  double pulse_duty = 0.25;
  bool pulse_spoofed = false;

  // kGameAdaptive knobs (semantics documented on GameAdaptiveConfig).
  double valuation = 1.5e5;
  double mu = 1100.0;
  puzzle::Difficulty assumed{2, 17};
  /// Filled by the scenario engine from the attack group's emission rate.
  double slot_rate = 500.0;

  // kMultiTarget knobs.
  bool spread_spoofed = false;

  bool operator==(const StrategySpec&) const = default;

  // -- canonical specs -------------------------------------------------------
  [[nodiscard]] static StrategySpec of(Kind k) {
    StrategySpec s;
    s.kind = k;
    return s;
  }
  [[nodiscard]] static StrategySpec syn_flood() { return of(Kind::kSynFlood); }
  [[nodiscard]] static StrategySpec conn_flood(bool patched = true) {
    StrategySpec s = of(Kind::kConnFlood);
    s.patched = patched;
    return s;
  }
  [[nodiscard]] static StrategySpec bogus_solution_flood() {
    return of(Kind::kBogusSolutionFlood);
  }
  [[nodiscard]] static StrategySpec pulsed(SimTime period, double duty,
                                           bool spoofed = false,
                                           bool patched = true) {
    StrategySpec s = of(Kind::kPulsed);
    s.pulse_period = period;
    s.pulse_duty = duty;
    s.pulse_spoofed = spoofed;
    s.patched = patched;
    return s;
  }
  [[nodiscard]] static StrategySpec game_adaptive(double valuation,
                                                  double mu = 1100.0) {
    StrategySpec s = of(Kind::kGameAdaptive);
    s.valuation = valuation;
    s.mu = mu;
    return s;
  }
  [[nodiscard]] static StrategySpec multi_target(bool patched = true) {
    StrategySpec s = of(Kind::kMultiTarget);
    s.patched = patched;
    return s;
  }

  /// The AttackType compatibility shim: the enum names one of the three
  /// canonical specs (solve_puzzles is only meaningful for kConnFlood).
  [[nodiscard]] static StrategySpec from_type(sim::AttackType type,
                                              bool solve_puzzles = true);

  /// Builds a fresh strategy instance.
  [[nodiscard]] std::unique_ptr<AttackStrategy> build() const;

  /// Factory form, for AttackerAgentConfig::strategy.
  [[nodiscard]] StrategyFactory factory() const {
    return [spec = *this] { return spec.build(); };
  }
};

[[nodiscard]] const char* to_string(StrategySpec::Kind kind);

}  // namespace tcpz::offense
