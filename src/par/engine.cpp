#include "par/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "par/mailbox.hpp"
#include "scenario/engine.hpp"

namespace tcpz::par {

using scenario::Spec;

ShardPlan plan_shards(const Spec& spec, int n_shards) {
  ShardPlan plan;
  const int n = n_shards;
  if (spec.fleet.enabled) {
    // Replicas share a balancer, secret directory and replay cache — one
    // shard owns the whole service edge.
    plan.server_owner.assign(static_cast<std::size_t>(spec.servers.count), 0);
    plan.addr_owner[scenario::addrs::kServerAddr] = 0;
  } else {
    for (int i = 0; i < spec.servers.count; ++i) {
      const int owner = i % n;
      plan.server_owner.push_back(owner);
      plan.addr_owner[scenario::addrs::server(i)] = owner;
    }
  }
  const int n_clients = scenario::n_discrete_clients(spec);
  for (int i = 0; i < n_clients; ++i) {
    const int owner = i % n;
    plan.client_owner.push_back(owner);
    plan.addr_owner[scenario::addrs::client(i)] = owner;
  }
  int bot = 0;
  for (const scenario::AttackSpec& g : spec.attacks) {
    for (int i = 0; i < g.count; ++i, ++bot) {
      const int owner = bot % n;
      plan.bot_owner.push_back(owner);
      plan.addr_owner[scenario::addrs::bot(bot)] = owner;
    }
  }
  return plan;
}

namespace {

/// Per-shard worker state, cache-line padded: result collection and error
/// slots are written by different threads and must never share a line.
struct alignas(64) ShardSlot {
  scenario::Result result;
  std::shared_ptr<obs::Recorder> recorder;
  std::exception_ptr error;
};

}  // namespace

scenario::Result run(const Spec& spec, const ParSpec& par) {
  if (par.shards < 1) {
    throw std::invalid_argument("par: shards must be >= 1");
  }
  if (par.shards == 1) return scenario::run(spec);
  if (spec.seeding != scenario::SeedMode::kDerivedStreams) {
    throw std::invalid_argument(
        "par: sharding requires SeedMode::kDerivedStreams — legacy "
        "sequential seeding depends on global construction order");
  }

  const auto wall_start = std::chrono::steady_clock::now();
  const int n = par.shards;

  // The conservative horizon: every link in the scenario topology has
  // propagation delay spec.net.link_delay, and every cross-shard segment is
  // captured at least one such hop before its destination (net/portal.hpp),
  // so shards may run L ahead of each other risk-free.
  SimTime lookahead = spec.net.link_delay;
  if (lookahead <= SimTime::zero()) {
    throw std::invalid_argument(
        "par: net.link_delay must be positive — it is the conservative "
        "lookahead bound");
  }
  if (par.lookahead > SimTime::zero()) {
    if (par.lookahead > lookahead) {
      throw std::invalid_argument(
          "par: lookahead override exceeds the topology's minimum "
          "cross-shard link delay");
    }
    lookahead = par.lookahead;
  }

  const ShardPlan plan = plan_shards(spec, n);
  std::vector<Mailbox> boxes(static_cast<std::size_t>(n) *
                             static_cast<std::size_t>(n));
  SpinBarrier barrier(n);
  std::vector<ShardSlot> slots(static_cast<std::size_t>(n));

  const auto worker = [&](int s) {
    ShardSlot& slot = slots[static_cast<std::size_t>(s)];
    // Per-shard flight recorder, installed in this thread's slot — the
    // single-writer contract (obs/trace.hpp): this thread is the ring's
    // only writer; the merge below runs after join.
    std::optional<obs::ScopedRecorder> scoped;
    if (spec.obs.trace) {
      slot.recorder = std::make_shared<obs::Recorder>(spec.obs.ring_capacity,
                                                      spec.obs.categories);
      scoped.emplace(slot.recorder.get());
    }

    // The engine keeps a pointer to the env for its whole lifetime (the
    // portal sinks call env.send mid-round), so it must outlive `eng`.
    scenario::ShardEnv env;
    std::unique_ptr<scenario::Engine> eng;
    try {
      env.shard = s;
      env.n_shards = n;
      env.server_owner = plan.server_owner;
      env.client_owner = plan.client_owner;
      env.bot_owner = plan.bot_owner;
      env.send = [&boxes, &plan, s, n](SimTime at, const tcp::Segment& seg) {
        // Portals only ever see destinations with installed routes, and
        // routes exist exactly for planned remote addresses.
        const int dst = plan.addr_owner.at(seg.daddr);
        boxes[static_cast<std::size_t>(s) * static_cast<std::size_t>(n) +
              static_cast<std::size_t>(dst)]
            .msgs.push_back({at, seg});
      };
      eng = std::make_unique<scenario::Engine>(spec, &env);
    } catch (...) {
      slot.error = std::current_exception();
    }

    // Bounded-lookahead rounds. Every shard executes the same round count,
    // so the barrier protocol stays balanced even if this shard failed —
    // a dead shard just drains its inboxes into the void.
    bool sense = false;
    SimTime now = SimTime::zero();
    while (now < spec.duration) {
      const SimTime horizon = std::min(spec.duration, now + lookahead);
      if (eng) {
        try {
          eng->run_until(horizon);  // write phase: portals fill outboxes
        } catch (...) {
          slot.error = std::current_exception();
          eng.reset();
        }
      }
      barrier.arrive_and_wait(sense);
      // Drain phase: fixed source order makes event sequence numbers — and
      // therefore tie-breaking among same-timestamp events — deterministic.
      for (int src = 0; src < n; ++src) {
        auto& inbox = boxes[static_cast<std::size_t>(src) *
                                static_cast<std::size_t>(n) +
                            static_cast<std::size_t>(s)]
                          .msgs;
        if (eng) {
          try {
            for (const ShardMsg& msg : inbox) eng->inject(msg.at, msg.seg);
          } catch (...) {
            slot.error = std::current_exception();
            eng.reset();
          }
        }
        inbox.clear();
      }
      barrier.arrive_and_wait(sense);
      now = horizon;
    }
    if (eng) {
      try {
        slot.result = eng->collect();
      } catch (...) {
        slot.error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) threads.emplace_back(worker, s);
  for (std::thread& t : threads) t.join();
  for (const ShardSlot& slot : slots) {
    if (slot.error) std::rethrow_exception(slot.error);
  }

  // Merge: each global slot comes from its owning shard; scalar fields live
  // where their owner does (the fleet control plane and the fluid
  // populations follow server 0's shard).
  std::uint64_t total_events = 0;
  for (const ShardSlot& slot : slots) {
    total_events += slot.result.events_processed;
  }
  const int infra = plan.server_owner[0];
  scenario::Result merged =
      std::move(slots[static_cast<std::size_t>(infra)].result);
  merged.cluster = {};
  for (int i = 0; i < spec.servers.count; ++i) {
    const int owner = plan.server_owner[static_cast<std::size_t>(i)];
    if (owner != infra) {
      merged.servers[static_cast<std::size_t>(i)] = std::move(
          slots[static_cast<std::size_t>(owner)]
              .result.servers[static_cast<std::size_t>(i)]);
    }
    merged.cluster += merged.servers[static_cast<std::size_t>(i)].counters;
  }
  for (std::size_t i = 0; i < plan.client_owner.size(); ++i) {
    const int owner = plan.client_owner[i];
    if (owner != infra) {
      merged.clients[i] =
          std::move(slots[static_cast<std::size_t>(owner)].result.clients[i]);
    }
  }
  {
    std::size_t bot = 0;
    for (std::size_t g = 0; g < spec.attacks.size(); ++g) {
      for (int i = 0; i < spec.attacks[g].count; ++i, ++bot) {
        const int owner = plan.bot_owner[bot];
        if (owner != infra) {
          merged.groups[g].bots[static_cast<std::size_t>(i)] = std::move(
              slots[static_cast<std::size_t>(owner)]
                  .result.groups[g]
                  .bots[static_cast<std::size_t>(i)]);
        }
      }
    }
  }
  merged.events_processed = total_events;

  if (spec.obs.trace) {
    // Merge the per-shard rings into one recorder, ordered by sim time.
    // stable_sort on the shard-order concatenation gives a deterministic
    // total order: ties resolve by shard index, then per-shard ring order.
    std::vector<obs::TraceEvent> all;
    std::size_t total = 0;
    for (const ShardSlot& slot : slots) total += slot.recorder->size();
    all.reserve(total);
    for (const ShardSlot& slot : slots) {
      slot.recorder->for_each(
          [&all](const obs::TraceEvent& ev) { all.push_back(ev); });
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
                       return a.t < b.t;
                     });
    auto rec = std::make_shared<obs::Recorder>(spec.obs.ring_capacity,
                                               spec.obs.categories);
    for (const obs::TraceEvent& ev : all) rec->append(ev);
    merged.tracks = scenario::track_names(spec);
    if (!spec.obs.chrome_trace_path.empty()) {
      obs::write_chrome_trace(*rec, merged.tracks,
                              spec.obs.chrome_trace_path);
    }
    if (!spec.obs.flows_path.empty()) {
      if (std::FILE* f = std::fopen(spec.obs.flows_path.c_str(), "w")) {
        obs::write_flows(f, obs::reconstruct_flows(*rec));
        std::fclose(f);
      }
    }
    merged.trace = std::move(rec);
  }

  merged.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return merged;
}

}  // namespace tcpz::par
