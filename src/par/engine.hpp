// Sharded multi-core simulation driver (the tentpole of the parallel
// engine): partitions a scenario's agents across N worker shards, each
// owning a private net::Simulator + scenario::Engine, and advances them in
// conservative bounded-lookahead rounds. Each shard runs freely up to
// `now + L` where L is the minimum cross-shard link delay (a property of
// the topology — every cross-agent interaction flows through at least one
// such hop); cross-shard segments are exchanged via SPSC mailboxes at a
// two-phase round barrier and re-injected with their analytic arrival
// times. See DESIGN.md, "Sharded engine", for the lookahead derivation,
// the determinism contract and the mailbox memory order.
//
// Determinism: a fixed (seed, shards) pair always produces the same result
// and trace digest — mailboxes are drained in fixed source-shard order, so
// event sequence numbers are assigned identically on every repeat. With
// shards == 1 the run is byte-identical to scenario::run (it is the same
// code path). Across different shard counts results are statistically
// equivalent, not bitwise equal: SeedMode::kDerivedStreams keeps every
// agent's RNG stream shard-count-independent, but cross-shard queueing is
// approximated (each shard serializes remote egress on its own portal
// link), so packet interleavings differ.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "scenario/spec.hpp"
#include "util/time.hpp"

namespace tcpz::par {

struct ParSpec {
  int shards = 1;
  /// Synchronization horizon override; zero derives it from the topology
  /// (the minimum cross-shard link delay). A smaller value only adds
  /// barriers; a larger one would break causality, so it is rejected.
  SimTime lookahead = SimTime::zero();
};

/// The agent -> owner-shard assignment par::run uses (exposed for tests).
/// Fleet replicas (plus balancer, directory, fluid populations) stay on
/// shard 0 — they share in-memory state; everything else round-robins so
/// bot/client work spreads evenly.
struct ShardPlan {
  std::vector<int> server_owner;
  std::vector<int> client_owner;
  std::vector<int> bot_owner;  ///< flat, group order
  /// Model address -> owner (servers/VIP, clients, bots) for mail routing.
  std::unordered_map<std::uint32_t, int> addr_owner;
};

[[nodiscard]] ShardPlan plan_shards(const scenario::Spec& spec, int n_shards);

/// Runs `spec` on `par.shards` worker threads. shards == 1 delegates to
/// scenario::run (byte-identical single-thread semantics). Requires
/// SeedMode::kDerivedStreams and a positive lookahead for shards > 1.
[[nodiscard]] scenario::Result run(const scenario::Spec& spec,
                                   const ParSpec& par);

}  // namespace tcpz::par
