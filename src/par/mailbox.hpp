// Cross-shard plumbing for the sharded engine: SPSC mailboxes and the
// sense-reversing spin barrier that separates a round's write phase from
// its drain phase.
//
// Memory-order contract (also documented in DESIGN.md, "Sharded engine"):
// a mailbox (src, dst) is written only by shard `src` during the round's
// write phase (its portals push while the simulator runs) and read+cleared
// only by shard `dst` during the drain phase. The two phases are separated
// by SpinBarrier::arrive_and_wait, whose release store / acquire load pair
// on the sense word publishes every pre-barrier write to every post-barrier
// reader — so the mailbox itself needs no atomics at all: it is a plain
// vector with exactly one writer per phase. ThreadSanitizer agrees (the CI
// tsan job runs the parallel tests under -fsanitize=thread).
//
// Cache-line discipline: mailboxes and the barrier's contended words are
// alignas(64) so two shards never false-share a line. The delta is measured
// by bench/micro_parallel_sim's packed-vs-padded microbench.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "tcp/segment.hpp"
#include "util/time.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace tcpz::par {

/// One cross-shard segment: deliver `seg` at its destination's access
/// router at simulated time `at` (already includes the analytic remainder
/// of the path — see net/portal.hpp).
struct ShardMsg {
  SimTime at;
  tcp::Segment seg;
};

/// Single-producer single-consumer message box for one (src, dst) shard
/// pair. Alignment keeps neighboring boxes off each other's cache lines;
/// the vector's contents are synchronized by the round barrier (above).
struct alignas(64) Mailbox {
  std::vector<ShardMsg> msgs;
};

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

/// Classic sense-reversing spin barrier. Each participating thread keeps a
/// local sense flag (start it at false) and passes it to every
/// arrive_and_wait call; the last arriver resets the count and flips the
/// shared sense with a release store, which every spinning thread observes
/// with an acquire load — establishing the happens-before edge the mailbox
/// contract above relies on. Spins briefly, then yields: rounds are
/// microseconds to milliseconds apart, so burning a core on a straggler
/// would be wasted heat.
class SpinBarrier {
 public:
  explicit SpinBarrier(int parties) : parties_(parties), count_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  void arrive_and_wait(bool& local_sense) {
    local_sense = !local_sense;
    if (count_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last arriver: reset for the next phase, then publish. The relaxed
      // count store is ordered before the release on sense_, and waiters
      // acquire sense_ before touching count_ again.
      count_.store(parties_, std::memory_order_relaxed);
      sense_.store(local_sense, std::memory_order_release);
    } else {
      int spins = 0;
      while (sense_.load(std::memory_order_acquire) != local_sense) {
        if (++spins < 4096) {
          cpu_relax();
        } else {
          std::this_thread::yield();
        }
      }
    }
  }

 private:
  const int parties_;
  alignas(64) std::atomic<int> count_;
  alignas(64) std::atomic<bool> sense_{false};
};

}  // namespace tcpz::par
