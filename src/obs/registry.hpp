// Unified metrics registry: every counter, gauge and histogram a run
// produces, under one name+labels scheme, so bench JSON, fleet aggregation
// and the (future) bench-history comparator all read the same shape instead
// of each growing a private field list.
//
// The register_* helpers expand the same X-macro field tables that declare
// the structs (TCPZ_LISTENER_COUNTER_FIELDS, TCPZ_HOST_REPORT_*_FIELDS,
// TCPZ_SERVER_REPORT_*_FIELDS) — adding a field to a table automatically
// adds it to operator+=, the golden digests, CSV output AND the registry.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "sim/metrics.hpp"
#include "tcp/counters.hpp"

namespace tcpz::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* to_string(MetricKind k);

/// Summary statistics of a histogram metric (enough to merge across
/// replicas without shipping raw samples).
struct HistStats {
  std::uint64_t count = 0;
  double min = 0;
  double max = 0;
  double sum = 0;

  [[nodiscard]] double mean() const {
    return count ? sum / static_cast<double>(count) : 0.0;
  }
};

struct Metric {
  std::string name;
  /// Preformatted "k=v,k2=v2" label set ("" = unlabelled). Identity is
  /// (name, labels, kind) — merge() folds matching metrics together.
  std::string labels;
  MetricKind kind = MetricKind::kCounter;
  double value = 0;  ///< counter/gauge value (unused for histograms)
  HistStats hist;
  std::string help;

  [[nodiscard]] std::string key() const {
    return labels.empty() ? name : name + "{" + labels + "}";
  }
};

class Registry {
 public:
  void counter(std::string_view name, std::string_view labels, double value,
               std::string_view help = {});
  void gauge(std::string_view name, std::string_view labels, double value,
             std::string_view help = {});
  void histogram(std::string_view name, std::string_view labels,
                 const HistStats& h, std::string_view help = {});

  [[nodiscard]] const std::vector<Metric>& metrics() const { return metrics_; }
  [[nodiscard]] std::size_t size() const { return metrics_.size(); }
  /// The metric with this key() (name or "name{labels}"), or nullptr.
  [[nodiscard]] const Metric* find(std::string_view key) const;
  /// Convenience: the value of a counter/gauge by key, or fallback.
  [[nodiscard]] double value(std::string_view key, double fallback = 0) const;

  /// Fleet aggregation: fold `other` in, matching on (name, labels, kind).
  /// Counters add; gauges take the incoming value (last writer wins, like a
  /// scrape); histograms merge their summary stats. Unmatched metrics are
  /// appended.
  void merge(const Registry& other);

  /// One flat JSON object, deterministically ordered by registration:
  ///   {"name{labels}": value, "hist{...}": {"count":..,"min":..,...}}
  /// `indent` spaces prefix every line (for embedding in a larger file).
  void write_json(std::FILE* f, int indent = 0) const;
  [[nodiscard]] std::string to_json(int indent = 0) const;

 private:
  Metric& upsert(std::string_view name, std::string_view labels,
                 MetricKind kind, std::string_view help);
  std::vector<Metric> metrics_;
};

// -- field-table registration -------------------------------------------------
// Labels name the producer (e.g. "server=0", "group=conn-flood,bot=3").

/// Every ListenerCounters field as a counter, from the X-macro table.
void register_metrics(Registry& reg, const tcp::ListenerCounters& c,
                      std::string_view labels);
/// HostReport totals (table) as counters, conn_time_ms as a histogram and
/// the last CPU sample as a gauge.
void register_metrics(Registry& reg, const sim::HostReport& r,
                      std::string_view labels);
/// ServerReport: listener counters (table), each series' run total (table)
/// as a counter, each gauge's final sample (table) plus final_difficulty_m.
void register_metrics(Registry& reg, const sim::ServerReport& r,
                      std::string_view labels);

}  // namespace tcpz::obs
