// Flight-recorder tracing: see every packet decision without perturbing the
// hot path.
//
// The evaluation lives or dies on *why* each SYN/ACK was admitted,
// challenged, or dropped, yet those decisions used to be visible only as
// end-of-run aggregate counters. This layer records the decision stream
// itself into a fixed-capacity ring of trivially-copyable TraceEvent
// records — the flight-recorder model: always cheap, bounded memory, the
// last N events survive for post-mortem no matter how large the run.
//
// Contract (pinned by tests/alloc_guard_test.cpp and bench/micro_obs_ops):
//
//  * When no recorder is installed, every TCPZ_TRACE(...) site compiles to a
//    single predictable branch (one global load + test). The PR 4
//    zero-allocation / golden-trace guarantees hold verbatim with tracing
//    absent.
//  * When a recorder IS installed, record() is a bounds-masked store into a
//    preallocated ring: no allocation, no locks, no syscalls. The packet
//    path stays zero-alloc with tracing enabled.
//  * Events carry sim-time only (never wall clock) and only
//    seed-deterministic payloads (no pointers), so a trace digest is a pure
//    function of the scenario seed — shard merges and refactors can be
//    pinned against it exactly like the counter digests.
//
// Category/code taxonomy: every event belongs to a Cat (maskable per
// category at runtime) and carries a Code naming the decision — the reason
// taxonomy the per-flow lifecycle reconstructor (obs/export.hpp) chains into
// SYN -> challenge -> solve -> established/drop stories.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <vector>

#include "tcp/segment.hpp"
#include "util/time.hpp"

namespace tcpz::obs {

/// Event categories, maskable individually via Recorder's category mask.
enum class Cat : std::uint8_t {
  kListener = 0,  ///< SYN/ACK verdicts, establishment, drops, expiries
  kDefense = 1,   ///< protection-latch transitions, difficulty retunes
  kOffense = 2,   ///< bot slot/challenge/outcome decisions
  kEvent = 3,     ///< event-core schedule/cancel/fire tiers (high volume)
  kLink = 4,      ///< wire transit and queue drops
  kSecret = 5,    ///< secret rotations and overlap windows
  kLb = 6,        ///< balancer dispatch decisions
  kFluid = 7,     ///< aggregate fluid-population admissions (per tick)
};
inline constexpr unsigned kCatCount = 8;
[[nodiscard]] constexpr std::uint32_t cat_bit(Cat c) {
  return 1u << static_cast<unsigned>(c);
}
inline constexpr std::uint32_t kAllCategories = (1u << kCatCount) - 1;

/// Every decision the recorder can witness. Codes map to exactly one Cat
/// (cat_of); the listener block doubles as the drop/admit reason taxonomy.
enum class Code : std::uint8_t {
  // -- kListener: SYN verdicts ----------------------------------------------
  kSynEnqueue = 0,       ///< plain SYN-ACK, half-open state allocated
  kSynChallenge,         ///< stateless puzzle challenge minted (a0 = k<<8|m)
  kSynCookie,            ///< stateless SYN cookie minted
  kSynDropPolicy,        ///< policy-directed drop (defense::SynAction::kDrop)
  kSynDropOverflow,      ///< listen queue full, no stateless answer possible
  kSynRetxRequest,       ///< retransmitted SYN for an existing half-open
  // -- kListener: ACK paths -------------------------------------------------
  kAckPendingAccept,     ///< handshake done but accept queue full; parked
  kSolutionValid,        ///< puzzle solution verified (a1 = 1: prev epoch)
  kSolutionInvalid,      ///< malformed or wrong solution bytes
  kSolutionExpired,      ///< stale or future challenge timestamp
  kSolutionBadAckno,     ///< ACK does not bind to our stateless ISS
  kSolutionDuplicate,    ///< flow already admitted (local duplicate)
  kSolutionIgnoredFull,  ///< accept queue full: deception path, ACK ignored
  kSolutionReplayed,     ///< cluster replay filter rejected the solution
  kCookieValid,          ///< SYN-cookie ACK decoded
  kCookieInvalid,        ///< SYN-cookie decode failed
  kCookieDropFull,       ///< valid cookie, accept queue full
  // -- kListener: lifecycle -------------------------------------------------
  kEstablished,          ///< connection admitted (a0 = EstablishPath)
  kHalfOpenExpired,      ///< half-open entry gave up after max retries
  kSynackRetx,           ///< SYN-ACK retransmitted by the timer
  kRstSent,              ///< RST answered data on an unknown flow
  kDataUnknownFlow,      ///< data segment matched no flow
  // -- kDefense -------------------------------------------------------------
  kLatchEngage,          ///< protection latch engaged (a0 = listen, a1 = accept depth)
  kLatchDisengage,       ///< protection latch released after the hold
  kDifficultyRetune,     ///< adaptive controller moved (k,m): a0 = old, a1 = new (k<<8|m)
  // -- kOffense -------------------------------------------------------------
  kSlotSpoofedSyn,       ///< strategy spent the slot on a spoofed SYN (a0 = target)
  kSlotConnect,          ///< strategy spent the slot on a connect (a0 = target, a1 = patched)
  kSlotIdle,             ///< strategy idled the slot
  kChallengeSolve,       ///< strategy chose to pay for a challenge (a0 = k<<8|m)
  kChallengeAbandon,     ///< strategy (or solver backlog) refused the price
  kBogusAck,             ///< bogus-solution ACK emitted for a challenge
  kOutcomeEstablished,   ///< attempt outcome fed back to the strategy
  kOutcomeReset,
  kOutcomeTimeout,
  kOutcomeSolveRefused,
  // -- kEvent ---------------------------------------------------------------
  kSchedNear,            ///< scheduled into the ordered near heap (a0 = seq)
  kSchedWheel,           ///< parked in a wheel slot (a0 = seq, a1 = level)
  kSchedFar,             ///< beyond the wheel horizon (a0 = seq)
  kCancelWheel,          ///< O(1) wheel unlink (a0 = seq)
  kCancelStage,          ///< lazy staged-skeleton cancel (a0 = seq)
  kFire,                 ///< event fired (a0 = seq)
  // -- kLink ----------------------------------------------------------------
  kLinkTx,               ///< serialized onto the wire (a0 = bytes, a1 = arrival ns)
  kLinkDrop,             ///< link queue overflow (a0 = bytes)
  // -- kSecret --------------------------------------------------------------
  kSecretRotate,         ///< listener installed a new secret epoch (a0 = epoch)
  kSecretOverlapEnd,     ///< previous-epoch solutions stopped verifying
  // -- kLb ------------------------------------------------------------------
  kLbPick,               ///< balancer dispatched a segment (a0 = backend)
  kLbNoBackend,          ///< no live backend; segment dropped
  kLbEvict,              ///< failover evicted a tracked flow (a0 = backend)
  // -- kFluid ---------------------------------------------------------------
  kFluidOffer,           ///< fluid SYN mass offered (a0 = mass x1000, a1 = dropped x1000)
  kFluidChallenge,       ///< fluid mass challenged (a0 = mass x1000, a1 = k<<8|m)
  kFluidEstablish,       ///< fluid mass admitted (a0 = mass x1000, a1 = puzzle path)
  kFluidDeceive,         ///< fluid mass deceived at full accept (a0 = mass x1000, a1 = puzzle path)
};

/// The category a code reports under (drives masking and export grouping).
[[nodiscard]] constexpr Cat cat_of(Code c) {
  if (c <= Code::kDataUnknownFlow) return Cat::kListener;
  if (c <= Code::kDifficultyRetune) return Cat::kDefense;
  if (c <= Code::kOutcomeSolveRefused) return Cat::kOffense;
  if (c <= Code::kFire) return Cat::kEvent;
  if (c <= Code::kLinkDrop) return Cat::kLink;
  if (c <= Code::kSecretOverlapEnd) return Cat::kSecret;
  if (c <= Code::kLbEvict) return Cat::kLb;
  return Cat::kFluid;
}

[[nodiscard]] const char* to_string(Cat c);
[[nodiscard]] const char* to_string(Code c);

/// One recorded decision. Exactly 40 bytes, no padding, trivially copyable:
/// ring writes are plain stores and a trace digest can fold fields without
/// worrying about indeterminate bytes.
struct TraceEvent {
  std::int64_t t = 0;  ///< sim-time nanoseconds (never wall clock)
  std::uint32_t saddr = 0;  ///< flow 4-tuple, zero when not flow-scoped
  std::uint32_t daddr = 0;
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint8_t cat = 0;
  std::uint8_t code = 0;
  std::uint16_t track = 0;  ///< export track: one per agent/replica
  std::uint64_t a0 = 0;  ///< code-specific payload (see Code comments)
  std::uint64_t a1 = 0;
};
static_assert(sizeof(TraceEvent) == 40, "TraceEvent layout drifted");
static_assert(std::is_trivially_copyable_v<TraceEvent>);

/// Fixed-capacity flight-recorder ring. All hot-path members are inline;
/// record() is a mask check plus one bounds-masked store.
class Recorder {
 public:
  /// Capacity is rounded up to a power of two (>= 64) and preallocated —
  /// the only allocation the recorder ever performs.
  explicit Recorder(std::size_t capacity,
                    std::uint32_t category_mask = kAllCategories);

  [[nodiscard]] bool wants(Cat c) const { return (mask_ & cat_bit(c)) != 0; }
  [[nodiscard]] std::uint32_t category_mask() const { return mask_; }
  void set_category_mask(std::uint32_t m) { mask_ = m; }

  // -- hot path --------------------------------------------------------------
  void record(SimTime t, Code code, std::uint16_t track, std::uint64_t a0 = 0,
              std::uint64_t a1 = 0) {
    store(t, code, track, 0, 0, 0, 0, a0, a1);
  }
  void record(SimTime t, Code code, std::uint16_t track,
              const tcp::FlowKey& flow, std::uint64_t a0 = 0,
              std::uint64_t a1 = 0) {
    // Client endpoint first: listener events share the SYN's orientation.
    store(t, code, track, flow.raddr, flow.laddr, flow.rport, flow.lport, a0,
          a1);
  }
  void record(SimTime t, Code code, std::uint16_t track,
              const tcp::Segment& seg, std::uint64_t a0 = 0,
              std::uint64_t a1 = 0) {
    store(t, code, track, seg.saddr, seg.daddr, seg.sport, seg.dport, a0, a1);
  }

  // -- wrap/overflow accounting ----------------------------------------------
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Events accepted over the recorder's lifetime (including overwritten).
  [[nodiscard]] std::uint64_t total_recorded() const { return head_; }
  /// Events currently retained (== capacity once the ring has wrapped).
  [[nodiscard]] std::size_t size() const {
    return head_ < ring_.size() ? static_cast<std::size_t>(head_)
                                : ring_.size();
  }
  /// Oldest events lost to wrap-around.
  [[nodiscard]] std::uint64_t overwritten() const {
    return head_ < ring_.size() ? 0 : head_ - ring_.size();
  }
  /// Events refused by the category mask.
  [[nodiscard]] std::uint64_t suppressed() const { return suppressed_; }

  // -- consumption (oldest -> newest) ----------------------------------------
  template <typename F>
  void for_each(F&& fn) const {
    const std::uint64_t begin = overwritten();
    for (std::uint64_t i = begin; i < head_; ++i) {
      fn(ring_[static_cast<std::size_t>(i) & idx_mask_]);
    }
  }
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  /// FNV-1a over every retained event, oldest to newest — the trace analogue
  /// of the counter digests in tests/trace_digest.hpp. Same seed, same
  /// scenario => same digest.
  [[nodiscard]] std::uint64_t digest() const;

  /// Appends an already-formed event, bypassing the category mask — the
  /// merge path for per-shard recorders (src/par/ sorts the shards' retained
  /// events by sim time and folds them into one ring). Same single-writer
  /// rules as record(): the merging thread is the writer.
  void append(const TraceEvent& ev) {
    assert_single_writer();
    ring_[static_cast<std::size_t>(head_) & idx_mask_] = ev;
    ++head_;
  }

  void clear() {
    head_ = 0;
    suppressed_ = 0;
#ifndef NDEBUG
    writer_ = std::thread::id{};
#endif
  }

 private:
  /// Debug teeth for the single-writer contract: the first write pins the
  /// owning thread; any other thread writing the same ring is a race the
  /// thread_local install was supposed to make impossible.
  void assert_single_writer() {
#ifndef NDEBUG
    const std::thread::id self = std::this_thread::get_id();
    if (writer_ == std::thread::id{}) writer_ = self;
    assert(writer_ == self &&
           "obs::Recorder written from two threads — each shard must "
           "install (and be the sole writer of) its own recorder");
#endif
  }

  void store(SimTime t, Code code, std::uint16_t track, std::uint32_t saddr,
             std::uint32_t daddr, std::uint16_t sport, std::uint16_t dport,
             std::uint64_t a0, std::uint64_t a1) {
    const Cat c = cat_of(code);
    if (!wants(c)) {
      ++suppressed_;
      return;
    }
    assert_single_writer();
    TraceEvent& ev = ring_[static_cast<std::size_t>(head_) & idx_mask_];
    ev.t = t.nanos();
    ev.saddr = saddr;
    ev.daddr = daddr;
    ev.sport = sport;
    ev.dport = dport;
    ev.cat = static_cast<std::uint8_t>(c);
    ev.code = static_cast<std::uint8_t>(code);
    ev.track = track;
    ev.a0 = a0;
    ev.a1 = a1;
    ++head_;
  }

  std::vector<TraceEvent> ring_;
  std::size_t idx_mask_ = 0;
  std::uint64_t head_ = 0;
  std::uint64_t suppressed_ = 0;
  std::uint32_t mask_ = kAllCategories;
#ifndef NDEBUG
  std::thread::id writer_{};  ///< pinned by the first write; see above
#endif
};

/// The installed recorder, or nullptr — one slot PER THREAD.
///
/// Single-writer contract (the sharded engine in src/par/ depends on it):
/// a Recorder has exactly one writing thread — the thread that installed
/// it. The slot is thread_local, so installing a recorder never makes its
/// ring visible to another thread's TCPZ_TRACE sites: each simulation
/// shard (and the wire backend's host thread) installs its own recorder
/// and is that ring's only writer, with no atomics or locks on the record
/// path. Readers (digest/export/merge) run after the writing thread is
/// joined or otherwise quiescent. Debug builds assert the contract: the
/// first record() pins the writer thread and cross-thread writes abort.
/// The disabled path stays a single TLS load + predictable branch.
namespace detail {
inline thread_local Recorder* g_recorder = nullptr;  // NOLINT
}  // namespace detail

/// This thread's installed recorder (other threads' recorders are never
/// visible here — see the single-writer contract above).
[[nodiscard]] inline Recorder* recorder() { return detail::g_recorder; }
inline void install_recorder(Recorder* r) { detail::g_recorder = r; }

/// RAII install/restore, used by scenario::run and the tests so a traced run
/// can never leak its recorder into the next one.
class ScopedRecorder {
 public:
  explicit ScopedRecorder(Recorder* r) : prev_(recorder()) {
    install_recorder(r);
  }
  ~ScopedRecorder() { install_recorder(prev_); }
  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

 private:
  Recorder* prev_;
};

}  // namespace tcpz::obs

/// The tracepoint. Disabled (no recorder installed): one global load and a
/// predictable not-taken branch — nothing else, no argument evaluation
/// beyond what the call site already computed. Enabled: an inline masked
/// ring store. Usage:
///   TCPZ_TRACE(now, obs::Code::kSynChallenge, track_, flow, packed_km);
#define TCPZ_TRACE(...)                                               \
  do {                                                                \
    if (::tcpz::obs::Recorder* tcpz_rec_ = ::tcpz::obs::recorder();   \
        tcpz_rec_ != nullptr) [[unlikely]] {                          \
      tcpz_rec_->record(__VA_ARGS__);                                 \
    }                                                                 \
  } while (0)
