#include "obs/trace.hpp"

#include <bit>

namespace tcpz::obs {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  constexpr std::size_t kMin = 64;
  if (n < kMin) n = kMin;
  return std::bit_ceil(n);
}

constexpr std::uint64_t kFnvBasis = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

Recorder::Recorder(std::size_t capacity, std::uint32_t category_mask)
    : ring_(round_up_pow2(capacity)),
      idx_mask_(ring_.size() - 1),
      mask_(category_mask) {}

std::vector<TraceEvent> Recorder::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(size());
  for_each([&out](const TraceEvent& ev) { out.push_back(ev); });
  return out;
}

std::uint64_t Recorder::digest() const {
  // Fold fields explicitly (not the raw bytes) so the digest is independent
  // of any future padding in the layout.
  std::uint64_t h = fnv(kFnvBasis, total_recorded());
  for_each([&h](const TraceEvent& ev) {
    h = fnv(h, static_cast<std::uint64_t>(ev.t));
    h = fnv(h, (static_cast<std::uint64_t>(ev.saddr) << 32) | ev.daddr);
    h = fnv(h, (static_cast<std::uint64_t>(ev.sport) << 48) |
                   (static_cast<std::uint64_t>(ev.dport) << 32) |
                   (static_cast<std::uint64_t>(ev.cat) << 24) |
                   (static_cast<std::uint64_t>(ev.code) << 16) | ev.track);
    h = fnv(h, ev.a0);
    h = fnv(h, ev.a1);
  });
  return h;
}

const char* to_string(Cat c) {
  switch (c) {
    case Cat::kListener: return "listener";
    case Cat::kDefense: return "defense";
    case Cat::kOffense: return "offense";
    case Cat::kEvent: return "event";
    case Cat::kLink: return "link";
    case Cat::kSecret: return "secret";
    case Cat::kLb: return "lb";
    case Cat::kFluid: return "fluid";
  }
  return "?";
}

const char* to_string(Code c) {
  switch (c) {
    case Code::kSynEnqueue: return "syn_enqueue";
    case Code::kSynChallenge: return "syn_challenge";
    case Code::kSynCookie: return "syn_cookie";
    case Code::kSynDropPolicy: return "syn_drop_policy";
    case Code::kSynDropOverflow: return "syn_drop_overflow";
    case Code::kSynRetxRequest: return "syn_retx_request";
    case Code::kAckPendingAccept: return "ack_pending_accept";
    case Code::kSolutionValid: return "solution_valid";
    case Code::kSolutionInvalid: return "solution_invalid";
    case Code::kSolutionExpired: return "solution_expired";
    case Code::kSolutionBadAckno: return "solution_bad_ackno";
    case Code::kSolutionDuplicate: return "solution_duplicate";
    case Code::kSolutionIgnoredFull: return "solution_ignored_accept_full";
    case Code::kSolutionReplayed: return "solution_replay_filtered";
    case Code::kCookieValid: return "cookie_valid";
    case Code::kCookieInvalid: return "cookie_invalid";
    case Code::kCookieDropFull: return "cookie_drop_accept_full";
    case Code::kEstablished: return "established";
    case Code::kHalfOpenExpired: return "half_open_expired";
    case Code::kSynackRetx: return "synack_retx";
    case Code::kRstSent: return "rst_sent";
    case Code::kDataUnknownFlow: return "data_unknown_flow";
    case Code::kLatchEngage: return "latch_engage";
    case Code::kLatchDisengage: return "latch_disengage";
    case Code::kDifficultyRetune: return "difficulty_retune";
    case Code::kSlotSpoofedSyn: return "slot_spoofed_syn";
    case Code::kSlotConnect: return "slot_connect";
    case Code::kSlotIdle: return "slot_idle";
    case Code::kChallengeSolve: return "challenge_solve";
    case Code::kChallengeAbandon: return "challenge_abandon";
    case Code::kBogusAck: return "bogus_ack";
    case Code::kOutcomeEstablished: return "outcome_established";
    case Code::kOutcomeReset: return "outcome_reset";
    case Code::kOutcomeTimeout: return "outcome_timeout";
    case Code::kOutcomeSolveRefused: return "outcome_solve_refused";
    case Code::kSchedNear: return "sched_near";
    case Code::kSchedWheel: return "sched_wheel";
    case Code::kSchedFar: return "sched_far";
    case Code::kCancelWheel: return "cancel_wheel";
    case Code::kCancelStage: return "cancel_stage";
    case Code::kFire: return "fire";
    case Code::kLinkTx: return "link_tx";
    case Code::kLinkDrop: return "link_drop";
    case Code::kSecretRotate: return "secret_rotate";
    case Code::kSecretOverlapEnd: return "secret_overlap_end";
    case Code::kLbPick: return "lb_pick";
    case Code::kLbNoBackend: return "lb_no_backend";
    case Code::kLbEvict: return "lb_evict";
    case Code::kFluidOffer: return "fluid_offer";
    case Code::kFluidChallenge: return "fluid_challenge";
    case Code::kFluidEstablish: return "fluid_establish";
    case Code::kFluidDeceive: return "fluid_deceive";
  }
  return "?";
}

}  // namespace tcpz::obs
