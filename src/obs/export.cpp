#include "obs/export.hpp"

#include <cinttypes>
#include <unordered_map>

namespace tcpz::obs {

namespace {

/// Endpoint packed as addr<<16|port for flow keying.
std::uint64_t endpoint(std::uint32_t addr, std::uint16_t port) {
  return (static_cast<std::uint64_t>(addr) << 16) | port;
}

std::string endpoint_str(std::uint32_t addr, std::uint16_t port) {
  return tcp::ip_to_string(addr) + ":" + std::to_string(port);
}

}  // namespace

void write_chrome_trace(const Recorder& rec, const TrackNames& tracks,
                        std::FILE* f) {
  std::fprintf(f, "{\"traceEvents\": [\n");
  bool first = true;
  for (const auto& [tid, name] : tracks) {
    std::fprintf(f,
                 "%s  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
                 "\"tid\": %u, \"args\": {\"name\": \"%s\"}}",
                 first ? "" : ",\n", tid, name.c_str());
    first = false;
  }
  rec.for_each([&](const TraceEvent& ev) {
    const Code code = static_cast<Code>(ev.code);
    // Instant events, thread-scoped; ts is sim time in microseconds (Chrome's
    // unit). Sub-microsecond ordering survives in args.t_ns.
    std::fprintf(f,
                 "%s  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"i\", "
                 "\"s\": \"t\", \"pid\": 1, \"tid\": %u, \"ts\": %.3f, "
                 "\"args\": {\"t_ns\": %" PRId64 ", \"a0\": %" PRIu64
                 ", \"a1\": %" PRIu64,
                 first ? "" : ",\n", to_string(code),
                 to_string(static_cast<Cat>(ev.cat)), ev.track,
                 static_cast<double>(ev.t) / 1e3, ev.t, ev.a0, ev.a1);
    first = false;
    if (ev.saddr != 0 || ev.daddr != 0) {
      std::fprintf(f, ", \"src\": \"%s\", \"dst\": \"%s\"",
                   endpoint_str(ev.saddr, ev.sport).c_str(),
                   endpoint_str(ev.daddr, ev.dport).c_str());
    }
    std::fprintf(f, "}}");
  });
  std::fprintf(f, "\n], \"displayTimeUnit\": \"ms\"}\n");
}

bool write_chrome_trace(const Recorder& rec, const TrackNames& tracks,
                        const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  write_chrome_trace(rec, tracks, f);
  std::fclose(f);
  return true;
}

// -- per-flow lifecycle reconstruction ----------------------------------------

bool FlowLifecycle::saw(Code c) const {
  for (const TraceEvent& ev : events) {
    if (static_cast<Code>(ev.code) == c) return true;
  }
  return false;
}

std::string FlowLifecycle::outcome() const {
  // Walk newest-first: the last listener verdict on the flow decides. An
  // establishment anywhere wins (post-establishment data/RST events follow).
  if (established()) return "established";
  for (auto it = events.rbegin(); it != events.rend(); ++it) {
    switch (static_cast<Code>(it->code)) {
      case Code::kSynDropPolicy:
      case Code::kSynDropOverflow:
      case Code::kSolutionInvalid:
      case Code::kSolutionExpired:
      case Code::kSolutionBadAckno:
      case Code::kSolutionIgnoredFull:
      case Code::kSolutionReplayed:
      case Code::kCookieInvalid:
      case Code::kCookieDropFull:
      case Code::kHalfOpenExpired:
      case Code::kLbNoBackend:
        return std::string("dropped:") + to_string(static_cast<Code>(it->code));
      case Code::kOutcomeTimeout:
        return "dropped:timeout";
      default:
        break;
    }
  }
  return "pending";
}

std::vector<FlowLifecycle> reconstruct_flows(const Recorder& rec,
                                             std::uint32_t category_mask) {
  std::vector<FlowLifecycle> flows;
  // Key is orientation-free (low endpoint, high endpoint): the listener
  // records client-first but attacker-side events carry the SYN-ACK's
  // server-first orientation, and both must land in the same chain.
  std::unordered_map<std::uint64_t, std::size_t> index;
  rec.for_each([&](const TraceEvent& ev) {
    if ((cat_bit(static_cast<Cat>(ev.cat)) & category_mask) == 0) return;
    if (ev.saddr == 0 && ev.daddr == 0) return;  // not flow-scoped
    const std::uint64_t a = endpoint(ev.saddr, ev.sport);
    const std::uint64_t b = endpoint(ev.daddr, ev.dport);
    // 37 bits of endpoint per side would overflow a single u64 key; mix
    // instead (collisions are astronomically unlikely within one trace).
    const std::uint64_t lo = a < b ? a : b;
    const std::uint64_t hi = a < b ? b : a;
    const std::uint64_t key = lo * 0x9e3779b97f4a7c15ull ^ hi;
    auto [it, inserted] = index.try_emplace(key, flows.size());
    if (inserted) flows.emplace_back();
    FlowLifecycle& fl = flows[it->second];
    fl.events.push_back(ev);
    // A listener-category event's source is the client by construction; let
    // it orient the tuple (and stick with the first orientation seen until
    // one shows up).
    if (fl.client_addr == 0 ||
        (static_cast<Cat>(ev.cat) == Cat::kListener &&
         fl.client_addr != ev.saddr)) {
      fl.client_addr = ev.saddr;
      fl.client_port = ev.sport;
      fl.server_addr = ev.daddr;
      fl.server_port = ev.dport;
    }
  });
  return flows;
}

void write_flows(std::FILE* f, const std::vector<FlowLifecycle>& flows) {
  for (const FlowLifecycle& fl : flows) {
    std::fprintf(f, "%s -> %s  [%zu events] %s\n",
                 endpoint_str(fl.client_addr, fl.client_port).c_str(),
                 endpoint_str(fl.server_addr, fl.server_port).c_str(),
                 fl.events.size(), fl.outcome().c_str());
    for (const TraceEvent& ev : fl.events) {
      std::fprintf(f, "  %12.6fms  %-22s a0=%" PRIu64 " a1=%" PRIu64 "\n",
                   static_cast<double>(ev.t) / 1e6,
                   to_string(static_cast<Code>(ev.code)), ev.a0, ev.a1);
    }
  }
}

}  // namespace tcpz::obs
