// Trace exporters: turn a Recorder's event ring into things humans read.
//
//  * write_chrome_trace — Chrome trace_event JSON (load in Perfetto or
//    chrome://tracing). One track per agent/replica: the TraceEvent track id
//    becomes the tid, named via thread_name metadata events.
//  * reconstruct_flows — per-flow lifecycle chains: every flow-scoped event
//    grouped by 4-tuple in time order, so a single connection reads as
//    SYN -> challenge -> solve -> established (or the drop reason).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace tcpz::obs {

/// Display names for export tracks: (track id, name). Track 0 is the shared
/// infrastructure track (event core, links, balancer, secrets).
using TrackNames = std::vector<std::pair<std::uint16_t, std::string>>;

/// Writes the retained events as Chrome trace_event JSON ("traceEvents"
/// array of instant events, ts in microseconds of sim time, tid = track).
/// Returns false if the file could not be opened.
bool write_chrome_trace(const Recorder& rec, const TrackNames& tracks,
                        const std::string& path);
void write_chrome_trace(const Recorder& rec, const TrackNames& tracks,
                        std::FILE* f);

// -- per-flow lifecycle reconstruction ----------------------------------------

/// One connection's story: every flow-scoped event on its 4-tuple, oldest
/// first. The client endpoint is the SYN's source (listener events record the
/// client side first, so the first listener event orients the tuple).
struct FlowLifecycle {
  std::uint32_t client_addr = 0;
  std::uint16_t client_port = 0;
  std::uint32_t server_addr = 0;
  std::uint16_t server_port = 0;
  std::vector<TraceEvent> events;

  [[nodiscard]] bool saw(Code c) const;
  [[nodiscard]] bool established() const { return saw(Code::kEstablished); }
  [[nodiscard]] bool challenged() const { return saw(Code::kSynChallenge); }
  /// "established", "dropped:<reason code>" for a terminal listener verdict,
  /// or "pending" when the trace ends mid-handshake (e.g. ring wrap ate the
  /// tail). The reason string is to_string() of the deciding Code — the
  /// listener taxonomy doubles as the drop-reason taxonomy.
  [[nodiscard]] std::string outcome() const;
};

/// Groups the retained flow-scoped events (nonzero 4-tuple) by connection.
/// `category_mask` limits which categories participate; the default keeps
/// the decision-level categories and leaves out per-packet link noise.
/// Flows are ordered by first appearance, events within a flow by time.
[[nodiscard]] std::vector<FlowLifecycle> reconstruct_flows(
    const Recorder& rec,
    std::uint32_t category_mask = cat_bit(Cat::kListener) |
                                  cat_bit(Cat::kOffense) | cat_bit(Cat::kLb));

/// Human-readable dump: one header line per flow (tuple + outcome), one
/// indented line per event.
void write_flows(std::FILE* f, const std::vector<FlowLifecycle>& flows);

}  // namespace tcpz::obs
