#include "obs/registry.hpp"

#include <cinttypes>
#include <cmath>

namespace tcpz::obs {

const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

Metric& Registry::upsert(std::string_view name, std::string_view labels,
                         MetricKind kind, std::string_view help) {
  for (Metric& m : metrics_) {
    if (m.kind == kind && m.name == name && m.labels == labels) return m;
  }
  Metric m;
  m.name = std::string(name);
  m.labels = std::string(labels);
  m.kind = kind;
  m.help = std::string(help);
  metrics_.push_back(std::move(m));
  return metrics_.back();
}

void Registry::counter(std::string_view name, std::string_view labels,
                       double value, std::string_view help) {
  upsert(name, labels, MetricKind::kCounter, help).value += value;
}

void Registry::gauge(std::string_view name, std::string_view labels,
                     double value, std::string_view help) {
  upsert(name, labels, MetricKind::kGauge, help).value = value;
}

void Registry::histogram(std::string_view name, std::string_view labels,
                         const HistStats& h, std::string_view help) {
  Metric& m = upsert(name, labels, MetricKind::kHistogram, help);
  if (h.count == 0) return;
  if (m.hist.count == 0) {
    m.hist = h;
  } else {
    m.hist.min = std::min(m.hist.min, h.min);
    m.hist.max = std::max(m.hist.max, h.max);
    m.hist.count += h.count;
    m.hist.sum += h.sum;
  }
}

const Metric* Registry::find(std::string_view key) const {
  for (const Metric& m : metrics_) {
    if (m.key() == key) return &m;
  }
  return nullptr;
}

double Registry::value(std::string_view key, double fallback) const {
  const Metric* m = find(key);
  return m != nullptr ? m->value : fallback;
}

void Registry::merge(const Registry& other) {
  for (const Metric& m : other.metrics_) {
    switch (m.kind) {
      case MetricKind::kCounter: counter(m.name, m.labels, m.value, m.help); break;
      case MetricKind::kGauge: gauge(m.name, m.labels, m.value, m.help); break;
      case MetricKind::kHistogram: histogram(m.name, m.labels, m.hist, m.help); break;
    }
  }
}

namespace {

/// Counter values are integral in practice; print them without a mantissa so
/// the JSON diff cleanly. Everything else keeps full precision.
void write_number(std::FILE* f, double v) {
  if (std::nearbyint(v) == v && std::fabs(v) < 9.007e15) {
    std::fprintf(f, "%" PRId64, static_cast<std::int64_t>(v));
  } else {
    std::fprintf(f, "%.6g", v);
  }
}

}  // namespace

void Registry::write_json(std::FILE* f, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::fprintf(f, "{");
  bool first = true;
  for (const Metric& m : metrics_) {
    std::fprintf(f, "%s\n%s  \"%s\": ", first ? "" : ",", pad.c_str(),
                 m.key().c_str());
    first = false;
    if (m.kind == MetricKind::kHistogram) {
      std::fprintf(f, "{\"count\": %" PRIu64 ", \"min\": ", m.hist.count);
      write_number(f, m.hist.min);
      std::fprintf(f, ", \"max\": ");
      write_number(f, m.hist.max);
      std::fprintf(f, ", \"mean\": ");
      write_number(f, m.hist.mean());
      std::fprintf(f, "}");
    } else {
      write_number(f, m.value);
    }
  }
  std::fprintf(f, "\n%s}", pad.c_str());
}

std::string Registry::to_json(int indent) const {
  std::FILE* f = std::tmpfile();
  if (f == nullptr) return "{}";
  write_json(f, indent);
  const long len = std::ftell(f);
  std::string out(static_cast<std::size_t>(len), '\0');
  std::rewind(f);
  const std::size_t got = std::fread(out.data(), 1, out.size(), f);
  out.resize(got);
  std::fclose(f);
  return out;
}

// -- field-table registration -------------------------------------------------

void register_metrics(Registry& reg, const tcp::ListenerCounters& c,
                      std::string_view labels) {
#define TCPZ_X(name, help) \
  reg.counter("listener." #name, labels, static_cast<double>(c.name), help);
  TCPZ_LISTENER_COUNTER_FIELDS(TCPZ_X)
#undef TCPZ_X
}

void register_metrics(Registry& reg, const sim::HostReport& r,
                      std::string_view labels) {
#define TCPZ_X(name, help) \
  reg.counter("host." #name, labels, static_cast<double>(r.name), help);
  TCPZ_HOST_REPORT_TOTAL_FIELDS(TCPZ_X)
#undef TCPZ_X
  if (!r.conn_time_ms.empty()) {
    HistStats h;
    h.count = static_cast<std::uint64_t>(r.conn_time_ms.count());
    h.min = r.conn_time_ms.min();
    h.max = r.conn_time_ms.max();
    h.sum = r.conn_time_ms.mean() * static_cast<double>(r.conn_time_ms.count());
    reg.histogram("host.conn_time_ms", labels, h,
                  "SYN sent -> established (includes solve time)");
  }
  if (!r.cpu.points().empty()) {
    reg.gauge("host.cpu", labels, r.cpu.points().back().value,
              "host CPU utilization, final sample");
  }
}

namespace {

double series_total(const tcpz::TimeSeries& s) {
  double sum = 0;
  for (std::size_t i = 0; i < s.bins(); ++i) sum += s.total(i);
  return sum;
}

}  // namespace

void register_metrics(Registry& reg, const sim::ServerReport& r,
                      std::string_view labels) {
  register_metrics(reg, r.counters, labels);
#define TCPZ_X(name, help) \
  reg.counter("server." #name, labels, series_total(r.name), help);
  TCPZ_SERVER_REPORT_SERIES_FIELDS(TCPZ_X)
#undef TCPZ_X
#define TCPZ_X(name, help)                                              \
  if (!r.name.points().empty()) {                                       \
    reg.gauge("server." #name, labels, r.name.points().back().value,    \
              help ", final sample");                                   \
  }
  TCPZ_SERVER_REPORT_GAUGE_FIELDS(TCPZ_X)
#undef TCPZ_X
  reg.gauge("server.final_difficulty_m", labels, r.final_difficulty_m,
            "puzzle difficulty bits m at end of run");
}

}  // namespace tcpz::obs
