// Public facade of the tcppuzzles library.
//
// A downstream user typically needs three things:
//   1. the puzzle scheme itself        -> puzzle/engine.hpp
//   2. a difficulty chosen on theory   -> game/planner.hpp (DifficultyPlanner)
//   3. a protected TCP endpoint        -> tcp/listener.hpp, tcp/connector.hpp
// plus, for evaluation, the simulator  -> sim/scenario.hpp
//
// This header pulls the public API together and adds the small glue type
// (PuzzleProtectedServer settings) the examples use.
#pragma once

#include "core/adaptive.hpp"
#include "crypto/hmac.hpp"
#include "crypto/secret.hpp"
#include "crypto/sha256.hpp"
#include "game/model.hpp"
#include "game/planner.hpp"
#include "puzzle/engine.hpp"
#include "puzzle/types.hpp"
#include "tcp/connector.hpp"
#include "tcp/listener.hpp"
#include "tcp/options.hpp"
#include "tcp/segment.hpp"
#include "tcp/syncookie.hpp"

namespace tcpz {

struct Version {
  int major = 1;
  int minor = 0;
  int patch = 0;
};

[[nodiscard]] Version library_version();

/// Everything needed to stand up a puzzle-protected listening socket with a
/// theory-backed difficulty: profile inputs in, a ready Listener out.
struct ProtectedServerSettings {
  std::uint32_t local_addr = 0;
  std::uint16_t local_port = 80;
  std::size_t listen_backlog = 1024;
  std::size_t accept_backlog = 1024;
  game::PlanInput plan;  ///< client hash profiles + server stress test
  puzzle::EngineConfig engine;
};

struct ProtectedServer {
  game::Plan plan;  ///< the difficulty the theory chose
  std::shared_ptr<puzzle::Sha256PuzzleEngine> engine;
  std::unique_ptr<tcp::Listener> listener;
};

/// Builds a real-crypto (SHA-256) puzzle-protected listener from profile
/// data. The returned listener has puzzles enabled at the planned Nash
/// difficulty.
[[nodiscard]] ProtectedServer make_protected_server(
    const ProtectedServerSettings& settings, crypto::SecretKey secret,
    std::uint64_t seed);

}  // namespace tcpz
