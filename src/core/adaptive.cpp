#include "core/adaptive.hpp"

#include <algorithm>
#include <stdexcept>

namespace tcpz {

AdaptiveDifficultyController::AdaptiveDifficultyController(AdaptiveConfig cfg)
    : cfg_(cfg), current_(cfg.base) {
  if (cfg_.m_min == 0 || cfg_.m_min > cfg_.m_max) {
    throw std::invalid_argument("AdaptiveConfig: need 0 < m_min <= m_max");
  }
  if (cfg_.base.m < cfg_.m_min || cfg_.base.m > cfg_.m_max) {
    throw std::invalid_argument("AdaptiveConfig: base.m outside [m_min, m_max]");
  }
  if (cfg_.period.nanos() <= 0 || cfg_.patience < 1) {
    throw std::invalid_argument("AdaptiveConfig: period/patience invalid");
  }
  if (cfg_.low_demand < 0 || cfg_.high_demand <= cfg_.low_demand) {
    throw std::invalid_argument("AdaptiveConfig: need high_demand > low_demand >= 0");
  }
}

puzzle::Difficulty AdaptiveDifficultyController::update(
    SimTime now, const tcp::ListenerCounters& counters) {
  if (!primed_) {
    primed_ = true;
    last_update_ = now;
    last_challenges_ = counters.challenges_sent;
    last_valid_ = counters.solutions_valid;
    return current_;
  }
  const SimTime elapsed = now - last_update_;
  if (elapsed < cfg_.period) return current_;

  const double secs = elapsed.to_seconds();
  const std::uint64_t challenges =
      counters.challenges_sent - last_challenges_;
  const std::uint64_t valid = counters.solutions_valid - last_valid_;
  last_update_ = now;
  last_challenges_ = counters.challenges_sent;
  last_valid_ = counters.solutions_valid;

  last_demand_ = static_cast<double>(challenges) / secs;
  last_yield_ = challenges
                    ? static_cast<double>(valid) / static_cast<double>(challenges)
                    : 0.0;

  if (last_demand_ >= cfg_.high_demand) {
    ++high_streak_;
    low_streak_ = 0;
  } else if (last_demand_ <= cfg_.low_demand) {
    ++low_streak_;
    high_streak_ = 0;
  } else {
    high_streak_ = 0;
    low_streak_ = 0;
  }

  if (high_streak_ >= cfg_.patience && current_.m < cfg_.m_max) {
    ++current_.m;
    ++steps_up_;
    high_streak_ = 0;
  } else if (low_streak_ >= cfg_.patience) {
    // Relax toward (but never below) the planned base, then the floor only
    // if the base itself is above it.
    const std::uint8_t floor = std::max(cfg_.m_min, cfg_.base.m);
    if (current_.m > floor) {
      --current_.m;
      ++steps_down_;
    }
    low_streak_ = 0;
  }
  return current_;
}

}  // namespace tcpz
