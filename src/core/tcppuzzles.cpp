#include "core/tcppuzzles.hpp"

namespace tcpz {

Version library_version() { return Version{1, 0, 0}; }

ProtectedServer make_protected_server(const ProtectedServerSettings& settings,
                                      crypto::SecretKey secret,
                                      std::uint64_t seed) {
  ProtectedServer out;
  out.plan = game::plan_difficulty(settings.plan);
  out.engine =
      std::make_shared<puzzle::Sha256PuzzleEngine>(secret, settings.engine);

  tcp::ListenerConfig lcfg;
  lcfg.local_addr = settings.local_addr;
  lcfg.local_port = settings.local_port;
  lcfg.listen_backlog = settings.listen_backlog;
  lcfg.accept_backlog = settings.accept_backlog;
  lcfg.mode = tcp::DefenseMode::kPuzzles;
  lcfg.difficulty = out.plan.difficulty;
  out.listener = std::make_unique<tcp::Listener>(lcfg, secret, seed, out.engine);
  return out;
}

}  // namespace tcpz
