// Adaptive difficulty control — the closed control loop §7 sketches as
// future work: "adapt the difficulty of the sent puzzles based on the
// behavior of the observed traffic at the server".
//
// The controller watches the listener's counters on a fixed cadence and
// derives two signals per period:
//   * challenge demand  — SYNs answered with a challenge per second
//     (how hard the connection-establishment channel is being hit), and
//   * solve yield       — valid solutions per challenge
//     (how willing/able the current client mix is to pay).
// It steps m up when demand stays above `high_demand` (the flood is not yet
// rate-limited) and steps it down toward the planned base when demand stays
// below `low_demand` (so legitimate clients stop over-paying after the
// attack fades). k is held at the planned value: m is the exponential knob
// (Fig. 6), k only shifts the verify/guess trade-off.
#pragma once

#include <cstdint>

#include "puzzle/types.hpp"
#include "tcp/counters.hpp"
#include "util/time.hpp"

namespace tcpz {

struct AdaptiveConfig {
  puzzle::Difficulty base{2, 17};  ///< the Nash plan; the resting point
  std::uint8_t m_min = 10;
  std::uint8_t m_max = 22;
  /// Challenged-SYN rates (per second) bounding the dead band.
  double high_demand = 2000.0;
  double low_demand = 200.0;
  /// Consecutive periods a signal must persist before a step (debounce).
  int patience = 3;
  SimTime period = SimTime::seconds(1);

  bool operator==(const AdaptiveConfig&) const = default;
};

class AdaptiveDifficultyController {
 public:
  explicit AdaptiveDifficultyController(AdaptiveConfig cfg);

  /// Feed a counters snapshot; returns the difficulty to use from now on.
  /// Call on the configured cadence (extra calls within a period are
  /// ignored and return the current setting).
  [[nodiscard]] puzzle::Difficulty update(SimTime now,
                                          const tcp::ListenerCounters& counters);

  [[nodiscard]] puzzle::Difficulty current() const { return current_; }
  /// Demand and yield observed in the last completed period.
  [[nodiscard]] double last_demand() const { return last_demand_; }
  [[nodiscard]] double last_yield() const { return last_yield_; }
  [[nodiscard]] std::uint64_t steps_up() const { return steps_up_; }
  [[nodiscard]] std::uint64_t steps_down() const { return steps_down_; }

 private:
  AdaptiveConfig cfg_;
  puzzle::Difficulty current_;

  bool primed_ = false;
  SimTime last_update_;
  std::uint64_t last_challenges_ = 0;
  std::uint64_t last_valid_ = 0;

  double last_demand_ = 0.0;
  double last_yield_ = 0.0;
  int high_streak_ = 0;
  int low_streak_ = 0;
  std::uint64_t steps_up_ = 0;
  std::uint64_t steps_down_ = 0;
};

}  // namespace tcpz
