#include "crypto/sha256.hpp"

#include <bit>
#include <cstring>

namespace tcpz::crypto {
namespace {

constexpr std::array<std::uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

// FIPS 180-4 sigma functions. std::rotr compiles to a single ror.
constexpr std::uint32_t lsig0(std::uint32_t x) {
  return std::rotr(x, 7) ^ std::rotr(x, 18) ^ (x >> 3);
}
constexpr std::uint32_t lsig1(std::uint32_t x) {
  return std::rotr(x, 17) ^ std::rotr(x, 19) ^ (x >> 10);
}
constexpr std::uint32_t usig0(std::uint32_t x) {
  return std::rotr(x, 2) ^ std::rotr(x, 13) ^ std::rotr(x, 22);
}
constexpr std::uint32_t usig1(std::uint32_t x) {
  return std::rotr(x, 6) ^ std::rotr(x, 11) ^ std::rotr(x, 25);
}

constexpr std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

}  // namespace

void Sha256::reset() {
  state_ = initial_state();
  bit_count_ = 0;
  buffer_len_ = 0;
}

void Sha256::compress(State& state, const std::uint8_t* block) {
  // The message schedule is kept as a loop (the compiler vectorizes it);
  // the 64 rounds are fully unrolled with the register rotation expressed as
  // argument permutation, so the round state lives in registers end to end —
  // no h=g; g=f; ... shuffle chain per round.
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + i * 4);
  for (int i = 16; i < 64; ++i) {
    w[i] = w[i - 16] + lsig0(w[i - 15]) + w[i - 7] + lsig1(w[i - 2]);
  }

  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

#define TCPZ_SHA256_ROUND(a, b, c, d, e, f, g, h, i)                       \
  {                                                                        \
    const std::uint32_t t1 =                                               \
        h + usig1(e) + ((e & f) ^ (~e & g)) + kK[i] + w[i];                \
    const std::uint32_t t2 = usig0(a) + ((a & b) ^ (a & c) ^ (b & c));     \
    d += t1;                                                               \
    h = t1 + t2;                                                           \
  }
  for (int i = 0; i < 64; i += 8) {
    TCPZ_SHA256_ROUND(a, b, c, d, e, f, g, h, i + 0)
    TCPZ_SHA256_ROUND(h, a, b, c, d, e, f, g, i + 1)
    TCPZ_SHA256_ROUND(g, h, a, b, c, d, e, f, i + 2)
    TCPZ_SHA256_ROUND(f, g, h, a, b, c, d, e, i + 3)
    TCPZ_SHA256_ROUND(e, f, g, h, a, b, c, d, i + 4)
    TCPZ_SHA256_ROUND(d, e, f, g, h, a, b, c, i + 5)
    TCPZ_SHA256_ROUND(c, d, e, f, g, h, a, b, i + 6)
    TCPZ_SHA256_ROUND(b, c, d, e, f, g, h, a, i + 7)
  }
#undef TCPZ_SHA256_ROUND

  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

Sha256::State Sha256::initial_state() {
  return {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
          0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
}

Sha256Digest Sha256::state_to_digest(const State& state) {
  Sha256Digest out;
  for (int i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(state[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(state[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(state[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(state[i]);
  }
  return out;
}

void Sha256::update(std::span<const std::uint8_t> data) {
  bit_count_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t off = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    off += take;
    if (buffer_len_ == 64) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (off + 64 <= data.size()) {
    process_block(data.data() + off);
    off += 64;
  }
  if (off < data.size()) {
    std::memcpy(buffer_.data(), data.data() + off, data.size() - off);
    buffer_len_ = data.size() - off;
  }
}

Sha256Digest Sha256::finalize() {
  // Append 0x80, pad with zeros to 56 mod 64, then the 64-bit bit count.
  std::uint8_t pad[72] = {0x80};
  const std::size_t rem = buffer_len_;
  const std::size_t pad_len = (rem < 56) ? (56 - rem) : (120 - rem);
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_count_ >> (56 - 8 * i));
  }
  update(std::span<const std::uint8_t>(pad, pad_len));
  update(std::span<const std::uint8_t>(len_be, 8));

  Sha256Digest out;
  for (int i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Sha256Digest Sha256::hash(std::span<const std::uint8_t> data) {
  Sha256 h;
  h.update(data);
  return h.finalize();
}

Sha256Digest Sha256::hash(std::string_view s) {
  Sha256 h;
  h.update(s);
  return h.finalize();
}

Bytes prefix_bits(const Sha256Digest& digest, unsigned bits) {
  const unsigned nbytes = (bits + 7) / 8;
  Bytes out(digest.begin(), digest.begin() + nbytes);
  const unsigned extra = nbytes * 8 - bits;
  if (extra > 0 && !out.empty()) {
    out.back() &= static_cast<std::uint8_t>(0xff << extra);
  }
  return out;
}

bool prefix_bits_equal(const Sha256Digest& a, const Sha256Digest& b,
                       unsigned bits) {
  const unsigned full_bytes = bits / 8;
  for (unsigned i = 0; i < full_bytes; ++i) {
    if (a[i] != b[i]) return false;
  }
  const unsigned rem = bits % 8;
  if (rem == 0) return true;
  const std::uint8_t mask = static_cast<std::uint8_t>(0xff << (8 - rem));
  return (a[full_bytes] & mask) == (b[full_bytes] & mask);
}

}  // namespace tcpz::crypto
