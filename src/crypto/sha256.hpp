// SHA-256 (FIPS 180-4), implemented from scratch so the library has no
// external crypto dependency. The paper's puzzle scheme (after Juels &
// Brainard) relies only on pre-image resistance of the hash; the Linux patch
// used the kernel's SHA-256, we use this one.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

#include "util/bytes.hpp"

namespace tcpz::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Incremental SHA-256. Usage: update() any number of times, then finalize().
/// After finalize() the object can be reset() and reused. Copyable: the hot
/// loops snapshot a partially-absorbed hash (HMAC midstates, the invariant
/// preimage‖index prefix of the puzzle solve loop) and fork per message.
class Sha256 {
 public:
  /// The eight working words — a resumable compression-function midstate.
  using State = std::array<std::uint32_t, 8>;

  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view s) {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }
  [[nodiscard]] Sha256Digest finalize();

  /// One-shot convenience.
  [[nodiscard]] static Sha256Digest hash(std::span<const std::uint8_t> data);
  [[nodiscard]] static Sha256Digest hash(std::string_view s);

  /// The raw compression function: folds one 64-byte block into `state`.
  /// The keyed hot paths (HMAC midstates, the puzzle solution check) build
  /// fully-padded single blocks on the stack and call this directly,
  /// skipping the incremental buffering/finalization machinery.
  static void compress(State& state, const std::uint8_t* block);

  /// Fresh initial state (FIPS 180-4 H(0)), for direct compress() use.
  [[nodiscard]] static State initial_state();

  /// Serializes a compression state into the big-endian digest form.
  [[nodiscard]] static Sha256Digest state_to_digest(const State& state);

 private:
  friend class HmacKey;  // seeds state_/bit_count_ from cached midstates

  void process_block(const std::uint8_t* block) { compress(state_, block); }

  State state_{};
  std::uint64_t bit_count_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
};

/// Returns the first `bits` bits of `digest` packed into bytes, remaining
/// bits of the last byte zeroed. The puzzle scheme compares m-bit prefixes.
[[nodiscard]] Bytes prefix_bits(const Sha256Digest& digest, unsigned bits);

/// True iff the first `bits` bits of a and b agree.
[[nodiscard]] bool prefix_bits_equal(const Sha256Digest& a,
                                     const Sha256Digest& b, unsigned bits);

}  // namespace tcpz::crypto
