// HMAC-SHA256 (RFC 2104). Used by the SYN-cookie generator and by the puzzle
// pre-image construction, which keys the hash with the server secret so
// clients cannot forge challenges for arbitrary flows.
//
// Two forms:
//  * hmac_sha256() — the one-shot reference. Re-derives the full key
//    schedule (pad xors + two extra compressions) on every call; kept as the
//    independent implementation the midstate cache is property-tested
//    against.
//  * HmacKey — precomputes the ipad/opad SHA-256 midstates once per key.
//    The server secret only changes at rotation, while every defended
//    SYN/ACK pays at least one HMAC (challenge derivation, solution
//    verification, SYN cookies, stateless ISS), so caching the midstates
//    drops each per-packet MAC from 4+ compressions plus key-schedule setup
//    to ~2 compressions. Bit-identical to hmac_sha256() for every
//    key/message, including keys longer than the 64-byte block.
#pragma once

#include <span>
#include <string_view>

#include "crypto/sha256.hpp"

namespace tcpz::crypto {

[[nodiscard]] Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                                       std::span<const std::uint8_t> message);

[[nodiscard]] Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                                       std::string_view message);

/// Precomputed HMAC-SHA256 key (see file comment). Cheap to copy — two
/// 32-byte midstates, no heap — and trivially comparable: two HmacKeys are
/// equal iff they were derived from the same effective key block.
class HmacKey {
 public:
  /// The all-zero key (HMAC treats a missing key as zero-padded anyway);
  /// exists so key-carrying types stay default-constructible.
  HmacKey() : HmacKey(std::span<const std::uint8_t>{}) {}
  explicit HmacKey(std::span<const std::uint8_t> key);

  /// One MAC: inner midstate + message, outer midstate + inner digest.
  [[nodiscard]] Sha256Digest mac(std::span<const std::uint8_t> message) const;
  [[nodiscard]] Sha256Digest mac(std::string_view message) const;

  bool operator==(const HmacKey&) const = default;

 private:
  Sha256::State inner_{};  ///< compression state after the ipad block
  Sha256::State outer_{};  ///< compression state after the opad block
};

}  // namespace tcpz::crypto
