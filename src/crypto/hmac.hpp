// HMAC-SHA256 (RFC 2104). Used by the SYN-cookie generator and by the puzzle
// pre-image construction, which keys the hash with the server secret so
// clients cannot forge challenges for arbitrary flows.
#pragma once

#include <span>
#include <string_view>

#include "crypto/sha256.hpp"

namespace tcpz::crypto {

[[nodiscard]] Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                                       std::span<const std::uint8_t> message);

[[nodiscard]] Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                                       std::string_view message);

}  // namespace tcpz::crypto
