// Server secret keys. The paper generates the secret once per listening
// socket lifetime (§5); we mirror that: a SecretKey is created when the
// listener starts and is used for every challenge pre-image and SYN cookie.
//
// Because the secret only changes at (fleet) rotation while every defended
// packet MACs with it, the key carries its precomputed HMAC midstates
// (crypto::HmacKey): the key schedule is paid once per key — at from_seed /
// random / SecretDirectory::rotate — never per packet.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/hmac.hpp"

namespace tcpz::crypto {

inline constexpr std::size_t kSecretKeySize = 32;

class SecretKey {
 public:
  /// The all-zero key; real keys come from from_seed()/random().
  SecretKey() : SecretKey(std::array<std::uint8_t, kSecretKeySize>{}) {}

  /// Deterministic key derived from a seed — simulations must be
  /// reproducible, so the simulator derives per-listener keys from the
  /// scenario seed rather than the OS entropy pool.
  [[nodiscard]] static SecretKey from_seed(std::uint64_t seed);

  /// Key from the OS entropy pool (getrandom / /dev/urandom), for real use
  /// outside the simulator.
  [[nodiscard]] static SecretKey random();

  [[nodiscard]] std::span<const std::uint8_t> bytes() const { return key_; }

  /// The cached-midstate HMAC for this secret (~2 compressions per mac()).
  [[nodiscard]] const HmacKey& hmac() const { return mac_; }

  bool operator==(const SecretKey& other) const { return key_ == other.key_; }

 private:
  explicit SecretKey(const std::array<std::uint8_t, kSecretKeySize>& key)
      : key_(key), mac_(std::span<const std::uint8_t>(key_.data(), key_.size())) {}

  std::array<std::uint8_t, kSecretKeySize> key_{};
  HmacKey mac_;
};

}  // namespace tcpz::crypto
