// Server secret keys. The paper generates the secret once per listening
// socket lifetime (§5); we mirror that: a SecretKey is created when the
// listener starts and is used for every challenge pre-image and SYN cookie.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace tcpz::crypto {

inline constexpr std::size_t kSecretKeySize = 32;

class SecretKey {
 public:
  /// Deterministic key derived from a seed — simulations must be
  /// reproducible, so the simulator derives per-listener keys from the
  /// scenario seed rather than the OS entropy pool.
  [[nodiscard]] static SecretKey from_seed(std::uint64_t seed);

  /// Key from the OS entropy pool (getrandom / /dev/urandom), for real use
  /// outside the simulator.
  [[nodiscard]] static SecretKey random();

  [[nodiscard]] std::span<const std::uint8_t> bytes() const { return key_; }

  bool operator==(const SecretKey&) const = default;

 private:
  std::array<std::uint8_t, kSecretKeySize> key_{};
};

}  // namespace tcpz::crypto
