#include "crypto/hmac.hpp"

#include <array>
#include <cstring>

namespace tcpz::crypto {
namespace {

constexpr std::size_t kBlock = 64;

std::array<std::uint8_t, kBlock> normalize_key(
    std::span<const std::uint8_t> key) {
  std::array<std::uint8_t, kBlock> key_block{};
  if (key.size() > kBlock) {
    const Sha256Digest kh = Sha256::hash(key);
    std::memcpy(key_block.data(), kh.data(), kh.size());
  } else if (!key.empty()) {
    std::memcpy(key_block.data(), key.data(), key.size());
  }
  return key_block;
}

}  // namespace

Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> message) {
  const std::array<std::uint8_t, kBlock> key_block = normalize_key(key);

  std::array<std::uint8_t, kBlock> ipad{};
  std::array<std::uint8_t, kBlock> opad{};
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const Sha256Digest inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finalize();
}

Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::string_view message) {
  return hmac_sha256(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(message.data()),
               message.size()));
}

HmacKey::HmacKey(std::span<const std::uint8_t> key) {
  const std::array<std::uint8_t, kBlock> key_block = normalize_key(key);
  std::array<std::uint8_t, kBlock> pad;
  for (std::size_t i = 0; i < kBlock; ++i) {
    pad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
  }
  inner_ = Sha256::initial_state();
  Sha256::compress(inner_, pad.data());
  for (std::size_t i = 0; i < kBlock; ++i) {
    pad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }
  outer_ = Sha256::initial_state();
  Sha256::compress(outer_, pad.data());
}

Sha256Digest HmacKey::mac(std::span<const std::uint8_t> message) const {
  // Resume from the cached midstates: the pad blocks are already absorbed,
  // so only the message itself (plus finalization) is compressed here.
  Sha256Digest inner_digest;
  if (message.size() <= 55) {
    // Per-packet fast path: every MAC the stack issues (pre-images, cookies,
    // stateless ISS) is under 56 bytes, so message + 0x80 + length pad into
    // ONE block — build it on the stack and compress directly. Exactly two
    // compressions per MAC, no incremental-hash machinery at all.
    std::uint8_t block[kBlock] = {};
    if (!message.empty()) {
      std::memcpy(block, message.data(), message.size());
    }
    block[message.size()] = 0x80;
    const std::uint64_t inner_bits = (kBlock + message.size()) * 8;
    for (int i = 0; i < 8; ++i) {
      block[56 + i] = static_cast<std::uint8_t>(inner_bits >> (56 - 8 * i));
    }
    Sha256::State inner = inner_;
    Sha256::compress(inner, block);
    inner_digest = Sha256::state_to_digest(inner);
  } else {
    Sha256 h;
    h.state_ = inner_;
    h.bit_count_ = kBlock * 8;
    h.update(message);
    inner_digest = h.finalize();
  }

  // Outer hash: midstate + 32-byte inner digest + padding — always exactly
  // one block: digest, 0x80, zeros, then the 96-byte (768-bit) total length.
  std::uint8_t block[kBlock] = {};
  std::memcpy(block, inner_digest.data(), inner_digest.size());
  block[32] = 0x80;
  constexpr std::uint64_t kOuterBits = (kBlock + kSha256DigestSize) * 8;
  for (int i = 0; i < 8; ++i) {
    block[56 + i] = static_cast<std::uint8_t>(kOuterBits >> (56 - 8 * i));
  }
  Sha256::State outer = outer_;
  Sha256::compress(outer, block);
  return Sha256::state_to_digest(outer);
}

Sha256Digest HmacKey::mac(std::string_view message) const {
  return mac(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(message.data()), message.size()));
}

}  // namespace tcpz::crypto
