#include "crypto/hmac.hpp"

#include <array>
#include <cstring>

namespace tcpz::crypto {

Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> message) {
  constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> key_block{};

  if (key.size() > kBlock) {
    const Sha256Digest kh = Sha256::hash(key);
    std::memcpy(key_block.data(), kh.data(), kh.size());
  } else {
    std::memcpy(key_block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, kBlock> ipad{};
  std::array<std::uint8_t, kBlock> opad{};
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const Sha256Digest inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finalize();
}

Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::string_view message) {
  return hmac_sha256(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(message.data()),
               message.size()));
}

}  // namespace tcpz::crypto
