#include "crypto/secret.hpp"

#include <cstdio>
#include <stdexcept>

#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace tcpz::crypto {

SecretKey SecretKey::from_seed(std::uint64_t seed) {
  // Expand the 64-bit seed through SHA-256 so structurally similar seeds do
  // not produce structurally similar keys.
  Bytes seed_bytes;
  seed_bytes.reserve(16);
  put_u64be(seed_bytes, seed);
  put_u64be(seed_bytes, seed ^ 0xa5a5a5a5a5a5a5a5ull);
  static_assert(kSha256DigestSize == kSecretKeySize);
  return SecretKey(Sha256::hash(seed_bytes));
}

SecretKey SecretKey::random() {
  std::array<std::uint8_t, kSecretKeySize> key;
  std::FILE* f = std::fopen("/dev/urandom", "rb");
  if (f == nullptr) {
    throw std::runtime_error("SecretKey::random: cannot open /dev/urandom");
  }
  const std::size_t n = std::fread(key.data(), 1, key.size(), f);
  std::fclose(f);
  if (n != key.size()) {
    throw std::runtime_error("SecretKey::random: short read from urandom");
  }
  return SecretKey(key);
}

}  // namespace tcpz::crypto
