// The unified scenario engine (see spec.hpp and engine.hpp). One code path
// builds every topology the two legacy drivers handled — single server,
// addressable multi-server group, load-balanced fleet — and runs any mix of
// attack groups against it. Construction order, agent seeding order and
// per-agent RNG use are mirrored from the legacy engines exactly: under
// SeedMode::kLegacySequential a legacy-shaped spec reproduces the
// pre-refactor traces byte-for-byte (tests/scenario_trace_test.cpp).
//
// The construction lives in Engine (engine.hpp) so the sharded driver in
// src/par/ can instantiate one engine per worker shard; scenario::run() is
// the classic whole-world single-thread entry point on top of it.
#include "scenario/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "crypto/secret.hpp"
#include "fleet/replay_cache.hpp"
#include "fleet/secret_directory.hpp"
#include "net/portal.hpp"
#include "net/topology.hpp"
#include "puzzle/engine.hpp"
#include "scenario/spec.hpp"
#include "sim/attacker_agent.hpp"
#include "sim/client_agent.hpp"
#include "sim/server_agent.hpp"
#include "workload/fluid.hpp"

namespace tcpz::scenario {
namespace {

constexpr std::uint32_t kServerAddr = addrs::kServerAddr;
constexpr std::uint16_t kServerPort = addrs::kServerPort;

std::uint32_t server_addr(int i) { return addrs::server(i); }
std::uint32_t client_addr(int i) { return addrs::client(i); }
std::uint32_t bot_addr(int i) { return addrs::bot(i); }
bool is_bot_addr(std::uint32_t addr) { return addrs::is_bot(addr); }

/// Per-agent seed assignment. Derived mode hashes a stable (role, group,
/// index) id against the spec seed; legacy mode replays the old engines'
/// shared sequential seeder stream (servers, then clients, then bots).
class SeedSource {
 public:
  enum class Role : std::uint64_t { kServer = 1, kClient = 2, kBot = 3 };

  SeedSource(SeedMode mode, std::uint64_t root)
      : mode_(mode), root_(root), seq_(root) {}

  std::uint64_t next(Role role, std::uint64_t group, std::uint64_t index) {
    if (mode_ == SeedMode::kLegacySequential) return seq_.next();
    const std::uint64_t id = (static_cast<std::uint64_t>(role) << 56) |
                             (group << 32) | index;
    return Rng::derive_seed(root_, id);
  }

 private:
  SeedMode mode_;
  std::uint64_t root_;
  Rng seq_;
};

void validate(const Spec& spec) {
  if (spec.servers.count < 1) {
    throw std::invalid_argument("scenario: servers.count must be >= 1");
  }
  const std::size_t n_policies = spec.servers.policies.size();
  if (n_policies > 1 &&
      n_policies != static_cast<std::size_t>(spec.servers.count)) {
    throw std::invalid_argument(
        "scenario: servers.policies must be empty, a single spec, or one "
        "per server");
  }
  if (!spec.events.empty() && !spec.fleet.enabled) {
    throw std::invalid_argument(
        "scenario: health events require the fleet topology");
  }
  for (const TimelineEvent& ev : spec.events) {
    if (ev.server < 0 || ev.server >= spec.servers.count) {
      throw std::invalid_argument("scenario: event references unknown server");
    }
  }
  for (const AttackSpec& a : spec.attacks) {
    if (a.count < 0) {
      throw std::invalid_argument("scenario: attack group count must be >= 0");
    }
    // An empty group never emits, so its rate is irrelevant — legacy
    // "no attack" baselines (n_bots = 0, bot_rate = 0) stay valid.
    if (a.count > 0 && a.rate <= 0.0) {
      throw std::invalid_argument("scenario: attack group rate must be > 0");
    }
  }
}

}  // namespace

std::string AttackSpec::label() const {
  // The built strategy's own name keeps distinctions the kind alone loses
  // (e.g. "conn-flood-legacy" for an unpatched stack), exactly as the
  // defense side threads policy_name() into reports.
  return name.empty() ? strategy.build()->name() : name;
}

Spec Spec::scaled() const {
  // Same rates, shorter timeline; the attack window stays shorter than the
  // default protection hold so it measures the protected steady state (see
  // sim::ScenarioConfig::scaled).
  Spec s = *this;
  s.duration = SimTime::seconds(120);
  s.attack_start = SimTime::seconds(30);
  s.attack_end = SimTime::seconds(80);
  return s;
}

defense::PolicySpec Spec::server_policy(int i) const {
  if (servers.policies.empty()) return defense::PolicySpec::puzzles();
  if (servers.policies.size() == 1) return servers.policies[0];
  return servers.policies[static_cast<std::size_t>(i)];
}

double AttackGroupReport::measured_rate(std::size_t from,
                                        std::size_t to) const {
  double sum = 0;
  for (const auto& b : bots) sum += b.attempts.mean_rate(from, to);
  return sum;
}

std::uint64_t AttackGroupReport::total_established() const {
  std::uint64_t sum = 0;
  for (const auto& b : bots) sum += b.total_established;
  return sum;
}

std::uint64_t AttackGroupReport::total_attempts() const {
  std::uint64_t sum = 0;
  for (const auto& b : bots) sum += b.total_attempts;
  return sum;
}

namespace {
/// Applies `fn` to every legitimate-population report: the discrete cohort
/// and the fluid aggregates (each of the latter stands for many users).
template <typename F>
void for_each_legit(const Result& r, F&& fn) {
  for (const auto& c : r.clients) fn(c);
  for (const auto& c : r.fluid) fn(c);
}
}  // namespace

double Result::client_rx_mbps(std::size_t from, std::size_t to) const {
  double sum = 0;
  for_each_legit(*this,
                 [&](const sim::HostReport& c) { sum += c.rx_mbps(from, to); });
  return sum;
}

double Result::client_success_ratio() const {
  std::uint64_t attempts = 0, completions = 0;
  for_each_legit(*this, [&](const sim::HostReport& c) {
    attempts += c.total_attempts;
    completions += c.total_completions;
  });
  return attempts ? static_cast<double>(completions) /
                        static_cast<double>(attempts)
                  : 0.0;
}

double Result::client_wire_success_pct(std::size_t from,
                                       std::size_t to) const {
  double attempts = 0, completions = 0, refused = 0;
  for_each_legit(*this, [&](const sim::HostReport& c) {
    for (std::size_t t = from; t < to; ++t) {
      attempts += c.attempts.total(t);
      completions += c.completions.total(t);
      refused += c.refusals.total(t);
    }
  });
  const double wire = attempts - refused;
  // Completions bin later than their attempts (solve + RTT + response), so
  // a window can complete slightly more than it started; clamp to 100.
  return wire > 0 ? std::min(100.0, 100.0 * completions / wire) : 0.0;
}

double Result::client_success_pct(std::size_t from, std::size_t to) const {
  double attempts = 0, completions = 0;
  for_each_legit(*this, [&](const sim::HostReport& c) {
    for (std::size_t t = from; t < to; ++t) {
      attempts += c.attempts.total(t);
      completions += c.completions.total(t);
    }
  });
  return attempts > 0 ? 100.0 * completions / attempts : 0.0;
}

double Result::mean_client_cpu(SimTime from, SimTime to) const {
  double sum = 0;
  for (const auto& c : clients) sum += c.cpu.mean_in(from, to);
  return clients.empty() ? 0.0 : sum / static_cast<double>(clients.size());
}

double Result::mean_bot_cpu(SimTime from, SimTime to) const {
  double sum = 0;
  std::size_t n = 0;
  for (const auto& g : groups) {
    for (const auto& b : g.bots) {
      sum += b.cpu.mean_in(from, to);
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double Result::bot_measured_rate(std::size_t from, std::size_t to) const {
  double sum = 0;
  for (const auto& g : groups) sum += g.measured_rate(from, to);
  return sum;
}

double Result::attacker_cps(std::size_t from, std::size_t to) const {
  double sum = 0;
  for (std::size_t i = 0; i < servers.size(); ++i) {
    sum += server_attacker_cps(i, from, to);
  }
  return sum;
}

double Result::server_attacker_cps(std::size_t server, std::size_t from,
                                   std::size_t to) const {
  return servers[server].established_attacker.mean_rate(from, to);
}

int n_discrete_clients(const Spec& spec) {
  const workload::ModelSpec wmodel = spec.workload.model_spec();
  return wmodel.kind == workload::ModelSpec::Kind::kHybridFluid
             ? static_cast<int>(wmodel.cohort_size())
             : spec.workload.n_clients;
}

obs::TrackNames track_names(const Spec& spec) {
  obs::TrackNames tracks;
  tracks.emplace_back(0, "infra");
  for (int i = 0; i < spec.servers.count; ++i) {
    tracks.emplace_back(
        static_cast<std::uint16_t>(1 + i),
        (spec.fleet.enabled ? "replica" : "server") + std::to_string(i));
  }
  int bot = 0;
  for (const AttackSpec& g : spec.attacks) {
    for (int i = 0; i < g.count; ++i, ++bot) {
      tracks.emplace_back(
          static_cast<std::uint16_t>(1 + spec.servers.count + bot),
          "bot" + std::to_string(bot) + ":" + g.label());
    }
  }
  return tracks;
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

struct Engine::Impl {
  // Declaration order is construction AND (reverse) destruction order: the
  // simulator outlives the topology, which outlives the agents' hosts.
  Spec spec;
  const ShardEnv* env;
  bool sharded;
  workload::ModelSpec wmodel;
  int n_discrete;

  net::Simulator sim;
  net::Topology topo{sim};
  SeedSource seeds;

  net::Router* r1 = nullptr;
  net::Router* r2 = nullptr;
  net::Router* r3 = nullptr;
  fleet::LoadBalancer* lb = nullptr;
  std::vector<net::Host*> server_hosts;  ///< nullptr slots = other shards
  std::vector<net::Host*> client_hosts;
  std::vector<net::Host*> bot_hosts;
  /// Cross-shard egress (sharded only): portals and their feeder links live
  /// outside the Topology so compute_routes never considers them.
  std::vector<std::unique_ptr<net::PortalNode>> portals;
  std::vector<std::unique_ptr<net::Link>> portal_links;

  std::optional<crypto::SecretKey> secret;
  std::shared_ptr<const puzzle::PuzzleEngine> engine;
  std::optional<fleet::SecretDirectory> directory;
  std::optional<fleet::ReplayCache> replay_cache;

  std::vector<std::unique_ptr<sim::ServerAgent>> servers;  ///< nullptr = remote
  std::vector<std::unique_ptr<sim::ClientAgent>> clients;
  std::vector<std::unique_ptr<workload::FluidPopulation>> fluids;
  std::vector<tcp::Listener*> fluid_listeners;
  std::vector<std::unique_ptr<sim::AttackerAgent>> bots;

  /// Owned model address -> the access router cross-shard injections enter
  /// at (the last contended hop — access-link queueing stays exact).
  std::unordered_map<std::uint32_t, net::Node*> inject_points;
  int n_fluid_targets = 0;
  bool finalized = false;

  [[nodiscard]] bool owns_server(int i) const {
    return !sharded ||
           env->server_owner[static_cast<std::size_t>(i)] == env->shard;
  }
  [[nodiscard]] bool owns_client(int i) const {
    return !sharded ||
           env->client_owner[static_cast<std::size_t>(i)] == env->shard;
  }
  [[nodiscard]] bool owns_bot(int i) const {
    return !sharded ||
           env->bot_owner[static_cast<std::size_t>(i)] == env->shard;
  }
  /// The fleet control plane (balancer, directory, health events) lives
  /// with server 0 — the par driver keeps a fleet's servers on one shard.
  [[nodiscard]] bool owns_infra() const { return owns_server(0); }

  Impl(const Spec& s, const ShardEnv* e)
      : spec(s),
        env(e),
        sharded(e != nullptr && e->n_shards > 1),
        wmodel(s.workload.model_spec()),
        n_discrete(n_discrete_clients(s)),
        seeds(s.seeding, s.seed) {
    validate(spec);
    if (sharded) validate_env();
    build();
  }

  void validate_env() const {
    if (spec.seeding != SeedMode::kDerivedStreams) {
      throw std::invalid_argument(
          "scenario::Engine: sharding requires SeedMode::kDerivedStreams — "
          "legacy sequential seeding depends on global construction order");
    }
    if (!env->send) {
      throw std::invalid_argument("scenario::Engine: ShardEnv::send unset");
    }
    std::size_t n_bots = 0;
    for (const AttackSpec& g : spec.attacks) {
      n_bots += static_cast<std::size_t>(g.count);
    }
    if (env->server_owner.size() !=
            static_cast<std::size_t>(spec.servers.count) ||
        env->client_owner.size() != static_cast<std::size_t>(n_discrete) ||
        env->bot_owner.size() != n_bots) {
      throw std::invalid_argument(
          "scenario::Engine: ShardEnv owner vectors mis-sized");
    }
    if (spec.fleet.enabled) {
      for (const int o : env->server_owner) {
        if (o != env->server_owner[0]) {
          throw std::invalid_argument(
              "scenario::Engine: fleet replicas must share one shard (they "
              "share a balancer, directory and replay cache)");
        }
      }
    }
  }

  void build() {
    using Role = SeedSource::Role;

    // Fig. 16: three fully connected backbone routers; the service edge
    // (server, server group, or balancer + fleet) hangs off r1. Every shard
    // carries the router triangle — local traffic uses its local replica.
    r1 = topo.add_router("r1");
    r2 = topo.add_router("r2");
    r3 = topo.add_router("r3");
    const net::LinkSpec backbone{spec.net.backbone_bps, spec.net.link_delay,
                                 4u << 20};
    topo.connect(r1, r2, backbone);
    topo.connect(r2, r3, backbone);
    topo.connect(r1, r3, backbone);

    const net::LinkSpec server_link{spec.net.server_link_bps,
                                    spec.net.link_delay, 4u << 20};
    if (spec.fleet.enabled) {
      if (owns_infra()) {
        fleet::LoadBalancerConfig lcfg;
        lcfg.vip = kServerAddr;
        lcfg.policy = spec.fleet.balance;
        lcfg.flow_idle_timeout = spec.fleet.lb_flow_idle_timeout;
        lb = static_cast<fleet::LoadBalancer*>(topo.add_node(
            std::make_unique<fleet::LoadBalancer>(sim, "lb", lcfg)));
        topo.advertise(lb, kServerAddr);
        topo.connect(lb, r1,
                     {spec.fleet.lb_uplink_bps, spec.net.link_delay, 4u << 20});
        // Replicas terminate VIP traffic directly (DSR); their hosts carry
        // the VIP address but are not advertised — the balancer owns the
        // route.
        for (int i = 0; i < spec.servers.count; ++i) {
          net::Host* h = topo.add_host("replica" + std::to_string(i),
                                       kServerAddr, /*advertise=*/false);
          auto [to_replica, from_replica] = topo.connect(lb, h, server_link);
          (void)from_replica;
          lb->add_backend(to_replica);
          server_hosts.push_back(h);
        }
      } else {
        server_hosts.assign(static_cast<std::size_t>(spec.servers.count),
                            nullptr);
      }
    } else {
      // Each server is independently addressable at 10.1.0.1+i; fleet-aware
      // strategies spread their attempts across the list.
      for (int i = 0; i < spec.servers.count; ++i) {
        if (!owns_server(i)) {
          server_hosts.push_back(nullptr);
          continue;
        }
        net::Host* h = topo.add_host(
            spec.servers.count == 1 ? "server" : "server" + std::to_string(i),
            server_addr(i));
        topo.connect(h, r1, server_link);
        server_hosts.push_back(h);
      }
    }

    // Discrete legitimate clients: all of them under the open-loop model,
    // the sampled cohort under a hybrid model (the fluid remainder never
    // gets hosts — it enters the listeners as aggregate mass).
    const net::LinkSpec host_link{spec.net.host_link_bps, spec.net.link_delay,
                                  1u << 20};
    for (int i = 0; i < n_discrete; ++i) {
      if (!owns_client(i)) {
        client_hosts.push_back(nullptr);
        continue;
      }
      net::Host* h =
          topo.add_host("client" + std::to_string(i), client_addr(i));
      topo.connect(h, i % 2 == 0 ? r2 : r3, host_link);
      client_hosts.push_back(h);
    }
    {
      int bot = 0;
      for (const AttackSpec& g : spec.attacks) {
        for (int i = 0; i < g.count; ++i, ++bot) {
          if (!owns_bot(bot)) {
            bot_hosts.push_back(nullptr);
            continue;
          }
          net::Host* h =
              topo.add_host("bot" + std::to_string(bot), bot_addr(bot));
          topo.connect(h, bot % 2 == 0 ? r3 : r2, host_link);
          bot_hosts.push_back(h);
        }
      }
    }
    topo.compute_routes();
    if (sharded) install_portals();

    // Crypto. Non-fleet: one shared oracle engine — the servers verify with
    // the same secret the oracle derives "solutions" from (DESIGN.md,
    // Substitutions). Fleet: the SecretDirectory owns secret + engine and
    // rotates them; a down-level replica simply never subscribes. Every
    // shard derives identical objects from the spec seed, so client/bot
    // shards solve against the same challenges the server shard mints.
    if (spec.fleet.enabled) {
      fleet::SecretDirectoryConfig dcfg;
      dcfg.seed = spec.seed;
      dcfg.rotation_interval = spec.fleet.rotation_interval;
      dcfg.overlap = spec.fleet.rotation_overlap;
      dcfg.engine.sol_len = spec.servers.sol_len;
      dcfg.engine.expiry_ms = spec.servers.puzzle_expiry_ms;
      directory.emplace(dcfg);
      // Replay entries die with the puzzle expiry (plus clock slack).
      replay_cache.emplace(spec.servers.puzzle_expiry_ms + 1000);
      engine = directory->current_engine();
    } else {
      secret = crypto::SecretKey::from_seed(spec.seed);
      puzzle::EngineConfig ecfg;
      ecfg.sol_len = spec.servers.sol_len;
      ecfg.expiry_ms = spec.servers.puzzle_expiry_ms;
      engine = std::make_shared<puzzle::OraclePuzzleEngine>(*secret, ecfg);
    }

    // Capacity: the fleet splits the ServerSpec pool across replicas
    // (apples-to-apples sharding) or replicates it (scale-out); standalone
    // servers always get the spec as written.
    const int div = spec.fleet.enabled && spec.fleet.divide_capacity
                        ? spec.servers.count
                        : 1;
    const bool clamp = spec.fleet.enabled;
    const int workers = std::max(1, spec.servers.n_workers / div);
    const double service_rate = spec.servers.service_rate / div;
    const std::size_t listen_backlog =
        clamp ? std::max<std::size_t>(
                    16, spec.servers.listen_backlog /
                            static_cast<std::size_t>(div))
              : spec.servers.listen_backlog;
    const std::size_t accept_backlog =
        clamp ? std::max<std::size_t>(
                    16, spec.servers.accept_backlog /
                            static_cast<std::size_t>(div))
              : spec.servers.accept_backlog;

    for (int i = 0; i < spec.servers.count; ++i) {
      if (!owns_server(i)) {
        servers.push_back(nullptr);
        continue;
      }
      const defense::PolicySpec pspec = spec.server_policy(i);
      sim::ServerAgentConfig scfg;
      scfg.listener.local_addr =
          spec.fleet.enabled ? kServerAddr : server_addr(i);
      scfg.listener.local_port = kServerPort;
      scfg.listener.listen_backlog = listen_backlog;
      scfg.listener.accept_backlog = accept_backlog;
      scfg.listener.difficulty = spec.servers.difficulty;
      scfg.listener.policy = pspec.factory();
      // Track 0 is shared infrastructure; servers take 1..count.
      scfg.listener.trace_track = static_cast<std::uint16_t>(1 + i);
      scfg.service_rate = service_rate;
      scfg.n_workers = workers;
      scfg.response_bytes = spec.workload.response_bytes;
      scfg.app_idle_timeout = spec.servers.app_idle_timeout;
      scfg.cpu = spec.servers.cpu;
      scfg.tick_interval = spec.tick_interval;
      scfg.sample_interval = spec.sample_interval;
      scfg.is_attacker = is_bot_addr;
      const bool puzzles = pspec.wants_engine();
      servers.push_back(std::make_unique<sim::ServerAgent>(
          sim, *server_hosts[static_cast<std::size_t>(i)], scfg,
          spec.fleet.enabled ? directory->current_secret() : *secret,
          seeds.next(Role::kServer, 0, static_cast<std::uint64_t>(i)),
          puzzles ? engine : nullptr));
      if (spec.fleet.enabled && puzzles) {
        directory->subscribe(&servers.back()->listener());
        if (spec.fleet.shared_replay_cache) {
          fleet::ReplayCache* rc = &*replay_cache;
          servers.back()->listener().set_replay_filter(
              [rc](const tcp::FlowKey& flow, std::uint32_t ts,
                   std::uint32_t now_ms) {
                return rc->check_and_insert(flow, ts, now_ms);
              });
        }
      }
      servers.back()->start(spec.duration);
    }
    if (spec.fleet.enabled && owns_infra()) {
      directory->start(sim, spec.duration);
      lb->start(spec.duration);
      // Health schedule (applied through the balancer's health state).
      for (const TimelineEvent& ev : spec.events) {
        fleet::LoadBalancer* b = lb;
        sim.schedule_at(ev.at,
                        [b, ev] { b->set_backend_up(ev.server, ev.up); });
      }
    }

    // Clients target the first address (the VIP / the canonical server).
    // One engine instance suffices across secret rotations: oracle
    // solutions derive from the challenge bytes alone, exactly like a real
    // brute-force solver.
    for (int i = 0; i < n_discrete; ++i) {
      if (!owns_client(i)) {
        clients.push_back(nullptr);
        continue;
      }
      sim::ClientAgentConfig ccfg;
      ccfg.model = wmodel.factory();
      ccfg.server_addr = kServerAddr;
      ccfg.server_port = kServerPort;
      ccfg.request_rate = spec.workload.request_rate;
      ccfg.request_bytes = spec.workload.request_bytes;
      ccfg.response_bytes = spec.workload.response_bytes;
      ccfg.solve_puzzles = spec.workload.solve_puzzles;
      ccfg.engine = engine;
      ccfg.cpu = spec.workload.cpu;
      if (spec.pow == PowKind::kMemoryBound) {
        ccfg.solve_ops_rate = spec.workload.cpu.mem_rate;
      }
      ccfg.max_pending_solves = spec.workload.max_pending_solves;
      ccfg.response_timeout = spec.workload.response_timeout;
      ccfg.tick_interval = spec.tick_interval;
      ccfg.sample_interval = spec.sample_interval;
      clients.push_back(std::make_unique<sim::ClientAgent>(
          sim, *client_hosts[static_cast<std::size_t>(i)], ccfg,
          seeds.next(Role::kClient, 0, static_cast<std::uint64_t>(i))));
      clients.back()->start(spec.duration);
    }

    // Hybrid fluid remainder: the users beyond the sampled cohort enter the
    // listeners as aggregate mass, one population per server that takes
    // legitimate traffic (the fleet's balancer spreads clients across
    // replicas; addressable groups send them all to the canonical first
    // server, and the fluid mass follows suit). Deterministic — no hosts,
    // no packets, no RNG draws — so adding fluid users never perturbs any
    // discrete agent's stream. Populations are co-located with the server
    // shard (they feed listeners directly, no links involved).
    if (wmodel.kind == workload::ModelSpec::Kind::kHybridFluid &&
        wmodel.fluid_users() > 0) {
      const int n_targets = spec.fleet.enabled ? spec.servers.count : 1;
      n_fluid_targets = n_targets;
      const double per_users = static_cast<double>(wmodel.fluid_users()) /
                               static_cast<double>(n_targets);
      const double cohort_per =
          static_cast<double>(n_discrete) / static_cast<double>(n_targets);
      const double service_share = spec.servers.service_rate /
                                   static_cast<double>(div);
      for (int i = 0; i < n_targets; ++i) {
        if (!owns_server(i)) continue;
        workload::FluidConfig fc;
        fc.users = per_users;
        fc.request_rate = wmodel.request_rate;
        fc.request_bytes = wmodel.request_bytes;
        fc.response_bytes = wmodel.response_bytes;
        fc.solve_puzzles = spec.workload.solve_puzzles;
        fc.hash_rate = spec.workload.cpu.hash_rate;
        fc.solver_lanes = spec.workload.cpu.solver_lanes;
        fc.cores = spec.workload.cpu.cores;
        fc.max_pending_solves = wmodel.max_pending_solves;
        // Proportional share of the replica's drain rate between the fluid
        // mass and the discrete cohort aimed at the same listener.
        fc.service_rate = service_share * per_users /
                          std::max(1.0, per_users + cohort_per);
        fc.response_timeout = spec.workload.response_timeout;
        fluids.push_back(std::make_unique<workload::FluidPopulation>(
            fc, spec.servers.difficulty));
        fluid_listeners.push_back(
            &servers[static_cast<std::size_t>(i)]->listener());
      }
      // The tick/sample drivers, scheduled up front (bounded by duration, a
      // few thousand events). Steps run after the agents' own tick loops at
      // equal timestamps only by schedule order — deterministic either way.
      if (!fluids.empty()) {
        auto* fl = &fluids;
        auto* ls = &fluid_listeners;
        const SimTime dt = spec.tick_interval;
        for (SimTime t = dt; t <= spec.duration; t += dt) {
          sim.schedule_at(t, [fl, ls, t, dt] {
            for (std::size_t i = 0; i < fl->size(); ++i) {
              (*fl)[i]->step(t, dt, *(*ls)[i]);
            }
          });
        }
        for (SimTime t = spec.sample_interval; t <= spec.duration;
             t += spec.sample_interval) {
          sim.schedule_at(t, [fl, t] {
            for (auto& f : *fl) f->sample(t);
          });
        }
      }
    }

    // Bots, one agent per group member. Every bot gets the full target
    // list; which target a given slot aims at is the strategy's call.
    std::vector<sim::AttackTarget> targets;
    if (spec.fleet.enabled) {
      targets.push_back({kServerAddr, kServerPort});
    } else {
      for (int i = 0; i < spec.servers.count; ++i) {
        targets.push_back({server_addr(i), kServerPort});
      }
    }
    {
      std::size_t host_idx = 0;
      std::uint64_t group_idx = 0;
      for (const AttackSpec& g : spec.attacks) {
        offense::StrategySpec sspec = g.strategy;
        sspec.slot_rate = g.rate;  // lets game-adaptive convert rates to odds
        for (int i = 0; i < g.count; ++i, ++host_idx) {
          if (!owns_bot(static_cast<int>(host_idx))) {
            bots.push_back(nullptr);
            continue;
          }
          sim::AttackerAgentConfig acfg;
          acfg.targets = targets;
          acfg.strategy = sspec.factory();
          acfg.rate = g.rate;
          acfg.attack_start = g.start.value_or(spec.attack_start);
          acfg.attack_end = g.end.value_or(spec.attack_end);
          acfg.engine = engine;
          acfg.cpu = g.cpu;
          if (spec.pow == PowKind::kMemoryBound) {
            acfg.solve_ops_rate = g.cpu.mem_rate;
          }
          acfg.max_pending_solves = g.max_pending_solves;
          acfg.max_inflight = g.max_inflight;
          acfg.tick_interval = spec.tick_interval;
          acfg.sample_interval = spec.sample_interval;
          // Bots take tracks above the server range, flat in group order.
          acfg.trace_track = static_cast<std::uint16_t>(
              1 + spec.servers.count + static_cast<int>(host_idx));
          bots.push_back(std::make_unique<sim::AttackerAgent>(
              sim, *bot_hosts[host_idx], acfg,
              seeds.next(Role::kBot, group_idx,
                         static_cast<std::uint64_t>(i))));
          bots.back()->start(spec.duration);
        }
        ++group_idx;
      }
    }

    // Cross-shard injections enter at the destination's access router, so
    // the access link (the dominant queueing direction under flood) keeps
    // exact contention.
    if (sharded) {
      if (spec.fleet.enabled) {
        if (owns_infra()) inject_points[kServerAddr] = r1;
      } else {
        for (int i = 0; i < spec.servers.count; ++i) {
          if (owns_server(i)) inject_points[server_addr(i)] = r1;
        }
      }
      for (int i = 0; i < n_discrete; ++i) {
        if (owns_client(i)) {
          inject_points[client_addr(i)] = i % 2 == 0 ? r2 : r3;
        }
      }
      for (std::size_t j = 0; j < env->bot_owner.size(); ++j) {
        if (owns_bot(static_cast<int>(j))) {
          inject_points[bot_addr(static_cast<int>(j))] =
              j % 2 == 0 ? r3 : r2;
        }
      }
    }
  }

  /// Routes for remote addresses point at per-egress portals: captured one
  /// propagation hop early, serialized at the real egress link's bandwidth
  /// (the portal link), stamped `now + extra` for the remaining hops.
  void install_portals() {
    std::vector<std::uint32_t> remote;
    if (spec.fleet.enabled) {
      if (!owns_infra()) remote.push_back(kServerAddr);
    } else {
      for (int i = 0; i < spec.servers.count; ++i) {
        if (!owns_server(i)) remote.push_back(server_addr(i));
      }
    }
    for (int i = 0; i < n_discrete; ++i) {
      if (!owns_client(i)) remote.push_back(client_addr(i));
    }
    for (std::size_t j = 0; j < env->bot_owner.size(); ++j) {
      if (!owns_bot(static_cast<int>(j))) {
        remote.push_back(bot_addr(static_cast<int>(j)));
      }
    }
    if (remote.empty()) return;

    const SimTime L = spec.net.link_delay;
    const auto attach = [this](net::Node* at, double bw,
                               SimTime extra) -> net::Link* {
      auto portal = std::make_unique<net::PortalNode>(
          sim, at->name() + ":portal", extra,
          [this](SimTime t, const tcp::Segment& seg) { env->send(t, seg); });
      auto link =
          std::make_unique<net::Link>(sim, *portal, bw, SimTime::zero(),
                                      4u << 20, at->name() + "->portal");
      net::Link* l = link.get();
      portals.push_back(std::move(portal));
      portal_links.push_back(std::move(link));
      return l;
    };
    struct Egress {
      net::Node* node;
      net::Link* link;
    };
    std::vector<Egress> egress;
    // From an access router the remaining path is one backbone hop
    // (propagation L, serialized at backbone bandwidth).
    for (net::Router* r : {r1, r2, r3}) {
      egress.push_back({r, attach(r, spec.net.backbone_bps, L)});
    }
    // DSR replies leave the balancer two propagation hops from any remote
    // edge (uplink + backbone), serialized at the uplink's bandwidth.
    if (lb != nullptr) {
      egress.push_back({lb, attach(lb, spec.fleet.lb_uplink_bps, L + L)});
    }
    for (const Egress& e : egress) {
      for (const std::uint32_t addr : remote) e.node->add_route(addr, e.link);
    }
  }

  Result collect() {
    if (!finalized) {
      finalized = true;
      if (spec.fleet.enabled && owns_infra()) {
        // Deschedule the periodic control-plane timers (idle sweep,
        // rotation) instead of leaving beyond-horizon tombstones.
        lb->stop();
        directory->stop(sim);
      }
    }

    Result result;
    for (int i = 0; i < spec.servers.count; ++i) {
      auto& slot = servers[static_cast<std::size_t>(i)];
      if (slot == nullptr) {
        result.servers.emplace_back();
        continue;
      }
      auto& agent = *slot;
      sim::ServerReport report = std::move(agent.report());
      report.counters = agent.listener().counters();
      report.policy = agent.listener().policy_name();
      report.final_difficulty_m = agent.listener().config().difficulty.m;
      result.cluster += report.counters;
      result.servers.push_back(std::move(report));
      if (lb != nullptr) result.lb.backends.push_back(lb->stats(i));
    }
    if (lb != nullptr) {
      result.lb.no_backend_drops = lb->no_backend_drops();
      result.lb.failover_evictions = lb->failover_evictions();
    }
    for (auto& c : clients) {
      if (c == nullptr) {
        result.clients.emplace_back();
      } else {
        result.clients.push_back(std::move(c->report()));
      }
    }
    if (!fluids.empty()) {
      for (auto& f : fluids) result.fluid.push_back(std::move(f->report()));
    } else if (n_fluid_targets > 0) {
      // Another shard owns the populations; keep the global shape.
      result.fluid.resize(static_cast<std::size_t>(n_fluid_targets));
    }
    if (wmodel.kind == workload::ModelSpec::Kind::kHybridFluid) {
      result.fluid_users = wmodel.fluid_users();
    }
    {
      std::size_t bot = 0;
      for (const AttackSpec& g : spec.attacks) {
        AttackGroupReport group;
        group.name = g.label();
        for (int i = 0; i < g.count; ++i, ++bot) {
          if (bots[bot] == nullptr) {
            group.bots.emplace_back();
          } else {
            group.bots.push_back(std::move(bots[bot]->report()));
          }
        }
        result.groups.push_back(std::move(group));
      }
    }
    if (directory) result.secret_rotations = directory->rotations();
    if (replay_cache) result.replay_cache_hits = replay_cache->hits();
    result.events_processed = sim.events_processed();
    return result;
  }
};

Engine::Engine(const Spec& spec, const ShardEnv* env)
    : impl_(std::make_unique<Impl>(spec, env)) {}

Engine::~Engine() = default;

void Engine::run_until(SimTime t) { impl_->sim.run_until(t); }

void Engine::inject(SimTime at, const tcp::Segment& seg) {
  const auto it = impl_->inject_points.find(seg.daddr);
  if (it == impl_->inject_points.end()) {
    throw std::logic_error(
        "scenario::Engine::inject: destination not owned by this shard");
  }
  net::Node* node = it->second;
  impl_->sim.schedule_at(at, [node, seg] { node->deliver(seg); });
}

SimTime Engine::lookahead() const {
  // Every path between agents on different shards traverses at least one
  // link of propagation delay `net.link_delay` beyond its capture point
  // (all LinkSpecs in build() use it), so that is the conservative bound.
  return impl_->spec.net.link_delay;
}

Result Engine::collect() { return impl_->collect(); }

Result run(const Spec& spec) {
  const auto wall_start = std::chrono::steady_clock::now();

  // Flight recorder, if requested. Installed for the whole run (RAII so it
  // can never leak into the next scenario in-process); with obs.trace unset
  // nothing is installed and every tracepoint stays a not-taken branch.
  std::shared_ptr<obs::Recorder> recorder;
  std::optional<obs::ScopedRecorder> scoped_recorder;
  if (spec.obs.trace) {
    recorder = std::make_shared<obs::Recorder>(spec.obs.ring_capacity,
                                               spec.obs.categories);
    scoped_recorder.emplace(recorder.get());
  }

  Engine engine(spec);
  engine.run_until(spec.duration);
  Result result = engine.collect();

  if (recorder) {
    result.tracks = track_names(spec);
    if (!spec.obs.chrome_trace_path.empty()) {
      obs::write_chrome_trace(*recorder, result.tracks,
                              spec.obs.chrome_trace_path);
    }
    if (!spec.obs.flows_path.empty()) {
      if (std::FILE* f = std::fopen(spec.obs.flows_path.c_str(), "w")) {
        obs::write_flows(f, obs::reconstruct_flows(*recorder));
        std::fclose(f);
      }
    }
    result.trace = std::move(recorder);
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

}  // namespace tcpz::scenario
