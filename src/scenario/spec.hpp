// The unified declarative scenario engine.
//
// A scenario::Spec is a complete, value-type description of one experiment:
// topology (one server, an addressable multi-server group, or a
// load-balanced fleet sharing a rotating secret), the legitimate workload,
// any number of attack groups (each with its own offense::StrategySpec,
// emission rate, CpuSpec and attack window — heterogeneous botnets are just
// a vector), per-server defense::PolicySpecs, and a timeline of replica
// health events. scenario::run() executes it on the Fig. 16 network and
// returns every metric the paper's figures need.
//
// This engine subsumes the two near-duplicate drivers that grew side by
// side (sim::run_scenario and fleet::run_fleet_scenario); both survive only
// as thin shims that translate their legacy config structs into a Spec.
// The shims request SeedMode::kLegacySequential, which reproduces the old
// engines' agent seeding draw-for-draw — fixed-seed legacy scenarios are
// byte-for-byte identical to the pre-refactor implementation (pinned by
// tests/scenario_trace_test.cpp). Native specs default to
// SeedMode::kDerivedStreams: every agent's RNG derives via
// Rng::derive_seed from (spec seed, agent id) where the id packs (role,
// group position, index), so growing a group or appending a new one never
// perturbs any existing agent's stream. (Group ids are positional:
// removing or reordering *earlier* groups renumbers the later ones — and
// shifts their bots' 10.3.0.x addresses — so only append-style edits are
// trace-neutral.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "defense/spec.hpp"
#include "fleet/load_balancer.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "offense/spec.hpp"
#include "puzzle/types.hpp"
#include "sim/cpu.hpp"
#include "sim/metrics.hpp"
#include "tcp/counters.hpp"
#include "util/time.hpp"
#include "workload/profiles.hpp"
#include "workload/spec.hpp"

namespace tcpz::scenario {

/// Which resource the puzzle burns: CPU hashing (the paper's scheme) or
/// random memory accesses (§7's Abadi-style alternative — memory latency is
/// far more uniform across device classes than compute throughput).
enum class PowKind : std::uint8_t { kCpuBound, kMemoryBound };

/// How per-agent RNG streams are seeded (see the header comment).
enum class SeedMode : std::uint8_t { kDerivedStreams, kLegacySequential };

/// The Fig. 16 network: three fully connected backbone routers, the
/// server(s) behind r1, clients and bots split across r2/r3.
struct NetworkSpec {
  double backbone_bps = 1e9;
  double server_link_bps = 1e9;
  double host_link_bps = 100e6;
  SimTime link_delay = SimTime::microseconds(500);
};

/// Legitimate workload (§6 defaults; response size chosen to reproduce the
/// ~16 Mbps/client nominal throughput of Figs. 7-8).
struct WorkloadSpec {
  int n_clients = 15;
  double request_rate = workload::profiles::kRequestRate;
  std::uint32_t request_bytes = workload::profiles::kRequestBytes;
  std::uint32_t response_bytes = workload::profiles::kResponseBytes;
  bool solve_puzzles = true;
  sim::CpuSpec cpu = workload::profiles::client_cpu();
  int max_pending_solves = workload::profiles::kMaxPendingSolves;
  SimTime response_timeout = SimTime::seconds(10);
  /// The workload model. Unset = the flat knobs above shimmed through
  /// workload::ModelSpec::from_legacy (open-loop Poisson, byte-identical
  /// traces). Set to ModelSpec::hybrid(users, cohort_ratio) for the fluid +
  /// sampled-cohort population: `n_clients` is then ignored — the engine
  /// instantiates model->cohort_size() discrete agents and aggregates
  /// model->fluid_users() as fluid mass per server.
  std::optional<workload::ModelSpec> model;

  /// The effective model spec (resolves the legacy shim).
  [[nodiscard]] workload::ModelSpec model_spec() const {
    if (model) return *model;
    return workload::ModelSpec::from_legacy(request_rate, request_bytes,
                                            response_bytes,
                                            max_pending_solves);
  }
};

/// One homogeneous group of bots. A mixed heterogeneous botnet — IoT-class
/// solvers next to Xeon-class spray bots, say — is a vector of these.
struct AttackSpec {
  /// Label for per-group reporting; defaults to the strategy kind's name.
  std::string name;
  int count = 10;
  double rate = 500.0;  ///< per-bot emission slots per second
  offense::StrategySpec strategy = offense::StrategySpec::conn_flood();
  sim::CpuSpec cpu{351'575.0, 2, 1};
  int max_pending_solves = 6;
  int max_inflight = 250;
  /// Per-group attack window; defaults to the spec-level window (staggered
  /// or rolling multi-wave attacks set these explicitly).
  std::optional<SimTime> start;
  std::optional<SimTime> end;

  [[nodiscard]] std::string label() const;
};

/// The protected service: one server, `count` independently addressable
/// servers (10.1.0.1+i — the multi-target strategies spread across them),
/// or a fleet behind an L4 balancer when FleetSpec::enabled.
struct ServerSpec {
  int count = 1;
  /// Defense per server: empty = opportunistic puzzles everywhere; one
  /// entry = that policy everywhere; otherwise exactly one per server.
  std::vector<defense::PolicySpec> policies;
  puzzle::Difficulty difficulty{2, 17};  ///< the Nash difficulty of §4.4
  /// Linux-style asymmetry: a large SYN backlog and a smaller accept
  /// backlog (see sim::ScenarioConfig for the Fig. 11 reading).
  std::size_t listen_backlog = 4096;
  std::size_t accept_backlog = 1024;
  /// µ from the Fig. 3b stress test.
  double service_rate = workload::profiles::kServiceRateMu;
  int n_workers = 1024;
  sim::CpuSpec cpu = workload::profiles::server_cpu();
  SimTime app_idle_timeout = SimTime::seconds(5);
  std::uint32_t puzzle_expiry_ms = 4000;
  std::uint8_t sol_len = 4;
};

/// Load-balanced fleet topology: replicas share (and rotate) the puzzle
/// secret through a SecretDirectory behind a DSR-style L4 balancer.
struct FleetSpec {
  bool enabled = false;
  fleet::BalancePolicy balance = fleet::BalancePolicy::kFiveTupleHash;
  /// Secret rotation cadence; zero keeps the paper's static secret.
  SimTime rotation_interval = SimTime::zero();
  SimTime rotation_overlap = SimTime::seconds(8);
  bool shared_replay_cache = true;
  /// Split the server capacity across replicas (apples-to-apples sharding)
  /// or give every replica the full ServerSpec capacity (scale-out).
  bool divide_capacity = true;
  double lb_uplink_bps = 10e9;
  SimTime lb_flow_idle_timeout = SimTime::seconds(30);
};

/// Flight-recorder configuration (src/obs/). Off by default — with no
/// recorder installed every TCPZ_TRACE site is one predictable branch, so
/// untraced runs keep the PR 4 zero-allocation and golden-trace guarantees
/// byte-for-byte. Traced runs stay deterministic: events carry sim time and
/// seed-derived payloads only, so the trace digest is pinned per seed.
struct ObsSpec {
  bool trace = false;  ///< install a Recorder for the run
  /// Ring capacity in events (rounded up to a power of two); the last N
  /// decisions survive no matter how long the run is.
  std::size_t ring_capacity = 1u << 16;
  /// Category mask (obs::cat_bit). kEvent and kLink are the high-volume
  /// tiers — mask them off to keep decision-level events from wrapping away.
  std::uint32_t categories = obs::kAllCategories;
  /// Chrome trace_event JSON export (Perfetto-loadable); empty = none.
  std::string chrome_trace_path;
  /// Per-flow lifecycle dump (SYN -> ... -> outcome chains); empty = none.
  std::string flows_path;
};

/// A server health transition at a point in simulated time (fleet only; a
/// down replica is partitioned at the balancer, not rebooted).
struct TimelineEvent {
  SimTime at;
  int server = 0;
  bool up = false;
};

struct Spec {
  std::uint64_t seed = 42;
  SeedMode seeding = SeedMode::kDerivedStreams;

  // Timeline.
  SimTime duration = SimTime::seconds(600);
  SimTime attack_start = SimTime::seconds(120);
  SimTime attack_end = SimTime::seconds(480);

  NetworkSpec net;
  WorkloadSpec workload;
  ServerSpec servers;
  FleetSpec fleet;
  std::vector<AttackSpec> attacks;
  std::vector<TimelineEvent> events;

  PowKind pow = PowKind::kCpuBound;
  SimTime tick_interval = SimTime::milliseconds(100);
  SimTime sample_interval = SimTime::milliseconds(250);
  ObsSpec obs;

  /// Same rates and shapes on a short timeline: 120 s run, attack 30-80 s —
  /// kept shorter than the default protection hold (see
  /// sim::ScenarioConfig::scaled).
  [[nodiscard]] Spec scaled() const;

  /// The defense spec server i runs (resolves the policies vector rules).
  [[nodiscard]] defense::PolicySpec server_policy(int i) const;

  [[nodiscard]] std::size_t attack_start_bin() const {
    return static_cast<std::size_t>(attack_start.nanos() / 1'000'000'000);
  }
  [[nodiscard]] std::size_t attack_end_bin() const {
    return static_cast<std::size_t>(attack_end.nanos() / 1'000'000'000);
  }
  [[nodiscard]] std::size_t duration_bins() const {
    return static_cast<std::size_t>(duration.nanos() / 1'000'000'000);
  }
};

/// Balancer-side statistics (zeroed for non-fleet topologies).
struct LbReport {
  std::vector<fleet::BackendStats> backends;
  std::uint64_t no_backend_drops = 0;
  /// Tracked flows evicted by backend failures.
  std::uint64_t failover_evictions = 0;
};

/// One attack group's per-bot reports, in spec order.
struct AttackGroupReport {
  std::string name;
  std::vector<sim::HostReport> bots;

  /// Attack rate actually emitted by this group (Figs. 13a/14a).
  [[nodiscard]] double measured_rate(std::size_t from, std::size_t to) const;
  [[nodiscard]] std::uint64_t total_established() const;
  [[nodiscard]] std::uint64_t total_attempts() const;
};

struct Result {
  std::vector<sim::ServerReport> servers;
  std::vector<sim::HostReport> clients;
  /// Aggregate fluid-population reports (hybrid workloads only): one per
  /// server carrying fluid mass, with series/totals scaled in whole users.
  /// The client_* aggregates below fold these in next to the discrete
  /// cohort; mean_client_cpu stays cohort-only (a population gauge is an
  /// N-user average, not comparable to a single host's).
  std::vector<sim::HostReport> fluid;
  /// Users modeled as fluid mass (0 for pure-discrete workloads).
  std::uint64_t fluid_users = 0;
  std::vector<AttackGroupReport> groups;
  LbReport lb;
  tcp::ListenerCounters cluster;  ///< summed over servers
  std::uint64_t secret_rotations = 0;
  std::uint64_t replay_cache_hits = 0;
  std::uint64_t events_processed = 0;
  double wall_seconds = 0;
  /// The flight recorder, when ObsSpec::trace was set (shared_ptr keeps
  /// Result copyable); `tracks` names the export tracks (0 = infra, then
  /// one per server, then one per bot).
  std::shared_ptr<obs::Recorder> trace;
  obs::TrackNames tracks;

  /// The single protected server of the classic §6 scenarios.
  [[nodiscard]] const sim::ServerReport& server() const { return servers[0]; }

  // Aggregates over all clients.
  [[nodiscard]] double client_rx_mbps(std::size_t from, std::size_t to) const;
  [[nodiscard]] double client_success_ratio() const;
  /// Percentage of client wire attempts in bins [from, to) that completed a
  /// request, excluding attempts the local solver refused before any packet
  /// was sent — the paper's "% of connections established" (Figs. 13b, 15).
  [[nodiscard]] double client_wire_success_pct(std::size_t from,
                                               std::size_t to) const;
  /// Same without the refusal exclusion (raw completions / attempts).
  [[nodiscard]] double client_success_pct(std::size_t from,
                                          std::size_t to) const;
  [[nodiscard]] double mean_client_cpu(SimTime from, SimTime to) const;

  // Aggregates over all bots.
  [[nodiscard]] double mean_bot_cpu(SimTime from, SimTime to) const;
  /// Attacker SYN/attempt rate actually emitted, summed over every group.
  [[nodiscard]] double bot_measured_rate(std::size_t from,
                                         std::size_t to) const;

  /// Flood leakage: attacker connections established per second over bins
  /// [from, to), cluster-wide / per server.
  [[nodiscard]] double attacker_cps(std::size_t from, std::size_t to) const;
  [[nodiscard]] double server_attacker_cps(std::size_t server,
                                           std::size_t from,
                                           std::size_t to) const;
};

[[nodiscard]] Result run(const Spec& spec);

}  // namespace tcpz::scenario
