// The scenario engine behind scenario::run(), exposed as a class so the
// sharded driver (src/par/) can build one engine per worker shard and step
// them in bounded-lookahead rounds.
//
// An Engine owns one net::Simulator plus the slice of the Fig. 16 world a
// shard is responsible for. With no ShardEnv (or n_shards == 1) it builds
// the whole scenario and is byte-identical to the historical single-thread
// scenario::run() — construction order, seeding order and per-agent RNG use
// are exactly the legacy sequence (pinned by tests/scenario_trace_test.cpp).
//
// With a ShardEnv, only the agents the env assigns to this shard are
// instantiated (plus the backbone-router skeleton every shard shares), and
// routes for remote addresses point at net::PortalNode egress portals: a
// segment bound for another shard is captured one propagation hop early,
// stamped with its analytic arrival time (see portal.hpp for the lookahead
// invariant), and handed to env.send. The par driver moves it across the
// round barrier and the owning shard re-injects it with inject() at its
// destination's access router — so the destination's access link keeps its
// full contention, which is the queueing direction that matters under flood.
#pragma once

#include <functional>
#include <memory>

#include "obs/export.hpp"
#include "scenario/spec.hpp"
#include "tcp/segment.hpp"

namespace tcpz::scenario {

/// Shard assignment handed to an Engine by the par driver. Owner vectors
/// are indexed by the agent's global index (bots flat in group order) and
/// must be identical on every shard — each engine derives both its own
/// agent set and the remote-address portal routes from them.
struct ShardEnv {
  int shard = 0;
  int n_shards = 1;
  std::vector<int> server_owner;  ///< size servers.count; fleet: all equal
  std::vector<int> client_owner;  ///< size n_discrete_clients(spec)
  std::vector<int> bot_owner;     ///< flat bot index, group order
  /// Receives (inject_time, segment) for cross-shard traffic captured by
  /// this shard's portals, on this shard's thread, during its round.
  std::function<void(SimTime, const tcp::Segment&)> send;
};

class Engine {
 public:
  /// env == nullptr (or env->n_shards == 1) builds the full scenario.
  /// Construction also starts every owned agent; the caller advances time
  /// with run_until. A recorder installed on the constructing thread (see
  /// obs/trace.hpp) witnesses construction-time trace events too, exactly
  /// like the historical run().
  explicit Engine(const Spec& spec, const ShardEnv* env = nullptr);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Advances simulated time, processing every event with at <= t
  /// (inclusive, like net::Simulator::run_until).
  void run_until(SimTime t);

  /// Schedules a cross-shard segment for delivery at its destination's
  /// access router at time `at` (must be in this shard's future — the
  /// lookahead invariant guarantees it for barrier-drained messages).
  void inject(SimTime at, const tcp::Segment& seg);

  /// The conservative synchronization horizon this scenario supports: the
  /// minimum delay of any link cross-shard traffic traverses. Every
  /// cross-agent interaction flows through at least one such hop, so each
  /// shard may run `lookahead()` ahead of the others risk-free.
  [[nodiscard]] SimTime lookahead() const;

  /// Stops fleet control-plane timers and gathers reports. Vectors in the
  /// Result are full-size (global shape); slots owned by other shards are
  /// default-constructed — the par driver merges per-slot. Trace, tracks
  /// and wall_seconds are the caller's job (scenario::run / par::run).
  [[nodiscard]] Result collect();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Number of discrete client hosts a spec instantiates (the sampled cohort
/// under a hybrid model, n_clients otherwise).
[[nodiscard]] int n_discrete_clients(const Spec& spec);

/// The export track-naming table for a spec (0 = infra, 1..count = servers,
/// then one per bot flat in group order) — shared by scenario::run and the
/// par driver's post-merge export.
[[nodiscard]] obs::TrackNames track_names(const Spec& spec);

/// Model address plan (shared with src/par/ for owner lookups).
namespace addrs {
inline constexpr std::uint32_t kServerAddr = tcp::ipv4(10, 1, 0, 1);
inline constexpr std::uint16_t kServerPort = 80;
[[nodiscard]] inline std::uint32_t server(int i) {
  return kServerAddr + static_cast<std::uint32_t>(i);
}
[[nodiscard]] inline std::uint32_t client(int i) {
  return tcp::ipv4(10, 2, 0, 1) + static_cast<std::uint32_t>(i);
}
[[nodiscard]] inline std::uint32_t bot(int i) {
  return tcp::ipv4(10, 3, 0, 1) + static_cast<std::uint32_t>(i);
}
[[nodiscard]] inline bool is_bot(std::uint32_t addr) {
  return (addr & 0xffff0000u) == tcp::ipv4(10, 3, 0, 0);
}
}  // namespace addrs

}  // namespace tcpz::scenario
