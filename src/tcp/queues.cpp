#include "tcp/queues.hpp"

namespace tcpz::tcp {

bool ListenQueue::insert(const HalfOpenEntry& entry) {
  if (full()) return false;
  return entries_.emplace(entry.flow, entry).second;
}

HalfOpenEntry* ListenQueue::find(const FlowKey& flow) {
  const auto it = entries_.find(flow);
  return it == entries_.end() ? nullptr : &it->second;
}

void ListenQueue::erase(const FlowKey& flow) { entries_.erase(flow); }

bool AcceptQueue::push(const AcceptedConnection& conn) {
  if (full()) return false;
  queue_.push_back(conn);
  members_.insert(conn.flow);
  return true;
}

std::optional<AcceptedConnection> AcceptQueue::pop() {
  if (queue_.empty()) return std::nullopt;
  AcceptedConnection front = queue_.front();
  queue_.pop_front();
  members_.erase(front.flow);
  return front;
}

}  // namespace tcpz::tcp
