#include "tcp/wire_format.hpp"

#include <stdexcept>

namespace tcpz::tcp {

// -- option codec -------------------------------------------------------------

namespace {

void append_challenge(Bytes& out, const ChallengeOption& c) {
  const std::size_t body =
      3 + (c.embedded_ts ? 4 : 0) + c.preimage.size();  // k, m, l [+T] + P
  const std::size_t len = 2 + body;
  if (len > 255) throw std::length_error("challenge option too long");
  out.push_back(kOptChallenge);
  out.push_back(static_cast<std::uint8_t>(len));
  out.push_back(c.k);
  out.push_back(c.m);
  out.push_back(c.sol_len);
  if (c.embedded_ts) put_u32be(out, *c.embedded_ts);
  out.insert(out.end(), c.preimage.begin(), c.preimage.end());
}

void append_solution(Bytes& out, const SolutionOption& s) {
  const std::size_t body = 3 + (s.embedded_ts ? 4 : 0) + s.solutions.size();
  const std::size_t len = 2 + body;
  if (len > 255) throw std::length_error("solution option too long");
  out.push_back(kOptSolution);
  out.push_back(static_cast<std::uint8_t>(len));
  put_u16be(out, s.mss);
  out.push_back(s.wscale);
  if (s.embedded_ts) put_u32be(out, *s.embedded_ts);
  out.insert(out.end(), s.solutions.begin(), s.solutions.end());
}

}  // namespace

Bytes encode_options(const Options& opts) {
  Bytes out;
  if (opts.mss) {
    out.push_back(kOptMss);
    out.push_back(4);
    put_u16be(out, *opts.mss);
  }
  if (opts.wscale) {
    out.push_back(kOptWscale);
    out.push_back(3);
    out.push_back(*opts.wscale);
  }
  if (opts.sack_permitted) {
    out.push_back(kOptSackPerm);
    out.push_back(2);
  }
  if (opts.ts) {
    out.push_back(kOptTimestamps);
    out.push_back(10);
    put_u32be(out, opts.ts->tsval);
    put_u32be(out, opts.ts->tsecr);
  }
  if (opts.challenge) append_challenge(out, *opts.challenge);
  if (opts.solution) append_solution(out, *opts.solution);

  while (out.size() % 4 != 0) out.push_back(kOptNop);
  if (out.size() > kMaxOptionsBytes) {
    throw std::length_error("TCP options exceed 40 bytes");
  }
  return out;
}

DecodeResult decode_options(std::span<const std::uint8_t> wire, Options& out) {
  out = Options{};
  if (wire.size() > kMaxOptionsBytes) return DecodeResult::kTooLong;

  std::size_t i = 0;
  while (i < wire.size()) {
    const std::uint8_t kind = wire[i];
    if (kind == kOptEnd) break;
    if (kind == kOptNop) {
      ++i;
      continue;
    }
    if (i + 1 >= wire.size()) return DecodeResult::kTruncated;
    const std::uint8_t len = wire[i + 1];
    if (len < 2 || i + len > wire.size()) return DecodeResult::kBadLength;
    const std::span<const std::uint8_t> body = wire.subspan(i + 2, len - 2);

    switch (kind) {
      case kOptMss: {
        std::uint16_t v;
        if (len != 4 || !get_u16be(body, 0, v)) return DecodeResult::kBadLength;
        out.mss = v;
        break;
      }
      case kOptWscale: {
        if (len != 3) return DecodeResult::kBadLength;
        out.wscale = body[0];
        break;
      }
      case kOptSackPerm: {
        if (len != 2) return DecodeResult::kBadLength;
        out.sack_permitted = true;
        break;
      }
      case kOptTimestamps: {
        std::uint32_t tsval, tsecr;
        if (len != 10 || !get_u32be(body, 0, tsval) || !get_u32be(body, 4, tsecr)) {
          return DecodeResult::kBadLength;
        }
        out.ts = TimestampsOption{tsval, tsecr};
        break;
      }
      case kOptChallenge: {
        if (body.size() < 3) return DecodeResult::kBadLength;
        ChallengeOption c;
        c.k = body[0];
        c.m = body[1];
        c.sol_len = body[2];
        // A declared pre-image longer than the engine bound cannot be a
        // legal challenge; reject before the inline buffer would throw. A
        // zero-length pre-image cannot anchor the m-bit condition either —
        // kBadLength instead of handing an empty challenge to the solver.
        if (c.sol_len == 0 || c.sol_len > kMaxPreimageBytes) {
          return DecodeResult::kBadLength;
        }
        std::size_t off = 3;
        const std::size_t rest = body.size() - off;
        if (rest == c.sol_len) {
          // no embedded timestamp
        } else if (rest == static_cast<std::size_t>(c.sol_len) + 4) {
          std::uint32_t ts;
          if (!get_u32be(body, off, ts)) return DecodeResult::kBadLength;
          c.embedded_ts = ts;
          off += 4;
        } else {
          return DecodeResult::kBadLength;
        }
        c.preimage.assign(body.begin() + static_cast<long>(off), body.end());
        out.challenge = std::move(c);
        break;
      }
      case kOptSolution: {
        if (body.size() < 3) return DecodeResult::kBadLength;
        SolutionOption s;
        std::uint16_t mss;
        if (!get_u16be(body, 0, mss)) return DecodeResult::kBadLength;
        s.mss = mss;
        s.wscale = body[2];
        s.solutions.assign(body.begin() + 3, body.end());
        out.solution = std::move(s);
        break;
      }
      default:
        // Unknown option: skip by length (legacy behaviour).
        break;
    }
    i += len;
  }

  // Interpretation pass for the solution block: when the segment carries a
  // timestamps option, T rides in TSecr; otherwise the first 4 bytes of the
  // block body after MSS/wscale are the embedded T.
  if (out.solution && !out.ts) {
    if (out.solution->solutions.size() < 4) return DecodeResult::kBadLength;
    std::uint32_t ts;
    if (!get_u32be(out.solution->solutions, 0, ts)) {
      return DecodeResult::kBadLength;
    }
    out.solution->embedded_ts = ts;
    out.solution->solutions.erase(out.solution->solutions.begin(),
                                  out.solution->solutions.begin() + 4);
  }
  // A solution block with no solution bytes at all can never verify (k >= 1
  // and l >= 1 everywhere); reject it here rather than letting zero-length
  // values reach the verification layer.
  if (out.solution && out.solution->solutions.empty()) {
    return DecodeResult::kBadLength;
  }
  return DecodeResult::kOk;
}

// -- segment codec ------------------------------------------------------------

const char* to_string(WireDecodeError e) {
  switch (e) {
    case WireDecodeError::kTruncated: return "truncated";
    case WireDecodeError::kBadDataOffset: return "bad-data-offset";
    case WireDecodeError::kBadChecksum: return "bad-checksum";
    case WireDecodeError::kBadOptions: return "bad-options";
  }
  return "unknown";
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

namespace {

/// The IPv4 pseudo-header + TCP header/options image used for checksumming.
/// `tcp_bytes` must hold the TCP bytes with the checksum field zeroed.
std::uint16_t tcp_checksum(const Segment& seg,
                           std::span<const std::uint8_t> tcp_bytes) {
  Bytes pseudo;
  pseudo.reserve(12 + tcp_bytes.size());
  put_u32be(pseudo, seg.saddr);
  put_u32be(pseudo, seg.daddr);
  pseudo.push_back(0);
  pseudo.push_back(6);  // protocol = TCP
  put_u16be(pseudo, static_cast<std::uint16_t>(tcp_bytes.size()));
  pseudo.insert(pseudo.end(), tcp_bytes.begin(), tcp_bytes.end());
  return internet_checksum(pseudo);
}

}  // namespace

Bytes encode_segment(const Segment& seg) {
  const Bytes opts = encode_options(seg.options);

  Bytes tcp;
  tcp.reserve(kTcpHeaderSize + opts.size());
  put_u16be(tcp, seg.sport);
  put_u16be(tcp, seg.dport);
  put_u32be(tcp, seg.seq);
  put_u32be(tcp, seg.ack);
  const auto data_off =
      static_cast<std::uint8_t>((kTcpHeaderSize + opts.size()) / 4);
  tcp.push_back(static_cast<std::uint8_t>(data_off << 4));
  tcp.push_back(seg.flags);
  put_u16be(tcp, seg.window);
  put_u16be(tcp, 0);  // checksum placeholder
  put_u16be(tcp, 0);  // urgent pointer
  tcp.insert(tcp.end(), opts.begin(), opts.end());

  const std::uint16_t csum = tcp_checksum(seg, tcp);
  tcp[16] = static_cast<std::uint8_t>(csum >> 8);
  tcp[17] = static_cast<std::uint8_t>(csum);

  Bytes out;
  out.reserve(kWirePreambleSize + tcp.size());
  put_u32be(out, seg.saddr);
  put_u32be(out, seg.daddr);
  put_u32be(out, seg.payload_bytes);
  out.insert(out.end(), tcp.begin(), tcp.end());
  return out;
}

WireDecodeResult decode_segment(std::span<const std::uint8_t> wire) {
  WireDecodeResult result;
  if (wire.size() < kWirePreambleSize + kTcpHeaderSize) {
    result.error = WireDecodeError::kTruncated;
    return result;
  }

  Segment seg;
  std::uint32_t payload;
  (void)get_u32be(wire, 0, seg.saddr);
  (void)get_u32be(wire, 4, seg.daddr);
  (void)get_u32be(wire, 8, payload);
  seg.payload_bytes = payload;

  const std::span<const std::uint8_t> tcp = wire.subspan(kWirePreambleSize);
  std::uint16_t v16;
  std::uint32_t v32;
  (void)get_u16be(tcp, 0, v16);
  seg.sport = v16;
  (void)get_u16be(tcp, 2, v16);
  seg.dport = v16;
  (void)get_u32be(tcp, 4, v32);
  seg.seq = v32;
  (void)get_u32be(tcp, 8, v32);
  seg.ack = v32;

  const unsigned header_len = (tcp[12] >> 4) * 4u;
  if (header_len < kTcpHeaderSize || header_len > tcp.size()) {
    result.error = WireDecodeError::kBadDataOffset;
    return result;
  }
  seg.flags = tcp[13];
  (void)get_u16be(tcp, 14, v16);
  seg.window = v16;
  std::uint16_t wire_csum;
  (void)get_u16be(tcp, 16, wire_csum);

  // Recompute the checksum with the field zeroed.
  Bytes tcp_copy(tcp.begin(), tcp.begin() + header_len);
  tcp_copy[16] = 0;
  tcp_copy[17] = 0;
  if (tcp_checksum(seg, tcp_copy) != wire_csum) {
    result.error = WireDecodeError::kBadChecksum;
    return result;
  }

  const std::span<const std::uint8_t> opts =
      tcp.subspan(kTcpHeaderSize, header_len - kTcpHeaderSize);
  if (decode_options(opts, seg.options) != DecodeResult::kOk) {
    result.error = WireDecodeError::kBadOptions;
    return result;
  }
  result.segment = std::move(seg);
  return result;
}

}  // namespace tcpz::tcp
