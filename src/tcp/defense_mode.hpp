// Legacy three-value defense selector.
//
// Since the defense-policy redesign this enum is a *compatibility shim*: the
// listener is driven by a pluggable defense::DefensePolicy (src/defense/),
// and a DefenseMode merely names one of the three canonical policies the
// paper evaluates. defense::PolicySpec::from_mode() maps a mode to the
// equivalent policy; new code should build a PolicySpec (or a custom
// DefensePolicy) directly.
#pragma once

#include <cstdint>

namespace tcpz::tcp {

enum class DefenseMode : std::uint8_t {
  kNone,        ///< stock TCP: drop SYNs when the listen queue is full
  kSynCookies,  ///< stateless cookies when the listen queue is full
  kPuzzles,     ///< client puzzles when either queue is full
};

[[nodiscard]] constexpr const char* to_string(DefenseMode m) {
  switch (m) {
    case DefenseMode::kNone: return "none";
    case DefenseMode::kSynCookies: return "syncookies";
    case DefenseMode::kPuzzles: return "puzzles";
  }
  return "unknown";
}

}  // namespace tcpz::tcp
