// TCP header options, including the paper's challenge (0xfc) and solution
// (0xfd) blocks (Figs. 4 and 5). This header holds the value types and the
// arithmetic wire_size(); the (de)serialization itself lives in
// tcp/wire_format.{hpp,cpp} — one bounds-checked codec shared by the
// simulator, the UDP loopback shim and the real-wire host. Options are
// length-prefixed, NOP-padded to 32-bit alignment, and bounded by the 40
// byte TCP option-space limit, so the packet-size overhead the paper reports
// is measurable here too.
//
// Challenge block (Fig. 4):
//   0xfc | len | k | m | l | [T (4B, only when TCP timestamps are not in
//   use)] | pre-image (l bytes)
// Solution block (Fig. 5):
//   0xfd | len | MSS (2B) | wscale | [T (4B, same rule)] | k solutions
//   (k*l bytes)
// The solution block re-sends MSS and wscale because the server kept no
// state from the SYN (§5). When the TCP timestamps option is present in the
// same segment, T travels in TSval/TSecr instead of being embedded.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "util/bytes.hpp"
#include "util/inline_bytes.hpp"

namespace tcpz::tcp {

inline constexpr std::uint8_t kOptEnd = 0;
inline constexpr std::uint8_t kOptNop = 1;
inline constexpr std::uint8_t kOptMss = 2;
inline constexpr std::uint8_t kOptWscale = 3;
inline constexpr std::uint8_t kOptSackPerm = 4;
inline constexpr std::uint8_t kOptTimestamps = 8;
inline constexpr std::uint8_t kOptChallenge = 0xfc;  ///< paper's unused opcode
inline constexpr std::uint8_t kOptSolution = 0xfd;   ///< paper's unused opcode

inline constexpr std::size_t kMaxOptionsBytes = 40;

/// Inline capacities of the challenge/solution payloads. Both blocks must
/// cross the wire inside the 40-byte option space (the pre-image is bounded
/// by the engine's sol_len <= 32 on top of that), so the bytes live inline
/// in the Segment: copying a packet — including into a link-delivery
/// closure — never allocates. Oversized payloads throw std::length_error at
/// construction, before they ever reach the wire codec.
inline constexpr std::size_t kMaxPreimageBytes = 32;
inline constexpr std::size_t kMaxSolutionBytes = 40;

struct TimestampsOption {
  std::uint32_t tsval = 0;
  std::uint32_t tsecr = 0;
  bool operator==(const TimestampsOption&) const = default;
};

struct ChallengeOption {
  std::uint8_t k = 0;
  std::uint8_t m = 0;
  std::uint8_t sol_len = 0;  ///< l
  std::optional<std::uint32_t> embedded_ts;
  InlineBytes<kMaxPreimageBytes> preimage;  ///< l bytes, inline
  bool operator==(const ChallengeOption&) const = default;
};

struct SolutionOption {
  std::uint16_t mss = 0;
  std::uint8_t wscale = 0;
  std::optional<std::uint32_t> embedded_ts;
  InlineBytes<kMaxSolutionBytes> solutions;  ///< k*l bytes, concatenated
  bool operator==(const SolutionOption&) const = default;
};

struct Options {
  std::optional<std::uint16_t> mss;
  std::optional<std::uint8_t> wscale;
  bool sack_permitted = false;
  std::optional<TimestampsOption> ts;
  std::optional<ChallengeOption> challenge;
  std::optional<SolutionOption> solution;

  bool operator==(const Options&) const = default;

  /// Wire size after NOP padding to a 4-byte boundary, computed
  /// arithmetically — the link layer charges it for every transmitted
  /// segment, so it must not serialize (or allocate). Throws if the encoded
  /// form would exceed the 40-byte TCP limit (callers size l and k to fit);
  /// encode_options() produces exactly this many bytes.
  [[nodiscard]] std::size_t wire_size() const;
};

}  // namespace tcpz::tcp
