// The single wire codec shared by every backend that puts segments on real
// bytes: the simulator's option round-trip checks, the UDP loopback shim
// (src/shim) and the real-wire host (src/wire).
//
// Two layers, both here so they cannot drift apart:
//
//  * Option codec — TCP header options including the paper's challenge
//    (0xfc) and solution (0xfd) blocks (Figs. 4 and 5). Options are
//    length-prefixed, NOP-padded to 32-bit alignment, and bounded by the
//    40-byte TCP option-space limit. Decode is explicitly bounds-checked:
//    truncated option lists, declared lengths running past the buffer, and
//    zero-length challenge/solution payloads all return a DecodeResult
//    error instead of reading past the end — the input is attacker-supplied
//    bytes on the wire backends.
//
//  * Segment codec — a real 20-byte TCP header (network byte order, correct
//    data-offset, flags, and checksum over the IPv4 pseudo-header),
//    preceded by a 12-byte encapsulation preamble carrying the addresses
//    and the simulated payload length:
//
//      [ saddr(4) | daddr(4) | payload_bytes(4) ]  encapsulation preamble
//      [ 20-byte TCP header | options (padded) ]   real TCP wire format
//
//    The payload itself travels as a length (the library models state
//    exhaustion, not data transfer). The checksum is the genuine Internet
//    checksum, so a flipped bit anywhere in the header or options is
//    detected.
#pragma once

#include <optional>

#include "tcp/segment.hpp"
#include "util/bytes.hpp"

namespace tcpz::tcp {

// -- option codec -------------------------------------------------------------

enum class DecodeResult : std::uint8_t { kOk, kTruncated, kBadLength, kTooLong };

/// Serialises to wire bytes (padded). Throws std::length_error when the
/// encoding exceeds kMaxOptionsBytes.
[[nodiscard]] Bytes encode_options(const Options& opts);

/// Parses wire bytes. Unknown options are skipped via their length byte, as
/// legacy TCP stacks do — this is what makes a non-patched client ignore the
/// challenge block (§6.5). Returns kOk and fills `out` on success. Every
/// read is bounds-checked against the buffer AND the declared lengths; a
/// challenge with a zero-length pre-image or a solution block with no
/// solution bytes is kBadLength (such a block can never verify, and the
/// zero-length forms used to sail through to the verification layer).
[[nodiscard]] DecodeResult decode_options(std::span<const std::uint8_t> wire,
                                          Options& out);

// -- segment codec ------------------------------------------------------------

inline constexpr std::size_t kWirePreambleSize = 12;
inline constexpr std::size_t kTcpHeaderSize = 20;

/// Serialises the segment. Throws std::length_error if the options exceed
/// the 40-byte TCP limit.
[[nodiscard]] Bytes encode_segment(const Segment& seg);

enum class WireDecodeError : std::uint8_t {
  kTruncated,
  kBadDataOffset,
  kBadChecksum,
  kBadOptions,
};

[[nodiscard]] const char* to_string(WireDecodeError e);

struct WireDecodeResult {
  std::optional<Segment> segment;
  std::optional<WireDecodeError> error;
};

/// Parses wire bytes; verifies the checksum and the options encoding.
[[nodiscard]] WireDecodeResult decode_segment(std::span<const std::uint8_t> wire);

/// RFC 1071 Internet checksum over the given bytes (used for the TCP
/// checksum with the IPv4 pseudo-header; exposed for tests).
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

}  // namespace tcpz::tcp
