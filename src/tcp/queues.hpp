// The two server-side queues that state-exhaustion attacks target (§2.1):
// the listen queue of half-open connections (SYN floods fill this) and the
// accept queue of established-but-not-yet-accepted connections (connection
// floods fill this). Both are bounded by a backlog; the whole point of
// cookies and puzzles is what happens when they are full.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "tcp/segment.hpp"
#include "util/time.hpp"

namespace tcpz::tcp {

/// How a connection came to be established; the metrics split on this.
enum class EstablishPath : std::uint8_t {
  kQueue,   ///< normal three-way handshake through the listen queue
  kCookie,  ///< reconstructed from a valid SYN cookie
  kPuzzle,  ///< admitted by a verified puzzle solution
};

/// State for one half-open connection (one listen-queue slot). This is the
/// per-SYN memory cost an attacker forces the server to pay — the paper's
/// protections exist to avoid allocating it blindly.
struct HalfOpenEntry {
  FlowKey flow;
  std::uint32_t client_isn = 0;
  std::uint32_t iss = 0;  ///< our initial sequence number
  std::uint16_t peer_mss = 536;
  std::uint8_t peer_wscale = 0;
  bool peer_ts_ok = false;
  std::uint32_t peer_tsval = 0;
  SimTime created;
  SimTime next_retx;
  int retx_count = 0;
  /// The final ACK arrived but the accept queue was full; the entry is kept
  /// (as Linux does) and promoted when room appears, until it expires.
  bool acked = false;
};

/// A fully established connection waiting for (or delivered by) accept().
struct AcceptedConnection {
  FlowKey flow;
  std::uint32_t client_isn = 0;
  std::uint32_t iss = 0;
  std::uint16_t peer_mss = 536;
  std::uint8_t peer_wscale = 0;
  EstablishPath path = EstablishPath::kQueue;
  SimTime established_at;
};

/// Bounded map of half-open connections, FIFO-iterable for expiry scans.
class ListenQueue {
 public:
  explicit ListenQueue(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool full() const { return entries_.size() >= capacity_; }

  /// False if full or the flow is already present.
  bool insert(const HalfOpenEntry& entry);
  [[nodiscard]] HalfOpenEntry* find(const FlowKey& flow);
  void erase(const FlowKey& flow);

  /// Applies `fn` to every entry; if it returns false the entry is removed.
  /// Used by the expiry/retransmit tick.
  template <typename Fn>
  void retain(Fn&& fn) {
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (fn(it->second)) {
        ++it;
      } else {
        it = entries_.erase(it);
      }
    }
  }

 private:
  std::size_t capacity_;
  std::unordered_map<FlowKey, HalfOpenEntry, FlowKeyHash> entries_;
};

/// Bounded FIFO of established connections awaiting accept(), with an O(1)
/// membership index (the replay defence checks membership per solution-ACK,
/// which arrive thousands of times per second under attack).
class AcceptQueue {
 public:
  explicit AcceptQueue(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return queue_.size(); }
  [[nodiscard]] bool full() const { return queue_.size() >= capacity_; }

  /// False if full.
  bool push(const AcceptedConnection& conn);
  [[nodiscard]] std::optional<AcceptedConnection> pop();
  /// True if a connection for this flow is still waiting in the queue.
  [[nodiscard]] bool contains(const FlowKey& flow) const {
    return members_.contains(flow);
  }

 private:
  std::size_t capacity_;
  std::deque<AcceptedConnection> queue_;
  std::unordered_set<FlowKey, FlowKeyHash> members_;
};

}  // namespace tcpz::tcp
