#include "tcp/segment.hpp"

#include <cstdio>

namespace tcpz::tcp {

std::string ip_to_string(std::uint32_t addr) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (addr >> 24) & 0xff,
                (addr >> 16) & 0xff, (addr >> 8) & 0xff, addr & 0xff);
  return buf;
}

std::string Segment::summary() const {
  std::string f;
  if (flags & kSyn) f += "S";
  if (flags & kAck) f += ".";
  if (flags & kRst) f += "R";
  if (flags & kFin) f += "F";
  if (flags & kPsh) f += "P";
  char buf[160];
  std::snprintf(buf, sizeof buf, "%s:%u > %s:%u [%s] seq=%u ack=%u len=%u%s%s",
                ip_to_string(saddr).c_str(), sport, ip_to_string(daddr).c_str(),
                dport, f.c_str(), seq, ack, payload_bytes,
                options.challenge ? " <challenge>" : "",
                options.solution ? " <solution>" : "");
  return buf;
}

}  // namespace tcpz::tcp
