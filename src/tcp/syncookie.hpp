// SYN cookies (Bernstein 1997), the baseline defence the paper compares
// against. The server encodes connection parameters into the initial
// sequence number of the SYN-ACK and keeps no state; a later ACK whose
// acknowledgment number carries a valid cookie re-creates the connection.
//
// Layout of the 32-bit cookie (close to the classic scheme):
//   [31:27] t     — 5-bit coarse time counter (64 s granularity)
//   [26:24] mss   — index into the MSS table
//   [23:0]  mac   — truncated HMAC over (flow, client ISN, t, mss index)
//
// The 3-bit MSS table is precisely the limitation the paper's solution
// option removes: puzzles re-send the exact 16-bit MSS and the wscale value,
// which SYN cookies cannot carry (§5).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "crypto/secret.hpp"
#include "tcp/segment.hpp"

namespace tcpz::tcp {

class SynCookieCodec {
 public:
  explicit SynCookieCodec(crypto::SecretKey secret) : secret_(secret) {}

  /// MSS values representable in the cookie (Linux uses a similar table).
  static constexpr std::array<std::uint16_t, 8> kMssTable = {
      536, 1300, 1440, 1460, 4312, 8960, 536, 536};
  static constexpr unsigned kMssBits = 3;

  /// Seconds per time-counter step; a cookie is accepted for the current and
  /// previous step, i.e. 64–128 s of validity.
  static constexpr std::uint32_t kCounterPeriodSec = 64;

  /// Index of the largest table MSS <= the peer's announced MSS.
  [[nodiscard]] static unsigned mss_to_index(std::uint16_t mss);

  /// Builds the cookie ISN for a SYN with client ISN `client_isn`.
  [[nodiscard]] std::uint32_t encode(const FlowKey& flow,
                                     std::uint32_t client_isn,
                                     std::uint16_t peer_mss,
                                     std::uint32_t now_sec) const;

  /// Validates the cookie from an ACK (cookie = ack - 1). Returns the
  /// decoded MSS on success.
  [[nodiscard]] std::optional<std::uint16_t> decode(const FlowKey& flow,
                                                    std::uint32_t client_isn,
                                                    std::uint32_t cookie,
                                                    std::uint32_t now_sec) const;

 private:
  [[nodiscard]] std::uint32_t mac24(const FlowKey& flow,
                                    std::uint32_t client_isn, std::uint32_t t,
                                    unsigned mss_idx) const;

  crypto::SecretKey secret_;
};

}  // namespace tcpz::tcp
