// Full segment wire codec: a real 20-byte TCP header (network byte order,
// correct data-offset, flags and checksum over the IPv4 pseudo-header),
// preceded by a 12-byte encapsulation preamble carrying the addresses and
// the simulated payload length:
//
//   [ saddr(4) | daddr(4) | payload_bytes(4) ]  encapsulation preamble
//   [ 20-byte TCP header | options (padded) ]   real TCP wire format
//
// This is what the UDP transport shim (src/shim) puts on real sockets; the
// payload itself travels as a length (the library models state exhaustion,
// not data transfer). The checksum is the genuine Internet checksum so a
// flipped bit anywhere in the header or options is detected.
#pragma once

#include <optional>

#include "tcp/segment.hpp"
#include "util/bytes.hpp"

namespace tcpz::tcp {

inline constexpr std::size_t kWirePreambleSize = 12;
inline constexpr std::size_t kTcpHeaderSize = 20;

/// Serialises the segment. Throws std::length_error if the options exceed
/// the 40-byte TCP limit.
[[nodiscard]] Bytes encode_segment(const Segment& seg);

enum class WireDecodeError {
  kTruncated,
  kBadDataOffset,
  kBadChecksum,
  kBadOptions,
};

[[nodiscard]] const char* to_string(WireDecodeError e);

struct WireDecodeResult {
  std::optional<Segment> segment;
  std::optional<WireDecodeError> error;
};

/// Parses wire bytes; verifies the checksum and the options encoding.
[[nodiscard]] WireDecodeResult decode_segment(std::span<const std::uint8_t> wire);

/// RFC 1071 Internet checksum over the given bytes (used for the TCP
/// checksum with the IPv4 pseudo-header; exposed for tests).
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

}  // namespace tcpz::tcp
