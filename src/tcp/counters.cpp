#include "tcp/counters.hpp"

namespace tcpz::tcp {

ListenerCounters& operator+=(ListenerCounters& into, const ListenerCounters& c) {
  into.syns_received += c.syns_received;
  into.synacks_sent += c.synacks_sent;
  into.plain_synacks += c.plain_synacks;
  into.challenges_sent += c.challenges_sent;
  into.cookies_sent += c.cookies_sent;
  into.synack_retx += c.synack_retx;
  into.drops_listen_full += c.drops_listen_full;
  into.acks_received += c.acks_received;
  into.solution_acks += c.solution_acks;
  into.solutions_valid += c.solutions_valid;
  into.solutions_invalid += c.solutions_invalid;
  into.solutions_expired += c.solutions_expired;
  into.solutions_bad_ackno += c.solutions_bad_ackno;
  into.solutions_duplicate += c.solutions_duplicate;
  into.acks_ignored_accept_full += c.acks_ignored_accept_full;
  into.cookies_valid += c.cookies_valid;
  into.cookies_invalid += c.cookies_invalid;
  into.cookie_drops_accept_full += c.cookie_drops_accept_full;
  into.acks_pending_accept += c.acks_pending_accept;
  into.established_total += c.established_total;
  into.established_queue += c.established_queue;
  into.established_cookie += c.established_cookie;
  into.established_puzzle += c.established_puzzle;
  into.half_open_expired += c.half_open_expired;
  into.rsts_sent += c.rsts_sent;
  into.data_segments += c.data_segments;
  into.data_unknown_flow += c.data_unknown_flow;
  into.secret_rotations += c.secret_rotations;
  into.solutions_valid_prev_epoch += c.solutions_valid_prev_epoch;
  into.solutions_replay_filtered += c.solutions_replay_filtered;
  into.crypto_hash_ops += c.crypto_hash_ops;
  return into;
}

}  // namespace tcpz::tcp
