#include "tcp/counters.hpp"

namespace tcpz::tcp {

ListenerCounters& operator+=(ListenerCounters& into, const ListenerCounters& c) {
#define TCPZ_X(name, help) into.name += c.name;
  TCPZ_LISTENER_COUNTER_FIELDS(TCPZ_X)
#undef TCPZ_X
  return into;
}

}  // namespace tcpz::tcp
