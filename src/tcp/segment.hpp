// TCP segments as exchanged by the userspace handshake stack. We model the
// fields the handshake and the puzzle extension touch; payload is carried as
// a byte count (the simulator accounts bandwidth, it does not need payload
// contents).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "tcp/options.hpp"

namespace tcpz::tcp {

/// Flag bit positions match the TCP header.
enum SegFlags : std::uint8_t {
  kFin = 0x01,
  kSyn = 0x02,
  kRst = 0x04,
  kPsh = 0x08,
  kAck = 0x10,
};

struct Segment {
  std::uint32_t saddr = 0;
  std::uint32_t daddr = 0;
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  Options options;
  std::uint32_t payload_bytes = 0;

  [[nodiscard]] bool is_syn() const { return (flags & kSyn) && !(flags & kAck); }
  [[nodiscard]] bool is_syn_ack() const {
    return (flags & kSyn) && (flags & kAck);
  }
  [[nodiscard]] bool is_ack() const { return (flags & kAck) && !(flags & kSyn); }
  [[nodiscard]] bool is_rst() const { return flags & kRst; }

  /// On-wire size: 20 B IPv4 + 20 B TCP + padded options + payload.
  [[nodiscard]] std::uint32_t wire_size() const {
    return 40 + static_cast<std::uint32_t>(options.wire_size()) + payload_bytes;
  }

  [[nodiscard]] std::string summary() const;
};

/// Connection identity from the *server's* point of view: remote (client)
/// endpoint first. Equality/hash for use as an unordered_map key.
struct FlowKey {
  std::uint32_t raddr = 0;
  std::uint16_t rport = 0;
  std::uint32_t laddr = 0;
  std::uint16_t lport = 0;

  bool operator==(const FlowKey&) const = default;

  [[nodiscard]] static FlowKey from_incoming(const Segment& seg) {
    return {seg.saddr, seg.sport, seg.daddr, seg.dport};
  }
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const {
    // 64-bit mix of the 96-bit tuple; splitmix-style finalizer.
    std::uint64_t h = (static_cast<std::uint64_t>(k.raddr) << 32) |
                      (static_cast<std::uint64_t>(k.rport) << 16) | k.lport;
    h ^= static_cast<std::uint64_t>(k.laddr) * 0x9e3779b97f4a7c15ull;
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return static_cast<std::size_t>(h);
  }
};

/// Dotted-quad rendering of an IPv4 address held in host byte order.
[[nodiscard]] std::string ip_to_string(std::uint32_t addr);
/// Builds an address from octets, e.g. ipv4(10, 1, 1, 2).
[[nodiscard]] constexpr std::uint32_t ipv4(unsigned a, unsigned b, unsigned c,
                                           unsigned d) {
  return (a << 24) | (b << 16) | (c << 8) | d;
}

}  // namespace tcpz::tcp
