#include "tcp/syncookie.hpp"

#include <cstring>

#include "crypto/hmac.hpp"
#include "util/bytes.hpp"

namespace tcpz::tcp {

unsigned SynCookieCodec::mss_to_index(std::uint16_t mss) {
  unsigned best = 0;
  for (unsigned i = 0; i < 6; ++i) {  // entries 6,7 are padding duplicates
    if (kMssTable[i] <= mss && kMssTable[i] >= kMssTable[best]) best = i;
  }
  return best;
}

std::uint32_t SynCookieCodec::mac24(const FlowKey& flow,
                                    std::uint32_t client_isn, std::uint32_t t,
                                    unsigned mss_idx) const {
  // Hot per-SYN/per-ACK path: cached-midstate HMAC over a stack buffer.
  constexpr char kLabel[] = "tcpz-syncookie-v1";
  constexpr std::size_t kLabelLen = sizeof(kLabel) - 1;
  std::uint8_t msg[kLabelLen + 21];
  std::memcpy(msg, kLabel, kLabelLen);
  std::uint8_t* p = msg + kLabelLen;
  p = store_u32be(p, flow.raddr);
  p = store_u16be(p, flow.rport);
  p = store_u32be(p, flow.laddr);
  p = store_u16be(p, flow.lport);
  p = store_u32be(p, client_isn);
  p = store_u32be(p, t);
  *p++ = static_cast<std::uint8_t>(mss_idx);
  const auto digest = secret_.hmac().mac(
      std::span<const std::uint8_t>(msg, static_cast<std::size_t>(p - msg)));
  return (static_cast<std::uint32_t>(digest[0]) << 16) |
         (static_cast<std::uint32_t>(digest[1]) << 8) |
         static_cast<std::uint32_t>(digest[2]);
}

std::uint32_t SynCookieCodec::encode(const FlowKey& flow,
                                     std::uint32_t client_isn,
                                     std::uint16_t peer_mss,
                                     std::uint32_t now_sec) const {
  const std::uint32_t t = now_sec / kCounterPeriodSec;
  const unsigned idx = mss_to_index(peer_mss);
  return ((t & 0x1f) << 27) | (static_cast<std::uint32_t>(idx) << 24) |
         mac24(flow, client_isn, t, idx);
}

std::optional<std::uint16_t> SynCookieCodec::decode(const FlowKey& flow,
                                                    std::uint32_t client_isn,
                                                    std::uint32_t cookie,
                                                    std::uint32_t now_sec) const {
  const std::uint32_t t_now = now_sec / kCounterPeriodSec;
  const std::uint32_t t_bits = (cookie >> 27) & 0x1f;
  const unsigned idx = (cookie >> 24) & 0x7;
  const std::uint32_t mac = cookie & 0xffffff;

  // Accept the current and the previous counter period. Reconstruct the full
  // counter from its low 5 bits relative to now.
  for (std::uint32_t delta = 0; delta <= 1; ++delta) {
    const std::uint32_t t = t_now - delta;
    if ((t & 0x1f) != t_bits) continue;
    if (mac24(flow, client_isn, t, idx) == mac) return kMssTable[idx];
  }
  return std::nullopt;
}

}  // namespace tcpz::tcp
