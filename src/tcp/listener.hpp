// Server-side TCP handshake state machine with the paper's protections.
//
// This is the userspace equivalent of the paper's Linux 4.13 patch (§5):
//
//  * Puzzles are off in normal operation; a SYN is answered with a plain
//    SYN-ACK and a listen-queue entry ("opportunistic controller").
//  * When the listen queue — or, per the paper's modification, the accept
//    queue — is full and puzzles are enabled, the server answers SYNs with a
//    challenge in the SYN-ACK and keeps NO state (statelessness property).
//  * An ACK carrying a valid, fresh solution establishes the connection
//    directly into the accept queue. If the accept queue is full the ACK is
//    ignored; the client believes it connected and a later data segment is
//    answered with RST (the deception mechanism of §5).
//  * SYN cookies are implemented as the comparison baseline and as the
//    backup option.
//  * Difficulty (k, m) and mode are runtime-tunable, mirroring the sysctl
//    interface.
//
// WHICH defense applies — and when it engages — is decided by a pluggable
// defense::DefensePolicy (src/defense/policy.hpp) the listener consults at
// its three decision points (on_syn / on_ack / on_tick). The listener owns
// the mechanics: queues, retransmits, stateless credential validation and
// wire formatting. The legacy DefenseMode enum survives as a compatibility
// shim that maps to the equivalent policy (defense::PolicySpec::from_mode).
//
// The class is sans-I/O: callers feed segments and ticks in, and get
// segments to transmit back. That makes it equally usable from unit tests,
// the discrete-event simulator, and a raw-socket/DPDK shim.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/secret.hpp"
#include "defense/policy.hpp"
#include "puzzle/engine.hpp"
#include "tcp/counters.hpp"
#include "tcp/defense_mode.hpp"
#include "tcp/queues.hpp"
#include "tcp/segment.hpp"
#include "tcp/syncookie.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace tcpz::tcp {

struct ListenerConfig {
  std::uint32_t local_addr = 0;
  std::uint16_t local_port = 80;
  std::size_t listen_backlog = 1024;
  std::size_t accept_backlog = 1024;
  /// First-class defense selection: when set, the listener is built from
  /// this factory and the legacy shim fields below (mode, cookie_fallback,
  /// always_challenge, protection_hold, protection_engage_water) are
  /// ignored. See defense::PolicySpec::factory().
  defense::PolicyFactory policy;
  /// Legacy shim: when `policy` is unset, the mode plus the knobs below are
  /// mapped to the equivalent policy via defense::PolicySpec.
  DefenseMode mode = DefenseMode::kNone;
  puzzle::Difficulty difficulty{2, 17};
  /// Use SYN cookies when puzzles are enabled but no engine is configured.
  bool cookie_fallback = false;
  SimTime synack_timeout = SimTime::seconds(1);
  /// Linux tcp_synack_retries default: 5 retries with exponential backoff,
  /// a ~63 s half-open lifetime. This lifetime is what keeps the listen
  /// queue "mostly saturated" during a connection flood (Fig. 10).
  int max_synack_retries = 5;
  std::uint16_t mss = 1460;
  std::uint8_t wscale = 7;
  /// Carry the challenge timestamp in the TCP timestamps option when the
  /// peer negotiated it; otherwise embed it in the challenge/solution blocks.
  bool use_timestamps = true;
  /// Answer data segments for unknown flows with RST.
  bool rst_unknown = true;
  /// Flight-recorder track this listener's trace events report under (one
  /// track per agent/replica in the Chrome-trace export; see src/obs/).
  std::uint16_t trace_track = 0;
  /// Challenge every SYN regardless of queue state (legacy shim; see
  /// defense::PuzzlePolicyConfig::always_challenge).
  bool always_challenge = false;
  /// Opportunistic-controller hysteresis (legacy shim; see
  /// defense::PuzzlePolicyConfig::hold).
  SimTime protection_hold = SimTime::seconds(60);
  /// Engage watermark (legacy shim; see
  /// defense::PuzzlePolicyConfig::engage_water).
  double protection_engage_water = 1.0;
};

class Listener {
 public:
  /// `engine` may be null unless the policy requires one (it can also be
  /// installed later via set_engine, before switching to such a policy).
  Listener(ListenerConfig cfg, crypto::SecretKey secret, std::uint64_t seed,
           std::shared_ptr<const puzzle::PuzzleEngine> engine = nullptr);

  /// Feed one incoming segment; returns segments to transmit.
  [[nodiscard]] std::vector<Segment> on_segment(SimTime now, const Segment& seg);

  /// Periodic maintenance: SYN-ACK retransmission, half-open expiry,
  /// defense-policy control (protection latch, adaptive difficulty).
  [[nodiscard]] std::vector<Segment> on_tick(SimTime now);

  /// Application-side accept(): dequeues one established connection.
  [[nodiscard]] std::optional<AcceptedConnection> accept(SimTime now);

  /// Application-side close: releases all state for the flow.
  void close(const FlowKey& flow);

  /// Handler invoked for data segments on established flows.
  using DataHandler =
      std::function<void(SimTime now, const FlowKey& flow, const Segment& seg)>;
  void set_data_handler(DataHandler handler) { data_handler_ = std::move(handler); }

  /// Invoked whenever a connection is established (from any path) — the
  /// metrics layer classifies these by source address.
  using EstablishHandler =
      std::function<void(SimTime now, const AcceptedConnection& conn)>;
  void set_establish_handler(EstablishHandler handler) {
    establish_handler_ = std::move(handler);
  }

  // -- runtime tuning (the sysctl interface of §5) --------------------------
  /// Installs a new defense policy. Throws if the policy requires a
  /// PuzzleEngine and none is installed; the current policy stays in place
  /// on failure. A policy change is a defense *restart*: controller state
  /// (protection latch, adaptive difficulty) starts fresh, so swapping
  /// policies mid-attack re-opens the opportunistic window until the new
  /// policy's own controller engages.
  void set_policy(std::unique_ptr<defense::DefensePolicy> policy);
  /// Legacy shim: installs the canonical policy for `mode`, carrying over
  /// the shim knobs from the construction-time config. Same restart
  /// semantics as set_policy — and it *replaces* whatever policy is active,
  /// including a custom one installed via ListenerConfig::policy.
  void set_mode(DefenseMode mode);
  void set_difficulty(puzzle::Difficulty d);
  void set_engine(std::shared_ptr<const puzzle::PuzzleEngine> engine);

  // -- secret rotation (fleet deployments) -----------------------------------
  /// Installs a new puzzle secret/engine epoch. The outgoing pair becomes
  /// the *previous* epoch: challenges are minted only from the new secret,
  /// but solutions minted under the previous one keep verifying until
  /// drop_previous_secret() ends the overlap window. SYN cookies keep the
  /// construction-time secret (their validity window is seconds and they are
  /// not part of the cross-replica scheme).
  void rotate_secret(crypto::SecretKey secret,
                     std::shared_ptr<const puzzle::PuzzleEngine> engine);
  /// Ends the rotation overlap: previous-epoch solutions stop verifying.
  void drop_previous_secret();
  [[nodiscard]] bool has_previous_secret() const { return prev_.has_value(); }
  /// Monotone epoch number, starting at 0; bumped by each rotate_secret().
  [[nodiscard]] std::uint32_t secret_epoch() const { return epoch_; }

  /// Cluster-level replay protection hook: invoked with (flow, challenge
  /// timestamp, now in ms) after a solution verifies and before the
  /// connection is admitted. A true return means another replica already
  /// admitted this solution; the ACK is then dropped as a duplicate. The
  /// filter is expected to have check-and-insert semantics (see
  /// fleet::ReplayCache).
  using ReplayFilter = std::function<bool(
      const FlowKey& flow, std::uint32_t ts, std::uint32_t now_ms)>;
  void set_replay_filter(ReplayFilter filter) {
    replay_filter_ = std::move(filter);
  }

  // -- aggregate (fluid) workload entry points -------------------------------
  // The hybrid population model (src/workload/fluid.hpp) injects the
  // aggregated legitimate demand of N users through these calls, once per
  // simulation tick, as *fractional user mass* instead of per-packet events.
  // The defense policy is consulted exactly as for a discrete SYN — over a
  // QueueView that already folds in the fluid occupancy — so policies cannot
  // tell fluid pressure from discrete pressure. One policy verdict covers a
  // whole tick's mass (the fluid approximation). All fluid accounting lands
  // in the dedicated fluid_* counters; discrete wire counters are never
  // polluted, but crypto work (challenge minting, solution verification) is
  // charged to the shared CPU accumulator like any other crypto op.

  /// Outcome split of one tick's offered SYN mass.
  struct FluidAdmission {
    double enqueued = 0;    ///< admitted toward the (virtual) listen queue
    double challenged = 0;  ///< answered with stateless puzzle challenges
    double cookied = 0;     ///< answered with stateless SYN cookies
    double dropped = 0;     ///< no room / policy drop
    /// Difficulty the challenges were minted at (for solve-time modeling).
    puzzle::Difficulty difficulty;
  };
  [[nodiscard]] FluidAdmission admit_fluid_syns(SimTime now, double offered);

  /// Handshake-completion mass — final ACKs (queue/cookie paths) or solved
  /// challenges re-offered as solution ACKs (`puzzle_path`) — competing for
  /// accept-queue room. Returns the admitted (established) mass; the
  /// remainder is the §5 deception outcome: the senders believe they
  /// connected and will fail at their response timeout.
  [[nodiscard]] double admit_fluid_handshakes(SimTime now, double offered,
                                              bool puzzle_path);

  /// Publishes the population's queue-occupancy contribution (parked
  /// handshakes -> listen share, service backlog overflow -> accept share)
  /// so discrete admission gates and policy decisions see combined depths.
  void set_fluid_occupancy(double listen, double accept);
  [[nodiscard]] double fluid_listen_occupancy() const { return fluid_listen_; }
  [[nodiscard]] double fluid_accept_occupancy() const { return fluid_accept_; }

  // -- introspection ---------------------------------------------------------
  [[nodiscard]] std::size_t listen_depth() const { return listen_.size(); }
  [[nodiscard]] std::size_t accept_depth() const { return accept_.size(); }
  [[nodiscard]] std::size_t established_count() const {
    return established_.size();
  }
  [[nodiscard]] bool is_established(const FlowKey& flow) const {
    return established_.contains(flow);
  }
  [[nodiscard]] const ListenerCounters& counters() const { return counters_; }
  [[nodiscard]] const ListenerConfig& config() const { return cfg_; }
  /// The active defense policy (never null).
  [[nodiscard]] const defense::DefensePolicy& policy() const { return *policy_; }
  /// Name of the active policy, for reports and result files.
  [[nodiscard]] const char* policy_name() const { return policy_->name(); }
  /// True when the next SYN would be answered with a challenge or cookie.
  [[nodiscard]] bool protection_active() const;

  /// Returns the crypto hash-op count accumulated since the last call and
  /// resets the accumulator (for CPU-time charging by the simulator).
  [[nodiscard]] std::uint64_t take_hash_ops();

 private:
  struct EstablishedConn {
    AcceptedConnection conn;
    bool accepted = false;
  };

  [[nodiscard]] std::vector<Segment> handle_syn(SimTime now, const Segment& seg);
  [[nodiscard]] std::vector<Segment> handle_ack(SimTime now, const Segment& seg);
  [[nodiscard]] std::vector<Segment> handle_solution_ack(SimTime now,
                                                         const Segment& seg);

  [[nodiscard]] Segment make_synack(const HalfOpenEntry& entry,
                                    std::uint32_t now_ms) const;
  [[nodiscard]] Segment make_challenge_synack(const Segment& seg,
                                              const FlowKey& flow,
                                              std::uint32_t now_ms);
  [[nodiscard]] Segment make_cookie_synack(const Segment& seg,
                                           const FlowKey& flow, SimTime now);
  [[nodiscard]] Segment make_rst(const Segment& in) const;
  [[nodiscard]] std::uint32_t stateless_iss(const FlowKey& flow,
                                            std::uint32_t ts) const;
  [[nodiscard]] static std::uint32_t stateless_iss_with(
      const crypto::SecretKey& secret, const FlowKey& flow, std::uint32_t ts);
  void establish(SimTime now, const AcceptedConnection& conn);

  /// policy_->observe() plus, when a recorder is listening on the defense
  /// category, latch-transition detection around it (kLatchEngage /
  /// kLatchDisengage). The extra protection_active() probes run only while
  /// tracing that category — the untraced path is the bare observe call.
  void observe_policy(SimTime now);

  /// The read-only listener snapshot handed to the defense policy. Depths
  /// and full flags include the fluid occupancy (integer-truncated); with no
  /// fluid population attached this reduces exactly to the discrete view.
  [[nodiscard]] defense::QueueView queue_view() const;

  /// Discrete admission gates, fluid-aware: a queue is saturated when its
  /// ring is full OR the combined discrete+fluid depth reaches capacity.
  [[nodiscard]] bool listen_saturated() const {
    return listen_.full() ||
           listen_.size() + static_cast<std::size_t>(fluid_listen_) >=
               listen_.capacity();
  }
  [[nodiscard]] bool accept_saturated() const {
    return accept_.full() ||
           accept_.size() + static_cast<std::size_t>(fluid_accept_) >=
               accept_.capacity();
  }

  /// Accumulates fractional fluid mass into an integer counter, carrying the
  /// sub-unit remainder in `frac` so long runs count every whole user.
  static void add_mass(std::uint64_t& counter, double& frac, double mass);

  /// Truncation to the 32-bit millisecond wire clock (TCP timestamps and the
  /// challenge/solution blocks are 32-bit on the wire). This wraps every
  /// ~49.7 simulated days BY DESIGN; every consumer — challenge freshness
  /// (puzzle::check_freshness), the replay cache TTL and the cookie counter
  /// — therefore compares timestamps with wrap-safe serial-number
  /// arithmetic, never with raw magnitude. See DESIGN.md, "Time discipline".
  [[nodiscard]] static std::uint32_t to_ms(SimTime t) {
    return static_cast<std::uint32_t>(t.nanos() / 1'000'000);
  }
  [[nodiscard]] static std::uint32_t to_sec(SimTime t) {
    return static_cast<std::uint32_t>(t.nanos() / 1'000'000'000);
  }

  /// A retired secret epoch, kept alive through the rotation overlap window.
  struct PrevEpoch {
    crypto::SecretKey secret;
    std::shared_ptr<const puzzle::PuzzleEngine> engine;
  };

  ListenerConfig cfg_;
  crypto::SecretKey secret_;
  std::shared_ptr<const puzzle::PuzzleEngine> engine_;
  std::optional<PrevEpoch> prev_;
  std::uint32_t epoch_ = 0;
  SynCookieCodec cookies_;
  Rng rng_;
  std::unique_ptr<defense::DefensePolicy> policy_;

  ListenQueue listen_;
  AcceptQueue accept_;
  std::unordered_map<FlowKey, EstablishedConn, FlowKeyHash> established_;

  DataHandler data_handler_;
  EstablishHandler establish_handler_;
  ReplayFilter replay_filter_;
  ListenerCounters counters_;
  std::uint64_t hash_ops_pending_ = 0;

  // Fluid-population state: published occupancy plus the fractional
  // remainders of every fluid counter and of the crypto-op charge.
  double fluid_listen_ = 0;
  double fluid_accept_ = 0;
  double frac_offered_ = 0;
  double frac_enqueued_ = 0;
  double frac_challenged_ = 0;
  double frac_cookied_ = 0;
  double frac_dropped_ = 0;
  double frac_solutions_ = 0;
  double frac_established_ = 0;
  double frac_deceived_ = 0;
  double frac_crypto_ops_ = 0;
};

}  // namespace tcpz::tcp
