// Server-side TCP handshake state machine with the paper's protections.
//
// This is the userspace equivalent of the paper's Linux 4.13 patch (§5):
//
//  * Puzzles are off in normal operation; a SYN is answered with a plain
//    SYN-ACK and a listen-queue entry ("opportunistic controller").
//  * When the listen queue — or, per the paper's modification, the accept
//    queue — is full and puzzles are enabled, the server answers SYNs with a
//    challenge in the SYN-ACK and keeps NO state (statelessness property).
//  * An ACK carrying a valid, fresh solution establishes the connection
//    directly into the accept queue. If the accept queue is full the ACK is
//    ignored; the client believes it connected and a later data segment is
//    answered with RST (the deception mechanism of §5).
//  * SYN cookies are implemented as the comparison baseline and as the
//    backup option.
//  * Difficulty (k, m) and mode are runtime-tunable, mirroring the sysctl
//    interface.
//
// The class is sans-I/O: callers feed segments and ticks in, and get
// segments to transmit back. That makes it equally usable from unit tests,
// the discrete-event simulator, and a raw-socket/DPDK shim.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/secret.hpp"
#include "puzzle/engine.hpp"
#include "tcp/queues.hpp"
#include "tcp/segment.hpp"
#include "tcp/syncookie.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace tcpz::tcp {

enum class DefenseMode : std::uint8_t {
  kNone,        ///< stock TCP: drop SYNs when the listen queue is full
  kSynCookies,  ///< stateless cookies when the listen queue is full
  kPuzzles,     ///< client puzzles when either queue is full
};

[[nodiscard]] const char* to_string(DefenseMode m);

struct ListenerConfig {
  std::uint32_t local_addr = 0;
  std::uint16_t local_port = 80;
  std::size_t listen_backlog = 1024;
  std::size_t accept_backlog = 1024;
  DefenseMode mode = DefenseMode::kNone;
  puzzle::Difficulty difficulty{2, 17};
  /// Use SYN cookies when puzzles are enabled but no engine is configured.
  bool cookie_fallback = false;
  SimTime synack_timeout = SimTime::seconds(1);
  /// Linux tcp_synack_retries default: 5 retries with exponential backoff,
  /// a ~63 s half-open lifetime. This lifetime is what keeps the listen
  /// queue "mostly saturated" during a connection flood (Fig. 10).
  int max_synack_retries = 5;
  std::uint16_t mss = 1460;
  std::uint8_t wscale = 7;
  /// Carry the challenge timestamp in the TCP timestamps option when the
  /// peer negotiated it; otherwise embed it in the challenge/solution blocks.
  bool use_timestamps = true;
  /// Answer data segments for unknown flows with RST.
  bool rst_unknown = true;
  /// Challenge every SYN regardless of queue state (Experiment 1 needs the
  /// puzzle path exercised without an attack filling the queues).
  bool always_challenge = false;
  /// Hysteresis for the puzzles controller: protection engages the moment
  /// either queue fills and stays "in effect" (§5) for this long after the
  /// last full-queue observation. Without a hold, every established
  /// connection momentarily opens one queue slot and an attacker SYN
  /// recycles it within an RTT, leaking flood connections at the accept
  /// drain rate. The default matches the ~30 s attack-end detection time
  /// the paper reports; periodic re-fills during a long attack produce
  /// exactly the opportunistic openings ("dark ticks") of Fig. 8.
  SimTime protection_hold = SimTime::seconds(60);
  /// Occupancy fraction at which the puzzles controller engages. 1.0 is the
  /// paper's "when the socket's queue is full"; lowering it shrinks the
  /// burst of unchallenged connections admitted while an attack ramps up,
  /// at the cost of the listen queue no longer filling with parked attack
  /// state (the saturation Fig. 10 shows).
  double protection_engage_water = 1.0;
};

/// Everything the evaluation measures, in one place. All counters are
/// cumulative over the listener's lifetime.
struct ListenerCounters {
  std::uint64_t syns_received = 0;
  std::uint64_t synacks_sent = 0;        ///< total, all kinds
  std::uint64_t plain_synacks = 0;       ///< no challenge, no cookie
  std::uint64_t challenges_sent = 0;
  std::uint64_t cookies_sent = 0;
  std::uint64_t synack_retx = 0;
  std::uint64_t drops_listen_full = 0;   ///< SYN dropped, no defence active

  std::uint64_t acks_received = 0;
  std::uint64_t solution_acks = 0;
  std::uint64_t solutions_valid = 0;
  std::uint64_t solutions_invalid = 0;
  std::uint64_t solutions_expired = 0;
  std::uint64_t solutions_bad_ackno = 0;
  std::uint64_t solutions_duplicate = 0;  ///< replay of an already-admitted flow
  std::uint64_t acks_ignored_accept_full = 0;
  std::uint64_t cookies_valid = 0;
  std::uint64_t cookies_invalid = 0;
  std::uint64_t cookie_drops_accept_full = 0;
  std::uint64_t acks_pending_accept = 0;  ///< handshake done, accept queue full

  std::uint64_t established_total = 0;
  std::uint64_t established_queue = 0;
  std::uint64_t established_cookie = 0;
  std::uint64_t established_puzzle = 0;

  std::uint64_t half_open_expired = 0;
  std::uint64_t rsts_sent = 0;
  std::uint64_t data_segments = 0;
  std::uint64_t data_unknown_flow = 0;

  /// Secret-rotation bookkeeping (fleet deployments rotate the puzzle secret
  /// across every replica; see src/fleet/secret_directory.hpp).
  std::uint64_t secret_rotations = 0;
  std::uint64_t solutions_valid_prev_epoch = 0;  ///< verified in the overlap window
  std::uint64_t solutions_replay_filtered = 0;   ///< cluster-level replay rejections

  /// Cumulative crypto work (hash operations) the listener performed for
  /// challenge generation, solution verification and cookie MACs. The
  /// simulator charges this to the server's CPU model.
  std::uint64_t crypto_hash_ops = 0;
};

/// Field-wise accumulation, for fleet-level aggregation over replicas.
ListenerCounters& operator+=(ListenerCounters& into, const ListenerCounters& c);

class Listener {
 public:
  /// `engine` may be null unless mode is kPuzzles (it can also be installed
  /// later via set_engine, before enabling puzzles).
  Listener(ListenerConfig cfg, crypto::SecretKey secret, std::uint64_t seed,
           std::shared_ptr<const puzzle::PuzzleEngine> engine = nullptr);

  /// Feed one incoming segment; returns segments to transmit.
  [[nodiscard]] std::vector<Segment> on_segment(SimTime now, const Segment& seg);

  /// Periodic maintenance: SYN-ACK retransmission, half-open expiry, and
  /// promotion of handshake-complete entries into a freed accept queue.
  [[nodiscard]] std::vector<Segment> on_tick(SimTime now);

  /// Application-side accept(): dequeues one established connection.
  [[nodiscard]] std::optional<AcceptedConnection> accept(SimTime now);

  /// Application-side close: releases all state for the flow.
  void close(const FlowKey& flow);

  /// Handler invoked for data segments on established flows.
  using DataHandler =
      std::function<void(SimTime now, const FlowKey& flow, const Segment& seg)>;
  void set_data_handler(DataHandler handler) { data_handler_ = std::move(handler); }

  /// Invoked whenever a connection is established (from any path) — the
  /// metrics layer classifies these by source address.
  using EstablishHandler =
      std::function<void(SimTime now, const AcceptedConnection& conn)>;
  void set_establish_handler(EstablishHandler handler) {
    establish_handler_ = std::move(handler);
  }

  // -- runtime tuning (the sysctl interface of §5) --------------------------
  void set_mode(DefenseMode mode);
  void set_difficulty(puzzle::Difficulty d);
  void set_engine(std::shared_ptr<const puzzle::PuzzleEngine> engine);

  // -- secret rotation (fleet deployments) -----------------------------------
  /// Installs a new puzzle secret/engine epoch. The outgoing pair becomes
  /// the *previous* epoch: challenges are minted only from the new secret,
  /// but solutions minted under the previous one keep verifying until
  /// drop_previous_secret() ends the overlap window. SYN cookies keep the
  /// construction-time secret (their validity window is seconds and they are
  /// not part of the cross-replica scheme).
  void rotate_secret(crypto::SecretKey secret,
                     std::shared_ptr<const puzzle::PuzzleEngine> engine);
  /// Ends the rotation overlap: previous-epoch solutions stop verifying.
  void drop_previous_secret();
  [[nodiscard]] bool has_previous_secret() const { return prev_.has_value(); }
  /// Monotone epoch number, starting at 0; bumped by each rotate_secret().
  [[nodiscard]] std::uint32_t secret_epoch() const { return epoch_; }

  /// Cluster-level replay protection hook: invoked with (flow, challenge
  /// timestamp, now in ms) after a solution verifies and before the
  /// connection is admitted. A true return means another replica already
  /// admitted this solution; the ACK is then dropped as a duplicate. The
  /// filter is expected to have check-and-insert semantics (see
  /// fleet::ReplayCache).
  using ReplayFilter = std::function<bool(
      const FlowKey& flow, std::uint32_t ts, std::uint32_t now_ms)>;
  void set_replay_filter(ReplayFilter filter) {
    replay_filter_ = std::move(filter);
  }

  // -- introspection ---------------------------------------------------------
  [[nodiscard]] std::size_t listen_depth() const { return listen_.size(); }
  [[nodiscard]] std::size_t accept_depth() const { return accept_.size(); }
  [[nodiscard]] std::size_t established_count() const {
    return established_.size();
  }
  [[nodiscard]] bool is_established(const FlowKey& flow) const {
    return established_.contains(flow);
  }
  [[nodiscard]] const ListenerCounters& counters() const { return counters_; }
  [[nodiscard]] const ListenerConfig& config() const { return cfg_; }
  /// True when the next SYN would be answered with a challenge.
  [[nodiscard]] bool protection_active() const;

  /// Returns the crypto hash-op count accumulated since the last call and
  /// resets the accumulator (for CPU-time charging by the simulator).
  [[nodiscard]] std::uint64_t take_hash_ops();

 private:
  struct EstablishedConn {
    AcceptedConnection conn;
    bool accepted = false;
  };

  [[nodiscard]] std::vector<Segment> handle_syn(SimTime now, const Segment& seg);
  [[nodiscard]] std::vector<Segment> handle_ack(SimTime now, const Segment& seg);
  [[nodiscard]] std::vector<Segment> handle_solution_ack(SimTime now,
                                                         const Segment& seg);

  [[nodiscard]] Segment make_synack(const HalfOpenEntry& entry,
                                    std::uint32_t now_ms) const;
  [[nodiscard]] Segment make_rst(const Segment& in) const;
  [[nodiscard]] std::uint32_t stateless_iss(const FlowKey& flow,
                                            std::uint32_t ts) const;
  [[nodiscard]] static std::uint32_t stateless_iss_with(
      const crypto::SecretKey& secret, const FlowKey& flow, std::uint32_t ts);
  void establish(SimTime now, const AcceptedConnection& conn);

  /// Truncation to the 32-bit millisecond wire clock (TCP timestamps and the
  /// challenge/solution blocks are 32-bit on the wire). This wraps every
  /// ~49.7 simulated days BY DESIGN; every consumer — challenge freshness
  /// (puzzle::check_freshness), the replay cache TTL and the cookie counter
  /// — therefore compares timestamps with wrap-safe serial-number
  /// arithmetic, never with raw magnitude. See DESIGN.md, "Time discipline".
  [[nodiscard]] static std::uint32_t to_ms(SimTime t) {
    return static_cast<std::uint32_t>(t.nanos() / 1'000'000);
  }
  [[nodiscard]] static std::uint32_t to_sec(SimTime t) {
    return static_cast<std::uint32_t>(t.nanos() / 1'000'000'000);
  }

  /// A retired secret epoch, kept alive through the rotation overlap window.
  struct PrevEpoch {
    crypto::SecretKey secret;
    std::shared_ptr<const puzzle::PuzzleEngine> engine;
  };

  ListenerConfig cfg_;
  crypto::SecretKey secret_;
  std::shared_ptr<const puzzle::PuzzleEngine> engine_;
  std::optional<PrevEpoch> prev_;
  std::uint32_t epoch_ = 0;
  SynCookieCodec cookies_;
  Rng rng_;

  ListenQueue listen_;
  AcceptQueue accept_;
  std::unordered_map<FlowKey, EstablishedConn, FlowKeyHash> established_;

  void update_protection(SimTime now);

  DataHandler data_handler_;
  EstablishHandler establish_handler_;
  ReplayFilter replay_filter_;
  ListenerCounters counters_;
  std::uint64_t hash_ops_pending_ = 0;
  bool protection_latched_ = false;
  SimTime protection_hold_until_ = SimTime::zero();
};

}  // namespace tcpz::tcp
