#include "tcp/listener.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "crypto/hmac.hpp"
#include "defense/spec.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace tcpz::tcp {
namespace {

/// The DefenseMode compatibility shim: map the legacy enum + flat knobs to
/// the equivalent declarative policy spec.
defense::PolicySpec legacy_spec(const ListenerConfig& cfg, DefenseMode mode) {
  defense::PolicySpec spec = defense::PolicySpec::from_mode(mode);
  spec.always_challenge = cfg.always_challenge;
  spec.cookie_fallback = cfg.cookie_fallback;
  spec.protection_hold = cfg.protection_hold;
  spec.protection_engage_water = cfg.protection_engage_water;
  return spec;
}

}  // namespace

Listener::Listener(ListenerConfig cfg, crypto::SecretKey secret,
                   std::uint64_t seed,
                   std::shared_ptr<const puzzle::PuzzleEngine> engine)
    : cfg_(cfg),
      secret_(secret),
      engine_(std::move(engine)),
      cookies_(secret),
      rng_(seed),
      policy_(cfg_.policy ? cfg_.policy()
                          : legacy_spec(cfg_, cfg_.mode).build()),
      listen_(cfg.listen_backlog),
      accept_(cfg.accept_backlog) {
  if (!policy_) {
    throw std::invalid_argument("Listener: policy factory returned null");
  }
  if (policy_->requires_engine() && !engine_) {
    throw std::invalid_argument(
        "Listener: policy requires a PuzzleEngine (or cookie_fallback)");
  }
}

void Listener::set_policy(std::unique_ptr<defense::DefensePolicy> policy) {
  if (!policy) {
    throw std::invalid_argument("Listener: null policy");
  }
  if (policy->requires_engine() && !engine_) {
    throw std::invalid_argument("Listener: no PuzzleEngine installed");
  }
  policy_ = std::move(policy);
}

void Listener::set_mode(DefenseMode mode) {
  set_policy(legacy_spec(cfg_, mode).build());
  cfg_.mode = mode;
}

void Listener::set_difficulty(puzzle::Difficulty d) {
  if (d.k == 0 || d.m == 0) {
    throw std::invalid_argument("Listener: difficulty must have k,m >= 1");
  }
  cfg_.difficulty = d;
}

void Listener::set_engine(std::shared_ptr<const puzzle::PuzzleEngine> engine) {
  engine_ = std::move(engine);
}

void Listener::rotate_secret(crypto::SecretKey secret,
                             std::shared_ptr<const puzzle::PuzzleEngine> engine) {
  if (!engine) {
    throw std::invalid_argument("Listener::rotate_secret: engine required");
  }
  prev_ = PrevEpoch{secret_, std::move(engine_)};
  secret_ = secret;
  engine_ = std::move(engine);
  ++epoch_;
  ++counters_.secret_rotations;
}

void Listener::drop_previous_secret() { prev_.reset(); }

defense::QueueView Listener::queue_view() const {
  defense::QueueView q;
  q.listen_depth = listen_.size() + static_cast<std::size_t>(fluid_listen_);
  q.listen_capacity = listen_.capacity();
  q.listen_full = listen_.full() || q.listen_depth >= q.listen_capacity;
  q.accept_depth = accept_.size() + static_cast<std::size_t>(fluid_accept_);
  q.accept_capacity = accept_.capacity();
  q.accept_full = accept_.full() || q.accept_depth >= q.accept_capacity;
  q.has_engine = engine_ != nullptr;
  return q;
}

void Listener::add_mass(std::uint64_t& counter, double& frac, double mass) {
  frac += mass;
  const double whole = std::floor(frac);
  counter += static_cast<std::uint64_t>(whole);
  frac -= whole;
}

void Listener::set_fluid_occupancy(double listen, double accept) {
  fluid_listen_ = std::max(0.0, listen);
  fluid_accept_ = std::max(0.0, accept);
}

Listener::FluidAdmission Listener::admit_fluid_syns(SimTime now,
                                                    double offered) {
  FluidAdmission out;
  out.difficulty = cfg_.difficulty;
  if (offered <= 0.0) return out;
  observe_policy(now);
  add_mass(counters_.fluid_syns_offered, frac_offered_, offered);

  // One policy verdict covers the whole tick's mass: the same on_syn call a
  // discrete SYN gets, over the combined queue view.
  const defense::SynDecision verdict = policy_->on_syn(now, queue_view());
  switch (verdict.action) {
    case defense::SynAction::kChallenge:
      if (engine_ == nullptr) {
        out.dropped = offered;
        break;
      }
      out.challenged = offered;
      // g(p) = 1 hash per minted challenge, charged like the discrete path.
      add_mass(counters_.crypto_hash_ops, frac_crypto_ops_, offered);
      hash_ops_pending_ += static_cast<std::uint64_t>(offered);
      break;
    case defense::SynAction::kCookie:
      out.cookied = offered;
      add_mass(counters_.crypto_hash_ops, frac_crypto_ops_, offered);
      hash_ops_pending_ += static_cast<std::uint64_t>(offered);
      break;
    case defense::SynAction::kDrop:
      out.dropped = offered;
      break;
    case defense::SynAction::kEnqueue: {
      // Room-limited: the fluid share of the listen queue is whatever space
      // the combined occupancy leaves.
      const double room =
          std::max(0.0, static_cast<double>(listen_.capacity()) -
                            (static_cast<double>(listen_.size()) + fluid_listen_));
      out.enqueued = std::min(offered, room);
      out.dropped = offered - out.enqueued;
      break;
    }
  }

  add_mass(counters_.fluid_enqueued, frac_enqueued_, out.enqueued);
  add_mass(counters_.fluid_challenged, frac_challenged_, out.challenged);
  add_mass(counters_.fluid_cookied, frac_cookied_, out.cookied);
  add_mass(counters_.fluid_dropped, frac_dropped_, out.dropped);
  TCPZ_TRACE(now, obs::Code::kFluidOffer, cfg_.trace_track,
             static_cast<std::uint64_t>(offered * 1000.0),
             static_cast<std::uint64_t>(out.dropped * 1000.0));
  if (out.challenged > 0.0) {
    TCPZ_TRACE(now, obs::Code::kFluidChallenge, cfg_.trace_track,
               static_cast<std::uint64_t>(out.challenged * 1000.0),
               (static_cast<std::uint64_t>(cfg_.difficulty.k) << 8) |
                   cfg_.difficulty.m);
  }
  return out;
}

double Listener::admit_fluid_handshakes(SimTime now, double offered,
                                        bool puzzle_path) {
  if (offered <= 0.0) return 0.0;
  observe_policy(now);
  if (puzzle_path) {
    add_mass(counters_.fluid_solution_acks, frac_solutions_, offered);
    // d(p) hashes per verification, charged like the discrete path.
    const double verify_ops =
        offered * cfg_.difficulty.expected_verify_hashes();
    add_mass(counters_.crypto_hash_ops, frac_crypto_ops_, verify_ops);
    hash_ops_pending_ += static_cast<std::uint64_t>(verify_ops);
  }
  // §5 semantics, aggregated: a saturated accept queue ignores the whole
  // tick's completion mass (deception); otherwise the mass establishes up to
  // the room the combined occupancy leaves.
  double admitted = 0.0;
  if (!accept_saturated()) {
    const double room =
        std::max(0.0, static_cast<double>(accept_.capacity()) -
                          (static_cast<double>(accept_.size()) + fluid_accept_));
    admitted = std::min(offered, room);
  }
  const double deceived = offered - admitted;
  add_mass(counters_.fluid_established, frac_established_, admitted);
  add_mass(counters_.fluid_deceived, frac_deceived_, deceived);
  if (admitted > 0.0) {
    TCPZ_TRACE(now, obs::Code::kFluidEstablish, cfg_.trace_track,
               static_cast<std::uint64_t>(admitted * 1000.0),
               puzzle_path ? 1u : 0u);
  }
  if (deceived > 0.0) {
    TCPZ_TRACE(now, obs::Code::kFluidDeceive, cfg_.trace_track,
               static_cast<std::uint64_t>(deceived * 1000.0),
               puzzle_path ? 1u : 0u);
  }
  return admitted;
}

bool Listener::protection_active() const {
  return policy_->protection_active(queue_view());
}

void Listener::observe_policy(SimTime now) {
  obs::Recorder* rec = obs::recorder();
  if (rec == nullptr || !rec->wants(obs::Cat::kDefense)) [[likely]] {
    policy_->observe(now, queue_view());
    return;
  }
  // Traced path: bracket the observe call with protection_active probes so
  // edge-triggered latch flips (PuzzlePolicy/HybridPolicy watermarks) show
  // up as explicit transition events.
  const defense::QueueView q = queue_view();
  const bool before = policy_->protection_active(q);
  policy_->observe(now, q);
  const bool after = policy_->protection_active(q);
  if (before != after) {
    rec->record(now,
                after ? obs::Code::kLatchEngage : obs::Code::kLatchDisengage,
                cfg_.trace_track, q.listen_depth, q.accept_depth);
  }
}

std::uint32_t Listener::stateless_iss_with(const crypto::SecretKey& secret,
                                           const FlowKey& flow,
                                           std::uint32_t ts) {
  // Per-packet MAC: cached-midstate HMAC over a stack-assembled message —
  // no key schedule, no heap.
  constexpr char kLabel[] = "tcpz-iss-v1";
  constexpr std::size_t kLabelLen = sizeof(kLabel) - 1;
  std::uint8_t msg[kLabelLen + 16];
  std::memcpy(msg, kLabel, kLabelLen);
  std::uint8_t* p = msg + kLabelLen;
  p = store_u32be(p, flow.raddr);
  p = store_u16be(p, flow.rport);
  p = store_u32be(p, flow.laddr);
  p = store_u16be(p, flow.lport);
  p = store_u32be(p, ts);
  const auto d = secret.hmac().mac(
      std::span<const std::uint8_t>(msg, static_cast<std::size_t>(p - msg)));
  return (static_cast<std::uint32_t>(d[0]) << 24) |
         (static_cast<std::uint32_t>(d[1]) << 16) |
         (static_cast<std::uint32_t>(d[2]) << 8) | d[3];
}

std::uint32_t Listener::stateless_iss(const FlowKey& flow,
                                      std::uint32_t ts) const {
  return stateless_iss_with(secret_, flow, ts);
}

std::uint64_t Listener::take_hash_ops() {
  const std::uint64_t ops = hash_ops_pending_;
  hash_ops_pending_ = 0;
  return ops;
}

std::vector<Segment> Listener::on_segment(SimTime now, const Segment& seg) {
  if (seg.daddr != cfg_.local_addr || seg.dport != cfg_.local_port) return {};
  observe_policy(now);

  if (seg.is_rst()) {
    const FlowKey flow = FlowKey::from_incoming(seg);
    listen_.erase(flow);
    established_.erase(flow);
    return {};
  }
  if (seg.is_syn()) return handle_syn(now, seg);
  if (seg.flags & kAck) return handle_ack(now, seg);
  return {};
}

Segment Listener::make_synack(const HalfOpenEntry& entry,
                              std::uint32_t now_ms) const {
  Segment s;
  s.saddr = entry.flow.laddr;
  s.daddr = entry.flow.raddr;
  s.sport = entry.flow.lport;
  s.dport = entry.flow.rport;
  s.seq = entry.iss;
  s.ack = entry.client_isn + 1;
  s.flags = kSyn | kAck;
  s.options.mss = cfg_.mss;
  s.options.wscale = cfg_.wscale;
  if (cfg_.use_timestamps && entry.peer_ts_ok) {
    s.options.ts = TimestampsOption{now_ms, entry.peer_tsval};
  }
  return s;
}

Segment Listener::make_challenge_synack(const Segment& seg, const FlowKey& flow,
                                        std::uint32_t now_ms) {
  // Stateless challenge path: derive everything from the secret and the
  // packet; nothing is enqueued.
  puzzle::FlowBinding bind{seg.saddr, seg.daddr, seg.sport, seg.dport, seg.seq};
  const puzzle::Challenge ch =
      engine_->make_challenge(bind, now_ms, cfg_.difficulty);
  hash_ops_pending_ +=
      static_cast<std::uint64_t>(puzzle::Difficulty::generate_hashes());
  counters_.crypto_hash_ops += 1;

  Segment s;
  s.saddr = seg.daddr;
  s.daddr = seg.saddr;
  s.sport = seg.dport;
  s.dport = seg.sport;
  s.seq = stateless_iss(flow, now_ms);
  s.ack = seg.seq + 1;
  s.flags = kSyn | kAck;
  s.options.mss = cfg_.mss;
  s.options.wscale = cfg_.wscale;
  ChallengeOption copt;
  copt.k = ch.diff.k;
  copt.m = ch.diff.m;
  copt.sol_len = ch.sol_len;
  copt.preimage = ch.preimage;
  if (cfg_.use_timestamps && seg.options.ts.has_value()) {
    s.options.ts = TimestampsOption{now_ms, seg.options.ts->tsval};
  } else {
    copt.embedded_ts = now_ms;
  }
  s.options.challenge = std::move(copt);
  ++counters_.challenges_sent;
  ++counters_.synacks_sent;
  return s;
}

Segment Listener::make_cookie_synack(const Segment& seg, const FlowKey& flow,
                                     SimTime now) {
  const std::uint16_t peer_mss = seg.options.mss.value_or(536);
  const std::uint32_t cookie =
      cookies_.encode(flow, seg.seq, peer_mss, to_sec(now));
  counters_.crypto_hash_ops += 1;
  ++hash_ops_pending_;

  Segment s;
  s.saddr = seg.daddr;
  s.daddr = seg.saddr;
  s.sport = seg.dport;
  s.dport = seg.sport;
  s.seq = cookie;
  s.ack = seg.seq + 1;
  s.flags = kSyn | kAck;
  // SYN cookies cannot carry wscale and only an approximate MSS — this is
  // the performance loss §5 calls out.
  s.options.mss = SynCookieCodec::kMssTable[SynCookieCodec::mss_to_index(peer_mss)];
  if (cfg_.use_timestamps && seg.options.ts.has_value()) {
    s.options.ts = TimestampsOption{to_ms(now), seg.options.ts->tsval};
  }
  ++counters_.cookies_sent;
  ++counters_.synacks_sent;
  return s;
}

Segment Listener::make_rst(const Segment& in) const {
  Segment s;
  s.saddr = in.daddr;
  s.daddr = in.saddr;
  s.sport = in.dport;
  s.dport = in.sport;
  s.seq = in.ack;
  s.ack = in.seq + in.payload_bytes;
  s.flags = kRst | kAck;
  return s;
}

std::vector<Segment> Listener::handle_syn(SimTime now, const Segment& seg) {
  ++counters_.syns_received;
  const FlowKey flow = FlowKey::from_incoming(seg);
  const std::uint32_t now_ms = to_ms(now);

  // Retransmitted SYN for an existing half-open connection: resend SYN-ACK.
  if (HalfOpenEntry* entry = listen_.find(flow)) {
    ++counters_.synack_retx;
    ++counters_.synacks_sent;
    TCPZ_TRACE(now, obs::Code::kSynRetxRequest, cfg_.trace_track, flow,
               entry->retx_count);
    return {make_synack(*entry, now_ms)};
  }
  // SYN for an already-established flow: ignore (simplified; stock stacks
  // send a challenge-ACK here).
  if (established_.contains(flow)) return {};

  const defense::SynDecision verdict = policy_->on_syn(now, queue_view());
  switch (verdict.action) {
    case defense::SynAction::kChallenge:
      // Policies only request a challenge when the view showed an engine;
      // treat a violation as overload (nothing can be minted).
      if (!engine_) {
        ++counters_.drops_queue_overflow;
        TCPZ_TRACE(now, obs::Code::kSynDropOverflow, cfg_.trace_track, flow);
        return {};
      }
      TCPZ_TRACE(now, obs::Code::kSynChallenge, cfg_.trace_track, flow,
                 (static_cast<std::uint64_t>(cfg_.difficulty.k) << 8) |
                     cfg_.difficulty.m);
      return {make_challenge_synack(seg, flow, now_ms)};
    case defense::SynAction::kCookie:
      TCPZ_TRACE(now, obs::Code::kSynCookie, cfg_.trace_track, flow);
      return {make_cookie_synack(seg, flow, now)};
    case defense::SynAction::kDrop:
      if (verdict.drop_reason == defense::DropReason::kOverflow) {
        ++counters_.drops_queue_overflow;
        TCPZ_TRACE(now, obs::Code::kSynDropOverflow, cfg_.trace_track, flow);
      } else {
        ++counters_.drops_policy;
        TCPZ_TRACE(now, obs::Code::kSynDropPolicy, cfg_.trace_track, flow);
      }
      return {};
    case defense::SynAction::kEnqueue:
      break;
  }
  // No stateless answer and no room (counting the fluid share): the SYN is
  // dropped even if the policy asked to enqueue (queue mechanics stay with
  // the listener).
  if (listen_saturated()) {
    ++counters_.drops_queue_overflow;
    TCPZ_TRACE(now, obs::Code::kSynDropOverflow, cfg_.trace_track, flow);
    return {};
  }

  // Normal, opportunistic path: allocate half-open state.
  HalfOpenEntry entry;
  entry.flow = flow;
  entry.client_isn = seg.seq;
  entry.iss = static_cast<std::uint32_t>(rng_.next());
  entry.peer_mss = seg.options.mss.value_or(536);
  entry.peer_wscale = seg.options.wscale.value_or(0);
  entry.peer_ts_ok = seg.options.ts.has_value();
  entry.peer_tsval = entry.peer_ts_ok ? seg.options.ts->tsval : 0;
  entry.created = now;
  entry.next_retx = now + cfg_.synack_timeout;
  listen_.insert(entry);

  ++counters_.plain_synacks;
  ++counters_.synacks_sent;
  TCPZ_TRACE(now, obs::Code::kSynEnqueue, cfg_.trace_track, flow,
             listen_.size());
  return {make_synack(entry, now_ms)};
}

std::vector<Segment> Listener::handle_ack(SimTime now, const Segment& seg) {
  ++counters_.acks_received;
  const FlowKey flow = FlowKey::from_incoming(seg);
  const defense::AckDecision dispatch = policy_->on_ack(now, queue_view());

  // 1. ACK carrying a puzzle solution.
  if (seg.options.solution && dispatch.check_solution && engine_) {
    return handle_solution_ack(now, seg);
  }

  // 2. Final ACK of a stateful handshake (also reached by a duplicate ACK or
  // by the first data segment, which carries the same acknowledgment — this
  // is how a parked SYN_RECV entry eventually completes).
  if (HalfOpenEntry* entry = listen_.find(flow)) {
    if (seg.ack != entry->iss + 1) return {};  // stray or spoofed
    if (accept_saturated()) {
      // Linux semantics: the ACK is dropped and the connection request stays
      // in the SYN queue, retransmitting its SYN-ACK until it expires. It
      // completes only if the peer sends again while there is room. Flood
      // tools never send again; real clients do.
      if (!entry->acked) {
        entry->acked = true;
        ++counters_.acks_pending_accept;
        TCPZ_TRACE(now, obs::Code::kAckPendingAccept, cfg_.trace_track, flow);
      }
      return {};
    }
    AcceptedConnection conn;
    conn.flow = flow;
    conn.client_isn = entry->client_isn;
    conn.iss = entry->iss;
    conn.peer_mss = entry->peer_mss;
    conn.peer_wscale = entry->peer_wscale;
    conn.path = EstablishPath::kQueue;
    conn.established_at = now;
    listen_.erase(flow);
    establish(now, conn);
    if (seg.payload_bytes > 0) {
      ++counters_.data_segments;
      if (data_handler_) data_handler_(now, flow, seg);
    }
    return {};
  }

  // 3. Data segment on an established flow.
  if (const auto it = established_.find(flow); it != established_.end()) {
    if (seg.payload_bytes > 0) {
      ++counters_.data_segments;
      if (data_handler_) data_handler_(now, flow, seg);
    }
    return {};
  }

  // 4. Possible SYN-cookie ACK (no local state at all). Cookie ACKs never
  // carry payload; the decode itself stays listener mechanics.
  if (dispatch.check_cookie && seg.payload_bytes == 0) {
    const std::uint32_t cookie = seg.ack - 1;
    const std::uint32_t client_isn = seg.seq - 1;
    counters_.crypto_hash_ops += 1;
    ++hash_ops_pending_;
    if (const auto mss = cookies_.decode(flow, client_isn, cookie, to_sec(now))) {
      ++counters_.cookies_valid;
      TCPZ_TRACE(now, obs::Code::kCookieValid, cfg_.trace_track, flow);
      if (accept_saturated()) {
        ++counters_.cookie_drops_accept_full;
        TCPZ_TRACE(now, obs::Code::kCookieDropFull, cfg_.trace_track, flow);
        return {};
      }
      AcceptedConnection conn;
      conn.flow = flow;
      conn.client_isn = client_isn;
      conn.iss = cookie;
      conn.peer_mss = *mss;
      conn.peer_wscale = 0;  // cookies cannot carry wscale
      conn.path = EstablishPath::kCookie;
      conn.established_at = now;
      establish(now, conn);
      return {};
    }
    ++counters_.cookies_invalid;
    TCPZ_TRACE(now, obs::Code::kCookieInvalid, cfg_.trace_track, flow);
    return {};
  }

  // 5. Unknown flow. Data gets a RST (this is how a deceived flooder learns
  // its "connection" does not exist); bare ACKs are ignored to avoid
  // becoming a RST amplifier under spoofed floods.
  if (seg.payload_bytes > 0) {
    ++counters_.data_unknown_flow;
    TCPZ_TRACE(now, obs::Code::kDataUnknownFlow, cfg_.trace_track, flow);
    if (cfg_.rst_unknown) {
      ++counters_.rsts_sent;
      TCPZ_TRACE(now, obs::Code::kRstSent, cfg_.trace_track, flow);
      return {make_rst(seg)};
    }
  }
  return {};
}

std::vector<Segment> Listener::handle_solution_ack(SimTime now,
                                                   const Segment& seg) {
  ++counters_.solution_acks;
  const FlowKey flow = FlowKey::from_incoming(seg);
  const std::uint32_t now_ms = to_ms(now);
  const SolutionOption& sopt = *seg.options.solution;

  // Recover the challenge timestamp: TSecr when timestamps are in use,
  // otherwise the embedded copy.
  std::uint32_t ts;
  if (seg.options.ts) {
    ts = seg.options.ts->tsecr;
  } else if (sopt.embedded_ts) {
    ts = *sopt.embedded_ts;
  } else {
    ++counters_.solutions_invalid;
    TCPZ_TRACE(now, obs::Code::kSolutionInvalid, cfg_.trace_track, flow);
    return {};
  }

  // The ACK must acknowledge the stateless ISS we derived for this flow and
  // timestamp; otherwise the sender never saw our SYN-ACK. The ISS doubles
  // as the epoch selector after a secret rotation: a challenge minted under
  // the previous secret produced a previous-secret ISS, so a match there
  // routes verification to the previous epoch's engine for the duration of
  // the overlap window.
  bool prev_epoch = false;
  if (seg.ack != stateless_iss(flow, ts) + 1) {
    if (prev_ && seg.ack == stateless_iss_with(prev_->secret, flow, ts) + 1) {
      prev_epoch = true;
    } else {
      ++counters_.solutions_bad_ackno;
      TCPZ_TRACE(now, obs::Code::kSolutionBadAckno, cfg_.trace_track, flow);
      return {};
    }
  }

  // Replay of a flow that is already admitted occupies no additional slot.
  if (established_.contains(flow) || accept_.contains(flow)) {
    ++counters_.solutions_duplicate;
    TCPZ_TRACE(now, obs::Code::kSolutionDuplicate, cfg_.trace_track, flow);
    return {};
  }

  // §5: while under attack, verify only when there is room to accept; a full
  // queue means the ACK is silently ignored (deception: the sender believes
  // the connection exists until its first data segment draws a RST).
  if (accept_saturated()) {
    ++counters_.acks_ignored_accept_full;
    TCPZ_TRACE(now, obs::Code::kSolutionIgnoredFull, cfg_.trace_track, flow);
    return {};
  }

  // Split the concatenated solution bytes into k values of sol_len bytes
  // (per the epoch that minted the challenge, should configs ever differ).
  const std::uint8_t sol_len =
      (prev_epoch ? prev_->engine : engine_)->config().sol_len;
  const unsigned k = cfg_.difficulty.k;
  puzzle::Solution solution;
  solution.timestamp = ts;
  if (sol_len == 0 ||
      sopt.solutions.size() != static_cast<std::size_t>(sol_len) * k) {
    ++counters_.solutions_invalid;
    TCPZ_TRACE(now, obs::Code::kSolutionInvalid, cfg_.trace_track, flow);
    return {};
  }
  solution.values.reserve(k);
  for (unsigned i = 0; i < k; ++i) {
    solution.values.emplace_back(
        sopt.solutions.begin() + static_cast<long>(i) * sol_len,
        sopt.solutions.begin() + static_cast<long>(i + 1) * sol_len);
  }

  puzzle::FlowBinding bind{seg.saddr, seg.daddr, seg.sport, seg.dport,
                           seg.seq - 1};
  const puzzle::PuzzleEngine& engine = prev_epoch ? *prev_->engine : *engine_;
  const puzzle::VerifyOutcome outcome =
      engine.verify(bind, solution, cfg_.difficulty, now_ms);
  counters_.crypto_hash_ops += outcome.hash_ops;
  hash_ops_pending_ += outcome.hash_ops;

  if (!outcome.ok) {
    if (outcome.error == puzzle::VerifyError::kExpired ||
        outcome.error == puzzle::VerifyError::kFutureTimestamp) {
      ++counters_.solutions_expired;
      TCPZ_TRACE(now, obs::Code::kSolutionExpired, cfg_.trace_track, flow);
    } else {
      ++counters_.solutions_invalid;
      TCPZ_TRACE(now, obs::Code::kSolutionInvalid, cfg_.trace_track, flow);
    }
    return {};
  }

  // Cluster-level replay check (after verification: only solutions that
  // actually verify enter the shared cache, and the attacker still pays for
  // forcing the verify work).
  if (replay_filter_ && replay_filter_(flow, ts, now_ms)) {
    ++counters_.solutions_duplicate;
    ++counters_.solutions_replay_filtered;
    TCPZ_TRACE(now, obs::Code::kSolutionReplayed, cfg_.trace_track, flow);
    return {};
  }

  ++counters_.solutions_valid;
  if (prev_epoch) ++counters_.solutions_valid_prev_epoch;
  TCPZ_TRACE(now, obs::Code::kSolutionValid, cfg_.trace_track, flow,
             /*a0=*/0, /*a1=*/prev_epoch ? 1 : 0);
  AcceptedConnection conn;
  conn.flow = flow;
  conn.client_isn = seg.seq - 1;
  conn.iss = seg.ack - 1;
  conn.peer_mss = sopt.mss;        // re-sent in the solution block (§5)
  conn.peer_wscale = sopt.wscale;  // full wscale, unlike SYN cookies
  conn.path = EstablishPath::kPuzzle;
  conn.established_at = now;
  establish(now, conn);
  return {};
}

void Listener::establish(SimTime now, const AcceptedConnection& conn) {
  established_.emplace(conn.flow, EstablishedConn{conn, false});
  accept_.push(conn);
  ++counters_.established_total;
  switch (conn.path) {
    case EstablishPath::kQueue: ++counters_.established_queue; break;
    case EstablishPath::kCookie: ++counters_.established_cookie; break;
    case EstablishPath::kPuzzle: ++counters_.established_puzzle; break;
  }
  TCPZ_TRACE(now, obs::Code::kEstablished, cfg_.trace_track, conn.flow,
             static_cast<std::uint64_t>(conn.path), accept_.size());
  if (establish_handler_) establish_handler_(now, conn);
}

std::vector<Segment> Listener::on_tick(SimTime now) {
  observe_policy(now);
  // Policy control point: e.g. the adaptive decorator retunes difficulty
  // from the counter-derived demand/yield signals.
  const defense::TickDecision decision =
      policy_->on_tick(now, queue_view(), counters_);
  if (decision.difficulty && *decision.difficulty != cfg_.difficulty) {
    TCPZ_TRACE(now, obs::Code::kDifficultyRetune, cfg_.trace_track,
               (static_cast<std::uint64_t>(cfg_.difficulty.k) << 8) |
                   cfg_.difficulty.m,
               (static_cast<std::uint64_t>(decision.difficulty->k) << 8) |
                   decision.difficulty->m);
    set_difficulty(*decision.difficulty);
  }

  std::vector<Segment> out;
  const std::uint32_t now_ms = to_ms(now);

  listen_.retain([&](HalfOpenEntry& entry) {
    // Parked (acked) entries are NOT promoted here: Linux completes them
    // only when the peer transmits again (duplicate ACK or data) while the
    // accept queue has room. They keep retransmitting the SYN-ACK — which is
    // what prompts a live peer to re-ACK — and expire like any half-open.
    if (now >= entry.next_retx) {
      if (entry.retx_count >= cfg_.max_synack_retries) {
        ++counters_.half_open_expired;
        TCPZ_TRACE(now, obs::Code::kHalfOpenExpired, cfg_.trace_track,
                   entry.flow, entry.retx_count);
        return false;
      }
      ++entry.retx_count;
      // Exponential backoff, as the kernel does.
      entry.next_retx = now + cfg_.synack_timeout * (1ll << entry.retx_count);
      ++counters_.synack_retx;
      ++counters_.synacks_sent;
      TCPZ_TRACE(now, obs::Code::kSynackRetx, cfg_.trace_track, entry.flow,
                 entry.retx_count);
      out.push_back(make_synack(entry, now_ms));
    }
    return true;
  });
  return out;
}

std::optional<AcceptedConnection> Listener::accept(SimTime now) {
  (void)now;
  auto conn = accept_.pop();
  if (conn) {
    if (const auto it = established_.find(conn->flow); it != established_.end()) {
      it->second.accepted = true;
    }
  }
  return conn;
}

void Listener::close(const FlowKey& flow) { established_.erase(flow); }

}  // namespace tcpz::tcp
