#include "tcp/wire.hpp"

namespace tcpz::tcp {

const char* to_string(WireDecodeError e) {
  switch (e) {
    case WireDecodeError::kTruncated: return "truncated";
    case WireDecodeError::kBadDataOffset: return "bad-data-offset";
    case WireDecodeError::kBadChecksum: return "bad-checksum";
    case WireDecodeError::kBadOptions: return "bad-options";
  }
  return "unknown";
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

namespace {

/// The IPv4 pseudo-header + TCP header/options image used for checksumming.
/// `checksum_field_zeroed` must hold the TCP bytes with the checksum zeroed.
std::uint16_t tcp_checksum(const Segment& seg,
                           std::span<const std::uint8_t> tcp_bytes) {
  Bytes pseudo;
  pseudo.reserve(12 + tcp_bytes.size());
  put_u32be(pseudo, seg.saddr);
  put_u32be(pseudo, seg.daddr);
  pseudo.push_back(0);
  pseudo.push_back(6);  // protocol = TCP
  put_u16be(pseudo, static_cast<std::uint16_t>(tcp_bytes.size()));
  pseudo.insert(pseudo.end(), tcp_bytes.begin(), tcp_bytes.end());
  return internet_checksum(pseudo);
}

}  // namespace

Bytes encode_segment(const Segment& seg) {
  const Bytes opts = encode_options(seg.options);

  Bytes tcp;
  tcp.reserve(kTcpHeaderSize + opts.size());
  put_u16be(tcp, seg.sport);
  put_u16be(tcp, seg.dport);
  put_u32be(tcp, seg.seq);
  put_u32be(tcp, seg.ack);
  const auto data_off =
      static_cast<std::uint8_t>((kTcpHeaderSize + opts.size()) / 4);
  tcp.push_back(static_cast<std::uint8_t>(data_off << 4));
  tcp.push_back(seg.flags);
  put_u16be(tcp, seg.window);
  put_u16be(tcp, 0);  // checksum placeholder
  put_u16be(tcp, 0);  // urgent pointer
  tcp.insert(tcp.end(), opts.begin(), opts.end());

  const std::uint16_t csum = tcp_checksum(seg, tcp);
  tcp[16] = static_cast<std::uint8_t>(csum >> 8);
  tcp[17] = static_cast<std::uint8_t>(csum);

  Bytes out;
  out.reserve(kWirePreambleSize + tcp.size());
  put_u32be(out, seg.saddr);
  put_u32be(out, seg.daddr);
  put_u32be(out, seg.payload_bytes);
  out.insert(out.end(), tcp.begin(), tcp.end());
  return out;
}

WireDecodeResult decode_segment(std::span<const std::uint8_t> wire) {
  WireDecodeResult result;
  if (wire.size() < kWirePreambleSize + kTcpHeaderSize) {
    result.error = WireDecodeError::kTruncated;
    return result;
  }

  Segment seg;
  std::uint32_t payload;
  (void)get_u32be(wire, 0, seg.saddr);
  (void)get_u32be(wire, 4, seg.daddr);
  (void)get_u32be(wire, 8, payload);
  seg.payload_bytes = payload;

  const std::span<const std::uint8_t> tcp = wire.subspan(kWirePreambleSize);
  std::uint16_t v16;
  std::uint32_t v32;
  (void)get_u16be(tcp, 0, v16);
  seg.sport = v16;
  (void)get_u16be(tcp, 2, v16);
  seg.dport = v16;
  (void)get_u32be(tcp, 4, v32);
  seg.seq = v32;
  (void)get_u32be(tcp, 8, v32);
  seg.ack = v32;

  const unsigned header_len = (tcp[12] >> 4) * 4u;
  if (header_len < kTcpHeaderSize || header_len > tcp.size()) {
    result.error = WireDecodeError::kBadDataOffset;
    return result;
  }
  seg.flags = tcp[13];
  (void)get_u16be(tcp, 14, v16);
  seg.window = v16;
  std::uint16_t wire_csum;
  (void)get_u16be(tcp, 16, wire_csum);

  // Recompute the checksum with the field zeroed.
  Bytes tcp_copy(tcp.begin(), tcp.begin() + header_len);
  tcp_copy[16] = 0;
  tcp_copy[17] = 0;
  if (tcp_checksum(seg, tcp_copy) != wire_csum) {
    result.error = WireDecodeError::kBadChecksum;
    return result;
  }

  const std::span<const std::uint8_t> opts =
      tcp.subspan(kTcpHeaderSize, header_len - kTcpHeaderSize);
  if (decode_options(opts, seg.options) != DecodeResult::kOk) {
    result.error = WireDecodeError::kBadOptions;
    return result;
  }
  result.segment = std::move(seg);
  return result;
}

}  // namespace tcpz::tcp
