// Client-side handshake state machine.
//
// A "patched" connector (solve_puzzles = true) recognises the challenge
// option in a SYN-ACK, asks its host to solve it (the host charges the solve
// time to its CPU model — in the kernel this brute force happens inline),
// and answers with an ACK carrying the solution block. A legacy connector
// skips the unknown option — exactly what an unpatched stack does — and
// sends a plain ACK, believing the connection established; if the server was
// protecting itself, that connection does not exist and the first data
// segment draws a RST (§6.5).
//
// Like Listener, this is sans-I/O.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "puzzle/types.hpp"
#include "tcp/segment.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace tcpz::tcp {

enum class ConnectorState : std::uint8_t {
  kClosed,
  kSynSent,
  kSolving,      ///< challenge received, waiting for the solver
  kEstablished,  ///< from our side; the server may have silently dropped us
  kFailed,
};

enum class ConnectFail : std::uint8_t {
  kNone,
  kTimeout,            ///< SYN retries exhausted
  kReset,              ///< RST received
  kRefusedDifficulty,  ///< puzzle price above our valuation w_i
  kBadChallenge,       ///< malformed challenge option
};

[[nodiscard]] const char* to_string(ConnectorState s);
[[nodiscard]] const char* to_string(ConnectFail f);

struct ConnectorConfig {
  std::uint32_t local_addr = 0;
  std::uint16_t local_port = 0;
  std::uint32_t remote_addr = 0;
  std::uint16_t remote_port = 80;
  /// Patched stack? Legacy stacks ignore the challenge option.
  bool solve_puzzles = true;
  /// The client's valuation w_i as a hash budget: refuse puzzles whose
  /// expected cost exceeds it (§4.2: clients with w_i below the price drop
  /// out).
  double max_price_hashes = std::numeric_limits<double>::infinity();
  SimTime syn_timeout = SimTime::seconds(1);
  int max_syn_retries = 3;
  std::uint16_t mss = 1460;
  std::uint8_t wscale = 7;
  bool use_timestamps = true;
};

struct ConnectorOutput {
  std::vector<Segment> segments;
  /// Set when the host must run the puzzle solver and then call on_solved().
  std::optional<puzzle::Challenge> solve;
  bool established = false;
  bool failed = false;
  ConnectFail reason = ConnectFail::kNone;
};

class Connector {
 public:
  Connector(ConnectorConfig cfg, std::uint64_t seed);

  /// Emits the initial SYN.
  [[nodiscard]] ConnectorOutput start(SimTime now);
  [[nodiscard]] ConnectorOutput on_segment(SimTime now, const Segment& seg);
  /// Host callback once the solver finished; emits the solution ACK.
  [[nodiscard]] ConnectorOutput on_solved(SimTime now,
                                          const puzzle::Solution& solution);
  /// SYN retransmission / timeout processing.
  [[nodiscard]] ConnectorOutput on_tick(SimTime now);

  /// Data segment on the established connection (request/response payloads).
  [[nodiscard]] Segment make_data_segment(SimTime now,
                                          std::uint32_t payload_bytes);

  [[nodiscard]] ConnectorState state() const { return state_; }
  [[nodiscard]] std::uint32_t iss() const { return iss_; }
  /// Binding used for the puzzle pre-image (valid once started).
  [[nodiscard]] puzzle::FlowBinding flow_binding() const;
  /// Negotiated peer parameters (valid once established).
  [[nodiscard]] std::uint16_t peer_mss() const { return peer_mss_; }
  [[nodiscard]] bool was_challenged() const { return was_challenged_; }

 private:
  [[nodiscard]] Segment make_syn(SimTime now) const;
  [[nodiscard]] Segment make_plain_ack(SimTime now) const;

  [[nodiscard]] static std::uint32_t to_ms(SimTime t) {
    return static_cast<std::uint32_t>(t.nanos() / 1'000'000);
  }

  ConnectorConfig cfg_;
  Rng rng_;
  ConnectorState state_ = ConnectorState::kClosed;

  std::uint32_t iss_ = 0;
  std::uint32_t peer_seq_ = 0;  ///< server's ISS from the SYN-ACK
  std::uint16_t peer_mss_ = 536;
  std::uint8_t peer_wscale_ = 0;
  bool peer_ts_ok_ = false;
  std::uint32_t peer_tsval_ = 0;
  bool was_challenged_ = false;
  std::uint8_t challenge_sol_len_ = 0;

  SimTime next_retx_;
  int retx_count_ = 0;
};

}  // namespace tcpz::tcp
