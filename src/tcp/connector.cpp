#include "tcp/connector.hpp"

#include <stdexcept>

namespace tcpz::tcp {

const char* to_string(ConnectorState s) {
  switch (s) {
    case ConnectorState::kClosed: return "closed";
    case ConnectorState::kSynSent: return "syn-sent";
    case ConnectorState::kSolving: return "solving";
    case ConnectorState::kEstablished: return "established";
    case ConnectorState::kFailed: return "failed";
  }
  return "unknown";
}

const char* to_string(ConnectFail f) {
  switch (f) {
    case ConnectFail::kNone: return "none";
    case ConnectFail::kTimeout: return "timeout";
    case ConnectFail::kReset: return "reset";
    case ConnectFail::kRefusedDifficulty: return "refused-difficulty";
    case ConnectFail::kBadChallenge: return "bad-challenge";
  }
  return "unknown";
}

Connector::Connector(ConnectorConfig cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {}

puzzle::FlowBinding Connector::flow_binding() const {
  return {cfg_.local_addr, cfg_.remote_addr, cfg_.local_port, cfg_.remote_port,
          iss_};
}

Segment Connector::make_syn(SimTime now) const {
  Segment s;
  s.saddr = cfg_.local_addr;
  s.daddr = cfg_.remote_addr;
  s.sport = cfg_.local_port;
  s.dport = cfg_.remote_port;
  s.seq = iss_;
  s.flags = kSyn;
  s.options.mss = cfg_.mss;
  s.options.wscale = cfg_.wscale;
  s.options.sack_permitted = true;
  if (cfg_.use_timestamps) s.options.ts = TimestampsOption{to_ms(now), 0};
  return s;
}

Segment Connector::make_plain_ack(SimTime now) const {
  Segment s;
  s.saddr = cfg_.local_addr;
  s.daddr = cfg_.remote_addr;
  s.sport = cfg_.local_port;
  s.dport = cfg_.remote_port;
  s.seq = iss_ + 1;
  s.ack = peer_seq_ + 1;
  s.flags = kAck;
  if (cfg_.use_timestamps && peer_ts_ok_) {
    s.options.ts = TimestampsOption{to_ms(now), peer_tsval_};
  }
  return s;
}

ConnectorOutput Connector::start(SimTime now) {
  if (state_ != ConnectorState::kClosed) {
    throw std::logic_error("Connector::start called twice");
  }
  iss_ = static_cast<std::uint32_t>(rng_.next());
  state_ = ConnectorState::kSynSent;
  next_retx_ = now + cfg_.syn_timeout;
  retx_count_ = 0;

  ConnectorOutput out;
  out.segments.push_back(make_syn(now));
  return out;
}

ConnectorOutput Connector::on_segment(SimTime now, const Segment& seg) {
  ConnectorOutput out;
  if (seg.daddr != cfg_.local_addr || seg.dport != cfg_.local_port ||
      seg.saddr != cfg_.remote_addr || seg.sport != cfg_.remote_port) {
    return out;
  }

  if (seg.is_rst()) {
    if (state_ != ConnectorState::kClosed && state_ != ConnectorState::kFailed) {
      state_ = ConnectorState::kFailed;
      out.failed = true;
      out.reason = ConnectFail::kReset;
    }
    return out;
  }

  if (!seg.is_syn_ack()) return out;  // data handled at host level

  if (state_ == ConnectorState::kEstablished) {
    // Duplicate SYN-ACK (our ACK was lost): re-ACK. Never re-solve.
    out.segments.push_back(make_plain_ack(now));
    return out;
  }
  if (state_ != ConnectorState::kSynSent) return out;
  if (seg.ack != iss_ + 1) return out;  // not for this attempt

  peer_seq_ = seg.seq;
  peer_mss_ = seg.options.mss.value_or(536);
  peer_wscale_ = seg.options.wscale.value_or(0);
  peer_ts_ok_ = seg.options.ts.has_value();
  peer_tsval_ = peer_ts_ok_ ? seg.options.ts->tsval : 0;

  if (seg.options.challenge && cfg_.solve_puzzles) {
    const ChallengeOption& copt = *seg.options.challenge;
    was_challenged_ = true;

    puzzle::Challenge ch;
    ch.diff = puzzle::Difficulty{copt.k, copt.m};
    ch.sol_len = copt.sol_len;
    ch.preimage = copt.preimage;
    if (copt.embedded_ts) {
      ch.timestamp = *copt.embedded_ts;
    } else if (peer_ts_ok_) {
      ch.timestamp = peer_tsval_;  // echoed back via TSecr
    } else {
      state_ = ConnectorState::kFailed;
      out.failed = true;
      out.reason = ConnectFail::kBadChallenge;
      return out;
    }
    if (copt.k == 0 || copt.m == 0 ||
        copt.preimage.size() != copt.sol_len ||
        copt.m >= static_cast<unsigned>(copt.sol_len) * 8) {
      state_ = ConnectorState::kFailed;
      out.failed = true;
      out.reason = ConnectFail::kBadChallenge;
      return out;
    }
    // The economic decision of §4.2: a client whose valuation w_i is below
    // the asked price walks away.
    if (ch.diff.expected_solve_hashes() > cfg_.max_price_hashes) {
      state_ = ConnectorState::kFailed;
      out.failed = true;
      out.reason = ConnectFail::kRefusedDifficulty;
      return out;
    }
    challenge_sol_len_ = copt.sol_len;
    state_ = ConnectorState::kSolving;
    out.solve = std::move(ch);
    return out;
  }

  // Plain SYN-ACK — or a challenge we cannot see (legacy stack): ACK and
  // consider ourselves connected.
  if (seg.options.challenge && !cfg_.solve_puzzles) was_challenged_ = true;
  state_ = ConnectorState::kEstablished;
  out.established = true;
  out.segments.push_back(make_plain_ack(now));
  return out;
}

ConnectorOutput Connector::on_solved(SimTime now,
                                     const puzzle::Solution& solution) {
  ConnectorOutput out;
  if (state_ != ConnectorState::kSolving) return out;

  Segment s = make_plain_ack(now);
  SolutionOption sopt;
  // Re-send MSS and wscale: the server kept no state from our SYN (§5).
  sopt.mss = cfg_.mss;
  sopt.wscale = cfg_.wscale;
  for (const auto& v : solution.values) {
    sopt.solutions.insert(sopt.solutions.end(), v.begin(), v.end());
  }
  if (!(cfg_.use_timestamps && peer_ts_ok_)) {
    sopt.embedded_ts = solution.timestamp;
  }
  s.options.solution = std::move(sopt);

  state_ = ConnectorState::kEstablished;
  out.established = true;
  out.segments.push_back(std::move(s));
  return out;
}

ConnectorOutput Connector::on_tick(SimTime now) {
  ConnectorOutput out;
  if (state_ != ConnectorState::kSynSent) return out;
  if (now < next_retx_) return out;
  if (retx_count_ >= cfg_.max_syn_retries) {
    state_ = ConnectorState::kFailed;
    out.failed = true;
    out.reason = ConnectFail::kTimeout;
    return out;
  }
  ++retx_count_;
  next_retx_ = now + cfg_.syn_timeout * (1ll << retx_count_);
  out.segments.push_back(make_syn(now));
  return out;
}

Segment Connector::make_data_segment(SimTime now, std::uint32_t payload_bytes) {
  if (state_ != ConnectorState::kEstablished) {
    throw std::logic_error("Connector::make_data_segment before established");
  }
  Segment s = make_plain_ack(now);
  s.flags = kAck | kPsh;
  s.payload_bytes = payload_bytes;
  return s;
}

}  // namespace tcpz::tcp
