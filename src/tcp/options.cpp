#include "tcp/options.hpp"

#include <stdexcept>

namespace tcpz::tcp {

std::size_t Options::wire_size() const {
  // Mirrors encode_options() (tcp/wire_format.cpp) exactly, without
  // serializing: the link layer calls this for every transmitted segment to
  // charge bandwidth, and the old encode-then-measure form heap-allocated a
  // wire image per packet.
  std::size_t n = 0;
  if (mss) n += 4;
  if (wscale) n += 3;
  if (sack_permitted) n += 2;
  if (ts) n += 10;
  if (challenge) {
    n += 2 + 3 + (challenge->embedded_ts ? 4 : 0) + challenge->preimage.size();
  }
  if (solution) {
    n += 2 + 3 + (solution->embedded_ts ? 4 : 0) + solution->solutions.size();
  }
  n = (n + 3) & ~std::size_t{3};  // NOP padding to a 32-bit boundary
  if (n > kMaxOptionsBytes) {
    throw std::length_error("TCP options exceed 40 bytes");
  }
  return n;
}

}  // namespace tcpz::tcp
