#include "tcp/options.hpp"

#include <stdexcept>

namespace tcpz::tcp {
namespace {

void append_challenge(Bytes& out, const ChallengeOption& c) {
  const std::size_t body =
      3 + (c.embedded_ts ? 4 : 0) + c.preimage.size();  // k, m, l [+T] + P
  const std::size_t len = 2 + body;
  if (len > 255) throw std::length_error("challenge option too long");
  out.push_back(kOptChallenge);
  out.push_back(static_cast<std::uint8_t>(len));
  out.push_back(c.k);
  out.push_back(c.m);
  out.push_back(c.sol_len);
  if (c.embedded_ts) put_u32be(out, *c.embedded_ts);
  out.insert(out.end(), c.preimage.begin(), c.preimage.end());
}

void append_solution(Bytes& out, const SolutionOption& s) {
  const std::size_t body = 3 + (s.embedded_ts ? 4 : 0) + s.solutions.size();
  const std::size_t len = 2 + body;
  if (len > 255) throw std::length_error("solution option too long");
  out.push_back(kOptSolution);
  out.push_back(static_cast<std::uint8_t>(len));
  put_u16be(out, s.mss);
  out.push_back(s.wscale);
  if (s.embedded_ts) put_u32be(out, *s.embedded_ts);
  out.insert(out.end(), s.solutions.begin(), s.solutions.end());
}

}  // namespace

std::size_t Options::wire_size() const {
  // Mirrors encode_options() exactly, without serializing: the link layer
  // calls this for every transmitted segment to charge bandwidth, and the
  // old encode-then-measure form heap-allocated a wire image per packet.
  std::size_t n = 0;
  if (mss) n += 4;
  if (wscale) n += 3;
  if (sack_permitted) n += 2;
  if (ts) n += 10;
  if (challenge) {
    n += 2 + 3 + (challenge->embedded_ts ? 4 : 0) + challenge->preimage.size();
  }
  if (solution) {
    n += 2 + 3 + (solution->embedded_ts ? 4 : 0) + solution->solutions.size();
  }
  n = (n + 3) & ~std::size_t{3};  // NOP padding to a 32-bit boundary
  if (n > kMaxOptionsBytes) {
    throw std::length_error("TCP options exceed 40 bytes");
  }
  return n;
}

Bytes encode_options(const Options& opts) {
  Bytes out;
  if (opts.mss) {
    out.push_back(kOptMss);
    out.push_back(4);
    put_u16be(out, *opts.mss);
  }
  if (opts.wscale) {
    out.push_back(kOptWscale);
    out.push_back(3);
    out.push_back(*opts.wscale);
  }
  if (opts.sack_permitted) {
    out.push_back(kOptSackPerm);
    out.push_back(2);
  }
  if (opts.ts) {
    out.push_back(kOptTimestamps);
    out.push_back(10);
    put_u32be(out, opts.ts->tsval);
    put_u32be(out, opts.ts->tsecr);
  }
  if (opts.challenge) append_challenge(out, *opts.challenge);
  if (opts.solution) append_solution(out, *opts.solution);

  while (out.size() % 4 != 0) out.push_back(kOptNop);
  if (out.size() > kMaxOptionsBytes) {
    throw std::length_error("TCP options exceed 40 bytes");
  }
  return out;
}

DecodeResult decode_options(std::span<const std::uint8_t> wire, Options& out) {
  out = Options{};
  if (wire.size() > kMaxOptionsBytes) return DecodeResult::kTooLong;

  std::size_t i = 0;
  while (i < wire.size()) {
    const std::uint8_t kind = wire[i];
    if (kind == kOptEnd) break;
    if (kind == kOptNop) {
      ++i;
      continue;
    }
    if (i + 1 >= wire.size()) return DecodeResult::kTruncated;
    const std::uint8_t len = wire[i + 1];
    if (len < 2 || i + len > wire.size()) return DecodeResult::kBadLength;
    const std::span<const std::uint8_t> body = wire.subspan(i + 2, len - 2);

    switch (kind) {
      case kOptMss: {
        std::uint16_t v;
        if (len != 4 || !get_u16be(body, 0, v)) return DecodeResult::kBadLength;
        out.mss = v;
        break;
      }
      case kOptWscale: {
        if (len != 3) return DecodeResult::kBadLength;
        out.wscale = body[0];
        break;
      }
      case kOptSackPerm: {
        if (len != 2) return DecodeResult::kBadLength;
        out.sack_permitted = true;
        break;
      }
      case kOptTimestamps: {
        std::uint32_t tsval, tsecr;
        if (len != 10 || !get_u32be(body, 0, tsval) || !get_u32be(body, 4, tsecr)) {
          return DecodeResult::kBadLength;
        }
        out.ts = TimestampsOption{tsval, tsecr};
        break;
      }
      case kOptChallenge: {
        if (body.size() < 3) return DecodeResult::kBadLength;
        ChallengeOption c;
        c.k = body[0];
        c.m = body[1];
        c.sol_len = body[2];
        // A declared pre-image longer than the engine bound cannot be a
        // legal challenge; reject before the inline buffer would throw.
        if (c.sol_len > kMaxPreimageBytes) return DecodeResult::kBadLength;
        std::size_t off = 3;
        const std::size_t rest = body.size() - off;
        if (rest == c.sol_len) {
          // no embedded timestamp
        } else if (rest == static_cast<std::size_t>(c.sol_len) + 4) {
          std::uint32_t ts;
          if (!get_u32be(body, off, ts)) return DecodeResult::kBadLength;
          c.embedded_ts = ts;
          off += 4;
        } else {
          return DecodeResult::kBadLength;
        }
        c.preimage.assign(body.begin() + static_cast<long>(off), body.end());
        out.challenge = std::move(c);
        break;
      }
      case kOptSolution: {
        if (body.size() < 3) return DecodeResult::kBadLength;
        SolutionOption s;
        std::uint16_t mss;
        if (!get_u16be(body, 0, mss)) return DecodeResult::kBadLength;
        s.mss = mss;
        s.wscale = body[2];
        s.solutions.assign(body.begin() + 3, body.end());
        out.solution = std::move(s);
        break;
      }
      default:
        // Unknown option: skip by length (legacy behaviour).
        break;
    }
    i += len;
  }

  // Interpretation pass for the solution block: when the segment carries a
  // timestamps option, T rides in TSecr; otherwise the first 4 bytes of the
  // block body after MSS/wscale are the embedded T.
  if (out.solution && !out.ts) {
    if (out.solution->solutions.size() < 4) return DecodeResult::kBadLength;
    std::uint32_t ts;
    if (!get_u32be(out.solution->solutions, 0, ts)) {
      return DecodeResult::kBadLength;
    }
    out.solution->embedded_ts = ts;
    out.solution->solutions.erase(out.solution->solutions.begin(),
                                  out.solution->solutions.begin() + 4);
  }
  return DecodeResult::kOk;
}

}  // namespace tcpz::tcp
