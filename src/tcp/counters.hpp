// Listener-side evaluation counters, split out of listener.hpp so the
// defense-policy layer (src/defense/) and the adaptive controller
// (core/adaptive.hpp) can consume counter snapshots without pulling in the
// full TCP state machine.
#pragma once

#include <cstdint>

namespace tcpz::tcp {

/// The single source of truth for the counter field list. Everything that
/// iterates over "every counter" — operator+= aggregation, the golden-trace
/// digest (tests/trace_digest.hpp), CSV/registry serialization
/// (sim/report_io.cpp, obs/registry.cpp) — expands this table, so a newly
/// added field can never silently go un-aggregated or un-serialized again.
///
/// X(name, help). Order is load-bearing: the golden-trace digests fold
/// fields in table order, so reordering or inserting mid-table changes
/// every golden (appending only perturbs digests through the new field's
/// value). Keep new fields at the end unless a recompute is intended.
#define TCPZ_LISTENER_COUNTER_FIELDS(X)                                        \
  X(syns_received, "SYN segments received")                                    \
  X(synacks_sent, "SYN-ACKs sent, all kinds")                                  \
  X(plain_synacks, "SYN-ACKs with no challenge and no cookie")                 \
  X(challenges_sent, "puzzle challenges minted")                               \
  X(cookies_sent, "SYN cookies minted")                                        \
  X(synack_retx, "SYN-ACK retransmissions")                                    \
  X(drops_queue_overflow, "SYNs dropped: listen queue full, no stateless answer possible") \
  X(drops_policy, "SYNs dropped by policy directive (defense::SynAction::kDrop)") \
  X(acks_received, "ACK segments received")                                    \
  X(solution_acks, "ACKs carrying a puzzle solution")                          \
  X(solutions_valid, "puzzle solutions verified")                              \
  X(solutions_invalid, "puzzle solutions with wrong bytes")                    \
  X(solutions_expired, "puzzle solutions outside the freshness window")        \
  X(solutions_bad_ackno, "solution ACKs not binding our stateless ISS")        \
  X(solutions_duplicate, "replays of an already-admitted flow")                \
  X(acks_ignored_accept_full, "solution ACKs ignored: accept queue full (deception)") \
  X(cookies_valid, "SYN-cookie ACKs decoded")                                  \
  X(cookies_invalid, "SYN-cookie ACKs that failed to decode")                  \
  X(cookie_drops_accept_full, "valid cookies dropped: accept queue full")      \
  X(acks_pending_accept, "handshakes done but parked: accept queue full")      \
  X(established_total, "connections admitted, all paths")                      \
  X(established_queue, "admitted via the stateful listen queue")               \
  X(established_cookie, "admitted via SYN-cookie decode")                      \
  X(established_puzzle, "admitted via puzzle solution")                        \
  X(half_open_expired, "half-open entries that exhausted retries")             \
  X(rsts_sent, "RSTs sent for unknown flows")                                  \
  X(data_segments, "data segments on established flows")                       \
  X(data_unknown_flow, "data segments matching no flow")                       \
  X(secret_rotations, "puzzle-secret epochs installed")                        \
  X(solutions_valid_prev_epoch, "solutions verified in the rotation overlap window") \
  X(solutions_replay_filtered, "cluster-level replay rejections")              \
  X(crypto_hash_ops, "hash operations charged to the server CPU model")        \
  X(fluid_syns_offered, "aggregate fluid-population SYN mass offered (whole users)") \
  X(fluid_enqueued, "fluid SYN mass admitted to the (virtual) listen queue")   \
  X(fluid_challenged, "fluid SYN mass answered with puzzle challenges")        \
  X(fluid_cookied, "fluid SYN mass answered with SYN cookies")                 \
  X(fluid_dropped, "fluid SYN mass dropped (queue overflow or policy)")        \
  X(fluid_solution_acks, "fluid solved-challenge mass re-offered as solution ACKs") \
  X(fluid_established, "fluid handshake mass admitted (accept room available)") \
  X(fluid_deceived, "fluid handshake mass ignored at full accept queue (deception)")

/// Everything the evaluation measures, in one place. All counters are
/// cumulative over the listener's lifetime. Fields are generated from
/// TCPZ_LISTENER_COUNTER_FIELDS — see the table for per-field docs.
struct ListenerCounters {
#define TCPZ_X(name, help) std::uint64_t name = 0;
  TCPZ_LISTENER_COUNTER_FIELDS(TCPZ_X)
#undef TCPZ_X

  /// SYNs dropped without a stateless answer, either cause. Kept as a helper
  /// because the two causes (queue overflow vs policy directive) were one
  /// field until the reason-code taxonomy needed them apart.
  [[nodiscard]] std::uint64_t drops_listen_full() const {
    return drops_queue_overflow + drops_policy;
  }
};

/// Field-wise accumulation, for fleet-level aggregation over replicas.
ListenerCounters& operator+=(ListenerCounters& into, const ListenerCounters& c);

}  // namespace tcpz::tcp
