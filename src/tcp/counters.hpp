// Listener-side evaluation counters, split out of listener.hpp so the
// defense-policy layer (src/defense/) and the adaptive controller
// (core/adaptive.hpp) can consume counter snapshots without pulling in the
// full TCP state machine.
#pragma once

#include <cstdint>

namespace tcpz::tcp {

/// Everything the evaluation measures, in one place. All counters are
/// cumulative over the listener's lifetime.
struct ListenerCounters {
  std::uint64_t syns_received = 0;
  std::uint64_t synacks_sent = 0;        ///< total, all kinds
  std::uint64_t plain_synacks = 0;       ///< no challenge, no cookie
  std::uint64_t challenges_sent = 0;
  std::uint64_t cookies_sent = 0;
  std::uint64_t synack_retx = 0;
  /// SYN dropped without a stateless answer: listen-queue overflow with no
  /// defense engaged, or a policy-directed drop (defense::SynAction::kDrop).
  std::uint64_t drops_listen_full = 0;

  std::uint64_t acks_received = 0;
  std::uint64_t solution_acks = 0;
  std::uint64_t solutions_valid = 0;
  std::uint64_t solutions_invalid = 0;
  std::uint64_t solutions_expired = 0;
  std::uint64_t solutions_bad_ackno = 0;
  std::uint64_t solutions_duplicate = 0;  ///< replay of an already-admitted flow
  std::uint64_t acks_ignored_accept_full = 0;
  std::uint64_t cookies_valid = 0;
  std::uint64_t cookies_invalid = 0;
  std::uint64_t cookie_drops_accept_full = 0;
  std::uint64_t acks_pending_accept = 0;  ///< handshake done, accept queue full

  std::uint64_t established_total = 0;
  std::uint64_t established_queue = 0;
  std::uint64_t established_cookie = 0;
  std::uint64_t established_puzzle = 0;

  std::uint64_t half_open_expired = 0;
  std::uint64_t rsts_sent = 0;
  std::uint64_t data_segments = 0;
  std::uint64_t data_unknown_flow = 0;

  /// Secret-rotation bookkeeping (fleet deployments rotate the puzzle secret
  /// across every replica; see src/fleet/secret_directory.hpp).
  std::uint64_t secret_rotations = 0;
  std::uint64_t solutions_valid_prev_epoch = 0;  ///< verified in the overlap window
  std::uint64_t solutions_replay_filtered = 0;   ///< cluster-level replay rejections

  /// Cumulative crypto work (hash operations) the listener performed for
  /// challenge generation, solution verification and cookie MACs. The
  /// simulator charges this to the server's CPU model.
  std::uint64_t crypto_hash_ops = 0;
};

/// Field-wise accumulation, for fleet-level aggregation over replicas.
ListenerCounters& operator+=(ListenerCounters& into, const ListenerCounters& c);

}  // namespace tcpz::tcp
