// TrafficModel: the pluggable legitimate-workload layer.
//
// Third of the pluggable trilogy: defense::DefensePolicy (PR 3) decides the
// server's admission behaviour, offense::AttackStrategy (PR 5) decides the
// bots' packet schedule, and workload::TrafficModel decides the legitimate
// clients' demand. sim::ClientAgent consults its model at exactly three
// decision points — when to start the next request attempt, how to size it,
// and whether to pay for a puzzle challenge or abandon the attempt — over a
// read-only ClientView. The driver owns all mechanics (connectors, sockets,
// CPU charging, reporting); the model owns only the decisions, so swapping
// models can never touch the protocol path.
//
// Determinism contract: ClientView hands the model the agent's own Rng.
// Models draw from it at the agent's decision points and nowhere else, so a
// model that reproduces the legacy draws (OpenLoopPoisson does) yields
// byte-for-byte identical event streams — the golden trace tests pin this.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "puzzle/types.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace tcpz::workload {

/// What a TrafficModel may observe about its client when deciding.
/// Read-only by construction (the Rng is the one deliberate exception: a
/// draw is a decision, and the draw order is part of the pinned trace).
struct ClientView {
  SimTime now;                 ///< simulation clock
  std::size_t inflight = 0;    ///< live request attempts (connector + wait)
  int pending_solves = 0;      ///< puzzle solves queued on the client CPU
  Rng* rng = nullptr;          ///< the agent's own deterministic stream
};

/// Byte sizing for one request attempt.
struct RequestShape {
  std::uint32_t request_bytes = 0;
  std::uint32_t response_bytes = 0;
};

class TrafficModel {
 public:
  virtual ~TrafficModel() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Next-arrival decision: how long to wait before the next attempt starts.
  [[nodiscard]] virtual SimTime next_arrival(const ClientView& view) = 0;

  /// Request sizing for the attempt starting now.
  [[nodiscard]] virtual RequestShape request_shape(const ClientView& view) = 0;

  /// Retry/abandon decision at a challenge: true to queue the solve (the
  /// agent charges the CPU and answers), false to abandon the attempt (the
  /// agent counts a refusal).
  [[nodiscard]] virtual bool accept_challenge(const ClientView& view,
                                              const puzzle::Challenge& c) = 0;
};

/// Factory for per-client model instances (each agent owns its model, so
/// models may keep per-client state without sharing).
using ModelFactory = std::function<std::unique_ptr<TrafficModel>()>;

}  // namespace tcpz::workload
