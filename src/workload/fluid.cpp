#include "workload/fluid.hpp"

#include <algorithm>
#include <cmath>

namespace tcpz::workload {
namespace {

// Wire sizes for byte accounting, matching tcp::Segment::wire_size() for the
// typical option layouts (base header 40 = IP + TCP). Handshake bytes are a
// rounding error next to the response payload, so nominal option sizes are
// fine here.
constexpr double kSynWire = 60;          // SYN with mss/wscale/timestamps
constexpr double kSynAckWire = 60;       // plain or challenge SYN-ACK
constexpr double kAckWire = 40;          // bare handshake ACK
constexpr double kSolutionAckWire = 64;  // ACK + solution block
constexpr double kRstWire = 40;

}  // namespace

void FluidPopulation::Carry::add(std::uint64_t& total, double mass) {
  frac += mass;
  const double whole = std::floor(frac);
  if (whole > 0) {
    total += static_cast<std::uint64_t>(whole);
    frac -= whole;
  }
}

FluidPopulation::FluidPopulation(FluidConfig cfg, puzzle::Difficulty initial)
    : cfg_(cfg), difficulty_(initial) {}

void FluidPopulation::establish(SimTime now, double mass) {
  if (mass <= 0) return;
  report_.established.add(now, mass);
  c_established_.add(report_.total_established, mass);
  report_.tx_bytes.add(now, mass * (40.0 + cfg_.request_bytes));
  service_ += mass;
}

void FluidPopulation::deceive(SimTime now, double mass) {
  if (mass <= 0) return;
  // §5 deception: the senders believe they connected (established from the
  // client's view), send their request, and the server answers RST.
  report_.established.add(now, mass);
  c_established_.add(report_.total_established, mass);
  report_.tx_bytes.add(now, mass * (40.0 + cfg_.request_bytes));
  report_.rx_bytes.add(now, mass * kRstWire);
  c_rsts_.add(report_.total_rsts, mass);
  fail(now, mass);
}

void FluidPopulation::fail(SimTime now, double mass) {
  if (mass <= 0) return;
  report_.failures.add(now, mass);
  c_failures_.add(report_.total_failures, mass);
  failed_ += mass;
}

void FluidPopulation::refuse(SimTime now, double mass) {
  if (mass <= 0) return;
  report_.refusals.add(now, mass);
  c_refused_.add(report_.solves_refused, mass);
  refused_ += mass;
}

void FluidPopulation::step(SimTime now, SimTime dt, tcp::Listener& listener) {
  const double dts = dt.to_seconds();
  if (dts <= 0 || cfg_.users <= 0) return;

  // 1. Fresh open-loop demand plus the SYN-retry re-offers. The retry timer
  // becomes an exponential drain at the same mean; of the mass whose timer
  // fires, 1/max_syn_retries has exhausted its retries and gives up.
  const double fresh = cfg_.users * cfg_.request_rate * dts;
  created_ += fresh;
  report_.attempts.add(now, fresh);
  c_attempts_.add(report_.total_attempts, fresh);

  double reoffer = 0;
  if (synretry_ > 0) {
    const double due = synretry_ * std::min(1.0, dts / cfg_.syn_timeout.to_seconds());
    synretry_ -= due;
    const double gaveup =
        cfg_.max_syn_retries > 0 ? due / cfg_.max_syn_retries : due;
    reoffer = due - gaveup;
    fail(now, gaveup);
  }

  // 2. One admission verdict for the tick's SYN mass, through the real
  // defense policy over the combined discrete+fluid queue view.
  const double offered = fresh + reoffer;
  const tcp::Listener::FluidAdmission adm =
      listener.admit_fluid_syns(now, offered);
  report_.tx_bytes.add(now, offered * kSynWire);
  report_.rx_bytes.add(
      now, (adm.enqueued + adm.challenged + adm.cookied) * kSynAckWire);
  synretry_ += adm.dropped;

  // 3. Challenged mass enters the per-user bounded solve backlog (connect()
  // backpressure: beyond N*max_pending the attempt is refused pre-wire).
  if (adm.challenged > 0) {
    difficulty_ = adm.difficulty;
    c_challenges_.add(report_.challenges_seen, adm.challenged);
    if (!cfg_.solve_puzzles) {
      refuse(now, adm.challenged);
    } else {
      const double cap =
          cfg_.users * static_cast<double>(cfg_.max_pending_solves);
      const double take = std::min(adm.challenged, std::max(0.0, cap - solveq_));
      refuse(now, adm.challenged - take);
      solveq_ += take;
    }
  }

  // 4. Solve throughput: N*lanes serial searches at the Fig. 3a price.
  const double ts =
      static_cast<double>(difficulty_.expected_solve_hashes()) / cfg_.hash_rate;
  solve_busy_ = 0;
  if (solveq_ > 0 && ts > 0) {
    const double capacity =
        cfg_.users * static_cast<double>(cfg_.solver_lanes) * dts / ts;
    const double solved = std::min(solveq_, capacity);
    solveq_ -= solved;
    solve_busy_ = capacity > 0 ? solved / capacity : 0;
    if (solved > 0) {
      report_.tx_bytes.add(now, solved * kSolutionAckWire);
      const double admitted = listener.admit_fluid_handshakes(now, solved,
                                                              /*puzzle_path=*/true);
      establish(now, admitted);
      deceive(now, solved - admitted);  // stateless path: fail fast on RST
    }
  }

  // 5. Queue/cookie handshakes, synchronous within the tick (RTT << dt),
  // plus the parked mass whose SYN-ACK-retx cadence re-offers it.
  double parked_retry = 0;
  if (parked_ > 0) {
    parked_retry = parked_ * std::min(1.0, dts / cfg_.syn_timeout.to_seconds());
    parked_ -= parked_retry;
  }
  const double queue_mass = adm.enqueued + parked_retry;
  const double stateless_mass = adm.cookied;
  const double handshakes = queue_mass + stateless_mass;
  if (handshakes > 0) {
    report_.tx_bytes.add(now, (adm.enqueued + adm.cookied) * kAckWire);
    const double admitted = listener.admit_fluid_handshakes(
        now, handshakes, /*puzzle_path=*/false);
    establish(now, admitted);
    const double rejected = handshakes - admitted;
    if (rejected > 0) {
      // Pro-rata: queue-path mass parks (holds a listen slot, retries);
      // cookie-path mass is deceived like the solution path.
      const double qshare = queue_mass / handshakes;
      parked_ += rejected * qshare;
      deceive(now, rejected * (1.0 - qshare));
    }
  }

  // 6. Service: the population's share of mu drains the response backlog.
  if (service_ > 0) {
    const double served = std::min(service_, cfg_.service_rate * dts);
    service_ -= served;
    completed_ += served;
    report_.completions.add(now, served);
    c_completions_.add(report_.total_completions, served);
    const double segments = std::ceil(static_cast<double>(cfg_.response_bytes) /
                                      static_cast<double>(cfg_.mss));
    report_.rx_bytes.add(now,
                         served * (cfg_.response_bytes + segments * 40.0));
  }

  // 7. Parked attempts hit their response deadline.
  if (parked_ > 0) {
    const double expired =
        parked_ * std::min(1.0, dts / cfg_.response_timeout.to_seconds());
    parked_ -= expired;
    fail(now, expired);
  }

  // 8. Publish occupancy: parked handshakes hold listen slots; the service
  // backlog beyond the in-service share is accept-queue depth.
  listener.set_fluid_occupancy(parked_,
                               std::max(0.0, service_ - cfg_.worker_share));
}

void FluidPopulation::sample(SimTime now) {
  // Core utilization: solver-lane busy fraction scaled by lanes/cores (the
  // solver is the only modeled CPU consumer on the client, as in Fig. 9).
  const double util = solve_busy_ * static_cast<double>(cfg_.solver_lanes) /
                      std::max(1, cfg_.cores);
  report_.cpu.record(now, util);
}

double FluidPopulation::conservation_error() const {
  const double accounted = completed_ + failed_ + refused_ + solveq_ +
                           synretry_ + parked_ + service_;
  return std::abs(created_ - accounted);
}

}  // namespace tcpz::workload
