// Hybrid fluid/discrete client population: the aggregate half.
//
// A FluidPopulation models N legitimate users as deterministic fluid flows
// instead of N discrete agents, so a scenario can carry millions of modeled
// users at a per-tick cost that is independent of N. Each simulation tick it
// advances one explicit-Euler step of an M/M/1-style flow balance:
//
//   offered    O(t)  = N*r_c*dt + retries            (open-loop demand, §6)
//   admission  split by the server's DefensePolicy   (admit_fluid_syns)
//   solving    dB/dt = challenged_in - min(B, N*lanes/T_s), B <= N*cap
//   service    dR/dt = established  - min(R, mu_f)
//
// where T_s = E[solve hashes]/hash_rate (the Fig. 3a price at the minted
// difficulty) and mu_f is this population's share of the server's service
// rate mu. Mass flows through the *real* tcp::Listener admission logic — one
// policy verdict per tick's mass, over a QueueView that folds the published
// fluid occupancy into the discrete depths — so defense policies cannot tell
// fluid pressure from discrete pressure, and the protection latch, SYN
// cookies, deception and adaptive difficulty all act on the aggregate
// exactly as they would on packets.
//
// Deliberate fluid approximations (each validated against the discrete
// model by tests/workload_test.cpp's tolerance fixture):
//  * Handshakes complete synchronously within a tick (RTT << dt).
//  * Retry timers become exponential drains at the same mean (mass *
//    dt/interval per tick) instead of per-attempt deadlines.
//  * Stateless-path mass refused at a full accept queue is the §5 deception
//    outcome: it fails fast (request answered by RST), like the discrete
//    client's reset path. Queue-path mass parks and re-offers instead,
//    holding listen-queue occupancy, like a discrete half-open entry.
//
// Everything is deterministic: no RNG anywhere, so a hybrid run's fluid
// contribution is a pure function of the spec (the discrete cohort keeps
// exact per-connection statistics).
#pragma once

#include <cstdint>

#include "puzzle/types.hpp"
#include "sim/metrics.hpp"
#include "tcp/listener.hpp"
#include "util/time.hpp"
#include "workload/profiles.hpp"

namespace tcpz::workload {

struct FluidConfig {
  /// Modeled users aggregated into this population (may be fractional when
  /// a total is split across replicas).
  double users = 0;
  double request_rate = profiles::kRequestRate;  ///< r_c per user (req/s)
  std::uint32_t request_bytes = profiles::kRequestBytes;
  std::uint32_t response_bytes = profiles::kResponseBytes;
  /// Patched kernels solve challenges; unpatched mass counts a refusal.
  bool solve_puzzles = true;
  double hash_rate = profiles::kClientHashRate;  ///< per-core (Fig. 3a)
  int solver_lanes = 1;   ///< concurrent in-kernel searches per user
  int cores = 4;          ///< for the utilization gauge denominator
  int max_pending_solves = profiles::kMaxPendingSolves;  ///< per user
  /// This population's share of the server's service rate mu (req/s). The
  /// engine sets mu * fluid/(fluid + cohort) so fluid and discrete demand
  /// split the drain proportionally.
  double service_rate = profiles::kServiceRateMu;
  /// Established mass concurrently *in service* (excluded from the accept
  /// occupancy it publishes, mirroring workers holding accepted conns).
  double worker_share = 0;
  std::uint16_t mss = 1460;  ///< response segmentation for wire-byte parity
  SimTime syn_timeout = SimTime::seconds(1);  ///< retry cadence
  int max_syn_retries = 3;
  SimTime response_timeout = SimTime::seconds(10);
};

class FluidPopulation {
 public:
  /// `initial` is the difficulty assumed for solve pricing until the first
  /// challenge reports the actually-minted one.
  FluidPopulation(FluidConfig cfg, puzzle::Difficulty initial);

  /// Advances one Euler step of length `dt`, pushing this tick's aggregate
  /// demand through `listener`'s fluid admission entry points and
  /// publishing the resulting queue occupancy.
  void step(SimTime now, SimTime dt, tcp::Listener& listener);

  /// Records the CPU-utilization gauge (call on the sample cadence).
  void sample(SimTime now);

  [[nodiscard]] sim::HostReport& report() { return report_; }
  [[nodiscard]] const sim::HostReport& report() const { return report_; }
  [[nodiscard]] const FluidConfig& config() const { return cfg_; }

  // -- flow-balance introspection (conservation tests) -----------------------
  [[nodiscard]] double solve_backlog() const { return solveq_; }
  [[nodiscard]] double syn_retry_backlog() const { return synretry_; }
  [[nodiscard]] double parked() const { return parked_; }
  [[nodiscard]] double service_backlog() const { return service_; }
  [[nodiscard]] double created() const { return created_; }
  [[nodiscard]] double completed() const { return completed_; }
  [[nodiscard]] double failed() const { return failed_; }
  [[nodiscard]] double refused() const { return refused_; }
  /// |created - (completed + failed + refused + in-flight pools)|. Exact
  /// conservation up to floating-point: every unit of offered mass is
  /// eventually completed, failed, refused, or still in a pool.
  [[nodiscard]] double conservation_error() const;

 private:
  /// Floor-carry accumulation of fractional mass into an integer total.
  struct Carry {
    double frac = 0;
    void add(std::uint64_t& total, double mass);
  };

  void establish(SimTime now, double mass);
  void deceive(SimTime now, double mass);
  void fail(SimTime now, double mass);
  void refuse(SimTime now, double mass);

  FluidConfig cfg_;
  puzzle::Difficulty difficulty_;
  sim::HostReport report_;

  // Pools (user mass).
  double solveq_ = 0;    ///< B: accepted challenges being solved
  double synretry_ = 0;  ///< dropped SYNs awaiting their retry timer
  double parked_ = 0;    ///< queue-path handshakes waiting for accept room
  double service_ = 0;   ///< R: established, awaiting the server's response

  // Conservation ledger.
  double created_ = 0;
  double completed_ = 0;
  double failed_ = 0;
  double refused_ = 0;

  // Utilization gauge state (last step's solver busy fraction).
  double solve_busy_ = 0;

  // Integer-total carries.
  Carry c_attempts_, c_established_, c_completions_, c_failures_, c_rsts_,
      c_challenges_, c_refused_;
};

}  // namespace tcpz::workload
