// Single source of truth for the paper's Fig. 3 workload/service profile.
//
// The §6 experiments are parameterised by two measured curves: Fig. 3a (the
// client puzzle-solver budget, w_av hashes per 0.4 s adaptation window) and
// Fig. 3b (the Apache-like server completing µ ≈ 1100 req/s at saturation).
// Before this header, `bench/fig03_profiles.cpp`, the `ClientAgentConfig`
// defaults and the scenario specs each restated these numbers; the fluid
// population model would have been a fourth copy. Every consumer now reads
// them from here, so re-calibrating the profile is a one-file change.
#pragma once

#include <cstdint>

#include "sim/cpu.hpp"

namespace tcpz::workload::profiles {

/// Fig. 3a: hash operations a patched client kernel completes inside one
/// 0.4 s difficulty-adaptation window (w_av, used by the Nash planner).
inline constexpr double kClientWav = 140'630.0;
/// The adaptation-window length the w_av measurement is defined over.
inline constexpr double kWavWindowSec = 0.4;
/// The client solver rate in hashes/s implied by Fig. 3a. Kept as a literal
/// (not kClientWav / kWavWindowSec) so the value is bit-exact with the
/// pre-existing CpuSpec default that the golden traces were recorded with.
inline constexpr double kClientHashRate = 351'575.0;

/// Fig. 3b: server service rate at saturation, requests/s (µ of the M/M/1
/// model all capacity planning in the paper is built on).
inline constexpr double kServiceRateMu = 1100.0;
/// Server hash budget (hashes/s) used by the verification cost model.
inline constexpr double kServerHashRate = 10'800'000.0;

/// The §6 legitimate workload: open-loop Poisson arrivals per user.
inline constexpr double kRequestRate = 20.0;       ///< λ, requests/s per user
inline constexpr std::uint32_t kRequestBytes = 200;
inline constexpr std::uint32_t kResponseBytes = 100'000;
/// In-kernel solver backpressure: outstanding solves a client queues before
/// refusing further challenges (mirrors the kernel's small job ring).
inline constexpr int kMaxPendingSolves = 4;

/// The desktop client of Fig. 3a: 4 cores, serial in-kernel solver lane.
[[nodiscard]] inline sim::CpuSpec client_cpu() {
  return sim::CpuSpec{kClientHashRate, 4, 1};
}

/// The Fig. 3b server: 12 cores, hardware-accelerated hashing.
[[nodiscard]] inline sim::CpuSpec server_cpu() {
  return sim::CpuSpec{kServerHashRate, 12, 1};
}

}  // namespace tcpz::workload::profiles
