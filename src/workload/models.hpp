// Concrete TrafficModel implementations.
#pragma once

#include <cstdint>

#include "workload/model.hpp"
#include "workload/profiles.hpp"

namespace tcpz::workload {

/// The paper's §6 legitimate workload: open-loop Poisson arrivals at rate λ
/// per user, fixed request/response sizes, and a bounded in-kernel solve
/// queue (challenges beyond `max_pending` outstanding solves are refused).
///
/// This is a trace-exact port of the logic previously hard-wired in
/// sim::ClientAgent: next_arrival() performs the identical Exp(λ) draw (via
/// exp_interarrival) in the identical order, so legacy-seeded scenarios
/// replay byte-for-byte.
class OpenLoopPoisson final : public TrafficModel {
 public:
  OpenLoopPoisson(double request_rate, std::uint32_t request_bytes,
                  std::uint32_t response_bytes, int max_pending)
      : rate_(request_rate),
        shape_{request_bytes, response_bytes},
        max_pending_(max_pending) {}

  [[nodiscard]] const char* name() const override {
    return "open-loop-poisson";
  }

  [[nodiscard]] SimTime next_arrival(const ClientView& view) override {
    return exp_interarrival(*view.rng, rate_);
  }

  [[nodiscard]] RequestShape request_shape(const ClientView&) override {
    return shape_;
  }

  [[nodiscard]] bool accept_challenge(const ClientView& view,
                                      const puzzle::Challenge&) override {
    return view.pending_solves < max_pending_;
  }

 private:
  double rate_;
  RequestShape shape_;
  int max_pending_;
};

}  // namespace tcpz::workload
