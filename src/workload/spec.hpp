// Declarative workload description: which TrafficModel to run and, for the
// hybrid kind, how the modeled population splits into fluid mass and a
// sampled discrete cohort.
//
// Mirrors defense::PolicySpec (PR 3) and offense::StrategySpec (PR 5): a
// comparable value type with canonical factories, a `from_legacy` shim that
// absorbs the flat knobs older configs carry, and `build()`/`factory()`
// producing live models. scenario::WorkloadSpec embeds an optional ModelSpec;
// when absent, the legacy knobs are shimmed through from_legacy so every
// pre-existing scenario is expressible — and replays byte-for-byte.
#pragma once

#include <cstdint>
#include <memory>

#include "workload/model.hpp"
#include "workload/profiles.hpp"

namespace tcpz::workload {

struct ModelSpec {
  enum class Kind : std::uint8_t {
    kOpenLoopPoisson,  ///< every user is a discrete agent (the legacy model)
    kHybridFluid,      ///< fluid aggregate + sampled discrete cohort
  };

  Kind kind = Kind::kOpenLoopPoisson;

  // -- per-user demand (both kinds; the fluid aggregate scales these by N) --
  double request_rate = profiles::kRequestRate;  ///< λ per user, req/s
  std::uint32_t request_bytes = profiles::kRequestBytes;
  std::uint32_t response_bytes = profiles::kResponseBytes;
  int max_pending_solves = profiles::kMaxPendingSolves;

  // -- hybrid population split (kHybridFluid only) --
  /// Total modeled legitimate users. The sampled cohort runs as discrete
  /// ClientAgents (exact challenge/solve/latency statistics); the remainder
  /// is aggregated into one FluidPopulation per server.
  std::uint64_t users = 0;
  /// Fraction of `users` kept discrete (rounded; clamped to [0, users]).
  double cohort_ratio = 0.0;

  bool operator==(const ModelSpec&) const = default;

  [[nodiscard]] static ModelSpec open_loop() { return {}; }
  [[nodiscard]] static ModelSpec hybrid(std::uint64_t users,
                                        double cohort_ratio);

  /// Shim for configs that predate ModelSpec: the flat WorkloadSpec /
  /// ScenarioConfig knobs become an open-loop model with the same demand.
  [[nodiscard]] static ModelSpec from_legacy(double request_rate,
                                             std::uint32_t request_bytes,
                                             std::uint32_t response_bytes,
                                             int max_pending_solves);

  [[nodiscard]] const char* kind_name() const;

  /// Discrete agents the engine instantiates for a hybrid population.
  [[nodiscard]] std::uint64_t cohort_size() const;
  /// Users aggregated as fluid mass (users - cohort_size()).
  [[nodiscard]] std::uint64_t fluid_users() const;

  /// The per-client TrafficModel (the sampled cohort of a hybrid population
  /// runs the same open-loop model as a full-discrete run — that is what
  /// makes the cohort's statistics directly comparable).
  [[nodiscard]] std::unique_ptr<TrafficModel> build() const;
  [[nodiscard]] ModelFactory factory() const;
};

}  // namespace tcpz::workload
