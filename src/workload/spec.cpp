#include "workload/spec.hpp"

#include <algorithm>
#include <cmath>

#include "workload/models.hpp"

namespace tcpz::workload {

ModelSpec ModelSpec::hybrid(std::uint64_t users, double cohort_ratio) {
  ModelSpec s;
  s.kind = Kind::kHybridFluid;
  s.users = users;
  s.cohort_ratio = cohort_ratio;
  return s;
}

ModelSpec ModelSpec::from_legacy(double request_rate,
                                 std::uint32_t request_bytes,
                                 std::uint32_t response_bytes,
                                 int max_pending_solves) {
  ModelSpec s;
  s.kind = Kind::kOpenLoopPoisson;
  s.request_rate = request_rate;
  s.request_bytes = request_bytes;
  s.response_bytes = response_bytes;
  s.max_pending_solves = max_pending_solves;
  return s;
}

const char* ModelSpec::kind_name() const {
  switch (kind) {
    case Kind::kOpenLoopPoisson: return "open-loop-poisson";
    case Kind::kHybridFluid: return "hybrid-fluid";
  }
  return "?";
}

std::uint64_t ModelSpec::cohort_size() const {
  if (kind != Kind::kHybridFluid) return 0;
  const double want = std::round(static_cast<double>(users) * cohort_ratio);
  if (want <= 0.0) return 0;
  return std::min(users, static_cast<std::uint64_t>(want));
}

std::uint64_t ModelSpec::fluid_users() const {
  return kind == Kind::kHybridFluid ? users - cohort_size() : 0;
}

std::unique_ptr<TrafficModel> ModelSpec::build() const {
  return std::make_unique<OpenLoopPoisson>(request_rate, request_bytes,
                                           response_bytes, max_pending_solves);
}

ModelFactory ModelSpec::factory() const {
  return [spec = *this] { return spec.build(); };
}

}  // namespace tcpz::workload
