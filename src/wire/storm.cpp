#include "wire/storm.hpp"

namespace tcpz::wire {
namespace {

void hist_add(obs::HistStats& h, double v) {
  if (h.count == 0) {
    h.min = v;
    h.max = v;
  } else {
    if (v < h.min) h.min = v;
    if (v > h.max) h.max = v;
  }
  h.sum += v;
  ++h.count;
}

[[nodiscard]] std::uint32_t to_ms(SimTime t) {
  return static_cast<std::uint32_t>(t.nanos() / 1'000'000);
}

}  // namespace

StormClient::StormClient(StormConfig cfg, Clock clock)
    : cfg_(cfg),
      clock_(clock),
      net_(0),
      rng_(cfg.seed),
      strategy_(cfg.strategy.build()),
      next_port_(cfg.base_port) {
  net_.add_route(cfg_.server_addr, cfg_.server_udp_port);
}

offense::BotView StormClient::view(SimTime now) {
  offense::BotView v;
  v.now = now;
  v.attack_start = SimTime::zero();
  v.attack_end = cfg_.duration;
  v.inflight = attempts_.size();
  v.max_inflight = static_cast<int>(cfg_.max_inflight);
  v.pending_solves = 0;  // solves run inline on this thread
  v.attempt_timeout = cfg_.attempt_timeout;
  v.has_engine = cfg_.engine != nullptr;
  v.n_targets = 1;
  v.cpu = nullptr;  // no CPU model on the wire: solve cost is real time
  v.rng = &rng_;
  return v;
}

StormStats StormClient::run() {
  const SimTime t0 = clock_.now();
  const SimTime end = t0 + cfg_.duration;
  // Backstop for the drain tail: everything in flight either finishes or
  // gets recycled within attempt_timeout, so anything beyond that is a bug
  // we bound rather than hang on.
  const SimTime hard_stop = end + cfg_.attempt_timeout + SimTime::seconds(1);
  const SimTime tick_every = SimTime::milliseconds(10);
  SimTime next_tick = t0 + tick_every;
  std::uint64_t slot = 0;
  const auto slot_time = [&](std::uint64_t i) {
    return t0 + SimTime::from_seconds(static_cast<double>(i) / cfg_.conn_rate);
  };

  for (;;) {
    SimTime now = clock_.now();
    if (now >= end && attempts_.empty()) break;
    if (now >= hard_stop) break;

    SimTime deadline = next_tick;
    if (now < end && slot_time(slot) < deadline) deadline = slot_time(slot);
    int timeout_ms = 0;
    if (deadline > now) {
      timeout_ms = static_cast<int>((deadline - now).nanos() / 1'000'000);
      if (timeout_ms > 10) timeout_ms = 10;
    }
    if (auto seg = net_.recv(timeout_ms)) {
      ++stats_.rx_segments;
      handle_rx(clock_.now(), *seg);
      // Drain whatever else queued while we were busy, without waiting.
      while (auto more = net_.recv(0)) {
        ++stats_.rx_segments;
        handle_rx(clock_.now(), *more);
      }
    }

    now = clock_.now();
    if (now >= next_tick) {
      tick(now);
      next_tick = now + tick_every;
    }
    while (now < end && slot_time(slot) <= now) {
      emit_slot(now);
      ++slot;
    }
  }

  stats_.elapsed_s = (clock_.now() - t0).to_seconds();
  return stats_;
}

void StormClient::emit_slot(SimTime now) {
  ++stats_.slots;
  const auto d = strategy_->on_slot(view(now));
  switch (d.action) {
    case offense::SlotAction::kIdle:
      ++stats_.idle_slots;
      return;
    case offense::SlotAction::kSpoofedSyn:
      (void)net_.send(make_spoofed_syn(now));
      ++stats_.spoofed_syns;
      return;
    case offense::SlotAction::kConnect:
      break;
  }
  if (attempts_.size() >= cfg_.max_inflight) {
    ++stats_.skipped_full;
    return;
  }
  tcp::ConnectorConfig ccfg;
  ccfg.local_addr = cfg_.local_addr;
  ccfg.local_port = alloc_port();
  ccfg.remote_addr = cfg_.server_addr;
  ccfg.remote_port = cfg_.server_port;
  ccfg.solve_puzzles = d.patched;
  ccfg.syn_timeout = cfg_.syn_timeout;
  ccfg.max_syn_retries = cfg_.max_syn_retries;
  ccfg.use_timestamps = cfg_.use_timestamps;
  const std::uint16_t port = ccfg.local_port;
  Attempt a{tcp::Connector(ccfg, rng_.next()), now, d.patched};
  auto out = a.connector.start(now);
  attempts_.emplace(port, std::move(a));
  ++stats_.attempts;
  apply(now, port, std::move(out));
}

void StormClient::handle_rx(SimTime now, const tcp::Segment& seg) {
  const auto it = attempts_.find(seg.dport);
  if (it == attempts_.end()) return;  // backscatter for a recycled attempt
  switch (strategy_->on_rx(view(now), seg)) {
    case offense::RxAction::kIgnore:
      return;
    case offense::RxAction::kBogusAck:
      if (seg.is_syn_ack() && seg.options.challenge) {
        (void)net_.send(make_bogus_ack(now, seg));
        ++stats_.bogus_acks;
        // The bot believes it connected (§7); the attempt is done here.
        finish(seg.dport, offense::Outcome::kEstablished, now);
      }
      return;
    case offense::RxAction::kForward:
      apply(now, seg.dport, it->second.connector.on_segment(now, seg));
      return;
  }
}

void StormClient::apply(SimTime now, std::uint16_t port,
                        tcp::ConnectorOutput out) {
  send_all(out.segments);
  const auto it = attempts_.find(port);
  if (it == attempts_.end()) return;

  if (out.solve) {
    const bool pay =
        cfg_.engine != nullptr &&
        strategy_->on_challenge(view(now), *out.solve) ==
            offense::ChallengeAction::kSolve;
    if (!pay) {
      ++stats_.solves_abandoned;
      finish(port, offense::Outcome::kSolveRefused, now);
      return;
    }
    std::uint64_t ops = 0;
    const auto sol = cfg_.engine->solve(
        *out.solve, it->second.connector.flow_binding(), rng_, ops);
    stats_.hash_ops += ops;
    ++stats_.solves;
    // Re-read the clock: the brute force burned real time.
    apply(now, port, it->second.connector.on_solved(clock_.now(), sol));
    return;
  }
  if (out.established) {
    ++stats_.established;
    hist_add(stats_.connect_ms, (now - it->second.started).to_millis());
    finish(port, offense::Outcome::kEstablished, now);
  } else if (out.failed) {
    if (out.reason == tcp::ConnectFail::kReset) {
      ++stats_.resets;
      finish(port, offense::Outcome::kReset, now);
    } else {
      ++stats_.timeouts;
      finish(port, offense::Outcome::kTimeout, now);
    }
  }
}

void StormClient::tick(SimTime now) {
  std::vector<std::uint16_t> ports;
  ports.reserve(attempts_.size());
  for (const auto& [port, attempt] : attempts_) ports.push_back(port);
  for (const std::uint16_t port : ports) {
    const auto it = attempts_.find(port);
    if (it == attempts_.end()) continue;
    if (now - it->second.started >= cfg_.attempt_timeout) {
      ++stats_.timeouts;
      finish(port, offense::Outcome::kTimeout, now);
      continue;
    }
    apply(now, port, it->second.connector.on_tick(now));
  }
}

void StormClient::finish(std::uint16_t port, offense::Outcome outcome,
                         SimTime now) {
  attempts_.erase(port);
  strategy_->on_outcome(view(now), outcome);
}

std::uint16_t StormClient::alloc_port() {
  for (;;) {
    const std::uint16_t p = next_port_++;
    if (next_port_ < cfg_.base_port) next_port_ = cfg_.base_port;  // wrapped
    if (p >= cfg_.base_port && !attempts_.contains(p)) return p;
  }
}

tcp::Segment StormClient::make_spoofed_syn(SimTime now) {
  tcp::Segment syn;
  syn.saddr = tcp::ipv4(10, 200, static_cast<unsigned>(rng_.uniform_u64(256)),
                        static_cast<unsigned>(rng_.uniform_u64(256)));
  syn.daddr = cfg_.server_addr;
  syn.sport = static_cast<std::uint16_t>(1024 + rng_.uniform_u64(60'000));
  syn.dport = cfg_.server_port;
  syn.seq = static_cast<std::uint32_t>(rng_.next());
  syn.flags = tcp::kSyn;
  syn.options.mss = 1460;
  syn.options.wscale = 7;
  if (cfg_.use_timestamps) {
    syn.options.ts = tcp::TimestampsOption{to_ms(now), 0};
  }
  return syn;
}

tcp::Segment StormClient::make_bogus_ack(SimTime now,
                                         const tcp::Segment& synack) {
  // Same shape sim::AttackerAgent emits: mirror the 4-tuple, garbage
  // solution bytes of the declared (k, sol_len) size so the server must do
  // verification work to reject them.
  const tcp::ChallengeOption& ch = *synack.options.challenge;
  tcp::Segment ack;
  ack.saddr = synack.daddr;
  ack.daddr = synack.saddr;
  ack.sport = synack.dport;
  ack.dport = synack.sport;
  ack.seq = synack.ack;
  ack.ack = synack.seq + 1;
  ack.flags = tcp::kAck;
  const std::uint32_t now_ms = to_ms(now);
  if (synack.options.ts) {
    ack.options.ts = tcp::TimestampsOption{now_ms, synack.options.ts->tsval};
  }
  tcp::SolutionOption sol;
  sol.mss = 1460;
  sol.wscale = 7;
  if (!synack.options.ts) {
    sol.embedded_ts = ch.embedded_ts.value_or(now_ms);
  }
  sol.solutions.resize(static_cast<std::size_t>(ch.k) * ch.sol_len);
  for (auto& b : sol.solutions) {
    b = static_cast<std::uint8_t>(rng_.next());
  }
  ack.options.solution = std::move(sol);
  return ack;
}

void StormClient::send_all(const std::vector<tcp::Segment>& segs) {
  for (const auto& seg : segs) (void)net_.send(seg);
}

void register_metrics(obs::Registry& reg, const StormStats& s,
                      std::string_view labels) {
  reg.counter("storm.slots", labels, static_cast<double>(s.slots),
              "emission slots elapsed");
  reg.counter("storm.attempts", labels, static_cast<double>(s.attempts),
              "connector attempts launched");
  reg.counter("storm.spoofed_syns", labels,
              static_cast<double>(s.spoofed_syns), "spoofed SYNs emitted");
  reg.counter("storm.idle_slots", labels, static_cast<double>(s.idle_slots),
              "slots the strategy idled");
  reg.counter("storm.skipped_full", labels,
              static_cast<double>(s.skipped_full),
              "connect slots lost to the in-flight cap");
  reg.counter("storm.established", labels, static_cast<double>(s.established),
              "handshakes completed (client view)");
  reg.counter("storm.bogus_acks", labels, static_cast<double>(s.bogus_acks),
              "garbage-solution ACKs emitted");
  reg.counter("storm.resets", labels, static_cast<double>(s.resets),
              "attempts ended by RST");
  reg.counter("storm.timeouts", labels, static_cast<double>(s.timeouts),
              "attempts recycled by timeout");
  reg.counter("storm.solves", labels, static_cast<double>(s.solves),
              "challenges solved (real SHA-256)");
  reg.counter("storm.solves_abandoned", labels,
              static_cast<double>(s.solves_abandoned),
              "challenges refused or unsolvable");
  reg.counter("storm.hash_ops", labels, static_cast<double>(s.hash_ops),
              "hash operations spent solving");
  reg.counter("storm.rx_segments", labels, static_cast<double>(s.rx_segments),
              "segments received");
  reg.histogram("storm.connect_ms", labels, s.connect_ms,
                "SYN to established latency (wall-clock ms)");
  reg.gauge("storm.established_per_s", labels, s.established_per_s(),
            "established handshakes per second of storm runtime");
}

}  // namespace tcpz::wire
