// Monotonic wall-clock shim for the real-wire backend.
//
// The defense policies, the listener and the connectors are written against
// SimTime — the simulator feeds them discrete-event time. On the wire they
// must see *real* monotonic time instead, but through the same type, so the
// policy objects run unmodified. A Clock anchors an epoch at construction
// and renders every subsequent steady_clock reading as a SimTime offset from
// it.
//
// Anchoring at zero matters beyond type compatibility: the 32-bit
// millisecond wire clock (challenge timestamps, TCP TSval) is a truncation
// of SimTime, and starting near zero keeps a test's wire timestamps far from
// the wrap point — the wrap-safe serial arithmetic is still exercised by the
// dedicated unit tests, not by accident in every socket test.
//
// steady_clock, never system_clock: NTP steps under a wire run would move
// challenge freshness windows and retransmit deadlines backwards.
#pragma once

#include <chrono>

#include "util/time.hpp"

namespace tcpz::wire {

class Clock {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  Clock() : epoch_(std::chrono::steady_clock::now()) {}
  /// Shares another clock's epoch, so host and load generator timestamps
  /// are directly comparable (they still race by scheduling jitter, which
  /// is the point of a wire run).
  explicit Clock(TimePoint epoch) : epoch_(epoch) {}

  [[nodiscard]] TimePoint epoch() const { return epoch_; }

  /// Monotonic time since the epoch, as the SimTime the sans-I/O state
  /// machines expect.
  [[nodiscard]] SimTime now() const {
    return SimTime::nanoseconds(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

 private:
  TimePoint epoch_;
};

}  // namespace tcpz::wire
