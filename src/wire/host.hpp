// wire::Host — the defense layer on an actual socket.
//
// Hosts an *unmodified* tcp::Listener (and through it an unmodified
// defense::DefensePolicy) behind a non-blocking epoll loop: a real UDP
// socket carries the full wire format of tcp/wire_format.hpp (20-byte TCP
// header, challenge/solution options, genuine checksum) over loopback, a
// timerfd drives on_tick() at the configured cadence, and an eventfd stops
// the loop. The listener still owns the userspace listen/accept queue pair
// sized by its ListenerConfig; the host only moves bytes and time.
//
// UDP encapsulation instead of raw TCP sockets is deliberate: the paper's
// artifact was a kernel patch, and without CAP_NET_RAW the closest runnable
// equivalent is the byte-exact segment codec on real sockets with real
// scheduling. What IS real here: the wire encoding of every option, the
// stateless challenge/cookie round trips, wall-clock time (via wire::Clock),
// kernel socket buffers and thread scheduling. What is NOT: congestion
// control, retransmission of data, path MTU — none of which the handshake
// defenses touch.
//
// Return routing is learned, not configured: the host remembers the UDP
// source address of the last datagram seen from each model address and
// answers there — exactly how the listener's statelessness is meant to work
// (a challenge response needs no per-flow state, only a return path).
//
// Threading contract: everything inside run() — the listener, the policy,
// the route map, TCPZ_TRACE sites — is touched only by the host thread.
// Callers may use bound_port()/clock() at any time; counters(), stats(),
// listener() and publish_metrics() only before start() or after join().
// The global obs::Recorder is single-writer; in a wire run the host thread
// is that writer (Connector and the offense strategies have no trace
// sites), so install the recorder before start() and read it after join().
#pragma once

#include <netinet/in.h>

#include <atomic>
#include <memory>
#include <string_view>
#include <thread>
#include <unordered_map>

#include "crypto/secret.hpp"
#include "obs/registry.hpp"
#include "puzzle/engine.hpp"
#include "tcp/listener.hpp"
#include "wire/clock.hpp"

namespace tcpz::wire {

/// Transport/loop statistics, the wire analogue of shim::TransportStats.
struct HostStats {
  std::uint64_t rx_datagrams = 0;
  std::uint64_t tx_datagrams = 0;
  std::uint64_t decode_errors = 0;  ///< datagrams the wire codec rejected
  std::uint64_t unroutable = 0;     ///< no learned return path for daddr
  std::uint64_t ticks = 0;          ///< timerfd firings processed
  std::uint64_t wakeups = 0;        ///< epoll_wait returns
  std::uint64_t accepted = 0;       ///< connections drained via accept()
};

struct HostConfig {
  /// The listener this host embodies (policy, backlogs, difficulty — all of
  /// it; local_addr is the model address peers aim their daddr at).
  tcp::ListenerConfig listener;
  /// Real UDP port to bind on 127.0.0.1; 0 picks an ephemeral one.
  std::uint16_t udp_port = 0;
  /// on_tick()/accept-drain cadence. Wall-clock milliseconds, not sim time:
  /// this is the granularity of SYN-ACK retransmission and policy control.
  SimTime tick_interval = SimTime::milliseconds(10);
  /// Application accept() draining, the wire stand-in for the simulator's
  /// service rate µ: negative = drain everything every tick (capacity
  /// benchmarking), 0 = never accept (fills the accept queue — the §5
  /// deception scenarios), positive = that many accepts per second.
  double accept_rate = -1.0;
  /// Release listener state for a connection as soon as it is accepted, so
  /// long storms don't grow the established map without bound.
  bool close_after_accept = true;
};

/// Non-blocking epoll host for one listener. Construction binds the socket
/// and creates the timers; start() spawns the loop thread.
class Host {
 public:
  /// Engine may be null unless the policy needs one (same contract as
  /// tcp::Listener). Throws std::runtime_error on socket/epoll errors.
  Host(HostConfig cfg, crypto::SecretKey secret, std::uint64_t seed,
       std::shared_ptr<const puzzle::PuzzleEngine> engine = nullptr);
  ~Host();

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  void start();
  /// Signals the loop to exit (idempotent, callable from any thread).
  void stop();
  /// Waits for the loop thread; after this the listener is safe to read.
  void join();

  [[nodiscard]] std::uint16_t bound_port() const { return bound_port_; }
  [[nodiscard]] const Clock& clock() const { return clock_; }

  // -- host-thread-quiescent accessors (before start() / after join()) -------
  [[nodiscard]] tcp::Listener& listener() { return listener_; }
  [[nodiscard]] const tcp::ListenerCounters& counters() const {
    return listener_.counters();
  }
  [[nodiscard]] const HostStats& stats() const { return stats_; }
  /// Registers the listener counters plus every HostStats field (wire.*)
  /// under `labels` — the same metrics JSON shape a sim run produces.
  void publish_metrics(obs::Registry& reg, std::string_view labels) const;

 private:
  void run();
  void drain_udp();
  void on_tick();
  void drain_accepts(SimTime now);
  void transmit(const tcp::Segment& seg);

  HostConfig cfg_;
  Clock clock_;
  tcp::Listener listener_;

  int udp_fd_ = -1;
  int timer_fd_ = -1;
  int stop_fd_ = -1;
  int epoll_fd_ = -1;
  std::uint16_t bound_port_ = 0;

  /// Learned return paths: model saddr -> UDP source of its last datagram.
  std::unordered_map<std::uint32_t, sockaddr_in> routes_;
  HostStats stats_;
  double accept_tokens_ = 0;

  std::thread thread_;
  std::atomic<bool> stopping_{false};
};

}  // namespace tcpz::wire
